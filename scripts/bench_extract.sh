#!/bin/sh
# Regenerate BENCH_extract.json: extraction timing for the
# geometry-keyed kernel cache (64-line minimum-pitch bus, numeric GMD)
# and the spatial-index windowed pair search (2400-segment power grid).
# Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."
BENCH_EXTRACT=1 go test -run TestBenchExtractSnapshot -v . "$@"
