#!/bin/sh
# Refresh every benchmark snapshot in one shot: runs each sibling
# bench_*.sh in sequence, regenerating all BENCH_*.json at the repo
# root (kernels, extract, fasthenry, sparse, serve). Extra arguments
# are forwarded to every underlying `go test` invocation. Budget an
# hour-plus of wall clock; the sparse and fasthenry harnesses carry
# the long timeouts on purpose. Run from anywhere in the repo.
set -e
cd "$(dirname "$0")"
for b in bench_*.sh; do
	[ "$b" = "bench_all.sh" ] && continue
	echo "== $b =="
	sh "$b" "$@"
done
echo "== all benchmark snapshots refreshed =="
