#!/bin/sh
# Full verification gate: build, tests (including the golden-file suite
# and property tests), vet, formatting, and the race detector over the
# concurrency-bearing packages. Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go test (unit + golden + property)"
go test ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# The fasthenry package includes the iterative-sweep race coverage: a
# shared ACA-compressed operator driven by parallel frequency workers;
# engine runs two concurrent sessions with conflicting configs; extract
# builds nested-basis operators from concurrent goroutines sharing one
# kernel cache; geom races parallel cluster-tree builds over one index;
# serve drives the multi-tenant job server with conflicting tenant
# configs over the shared bounded cache and mid-stream disconnects;
# matrix runs concurrent multigrid V-cycles with conflicting worker
# counts against one shared hierarchy; grid covers the streaming
# assembly feeding worker-parallel MG solves; sweep stresses the
# adaptive refine loop under parallel batch solvers; mesh pins the
# lowering's determinism contract under parallel cluster-tree builds
# over plane filament grids.
echo "== race detector (matrix, geom, extract, fasthenry, sim, engine, serve, grid, sweep, mesh)"
go test -race ./internal/matrix ./internal/geom ./internal/extract ./internal/fasthenry ./internal/sim ./internal/engine ./internal/serve ./internal/grid ./internal/sweep ./internal/mesh

# No new mutable package-level tuning state: process-wide Set* switches
# are frozen to the three deprecated shims. Run configuration belongs in
# engine.Config / the per-layer option structs, not globals.
echo "== no new package-level Set* tuning switches"
setters=$(grep -rnE '^func Set[A-Z]' internal cmd --include='*.go' \
	| grep -v '_test\.go' \
	| grep -v 'internal/matrix/workers\.go' \
	| grep -v 'internal/sim/sparse\.go' \
	| grep -v 'internal/extract/cache\.go' || true)
if [ -n "$setters" ]; then
	echo "new package-level setter(s) found (use engine.Config instead):" >&2
	echo "$setters" >&2
	exit 1
fi

# Sweep-mode selection flows through engine.Config (SweepMode/SweepTol,
# parsed via engine.ParseSweepMode): no CLI constructs adaptive sweeps
# by importing internal/sweep directly.
echo "== no cmd/ imports of internal/sweep (use engine.Config)"
direct=$(grep -rn 'inductance101/internal/sweep' cmd --include='*.go' || true)
if [ -n "$direct" ]; then
	echo "cmd/ must configure sweeps through engine.Config, not internal/sweep:" >&2
	echo "$direct" >&2
	exit 1
fi

# Plane meshing flows through engine.Config (PlaneNW, validated
# fail-fast via mesh.ValidatePlaneNW): no CLI lowers geometry by
# importing internal/mesh directly — the lowering is the solvers'
# internal representation, not a command-line surface.
echo "== no cmd/ imports of internal/mesh (use engine.Config)"
direct=$(grep -rn 'inductance101/internal/mesh' cmd --include='*.go' || true)
if [ -n "$direct" ]; then
	echo "cmd/ must configure plane meshing through engine.Config, not internal/mesh:" >&2
	echo "$direct" >&2
	exit 1
fi

echo "CI OK"
