#!/bin/sh
# Full verification gate: build, tests (including the golden-file suite
# and property tests), vet, formatting, and the race detector over the
# concurrency-bearing packages. Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go test (unit + golden + property)"
go test ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# The fasthenry package includes the iterative-sweep race coverage: a
# shared ACA-compressed operator driven by parallel frequency workers.
echo "== race detector (matrix, extract, fasthenry, sim)"
go test -race ./internal/matrix ./internal/extract ./internal/fasthenry ./internal/sim

echo "CI OK"
