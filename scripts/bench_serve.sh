#!/bin/sh
# Regenerate BENCH_serve.json: the extraction-service load harness —
# 1000 concurrent sweep jobs from 16 tenants over a byte-capped shared
# kernel cache, reporting throughput and p50/p99 latency and asserting
# zero dropped-but-accepted jobs. Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."
BENCH_SERVE=1 go test -run TestBenchServeSnapshot -timeout 30m -v . "$@"
