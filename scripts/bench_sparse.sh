#!/bin/sh
# Regenerate BENCH_sparse.json: the sparse direct solver (Cholesky, CG,
# LU) against the dense kernels on a gridnoise-scale power grid. The
# dense static-IR solve takes a while at this size; that is the point.
set -e
cd "$(dirname "$0")/.."
BENCH_SPARSE=1 go test -run TestBenchSparseSnapshot -v -timeout 30m . "$@"
