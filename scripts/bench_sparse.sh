#!/bin/sh
# Regenerate BENCH_sparse.json: the solver menu (dense LU, sparse direct
# Cholesky, Jacobi-CG, multigrid-PCG) on power grids from gridnoise
# scale (2.3k MNA unknowns) to streaming-assembled synthetic grids of a
# million-plus nodes — one JSON row per size with iteration counts and
# tolerances alongside the timings. Also runs the 1e5-node cached-
# hierarchy transient and asserts it fits the wall-clock budget. The
# dense static-IR solve takes a while at 2.3k; that is the point.
set -e
cd "$(dirname "$0")/.."
BENCH_SPARSE=1 go test -run TestBenchSparseSnapshot -v -timeout 60m . "$@"
