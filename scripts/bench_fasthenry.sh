#!/bin/sh
# Regenerate BENCH_fasthenry.json: FastHenry-style loop-extraction
# frequency sweeps — dense complex LU vs matrix-free GMRES over the
# flat-ACA operator vs the nested-basis (H²) operator, per worker
# column (workers=1 and workers=NumCPU when they differ), from 288 to
# ~102k filaments. Asserts the compressed paths match the dense oracle
# to 1e-6 relative wherever dense is feasible, that flat and nested
# cross-check at 16k filaments, and that nested wins on wall clock
# there. Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."
BENCH_FASTHENRY=1 go test -run TestBenchFasthenrySnapshot -v -timeout 40m . "$@"
