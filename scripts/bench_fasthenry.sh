#!/bin/sh
# Regenerate BENCH_fasthenry.json: FastHenry-style loop-extraction
# frequency sweeps, dense complex LU vs matrix-free GMRES over the
# hierarchically compressed (ACA) partial-inductance operator, at
# three filament counts. Also asserts the iterative path matches the
# dense oracle to 1e-6 relative at every benchmarked size.
# Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."
BENCH_FASTHENRY=1 go test -run TestBenchFasthenrySnapshot -v -timeout 30m . "$@"
