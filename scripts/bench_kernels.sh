#!/bin/sh
# Regenerate BENCH_kernels.json: ns/op for the blocked dense kernels
# (LU, Cholesky, Mul) against their unblocked references plus the
# parallel AC sweep. Run from anywhere in the repo.
set -e
cd "$(dirname "$0")/.."
BENCH_SNAPSHOT=1 go test -run TestBenchSnapshot -v . "$@"
