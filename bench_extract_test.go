package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/grid"
	"inductance101/internal/matrix"
)

// benchBus64 builds the paper-scale regular bus the extraction bench
// runs on: 64 parallel lines at minimum pitch, each split into four
// sections (the distributed-RLC discretization the simulation flows
// use), 256 segments in all.
func benchBus64() (*geom.Layout, []int) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	const (
		nWires   = 64
		sections = 4
		length   = 2e-3
		width    = 1e-6
		pitch    = 1.5e-6 // 0.5 um spacing: minimum-pitch global bus
	)
	segLen := length / sections
	var segs []int
	for w := 0; w < nWires; w++ {
		for k := 0; k < sections; k++ {
			segs = append(segs, lay.AddSegment(geom.Segment{
				Layer: 0, Dir: geom.DirX,
				X0: float64(k) * segLen, Y0: float64(w) * pitch,
				Length: segLen, Width: width,
				Net:   fmt.Sprintf("w%d", w),
				NodeA: fmt.Sprintf("w%d_n%d", w, k),
				NodeB: fmt.Sprintf("w%d_n%d", w, k+1),
			}))
		}
	}
	return lay, segs
}

// bruteForceWindowed is the pre-spatial-index windowed assembly: an
// all-pairs scan that tests every pair against the window. Kept here as
// the benchmark baseline the indexed path is measured against.
func bruteForceWindowed(l *geom.Layout, segs []int, window float64, opt extract.GMDOptions) *matrix.Dense {
	n := len(segs)
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		si := &l.Segments[segs[i]]
		th := l.Layers[si.Layer].Thickness
		m.Set(i, i, extract.SelfInductanceBar(si.Length, si.Width, th))
		for j := i + 1; j < n; j++ {
			sj := &l.Segments[segs[j]]
			pg, ok := l.Parallel(segs[i], segs[j])
			if !ok || pg.D > window {
				continue
			}
			tj := l.Layers[sj.Layer].Thickness
			v := extract.MutualBars(pg, si.Width, th, sj.Width, tj, opt)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// TestBenchExtractSnapshot measures the geometry-keyed kernel cache and
// the spatial-index candidate search on the two paper-scale structures
// (a 64-line minimum-pitch bus, a 2400-segment power grid) and writes
// BENCH_extract.json. Only runs when BENCH_EXTRACT=1; regenerate with
// scripts/bench_extract.sh.
func TestBenchExtractSnapshot(t *testing.T) {
	if os.Getenv("BENCH_EXTRACT") == "" {
		t.Skip("set BENCH_EXTRACT=1 to write BENCH_extract.json")
	}

	type entry struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
		Speedup float64 `json:"speedup,omitempty"`
	}
	var entries []entry
	measure := func(name string, fn func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		entries = append(entries, entry{Name: name, NsPerOp: ns})
		t.Logf("%-36s %14.0f ns/op", name, ns)
		return ns
	}
	speedupVs := func(refNs float64) {
		entries[len(entries)-1].Speedup = refNs / entries[len(entries)-1].NsPerOp
	}

	defer func() {
		extract.SetKernelCache(true)
		extract.ResetKernelCache()
	}()

	// 1. The 64-line bus: full dense partial-inductance matrix with
	// numeric cross-section GMD (the accurate near-field setting a
	// minimum-pitch bus requires). Every pair is a translate of one of a
	// few hundred relative geometries, the cache's home turf.
	bus, busSegs := benchBus64()
	gmd := extract.GMDOptions{Numeric: true}
	extract.SetKernelCache(false)
	busOff := measure("bus64_inductance_nocache", func() {
		bruteForceWindowed(bus, busSegs, math.Inf(1), gmd)
	})
	extract.SetKernelCache(true)
	measure("bus64_inductance_cache_cold", func() {
		extract.ResetKernelCache()
		extract.InductanceMatrix(bus, busSegs, math.Inf(1), gmd, extract.DefaultCacheRef())
	})
	speedupVs(busOff)
	coldStats := extract.KernelCacheStats()
	measure("bus64_inductance_cache_warm", func() {
		extract.InductanceMatrix(bus, busSegs, math.Inf(1), gmd, extract.DefaultCacheRef())
	})
	speedupVs(busOff)

	// 2. A 2400-segment interleaved power grid, window-limited to one
	// pitch (the bench_sparse setup): first the old all-pairs windowed
	// scan, then the spatial-index candidate path, then index + cache.
	spec := grid.DefaultSpec()
	spec.NX, spec.NY = 25, 25
	gm, err := grid.BuildPowerGrid(grid.StandardLayers(), spec)
	if err != nil {
		t.Fatal(err)
	}
	gridSegs := make([]int, len(gm.Layout.Segments))
	for i := range gridSegs {
		gridSegs[i] = i
	}
	t.Logf("grid: %d segments", len(gridSegs))

	// Pair search alone (no kernel evaluations), isolating the
	// O(n^2) -> O(n*k) effect of the spatial index on the windowed
	// interaction-list build.
	var pairSink int
	bruteScan := measure("grid2400_pairscan_bruteforce", func() {
		n := 0
		for i := 0; i < len(gridSegs); i++ {
			for j := i + 1; j < len(gridSegs); j++ {
				if pg, ok := gm.Layout.Parallel(gridSegs[i], gridSegs[j]); ok && pg.D <= spec.Pitch {
					n++
				}
			}
		}
		pairSink = n
	})
	measure("grid2400_pairscan_indexed", func() {
		idx := geom.NewIndex(gm.Layout, 0)
		n := 0
		for _, si := range gridSegs {
			for _, c := range idx.ParallelCandidates(si, spec.Pitch) {
				if c <= si {
					continue
				}
				if pg, ok := gm.Layout.Parallel(si, c); ok && pg.D <= spec.Pitch {
					n++
				}
			}
		}
		if n != pairSink {
			t.Fatalf("indexed pair scan found %d pairs, brute force %d", n, pairSink)
		}
	})
	speedupVs(bruteScan)

	extract.SetKernelCache(false)
	gridBrute := measure("grid2400_windowed_bruteforce", func() {
		bruteForceWindowed(gm.Layout, gridSegs, spec.Pitch, extract.GMDOptions{})
	})
	measure("grid2400_windowed_indexed", func() {
		extract.InductanceMatrix(gm.Layout, gridSegs, spec.Pitch, extract.GMDOptions{}, extract.DefaultCacheRef())
	})
	speedupVs(gridBrute)
	extract.SetKernelCache(true)
	measure("grid2400_windowed_indexed_cache", func() {
		extract.ResetKernelCache()
		extract.InductanceMatrix(gm.Layout, gridSegs, spec.Pitch, extract.GMDOptions{}, extract.DefaultCacheRef())
	})
	speedupVs(gridBrute)

	// Sanity: the bench must measure the configuration it claims.
	var busEntry, warmEntry entry
	for _, e := range entries {
		switch e.Name {
		case "bus64_inductance_cache_cold":
			busEntry = e
		case "bus64_inductance_cache_warm":
			warmEntry = e
		}
	}
	if busEntry.Speedup < 5 {
		t.Errorf("cache speedup on the 64-line bus is %.1fx, want >= 5x", busEntry.Speedup)
	}
	_ = warmEntry

	out, err := json.MarshalIndent(struct {
		Note    string  `json:"note"`
		Workers int     `json:"workers"`
		Cache   any     `json:"bus64_cold_cache_stats"`
		Entries []entry `json:"extraction"`
	}{
		Note:    "extraction timing snapshot (kernel cache + spatial index); regenerate with scripts/bench_extract.sh",
		Workers: matrix.Workers(),
		Cache: map[string]any{
			"hits":     coldStats.Hits,
			"misses":   coldStats.Misses,
			"hit_rate": coldStats.HitRate(),
			"entries":  coldStats.Entries,
		},
		Entries: entries,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_extract.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_extract.json")
}
