package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"inductance101/internal/matrix"
	"inductance101/internal/sim"
)

// TestBenchSnapshot measures the key dense kernels with
// testing.Benchmark and writes BENCH_kernels.json, so kernel regressions
// show up as a diff instead of a vague slowdown. It only runs when
// BENCH_SNAPSHOT=1 (normal test runs must stay fast); regenerate with
// scripts/bench_kernels.sh.
func TestBenchSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to write BENCH_kernels.json")
	}

	type entry struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
		Speedup float64 `json:"speedup_vs_unblocked,omitempty"`
	}
	var entries []entry
	measure := func(name string, fn func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		entries = append(entries, entry{Name: name, NsPerOp: ns})
		t.Logf("%-24s %14.0f ns/op", name, ns)
		return ns
	}
	pair := func(name string, ref, opt func()) {
		refNs := measure(name+"_unblocked", ref)
		optNs := measure(name+"_blocked", opt)
		entries[len(entries)-1].Speedup = refNs / optNs
	}

	for _, n := range []int{256, 512} {
		a := benchRandDense(n)
		spd := benchRandSPD(n)
		pair("lu_"+fmt.Sprintf("%d", n),
			func() {
				if _, err := matrix.FactorLUUnblocked(a); err != nil {
					t.Fatal(err)
				}
			},
			func() {
				if _, err := matrix.FactorLU(a); err != nil {
					t.Fatal(err)
				}
			})
		pair("cholesky_"+fmt.Sprintf("%d", n),
			func() {
				if _, err := matrix.FactorCholeskyUnblocked(spd); err != nil {
					t.Fatal(err)
				}
			},
			func() {
				if _, err := matrix.FactorCholesky(spd); err != nil {
					t.Fatal(err)
				}
			})
	}
	x, y := benchRandDense(256), benchRandDense(256)
	pair("mul_256",
		func() { _ = x.MulUnblocked(y) },
		func() { _ = x.Mul(y) })

	nl, vi, probe := acBenchNetlist(40)
	stim := sim.ACStimulus{VSourceAmps: map[int]complex128{vi: 1}}
	measure("ac_sweep_40stage", func() {
		if _, err := sim.ACSweep(nl, probe, stim, 1e7, 1e10, 12); err != nil {
			t.Fatal(err)
		}
	})

	out, err := json.MarshalIndent(struct {
		Note    string  `json:"note"`
		Workers int     `json:"workers"`
		Kernels []entry `json:"kernels"`
	}{
		Note:    "kernel timing snapshot; regenerate with scripts/bench_kernels.sh",
		Workers: matrix.Workers(),
		Kernels: entries,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernels.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_kernels.json")
}
