package repro

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRejectsUnknownEnumFlags pins the fail-fast contract of every
// enum-valued CLI flag: an unknown value exits nonzero with a one-line
// error on stderr, before the tool opens files or starts extracting.
func TestCLIRejectsUnknownEnumFlags(t *testing.T) {
	dir := buildTools(t)
	cases := []struct {
		tool string
		args []string
	}{
		{"inductx", []string{"-solver", "bogus", "nonexistent.json"}},
		{"inductx", []string{"-kernelcache", "maybe", "nonexistent.json"}},
		{"inductx", []string{"-l", "verbose", "nonexistent.json"}},
		{"rlsweep", []string{"-solver", "bogus"}},
		{"rlsweep", []string{"-precond", "ilu"}},
		{"rlsweep", []string{"-kernelcache", "maybe"}},
		{"clocksim", []string{"-kernelcache", "sometimes"}},
		{"clocksim", []string{"-solver", "hierarchical"}},
		{"gridnoise", []string{"-irsolver", "quantum"}},
		{"gridnoise", []string{"-irsolver", "multigrid"}},
		// A negative kernel-cache byte cap is rejected by the shared
		// engine.Config validation in every tool that carries the cache,
		// daemon included — fail-fast, before any input file is opened.
		{"inductx", []string{"-cachebytes", "-1", "nonexistent.json"}},
		{"rlsweep", []string{"-cachebytes", "-4096"}},
		{"clocksim", []string{"-cachebytes", "-1"}},
		{"inductd", []string{"-cachebytes", "-65536"}},
		// Sweep-mode enum and tolerance validation: unknown modes and
		// non-positive tolerances fail in milliseconds.
		{"rlsweep", []string{"-sweep", "spline"}},
		{"rlsweep", []string{"-sweeptol", "-2"}},
		{"rlsweep", []string{"-sweeptol", "0"}},
		{"inductx", []string{"-sweep", "spline", "nonexistent.json"}},
		{"inductx", []string{"-sweeptol", "-3", "nonexistent.json"}},
		// Plane mesh density: shared mesh.ValidatePlaneNW range check,
		// rejected by every tool before any geometry is lowered.
		{"rlsweep", []string{"-planenw", "1"}},
		{"rlsweep", []string{"-planenw", "-4"}},
		{"inductx", []string{"-planenw", "100000", "nonexistent.json"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.tool+"/"+tc.args[0]+"="+tc.args[1], func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(filepath.Join(dir, tc.tool), tc.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			if err == nil {
				t.Fatalf("%s %v exited zero on a bad enum value", tc.tool, tc.args)
			}
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("%s %v did not run: %v", tc.tool, tc.args, err)
			}
			msg := strings.TrimRight(stderr.String(), "\n")
			if msg == "" {
				t.Fatalf("%s %v printed nothing to stderr", tc.tool, tc.args)
			}
			if strings.Contains(msg, "\n") {
				t.Errorf("%s %v error is not one line:\n%s", tc.tool, tc.args, msg)
			}
			bad := tc.args[1]
			if !strings.Contains(msg, bad) {
				t.Errorf("%s %v error does not name the bad value %q: %q", tc.tool, tc.args, bad, msg)
			}
			// Fail-fast: the bad flag must be rejected before the tool
			// tries (and fails) to open the nonexistent input file.
			if strings.Contains(msg, "nonexistent.json") {
				t.Errorf("%s %v validated the flag only after touching the input: %q", tc.tool, tc.args, msg)
			}
		})
	}
}

// TestRLSweepAdaptiveVerbose runs an adaptive sweep end to end: the CSV
// must carry the interp column, a majority of rows must be
// interpolated, and -v must report the anchor/interpolation split.
func TestRLSweepAdaptiveVerbose(t *testing.T) {
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, "rlsweep"),
		"-sweep", "adaptive", "-sweeptol", "1e-6", "-points", "96", "-workers", "2", "-v")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("rlsweep -sweep adaptive failed: %v\nstderr:\n%s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 97 || lines[0] != "freq_hz,r_ohm,l_h,interp" {
		t.Fatalf("unexpected adaptive CSV shape (%d lines, header %q)", len(lines), lines[0])
	}
	interp := 0
	for _, ln := range lines[1:] {
		if strings.HasSuffix(ln, ",1") {
			interp++
		} else if !strings.HasSuffix(ln, ",0") {
			t.Fatalf("row without interp column: %q", ln)
		}
	}
	if interp < 48 {
		t.Errorf("only %d of 96 rows interpolated", interp)
	}
	if !strings.Contains(stderr.String(), "adaptive sweep:") {
		t.Errorf("-v does not report the adaptive anchor split:\n%s", stderr.String())
	}
}

// TestRLSweepNestedSolver runs the builtin structure through the
// nested-basis path end to end: the flag must be accepted, the CSV must
// come out well-formed, and the verbose diagnostics must name the
// nested operator and its rank histogram.
func TestRLSweepNestedSolver(t *testing.T) {
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, "rlsweep"),
		"-solver", "nested", "-precond", "sai", "-workers", "2", "-points", "3", "-v")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("rlsweep -solver nested failed: %v\nstderr:\n%s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 4 || lines[0] != "freq_hz,r_ohm,l_h" {
		t.Fatalf("unexpected CSV shape:\n%s", stdout.String())
	}
	diag := stderr.String()
	if !strings.Contains(diag, "solver nested") {
		t.Errorf("-v does not report the nested solve mode:\n%s", diag)
	}
	if !strings.Contains(diag, "nested-basis operator") {
		t.Errorf("-v does not report nested-basis operator stats:\n%s", diag)
	}
	if !strings.Contains(diag, "kernel evaluations:") {
		t.Errorf("-v does not report the near/far kernel-evaluation split:\n%s", diag)
	}
	if !strings.Contains(diag, "GMRES iterations") {
		t.Errorf("-v does not report GMRES iteration counts:\n%s", diag)
	}
}
