// Crosstalk explores RLC bus coupling: glitch noise and delay push-out
// versus spacing, the effect of shields, and the regime reversal that
// makes RLC crosstalk analysis different from RC analysis — in a
// capacitance-dominated bus the worst aggressor pattern is opposing
// switching (Miller effect); in an inductance-dominated bus it is
// same-direction switching (aiding return currents).
package main

import (
	"fmt"

	"inductance101/internal/tline"
	"inductance101/internal/units"
	"inductance101/internal/xtalk"
)

func main() {
	spec := xtalk.DefaultBusSpec()
	spec.NWires, spec.Sections = 3, 3

	// Noise vs spacing.
	fmt.Println("== victim glitch noise vs spacing ==")
	spacings := []float64{0.5e-6, 1e-6, 2e-6, 4e-6}
	rs, err := xtalk.SpacingSweep(spec, spacings)
	check(err)
	for i, r := range rs {
		fmt.Printf("  spacing %-8s noise %-10s delay window %s\n",
			units.FormatSI(spacings[i], "m"),
			units.FormatSI(r.PeakNoise, "V"),
			units.FormatSI(r.DeltaWorst(), "s"))
	}
	fmt.Println("  (noise falls slowly: spacing kills capacitive coupling but the")
	fmt.Println("   inductive part decays only logarithmically — §7's argument for")
	fmt.Println("   shields and close returns over plain spacing)")

	// Shields.
	bare, err := xtalk.Analyze(spec)
	check(err)
	sh := spec
	sh.Shields = true
	shielded, err := xtalk.Analyze(sh)
	check(err)
	fmt.Println("\n== shield insertion ==")
	fmt.Printf("  noise %s -> %s, delay uncertainty %s -> %s\n",
		units.FormatSI(bare.PeakNoise, "V"), units.FormatSI(shielded.PeakNoise, "V"),
		units.FormatSI(bare.DeltaWorst(), "s"), units.FormatSI(shielded.DeltaWorst(), "s"))

	// Regime reversal.
	fmt.Println("\n== worst aggressor pattern by regime ==")
	capSpec := spec
	capSpec.Length, capSpec.Spacing = 0.4e-3, 0.25e-6
	capSpec.DriverR, capSpec.TRise = 150, 120e-12
	indSpec := spec
	indSpec.Length, indSpec.Spacing = 2e-3, 2e-6
	indSpec.DriverR, indSpec.TRise = 15, 40e-12
	for _, c := range []struct {
		name string
		s    xtalk.BusSpec
	}{{"short/tight/slow (RC-ish)", capSpec}, {"long/spread/fast (RLC)", indSpec}} {
		r, err := xtalk.Analyze(c.s)
		check(err)
		worst := "opposing (Miller)"
		if r.InductanceDominated {
			worst = "same-direction (inductive)"
		}
		fmt.Printf("  %-26s nominal %-9s opposing %-9s same %-9s -> worst: %s\n",
			c.name,
			units.FormatSI(r.DelayNominal, "s"),
			units.FormatSI(r.DelayOpposing, "s"),
			units.FormatSI(r.DelaySame, "s"), worst)
	}

	// Tie back to the criterion.
	p, err := tline.FromGeometry(indSpec.Width, 1.2e-6, 1.1e-6, 0.018,
		indSpec.Width+indSpec.Spacing)
	check(err)
	lMin, lMax, _ := tline.CriticalRange(p, indSpec.TRise)
	fmt.Printf("\nthe single-line inductance-matters window for the RLC bus geometry\n")
	fmt.Printf("is [%s, %s]; its %s length sits at the window edge —\n",
		units.FormatSI(lMin, "m"), units.FormatSI(lMax, "m"), units.FormatSI(indSpec.Length, "m"))
	fmt.Println("coupled-noise reversal kicks in even before single-line delay does.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
