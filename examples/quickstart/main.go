// Quickstart: extract the parasitics of a signal wire and its return,
// look at the loop inductance, and watch what inductance does to a fast
// edge — the 60-second version of the whole paper.
package main

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/engine"
	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/sim"
	"inductance101/internal/units"
)

func main() {
	// One Session carries the run's configuration (workers, solver
	// choice, cache policy) through every stage. The zero Config is the
	// library default; results are bit-identical at any worker count.
	sess := engine.New(engine.Config{})

	// A 2mm global wire with a ground return 10um away, on a thick
	// upper metal layer.
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	sig := lay.AddSegment(geom.Segment{
		Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 2e-3, Width: 2e-6, Net: "sig", NodeA: "in", NodeB: "out",
	})
	ret := lay.AddSegment(geom.Segment{
		Layer: 0, Dir: geom.DirX, X0: 0, Y0: 10e-6,
		Length: 2e-3, Width: 2e-6, Net: "GND", NodeA: "g0", NodeB: "g1",
	})

	// 1. Extraction: partial R, L, C.
	par := extract.Extract(lay, sess.ExtractOptions())
	lSig := par.L.At(0, 0)
	m := par.L.At(0, 1)
	loopL := extract.LoopInductanceTwoWire(par.L.At(0, 0), par.L.At(1, 1), m)
	cTot := extract.GroundCap(lay, sig)
	fmt.Println("== extraction ==")
	fmt.Printf("signal:  R = %s, partial Lself = %s\n",
		units.FormatSI(par.R[0], "ohm"), units.FormatSI(lSig, "H"))
	fmt.Printf("mutual to return: M = %s  ->  loop L = %s\n",
		units.FormatSI(m, "H"), units.FormatSI(loopL, "H"))
	fmt.Printf("signal capacitance: %s\n", units.FormatSI(cTot, "F"))
	_ = ret

	// 2. What the loop inductance does to a 50ps edge: simulate the
	// wire as a lumped RLC driven by a realistic driver, with and
	// without the inductor.
	run := func(withL bool) *sim.TranResult {
		n := circuit.New()
		n.AddV("v", "src", "0", circuit.Pulse{
			V1: 0, V2: 1.8, Delay: 0.1e-9, Rise: 50e-12, Width: 5e-9, Fall: 50e-12,
		})
		n.AddR("rdrv", "src", "a", 15)
		n.AddR("rwire", "a", "b", par.R[0])
		if withL {
			n.AddL("lwire", "b", "c", loopL)
		} else {
			n.AddR("lshort", "b", "c", 1e-6)
		}
		n.AddC("cwire", "c", "0", cTot)
		n.AddC("cload", "c", "0", 150e-15)
		res, err := sim.Tran(n, sim.TranOptions{
			TStop: 3e-9, TStep: 1e-12, Policy: sess.SimPolicy(),
		})
		if err != nil {
			panic(err)
		}
		return res
	}
	rc := run(false)
	rlc := run(true)

	fmt.Println("\n== 50ps edge into the wire ==")
	for name, res := range map[string]*sim.TranResult{"RC  ": rc, "RLC ": rlc} {
		v := res.MustV("c")
		d, err := sim.CrossTime(res.Times, v, 0.9, true)
		if err != nil {
			panic(err)
		}
		ov := sim.Overshoot(v, 1.8)
		fmt.Printf("%s model: 50%% delay %s, overshoot %s\n",
			name, units.FormatSI(d-0.125e-9, "s"), units.FormatSI(ov, "V"))
	}
	fmt.Println("\ninductance adds delay and overshoot — that is the whole story;")
	fmt.Println("run examples/clocknet for the paper's full Table 1 experiment.")
}
