// Clocknet reproduces the paper's §6 experiment end to end: a global
// clock H-tree over an interleaved VDD/GND grid with package, decap and
// background switching, analyzed with the PEEC (RC), PEEC (RLC) and
// loop-inductance models, plus the §4 acceleration strategies — the
// code behind Table 1 and Fig. 4.
package main

import (
	"fmt"

	"inductance101/internal/core"
	"inductance101/internal/units"
)

func main() {
	opt := core.DefaultCaseOptions()
	c, err := core.NewClockCase(opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %d-sink clock tree over a %dx%d P/G grid (%d segments, %s of wire)\n\n",
		len(c.Clock.Sinks), opt.Grid.NX, opt.Grid.NY,
		len(c.Grid.Layout.Segments),
		units.FormatSI(c.Grid.Layout.TotalWireLength(), "m"))

	// Table 1.
	rows, err := core.Table1(c, 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("== Table 1: model comparison ==")
	fmt.Print(core.FormatTable1(rows))

	// Fig. 4: the waveform at the slowest sink under each model.
	fmt.Println("\n== Fig. 4: worst-sink waveforms (sampled) ==")
	fmt.Printf("%-10s", "time")
	for _, r := range rows {
		fmt.Printf("%12s", r.Model)
	}
	fmt.Println()
	ref := rows[0].Result
	for i := 0; i < len(ref.Times); i += len(ref.Times) / 16 {
		fmt.Printf("%-10s", units.FormatSI(ref.Times[i], "s"))
		for _, r := range rows {
			worst := worstSink(r.Result)
			fmt.Printf("%11.3fV", r.Result.SinkV[worst][i])
		}
		fmt.Println()
	}

	// §4 strategies against the full model.
	fmt.Println("\n== acceleration strategies vs PEEC(RLC) ==")
	full := rows[1].Result
	for _, s := range []core.Strategy{
		core.StrategyBlockDiag, core.StrategyShell, core.StrategyHalo,
	} {
		r, err := c.RunPEEC(core.DefaultFlowOptions(s))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-18s kept %5.1f%% of mutuals, passive=%v, delay %s (full %s), %v\n",
			r.Name, r.KeptFraction*100, r.PositiveDefinite,
			units.FormatSI(r.WorstDelay, "s"), units.FormatSI(full.WorstDelay, "s"),
			r.Runtime.Round(1e6))
	}
	po := core.DefaultFlowOptions(core.StrategyFull)
	po.UsePRIMA = true
	r, err := c.RunPEEC(po)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-18s reduced order %d (from %d unknowns), delay %s, %v\n",
		r.Name, r.ReducedOrder, len(c.Grid.Layout.Segments)*2,
		units.FormatSI(r.WorstDelay, "s"), r.Runtime.Round(1e6))
}

func worstSink(r *core.FlowResult) int {
	w, wi := 0.0, 0
	for i, d := range r.Delays {
		if d > w {
			w, wi = d, i
		}
	}
	return wi
}
