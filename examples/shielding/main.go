// Shielding walks through the paper's §7 design techniques and
// quantifies each: shield insertion (Fig. 5), dedicated ground planes
// vs frequency (Fig. 6), inter-digitated wires (Fig. 7), staggered
// inverter patterns (Fig. 8) and twisted-bundle routing (Fig. 9).
package main

import (
	"fmt"
	"math/rand"

	"inductance101/internal/design"
	"inductance101/internal/fasthenry"
	"inductance101/internal/units"
)

func main() {
	f := 2e9

	// Fig. 5: shielding.
	spec := design.DefaultShieldSpec()
	_, lBare, err := design.ShieldedLoop(spec, false, f)
	check(err)
	_, lSh, err := design.ShieldedLoop(spec, true, f)
	check(err)
	fmt.Println("== Fig. 5: shielding ==")
	fmt.Printf("loop L without shields: %s\n", units.FormatSI(lBare, "H"))
	fmt.Printf("loop L with shields:    %s  (%.1fx lower)\n\n",
		units.FormatSI(lSh, "H"), lBare/lSh)

	// Fig. 6: ground planes vs frequency.
	pspec := design.DefaultPlaneSpec()
	freqs := fasthenry.LogSpace(1e8, 2e10, 7)
	fmt.Println("== Fig. 6: L vs frequency ==")
	fmt.Printf("%-12s %14s %14s %14s\n", "freq", "far return", "shields", "ground plane")
	series := map[design.PlaneVariant][]fasthenry.Point{}
	for _, v := range []design.PlaneVariant{
		design.VariantFarReturn, design.VariantShields, design.VariantPlane,
	} {
		pts, err := design.LOverFrequency(pspec, v, freqs)
		check(err)
		series[v] = pts
	}
	for i, fq := range freqs {
		fmt.Printf("%-12s %14s %14s %14s\n",
			units.FormatSI(fq, "Hz"),
			units.FormatSI(series[design.VariantFarReturn][i].L, "H"),
			units.FormatSI(series[design.VariantShields][i].L, "H"),
			units.FormatSI(series[design.VariantPlane][i].L, "H"))
	}

	// Fig. 7: inter-digitated wires.
	ispec := design.DefaultInterdigitSpec()
	solid, err := design.Interdigitate(ispec, false, f)
	check(err)
	fing, err := design.Interdigitate(ispec, true, f)
	check(err)
	fmt.Println("\n== Fig. 7: inter-digitated wires ==")
	fmt.Printf("%-14s %12s %12s %12s\n", "", "loop L", "loop R", "total C")
	fmt.Printf("%-14s %12s %12s %12s\n", "solid wire",
		units.FormatSI(solid.LoopL, "H"), units.FormatSI(solid.LoopR, "ohm"),
		units.FormatSI(solid.CTotal, "F"))
	fmt.Printf("%-14s %12s %12s %12s\n",
		fmt.Sprintf("%d fingers", ispec.NFingers),
		units.FormatSI(fing.LoopL, "H"), units.FormatSI(fing.LoopR, "ohm"),
		units.FormatSI(fing.CTotal, "F"))
	fmt.Println("(L down, R and C up — the paper's stated trade)")

	// Fig. 8: staggered inverters.
	sspec := design.DefaultStaggerSpec()
	aligned, err := design.StaggeredNoise(sspec, false)
	check(err)
	staggered, err := design.StaggeredNoise(sspec, true)
	check(err)
	fmt.Println("\n== Fig. 8: staggered inverter patterns ==")
	fmt.Printf("peak victim noise, aligned repeaters:   %s\n", units.FormatSI(aligned, "V"))
	fmt.Printf("peak victim noise, staggered repeaters: %s  (%.1fx lower)\n",
		units.FormatSI(staggered, "V"), aligned/staggered)

	// Fig. 9: twisted bundles.
	tspec := design.DefaultTwistSpec()
	par, err := design.CouplingMatrix(tspec, false)
	check(err)
	tw, err := design.CouplingMatrix(tspec, true)
	check(err)
	mPar, kPar := design.WorstCoupling(par)
	mTw, kTw := design.WorstCoupling(tw)
	fmt.Println("\n== Fig. 9: twisted-bundle routing ==")
	fmt.Printf("parallel bundle: worst pair-to-pair M = %s (k = %.4f)\n",
		units.FormatSI(mPar, "H"), kPar)
	if mTw > 0 {
		fmt.Printf("twisted bundle:  worst pair-to-pair M = %s (k = %.4f, %.0fx lower)\n",
			units.FormatSI(mTw, "H"), kTw, mPar/mTw)
	} else {
		fmt.Printf("twisted bundle:  complete flux cancellation (M = 0)\n")
	}

	// §7: shield insertion + net ordering.
	fmt.Println("\n== shield insertion + net ordering (NP-hard; greedy vs annealing) ==")
	rng := rand.New(rand.NewSource(3))
	nets := make([]design.Net, 10)
	for i := range nets {
		nets[i] = design.Net{
			Name:           fmt.Sprintf("n%d", i),
			Aggressiveness: 0.5 + rng.Float64()*2.5,
			Sensitivity:    0.5 + rng.Float64()*1.5,
			CapBound:       3.5, IndBound: 4.5,
		}
	}
	nm := design.NoiseModel{KCap: 1, KInd: 0.8}
	g := design.Greedy(nets, nm)
	a := design.Anneal(nets, nm, rng, design.DefaultAnnealOptions())
	fmt.Printf("greedy needs %d shields; annealing needs %d\n", g.NumShields(), a.NumShields())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
