// Powergrid studies supply integrity on the generated P/G mesh: static
// IR drop, dynamic Ldi/dt droop through the package (wire-bond vs
// flip-chip), and how on-chip decoupling capacitance tames it — the
// §2/§3 current-loop story from the supply's point of view.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"inductance101/internal/circuit"
	"inductance101/internal/decap"
	"inductance101/internal/extract"
	"inductance101/internal/grid"
	"inductance101/internal/pkgmodel"
	"inductance101/internal/sim"
	"inductance101/internal/units"
)

const vdd = 1.8

func main() {
	m, err := grid.BuildPowerGrid(grid.StandardLayers(), grid.Spec{
		NX: 4, NY: 4, Pitch: 200e-6, Width: 5e-6,
		LayerX: 0, LayerY: 1, ViaR: 0.4,
	})
	check(err)
	par := extract.Extract(m.Layout, extract.DefaultOptions())

	// Static IR drop with a uniform 2mA/crossing draw.
	p, err := grid.BuildPEECNetlist(m.Layout, par, grid.PEECOptions{Mode: grid.ModeRC})
	check(err)
	n := p.Netlist
	check(m.AttachPackage(n, pkgmodel.FlipChip(), vdd))
	for i := 0; i < m.Spec.NY; i++ {
		for j := 0; j < m.Spec.NX; j++ {
			n.AddI(fmt.Sprintf("load%d_%d", i, j), m.VddX[i][j], m.GndX[i][j], circuit.DC(2e-3))
		}
	}
	drop, err := grid.IRDropDC(m, n, vdd)
	check(err)
	fmt.Printf("== static IR drop ==\nworst VDD drop at 2mA/crossing: %s (%.2f%% of Vdd)\n\n",
		units.FormatSI(drop, "V"), 100*drop/vdd)

	// Dynamic droop: a burst of switching current at the grid centre,
	// package inductance closing the loop.
	fmt.Println("== dynamic Ldi/dt droop (centre crossing, 30mA burst) ==")
	fmt.Printf("%-12s %16s %16s\n", "package", "no decap", "with decap")
	for _, pkg := range []struct {
		name string
		conn pkgmodel.Connection
	}{
		{"flip-chip", pkgmodel.FlipChip()},
		{"wire-bond", pkgmodel.WireBond()},
	} {
		noDecap := droop(m, par, pkg.conn, 0)
		withDecap := droop(m, par, pkg.conn, 5e4)
		fmt.Printf("%-12s %16s %16s\n", pkg.name,
			units.FormatSI(noDecap, "V"), units.FormatSI(withDecap, "V"))
	}
	fmt.Println("\nwire-bond inductance multiplies the droop; decap absorbs the")
	fmt.Println("burst locally — the current loops of the paper's Fig. 1 in action.")
}

// droop simulates a triangular 30mA current burst at the grid centre
// and returns the worst VDD dip there.
func droop(m *grid.Model, par *extract.Parasitics, conn pkgmodel.Connection, decapWidth float64) float64 {
	p, err := grid.BuildPEECNetlist(m.Layout, par, grid.PEECOptions{Mode: grid.ModeRLC})
	check(err)
	n := p.Netlist
	check(m.AttachPackage(n, conn, vdd))
	if decapWidth > 0 {
		ref, err := decap.MeasureBlock(decap.Typical2001(), 100, 10, 1e6)
		check(err)
		est, err := decap.NewEstimator(ref, 0.85)
		check(err)
		m.AddDecap(n, est, decapWidth)
	}
	w, h := m.Extent()
	vddNode, gndNode := m.NearestGridNodes(w/2, h/2)
	n.AddI("burst", vddNode, gndNode, circuit.PWL{
		Times:  []float64{0.2e-9, 0.35e-9, 0.5e-9},
		Values: []float64{0, 30e-3, 0},
	})
	// A little background randomness so grids are never eerily quiet.
	rng := rand.New(rand.NewSource(7))
	m.AddBackgroundActivity(n, rng, 2, 2e-3, 1e-9)

	res, err := sim.Tran(n, sim.TranOptions{TStop: 2e-9, TStep: 2e-12})
	check(err)
	v := res.MustV(vddNode)
	minV := vdd
	for _, x := range v {
		minV = math.Min(minV, x)
	}
	return vdd - minV
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
