package repro

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"inductance101/internal/circuit"
	"inductance101/internal/extract"
	"inductance101/internal/grid"
	"inductance101/internal/pkgmodel"
	"inductance101/internal/sim"
)

// TestBenchSparseSnapshot times the sparse direct solver against the
// dense kernels on a gridnoise-scale power grid (>= 2000 MNA unknowns)
// and writes BENCH_sparse.json. Like the kernel snapshot it only runs
// when BENCH_SPARSE=1; regenerate with scripts/bench_sparse.sh.
func TestBenchSparseSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SPARSE") == "" {
		t.Skip("set BENCH_SPARSE=1 to write BENCH_sparse.json")
	}

	// A 24x24 interleaved VDD/GND mesh. ModeRC keeps the element count
	// proportional to the wire count; a tight mutual window skips the
	// (unused) far-field inductance work during setup.
	spec := grid.DefaultSpec()
	spec.NX, spec.NY = 24, 24
	m, err := grid.BuildPowerGrid(grid.StandardLayers(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := extract.DefaultOptions()
	opt.MutualWindow = spec.Pitch
	par := extract.ExtractSegments(m.Layout, nil, opt)
	p, err := grid.BuildPEECNetlist(m.Layout, par, grid.PEECOptions{Mode: grid.ModeRC})
	if err != nil {
		t.Fatal(err)
	}
	n := p.Netlist
	if err := m.AttachPackage(n, pkgmodel.FlipChip(), 1.8); err != nil {
		t.Fatal(err)
	}
	if n.Size() < 2000 {
		t.Fatalf("grid too small for the benchmark: %d unknowns", n.Size())
	}
	t.Logf("grid: %d nodes, %d MNA unknowns", n.NumNodes(), n.Size())

	best := func(reps int, fn func()) float64 {
		b := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			fn()
			if s := time.Since(start).Seconds(); s < b {
				b = s
			}
		}
		return b
	}

	// Static IR drop: the dense path against the sparse Cholesky and CG
	// paths gridnoise's -irsolver flag selects.
	var denseDrop, cholDrop, cgDrop float64
	denseIR := best(1, func() {
		denseDrop, err = grid.IRDropDC(m, n, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	})
	cholIR := best(3, func() {
		cholDrop, err = grid.IRDropDCSparseChol(m, n, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	})
	cgIR := best(3, func() {
		cgDrop, err = grid.IRDropDCSparse(m, n, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	})
	if d := math.Abs(denseDrop - cholDrop); d > 1e-9*math.Max(denseDrop, 1) {
		t.Fatalf("sparse Cholesky IR drop %g disagrees with dense %g", cholDrop, denseDrop)
	}
	if d := math.Abs(denseDrop - cgDrop); d > 1e-6*math.Max(denseDrop, 1) {
		t.Fatalf("CG IR drop %g disagrees with dense %g", cgDrop, denseDrop)
	}
	t.Logf("static IR: dense %.3fs, sparse chol %.5fs (%.0fx), cg %.5fs (%.0fx)",
		denseIR, cholIR, denseIR/cholIR, cgIR, denseIR/cgIR)
	if denseIR < 5*cholIR {
		t.Fatalf("sparse Cholesky speedup %.1fx below the 5x requirement", denseIR/cholIR)
	}

	// Transient: sparse LU path against the dense stepper on the same
	// grid, short horizon (the factorization dominates both).
	n.AddI("bench_load", m.VddX[spec.NY/2][spec.NX/2], "0",
		circuit.Pulse{V1: 0, V2: 0.02, Delay: 10e-12, Rise: 20e-12, Width: 200e-12, Fall: 20e-12})
	tranOpt := sim.TranOptions{TStop: 0.5e-9, TStep: 10e-12}
	var sparseTran, denseTran float64
	func() {
		old := sim.SetSparseThreshold(1)
		defer sim.SetSparseThreshold(old)
		sparseTran = best(3, func() {
			if _, err := sim.Tran(n, tranOpt); err != nil {
				t.Fatal(err)
			}
		})
	}()
	func() {
		old := sim.SetSparseThreshold(1 << 30)
		defer sim.SetSparseThreshold(old)
		denseTran = best(1, func() {
			if _, err := sim.Tran(n, tranOpt); err != nil {
				t.Fatal(err)
			}
		})
	}()
	t.Logf("tran: dense %.3fs, sparse %.5fs (%.0fx)", denseTran, sparseTran, denseTran/sparseTran)

	out, err := json.MarshalIndent(struct {
		Note        string  `json:"note"`
		Unknowns    int     `json:"mna_unknowns"`
		Nodes       int     `json:"grid_nodes"`
		DenseIRSec  float64 `json:"static_ir_dense_sec"`
		CholIRSec   float64 `json:"static_ir_sparse_chol_sec"`
		CGIRSec     float64 `json:"static_ir_cg_sec"`
		CholSpeedup float64 `json:"static_ir_chol_speedup"`
		DenseTran   float64 `json:"tran_dense_sec"`
		SparseTran  float64 `json:"tran_sparse_sec"`
		TranSpeedup float64 `json:"tran_sparse_speedup"`
	}{
		Note:        "sparse vs dense solver on a gridnoise-scale power grid; regenerate with scripts/bench_sparse.sh",
		Unknowns:    n.Size(),
		Nodes:       n.NumNodes(),
		DenseIRSec:  denseIR,
		CholIRSec:   cholIR,
		CGIRSec:     cgIR,
		CholSpeedup: denseIR / cholIR,
		DenseTran:   denseTran,
		SparseTran:  sparseTran,
		TranSpeedup: denseTran / sparseTran,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sparse.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_sparse.json")
}
