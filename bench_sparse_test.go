package repro

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"inductance101/internal/circuit"
	"inductance101/internal/extract"
	"inductance101/internal/grid"
	"inductance101/internal/matrix"
	"inductance101/internal/pkgmodel"
	"inductance101/internal/sim"
)

// benchBest returns the fastest of reps runs of fn.
func benchBest(reps int, fn func()) float64 {
	b := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if s := time.Since(start).Seconds(); s < b {
			b = s
		}
	}
	return b
}

// synthRow is one per-size scaling entry of BENCH_sparse.json: the
// solver menu on a streaming-assembled synthetic grid, with the
// iteration counts and tolerances behind every timing (a preconditioner
// regression shows in the counts even when the wall clock is noisy).
type synthRow struct {
	Nodes int `json:"nodes"`
	NNZ   int `json:"nnz"`
	// Sparse direct Cholesky (oracle): setup+solve seconds and factor
	// fill. Omitted (zero) past its feasibility ceiling.
	CholSec  float64 `json:"chol_sec,omitempty"`
	CholFill int     `json:"chol_fill_nnz,omitempty"`
	// Jacobi-preconditioned CG: seconds, iterations, tolerance. Omitted
	// past its ceiling.
	CGSec   float64 `json:"cg_sec,omitempty"`
	CGIters int     `json:"cg_iters,omitempty"`
	CGTol   float64 `json:"cg_tol,omitempty"`
	// Multigrid-PCG: setup (hierarchy build) and solve seconds,
	// iterations, tolerance, hierarchy shape.
	MGSetupSec float64 `json:"mg_setup_sec"`
	MGSolveSec float64 `json:"mg_solve_sec"`
	MGIters    int     `json:"mg_iters"`
	MGTol      float64 `json:"mg_tol"`
	MGLevels   int     `json:"mg_levels"`
	MGOpCx     float64 `json:"mg_operator_complexity"`
	// MaxDiffMGChol is the worst per-node voltage disagreement between
	// the MG and direct solutions where both ran.
	MaxDiffMGChol float64 `json:"max_diff_mg_chol,omitempty"`
}

const (
	benchCholCeiling = 200_000 // sparse direct feasibility (fill)
	benchCGCeiling   = 150_000 // Jacobi-CG feasibility (iterations)
	benchMGTol       = 1e-10
	// benchTranBudgetSec is the wall-clock budget the 1e5-node transient
	// must fit (generous for a single-core CI box; the point is that the
	// run completes in minutes, not hours).
	benchTranBudgetSec = 300.0
)

// benchSynthSizes spans gridnoise scale (2.3k) to a million-plus
// unknowns — the regime the multigrid path exists for.
var benchSynthSizes = []int{2300, 10_000, 100_000, 1_000_000}

func benchSynthRow(t *testing.T, target int) synthRow {
	g, err := grid.Synthesize(grid.DefaultSynthSpec(target))
	if err != nil {
		t.Fatal(err)
	}
	row := synthRow{Nodes: g.N, NNZ: g.NNZ()}

	var mg *matrix.MG
	row.MGSetupSec = benchBest(1, func() {
		mg, err = matrix.NewMG(g.Sys, matrix.MGOptions{Coarsener: g.Coarsener()})
		if err != nil {
			t.Fatal(err)
		}
	})
	var xmg []float64
	var st matrix.MGStats
	row.MGSolveSec = benchBest(1, func() {
		xmg, st, err = mg.SolvePCG(g.B, matrix.MGSolveOptions{Tol: benchMGTol})
		if err != nil {
			t.Fatal(err)
		}
	})
	row.MGIters, row.MGTol = st.Iterations, benchMGTol
	row.MGLevels, row.MGOpCx = st.Levels, st.OperatorComplexity

	if g.N <= benchCholCeiling {
		var xch []float64
		var fill int
		row.CholSec = benchBest(1, func() {
			xch, fill, err = g.SolveChol()
			if err != nil {
				t.Fatal(err)
			}
		})
		row.CholFill = fill
		for i := range xch {
			if d := math.Abs(xmg[i] - xch[i]); d > row.MaxDiffMGChol {
				row.MaxDiffMGChol = d
			}
		}
		if row.MaxDiffMGChol > 1e-8 {
			t.Fatalf("%d nodes: MG disagrees with sparse Cholesky by %g (> 1e-8)",
				g.N, row.MaxDiffMGChol)
		}
	}
	if g.N <= benchCGCeiling {
		var cst matrix.CGStats
		row.CGSec = benchBest(1, func() {
			_, cst, err = g.SolveCG(matrix.CGOptions{Tol: benchMGTol})
			if err != nil {
				t.Fatal(err)
			}
		})
		row.CGIters, row.CGTol = cst.Iterations, cst.Tol
	}
	t.Logf("synth %8d nodes: mg %.3fs+%.3fs (%d iters, %d levels, opcx %.2f), chol %.3fs (fill %d), cg %.3fs (%d iters)",
		row.Nodes, row.MGSetupSec, row.MGSolveSec, row.MGIters, row.MGLevels, row.MGOpCx,
		row.CholSec, row.CholFill, row.CGSec, row.CGIters)
	return row
}

// TestBenchSparseSnapshot times the solver menu — dense, sparse direct,
// CG, multigrid — on power grids from gridnoise scale to a million
// unknowns and writes BENCH_sparse.json. Like the kernel snapshot it
// only runs when BENCH_SPARSE=1; regenerate with
// scripts/bench_sparse.sh.
func TestBenchSparseSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SPARSE") == "" {
		t.Skip("set BENCH_SPARSE=1 to write BENCH_sparse.json")
	}

	// Part 1: the PEEC-netlist grid (2.3k unknowns) — dense LU against
	// the sparse direct and iterative paths gridnoise's -irsolver flag
	// selects. A 24x24 interleaved VDD/GND mesh; ModeRC keeps the element
	// count proportional to the wire count, and a tight mutual window
	// skips the (unused) far-field inductance work during setup.
	spec := grid.DefaultSpec()
	spec.NX, spec.NY = 24, 24
	m, err := grid.BuildPowerGrid(grid.StandardLayers(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := extract.DefaultOptions()
	opt.MutualWindow = spec.Pitch
	par := extract.ExtractSegments(m.Layout, nil, opt)
	p, err := grid.BuildPEECNetlist(m.Layout, par, grid.PEECOptions{Mode: grid.ModeRC})
	if err != nil {
		t.Fatal(err)
	}
	n := p.Netlist
	if err := m.AttachPackage(n, pkgmodel.FlipChip(), 1.8); err != nil {
		t.Fatal(err)
	}
	if n.Size() < 2000 {
		t.Fatalf("grid too small for the benchmark: %d unknowns", n.Size())
	}
	t.Logf("grid: %d nodes, %d MNA unknowns", n.NumNodes(), n.Size())

	var denseDrop, cholDrop, cgDrop, mgDrop float64
	denseIR := benchBest(1, func() {
		denseDrop, err = grid.IRDropDC(m, n, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	})
	cholIR := benchBest(3, func() {
		cholDrop, err = grid.IRDropDCSparseChol(m, n, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	})
	cgIR := benchBest(3, func() {
		cgDrop, err = grid.IRDropDCSparse(m, n, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	})
	mgIR := benchBest(3, func() {
		mgDrop, err = grid.IRDropDCMG(m, n, 1.8, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	if d := math.Abs(denseDrop - cholDrop); d > 1e-9*math.Max(denseDrop, 1) {
		t.Fatalf("sparse Cholesky IR drop %g disagrees with dense %g", cholDrop, denseDrop)
	}
	if d := math.Abs(denseDrop - cgDrop); d > 1e-6*math.Max(denseDrop, 1) {
		t.Fatalf("CG IR drop %g disagrees with dense %g", cgDrop, denseDrop)
	}
	if d := math.Abs(denseDrop - mgDrop); d > 1e-6*math.Max(denseDrop, 1) {
		t.Fatalf("MG IR drop %g disagrees with dense %g", mgDrop, denseDrop)
	}
	t.Logf("static IR: dense %.3fs, sparse chol %.5fs (%.0fx), cg %.5fs, mg %.5fs",
		denseIR, cholIR, denseIR/cholIR, cgIR, mgIR)
	if denseIR < 5*cholIR {
		t.Fatalf("sparse Cholesky speedup %.1fx below the 5x requirement", denseIR/cholIR)
	}

	// Transient: sparse LU path against the dense stepper on the same
	// grid, short horizon (the factorization dominates both).
	n.AddI("bench_load", m.VddX[spec.NY/2][spec.NX/2], "0",
		circuit.Pulse{V1: 0, V2: 0.02, Delay: 10e-12, Rise: 20e-12, Width: 200e-12, Fall: 20e-12})
	tranOpt := sim.TranOptions{TStop: 0.5e-9, TStep: 10e-12}
	var sparseTran, denseTran float64
	func() {
		old := sim.SetSparseThreshold(1)
		defer sim.SetSparseThreshold(old)
		sparseTran = benchBest(3, func() {
			if _, err := sim.Tran(n, tranOpt); err != nil {
				t.Fatal(err)
			}
		})
	}()
	func() {
		old := sim.SetSparseThreshold(1 << 30)
		defer sim.SetSparseThreshold(old)
		denseTran = benchBest(1, func() {
			if _, err := sim.Tran(n, tranOpt); err != nil {
				t.Fatal(err)
			}
		})
	}()
	t.Logf("tran: dense %.3fs, sparse %.5fs (%.0fx)", denseTran, sparseTran, denseTran/sparseTran)

	// Part 2: the scaling curve — streaming-assembled synthetic grids
	// from 2.3k to 1M+ unknowns through the direct/CG/MG menu.
	rows := make([]synthRow, 0, len(benchSynthSizes))
	for _, target := range benchSynthSizes {
		rows = append(rows, benchSynthRow(t, target))
	}
	// The reason multigrid exists: at 1e5+ nodes it must beat the sparse
	// direct factorization on setup+solve.
	for _, row := range rows {
		if row.Nodes >= 100_000 && row.CholSec > 0 {
			mgTotal := row.MGSetupSec + row.MGSolveSec
			if mgTotal >= row.CholSec {
				t.Fatalf("%d nodes: MG setup+solve %.3fs not faster than sparse Cholesky %.3fs",
					row.Nodes, mgTotal, row.CholSec)
			}
		}
	}
	if last := rows[len(rows)-1]; last.Nodes < 1_000_000 {
		t.Fatalf("largest scaling row has %d unknowns, want >= 1e6", last.Nodes)
	}

	// Part 3: the 1e5-node transient under a wall-clock budget — the
	// cached-hierarchy stepper must make production-scale electromigration
	// /droop windows a minutes-scale run.
	gT, err := grid.Synthesize(grid.DefaultSynthSpec(100_000))
	if err != nil {
		t.Fatal(err)
	}
	activity := func(tm float64) float64 {
		if tm < 0.5e-9 {
			return 0.2
		}
		return 1.0
	}
	var tranRes *sim.GridTranResult
	tranWall := benchBest(1, func() {
		tranRes, err = sim.TranGridMG(sim.GridSystem{
			G: gT.Sys, CDiag: gT.CDiag,
			RHS:       gT.TranRHS(activity, 0),
			Coarsener: gT.Coarsener,
		}, sim.GridTranOptions{TStop: 2e-9, TStep: 20e-12})
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("synth tran: %d nodes, %d steps, %d PCG iters, %.2fs wall",
		gT.N, tranRes.Steps, tranRes.PCGIters, tranWall)
	if tranWall > benchTranBudgetSec {
		t.Fatalf("1e5-node transient took %.1fs, over the %.0fs budget", tranWall, benchTranBudgetSec)
	}

	out, err := json.MarshalIndent(struct {
		Note string `json:"note"`
		PEEC struct {
			Unknowns    int     `json:"mna_unknowns"`
			Nodes       int     `json:"grid_nodes"`
			DenseIRSec  float64 `json:"static_ir_dense_sec"`
			CholIRSec   float64 `json:"static_ir_sparse_chol_sec"`
			CGIRSec     float64 `json:"static_ir_cg_sec"`
			MGIRSec     float64 `json:"static_ir_mg_sec"`
			CholSpeedup float64 `json:"static_ir_chol_speedup"`
			DenseTran   float64 `json:"tran_dense_sec"`
			SparseTran  float64 `json:"tran_sparse_sec"`
			TranSpeedup float64 `json:"tran_sparse_speedup"`
		} `json:"peec_grid"`
		Scaling []synthRow `json:"synth_scaling"`
		Tran    struct {
			Nodes     int     `json:"nodes"`
			Steps     int     `json:"steps"`
			PCGIters  int     `json:"pcg_iters_total"`
			WallSec   float64 `json:"wall_sec"`
			BudgetSec float64 `json:"budget_sec"`
		} `json:"synth_tran_1e5"`
	}{
		Note: "solver menu (dense, sparse direct, CG, multigrid) from gridnoise scale to 1e6+ unknowns; regenerate with scripts/bench_sparse.sh",
		PEEC: struct {
			Unknowns    int     `json:"mna_unknowns"`
			Nodes       int     `json:"grid_nodes"`
			DenseIRSec  float64 `json:"static_ir_dense_sec"`
			CholIRSec   float64 `json:"static_ir_sparse_chol_sec"`
			CGIRSec     float64 `json:"static_ir_cg_sec"`
			MGIRSec     float64 `json:"static_ir_mg_sec"`
			CholSpeedup float64 `json:"static_ir_chol_speedup"`
			DenseTran   float64 `json:"tran_dense_sec"`
			SparseTran  float64 `json:"tran_sparse_sec"`
			TranSpeedup float64 `json:"tran_sparse_speedup"`
		}{
			Unknowns: n.Size(), Nodes: n.NumNodes(),
			DenseIRSec: denseIR, CholIRSec: cholIR, CGIRSec: cgIR, MGIRSec: mgIR,
			CholSpeedup: denseIR / cholIR,
			DenseTran:   denseTran, SparseTran: sparseTran, TranSpeedup: denseTran / sparseTran,
		},
		Scaling: rows,
		Tran: struct {
			Nodes     int     `json:"nodes"`
			Steps     int     `json:"steps"`
			PCGIters  int     `json:"pcg_iters_total"`
			WallSec   float64 `json:"wall_sec"`
			BudgetSec float64 `json:"budget_sec"`
		}{
			Nodes: gT.N, Steps: tranRes.Steps, PCGIters: tranRes.PCGIters,
			WallSec: tranWall, BudgetSec: benchTranBudgetSec,
		},
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sparse.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_sparse.json")
}
