module inductance101

go 1.22
