// Command designopt runs the paper's §7 shield-insertion-and-net-
// ordering optimization (after He et al., ISPD 2000): place a bus of
// nets with per-net noise bounds and insert as few grounded shields as
// possible. The problem is NP-hard; the tool runs the greedy
// constructor and simulated annealing and compares them.
//
// Usage:
//
//	designopt [-nets 10] [-seed 1] [-iters 6000] [-kcap 1] [-kind 0.8]
//	          [-capbound 3.5] [-indbound 4.5]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"inductance101/internal/design"
)

func main() {
	var (
		nNets    = flag.Int("nets", 10, "number of bus nets")
		seed     = flag.Int64("seed", 1, "random seed for net properties and annealing")
		iters    = flag.Int("iters", 6000, "simulated annealing iterations")
		kcap     = flag.Float64("kcap", 1.0, "capacitive coupling coefficient")
		kind     = flag.Float64("kind", 0.8, "inductive coupling coefficient")
		capBound = flag.Float64("capbound", 3.5, "per-net capacitive noise bound")
		indBound = flag.Float64("indbound", 4.5, "per-net inductive noise bound")
	)
	flag.Parse()
	if *nNets < 2 {
		fmt.Fprintln(os.Stderr, "designopt: need at least 2 nets")
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	nets := make([]design.Net, *nNets)
	for i := range nets {
		nets[i] = design.Net{
			Name:           fmt.Sprintf("n%d", i),
			Aggressiveness: 0.5 + rng.Float64()*2.5,
			Sensitivity:    0.5 + rng.Float64()*1.5,
			CapBound:       *capBound,
			IndBound:       *indBound,
		}
	}
	nm := design.NoiseModel{KCap: *kcap, KInd: *kind}

	fmt.Printf("bus of %d nets, bounds cap<=%.2f ind<=%.2f\n\n", *nNets, *capBound, *indBound)
	g := design.Greedy(nets, nm)
	fmt.Printf("greedy:   %d shields  %s\n", g.NumShields(), render(nets, g))
	show(nets, g, nm)

	aopt := design.DefaultAnnealOptions()
	aopt.Iters = *iters
	a := design.Anneal(nets, nm, rng, aopt)
	fmt.Printf("\nannealed: %d shields  %s\n", a.NumShields(), render(nets, a))
	show(nets, a, nm)

	saved := g.NumShields() - a.NumShields()
	fmt.Printf("\nannealing saved %d shield track(s) (%d -> %d)\n",
		saved, g.NumShields(), a.NumShields())
}

func render(nets []design.Net, p design.Placement) string {
	var b strings.Builder
	for i, t := range p.Tracks {
		if i > 0 {
			b.WriteByte(' ')
		}
		if t == design.Shield {
			b.WriteString("G")
		} else {
			b.WriteString(nets[t].Name)
		}
	}
	return b.String()
}

func show(nets []design.Net, p design.Placement, nm design.NoiseModel) {
	capN, indN, err := design.Noise(nets, p, nm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "designopt:", err)
		os.Exit(1)
	}
	worstC, worstI := 0.0, 0.0
	for i := range nets {
		if capN[i] > worstC {
			worstC = capN[i]
		}
		if indN[i] > worstI {
			worstI = indN[i]
		}
	}
	fmt.Printf("          worst cap noise %.3f, worst ind noise %.3f, feasible=%v\n",
		worstC, worstI, design.Feasible(nets, p, nm))
}
