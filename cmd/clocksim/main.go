// Command clocksim runs the paper's Table 1 experiment: a global clock
// net over a multi-layer power grid, analyzed with the PEEC (RC),
// PEEC (RLC) and loop-inductance models, reporting element counts,
// worst delay, worst skew and run time for each.
//
// Usage:
//
//	clocksim [-nx 4] [-ny 4] [-pitch 400e-6] [-levels 2] [-tstop 2.5e-9]
//	         [-solver auto|dense|iterative|nested] [-strategies]
//	         [-waveforms out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"inductance101/internal/core"
	"inductance101/internal/engine"
	"inductance101/internal/fasthenry"
	"inductance101/internal/units"
)

func main() {
	var (
		nx      = flag.Int("nx", 4, "power grid lines per direction (X)")
		ny      = flag.Int("ny", 4, "power grid lines per direction (Y)")
		pitch   = flag.Float64("pitch", 400e-6, "grid pitch in metres")
		levels  = flag.Int("levels", 2, "clock H-tree levels (2^levels sinks)")
		tstop   = flag.Float64("tstop", 0, "transient stop time (s); 0 = default")
		tstep   = flag.Float64("tstep", 0, "transient step (s); 0 = default")
		strats  = flag.Bool("strategies", false, "also run the sparsified/PRIMA strategies")
		wavecsv = flag.String("waveforms", "", "write sink waveforms of each model to this CSV file")
		workers = flag.Int("workers", 0, "solver/extraction goroutine cap (0 = all cores, 1 = serial)")
		kcache  = flag.String("kernelcache", "on", "kernel cache: on | off | private (per-run)")
		kbytes  = flag.Int64("cachebytes", 0, "kernel-cache byte cap, CLOCK-evicted over it (0 = unbounded)")
		solver  = flag.String("solver", "auto", "loop-model branch solve: dense | iterative (flat ACA) | nested (H² bases) | auto")
	)
	flag.Parse()

	// Flags translate into the run config up front; a bad enum value
	// fails before any extraction starts.
	cfg := engine.Config{Workers: *workers, CacheBytes: *kbytes}
	mode, err := fasthenry.ParseSolveMode(*solver)
	if err != nil {
		fatal(err)
	}
	cfg.SolveMode = mode
	switch *kcache {
	case "on":
		cfg.Cache = engine.CacheDefault
	case "off":
		cfg.Cache = engine.CacheOff
	case "private":
		cfg.Cache = engine.CachePrivate
	default:
		fatal(fmt.Errorf("-kernelcache must be on, off or private, got %q", *kcache))
	}

	opt := core.DefaultCaseOptions()
	opt.Engine = cfg
	opt.Grid.NX, opt.Grid.NY = *nx, *ny
	opt.Grid.Pitch = *pitch
	opt.ClockLevels = *levels
	c, err := core.NewClockCase(opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("clock net: %d sinks, %d segments total, %s wire\n",
		len(c.Clock.Sinks), len(c.Grid.Layout.Segments),
		units.FormatSI(c.Grid.Layout.TotalWireLength(), "m"))

	rows, err := core.Table1(c, *tstop, *tstep)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(core.FormatTable1(rows))

	if *strats {
		fmt.Println("\nSparsification / reduction strategies (vs PEEC(RLC)):")
		ref := rows[1].Result
		for _, s := range []core.Strategy{
			core.StrategyBlockDiag, core.StrategyShell, core.StrategyHalo,
			core.StrategyKMatrix,
		} {
			fopt := core.DefaultFlowOptions(s)
			if *tstop > 0 {
				fopt.TStop = *tstop
			}
			if *tstep > 0 {
				fopt.TStep = *tstep
			}
			r, err := c.RunPEEC(fopt)
			if err != nil {
				fatal(err)
			}
			report(r, ref)
		}
		fopt := core.DefaultFlowOptions(core.StrategyFull)
		fopt.UsePRIMA = true
		if *tstop > 0 {
			fopt.TStop = *tstop
		}
		if *tstep > 0 {
			fopt.TStep = *tstep
		}
		r, err := c.RunPEEC(fopt)
		if err != nil {
			fatal(err)
		}
		report(r, ref)
	}

	if *wavecsv != "" {
		f, err := os.Create(*wavecsv)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fmt.Fprintf(f, "time_s")
		for _, r := range rows {
			for k := range r.Result.SinkV {
				fmt.Fprintf(f, ",%s_sink%d", r.Model, k)
			}
		}
		fmt.Fprintln(f)
		n := len(rows[0].Result.Times)
		for i := 0; i < n; i++ {
			fmt.Fprintf(f, "%g", rows[0].Result.Times[i])
			for _, r := range rows {
				for k := range r.Result.SinkV {
					if i < len(r.Result.Times) {
						fmt.Fprintf(f, ",%g", r.Result.SinkV[k][i])
					} else {
						fmt.Fprintf(f, ",")
					}
				}
			}
			fmt.Fprintln(f)
		}
		fmt.Printf("\nwaveforms written to %s\n", *wavecsv)
	}
}

func report(r, ref *core.FlowResult) {
	dd := r.WorstDelay - ref.WorstDelay
	fmt.Printf("  %-22s kept %5.1f%% mutuals, PD=%-5v delay %s (%s vs full), skew %s, order %d, %v\n",
		r.Name, r.KeptFraction*100, r.PositiveDefinite,
		units.FormatSI(r.WorstDelay, "s"), units.FormatSI(dd, "s"),
		units.FormatSI(r.Skew, "s"), r.ReducedOrder, r.Runtime.Round(1e6))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clocksim:", err)
	os.Exit(1)
}
