// Command inductd is the extraction-as-a-service daemon: a long-running
// HTTP server that accepts JSON sweep jobs (layout geometry + per-job
// engine config overrides), schedules them through a bounded priority
// queue with per-tenant worker budgets, and streams sweep points back
// as NDJSON as they complete. All tenants share one byte-bounded kernel
// cache, so repeated geometry across jobs is evaluated once.
//
// Usage:
//
//	inductd [-addr :8472] [-workers 0] [-tenantworkers 0] [-queue 64]
//	        [-cachebytes 268435456] [-maxpoints 1024] [-maxsegments 4096]
//
// Endpoints:
//
//	POST /v1/sweep   submit a job; the response is an NDJSON stream of
//	                 sweep points, terminated by a {"done":true,...} line
//	GET  /healthz    liveness probe
//	GET  /statz      queue depth, job counters, per-stage wall time,
//	                 kernel-cache counters (hits/misses/bytes/evictions)
//
// A job document (see internal/serve) reuses the layoutio layout
// schema:
//
//	{"tenant":"ci","priority":1,
//	 "layout":{"layers":[...],"segments":[...],"planes":[...]},
//	 "port":{"plus":"s0","minus":"g0"},"shorts":[["s1","g1"]],
//	 "fstart_hz":1e8,"fstop_hz":2e10,"points":13,
//	 "config":{"solver":"auto","workers":1,"kernelcache":"shared",
//	           "sweep":"auto","sweeptol":1e-6,"planenw":8}}
//
// config.sweep selects exact per-point solves, the adaptive
// rational-interpolation engine, or auto (adaptive at 64+ points);
// adaptive responses mark interpolated rows with "interp":true and
// stream after the fit converges rather than point by point.
// config.planenw sets the conductor-plane mesh density (grid cells per
// axis, 0 = default); out-of-range values and layouts with more than a
// handful of planes are rejected with a structured 400 before any work
// starts.
//
// Flags are validated fail-fast with a one-line error before the
// listener opens; -cachebytes rejects negative values (0 = unbounded).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"inductance101/internal/engine"
	"inductance101/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8472", "listen address (host:port; :0 picks a free port)")
		workers = flag.Int("workers", 0, "total worker slots, the pool tenant budgets carve (0 = all CPUs)")
		tenantw = flag.Int("tenantworkers", 0, "per-tenant concurrent-job budget (0 = workers/4, min 1)")
		queue   = flag.Int("queue", 64, "bounded job-queue depth; jobs beyond it are rejected with 429")
		cacheb  = flag.Int64("cachebytes", 256<<20, "kernel-cache byte cap, CLOCK-evicted over it (0 = unbounded)")
		maxpts  = flag.Int("maxpoints", 1024, "per-job sweep point limit")
		maxsegs = flag.Int("maxsegments", 4096, "per-job layout segment limit")
	)
	flag.Parse()

	// The cache cap rides through engine.Config validation so the
	// daemon and the CLIs reject bad values with the same message.
	if err := (engine.Config{Workers: *workers, CacheBytes: *cacheb}).Validate(); err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Options{
		Workers:       *workers,
		TenantWorkers: *tenantw,
		QueueDepth:    *queue,
		CacheBytes:    *cacheb,
		MaxPoints:     *maxpts,
		MaxSegments:   *maxsegs,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "inductd: listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inductd:", err)
	os.Exit(1)
}
