// Command inductx extracts PEEC parasitics from a layout JSON document
// (see internal/layoutio for the schema): per-segment resistance, the
// partial self/mutual inductance matrix, and ground/coupling
// capacitances.
//
// Usage:
//
//	inductx [-l matrix|summary] [-c] [-window 0] [-kernelcache on|off]
//	        [-solver auto|dense|iterative|nested] [-acatol 1e-8]
//	        [-sweep exact|adaptive|auto] [-sweeptol 1e-6] [-planenw 8]
//	        [-workers 0] [-v] layout.json
//	inductx -sample          # print a sample layout document
//
// -solver selects the partial-inductance representation: dense builds
// the full matrix; iterative builds the hierarchically compressed
// (near-exact + ACA low-rank) operator and reads every reported value
// through it; nested builds the O(N log N) nested-basis (H²) operator
// with shared per-cluster interpolation bases; auto uses dense below
// 256 segments, flat ACA to 4095, nested beyond. -workers caps the
// operator-build fan-out (0 = all CPUs; results are bit-identical at
// any setting). The compressed paths require an unlimited -window
// (windowing and hierarchical compression are competing sparsification
// strategies) and cannot export -spice decks, which need the dense
// matrix.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"inductance101/internal/circuit"
	"inductance101/internal/engine"
	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/grid"
	"inductance101/internal/layoutio"
	"inductance101/internal/matrix"
	"inductance101/internal/units"
)

func main() {
	var (
		lMode   = flag.String("l", "summary", "inductance output: matrix | summary | none")
		caps    = flag.Bool("c", true, "extract capacitances")
		window  = flag.Float64("window", 0, "mutual inductance window in metres (0 = unlimited)")
		sample  = flag.Bool("sample", false, "print a sample layout JSON and exit")
		spice   = flag.String("spice", "", "also write the stamped PEEC netlist as a SPICE deck to this file")
		kcache  = flag.String("kernelcache", "on", "geometry-keyed kernel cache: on | off (results are bit-identical either way)")
		kbytes  = flag.Int64("cachebytes", 0, "kernel-cache byte cap, CLOCK-evicted over it (0 = unbounded)")
		solver  = flag.String("solver", "auto", "inductance representation: dense | iterative (flat ACA) | nested (H² bases) | auto (by segment count)")
		acatol  = flag.Float64("acatol", 1e-8, "far-field relative tolerance for the compressed representations")
		swmode  = flag.String("sweep", "auto", "sweep strategy carried in the run config: exact | adaptive | auto (validated here, consumed by frequency-sweeping flows)")
		swtol   = flag.Float64("sweeptol", 1e-6, "adaptive sweep relative interpolation tolerance")
		planew  = flag.Int("planenw", 0, "plane mesh density carried in the run config, grid cells per axis (validated here, consumed by the filament-lowering flows; 0 = mesh default)")
		workers = flag.Int("workers", 0, "worker goroutines for extraction and operator build (0 = all CPUs)")
		verbose = flag.Bool("v", false, "print extraction diagnostics (kernel cache hit/miss counters, operator compression, rank histograms)")
	)
	flag.Parse()

	// Every enum flag is validated before any file is opened or work is
	// done: a typo fails in milliseconds with a one-line error.
	cfg := engine.Config{ACATol: *acatol, Workers: *workers, CacheBytes: *kbytes, PlaneNW: *planew}
	switch *kcache {
	case "on":
		cfg.Cache = engine.CacheDefault
	case "off":
		cfg.Cache = engine.CacheOff
	default:
		fatal(fmt.Errorf("-kernelcache must be on or off, got %q", *kcache))
	}
	switch *solver {
	case "dense", "iterative", "nested", "auto":
	default:
		fatal(fmt.Errorf("-solver must be dense, iterative, nested or auto, got %q", *solver))
	}
	switch *lMode {
	case "matrix", "summary", "none":
	default:
		fatal(fmt.Errorf("unknown -l mode %q", *lMode))
	}
	// The sweep settings ride in the shared run config so every tool
	// rejects bad values with the same message; inductx itself extracts
	// at DC, so they only gate validation here.
	sm, err := engine.ParseSweepMode(*swmode)
	if err != nil {
		fatal(err)
	}
	cfg.SweepMode = sm
	if !(*swtol > 0) {
		fatal(fmt.Errorf("-sweeptol must be > 0, got %g", *swtol))
	}
	cfg.SweepTol = *swtol
	sess, err := engine.NewChecked(cfg)
	if err != nil {
		fatal(err)
	}

	if *sample {
		printSample()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: inductx [flags] layout.json   (see -h)")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	lay, err := layoutio.Read(f)
	if err != nil {
		fatal(err)
	}

	// Resolve the inductance representation. autoCompressSegments is
	// the auto-mode switch point; below it the dense matrix is cheap
	// and keeps default outputs on the exact path. Beyond
	// autoNestedSegments the flat ACA block inventory itself becomes the
	// bottleneck and auto switches to the nested-basis operator.
	const (
		autoCompressSegments = 256
		autoNestedSegments   = 4096
	)
	compressed, nested := false, false
	switch *solver {
	case "iterative":
		compressed = true
	case "nested":
		compressed, nested = true, true
	case "auto":
		compressed = len(lay.Segments) >= autoCompressSegments
		nested = len(lay.Segments) >= autoNestedSegments
	}
	if compressed && *window > 0 {
		fatal(fmt.Errorf("the compressed solvers need an unlimited -window: windowing and hierarchical compression are competing sparsifications"))
	}
	if compressed && *spice != "" {
		fatal(fmt.Errorf("-spice needs the dense inductance matrix; use -solver dense"))
	}

	opt := sess.ExtractOptions()
	if *window > 0 {
		opt.MutualWindow = *window
	}
	opt.SkipInductance = compressed
	par := extract.Extract(lay, opt)
	var op extract.LOperator
	switch {
	case nested:
		op = extract.CompressInductanceH2(lay, par.Segs, opt.GMD,
			extract.H2Options{Tol: sess.Config().ACATol, Workers: *workers}, sess.CacheRef())
	case compressed:
		op = extract.CompressInductance(lay, par.Segs, opt.GMD,
			extract.ACAOptions{Tol: sess.Config().ACATol, Workers: *workers}, sess.CacheRef())
	}
	// lAt reads partial inductances through whichever representation
	// was built; the compressed accessor reconstructs far entries from
	// their ACA factors.
	lAt := func(i, j int) float64 {
		if op != nil {
			if i == j {
				return op.Diag(i)
			}
			return 0 // off-diagonals come from EachUpper walks below
		}
		return par.L.At(i, j)
	}
	st := par.Stats()
	if op != nil {
		op.EachUpper(func(i, j int, v float64) {
			if v != 0 {
				st.NumMutual++
			}
		})
	}
	fmt.Printf("extracted %d segments: %d R, %d self L, %d mutuals, %d ground caps, %d coupling caps\n",
		len(par.Segs), st.NumR, st.NumL, st.NumMutual, st.NumCGround, st.NumCCouple)
	if *verbose {
		cs := sess.CacheStats()
		if cs.Enabled {
			fmt.Printf("kernel cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n",
				cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Entries)
		} else {
			fmt.Println("kernel cache: off")
		}
		if op != nil {
			os := op.Stats()
			kind := "flat ACA"
			if os.Nested {
				kind = "nested-basis"
			}
			fmt.Printf("%s operator: %d dense + %d low-rank blocks, max rank %d, %.1fx storage compression, %d of %d kernels evaluated\n",
				kind, os.DiagBlocks+os.NearBlocks, os.FarBlocks, os.MaxRank,
				os.CompressionRatio(), os.KernelEvals, os.DenseKernelEntries)
			fmt.Printf("kernel evaluations: %d near + %d far\n",
				os.NearKernelEvals, os.FarKernelEvals)
			for _, lv := range os.Levels {
				if os.Nested {
					fmt.Printf("level %2d: %d bases (max rank %d), %d couplings, rank min/avg/max %d/%.1f/%d\n",
						lv.Level, lv.Bases, lv.BasisMaxRank, lv.FarBlocks, lv.MinRank, lv.AvgRank, lv.MaxRank)
				} else {
					fmt.Printf("level %2d: %d low-rank blocks, rank min/avg/max %d/%.1f/%d\n",
						lv.Level, lv.FarBlocks, lv.MinRank, lv.AvgRank, lv.MaxRank)
				}
			}
		}
	}

	fmt.Println("\nper-segment R and self L:")
	for i, si := range par.Segs {
		s := &lay.Segments[si]
		fmt.Printf("  seg%-3d %-8s %s->%s  R=%-10s Lself=%s\n",
			si, s.Net, s.NodeA, s.NodeB,
			units.FormatSI(par.R[i], "ohm"),
			units.FormatSI(lAt(i, i), "H"))
	}

	switch *lMode {
	case "matrix":
		fmt.Println("\npartial inductance matrix (H):")
		if op != nil {
			n := op.Dim()
			m := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				m.Set(i, i, op.Diag(i))
			}
			op.EachUpper(func(i, j int, v float64) {
				m.Set(i, j, v)
				m.Set(j, i, v)
			})
			fmt.Print(m.String())
		} else {
			fmt.Print(par.L.String())
		}
	case "summary":
		n := len(par.Segs)
		worst, wi, wj, wm := 0.0, 0, 0, 0.0
		if op != nil {
			op.EachUpper(func(i, j int, v float64) {
				k := math.Abs(v) / math.Sqrt(op.Diag(i)*op.Diag(j))
				if k > worst {
					worst, wi, wj, wm = k, i, j, v
				}
			})
		} else {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					k := math.Abs(par.L.At(i, j)) / math.Sqrt(par.L.At(i, i)*par.L.At(j, j))
					if k > worst {
						worst, wi, wj, wm = k, i, j, par.L.At(i, j)
					}
				}
			}
		}
		if n > 1 {
			fmt.Printf("\nstrongest coupling: seg%d <-> seg%d, k = %.4f (M = %s)\n",
				par.Segs[wi], par.Segs[wj], worst,
				units.FormatSI(wm, "H"))
		}
	}

	if *spice != "" {
		p2, err := grid.BuildPEECNetlist(lay, par, grid.PEECOptions{Mode: grid.ModeRLC})
		if err != nil {
			fatal(err)
		}
		sf, err := os.Create(*spice)
		if err != nil {
			fatal(err)
		}
		if err := circuit.WriteSpice(sf, p2.Netlist, "inductx PEEC export of "+flag.Arg(0)); err != nil {
			sf.Close()
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nSPICE deck written to %s\n", *spice)
	}

	if *caps {
		fmt.Println("\nground capacitance per node:")
		for _, node := range sortedKeys(par.CGround) {
			fmt.Printf("  %-12s %s\n", node, units.FormatSI(par.CGround[node], "F"))
		}
		if len(par.CCoupling) > 0 {
			fmt.Println("coupling capacitors:")
			for _, cc := range par.CCoupling {
				fmt.Printf("  %-12s %-12s %s\n", cc.NodeA, cc.NodeB, units.FormatSI(cc.C, "F"))
			}
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func printSample() {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 1e-3, Width: 2e-6, Net: "sig", NodeA: "s0", NodeB: "s1"})
	lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 4e-6,
		Length: 1e-3, Width: 2e-6, Net: "GND", NodeA: "g0", NodeB: "g1"})
	if err := layoutio.Write(os.Stdout, lay); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inductx:", err)
	os.Exit(1)
}
