// Command gridnoise runs the supply-noise analyzer: a localized
// switching burst on a PEEC-modeled power grid, reporting the worst
// droop, its static-IR/dynamic decomposition, the droop map, and the
// effect of the two design levers (decap budget, package choice).
//
// With -synth N it instead exercises the production-scale path: a
// streaming-assembled synthetic multi-layer grid of ~N nodes solved by
// multigrid-preconditioned CG, optionally (-synthtran) with the
// cached-hierarchy backward-Euler transient of a clock-gating burst.
//
// Usage:
//
//	gridnoise [-nx 4] [-ny 4] [-pitch 150e-6] [-burst 25e-3]
//	          [-decap 2e4] [-sweep] [-packages]
//	          [-irsolver dense|cg|chol|mg] [-workers N]
//	          [-synth N] [-synthtran]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"inductance101/internal/engine"
	"inductance101/internal/grid"
	"inductance101/internal/matrix"
	"inductance101/internal/pkgmodel"
	"inductance101/internal/sim"
	"inductance101/internal/supply"
	"inductance101/internal/units"
)

func main() {
	var (
		nx      = flag.Int("nx", 4, "grid lines per direction (X)")
		ny      = flag.Int("ny", 4, "grid lines per direction (Y)")
		pitch   = flag.Float64("pitch", 150e-6, "grid pitch (m)")
		burst   = flag.Float64("burst", 25e-3, "burst peak current (A)")
		dcap    = flag.Float64("decap", 2e4, "decap budget, total transistor width (um)")
		sweep   = flag.Bool("sweep", false, "sweep the decap budget")
		pkgs    = flag.Bool("packages", false, "compare package models")
		irsolv  = flag.String("irsolver", "dense", "static IR solver: auto, dense, cg, chol or mg")
		workers = flag.Int("workers", 0, "solver worker cap (0 = all cores)")
		synthN  = flag.Int("synth", 0, "run the synthetic-grid MG path at ~N nodes instead of the PEEC analyzer")
		synthTr = flag.Bool("synthtran", false, "with -synth: run the cached-hierarchy transient too")
	)
	flag.Parse()
	// A bad -irsolver or worker count fails here, before the grid is
	// built or the transient runs.
	gs, err := engine.ParseGridSolver(*irsolv)
	if err != nil {
		fatal(err)
	}
	cfg := engine.Config{Workers: *workers, GridSolver: gs}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if err := supply.ValidateIRSolver(gs.IRSolverName()); err != nil {
		fatal(err)
	}

	if *synthN > 0 {
		runSynth(*synthN, *workers, *synthTr)
		return
	}

	spec := supply.DefaultSpec()
	spec.Grid = grid.Spec{NX: *nx, NY: *ny, Pitch: *pitch, Width: 4e-6, LayerX: 0, LayerY: 1, ViaR: 0.4}
	spec.Bursts[0].Peak = *burst
	spec.Bursts[0].X = float64(*nx-1) / 2 * *pitch
	spec.Bursts[0].Y = float64(*ny-1) / 2 * *pitch
	spec.DecapWidth = *dcap
	spec.IRSolver = gs.IRSolverName()
	spec.Workers = cfg.Workers

	rep, err := supply.Analyze(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worst droop: %s at %s  (static IR %s + dynamic %s)\n",
		units.FormatSI(rep.WorstDroop, "V"), rep.WorstNode,
		units.FormatSI(rep.StaticIR, "V"), units.FormatSI(rep.Dynamic, "V"))
	fmt.Printf("worst ground bounce: %s\n\n", units.FormatSI(rep.WorstBounce, "V"))

	fmt.Println("droop map (VDD crossings):")
	names := make([]string, 0, len(rep.NodeDroop))
	for n := range rep.NodeDroop {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-12s %s\n", n, units.FormatSI(rep.NodeDroop[n], "V"))
	}

	if *sweep {
		widths := []float64{0, *dcap / 2, *dcap, *dcap * 2, *dcap * 4}
		droops, err := supply.DecapSweep(spec, widths)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ndecap sweep:")
		for i, w := range widths {
			fmt.Printf("  width %-10s droop %s\n",
				units.FormatSI(w*1e-6, "m"), units.FormatSI(droops[i], "V"))
		}
	}
	if *pkgs {
		out, err := supply.PackageComparison(spec, map[string]pkgmodel.Connection{
			"flip-chip": pkgmodel.FlipChip(),
			"wire-bond": pkgmodel.WireBond(),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println("\npackage comparison:")
		for _, name := range []string{"flip-chip", "wire-bond"} {
			fmt.Printf("  %-10s droop %s\n", name, units.FormatSI(out[name], "V"))
		}
	}
}

// runSynth is the production-scale demonstration: streaming assembly,
// geometric-multigrid static solve, and (optionally) the
// cached-hierarchy transient. All numbers printed are bit-deterministic
// at any worker count.
func runSynth(nodes, workers int, tran bool) {
	g, err := grid.Synthesize(grid.DefaultSynthSpec(nodes))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthetic grid: %d nodes, %d layers, %d pads, %d nonzeros\n",
		g.N, g.Layers(), g.Pads, g.NNZ())
	x, st, err := g.SolveMG(matrix.MGOptions{Workers: workers}, matrix.MGSolveOptions{Tol: 1e-10})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mg hierarchy: %d levels, %d -> %d unknowns, operator complexity %.2f\n",
		st.Levels, st.Unknowns, st.CoarseUnknowns, st.OperatorComplexity)
	fmt.Printf("static solve: %d PCG iterations to 1e-10\n", st.Iterations)
	fmt.Printf("worst static IR drop: %s\n", units.FormatSI(g.WorstDrop(x), "V"))
	if !tran {
		return
	}
	// A clock-gating burst: 20%% background activity, full draw after
	// 0.5 ns, watched at the grid-centre load node.
	activity := func(t float64) float64 {
		if t < 0.5e-9 {
			return 0.2
		}
		return 1.0
	}
	res, err := sim.TranGridMG(sim.GridSystem{
		G:         g.Sys,
		CDiag:     g.CDiag,
		RHS:       g.TranRHS(activity, workers),
		Coarsener: g.Coarsener,
	}, sim.GridTranOptions{
		TStop: 2e-9, TStep: 20e-12, Workers: workers,
		SaveNodes: []int{g.CenterBottomNode()},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("transient: %d steps of %s, %d total PCG iterations on one cached hierarchy\n",
		res.Steps, units.FormatSI(20e-12, "s"), res.PCGIters)
	fmt.Printf("worst transient droop: %s at t=%s\n",
		units.FormatSI(g.Spec.Vdd-res.WorstV, "V"), units.FormatSI(res.WorstTime, "s"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridnoise:", err)
	os.Exit(1)
}
