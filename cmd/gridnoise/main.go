// Command gridnoise runs the supply-noise analyzer: a localized
// switching burst on a PEEC-modeled power grid, reporting the worst
// droop, its static-IR/dynamic decomposition, the droop map, and the
// effect of the two design levers (decap budget, package choice).
//
// Usage:
//
//	gridnoise [-nx 4] [-ny 4] [-pitch 150e-6] [-burst 25e-3]
//	          [-decap 2e4] [-sweep] [-packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"inductance101/internal/grid"
	"inductance101/internal/pkgmodel"
	"inductance101/internal/supply"
	"inductance101/internal/units"
)

func main() {
	var (
		nx     = flag.Int("nx", 4, "grid lines per direction (X)")
		ny     = flag.Int("ny", 4, "grid lines per direction (Y)")
		pitch  = flag.Float64("pitch", 150e-6, "grid pitch (m)")
		burst  = flag.Float64("burst", 25e-3, "burst peak current (A)")
		dcap   = flag.Float64("decap", 2e4, "decap budget, total transistor width (um)")
		sweep  = flag.Bool("sweep", false, "sweep the decap budget")
		pkgs   = flag.Bool("packages", false, "compare package models")
		irsolv = flag.String("irsolver", "dense", "static IR solver: dense, cg or chol")
	)
	flag.Parse()
	// A bad -irsolver fails here, before the grid is built or the
	// transient runs.
	if err := supply.ValidateIRSolver(*irsolv); err != nil {
		fatal(err)
	}

	spec := supply.DefaultSpec()
	spec.Grid = grid.Spec{NX: *nx, NY: *ny, Pitch: *pitch, Width: 4e-6, LayerX: 0, LayerY: 1, ViaR: 0.4}
	spec.Bursts[0].Peak = *burst
	spec.Bursts[0].X = float64(*nx-1) / 2 * *pitch
	spec.Bursts[0].Y = float64(*ny-1) / 2 * *pitch
	spec.DecapWidth = *dcap
	spec.IRSolver = *irsolv

	rep, err := supply.Analyze(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worst droop: %s at %s  (static IR %s + dynamic %s)\n",
		units.FormatSI(rep.WorstDroop, "V"), rep.WorstNode,
		units.FormatSI(rep.StaticIR, "V"), units.FormatSI(rep.Dynamic, "V"))
	fmt.Printf("worst ground bounce: %s\n\n", units.FormatSI(rep.WorstBounce, "V"))

	fmt.Println("droop map (VDD crossings):")
	names := make([]string, 0, len(rep.NodeDroop))
	for n := range rep.NodeDroop {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-12s %s\n", n, units.FormatSI(rep.NodeDroop[n], "V"))
	}

	if *sweep {
		widths := []float64{0, *dcap / 2, *dcap, *dcap * 2, *dcap * 4}
		droops, err := supply.DecapSweep(spec, widths)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ndecap sweep:")
		for i, w := range widths {
			fmt.Printf("  width %-10s droop %s\n",
				units.FormatSI(w*1e-6, "m"), units.FormatSI(droops[i], "V"))
		}
	}
	if *pkgs {
		out, err := supply.PackageComparison(spec, map[string]pkgmodel.Connection{
			"flip-chip": pkgmodel.FlipChip(),
			"wire-bond": pkgmodel.WireBond(),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println("\npackage comparison:")
		for _, name := range []string{"flip-chip", "wire-bond"} {
			fmt.Printf("  %-10s droop %s\n", name, units.FormatSI(out[name], "V"))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridnoise:", err)
	os.Exit(1)
}
