// Command rlsweep extracts loop R(f) and L(f) — the paper's Fig. 3(b)
// curves — either for a built-in signal-over-returns structure or for a
// layout JSON with a named port, and optionally fits the Krauter ladder
// model (Fig. 3(d)).
//
// Usage:
//
//	rlsweep [-length 2e-3] [-width 8e-6] [-pitch 20e-6] [-plane] [-planenw 8]
//	        [-fstart 1e8] [-fstop 2e10] [-points 13] [-fit] [-kernelcache on|off]
//	        [-solver auto|dense|iterative|nested] [-precond bjacobi|sai]
//	        [-acatol 1e-8] [-sweep exact|adaptive|auto] [-sweeptol 1e-6]
//	        [-workers 0] [-v]
//	rlsweep -layout l.json -plus s0 -minus g0 -short s1=g1 [-short a=b ...]
//
// -solver picks the branch-system solve: dense complex LU (the exact
// oracle), matrix-free GMRES over the flat ACA-compressed
// partial-inductance operator (iterative), GMRES over the nested-basis
// H² operator (nested), or auto (dense below 512 filaments, flat ACA to
// 8191, nested beyond). -precond selects the GMRES preconditioner:
// block-Jacobi over the cluster diagonal, or the near-field sparse
// approximate inverse. -sweep picks the sweep strategy: exact solves
// every requested frequency, adaptive solves only rational-fit anchor
// points (with Krylov recycling across anchors) and interpolates the
// rest within -sweeptol, and auto switches to adaptive at 64+ points;
// in adaptive mode the CSV carries a fourth interp column marking
// interpolated rows. -plane replaces the builtin structure's coplanar
// returns with a solid ground plane on the layer below (the paper's
// Fig. 6 microstrip); -planenw sets the plane mesh density in grid
// cells per axis (0 = the mesh default) and applies equally to planes
// read from a -layout file. -workers caps the operator-build and sweep
// fan-out (0 = all CPUs; results are bit-identical at any setting).
// -v prints diagnostics to stderr: the resolved solve mode, kernel
// cache hit/miss/entry counters, operator compression stats with
// per-level rank histograms and near/far kernel-evaluation counts on
// the compressed paths, and per-point GMRES iteration counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"inductance101/internal/engine"
	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/layoutio"
	"inductance101/internal/loopmodel"
	"inductance101/internal/units"
)

type shortList [][2]string

func (s *shortList) String() string { return fmt.Sprint([][2]string(*s)) }

func (s *shortList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want nodeA=nodeB, got %q", v)
	}
	*s = append(*s, [2]string{parts[0], parts[1]})
	return nil
}

func main() {
	var (
		length = flag.Float64("length", 2e-3, "builtin structure: wire length (m)")
		width  = flag.Float64("width", 8e-6, "builtin structure: wire width (m)")
		pitch  = flag.Float64("pitch", 20e-6, "builtin structure: signal-return pitch (m)")
		fstart = flag.Float64("fstart", 1e8, "sweep start frequency (Hz)")
		fstop  = flag.Float64("fstop", 2e10, "sweep stop frequency (Hz)")
		points = flag.Int("points", 13, "sweep points")
		fit    = flag.Bool("fit", false, "fit the two-point ladder model and report its error")
		nsec   = flag.Int("sections", 0, "with -fit: also least-squares fit an n-section ladder")
		layout = flag.String("layout", "", "layout JSON file (instead of builtin structure)")
		plus   = flag.String("plus", "", "port plus node (with -layout)")
		minus  = flag.String("minus", "", "port minus node (with -layout)")
		kcache = flag.String("kernelcache", "on", "geometry-keyed kernel cache for filament assembly: on | off (bit-identical either way)")
		kbytes = flag.Int64("cachebytes", 0, "kernel-cache byte cap, CLOCK-evicted over it (0 = unbounded)")
		solver = flag.String("solver", "auto", "branch solve: dense | iterative (flat ACA) | nested (H² bases) | auto (by filament count)")
		precnd = flag.String("precond", "bjacobi", "GMRES preconditioner: bjacobi | sai (near-field sparse approximate inverse)")
		acatol = flag.Float64("acatol", 1e-8, "far-field relative tolerance for the compressed solvers")
		swmode = flag.String("sweep", "auto", "sweep strategy: exact (solve every point) | adaptive (rational fit over anchor solves) | auto (adaptive at 64+ points)")
		swtol  = flag.Float64("sweeptol", 1e-6, "adaptive sweep relative interpolation tolerance")
		plane  = flag.Bool("plane", false, "builtin structure: return through a ground plane below instead of coplanar wires")
		planew = flag.Int("planenw", 0, "plane mesh density, grid cells per axis (0 = mesh default)")
		nwork  = flag.Int("workers", 0, "worker goroutines for operator build and sweep (0 = all CPUs)")
		verb   = flag.Bool("v", false, "print solve diagnostics to stderr (solve mode, kernel cache counters, operator stats, GMRES iterations)")
		shorts shortList
	)
	flag.Var(&shorts, "short", "short two nodes, nodeA=nodeB (repeatable; with -layout)")
	flag.Parse()

	// Enum flags are validated into the run config before any file is
	// opened or filament is built: a typo fails in milliseconds.
	cfg := engine.Config{ACATol: *acatol, Workers: *nwork, CacheBytes: *kbytes, PlaneNW: *planew}
	switch *kcache {
	case "on":
		cfg.Cache = engine.CacheDefault
	case "off":
		cfg.Cache = engine.CacheOff
	default:
		fatal(fmt.Errorf("-kernelcache must be on or off, got %q", *kcache))
	}
	mode, err := fasthenry.ParseSolveMode(*solver)
	if err != nil {
		fatal(err)
	}
	cfg.SolveMode = mode
	pre, err := fasthenry.ParsePrecond(*precnd)
	if err != nil {
		fatal(err)
	}
	cfg.Precond = pre
	sm, err := engine.ParseSweepMode(*swmode)
	if err != nil {
		fatal(err)
	}
	cfg.SweepMode = sm
	if !(*swtol > 0) {
		fatal(fmt.Errorf("-sweeptol must be > 0, got %g", *swtol))
	}
	cfg.SweepTol = *swtol
	sess, err := engine.NewChecked(cfg)
	if err != nil {
		fatal(err)
	}

	var (
		lay  *geom.Layout
		segs []int
		port fasthenry.Port
		sh   [][2]string
	)
	if *layout != "" {
		f, err := os.Open(*layout)
		if err != nil {
			fatal(err)
		}
		lay2, err := layoutio.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		lay = lay2
		for i := range lay.Segments {
			segs = append(segs, i)
		}
		if *plus == "" || *minus == "" {
			fatal(fmt.Errorf("-layout requires -plus and -minus"))
		}
		port = fasthenry.Port{Plus: *plus, Minus: *minus}
		sh = shorts
	} else if *plane {
		lay, segs, port, sh = builtinPlane(*length, *width, *pitch)
	} else {
		lay, segs, port, sh = builtin(*length, *width, *pitch)
	}

	s, err := fasthenry.NewSolver(lay, segs, port, sh, *fstop, sess.SolverOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rlsweep: %d filaments\n", s.NumFilaments())
	if *verb {
		fmt.Fprintf(os.Stderr, "rlsweep: solver %s\n", s.SolveModeInUse())
	}
	pts, err := s.Sweep(fasthenry.LogSpace(*fstart, *fstop, *points))
	if err != nil {
		fatal(err)
	}
	// The adaptive engine distinguishes solved anchors from
	// interpolated rows; only then does the CSV carry the extra column,
	// so exact-mode output (goldens, downstream parsers) is unchanged.
	if cfg.SweepMode.Adapt(*points) {
		anchors := 0
		fmt.Println("freq_hz,r_ohm,l_h,interp")
		for _, p := range pts {
			interp := 0
			if p.Interp {
				interp = 1
			} else {
				anchors++
			}
			fmt.Printf("%g,%g,%g,%d\n", p.Freq, p.R, p.L, interp)
		}
		if *verb {
			fmt.Fprintf(os.Stderr, "rlsweep: adaptive sweep: %d anchors solved, %d points interpolated (tol %g)\n",
				anchors, len(pts)-anchors, *swtol)
		}
	} else {
		fmt.Println("freq_hz,r_ohm,l_h")
		for _, p := range pts {
			fmt.Printf("%g,%g,%g\n", p.Freq, p.R, p.L)
		}
	}
	if *verb {
		if cs := sess.CacheStats(); cs.Enabled {
			fmt.Fprintf(os.Stderr, "rlsweep: kernel cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n",
				cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Entries)
		} else {
			fmt.Fprintln(os.Stderr, "rlsweep: kernel cache: off")
		}
		if m := s.SolveModeInUse(); m == fasthenry.ModeIterative || m == fasthenry.ModeNested {
			st := s.OperatorStats()
			kind := "flat ACA"
			if st.Nested {
				kind = "nested-basis"
			}
			fmt.Fprintf(os.Stderr, "rlsweep: %s operator: %d near + %d low-rank blocks, %.1fx storage compression\n",
				kind, st.NearBlocks+st.DiagBlocks, st.FarBlocks, st.CompressionRatio())
			fmt.Fprintf(os.Stderr, "rlsweep: kernel evaluations: %d near + %d far of %d dense entries\n",
				st.NearKernelEvals, st.FarKernelEvals, st.DenseKernelEntries)
			for _, lv := range st.Levels {
				if st.Nested {
					fmt.Fprintf(os.Stderr, "rlsweep: level %2d: %d bases (max rank %d), %d couplings, rank min/avg/max %d/%.1f/%d\n",
						lv.Level, lv.Bases, lv.BasisMaxRank, lv.FarBlocks, lv.MinRank, lv.AvgRank, lv.MaxRank)
				} else {
					fmt.Fprintf(os.Stderr, "rlsweep: level %2d: %d low-rank blocks, rank min/avg/max %d/%.1f/%d\n",
						lv.Level, lv.FarBlocks, lv.MinRank, lv.AvgRank, lv.MaxRank)
				}
			}
			for _, p := range pts {
				if p.Interp {
					fmt.Fprintf(os.Stderr, "rlsweep: %s: interpolated\n", units.FormatSI(p.Freq, "Hz"))
					continue
				}
				fmt.Fprintf(os.Stderr, "rlsweep: %s: %d GMRES iterations\n",
					units.FormatSI(p.Freq, "Hz"), p.Iters)
			}
		}
	}

	if *fit {
		first, last := pts[0], pts[len(pts)-1]
		ld, err := loopmodel.FitTwoPoint(first.Z, first.Freq, last.Z, last.Freq)
		if err != nil {
			fatal(err)
		}
		errR, errL := ld.MaxRelErr(pts)
		fmt.Fprintf(os.Stderr, "ladder fit: R0=%s L0=%s", units.FormatSI(ld.R0, "ohm"), units.FormatSI(ld.L0, "H"))
		for _, s := range ld.Sections {
			fmt.Fprintf(os.Stderr, " | R1=%s L1=%s", units.FormatSI(s.R, "ohm"), units.FormatSI(s.L, "H"))
		}
		fmt.Fprintf(os.Stderr, "\nmax band error: R %.1f%%, L %.1f%%\n", errR*100, errL*100)
		if *nsec > 0 {
			ldN, err := loopmodel.FitSections(pts, *nsec)
			if err != nil {
				fatal(err)
			}
			eR, eL := ldN.MaxRelErr(pts)
			fmt.Fprintf(os.Stderr, "%d-section LS fit: %d sections kept, max band error R %.1f%%, L %.1f%%\n",
				*nsec, len(ldN.Sections), eR*100, eL*100)
		}
	}
}

// builtin makes the Fig. 3(a) structure: signal with two same-layer
// ground returns tied at both ends.
func builtin(length, width, pitch float64) (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	s := lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: length, Width: width, Net: "sig", NodeA: "s0", NodeB: "s1"})
	g1 := lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: -pitch,
		Length: length, Width: width, Net: "GND", NodeA: "g0", NodeB: "g1"})
	g2 := lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: pitch,
		Length: length, Width: width, Net: "GND", NodeA: "h0", NodeB: "h1"})
	return lay, []int{s, g1, g2},
		fasthenry.Port{Plus: "s0", Minus: "g0"},
		[][2]string{{"s1", "g1"}, {"g1", "h1"}, {"g0", "h0"}}
}

// builtinPlane makes the Fig. 6 microstrip variant of the builtin
// structure: the same signal wire returning through a solid ground
// plane on the layer below (lowered to a filament grid by
// internal/mesh) instead of coplanar wires. The plane's x-edge rails
// tie it into the loop: the far rail to the signal's far end, the near
// rail to the port minus.
func builtinPlane(length, width, pitch float64) (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 0.9e-6, SheetRho: 0.025, HBelow: 1.0e-6},
		{Name: "M6", Index: 1, Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	s := lay.AddSegment(geom.Segment{Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: length, Width: width, Net: "sig", NodeA: "s0", NodeB: "s1"})
	lay.AddPlane(geom.Plane{
		Layer: 0, X0: 0, Y0: -2 * pitch, X1: length, Y1: 2 * pitch,
		Net: "GND", NodeLeft: "g0", NodeRight: "g1",
	})
	return lay, []int{s},
		fasthenry.Port{Plus: "s0", Minus: "g0"},
		[][2]string{{"s1", "g1"}}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlsweep:", err)
	os.Exit(1)
}
