// Command rlsweep extracts loop R(f) and L(f) — the paper's Fig. 3(b)
// curves — either for a built-in signal-over-returns structure or for a
// layout JSON with a named port, and optionally fits the Krauter ladder
// model (Fig. 3(d)).
//
// Usage:
//
//	rlsweep [-length 2e-3] [-width 8e-6] [-pitch 20e-6]
//	        [-fstart 1e8] [-fstop 2e10] [-points 13] [-fit] [-kernelcache on|off]
//	rlsweep -layout l.json -plus s0 -minus g0 -short s1=g1 [-short a=b ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"inductance101/internal/extract"
	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/layoutio"
	"inductance101/internal/loopmodel"
	"inductance101/internal/units"
)

type shortList [][2]string

func (s *shortList) String() string { return fmt.Sprint([][2]string(*s)) }

func (s *shortList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want nodeA=nodeB, got %q", v)
	}
	*s = append(*s, [2]string{parts[0], parts[1]})
	return nil
}

func main() {
	var (
		length = flag.Float64("length", 2e-3, "builtin structure: wire length (m)")
		width  = flag.Float64("width", 8e-6, "builtin structure: wire width (m)")
		pitch  = flag.Float64("pitch", 20e-6, "builtin structure: signal-return pitch (m)")
		fstart = flag.Float64("fstart", 1e8, "sweep start frequency (Hz)")
		fstop  = flag.Float64("fstop", 2e10, "sweep stop frequency (Hz)")
		points = flag.Int("points", 13, "sweep points")
		fit    = flag.Bool("fit", false, "fit the two-point ladder model and report its error")
		nsec   = flag.Int("sections", 0, "with -fit: also least-squares fit an n-section ladder")
		layout = flag.String("layout", "", "layout JSON file (instead of builtin structure)")
		plus   = flag.String("plus", "", "port plus node (with -layout)")
		minus  = flag.String("minus", "", "port minus node (with -layout)")
		kcache = flag.String("kernelcache", "on", "geometry-keyed kernel cache for filament assembly: on | off (bit-identical either way)")
		shorts shortList
	)
	flag.Var(&shorts, "short", "short two nodes, nodeA=nodeB (repeatable; with -layout)")
	flag.Parse()
	switch *kcache {
	case "on":
	case "off":
		extract.SetKernelCache(false)
	default:
		fatal(fmt.Errorf("-kernelcache must be on or off, got %q", *kcache))
	}

	var (
		lay  *geom.Layout
		segs []int
		port fasthenry.Port
		sh   [][2]string
	)
	if *layout != "" {
		f, err := os.Open(*layout)
		if err != nil {
			fatal(err)
		}
		lay2, err := layoutio.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		lay = lay2
		for i := range lay.Segments {
			segs = append(segs, i)
		}
		if *plus == "" || *minus == "" {
			fatal(fmt.Errorf("-layout requires -plus and -minus"))
		}
		port = fasthenry.Port{Plus: *plus, Minus: *minus}
		sh = shorts
	} else {
		lay, segs, port, sh = builtin(*length, *width, *pitch)
	}

	solver, err := fasthenry.NewSolver(lay, segs, port, sh, *fstop, fasthenry.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rlsweep: %d filaments\n", solver.NumFilaments())
	pts, err := solver.Sweep(fasthenry.LogSpace(*fstart, *fstop, *points))
	if err != nil {
		fatal(err)
	}
	fmt.Println("freq_hz,r_ohm,l_h")
	for _, p := range pts {
		fmt.Printf("%g,%g,%g\n", p.Freq, p.R, p.L)
	}

	if *fit {
		first, last := pts[0], pts[len(pts)-1]
		ld, err := loopmodel.FitTwoPoint(first.Z, first.Freq, last.Z, last.Freq)
		if err != nil {
			fatal(err)
		}
		errR, errL := ld.MaxRelErr(pts)
		fmt.Fprintf(os.Stderr, "ladder fit: R0=%s L0=%s", units.FormatSI(ld.R0, "ohm"), units.FormatSI(ld.L0, "H"))
		for _, s := range ld.Sections {
			fmt.Fprintf(os.Stderr, " | R1=%s L1=%s", units.FormatSI(s.R, "ohm"), units.FormatSI(s.L, "H"))
		}
		fmt.Fprintf(os.Stderr, "\nmax band error: R %.1f%%, L %.1f%%\n", errR*100, errL*100)
		if *nsec > 0 {
			ldN, err := loopmodel.FitSections(pts, *nsec)
			if err != nil {
				fatal(err)
			}
			eR, eL := ldN.MaxRelErr(pts)
			fmt.Fprintf(os.Stderr, "%d-section LS fit: %d sections kept, max band error R %.1f%%, L %.1f%%\n",
				*nsec, len(ldN.Sections), eR*100, eL*100)
		}
	}
}

// builtin makes the Fig. 3(a) structure: signal with two same-layer
// ground returns tied at both ends.
func builtin(length, width, pitch float64) (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	s := lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: length, Width: width, Net: "sig", NodeA: "s0", NodeB: "s1"})
	g1 := lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: -pitch,
		Length: length, Width: width, Net: "GND", NodeA: "g0", NodeB: "g1"})
	g2 := lay.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: pitch,
		Length: length, Width: width, Net: "GND", NodeA: "h0", NodeB: "h1"})
	return lay, []int{s, g1, g2},
		fasthenry.Port{Plus: "s0", Minus: "g0"},
		[][2]string{{"s1", "g1"}, {"g1", "h1"}, {"g0", "h0"}}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlsweep:", err)
	os.Exit(1)
}
