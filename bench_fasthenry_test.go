package repro

import (
	"encoding/json"
	"fmt"
	"math/cmplx"
	"os"
	"runtime"
	"testing"
	"time"

	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/grid"
	"inductance101/internal/sweep"
)

// benchLoopBus builds the loop-extraction benchmark structure: a signal
// wire with nWires-1 return wires on the same layer, returns tied
// together at both ends and to the signal at the far end. One segment
// per wire; the filament count is nWires * nw * nt.
func benchLoopBus(nWires int) (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	const (
		length = 1e-3
		width  = 1e-6
		pitch  = 2e-6
	)
	var segs []int
	for w := 0; w < nWires; w++ {
		net, a, b := "GND", fmt.Sprintf("g%d_0", w), fmt.Sprintf("g%d_1", w)
		if w == 0 {
			net, a, b = "sig", "s0", "s1"
		}
		segs = append(segs, lay.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, X0: 0, Y0: float64(w) * pitch,
			Length: length, Width: width, Net: net, NodeA: a, NodeB: b,
		}))
	}
	var shorts [][2]string
	for w := 2; w < nWires; w++ {
		shorts = append(shorts,
			[2]string{fmt.Sprintf("g%d_0", w-1), fmt.Sprintf("g%d_0", w)},
			[2]string{fmt.Sprintf("g%d_1", w-1), fmt.Sprintf("g%d_1", w)})
	}
	shorts = append(shorts, [2]string{"s1", "g1_1"})
	return lay, segs, fasthenry.Port{Plus: "s0", Minus: "g1_0"}, shorts
}

// benchMicrostripPlane builds the plane benchmark structure: a signal
// and its far return over a solid conductor plane. The mesh density
// rides in Options.PlaneNW (~2*nw^2 plane filaments); the geometry is
// fixed, so one structure spans every benchmark size.
func benchMicrostripPlane() (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	lay := geom.NewLayout(grid.StandardLayers())
	segs := []int{
		lay.AddSegment(geom.Segment{
			Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
			Length: 1500e-6, Width: 2e-6, Net: "sig", NodeA: "s0", NodeB: "s1",
		}),
		lay.AddSegment(geom.Segment{
			Layer: 1, Dir: geom.DirX, X0: 0, Y0: 80e-6,
			Length: 1500e-6, Width: 2e-6, Net: "ret", NodeA: "r0", NodeB: "r1",
		}),
	}
	lay.AddPlane(geom.Plane{
		Layer: 0, X0: 0, Y0: -24e-6, X1: 1500e-6, Y1: 24e-6,
		Net: "ret", NodeLeft: "p0", NodeRight: "p1",
	})
	return lay, segs, fasthenry.Port{Plus: "s0", Minus: "r0"},
		[][2]string{{"s1", "r1"}, {"p1", "s1"}, {"p0", "r0"}}
}

// benchRow is one (size, solver mode, worker count) measurement.
type benchRow struct {
	Wires        int     `json:"wires,omitempty"`
	PlaneNW      int     `json:"plane_nw,omitempty"`
	Filaments    int     `json:"filaments"`
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers"`
	SweepPoints  int     `json:"sweep_points"`
	BuildSec     float64 `json:"operator_build_sec"`
	SweepSec     float64 `json:"sweep_sec"`
	TotalSec     float64 `json:"total_sec"`
	GMRESIters   []int   `json:"gmres_iters_per_point,omitempty"`
	MaxRelErr    float64 `json:"max_rel_err_vs_dense,omitempty"`
	FarBlocks    int     `json:"far_blocks,omitempty"`
	MaxRank      int     `json:"max_rank,omitempty"`
	CompressionX float64 `json:"storage_compression_x,omitempty"`
	KernelFrac   float64 `json:"kernel_eval_fraction,omitempty"`
	NearEvals    int     `json:"near_kernel_evals,omitempty"`
	FarEvals     int     `json:"far_kernel_evals,omitempty"`
}

// maxRelErrPts is the worst pointwise relative impedance deviation
// between two sweeps over the same frequency grid.
func maxRelErrPts(got, ref []fasthenry.Point) float64 {
	worst := 0.0
	for i := range got {
		if d := cmplx.Abs(got[i].Z-ref[i].Z) / cmplx.Abs(ref[i].Z); d > worst {
			worst = d
		}
	}
	return worst
}

// benchAdaptiveRow is one adaptive-vs-exact sweep measurement on a
// dense frequency grid.
type benchAdaptiveRow struct {
	Wires             int     `json:"wires"`
	Filaments         int     `json:"filaments"`
	Workers           int     `json:"workers"`
	SweepPoints       int     `json:"sweep_points"`
	SweepTol          float64 `json:"sweep_tol"`
	ExactSweepSec     float64 `json:"exact_sweep_sec"`
	AdaptiveSweepSec  float64 `json:"adaptive_sweep_sec"`
	SpeedupX          float64 `json:"speedup_x"`
	Anchors           int     `json:"anchors"`
	MaxRelErr         float64 `json:"max_rel_err_vs_exact"`
	ExactTotalIters   int     `json:"exact_total_iters"`
	RecycledIters     int     `json:"recycled_anchor_iters"`
	MeanItersRecycled float64 `json:"mean_anchor_iters_recycled"`
	MeanItersWarmOnly float64 `json:"mean_anchor_iters_warm_only"`
}

// TestBenchFasthenrySnapshot times the FastHenry-style loop extractor
// across solver modes (dense complex LU, flat-ACA GMRES, nested-basis
// H² GMRES) and worker counts, and writes BENCH_fasthenry.json. Where
// the dense oracle is feasible (<= 2048 filaments) every compressed
// sweep is checked against it pointwise, so the bench doubles as a
// large-scale equivalence test; at 16k filaments flat ACA and nested
// cross-check each other and nested must win on wall clock; the
// largest size (~102k filaments) runs nested-only — the regime the
// O(N log N) operator exists for. Only runs when BENCH_FASTHENRY=1;
// regenerate with scripts/bench_fasthenry.sh.
func TestBenchFasthenrySnapshot(t *testing.T) {
	if os.Getenv("BENCH_FASTHENRY") == "" {
		t.Skip("set BENCH_FASTHENRY=1 to write BENCH_fasthenry.json")
	}

	cpus := runtime.NumCPU()
	workerCols := []int{1}
	if cpus > 1 {
		workerCols = append(workerCols, cpus)
	}
	opts := fasthenry.Options{NW: 4, NT: 2} // 8 filaments per wire

	sizes := []struct {
		wires  int
		dense  bool                  // dense oracle feasible
		modes  []fasthenry.SolveMode // compressed modes to measure
		points int
		fstop  float64
	}{
		{36, true, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 6, 2e10},
		{98, true, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 6, 2e10},
		{256, true, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 6, 2e10},
		{2048, false, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 3, 2e10},
		{12800, false, []fasthenry.SolveMode{fasthenry.ModeNested}, 2, 1e9},
	}

	var rows []benchRow
	for _, sz := range sizes {
		lay, segs, port, shorts := benchLoopBus(sz.wires)
		freqs := fasthenry.LogSpace(1e8, sz.fstop, sz.points)
		mk := func(mode fasthenry.SolveMode, w int) *fasthenry.Solver {
			o := opts
			o.Mode = mode
			o.Workers = w
			s, err := fasthenry.NewSolver(lay, segs, port, shorts, sz.fstop, o)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		run := func(mode fasthenry.SolveMode, w int) (benchRow, []fasthenry.Point) {
			s := mk(mode, w)
			t0 := time.Now()
			st := s.OperatorStats() // forces the lazy operator build
			buildSec := time.Since(t0).Seconds()
			t1 := time.Now()
			pts, err := s.SweepParallel(freqs, w)
			if err != nil {
				t.Fatalf("%v sweep at %d wires: %v", mode, sz.wires, err)
			}
			sweepSec := time.Since(t1).Seconds()
			row := benchRow{
				Wires: sz.wires, Filaments: s.NumFilaments(),
				Mode: mode.String(), Workers: w, SweepPoints: len(freqs),
				BuildSec: buildSec, SweepSec: sweepSec, TotalSec: buildSec + sweepSec,
			}
			if mode != fasthenry.ModeDense {
				row.FarBlocks = st.FarBlocks
				row.MaxRank = st.MaxRank
				row.CompressionX = st.CompressionRatio()
				row.KernelFrac = float64(st.KernelEvals) / float64(st.DenseKernelEntries)
				row.NearEvals = st.NearKernelEvals
				row.FarEvals = st.FarKernelEvals
				for _, p := range pts {
					row.GMRESIters = append(row.GMRESIters, p.Iters)
				}
			}
			return row, pts
		}
		maxRelErr := func(got, ref []fasthenry.Point) float64 {
			worst := 0.0
			for i := range got {
				if d := cmplx.Abs(got[i].Z-ref[i].Z) / cmplx.Abs(ref[i].Z); d > worst {
					worst = d
				}
			}
			return worst
		}

		// perMode[mode] holds the workers=1 sweep for cross-checks (the
		// operators are bit-identical at any worker count).
		perMode := map[string][]fasthenry.Point{}
		for _, w := range workerCols {
			var densePts []fasthenry.Point
			if sz.dense {
				row, pts := run(fasthenry.ModeDense, w)
				densePts = pts
				rows = append(rows, row)
				perMode[row.Mode] = pts
				t.Logf("%5d wires %6d fils dense    w=%d: %.2fs", sz.wires, row.Filaments, w, row.TotalSec)
			}
			for _, mode := range sz.modes {
				row, pts := run(mode, w)
				if sz.dense {
					row.MaxRelErr = maxRelErr(pts, densePts)
					if row.MaxRelErr > 1e-6 {
						t.Errorf("%d wires %s w=%d: deviates from dense by %.3g (tolerance 1e-6)",
							sz.wires, row.Mode, w, row.MaxRelErr)
					}
				}
				rows = append(rows, row)
				perMode[row.Mode] = pts
				t.Logf("%5d wires %6d fils %-9s w=%d: build %.2fs sweep %.2fs iters %v err %.2g",
					sz.wires, row.Filaments, row.Mode, w, row.BuildSec, row.SweepSec,
					row.GMRESIters, row.MaxRelErr)
			}
		}
		// At the largest common size the two compressed operators
		// cross-check each other (no dense oracle) and the nested build
		// must pay for itself end to end.
		if !sz.dense && len(sz.modes) == 2 {
			flat, nested := perMode[fasthenry.ModeIterative.String()], perMode[fasthenry.ModeNested.String()]
			if d := maxRelErr(nested, flat); d > 1e-6 {
				t.Errorf("%d wires: nested and flat ACA disagree by %.3g (tolerance 1e-6)", sz.wires, d)
			}
			var flatTotal, nestedTotal float64
			for _, r := range rows {
				if r.Wires == sz.wires && r.Workers == workerCols[len(workerCols)-1] {
					switch r.Mode {
					case fasthenry.ModeIterative.String():
						flatTotal = r.TotalSec
					case fasthenry.ModeNested.String():
						nestedTotal = r.TotalSec
					}
				}
			}
			if nestedTotal >= flatTotal {
				t.Errorf("%d wires: nested total %.2fs not below flat ACA total %.2fs",
					sz.wires, nestedTotal, flatTotal)
			}
		}
	}

	// Adaptive-sweep benchmark: the 2048-filament case swept at 200
	// points/decade over 3 decades. Exact iterative mode solves all 601
	// points with warm-started GMRES; adaptive mode solves a few dozen
	// rational-fit anchors with recycled GMRES and interpolates the
	// rest. A third run disables Krylov recycling (warm starts only,
	// RecycleDim=-1) to isolate the recycling win on the anchor solves.
	adaptiveRows := func() []benchAdaptiveRow {
		const wires = 256
		w := workerCols[len(workerCols)-1]
		lay, segs, port, shorts := benchLoopBus(wires)
		freqs := fasthenry.LogSpace(1e8, 1e11, 601) // 200 pts/decade over 3 decades
		const tol = 1e-7                            // fit tolerance well under the 1e-6 deviation budget
		mkSweep := func(sm sweep.Mode, recycle int) *fasthenry.Solver {
			o := opts
			o.Mode = fasthenry.ModeIterative
			o.Workers = w
			o.SweepMode = sm
			o.SweepTol = tol
			o.RecycleDim = recycle
			s, err := fasthenry.NewSolver(lay, segs, port, shorts, 1e11, o)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		runSweep := func(sm sweep.Mode, recycle int) ([]fasthenry.Point, float64) {
			s := mkSweep(sm, recycle)
			s.OperatorStats() // exclude the lazy operator build from sweep time
			t0 := time.Now()
			pts, err := s.SweepParallel(freqs, w)
			if err != nil {
				t.Fatalf("adaptive bench sweep (%v, recycle %d): %v", sm, recycle, err)
			}
			return pts, time.Since(t0).Seconds()
		}
		anchorStats := func(pts []fasthenry.Point) (anchors, iters int) {
			for _, p := range pts {
				if !p.Interp {
					anchors++
					iters += p.Iters
				}
			}
			return
		}

		exactPts, exactSec := runSweep(sweep.ModeExact, 0)
		adPts, adSec := runSweep(sweep.ModeAdaptive, 0)
		warmPts, _ := runSweep(sweep.ModeAdaptive, -1)

		_, exactIters := anchorStats(exactPts)
		anchors, recIters := anchorStats(adPts)
		warmAnchors, warmIters := anchorStats(warmPts)
		row := benchAdaptiveRow{
			Wires: wires, Filaments: wires * opts.NW * opts.NT, Workers: w,
			SweepPoints: len(freqs), SweepTol: tol,
			ExactSweepSec: exactSec, AdaptiveSweepSec: adSec,
			SpeedupX:        exactSec / adSec,
			Anchors:         anchors,
			MaxRelErr:       maxRelErrPts(adPts, exactPts),
			ExactTotalIters: exactIters, RecycledIters: recIters,
			MeanItersRecycled: float64(recIters) / float64(anchors),
			MeanItersWarmOnly: float64(warmIters) / float64(warmAnchors),
		}
		t.Logf("adaptive %d fils %d pts w=%d: exact %.2fs, adaptive %.2fs (%.1fx), %d anchors, err %.2g, mean iters %.1f recycled vs %.1f warm-only",
			row.Filaments, row.SweepPoints, w, exactSec, adSec, row.SpeedupX,
			anchors, row.MaxRelErr, row.MeanItersRecycled, row.MeanItersWarmOnly)

		if row.SpeedupX < 5 {
			t.Errorf("adaptive sweep only %.2fx faster than exact iterative (acceptance floor 5x)", row.SpeedupX)
		}
		if row.MaxRelErr > 1e-6 {
			t.Errorf("adaptive sweep deviates from exact by %.3g (tolerance 1e-6)", row.MaxRelErr)
		}
		if row.MeanItersRecycled >= row.MeanItersWarmOnly {
			t.Errorf("recycled GMRES mean anchor iters %.2f not below warm-start-only %.2f",
				row.MeanItersRecycled, row.MeanItersWarmOnly)
		}
		return []benchAdaptiveRow{row}
	}()

	// Microstrip-over-plane benchmark: the shared mesh lowers the plane
	// into ~2*nw^2 grid filaments and all three solve paths consume the
	// same filament set. The dense oracle stays feasible at every size
	// because the nodal reduction solves one system per reduced node —
	// a plane carries ~nw^2 nodes, so node count (not filament count)
	// caps how far the iterative paths can be pushed here; flat and
	// nested also cross-check each other at the largest size.
	planeRows := func() []benchRow {
		lay, segs, port, shorts := benchMicrostripPlane()
		w := workerCols[len(workerCols)-1]
		sizes := []struct {
			planeNW int
			modes   []fasthenry.SolveMode
			points  int
		}{
			{16, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 3},
			{24, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 3},
			{32, []fasthenry.SolveMode{fasthenry.ModeIterative, fasthenry.ModeNested}, 2},
		}
		var out []benchRow
		for _, sz := range sizes {
			freqs := fasthenry.LogSpace(1e8, 2e10, sz.points)
			run := func(mode fasthenry.SolveMode) (benchRow, []fasthenry.Point) {
				s, err := fasthenry.NewSolver(lay, segs, port, shorts, 2e10, fasthenry.Options{
					MaxPerSide: 2, PlaneNW: sz.planeNW, Mode: mode, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				t0 := time.Now()
				s.OperatorStats()
				buildSec := time.Since(t0).Seconds()
				t1 := time.Now()
				pts, err := s.SweepParallel(freqs, w)
				if err != nil {
					t.Fatalf("plane %v sweep at nw=%d: %v", mode, sz.planeNW, err)
				}
				sweepSec := time.Since(t1).Seconds()
				return benchRow{
					PlaneNW: sz.planeNW, Filaments: s.NumFilaments(),
					Mode: mode.String(), Workers: w, SweepPoints: len(freqs),
					BuildSec: buildSec, SweepSec: sweepSec, TotalSec: buildSec + sweepSec,
				}, pts
			}
			perMode := map[string][]fasthenry.Point{}
			denseRow, densePts := run(fasthenry.ModeDense)
			out = append(out, denseRow)
			t.Logf("plane nw=%3d %6d fils dense    : %.2fs", sz.planeNW, denseRow.Filaments, denseRow.TotalSec)
			for _, mode := range sz.modes {
				row, pts := run(mode)
				row.MaxRelErr = maxRelErrPts(pts, densePts)
				if row.MaxRelErr > 1e-6 {
					t.Errorf("plane nw=%d %s: deviates from dense by %.3g (tolerance 1e-6)",
						sz.planeNW, row.Mode, row.MaxRelErr)
				}
				perMode[row.Mode] = pts
				out = append(out, row)
				t.Logf("plane nw=%3d %6d fils %-9s: build %.2fs sweep %.2fs err %.2g",
					sz.planeNW, row.Filaments, row.Mode, row.BuildSec, row.SweepSec, row.MaxRelErr)
			}
			flat, nested := perMode[fasthenry.ModeIterative.String()], perMode[fasthenry.ModeNested.String()]
			if d := maxRelErrPts(nested, flat); d > 1e-6 {
				t.Errorf("plane nw=%d: nested and flat ACA disagree by %.3g (tolerance 1e-6)", sz.planeNW, d)
			}
		}
		return out
	}()

	out, err := json.MarshalIndent(struct {
		Note     string             `json:"note"`
		CPUs     int                `json:"cpus"`
		Rows     []benchRow         `json:"loop_extraction"`
		Plane    []benchRow         `json:"microstrip_plane"`
		Adaptive []benchAdaptiveRow `json:"adaptive_sweep"`
	}{
		Note:     "FastHenry loop-extraction sweep: dense complex LU vs flat-ACA GMRES vs nested-basis (H2) GMRES, per worker column (columns coincide when cpus=1); compressed modes are checked against the dense oracle where feasible; microstrip_plane runs the same three paths over a conductor plane lowered through the shared filament mesh (internal/mesh) at rising grid density; adaptive_sweep compares the rational-interpolation sweep (recycled-GMRES anchors) against exact per-point iterative solves on a dense grid; regenerate with scripts/bench_fasthenry.sh",
		CPUs:     cpus,
		Rows:     rows,
		Plane:    planeRows,
		Adaptive: adaptiveRows,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fasthenry.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_fasthenry.json")
}
