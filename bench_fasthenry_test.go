package repro

import (
	"encoding/json"
	"fmt"
	"math/cmplx"
	"os"
	"testing"
	"time"

	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// benchLoopBus builds the loop-extraction benchmark structure: a signal
// wire with nWires-1 return wires on the same layer, returns tied
// together at both ends and to the signal at the far end. One segment
// per wire; the filament count is nWires * nw * nt.
func benchLoopBus(nWires int) (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	const (
		length = 1e-3
		width  = 1e-6
		pitch  = 2e-6
	)
	var segs []int
	for w := 0; w < nWires; w++ {
		net, a, b := "GND", fmt.Sprintf("g%d_0", w), fmt.Sprintf("g%d_1", w)
		if w == 0 {
			net, a, b = "sig", "s0", "s1"
		}
		segs = append(segs, lay.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, X0: 0, Y0: float64(w) * pitch,
			Length: length, Width: width, Net: net, NodeA: a, NodeB: b,
		}))
	}
	var shorts [][2]string
	for w := 2; w < nWires; w++ {
		shorts = append(shorts,
			[2]string{fmt.Sprintf("g%d_0", w-1), fmt.Sprintf("g%d_0", w)},
			[2]string{fmt.Sprintf("g%d_1", w-1), fmt.Sprintf("g%d_1", w)})
	}
	shorts = append(shorts, [2]string{"s1", "g1_1"})
	return lay, segs, fasthenry.Port{Plus: "s0", Minus: "g1_0"}, shorts
}

// TestBenchFasthenrySnapshot times dense vs matrix-free iterative
// frequency sweeps of the FastHenry-style loop extractor at three
// filament counts and writes BENCH_fasthenry.json. Each iterative
// sweep is also checked against the dense oracle pointwise, so the
// bench doubles as a large-scale equivalence test. Only runs when
// BENCH_FASTHENRY=1; regenerate with scripts/bench_fasthenry.sh.
func TestBenchFasthenrySnapshot(t *testing.T) {
	if os.Getenv("BENCH_FASTHENRY") == "" {
		t.Skip("set BENCH_FASTHENRY=1 to write BENCH_fasthenry.json")
	}

	type sizeResult struct {
		Wires           int     `json:"wires"`
		Filaments       int     `json:"filaments"`
		SweepPoints     int     `json:"sweep_points"`
		DenseSec        float64 `json:"dense_sweep_sec"`
		IterativeSec    float64 `json:"iterative_sweep_sec"`
		Speedup         float64 `json:"speedup"`
		GMRESIters      []int   `json:"gmres_iters_per_point"`
		MaxRelErr       float64 `json:"max_rel_err_vs_dense"`
		ACAFarBlocks    int     `json:"aca_far_blocks"`
		ACAMaxRank      int     `json:"aca_max_rank"`
		CompressionX    float64 `json:"storage_compression_x"`
		KernelFrac      float64 `json:"kernel_eval_fraction"`
		OperatorBuildMs float64 `json:"operator_build_ms"`
	}
	var results []sizeResult

	freqs := fasthenry.LogSpace(1e8, 2e10, 6)
	opts := fasthenry.Options{NW: 4, NT: 2}
	workers := matrix.Workers()

	for _, nWires := range []int{36, 98, 256} {
		lay, segs, port, shorts := benchLoopBus(nWires)
		mk := func(mode fasthenry.SolveMode) *fasthenry.Solver {
			s, err := fasthenry.NewSolver(lay, segs, port, shorts, 2e10, opts)
			if err != nil {
				t.Fatal(err)
			}
			s.SetSolveMode(mode)
			return s
		}

		dense := mk(fasthenry.ModeDense)
		t0 := time.Now()
		densePts, err := dense.SweepParallel(freqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		denseSec := time.Since(t0).Seconds()

		iter := mk(fasthenry.ModeIterative)
		tb := time.Now()
		opStats := iter.OperatorStats()
		buildMs := float64(time.Since(tb).Microseconds()) / 1e3
		t1 := time.Now()
		iterPts, err := iter.SweepParallel(freqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		iterSec := time.Since(t1).Seconds()

		res := sizeResult{
			Wires:           nWires,
			Filaments:       dense.NumFilaments(),
			SweepPoints:     len(freqs),
			DenseSec:        denseSec,
			IterativeSec:    iterSec,
			Speedup:         denseSec / iterSec,
			ACAFarBlocks:    opStats.FarBlocks,
			ACAMaxRank:      opStats.MaxRank,
			CompressionX:    opStats.CompressionRatio(),
			KernelFrac:      float64(opStats.KernelEvals) / float64(opStats.DenseKernelEntries),
			OperatorBuildMs: buildMs,
		}
		for i := range iterPts {
			res.GMRESIters = append(res.GMRESIters, iterPts[i].Iters)
			d := cmplx.Abs(iterPts[i].Z-densePts[i].Z) / cmplx.Abs(densePts[i].Z)
			if d > res.MaxRelErr {
				res.MaxRelErr = d
			}
		}
		if res.MaxRelErr > 1e-6 {
			t.Errorf("%d filaments: iterative deviates from dense by %.3g (tolerance 1e-6)",
				res.Filaments, res.MaxRelErr)
		}
		t.Logf("%4d wires, %5d filaments: dense %.2fs, iterative %.2fs (%.1fx), iters %v, err %.2g",
			nWires, res.Filaments, denseSec, iterSec, res.Speedup, res.GMRESIters, res.MaxRelErr)
		results = append(results, res)
	}

	last := results[len(results)-1]
	if last.Speedup < 5 {
		t.Errorf("iterative sweep speedup at %d filaments is %.1fx, want >= 5x",
			last.Filaments, last.Speedup)
	}

	out, err := json.MarshalIndent(struct {
		Note    string       `json:"note"`
		Workers int          `json:"workers"`
		Sizes   []sizeResult `json:"loop_extraction"`
	}{
		Note:    "FastHenry loop-extraction sweep: dense complex LU vs matrix-free GMRES over the ACA-compressed operator; regenerate with scripts/bench_fasthenry.sh",
		Workers: workers,
		Sizes:   results,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fasthenry.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_fasthenry.json")
}
