package pkgmodel

import (
	"math"
	"testing"

	"inductance101/internal/circuit"
	"inductance101/internal/sim"
)

func TestPresets(t *testing.T) {
	wb, fc := WireBond(), FlipChip()
	if wb.LeadL <= fc.LeadL {
		t.Errorf("wire bond must have more inductance than flip chip")
	}
	if fc.LeadL <= 0 || fc.LeadR <= 0 || fc.PadR <= 0 {
		t.Errorf("flip chip preset non-physical: %+v", fc)
	}
}

func TestBarConnection(t *testing.T) {
	c := BarConnection(2e-3, 100e-6, 30e-6, 0.05, 0.02)
	// A 2mm bar is in the nH range.
	if c.LeadL < 0.5e-9 || c.LeadL > 5e-9 {
		t.Errorf("bar inductance = %g, expected ~1-2nH", c.LeadL)
	}
}

func TestStampImpedance(t *testing.T) {
	c := Connection{LeadR: 0.1, LeadL: 2e-9, PadR: 0.05}
	n := circuit.New()
	vi := n.AddV("v", "ext", "0", circuit.DC(0))
	if _, err := c.Stamp(n, "pkg", "ext", "0"); err != nil {
		t.Fatal(err)
	}
	f := 1e9
	z, err := sim.InputImpedance(n, vi, f)
	if err != nil {
		t.Fatal(err)
	}
	wantR := 0.15
	wantX := 2 * math.Pi * f * 2e-9
	if math.Abs(real(z)-wantR)/wantR > 1e-6 || math.Abs(imag(z)-wantX)/wantX > 1e-6 {
		t.Errorf("stamped package Z = %v, want %g + j%g", z, wantR, wantX)
	}
}

func TestStampValidation(t *testing.T) {
	n := circuit.New()
	if _, err := (Connection{LeadR: 0, LeadL: 1e-9, PadR: 0.1}).Stamp(n, "p", "a", "b"); err == nil {
		t.Errorf("zero lead R accepted")
	}
}

func TestSupplyParallelism(t *testing.T) {
	s := Supply{Conn: WireBond(), NPads: 8}
	if math.Abs(s.EffectiveL()-WireBond().LeadL/8) > 1e-18 {
		t.Errorf("EffectiveL = %g", s.EffectiveL())
	}
	if s.EffectiveR() <= 0 {
		t.Errorf("EffectiveR = %g", s.EffectiveR())
	}
	if (Supply{}).EffectiveL() != 0 || (Supply{}).EffectiveR() != 0 {
		t.Errorf("zero-pad supply should be 0")
	}
}
