// Package pkgmodel implements the paper's pad/package parasitic model:
// external power and ground reach the chip through package leads and
// pads, whose inductance significantly affects on-chip behaviour. The
// package planes themselves are assumed ideal (the voltage difference
// across them is a few mV, the paper's own assumption); each supply
// connection is modeled as a bar inductance plus lead and via
// resistance.
package pkgmodel

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/extract"
)

// Connection is one pad-plus-lead supply connection.
type Connection struct {
	// LeadR and LeadL are the package lead parasitics.
	LeadR float64
	LeadL float64
	// PadR is the pad plus pad-via resistance.
	PadR float64
}

// WireBond returns typical wire-bond package parasitics: a few nH of
// lead inductance — the reason Ldi/dt noise dominates wire-bonded parts.
func WireBond() Connection {
	return Connection{LeadR: 0.05, LeadL: 3e-9, PadR: 0.02}
}

// FlipChip returns typical flip-chip (C4) parasitics: an order of
// magnitude less inductance than wire bond.
func FlipChip() Connection {
	return Connection{LeadR: 0.01, LeadL: 0.15e-9, PadR: 0.005}
}

// BarConnection models the lead as a rectangular bar of the given
// dimensions (the paper: "the package is modeled as a bar, including the
// pad and a via between the pad and package"), computing its inductance
// from the PEEC self-inductance formula.
func BarConnection(length, width, thickness, leadR, padR float64) Connection {
	return Connection{
		LeadR: leadR,
		LeadL: extract.SelfInductanceBar(length, width, thickness),
		PadR:  padR,
	}
}

// Stamp adds the connection between the external (ideal) supply node and
// the on-chip pad node: external --R_lead--L_lead--R_pad-- pad.
// Returns the inductor index for current probing.
func (c Connection) Stamp(n *circuit.Netlist, prefix, external, pad string) (int, error) {
	if c.LeadR <= 0 || c.PadR <= 0 || c.LeadL < 0 {
		return 0, fmt.Errorf("pkgmodel: non-physical connection %+v", c)
	}
	m1 := prefix + ".m1"
	m2 := prefix + ".m2"
	n.AddR(prefix+".rlead", external, m1, c.LeadR)
	li := n.AddL(prefix+".llead", m1, m2, c.LeadL)
	n.AddR(prefix+".rpad", m2, pad, c.PadR)
	return li, nil
}

// Supply describes a chip supply brought in over several parallel
// pad/lead connections (more pads = lower effective package impedance,
// a first-order design lever for di/dt noise).
type Supply struct {
	Conn  Connection
	NPads int
}

// EffectiveL returns the parallel combination of the pad inductances.
func (s Supply) EffectiveL() float64 {
	if s.NPads <= 0 {
		return 0
	}
	return s.Conn.LeadL / float64(s.NPads)
}

// EffectiveR returns the parallel combination of the lead+pad
// resistances.
func (s Supply) EffectiveR() float64 {
	if s.NPads <= 0 {
		return 0
	}
	return (s.Conn.LeadR + s.Conn.PadR) / float64(s.NPads)
}
