package sim

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// sparseThreshold is the MNA system size at which the simulator's
// linear paths switch from the dense kernels to the sparse direct
// solver. Below it the dense LU is faster (no graph overhead) and
// serves as the testing oracle; above it the sparse factorization wins
// asymptotically on the grid/interconnect matrices this repository
// assembles.
var sparseThreshold = 256

// SetSparseThreshold sets the dense/sparse switch-over size and returns
// the previous value. Tests and benchmarks use it to force one path or
// the other; production code should leave the default alone.
//
// Deprecated: SetSparseThreshold mutates process-wide state, so two
// analyses with different switch-over sizes cannot coexist. New code
// should set Policy.SparseThreshold on the run's
// TranOptions/AdaptiveOptions (or the ACSweepPolicy argument) instead —
// see internal/engine for the config that builds one per run. The shim
// remains so existing call sites keep their exact behavior.
func SetSparseThreshold(n int) int {
	old := sparseThreshold
	sparseThreshold = n
	return old
}

// useSparsePath reports whether the netlist's linear analyses should
// run on the sparse direct solver under the given policy. Nonlinear
// netlists stay dense: the Newton loop restamps the MOSFET Jacobian
// into a dense copy each iteration.
func useSparsePath(n *circuit.Netlist, pol Policy) bool {
	return len(n.MOSFETs) == 0 && pol.sparseAt(n.Size())
}

// sparseGmin returns G + gmin*I(nodes) as a fresh triplet — the sparse
// twin of applyGmin.
func sparseGmin(sm *circuit.SparseMNA, gmin float64) *matrix.Triplet {
	size := sm.Size()
	g := matrix.NewTriplet(size, size).AddScaled(1, sm.G)
	for i := 0; i < sm.N.NumNodes(); i++ {
		g.Add(i, i, gmin)
	}
	return g
}

// opSparse computes the DC operating point of a linear netlist with the
// sparse LU (capacitors open, inductors short, sources at t0).
func opSparse(sm *circuit.SparseMNA, t0, gmin float64, workers int) ([]float64, error) {
	if gmin <= 0 {
		gmin = 1e-12
	}
	f, err := matrix.FactorSparseLUWorkers(sparseGmin(sm, gmin).ToCSC(), workers)
	if err != nil {
		return nil, fmt.Errorf("sim: singular DC system: %w", err)
	}
	b := make([]float64, sm.Size())
	sm.RHS(t0, b)
	return f.Solve(b)
}

// tranSparse is the sparse fixed-step transient: identical companion
// integration to TranFrom's linear path, but the system is assembled as
// triplets, factored by the sparse LU, and the history matvec runs on a
// CSR — nothing O(size^2) is ever built.
func tranSparse(n *circuit.Netlist, opt TranOptions) (*TranResult, error) {
	sm := circuit.BuildSparse(n)
	x0, err := opSparse(sm, 0, opt.Gmin, opt.Policy.Workers)
	if err != nil {
		return nil, err
	}
	size := sm.Size()
	h := opt.TStep
	var alpha float64
	switch opt.Method {
	case Trapezoidal:
		alpha = 2 / h
	case BackwardEuler:
		alpha = 1 / h
	default:
		return nil, fmt.Errorf("sim: unknown method %d", opt.Method)
	}

	// A_lin = alpha*C + G (+gmin); Hist = alpha*C - G (trap) or alpha*C (BE).
	aLin := sparseGmin(sm, opt.Gmin).AddScaled(alpha, sm.C)
	f, err := matrix.FactorSparseLUWorkers(aLin.ToCSC(), opt.Policy.Workers)
	if err != nil {
		return nil, fmt.Errorf("sim: singular transient system: %w", err)
	}
	histT := matrix.NewTriplet(size, size).AddScaled(alpha, sm.C)
	if opt.Method == Trapezoidal {
		histT.AddScaled(-1, sm.G)
	}
	hist := histT.ToCSR()

	steps := int(opt.TStop/h + 0.5)
	res := &TranResult{Netlist: n}
	x := matrix.CloneVec(x0)
	res.Times = append(res.Times, 0)
	res.States = append(res.States, matrix.CloneVec(x))

	bPrev := make([]float64, size)
	sm.RHS(0, bPrev)
	bNow := make([]float64, size)
	rhsBase := make([]float64, size)
	scratch := make([]float64, size)
	xNew := make([]float64, size)
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		sm.RHS(t, bNow)
		hist.MulVecTo(rhsBase, x)
		if opt.Method == Trapezoidal {
			matrix.Axpy(1, bPrev, rhsBase)
		}
		matrix.Axpy(1, bNow, rhsBase)
		if err := f.SolveTo(xNew, rhsBase, scratch); err != nil {
			return nil, err
		}
		x, xNew = xNew, x
		if opt.Method == Trapezoidal {
			copy(bPrev, bNow)
		}
		if k%opt.SaveEvery == 0 || k == steps {
			res.Times = append(res.Times, t)
			res.States = append(res.States, matrix.CloneVec(x))
		}
	}
	return res, nil
}

// sparseStepper is the sparse twin of the adaptive stepper for linear
// netlists: per-step-size numeric factorizations share the symbolic
// pattern of the first factored step size and refactor numerically;
// only a pattern change or pivot drift falls back to a fresh analysis.
type sparseStepper struct {
	sm      *circuit.SparseMNA
	gminG   *matrix.Triplet // G + gmin
	cache   map[float64]*sparseStepFactor
	sym     *matrix.SparseLU // symbolic donor from the first factorization
	workers int              // Refactor/factor worker count; 0 = process default
	// refreshed counts fresh re-analyses forced by drift/pattern change.
	refreshed int
}

type sparseStepFactor struct {
	lu   *matrix.SparseLU
	hist *matrix.CSR
}

func newSparseStepper(sm *circuit.SparseMNA, gmin float64, workers int) *sparseStepper {
	return &sparseStepper{
		sm:      sm,
		gminG:   sparseGmin(sm, gmin),
		cache:   make(map[float64]*sparseStepFactor),
		workers: workers,
	}
}

func (s *sparseStepper) factors(h float64) (*sparseStepFactor, error) {
	if f, ok := s.cache[h]; ok {
		return f, nil
	}
	alpha := 2 / h
	size := s.sm.Size()
	a := matrix.NewTriplet(size, size).AddScaled(1, s.gminG).AddScaled(alpha, s.sm.C).ToCSC()
	var lu *matrix.SparseLU
	if s.sym != nil {
		cand := s.sym.NewNumeric()
		if err := cand.Refactor(a); err == nil {
			lu = cand
		}
	}
	if lu == nil {
		fresh, err := matrix.FactorSparseLUWorkers(a, s.workers)
		if err != nil {
			return nil, fmt.Errorf("sim: singular adaptive system at h=%g: %w", h, err)
		}
		if s.sym != nil {
			s.refreshed++
		}
		s.sym = fresh
		lu = fresh
	}
	hist := matrix.NewTriplet(size, size).AddScaled(alpha, s.sm.C).AddScaled(-1, s.sm.G).ToCSR()
	f := &sparseStepFactor{lu: lu, hist: hist}
	if len(s.cache) > 64 {
		s.cache = make(map[float64]*sparseStepFactor)
	}
	s.cache[h] = f
	return f, nil
}

func (s *sparseStepper) advance(x, bPrev []float64, t, h float64) ([]float64, error) {
	f, err := s.factors(h)
	if err != nil {
		return nil, err
	}
	size := s.sm.Size()
	bNow := make([]float64, size)
	s.sm.RHS(t+h, bNow)
	rhs := make([]float64, size)
	f.hist.MulVecTo(rhs, x)
	matrix.Axpy(1, bPrev, rhs)
	matrix.Axpy(1, bNow, rhs)
	return f.lu.Solve(rhs)
}

// tranAdaptiveSparse mirrors TranAdaptive's step-doubling control loop
// on the sparse stepper (linear netlists only, so the device-current
// vector is identically zero and drops out).
func tranAdaptiveSparse(n *circuit.Netlist, opt AdaptiveOptions) (*TranResult, error) {
	sm := circuit.BuildSparse(n)
	x0, err := opSparse(sm, 0, opt.Gmin, opt.Policy.Workers)
	if err != nil {
		return nil, err
	}
	s := newSparseStepper(sm, opt.Gmin, opt.Policy.Workers)
	res := &TranResult{Netlist: n}
	x := matrix.CloneVec(x0)
	t := 0.0
	res.Times = append(res.Times, 0)
	res.States = append(res.States, matrix.CloneVec(x))

	size := sm.Size()
	b0 := make([]float64, size)
	b1 := make([]float64, size)
	accepted, rejected := 0, 0
	h := opt.HInit
	for t < opt.TStop {
		if t+h > opt.TStop {
			h = opt.TStop - t
		}
		sm.RHS(t, b0)
		xFull, err := s.advance(x, b0, t, h)
		if err != nil {
			return nil, err
		}
		xHalf, err := s.advance(x, b0, t, h/2)
		if err != nil {
			return nil, err
		}
		sm.RHS(t+h/2, b1)
		xHalf2, err := s.advance(xHalf, b1, t+h/2, h/2)
		if err != nil {
			return nil, err
		}
		errEst := matrix.NormInf(matrix.Sub(xFull, xHalf2))
		if errEst > opt.Tol && h > opt.HMin*(1+1e-12) {
			rejected++
			h = math.Max(h/2, opt.HMin)
			continue
		}
		accepted++
		t += h
		x = xHalf2
		res.Times = append(res.Times, t)
		res.States = append(res.States, matrix.CloneVec(x))
		if errEst < opt.Tol/8 && h < opt.HMax {
			h = math.Min(h*2, opt.HMax)
		}
		if len(res.Times) > 10_000_000 {
			return nil, fmt.Errorf("sim: adaptive transient exceeded 1e7 points (tol too tight?)")
		}
	}
	res.Steps = &StepStats{Accepted: accepted, Rejected: rejected}
	return res, nil
}
