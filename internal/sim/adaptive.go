package sim

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// AdaptiveOptions configures local-truncation-error-controlled
// transient analysis: the production-SPICE feature that makes long
// simulations of stiff grids practical (fine steps through edges,
// coarse steps through settling tails).
type AdaptiveOptions struct {
	TStop float64
	// HInit, HMin, HMax bound the step size (defaults: TStop/1e3,
	// TStop/1e7, TStop/50).
	HInit, HMin, HMax float64
	// Tol is the per-step local error target (infinity norm, volts/
	// amps; default 1e-4).
	Tol float64
	// Everything else follows TranOptions semantics.
	MaxNewton int
	NewtonTol float64
	Gmin      float64
	// Policy pins the run's solver resources (worker count, dense/sparse
	// switch-over). The zero value inherits the process defaults.
	Policy Policy
}

func (o *AdaptiveOptions) setDefaults() error {
	if o.TStop <= 0 {
		return fmt.Errorf("sim: TStop must be positive")
	}
	if o.HInit <= 0 {
		o.HInit = o.TStop / 1000
	}
	if o.HMin <= 0 {
		o.HMin = o.TStop / 1e7
	}
	if o.HMax <= 0 {
		o.HMax = o.TStop / 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 50
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = 1e-9
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-12
	}
	return nil
}

// stepper advances the trapezoidal companion system by one step of a
// given size, caching LU factors per step size for linear circuits.
type stepper struct {
	m      *circuit.MNA
	opt    AdaptiveOptions
	linear bool
	gmin   *matrix.Dense
	// factor cache: h -> (A = 2C/h + G factorized, Hist = 2C/h - G)
	cache map[float64]*stepFactor
	// Accepted/rejected step counters (cost accounting).
	accepted, rejected int
}

type stepFactor struct {
	lu   *matrix.LU
	aLin *matrix.Dense
	hist *matrix.Dense
}

func newStepper(m *circuit.MNA, opt AdaptiveOptions) *stepper {
	return &stepper{
		m: m, opt: opt,
		linear: len(m.N.MOSFETs) == 0,
		gmin:   applyGmin(m.G, m.N.NumNodes(), opt.Gmin),
		cache:  make(map[float64]*stepFactor),
	}
}

func (s *stepper) factors(h float64) (*stepFactor, error) {
	if f, ok := s.cache[h]; ok {
		return f, nil
	}
	alpha := 2 / h
	aLin := s.m.C.Clone().Scale(alpha).AddMat(s.gmin)
	hist := s.m.C.Clone().Scale(alpha).AddScaled(-1, s.m.G)
	f := &stepFactor{aLin: aLin, hist: hist}
	if s.linear {
		lu, err := matrix.FactorLUWorkers(aLin, s.opt.Policy.Workers)
		if err != nil {
			return nil, fmt.Errorf("sim: singular adaptive system at h=%g: %w", h, err)
		}
		f.lu = lu
	}
	// Bound the cache: step sizes are halved/doubled so only a few
	// distinct values occur; evict wholesale if something pathological
	// happens.
	if len(s.cache) > 64 {
		s.cache = make(map[float64]*stepFactor)
	}
	s.cache[h] = f
	return f, nil
}

// advance computes the state at t+h from (x, t) with trapezoidal
// integration (bPrev/fPrev are source and device currents at t).
func (s *stepper) advance(x, bPrev, fPrev []float64, t, h float64) ([]float64, error) {
	f, err := s.factors(h)
	if err != nil {
		return nil, err
	}
	size := s.m.Size()
	bNow := make([]float64, size)
	s.m.RHS(t+h, bNow)
	rhs := f.hist.MulVec(x)
	matrix.Axpy(1, bPrev, rhs)
	matrix.Axpy(1, fPrev, rhs)
	matrix.Axpy(1, bNow, rhs)
	if s.linear {
		return f.lu.Solve(rhs)
	}
	topt := TranOptions{MaxNewton: s.opt.MaxNewton, NewtonTol: s.opt.NewtonTol, Policy: s.opt.Policy}
	xn, _, err := newtonStep(s.m.N, f.aLin, rhs, x, topt)
	return xn, err
}

// sources returns b(t) and the nonlinear device currents f(x).
func (s *stepper) sources(t float64, x []float64) (b, fv []float64) {
	size := s.m.Size()
	b = make([]float64, size)
	s.m.RHS(t, b)
	fv = make([]float64, size)
	if !s.linear {
		deviceCurrents(s.m.N, x, fv)
	}
	return b, fv
}

// TranAdaptive runs an LTE-controlled transient: each step is computed
// once at h and once as two half steps; their difference estimates the
// local error (step doubling). Rejected steps halve h, comfortable
// steps grow it. The accepted solution is the more accurate two-half-
// step result.
func TranAdaptive(n *circuit.Netlist, opt AdaptiveOptions) (*TranResult, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	if useSparsePath(n, opt.Policy) {
		return tranAdaptiveSparse(n, opt)
	}
	m := circuit.Build(n)
	x0, err := OP(m, 0, TranOptions{MaxNewton: opt.MaxNewton, NewtonTol: opt.NewtonTol, Gmin: opt.Gmin, Policy: opt.Policy})
	if err != nil {
		return nil, err
	}
	s := newStepper(m, opt)
	res := &TranResult{Netlist: n}
	x := matrix.CloneVec(x0)
	t := 0.0
	res.Times = append(res.Times, 0)
	res.States = append(res.States, matrix.CloneVec(x))

	h := opt.HInit
	for t < opt.TStop {
		if t+h > opt.TStop {
			h = opt.TStop - t
		}
		b0, f0 := s.sources(t, x)
		// Full step.
		xFull, err := s.advance(x, b0, f0, t, h)
		if err != nil {
			return nil, err
		}
		// Two half steps.
		xHalf, err := s.advance(x, b0, f0, t, h/2)
		if err != nil {
			return nil, err
		}
		b1, f1 := s.sources(t+h/2, xHalf)
		xHalf2, err := s.advance(xHalf, b1, f1, t+h/2, h/2)
		if err != nil {
			return nil, err
		}
		errEst := matrix.NormInf(matrix.Sub(xFull, xHalf2))
		if errEst > opt.Tol && h > opt.HMin*(1+1e-12) {
			s.rejected++
			h = math.Max(h/2, opt.HMin)
			continue
		}
		s.accepted++
		t += h
		x = xHalf2
		res.Times = append(res.Times, t)
		res.States = append(res.States, matrix.CloneVec(x))
		if errEst < opt.Tol/8 && h < opt.HMax {
			h = math.Min(h*2, opt.HMax)
		}
		if len(res.Times) > 10_000_000 {
			return nil, fmt.Errorf("sim: adaptive transient exceeded 1e7 points (tol too tight?)")
		}
	}
	res.Steps = &StepStats{Accepted: s.accepted, Rejected: s.rejected}
	return res, nil
}

// Interp linearly resamples a transient result onto the given time
// base, for comparing runs with different (e.g. adaptive) grids.
func Interp(r *TranResult, node string, times []float64) ([]float64, error) {
	v, err := r.V(node)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	j := 0
	for i, t := range times {
		for j+1 < len(r.Times) && r.Times[j+1] < t {
			j++
		}
		if j+1 >= len(r.Times) {
			out[i] = v[len(v)-1]
			continue
		}
		t0, t1 := r.Times[j], r.Times[j+1]
		if t <= t0 {
			out[i] = v[j]
			continue
		}
		f := (t - t0) / (t1 - t0)
		out[i] = v[j] + f*(v[j+1]-v[j])
	}
	return out, nil
}

// StepStats reports an adaptive run's cost counters.
type StepStats struct {
	Accepted, Rejected int
}
