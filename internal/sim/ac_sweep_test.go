package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"inductance101/internal/circuit"
	"inductance101/internal/sweep"
)

// TestACSweepAdaptiveMatchesExact is the AC-path property: for
// randomized RLC netlists the adaptive sweep agrees with the exact sweep
// within the sweep tolerance at every frequency, actually interpolates
// most points, and marks them.
func TestACSweepAdaptiveMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-6
	for trial := 0; trial < 5; trial++ {
		nodes := 4 + rng.Intn(12)
		n := randRLC(rng, nodes)
		probe := fmt.Sprintf("n%d", nodes)
		stim := ACStimulus{VSourceAmps: map[int]complex128{0: 1}}
		ppd := 30 + rng.Intn(40)
		exact, err := ACSweepPolicy(n, probe, stim, 1e6, 1e11, ppd,
			Policy{SweepMode: sweep.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := ACSweepPolicy(n, probe, stim, 1e6, 1e11, ppd,
			Policy{SweepMode: sweep.ModeAdaptive, SweepTol: tol})
		if err != nil {
			t.Fatal(err)
		}
		if len(adaptive) != len(exact) {
			t.Fatalf("trial %d: %d adaptive vs %d exact points", trial, len(adaptive), len(exact))
		}
		// Probe voltages of a passive divider can pass through deep
		// nulls; error is relative to the sweep's response scale.
		scale := 0.0
		for _, p := range exact {
			if a := cmplx.Abs(p.V); a > scale {
				scale = a
			}
		}
		interp := 0
		for k := range exact {
			if adaptive[k].Freq != exact[k].Freq {
				t.Fatalf("trial %d: frequency grids diverged at %d", trial, k)
			}
			if adaptive[k].Interp {
				interp++
			} else if adaptive[k].V != exact[k].V {
				t.Fatalf("trial %d: solved point %d differs from exact", trial, k)
			}
			if e := cmplx.Abs(adaptive[k].V-exact[k].V) / scale; e > 10*tol {
				t.Fatalf("trial %d point %d (%g Hz): deviation %.3g", trial, k, exact[k].Freq, e)
			}
		}
		if interp < len(exact)/2 {
			t.Fatalf("trial %d: only %d of %d points interpolated — no win", trial, interp, len(exact))
		}
	}
}

// TestACSweepAdaptiveResonance drives the adaptive sweep through a
// high-Q series resonance: the rational fit must reproduce the peak, not
// smooth over it.
func TestACSweepAdaptiveResonance(t *testing.T) {
	n := circuit.New()
	vi := n.AddV("v", "in", "0", circuit.DC(0))
	n.AddR("r", "in", "mid", 2.0)
	n.AddL("l", "mid", "out", 100e-9)
	n.AddC("c", "out", "0", 10e-12)
	n.AddR("rload", "out", "0", 1e6)
	stim := ACStimulus{VSourceAmps: map[int]complex128{vi: 1}}
	const tol = 1e-6
	exact, err := ACSweepPolicy(n, "out", stim, 1e6, 1e9, 80,
		Policy{SweepMode: sweep.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := ACSweepPolicy(n, "out", stim, 1e6, 1e9, 80,
		Policy{SweepMode: sweep.ModeAdaptive, SweepTol: tol})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, p := range exact {
		if a := cmplx.Abs(p.V); a > peak {
			peak = a
		}
	}
	if peak < 10 {
		t.Fatalf("resonance not sharp enough to test (peak %g)", peak)
	}
	for k := range exact {
		if e := cmplx.Abs(adaptive[k].V-exact[k].V) / cmplx.Abs(exact[k].V); e > 10*tol {
			t.Fatalf("point %d (%g Hz): deviation %.3g near resonance", k, exact[k].Freq, e)
		}
	}
}

// TestACSweepAutoMatchesLegacy pins the compatibility contract: the
// default (auto) policy below the threshold is bit-identical to the
// exact sweep, and a bad tolerance fails fast.
func TestACSweepAutoMatchesLegacy(t *testing.T) {
	n := circuit.New()
	vi := n.AddV("v", "in", "0", circuit.DC(0))
	n.AddR("r", "in", "out", 1000)
	n.AddC("c", "out", "0", 1e-12)
	stim := ACStimulus{VSourceAmps: map[int]complex128{vi: 1}}
	legacy, err := ACSweep(n, "out", stim, 1e6, 1e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := ACSweepPolicy(n, "out", stim, 1e6, 1e9, 10, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range legacy {
		if auto[k] != legacy[k] {
			t.Fatalf("auto point %d diverged from legacy exact sweep", k)
		}
		if auto[k].Interp {
			t.Fatalf("short auto sweep interpolated point %d", k)
		}
	}
	if _, err := ACSweepPolicy(n, "out", stim, 1e6, 1e9, 40,
		Policy{SweepMode: sweep.ModeAdaptive, SweepTol: math.NaN()}); err == nil {
		t.Fatal("NaN sweep tolerance accepted")
	}
}
