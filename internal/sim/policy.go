package sim

import (
	"inductance101/internal/matrix"
	"inductance101/internal/sweep"
)

// Policy pins the linear-solver resources of one analysis run: how many
// goroutines the dense/sparse kernels may use, and where the simulator
// switches from the dense LU to the sparse direct solver. It is a small
// value carried inside TranOptions/AdaptiveOptions and by the
// policy-taking AC sweep, so two concurrently running analyses can use
// conflicting settings without touching process state.
//
// The zero value inherits the deprecated process defaults
// (matrix.SetWorkers / SetSparseThreshold), so an unset policy
// reproduces the legacy behavior bit-identically. Every solver path is
// deterministic in the worker count's presence — parallel kernels
// partition work without changing any per-element operation order — so
// Policy only trades wall clock for cores, never results.
type Policy struct {
	// Workers caps the solver goroutines (factorization strips, multi-RHS
	// solves, the history matvec, AC sweep fan-out). 0 = process default
	// (matrix.Workers), 1 = fully serial.
	Workers int
	// SparseThreshold is the MNA size at which linear analyses switch to
	// the sparse direct solver: > 0 is an explicit switch-over size, 0
	// inherits the process default (SetSparseThreshold), < 0 forces the
	// dense path at every size.
	SparseThreshold int
	// SweepMode selects exact per-point AC sweeps, the adaptive
	// rational-interpolation engine, or automatic selection by point
	// count (the zero value, sweep.ModeAuto).
	SweepMode sweep.Mode
	// SweepTol is the adaptive engine's relative interpolation
	// tolerance (0 = sweep.DefaultTol).
	SweepTol float64
}

// sparseAt reports whether a system of the given size takes the sparse
// path under this policy.
func (p Policy) sparseAt(size int) bool {
	switch {
	case p.SparseThreshold > 0:
		return size >= p.SparseThreshold
	case p.SparseThreshold < 0:
		return false
	default:
		return size >= sparseThreshold
	}
}

// solveDensePolicy is matrix.SolveDense with the policy's worker count.
func solveDensePolicy(a *matrix.Dense, b []float64, pol Policy) ([]float64, error) {
	f, err := matrix.FactorLUWorkers(a, pol.Workers)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
