package sim

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// Tran runs a fixed-step transient analysis of the netlist from a DC
// operating point at t = 0.
func Tran(n *circuit.Netlist, opt TranOptions) (*TranResult, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	if useSparsePath(n, opt.Policy) {
		return tranSparse(n, opt)
	}
	m := circuit.Build(n)
	x0, err := OP(m, 0, opt)
	if err != nil {
		return nil, err
	}
	return TranFrom(m, x0, opt)
}

// TranFrom runs a transient from a given initial state x0 (e.g. a
// previously computed operating point), using the already-assembled MNA.
func TranFrom(m *circuit.MNA, x0 []float64, opt TranOptions) (*TranResult, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	n := m.N
	size := m.Size()
	if len(x0) != size {
		return nil, fmt.Errorf("sim: initial state length %d, want %d", len(x0), size)
	}
	h := opt.TStep
	var alpha float64
	switch opt.Method {
	case Trapezoidal:
		alpha = 2 / h
	case BackwardEuler:
		alpha = 1 / h
	default:
		return nil, fmt.Errorf("sim: unknown method %d", opt.Method)
	}

	// A_lin = alpha*C + G (+gmin); Hist = alpha*C - G (trap) or alpha*C (BE).
	aLin := m.C.Clone().Scale(alpha).AddMat(applyGmin(m.G, n.NumNodes(), opt.Gmin))
	hist := m.C.Clone().Scale(alpha)
	if opt.Method == Trapezoidal {
		hist.AddScaled(-1, m.G)
	}

	linear := len(n.MOSFETs) == 0
	var luLin *matrix.LU
	if linear {
		lu, err := matrix.FactorLUWorkers(aLin, opt.Policy.Workers)
		if err != nil {
			return nil, fmt.Errorf("sim: singular transient system: %w", err)
		}
		luLin = lu
	}

	steps := int(opt.TStop/h + 0.5)
	res := &TranResult{Netlist: n}
	save := func(t float64, x []float64) {
		res.Times = append(res.Times, t)
		res.States = append(res.States, matrix.CloneVec(x))
	}
	x := matrix.CloneVec(x0)
	save(0, x)

	bPrev := make([]float64, size)
	m.RHS(0, bPrev)
	fPrev := make([]float64, size)
	if !linear {
		deviceCurrents(n, x, fPrev)
	}
	bNow := make([]float64, size)
	// The history matvec is the per-step hot spot for linear systems;
	// reuse one scratch vector (MulVecTo also fans rows out across
	// workers for large systems) instead of allocating every step.
	rhsBase := make([]float64, size)

	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		m.RHS(t, bNow)
		hist.MulVecToWorkers(rhsBase, x, opt.Policy.Workers)
		if opt.Method == Trapezoidal {
			matrix.Axpy(1, bPrev, rhsBase)
			matrix.Axpy(1, fPrev, rhsBase)
		}
		matrix.Axpy(1, bNow, rhsBase)

		if linear {
			xNew, err := luLin.Solve(rhsBase)
			if err != nil {
				return nil, err
			}
			x = xNew
		} else {
			xNew, iters, err := newtonStep(n, aLin, rhsBase, x, opt)
			if err != nil {
				return nil, fmt.Errorf("sim: t=%g: %w", t, err)
			}
			res.NewtonIters += iters
			x = xNew
		}

		if opt.Method == Trapezoidal {
			copy(bPrev, bNow)
			if !linear {
				for i := range fPrev {
					fPrev[i] = 0
				}
				deviceCurrents(n, x, fPrev)
			}
		}
		if k%opt.SaveEvery == 0 || k == steps {
			save(t, x)
		}
	}
	return res, nil
}

// newtonStep solves aLin*x = rhsBase + f_lin(x) by Newton iteration,
// starting from guess x0.
func newtonStep(n *circuit.Netlist, aLin *matrix.Dense, rhsBase, x0 []float64, opt TranOptions) ([]float64, int, error) {
	x := matrix.CloneVec(x0)
	for it := 1; it <= opt.MaxNewton; it++ {
		a := aLin.Clone()
		rhs := matrix.CloneVec(rhsBase)
		stampDevices(n, x, a, rhs)
		xNew, err := solveDensePolicy(a, rhs, opt.Policy)
		if err != nil {
			return nil, it, fmt.Errorf("singular Newton system: %w", err)
		}
		worst := matrix.NormInf(matrix.Sub(xNew, x))
		x = xNew
		if worst < opt.NewtonTol {
			return x, it, nil
		}
	}
	return nil, opt.MaxNewton, fmt.Errorf("Newton did not converge in %d iterations", opt.MaxNewton)
}
