package sim

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// stampDevices linearizes every MOSFET around state x and stamps the
// Jacobian into a (a copy of the base conductance matrix) and the
// Norton equivalent currents into rhs.
func stampDevices(n *circuit.Netlist, x []float64, a *matrix.Dense, rhs []float64) {
	vAt := func(node int) float64 {
		if node < 0 {
			return 0
		}
		return x[node]
	}
	add := func(i, j int, v float64) {
		if i >= 0 && j >= 0 {
			a.Add(i, j, v)
		}
	}
	addB := func(i int, v float64) {
		if i >= 0 {
			rhs[i] += v
		}
	}
	for i := range n.MOSFETs {
		m := &n.MOSFETs[i]
		vd, vg, vs := vAt(m.D), vAt(m.G), vAt(m.S)
		id, gm, gds := m.Eval(vd, vg, vs)
		// Linearization: id ≈ Ieq + gm*vgs + gds*vds.
		ieq := id - gm*(vg-vs) - gds*(vd-vs)
		add(m.D, m.D, gds)
		add(m.D, m.G, gm)
		add(m.D, m.S, -(gm + gds))
		add(m.S, m.D, -gds)
		add(m.S, m.G, -gm)
		add(m.S, m.S, gm+gds)
		// Current id leaves node D and enters node S.
		addB(m.D, -ieq)
		addB(m.S, ieq)
	}
}

// deviceCurrents accumulates the nonlinear device injection vector f(x)
// into b (the right-hand-side convention of C x' + G x = b + f).
func deviceCurrents(n *circuit.Netlist, x []float64, b []float64) {
	vAt := func(node int) float64 {
		if node < 0 {
			return 0
		}
		return x[node]
	}
	for i := range n.MOSFETs {
		m := &n.MOSFETs[i]
		id, _, _ := m.Eval(vAt(m.D), vAt(m.G), vAt(m.S))
		if m.D >= 0 {
			b[m.D] -= id
		}
		if m.S >= 0 {
			b[m.S] += id
		}
	}
}

// OP computes the DC operating point at time t0: capacitors open,
// inductors short, sources at their t0 values. Newton iteration handles
// the MOSFETs; gmin keeps floating nodes bounded.
func OP(m *circuit.MNA, t0 float64, opt TranOptions) ([]float64, error) {
	if opt.MaxNewton <= 0 {
		opt.MaxNewton = 100
	}
	if opt.NewtonTol <= 0 {
		opt.NewtonTol = 1e-9
	}
	if opt.Gmin <= 0 {
		opt.Gmin = 1e-12
	}
	n := m.N
	size := m.Size()
	base := applyGmin(m.G, n.NumNodes(), opt.Gmin)
	b0 := make([]float64, size)
	m.RHS(t0, b0)

	x := make([]float64, size)
	if len(n.MOSFETs) == 0 {
		sol, err := solveDensePolicy(base, b0, opt.Policy)
		if err != nil {
			return nil, fmt.Errorf("sim: singular DC system: %w", err)
		}
		return sol, nil
	}
	for it := 0; it < opt.MaxNewton; it++ {
		a := base.Clone()
		rhs := matrix.CloneVec(b0)
		stampDevices(n, x, a, rhs)
		xNew, err := solveDensePolicy(a, rhs, opt.Policy)
		if err != nil {
			return nil, fmt.Errorf("sim: singular Newton system at iteration %d: %w", it, err)
		}
		// Damped update: limit per-iteration voltage change to 1V to
		// keep the quadratic model honest far from the solution.
		const maxStep = 1.0
		worst := 0.0
		for i := range x {
			d := xNew[i] - x[i]
			if d > maxStep {
				d = maxStep
			} else if d < -maxStep {
				d = -maxStep
			}
			x[i] += d
			if ad := abs(d); ad > worst {
				worst = ad
			}
		}
		if worst < opt.NewtonTol {
			return x, nil
		}
	}
	return nil, fmt.Errorf("sim: DC operating point did not converge in %d iterations", opt.MaxNewton)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
