package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// ACStimulus names the sources to excite in an AC analysis with unit
// (or given) complex amplitudes. Sources not listed are zeroed (voltage
// sources become shorts, current sources opens), the standard AC
// small-signal convention.
type ACStimulus struct {
	VSourceAmps map[int]complex128 // VSource index -> amplitude
	ISourceAmps map[int]complex128 // ISource index -> amplitude
}

// AC solves the complex MNA system (G + jωC) X = B at angular frequency
// omega and returns the full complex state vector.
func AC(m *circuit.MNA, omega float64, stim ACStimulus) ([]complex128, error) {
	if len(m.N.MOSFETs) != 0 {
		return nil, fmt.Errorf("sim: AC analysis of nonlinear netlists is not supported (linearize first)")
	}
	size := m.Size()
	a := matrix.NewCDense(size, size)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			g := m.G.At(i, j)
			c := m.C.At(i, j)
			if g != 0 || c != 0 {
				a.Set(i, j, complex(g, omega*c))
			}
		}
	}
	// gmin for floating nodes.
	for i := 0; i < m.N.NumNodes(); i++ {
		a.Add(i, i, 1e-12)
	}
	b := make([]complex128, size)
	nn := m.N.NumNodes()
	for vi, amp := range stim.VSourceAmps {
		b[nn+m.N.VSources[vi].Branch] += amp
	}
	for ii, amp := range stim.ISourceAmps {
		s := m.N.ISources[ii]
		if s.A >= 0 {
			b[s.A] -= amp
		}
		if s.B >= 0 {
			b[s.B] += amp
		}
	}
	return matrix.SolveComplex(a, b)
}

// ACPoint is one row of a frequency sweep.
type ACPoint struct {
	Freq float64
	V    complex128
}

// ACSweep runs AC at logarithmically spaced frequencies from fStart to
// fStop (inclusive, pointsPerDecade per decade) and records the complex
// voltage of the probe node.
func ACSweep(n *circuit.Netlist, probe string, stim ACStimulus, fStart, fStop float64, pointsPerDecade int) ([]ACPoint, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("sim: bad AC sweep range [%g, %g]", fStart, fStop)
	}
	if pointsPerDecade <= 0 {
		pointsPerDecade = 10
	}
	idx, err := n.NodeIndex(probe)
	if err != nil {
		return nil, err
	}
	m := circuit.Build(n)
	var out []ACPoint
	decades := math.Log10(fStop / fStart)
	nPts := int(decades*float64(pointsPerDecade)) + 1
	for k := 0; k <= nPts; k++ {
		f := fStart * math.Pow(10, decades*float64(k)/float64(nPts))
		x, err := AC(m, 2*math.Pi*f, stim)
		if err != nil {
			return nil, fmt.Errorf("sim: AC at %g Hz: %w", f, err)
		}
		v := complex(0, 0)
		if idx >= 0 {
			v = x[idx]
		}
		out = append(out, ACPoint{Freq: f, V: v})
	}
	return out, nil
}

// InputImpedance computes Z_in(f) = V/I seen by voltage source vi: the
// source is driven with 1V and Z = 1 / (-I_branch) (branch current flows
// A->B inside the source, so the current delivered to the circuit is
// -I_branch).
func InputImpedance(n *circuit.Netlist, vi int, freq float64) (complex128, error) {
	m := circuit.Build(n)
	x, err := AC(m, 2*math.Pi*freq, ACStimulus{VSourceAmps: map[int]complex128{vi: 1}})
	if err != nil {
		return 0, err
	}
	i := x[n.BranchOfVSource(vi)]
	if cmplx.Abs(i) == 0 {
		return cmplx.Inf(), nil
	}
	return 1 / -i, nil
}
