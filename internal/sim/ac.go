package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
	"inductance101/internal/sweep"
)

// ACStimulus names the sources to excite in an AC analysis with unit
// (or given) complex amplitudes. Sources not listed are zeroed (voltage
// sources become shorts, current sources opens), the standard AC
// small-signal convention.
type ACStimulus struct {
	VSourceAmps map[int]complex128 // VSource index -> amplitude
	ISourceAmps map[int]complex128 // ISource index -> amplitude
}

// acGmin is the floating-node conductance added to every node's
// diagonal in AC analysis.
const acGmin = 1e-12

// acEntry is one structurally nonzero position of the MNA pencil
// (G, C); the complex system matrix at any frequency is assembled from
// these without rescanning any matrix.
type acEntry struct {
	i, j int
	g, c float64
}

// acPattern caches the union sparsity structure of an MNA pencil so a
// frequency sweep pays the pattern extraction once instead of once per
// point. The build walks the netlist stamps (O(nnz log nnz)); the old
// dense G/C scan, O(size^2) per sweep, is gone. Large systems carry the
// CSC skeleton of the same entries plus a symbolic factorization shared
// by every frequency point; small systems keep the dense complex solve.
type acPattern struct {
	size    int
	nn      int       // number of nodes (gmin targets)
	entries []acEntry // row-major; gmin not folded in (dense path adds it)
	// Sparse skeleton: the same entries column-major as a CCSC pattern
	// with per-position G and C values; gv has acGmin folded into the
	// node diagonals.
	cpat   *matrix.CCSC
	gv, cv []float64
	// base is the symbolic-donor factorization shared across a sweep;
	// prime() fills it deterministically before any parallel solves.
	base *matrix.SparseCLU
	// pol pins the solver resources of the analysis the pattern serves.
	pol Policy
}

func buildACPattern(m *circuit.MNA) *acPattern { return acPatternFromNetlist(m.N) }

func acPatternFromNetlist(n *circuit.Netlist) *acPattern {
	sm := circuit.BuildSparse(n)
	size := sm.Size()
	nn := n.NumNodes()
	type gc struct{ g, c float64 }
	uni := make(map[[2]int]gc, sm.G.NNZ()+sm.C.NNZ())
	sm.G.Each(func(i, j int, v float64) {
		e := uni[[2]int{i, j}]
		e.g = v
		uni[[2]int{i, j}] = e
	})
	sm.C.Each(func(i, j int, v float64) {
		e := uni[[2]int{i, j}]
		e.c = v
		uni[[2]int{i, j}] = e
	})
	// The gmin diagonals must exist structurally for the sparse path.
	for i := 0; i < nn; i++ {
		if _, ok := uni[[2]int{i, i}]; !ok {
			uni[[2]int{i, i}] = gc{}
		}
	}
	p := &acPattern{size: size, nn: nn}
	p.entries = make([]acEntry, 0, len(uni))
	for k, e := range uni {
		p.entries = append(p.entries, acEntry{i: k[0], j: k[1], g: e.g, c: e.c})
	}
	sort.Slice(p.entries, func(a, b int) bool {
		if p.entries[a].i != p.entries[b].i {
			return p.entries[a].i < p.entries[b].i
		}
		return p.entries[a].j < p.entries[b].j
	})

	// Column-major copy as the CSC skeleton for the sparse path.
	idx := make([]int, len(p.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := p.entries[idx[a]], p.entries[idx[b]]
		if ea.j != eb.j {
			return ea.j < eb.j
		}
		return ea.i < eb.i
	})
	colPtr := make([]int, size+1)
	rowIdx := make([]int, len(idx))
	p.gv = make([]float64, len(idx))
	p.cv = make([]float64, len(idx))
	for pos, id := range idx {
		e := p.entries[id]
		colPtr[e.j+1]++
		rowIdx[pos] = e.i
		g := e.g
		if e.i == e.j && e.i < nn {
			g += acGmin
		}
		p.gv[pos] = g
		p.cv[pos] = e.c
	}
	for j := 0; j < size; j++ {
		colPtr[j+1] += colPtr[j]
	}
	p.cpat = matrix.CSCFromParts(size, size, colPtr, rowIdx, make([]complex128, len(idx)))
	return p
}

// rhs builds the complex stimulus vector.
func (p *acPattern) rhs(n *circuit.Netlist, stim ACStimulus) []complex128 {
	b := make([]complex128, p.size)
	for vi, amp := range stim.VSourceAmps {
		b[p.nn+n.VSources[vi].Branch] += amp
	}
	for ii, amp := range stim.ISourceAmps {
		s := n.ISources[ii]
		if s.A >= 0 {
			b[s.A] -= amp
		}
		if s.B >= 0 {
			b[s.B] += amp
		}
	}
	return b
}

// assemble fills a value slice with G + jωC over the CSC skeleton.
func (p *acPattern) assemble(omega float64) *matrix.CCSC {
	vals := make([]complex128, len(p.gv))
	for k := range vals {
		vals[k] = complex(p.gv[k], omega*p.cv[k])
	}
	return p.cpat.WithValues(vals)
}

// prime factors the base symbolic pattern at the given frequency. Call
// it once, serially, before fanning a sweep out — every subsequent
// point refactors numerically over this pattern, so results do not
// depend on which point happens to run first.
func (p *acPattern) prime(omega float64) error {
	if !p.pol.sparseAt(p.size) || p.base != nil {
		return nil
	}
	f, err := matrix.FactorSparseCLUWorkers(p.assemble(omega), p.pol.Workers)
	if err != nil {
		return err
	}
	p.base = f
	return nil
}

// solve assembles (G + jωC) and solves for the given stimulus. Systems
// at or above the sparse threshold go through the sparse LU, reusing
// the primed symbolic pattern when present; smaller systems assemble a
// CDense — entries in the same accumulation order as the dense MNA
// build, so the matrix and the solution are identical to the historical
// dense scan.
func (p *acPattern) solve(n *circuit.Netlist, omega float64, stim ACStimulus) ([]complex128, error) {
	if p.pol.sparseAt(p.size) {
		return p.solveSparse(n, omega, stim)
	}
	a := matrix.NewCDense(p.size, p.size)
	for _, e := range p.entries {
		a.Set(e.i, e.j, complex(e.g, omega*e.c))
	}
	// gmin for floating nodes.
	for i := 0; i < p.nn; i++ {
		a.Add(i, i, acGmin)
	}
	return matrix.SolveComplex(a, p.rhs(n, stim))
}

func (p *acPattern) solveSparse(n *circuit.Netlist, omega float64, stim ACStimulus) ([]complex128, error) {
	a := p.assemble(omega)
	var f *matrix.SparseCLU
	if p.base != nil {
		cand := p.base.NewNumeric()
		if err := cand.Refactor(a); err == nil {
			f = cand
		}
	}
	if f == nil {
		fresh, err := matrix.FactorSparseCLUWorkers(a, p.pol.Workers)
		if err != nil {
			return nil, err
		}
		f = fresh
	}
	return f.Solve(p.rhs(n, stim))
}

// AC solves the complex MNA system (G + jωC) X = B at angular frequency
// omega and returns the full complex state vector.
func AC(m *circuit.MNA, omega float64, stim ACStimulus) ([]complex128, error) {
	if len(m.N.MOSFETs) != 0 {
		return nil, fmt.Errorf("sim: AC analysis of nonlinear netlists is not supported (linearize first)")
	}
	return buildACPattern(m).solve(m.N, omega, stim)
}

// ACPoint is one row of a frequency sweep. Interp marks points filled
// by the adaptive sweep's rational interpolant instead of a solve.
type ACPoint struct {
	Freq   float64
	V      complex128
	Interp bool
}

// ACSweep runs AC at logarithmically spaced frequencies from fStart to
// fStop (inclusive, pointsPerDecade per decade) and records the complex
// voltage of the probe node, under the process-default solver policy.
// ACSweepPolicy pins the policy per run.
func ACSweep(n *circuit.Netlist, probe string, stim ACStimulus, fStart, fStop float64, pointsPerDecade int) ([]ACPoint, error) {
	return ACSweepPolicy(n, probe, stim, fStart, fStop, pointsPerDecade, Policy{})
}

// ACSweepPolicy is ACSweep under an explicit solver policy. The G/C
// sparsity pattern is extracted once and the frequency points —
// independent complex solves — run in parallel (the policy's worker
// count, or matrix.SetWorkers when unset, controls the fan-out).
// Under pol.SweepMode exact (and auto below sweep.AutoThreshold
// points) results are bit-identical to the serial sweep: each point is
// one self-contained solve. Under adaptive (or auto at enough points)
// only the anchor frequencies the rational fit requests are solved and
// the rest are interpolated within pol.SweepTol (ACPoint.Interp marks
// them).
func ACSweepPolicy(n *circuit.Netlist, probe string, stim ACStimulus, fStart, fStop float64, pointsPerDecade int, pol Policy) ([]ACPoint, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("sim: bad AC sweep range [%g, %g]", fStart, fStop)
	}
	if pointsPerDecade <= 0 {
		pointsPerDecade = 10
	}
	idx, err := n.NodeIndex(probe)
	if err != nil {
		return nil, err
	}
	if len(n.MOSFETs) != 0 {
		return nil, fmt.Errorf("sim: AC analysis of nonlinear netlists is not supported (linearize first)")
	}
	pat := acPatternFromNetlist(n)
	pat.pol = pol
	if err := pat.prime(2 * math.Pi * fStart); err != nil {
		return nil, fmt.Errorf("sim: AC at %g Hz: %w", fStart, err)
	}
	decades := math.Log10(fStop / fStart)
	nPts := int(decades*float64(pointsPerDecade)) + 1
	fs := make([]float64, nPts+1)
	for k := range fs {
		fs[k] = fStart * math.Pow(10, decades*float64(k)/float64(nPts))
	}

	solveAt := func(k int) (complex128, error) {
		x, err := pat.solve(n, 2*math.Pi*fs[k], stim)
		if err != nil {
			return 0, fmt.Errorf("sim: AC at %g Hz: %w", fs[k], err)
		}
		if idx >= 0 {
			return x[idx], nil
		}
		return 0, nil
	}

	if pol.SweepMode.Adapt(len(fs)) {
		return acSweepAdaptive(fs, pol, solveAt)
	}

	out := make([]ACPoint, len(fs))
	errs := make([]error, len(fs))
	matrix.ParallelRangeWorkers(pol.Workers, len(fs), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			v, err := solveAt(k)
			if err != nil {
				errs[k] = err
				return
			}
			out[k] = ACPoint{Freq: fs[k], V: v}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// acSweepAdaptive runs the anchor-and-fit engine over an ascending AC
// grid: anchor batches fan out under the policy's worker count, the
// remaining probe voltages come from the cross-validated rational
// interpolant.
func acSweepAdaptive(fs []float64, pol Policy, solveAt func(k int) (complex128, error)) ([]ACPoint, error) {
	batch := func(idxs []int) ([]complex128, error) {
		vals := make([]complex128, len(idxs))
		errs := make([]error, len(idxs))
		matrix.ParallelRangeWorkers(pol.Workers, len(idxs), 1, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				vals[k], errs[k] = solveAt(idxs[k])
				if errs[k] != nil {
					return
				}
			}
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return vals, nil
	}
	res, err := sweep.Adaptive(fs, sweep.Options{Tol: pol.SweepTol}, batch)
	if err != nil {
		return nil, err
	}
	out := make([]ACPoint, len(fs))
	for k := range fs {
		out[k] = ACPoint{Freq: fs[k], V: res.Values[k], Interp: !res.Solved[k]}
	}
	return out, nil
}

// InputImpedance computes Z_in(f) = V/I seen by voltage source vi: the
// source is driven with 1V and Z = 1 / (-I_branch) (branch current flows
// A->B inside the source, so the current delivered to the circuit is
// -I_branch).
func InputImpedance(n *circuit.Netlist, vi int, freq float64) (complex128, error) {
	m := circuit.Build(n)
	x, err := AC(m, 2*math.Pi*freq, ACStimulus{VSourceAmps: map[int]complex128{vi: 1}})
	if err != nil {
		return 0, err
	}
	i := x[n.BranchOfVSource(vi)]
	if cmplx.Abs(i) == 0 {
		return cmplx.Inf(), nil
	}
	return 1 / -i, nil
}
