package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// ACStimulus names the sources to excite in an AC analysis with unit
// (or given) complex amplitudes. Sources not listed are zeroed (voltage
// sources become shorts, current sources opens), the standard AC
// small-signal convention.
type ACStimulus struct {
	VSourceAmps map[int]complex128 // VSource index -> amplitude
	ISourceAmps map[int]complex128 // ISource index -> amplitude
}

// acEntry is one structurally nonzero position of the MNA pencil
// (G, C); the complex system matrix at any frequency is assembled from
// these without rescanning the dense G and C.
type acEntry struct {
	i, j int
	g, c float64
}

// acPattern caches the sparsity structure of an MNA system so a
// frequency sweep pays the O(size^2) G/C scan once instead of once per
// point.
type acPattern struct {
	size    int
	nn      int // number of nodes (gmin targets)
	entries []acEntry
}

func buildACPattern(m *circuit.MNA) *acPattern {
	size := m.Size()
	p := &acPattern{size: size, nn: m.N.NumNodes()}
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			g := m.G.At(i, j)
			c := m.C.At(i, j)
			if g != 0 || c != 0 {
				p.entries = append(p.entries, acEntry{i: i, j: j, g: g, c: c})
			}
		}
	}
	return p
}

// solve assembles (G + jωC) from the pattern — entries in the same
// row-major order as the direct scan, so the matrix and the solution
// are identical — and solves for the given stimulus.
func (p *acPattern) solve(n *circuit.Netlist, omega float64, stim ACStimulus) ([]complex128, error) {
	a := matrix.NewCDense(p.size, p.size)
	for _, e := range p.entries {
		a.Set(e.i, e.j, complex(e.g, omega*e.c))
	}
	// gmin for floating nodes.
	for i := 0; i < p.nn; i++ {
		a.Add(i, i, 1e-12)
	}
	b := make([]complex128, p.size)
	for vi, amp := range stim.VSourceAmps {
		b[p.nn+n.VSources[vi].Branch] += amp
	}
	for ii, amp := range stim.ISourceAmps {
		s := n.ISources[ii]
		if s.A >= 0 {
			b[s.A] -= amp
		}
		if s.B >= 0 {
			b[s.B] += amp
		}
	}
	return matrix.SolveComplex(a, b)
}

// AC solves the complex MNA system (G + jωC) X = B at angular frequency
// omega and returns the full complex state vector.
func AC(m *circuit.MNA, omega float64, stim ACStimulus) ([]complex128, error) {
	if len(m.N.MOSFETs) != 0 {
		return nil, fmt.Errorf("sim: AC analysis of nonlinear netlists is not supported (linearize first)")
	}
	return buildACPattern(m).solve(m.N, omega, stim)
}

// ACPoint is one row of a frequency sweep.
type ACPoint struct {
	Freq float64
	V    complex128
}

// ACSweep runs AC at logarithmically spaced frequencies from fStart to
// fStop (inclusive, pointsPerDecade per decade) and records the complex
// voltage of the probe node. The G/C sparsity pattern is extracted once
// and the frequency points — independent complex solves — run in
// parallel (matrix.SetWorkers controls the fan-out). Results are
// bit-identical to the serial sweep: each point is one self-contained
// solve.
func ACSweep(n *circuit.Netlist, probe string, stim ACStimulus, fStart, fStop float64, pointsPerDecade int) ([]ACPoint, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("sim: bad AC sweep range [%g, %g]", fStart, fStop)
	}
	if pointsPerDecade <= 0 {
		pointsPerDecade = 10
	}
	idx, err := n.NodeIndex(probe)
	if err != nil {
		return nil, err
	}
	m := circuit.Build(n)
	if len(m.N.MOSFETs) != 0 {
		return nil, fmt.Errorf("sim: AC analysis of nonlinear netlists is not supported (linearize first)")
	}
	pat := buildACPattern(m)
	decades := math.Log10(fStop / fStart)
	nPts := int(decades*float64(pointsPerDecade)) + 1
	out := make([]ACPoint, nPts+1)
	errs := make([]error, nPts+1)
	matrix.ParallelRange(nPts+1, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			f := fStart * math.Pow(10, decades*float64(k)/float64(nPts))
			x, err := pat.solve(m.N, 2*math.Pi*f, stim)
			if err != nil {
				errs[k] = fmt.Errorf("sim: AC at %g Hz: %w", f, err)
				return
			}
			v := complex(0, 0)
			if idx >= 0 {
				v = x[idx]
			}
			out[k] = ACPoint{Freq: f, V: v}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// InputImpedance computes Z_in(f) = V/I seen by voltage source vi: the
// source is driven with 1V and Z = 1 / (-I_branch) (branch current flows
// A->B inside the source, so the current delivered to the circuit is
// -I_branch).
func InputImpedance(n *circuit.Netlist, vi int, freq float64) (complex128, error) {
	m := circuit.Build(n)
	x, err := AC(m, 2*math.Pi*freq, ACStimulus{VSourceAmps: map[int]complex128{vi: 1}})
	if err != nil {
		return 0, err
	}
	i := x[n.BranchOfVSource(vi)]
	if cmplx.Abs(i) == 0 {
		return cmplx.Inf(), nil
	}
	return 1 / -i, nil
}
