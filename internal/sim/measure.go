package sim

import (
	"fmt"
	"math"
)

// Measurement helpers over sampled waveforms, used to produce the
// paper's delay/skew/noise numbers.

// CrossTime returns the first time the waveform crosses the threshold in
// the given direction (rising: from below to at-or-above), linearly
// interpolating between samples. Returns an error if it never crosses.
func CrossTime(times, v []float64, threshold float64, rising bool) (float64, error) {
	if len(times) != len(v) || len(times) < 2 {
		return 0, fmt.Errorf("sim: bad waveform (%d points)", len(times))
	}
	for i := 1; i < len(v); i++ {
		var crossed bool
		if rising {
			crossed = v[i-1] < threshold && v[i] >= threshold
		} else {
			crossed = v[i-1] > threshold && v[i] <= threshold
		}
		if crossed {
			dv := v[i] - v[i-1]
			if dv == 0 {
				return times[i], nil
			}
			f := (threshold - v[i-1]) / dv
			return times[i-1] + f*(times[i]-times[i-1]), nil
		}
	}
	dir := "rising"
	if !rising {
		dir = "falling"
	}
	return 0, fmt.Errorf("sim: waveform never crosses %g %s", threshold, dir)
}

// Delay50 returns the 50%-to-50% delay between an input and an output
// waveform transitioning between vLow and vHigh.
func Delay50(times, vin, vout []float64, vLow, vHigh float64, rising bool) (float64, error) {
	mid := (vLow + vHigh) / 2
	t0, err := CrossTime(times, vin, mid, rising)
	if err != nil {
		return 0, fmt.Errorf("sim: input: %w", err)
	}
	t1, err := CrossTime(times, vout, mid, rising)
	if err != nil {
		return 0, fmt.Errorf("sim: output: %w", err)
	}
	return t1 - t0, nil
}

// Skew returns max - min of the given per-sink delays, the paper's
// "worst skew" metric for a clock net.
func Skew(delays []float64) float64 {
	if len(delays) == 0 {
		return 0
	}
	lo, hi := delays[0], delays[0]
	for _, d := range delays[1:] {
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return hi - lo
}

// Overshoot returns max(v) - vHigh (0 if the waveform never exceeds the
// rail): the signal-integrity overshoot the paper attributes to
// inductance.
func Overshoot(v []float64, vHigh float64) float64 {
	m := vHigh
	for _, x := range v {
		m = math.Max(m, x)
	}
	return m - vHigh
}

// Undershoot returns vLow - min(v) (0 if the waveform never dips below).
func Undershoot(v []float64, vLow float64) float64 {
	m := vLow
	for _, x := range v {
		m = math.Min(m, x)
	}
	return vLow - m
}

// SettleTime returns the time after which the waveform stays within
// band of vFinal, or an error if it never settles.
func SettleTime(times, v []float64, vFinal, band float64) (float64, error) {
	if len(times) != len(v) || len(times) == 0 {
		return 0, fmt.Errorf("sim: bad waveform")
	}
	last := -1
	for i := len(v) - 1; i >= 0; i-- {
		if math.Abs(v[i]-vFinal) > band {
			last = i
			break
		}
	}
	if last == len(v)-1 {
		return 0, fmt.Errorf("sim: waveform does not settle within %g of %g", band, vFinal)
	}
	return times[last+1], nil
}

// RingFrequency estimates the oscillation frequency of a ringing
// waveform from the mean spacing of its crossings of vRef after tStart.
// Returns 0 if fewer than 3 crossings exist (no ringing).
func RingFrequency(times, v []float64, vRef, tStart float64) float64 {
	var crossings []float64
	for i := 1; i < len(v); i++ {
		if times[i] < tStart {
			continue
		}
		if (v[i-1] < vRef && v[i] >= vRef) || (v[i-1] > vRef && v[i] <= vRef) {
			dv := v[i] - v[i-1]
			f := 0.0
			if dv != 0 {
				f = (vRef - v[i-1]) / dv
			}
			crossings = append(crossings, times[i-1]+f*(times[i]-times[i-1]))
		}
	}
	if len(crossings) < 3 {
		return 0
	}
	// Consecutive crossings are half periods.
	span := crossings[len(crossings)-1] - crossings[0]
	halfPeriods := float64(len(crossings) - 1)
	return halfPeriods / (2 * span)
}

// Integrate returns the trapezoidal integral of the waveform over its
// full span (e.g. current -> charge).
func Integrate(times, v []float64) float64 {
	s := 0.0
	for i := 1; i < len(times); i++ {
		s += (v[i] + v[i-1]) / 2 * (times[i] - times[i-1])
	}
	return s
}

// PeakAbs returns the maximum |v|.
func PeakAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		m = math.Max(m, math.Abs(x))
	}
	return m
}

// MaxErr returns the maximum absolute pointwise difference between two
// equal-length waveforms — the accuracy metric for comparing sparsified
// or reduced models against the full PEEC reference.
func MaxErr(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sim: MaxErr length mismatch")
	}
	m := 0.0
	for i := range a {
		m = math.Max(m, math.Abs(a[i]-b[i]))
	}
	return m
}
