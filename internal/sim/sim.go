// Package sim is the SPICE-lite circuit simulator: DC operating point
// (Newton-Raphson over the level-1 MOSFET models), transient analysis
// (trapezoidal or backward-Euler companion integration on the MNA
// system), and AC analysis (complex MNA solve per frequency).
//
// It plays the role MCSPICE plays in the paper's experiments: the
// reference engine the PEEC, sparsified-PEEC, reduced-order and loop
// models are all simulated with.
package sim

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// Method selects the transient integration scheme.
type Method int

// Integration methods. Trapezoidal is second-order and non-dissipative
// (it preserves the ringing the paper attributes to inductance);
// backward Euler is first-order and numerically damped, useful to
// separate physical from numerical oscillation.
const (
	Trapezoidal Method = iota
	BackwardEuler
)

// TranOptions configures a transient run.
type TranOptions struct {
	TStop  float64 // end time (s)
	TStep  float64 // fixed time step (s)
	Method Method
	// MaxNewton bounds Newton iterations per step (default 50).
	MaxNewton int
	// NewtonTol is the infinity-norm convergence tolerance on the state
	// update (default 1e-9, i.e. nanovolt/nanoamp).
	NewtonTol float64
	// Gmin is a tiny conductance from every node to ground that keeps
	// the system nonsingular when nodes float at DC (default 1e-12 S).
	Gmin float64
	// SaveEvery keeps every k-th point (default 1 = all).
	SaveEvery int
	// Policy pins the run's solver resources (worker count, dense/sparse
	// switch-over). The zero value inherits the process defaults.
	Policy Policy
}

func (o *TranOptions) setDefaults() error {
	if o.TStop <= 0 || o.TStep <= 0 {
		return fmt.Errorf("sim: TStop and TStep must be positive (got %g, %g)", o.TStop, o.TStep)
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 50
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = 1e-9
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-12
	}
	if o.SaveEvery <= 0 {
		o.SaveEvery = 1
	}
	return nil
}

// TranResult holds a transient waveform set: the state vector at each
// saved time point, with probe helpers keyed by node name.
type TranResult struct {
	Netlist *circuit.Netlist
	Times   []float64
	States  [][]float64 // States[k][unknown]
	// NewtonIters counts total Newton iterations, a cost metric.
	NewtonIters int
	// Steps holds adaptive-stepping counters (nil for fixed-step runs).
	Steps *StepStats
}

// V returns the voltage waveform of a named node.
func (r *TranResult) V(node string) ([]float64, error) {
	idx, err := r.Netlist.NodeIndex(node)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(r.Times))
	if idx >= 0 {
		for k, x := range r.States {
			out[k] = x[idx]
		}
	}
	return out, nil
}

// MustV is V but panics on unknown nodes (for tests and examples).
func (r *TranResult) MustV(node string) []float64 {
	v, err := r.V(node)
	if err != nil {
		panic(err)
	}
	return v
}

// IL returns the current waveform of inductor li (index from AddL).
func (r *TranResult) IL(li int) []float64 {
	idx := r.Netlist.BranchOfInductor(li)
	out := make([]float64, len(r.Times))
	for k, x := range r.States {
		out[k] = x[idx]
	}
	return out
}

// IV returns the branch current waveform of voltage source vi.
func (r *TranResult) IV(vi int) []float64 {
	idx := r.Netlist.BranchOfVSource(vi)
	out := make([]float64, len(r.Times))
	for k, x := range r.States {
		out[k] = x[idx]
	}
	return out
}

// applyGmin adds gmin from every node to ground on a copy of g.
func applyGmin(g *matrix.Dense, nodes int, gmin float64) *matrix.Dense {
	out := g.Clone()
	for i := 0; i < nodes; i++ {
		out.Add(i, i, gmin)
	}
	return out
}
