package sim

import (
	"math"
	"math/cmplx"
	"testing"

	"inductance101/internal/circuit"
)

func TestTranRCStepResponse(t *testing.T) {
	// Step through R into C: v_c(t) = V(1 - exp(-t/RC)).
	n := circuit.New()
	n.AddV("v", "in", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 1e-9, Rise: 1e-14, Width: 1, Fall: 1e-12})
	n.AddR("r", "in", "out", 1000)
	n.AddC("c", "out", "0", 1e-12) // tau = 1ns
	res, err := Tran(n, TranOptions{TStop: 6e-9, TStep: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	v := res.MustV("out")
	const tau = 1e-9
	for k, tm := range res.Times {
		var want float64
		if tm > 1e-9 {
			want = 1 - math.Exp(-(tm-1e-9)/tau)
		}
		if math.Abs(v[k]-want) > 5e-3 {
			t.Fatalf("t=%g: v=%g want %g", tm, v[k], want)
		}
	}
}

func TestTranRLCRinging(t *testing.T) {
	// Series RLC, underdamped: ring frequency = sqrt(1/LC - (R/2L)^2)/2pi.
	R, L, C := 2.0, 2e-9, 0.5e-12
	n := circuit.New()
	n.AddV("v", "in", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 0.2e-9, Rise: 1e-12, Width: 1, Fall: 1e-12})
	n.AddR("r", "in", "m", R)
	n.AddL("l", "m", "out", L)
	n.AddC("c", "out", "0", C)
	res, err := Tran(n, TranOptions{TStop: 4e-9, TStep: 0.5e-12})
	if err != nil {
		t.Fatal(err)
	}
	v := res.MustV("out")
	fd := math.Sqrt(1/(L*C)-math.Pow(R/(2*L), 2)) / (2 * math.Pi)
	got := RingFrequency(res.Times, v, 1, 0.3e-9)
	if got == 0 || math.Abs(got-fd)/fd > 0.03 {
		t.Errorf("ring frequency %g, want %g", got, fd)
	}
	// Inductive overshoot must be present and bounded by 2x.
	ov := Overshoot(v, 1)
	if ov < 0.3 || ov > 1.0 {
		t.Errorf("overshoot = %g, expected pronounced ringing", ov)
	}
}

func TestBackwardEulerDampsRinging(t *testing.T) {
	build := func() *circuit.Netlist {
		n := circuit.New()
		n.AddV("v", "in", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 0.1e-9, Rise: 1e-12, Width: 1, Fall: 1e-12})
		n.AddR("r", "in", "m", 2)
		n.AddL("l", "m", "out", 2e-9)
		n.AddC("c", "out", "0", 0.5e-12)
		return n
	}
	trap, err := Tran(build(), TranOptions{TStop: 3e-9, TStep: 2e-12, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	be, err := Tran(build(), TranOptions{TStop: 3e-9, TStep: 2e-12, Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	ovT := Overshoot(trap.MustV("out"), 1)
	ovB := Overshoot(be.MustV("out"), 1)
	if ovB >= ovT {
		t.Errorf("BE overshoot %g should be below trapezoidal %g", ovB, ovT)
	}
}

func TestTranMutualInductorsEquivalentKGroup(t *testing.T) {
	// Two coupled RL branches feeding caps: simulate with (L, M) stamps
	// and with the equivalent K = L^-1 group; waveforms must match.
	la, lb, m := 2e-9, 3e-9, 1e-9
	det := la*lb - m*m
	k := [][]float64{{lb / det, -m / det}, {-m / det, la / det}}

	mk := func(useK bool) *TranResult {
		n := circuit.New()
		n.AddV("v", "in", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 0.1e-9, Rise: 50e-12, Width: 1, Fall: 50e-12})
		n.AddR("r1", "in", "a", 10)
		var lA, lB int
		if useK {
			lA = n.AddL("la", "a", "oa", 0)
			lB = n.AddL("lb", "a", "ob", 0)
			n.AddKGroup("k", []int{lA, lB}, k)
		} else {
			lA = n.AddL("la", "a", "oa", la)
			lB = n.AddL("lb", "a", "ob", lb)
			n.AddM("m", lA, lB, m)
		}
		n.AddC("ca", "oa", "0", 0.2e-12)
		n.AddC("cb", "ob", "0", 0.3e-12)
		n.AddR("ra", "oa", "0", 500)
		n.AddR("rb", "ob", "0", 500)
		res, err := Tran(n, TranOptions{TStop: 2e-9, TStep: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rl := mk(false)
	rk := mk(true)
	if e := MaxErr(rl.MustV("oa"), rk.MustV("oa")); e > 1e-6 {
		t.Errorf("K-group and L/M disagree on oa by %g", e)
	}
	if e := MaxErr(rl.MustV("ob"), rk.MustV("ob")); e > 1e-6 {
		t.Errorf("K-group and L/M disagree on ob by %g", e)
	}
}

func TestTranInverterSwitches(t *testing.T) {
	n := circuit.New()
	vdd := 1.8
	n.AddV("vdd", "vdd", "0", circuit.DC(vdd))
	n.AddV("vin", "in", "0", circuit.Pulse{V1: 0, V2: vdd, Delay: 0.2e-9, Rise: 50e-12, Width: 2e-9, Fall: 50e-12})
	n.AddInverter("inv", "in", "out", "vdd", "0",
		circuit.TypicalNMOS(4), circuit.TypicalPMOS(4), 2e-15, 4e-15)
	n.AddC("cl", "out", "0", 20e-15)
	res, err := Tran(n, TranOptions{TStop: 2e-9, TStep: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	v := res.MustV("out")
	if v[0] < vdd*0.95 {
		t.Errorf("inverter initial output %g, want ~vdd", v[0])
	}
	last := v[len(v)-1]
	if last > 0.05*vdd {
		t.Errorf("inverter final output %g, want ~0", last)
	}
	d, err := Delay50(res.Times, res.MustV("in"), invert(v, vdd), 0, vdd, true)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 0.5e-9 {
		t.Errorf("inverter delay = %g", d)
	}
	if res.NewtonIters == 0 {
		t.Errorf("expected Newton iterations for nonlinear circuit")
	}
}

func invert(v []float64, vdd float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = vdd - x
	}
	return out
}

func TestShortCircuitCurrentExists(t *testing.T) {
	// During the input ramp both devices conduct: the paper's I1. The
	// vdd source current during the transition must exceed the pure
	// charging current needed afterwards.
	n := circuit.New()
	vddIdx := n.AddV("vdd", "vdd", "0", circuit.DC(1.8))
	n.AddV("vin", "in", "0", circuit.Pulse{V1: 1.8, V2: 0, Delay: 0.2e-9, Rise: 0.3e-9, Width: 2e-9, Fall: 0.1e-9})
	n.AddInverter("inv", "in", "out", "vdd", "0",
		circuit.TypicalNMOS(8), circuit.TypicalPMOS(8), 2e-15, 4e-15)
	n.AddC("cl", "out", "0", 10e-15)
	res, err := Tran(n, TranOptions{TStop: 1.5e-9, TStep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	iv := res.IV(vddIdx)
	if PeakAbs(iv) < 1e-4 {
		t.Errorf("no supply current during switching: peak %g", PeakAbs(iv))
	}
}

func TestACLowPass(t *testing.T) {
	n := circuit.New()
	vi := n.AddV("v", "in", "0", circuit.DC(0))
	n.AddR("r", "in", "out", 1000)
	n.AddC("c", "out", "0", 1e-12)
	fc := 1 / (2 * math.Pi * 1000 * 1e-12)
	pts, err := ACSweep(n, "out", ACStimulus{VSourceAmps: map[int]complex128{vi: 1}},
		fc/100, fc*100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := 1 / math.Sqrt(1+math.Pow(p.Freq/fc, 2))
		if math.Abs(cmplx.Abs(p.V)-want) > 1e-6 {
			t.Fatalf("f=%g: |H|=%g want %g", p.Freq, cmplx.Abs(p.V), want)
		}
	}
}

func TestInputImpedanceSeriesRL(t *testing.T) {
	n := circuit.New()
	vi := n.AddV("v", "p", "0", circuit.DC(0))
	n.AddR("r", "p", "m", 5)
	n.AddL("l", "m", "0", 2e-9)
	f := 1e9
	z, err := InputImpedance(n, vi, f)
	if err != nil {
		t.Fatal(err)
	}
	wantIm := 2 * math.Pi * f * 2e-9
	if math.Abs(real(z)-5) > 1e-6 || math.Abs(imag(z)-wantIm)/wantIm > 1e-9 {
		t.Errorf("Z = %v, want 5 + j%g", z, wantIm)
	}
}

func TestOPResistorNetwork(t *testing.T) {
	n := circuit.New()
	n.AddV("v", "a", "0", circuit.DC(3))
	n.AddR("r1", "a", "b", 100)
	n.AddR("r2", "b", "0", 200)
	m := circuit.Build(n)
	x, err := OP(m, 0, TranOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := n.NodeIndex("b")
	if math.Abs(x[b]-2) > 1e-6 {
		t.Errorf("OP node b = %g, want 2", x[b])
	}
}

func TestOPInverterTransferPoints(t *testing.T) {
	// DC sweep endpoints of a symmetric inverter.
	for _, c := range []struct{ vin, wantLo, wantHi float64 }{
		{0, 1.7, 1.81},
		{1.8, -0.01, 0.1},
	} {
		n := circuit.New()
		n.AddV("vdd", "vdd", "0", circuit.DC(1.8))
		n.AddV("vin", "in", "0", circuit.DC(c.vin))
		n.AddInverter("inv", "in", "out", "vdd", "0",
			circuit.TypicalNMOS(1), circuit.TypicalPMOS(1), 0, 0)
		n.AddR("rl", "out", "0", 1e9) // bleed to make DC unique
		m := circuit.Build(n)
		x, err := OP(m, 0, TranOptions{})
		if err != nil {
			t.Fatalf("vin=%g: %v", c.vin, err)
		}
		out, _ := n.NodeIndex("out")
		if x[out] < c.wantLo || x[out] > c.wantHi {
			t.Errorf("vin=%g: out=%g want in [%g,%g]", c.vin, x[out], c.wantLo, c.wantHi)
		}
	}
}

func TestTranEnergyPassivity(t *testing.T) {
	// Linear passive RLC network driven by a single pulse source: the
	// energy delivered by the source up to any time must be >= energy
	// currently stored in C and L (the rest was dissipated in R).
	n := circuit.New()
	vi := n.AddV("v", "in", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 0.1e-9, Rise: 0.1e-9, Width: 1, Fall: 0.1e-9})
	n.AddR("r1", "in", "a", 10)
	lIdx := n.AddL("l1", "a", "b", 1e-9)
	n.AddC("c1", "b", "0", 0.3e-12)
	n.AddR("r2", "b", "c", 25)
	n.AddC("c2", "c", "0", 0.5e-12)
	res, err := Tran(n, TranOptions{TStop: 2e-9, TStep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	vin := res.MustV("in")
	isrc := res.IV(vi)
	vb := res.MustV("b")
	vc := res.MustV("c")
	il := res.IL(lIdx)
	delivered := 0.0
	for k := 1; k < len(res.Times); k++ {
		dt := res.Times[k] - res.Times[k-1]
		// Source delivers v * (-ibranch).
		p0 := vin[k-1] * -isrc[k-1]
		p1 := vin[k] * -isrc[k]
		delivered += (p0 + p1) / 2 * dt
		stored := 0.5*0.3e-12*vb[k]*vb[k] + 0.5*0.5e-12*vc[k]*vc[k] + 0.5*1e-9*il[k]*il[k]
		if stored > delivered+1e-15 {
			t.Fatalf("t=%g: stored %g > delivered %g (active circuit!)",
				res.Times[k], stored, delivered)
		}
	}
}

func TestTranOptionValidation(t *testing.T) {
	n := circuit.New()
	n.AddR("r", "a", "0", 1)
	if _, err := Tran(n, TranOptions{TStop: 0, TStep: 1e-12}); err == nil {
		t.Errorf("zero TStop accepted")
	}
	if _, err := Tran(n, TranOptions{TStop: 1e-9, TStep: 0}); err == nil {
		t.Errorf("zero TStep accepted")
	}
}

func TestSaveEvery(t *testing.T) {
	n := circuit.New()
	n.AddV("v", "in", "0", circuit.DC(1))
	n.AddR("r", "in", "out", 1000)
	n.AddC("c", "out", "0", 1e-12)
	res, err := Tran(n, TranOptions{TStop: 1e-9, TStep: 1e-12, SaveEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) < 90/10 || len(res.Times) > 1000/10+2 {
		t.Errorf("SaveEvery kept %d points", len(res.Times))
	}
}

func TestMeasurements(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	v := []float64{0, 0.25, 0.75, 1.0, 1.0}
	ct, err := CrossTime(times, v, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ct-1.5) > 1e-12 {
		t.Errorf("CrossTime = %g, want 1.5", ct)
	}
	if _, err := CrossTime(times, v, 0.5, false); err == nil {
		t.Errorf("falling crossing should not exist")
	}
	if s := Skew([]float64{3, 7, 5}); s != 4 {
		t.Errorf("Skew = %g", s)
	}
	if s := Skew(nil); s != 0 {
		t.Errorf("empty Skew = %g", s)
	}
	if o := Overshoot([]float64{0, 1.3, 0.9}, 1); math.Abs(o-0.3) > 1e-12 {
		t.Errorf("Overshoot = %g", o)
	}
	if u := Undershoot([]float64{0.2, -0.4, 0.1}, 0); math.Abs(u-0.4) > 1e-12 {
		t.Errorf("Undershoot = %g", u)
	}
	st, err := SettleTime(times, []float64{0, 2, 1.2, 1.01, 1.0}, 1, 0.05)
	if err != nil || math.Abs(st-3) > 1e-12 {
		t.Errorf("SettleTime = %g, %v", st, err)
	}
	if got := Integrate([]float64{0, 1, 2}, []float64{0, 2, 0}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Integrate = %g", got)
	}
	if got := PeakAbs([]float64{1, -3, 2}); got != 3 {
		t.Errorf("PeakAbs = %g", got)
	}
}
