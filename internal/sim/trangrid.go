package sim

import (
	"fmt"
	"math"
	"sync"

	"inductance101/internal/matrix"
)

// Power-grid transient on the multigrid path. The netlist transient
// (Tran/TranSparse) tops out around 10^4 unknowns: every step refactors
// or re-solves a general MNA system. Supply grids are a much more
// structured problem — the SPD conductance system G is fixed, the decap
// matrix C is diagonal, and backward Euler with a fixed step h turns
// every time step into one solve against the same companion operator
//
//	A = G + C/h,    A v_{k+1} = (C/h) v_k + b(t_{k+1}).
//
// TranGridMG builds one multigrid hierarchy for A, then reuses it for
// every step: each solve is a handful of V-cycles warm-started from the
// previous voltage state. The per-step vector work (companion RHS,
// droop scan) is domain-decomposed — each worker owns a contiguous node
// partition — and bit-deterministic at any worker count.

// GridSystem is the plain-data description of a power-grid transient
// problem: the conductance system, the diagonal decap, and the
// time-varying current excitation. It deliberately carries no generator
// types so any assembly path (grid.Synthesize, netlist stamping, file
// loaders) can feed the stepper.
type GridSystem struct {
	// G is the SPD nodal conductance system (both triangles stored).
	G *matrix.CSR
	// CDiag is the per-node decoupling capacitance (diagonal C); may be
	// zero where a node carries no decap.
	CDiag []float64
	// RHS writes the excitation vector b(t) into dst (fully overwritten).
	RHS func(t float64, dst []float64)
	// Coarsener, when non-nil, supplies a fresh geometry-aware coarsener
	// per hierarchy build (they are single-use and stateful).
	Coarsener func() matrix.Coarsener
}

// GridTranOptions configures a TranGridMG run.
type GridTranOptions struct {
	// TStop is the end time; TStep the fixed backward-Euler step.
	TStop, TStep float64
	// Tol is the per-step PCG relative residual target (default 1e-8 —
	// looser than the static 1e-10 because warm starts keep the true
	// error far below the per-step tolerance).
	Tol float64
	// MaxIter bounds the PCG iterations of one step (default 200).
	MaxIter int
	// Workers caps the solver and vector-op parallelism (0 = process
	// default).
	Workers int
	// MG tunes the hierarchy build; Workers and Coarsener are filled in
	// from the run options and the system.
	MG matrix.MGOptions
	// V0 is the initial node-voltage state. Nil solves the DC system
	// G v = b(0) for a consistent start.
	V0 []float64
	// SaveNodes lists node indices whose voltage is recorded every step.
	SaveNodes []int
}

func (o *GridTranOptions) setDefaults(n int) error {
	if o.TStop <= 0 || o.TStep <= 0 {
		return fmt.Errorf("sim: grid transient needs positive TStop/TStep, got %g/%g", o.TStop, o.TStep)
	}
	if o.TStep > o.TStop {
		return fmt.Errorf("sim: grid transient step %g exceeds stop time %g", o.TStep, o.TStop)
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.V0 != nil && len(o.V0) != n {
		return fmt.Errorf("sim: grid transient V0 length %d, want %d", len(o.V0), n)
	}
	for _, s := range o.SaveNodes {
		if s < 0 || s >= n {
			return fmt.Errorf("sim: grid transient save node %d outside [0,%d)", s, n)
		}
	}
	return nil
}

// GridTranResult is the outcome of a TranGridMG run.
type GridTranResult struct {
	// Times holds t=0 and every step time; Saved the per-SaveNodes
	// traces aligned with Times; MinV the per-time minimum node voltage.
	Times []float64
	Saved [][]float64
	MinV  []float64
	// WorstV is the lowest node voltage seen anywhere in the run, at
	// node WorstNode and time WorstTime — the transient droop number.
	WorstV    float64
	WorstNode int
	WorstTime float64
	// Steps is the time-step count; PCGIters the total PCG iterations
	// across all steps (hierarchy reuse makes this the dominant cost).
	Steps    int
	PCGIters int
	// MG describes the stepping hierarchy (built once, reused per step).
	MG matrix.MGStats
	// V is the final node-voltage state.
	V []float64
}

// minNode returns the minimum of v and its index, domain-decomposed
// across workers (ties resolve to the lowest index, so the result is
// identical at any worker count).
func minNode(v []float64, workers int) (float64, int) {
	minV, minI := math.Inf(1), -1
	var mu sync.Mutex
	matrix.ParallelRangeWorkers(workers, len(v), 8192, func(lo, hi int) {
		lm, li := math.Inf(1), -1
		for i := lo; i < hi; i++ {
			if v[i] < lm {
				lm, li = v[i], i
			}
		}
		mu.Lock()
		if lm < minV || (lm == minV && li < minI) {
			minV, minI = lm, li
		}
		mu.Unlock()
	})
	return minV, minI
}

// TranGridMG runs the fixed-step backward-Euler transient of a power
// grid on one cached multigrid hierarchy. Steps are solved by
// warm-started MG-preconditioned conjugate gradients; per-step vector
// work is partitioned per worker.
func TranGridMG(sys GridSystem, opt GridTranOptions) (*GridTranResult, error) {
	if sys.G == nil || sys.RHS == nil {
		return nil, fmt.Errorf("sim: grid transient needs a conductance system and an RHS function")
	}
	n := sys.G.Rows()
	if len(sys.CDiag) != n {
		return nil, fmt.Errorf("sim: grid transient CDiag length %d, want %d", len(sys.CDiag), n)
	}
	if err := opt.setDefaults(n); err != nil {
		return nil, err
	}
	h := opt.TStep
	steps := int(math.Round(opt.TStop / h))
	if steps < 1 {
		steps = 1
	}

	// Companion operator A = G + C/h and its hierarchy, built once.
	a, err := sys.G.AddDiagScaled(1/h, sys.CDiag)
	if err != nil {
		return nil, fmt.Errorf("sim: grid transient companion build: %w", err)
	}
	mgOpt := opt.MG
	mgOpt.Workers = opt.Workers
	if sys.Coarsener != nil {
		mgOpt.Coarsener = sys.Coarsener()
	}
	mg, err := matrix.NewMG(a, mgOpt)
	if err != nil {
		return nil, fmt.Errorf("sim: grid transient hierarchy: %w", err)
	}

	// Initial state: caller-provided, or the DC solution of G v = b(0)
	// (its own small hierarchy — the stepping one factors A, not G).
	b := make([]float64, n)
	var v []float64
	if opt.V0 != nil {
		v = make([]float64, n)
		copy(v, opt.V0)
	} else {
		dcOpt := opt.MG
		dcOpt.Workers = opt.Workers
		if sys.Coarsener != nil {
			dcOpt.Coarsener = sys.Coarsener()
		}
		dc, err := matrix.NewMG(sys.G, dcOpt)
		if err != nil {
			return nil, fmt.Errorf("sim: grid transient DC init: %w", err)
		}
		sys.RHS(0, b)
		v, _, err = dc.SolvePCG(b, matrix.MGSolveOptions{Tol: opt.Tol, MaxIter: opt.MaxIter})
		if err != nil {
			return nil, fmt.Errorf("sim: grid transient DC init: %w", err)
		}
	}

	res := &GridTranResult{
		Times: make([]float64, 0, steps+1),
		Saved: make([][]float64, len(opt.SaveNodes)),
		MinV:  make([]float64, 0, steps+1),
		Steps: steps,
		MG:    mg.Stats(),
	}
	cOverH := make([]float64, n)
	for i, c := range sys.CDiag {
		cOverH[i] = c / h
	}
	record := func(t float64, v []float64) {
		res.Times = append(res.Times, t)
		mv, mi := minNode(v, opt.Workers)
		res.MinV = append(res.MinV, mv)
		if mi >= 0 && (len(res.MinV) == 1 || mv < res.WorstV) {
			res.WorstV, res.WorstNode, res.WorstTime = mv, mi, t
		}
		for k, node := range opt.SaveNodes {
			res.Saved[k] = append(res.Saved[k], v[node])
		}
	}
	record(0, v)

	rhs := make([]float64, n)
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		sys.RHS(t, b)
		matrix.ParallelRangeWorkers(opt.Workers, n, 8192, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rhs[i] = cOverH[i]*v[i] + b[i]
			}
		})
		x, st, err := mg.SolvePCG(rhs, matrix.MGSolveOptions{
			Tol: opt.Tol, MaxIter: opt.MaxIter, X0: v, Workers: opt.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: grid transient step %d (t=%g): %w", k, t, err)
		}
		res.PCGIters += st.Iterations
		v = x
		record(t, v)
	}
	res.V = v
	return res, nil
}
