package sim

import (
	"math"
	"testing"

	"inductance101/internal/circuit"
)

func ringCircuit() *circuit.Netlist {
	n := circuit.New()
	n.AddV("v", "in", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 0.2e-9, Rise: 20e-12, Width: 1, Fall: 20e-12})
	n.AddR("r", "in", "m", 3)
	n.AddL("l", "m", "out", 1.5e-9)
	n.AddC("c", "out", "0", 0.4e-12)
	n.AddR("rl", "out", "0", 2000)
	return n
}

func TestAdaptiveMatchesFineFixedStep(t *testing.T) {
	ref, err := Tran(ringCircuit(), TranOptions{TStop: 5e-9, TStep: 0.25e-12})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := TranAdaptive(ringCircuit(), AdaptiveOptions{TStop: 5e-9, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(ad, "out", ref.Times)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.MustV("out")
	worst := 0.0
	for i := range want {
		worst = math.Max(worst, math.Abs(got[i]-want[i]))
	}
	if worst > 5e-3 {
		t.Errorf("adaptive deviates from fine reference by %g", worst)
	}
	if ad.Steps == nil || ad.Steps.Accepted == 0 {
		t.Fatalf("missing step stats")
	}
	// The point of adaptivity: far fewer points than the fine grid.
	if len(ad.Times) >= len(ref.Times)/4 {
		t.Errorf("adaptive used %d points vs %d fixed — no saving", len(ad.Times), len(ref.Times))
	}
}

func TestAdaptiveStepGrowsInQuietTail(t *testing.T) {
	// After the ring settles the controller should reach HMax.
	ad, err := TranAdaptive(ringCircuit(), AdaptiveOptions{TStop: 30e-9, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	n := len(ad.Times)
	lastStep := ad.Times[n-1] - ad.Times[n-2]
	firstSteps := ad.Times[5] - ad.Times[4]
	if lastStep <= firstSteps {
		t.Errorf("step did not grow in the tail: first %g, last %g", firstSteps, lastStep)
	}
}

func TestAdaptiveTighterTolIsMoreAccurate(t *testing.T) {
	ref, err := Tran(ringCircuit(), TranOptions{TStop: 3e-9, TStep: 0.25e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.MustV("out")
	errAt := func(tol float64) float64 {
		ad, err := TranAdaptive(ringCircuit(), AdaptiveOptions{TStop: 3e-9, Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Interp(ad, "out", ref.Times)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range want {
			worst = math.Max(worst, math.Abs(got[i]-want[i]))
		}
		return worst
	}
	loose := errAt(3e-3)
	tight := errAt(1e-5)
	if tight >= loose {
		t.Errorf("tightening tol did not reduce error: %g vs %g", tight, loose)
	}
}

func TestAdaptiveNonlinear(t *testing.T) {
	n := circuit.New()
	n.AddV("vdd", "vdd", "0", circuit.DC(1.8))
	n.AddV("vin", "in", "0", circuit.Pulse{V1: 0, V2: 1.8, Delay: 0.2e-9, Rise: 50e-12, Width: 2e-9, Fall: 50e-12})
	n.AddInverter("inv", "in", "out", "vdd", "0",
		circuit.TypicalNMOS(4), circuit.TypicalPMOS(4), 2e-15, 4e-15)
	n.AddC("cl", "out", "0", 20e-15)
	ad, err := TranAdaptive(n, AdaptiveOptions{TStop: 2e-9, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	v := ad.MustV("out")
	if v[0] < 1.7 {
		t.Errorf("initial output %g", v[0])
	}
	if v[len(v)-1] > 0.1 {
		t.Errorf("final output %g, inverter did not switch", v[len(v)-1])
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := TranAdaptive(ringCircuit(), AdaptiveOptions{TStop: 0}); err == nil {
		t.Errorf("zero TStop accepted")
	}
}

func TestInterpEdges(t *testing.T) {
	r := &TranResult{
		Netlist: circuit.New(),
		Times:   []float64{0, 1, 2},
	}
	r.Netlist.Node("a")
	r.States = [][]float64{{0}, {10}, {20}}
	got, err := Interp(r, "a", []float64{-1, 0.5, 1.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 15, 20}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Interp[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
