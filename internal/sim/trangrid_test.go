package sim_test

import (
	"math"
	"testing"

	"inductance101/internal/grid"
	"inductance101/internal/matrix"
	"inductance101/internal/sim"
)

func synthTranCase(t *testing.T, nodes int) (*grid.SynthGrid, sim.GridSystem) {
	t.Helper()
	spec := grid.DefaultSynthSpec(nodes)
	spec.LoadJitter, spec.LoadSeed = 0.4, 5
	g, err := grid.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A clock-gating burst: idle draw, then full activity after 0.2 ns.
	activity := func(tm float64) float64 {
		if tm < 0.2e-9 {
			return 0.1
		}
		return 1.0
	}
	return g, sim.GridSystem{
		G:         g.Sys,
		CDiag:     g.CDiag,
		RHS:       g.TranRHS(activity, 2),
		Coarsener: g.Coarsener,
	}
}

// TestTranGridMGMatchesCholeskyStepping checks the cached-hierarchy MG
// transient against an oracle that factors the same backward-Euler
// companion A = G + C/h once with the sparse direct Cholesky and steps
// explicitly.
func TestTranGridMGMatchesCholeskyStepping(t *testing.T) {
	g, sys := synthTranCase(t, 1200)
	h, tstop := 0.05e-9, 1e-9
	res, err := sim.TranGridMG(sys, sim.GridTranOptions{
		TStop: tstop, TStep: h, Tol: 1e-12, Workers: 2,
		SaveNodes: []int{g.CenterBottomNode()},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: explicit BE stepping on the factored companion.
	a, err := g.Sys.AddDiagScaled(1/h, g.CDiag)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := matrix.FactorSparseCholesky(a.AsSymmetricCSC())
	if err != nil {
		t.Fatal(err)
	}
	chG, err := matrix.FactorSparseCholesky(g.Sys.AsSymmetricCSC())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N)
	sys.RHS(0, b)
	v, err := chG.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	steps := int(math.Round(tstop / h))
	rhs := make([]float64, g.N)
	for k := 1; k <= steps; k++ {
		sys.RHS(float64(k)*h, b)
		for i := range rhs {
			rhs[i] = g.CDiag[i]/h*v[i] + b[i]
		}
		if v, err = ch.Solve(rhs); err != nil {
			t.Fatal(err)
		}
	}

	if res.Steps != steps || len(res.Times) != steps+1 {
		t.Fatalf("step bookkeeping: %d steps, %d times (want %d, %d)", res.Steps, len(res.Times), steps, steps+1)
	}
	worst := 0.0
	for i := range v {
		if d := math.Abs(res.V[i] - v[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-8 {
		t.Errorf("final state off by %g from direct-factor stepping", worst)
	}
	// Warm starts legitimately converge in zero iterations on the quiet
	// plateau, so the total is well below steps — but never zero.
	if res.PCGIters <= 0 {
		t.Errorf("suspicious total PCG count %d for %d steps", res.PCGIters, steps)
	}
	if len(res.Saved) != 1 || len(res.Saved[0]) != steps+1 {
		t.Fatalf("saved trace shape %dx%d", len(res.Saved), len(res.Saved[0]))
	}
	// The activity burst must deepen the droop: worst voltage after the
	// burst is below the idle-phase minimum, and WorstV agrees with MinV.
	minAll := math.Inf(1)
	for _, mv := range res.MinV {
		if mv < minAll {
			minAll = mv
		}
	}
	if res.WorstV != minAll {
		t.Errorf("WorstV %g disagrees with min(MinV) %g", res.WorstV, minAll)
	}
	if res.WorstTime < 0.2e-9 {
		t.Errorf("worst droop at t=%g, before the activity burst", res.WorstTime)
	}
	if res.WorstV >= res.MinV[0] {
		t.Errorf("burst did not deepen the droop: worst %g vs initial min %g", res.WorstV, res.MinV[0])
	}
}

// TestTranGridMGWorkerDeterminism pins bit-identical transient results
// across worker counts — the domain decomposition must not change the
// arithmetic.
func TestTranGridMGWorkerDeterminism(t *testing.T) {
	_, sys := synthTranCase(t, 700)
	run := func(workers int) *sim.GridTranResult {
		res, err := sim.TranGridMG(sys, sim.GridTranOptions{
			TStop: 0.4e-9, TStep: 0.05e-9, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	for _, w := range []int{2, 5} {
		rw := run(w)
		if rw.PCGIters != r1.PCGIters {
			t.Errorf("workers=%d: PCG total %d != serial %d", w, rw.PCGIters, r1.PCGIters)
		}
		for i := range rw.V {
			if rw.V[i] != r1.V[i] {
				t.Fatalf("workers=%d: V[%d] differs from serial (not bit-identical)", w, i)
			}
		}
		if rw.WorstV != r1.WorstV || rw.WorstNode != r1.WorstNode {
			t.Errorf("workers=%d: worst droop (%g @ %d) != serial (%g @ %d)",
				w, rw.WorstV, rw.WorstNode, r1.WorstV, r1.WorstNode)
		}
	}
}

// TestTranGridMGValidation pins the fail-fast paths.
func TestTranGridMGValidation(t *testing.T) {
	_, sys := synthTranCase(t, 400)
	n := sys.G.Rows()
	bad := []sim.GridTranOptions{
		{TStop: 0, TStep: 1e-12},
		{TStop: 1e-9, TStep: -1},
		{TStop: 1e-9, TStep: 2e-9},
		{TStop: 1e-9, TStep: 1e-10, V0: make([]float64, n+1)},
		{TStop: 1e-9, TStep: 1e-10, SaveNodes: []int{n}},
	}
	for i, opt := range bad {
		if _, err := sim.TranGridMG(sys, opt); err == nil {
			t.Errorf("case %d: sim.TranGridMG accepted invalid options %+v", i, opt)
		}
	}
	if _, err := sim.TranGridMG(sim.GridSystem{}, sim.GridTranOptions{TStop: 1, TStep: 1}); err == nil {
		t.Error("sim.TranGridMG accepted an empty system")
	}
}

// TestTranGridMGV0SkipsDCInit pins that a caller-provided initial state
// is used verbatim at t=0.
func TestTranGridMGV0SkipsDCInit(t *testing.T) {
	g, sys := synthTranCase(t, 400)
	v0 := make([]float64, g.N)
	for i := range v0 {
		v0[i] = g.Spec.Vdd
	}
	res, err := sim.TranGridMG(sys, sim.GridTranOptions{
		TStop: 0.2e-9, TStep: 0.1e-9, V0: v0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinV[0] != g.Spec.Vdd {
		t.Errorf("t=0 min voltage %g, want the flat V0 %g", res.MinV[0], g.Spec.Vdd)
	}
}
