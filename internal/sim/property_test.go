package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"inductance101/internal/circuit"
)

// randRLC builds a random RLC ladder driven by a pulse source: series
// R/L elements down a chain of nodes, a capacitor from every node to
// ground, and a sprinkling of mutual couplings — the element mix of the
// paper's interconnect models, with values in physically plausible
// ranges so the systems are well-conditioned but not trivial.
func randRLC(rng *rand.Rand, nodes int) *circuit.Netlist {
	n := circuit.New()
	name := func(i int) string { return fmt.Sprintf("n%d", i) }
	n.AddV("vin", name(0), "0", circuit.Pulse{
		V1: 0, V2: 1, Delay: 0.1e-9, Rise: 0.1e-9, Width: 1e-9, Fall: 0.1e-9,
	})
	var inductors []int
	for i := 0; i < nodes; i++ {
		a, b := name(i), name(i+1)
		if rng.Float64() < 0.5 {
			n.AddR(fmt.Sprintf("r%d", i), a, b, 1+9*rng.Float64())
		} else {
			n.AddR(fmt.Sprintf("r%d", i), a, b, 0.5+rng.Float64())
			li := n.AddL(fmt.Sprintf("l%d", i), b, name(i+1)+"x", (0.1+rng.Float64())*1e-9)
			inductors = append(inductors, li)
			// Continue the chain from the inductor's far node.
			n.AddR(fmt.Sprintf("rl%d", i), name(i+1)+"x", b, 1e3)
		}
		n.AddC(fmt.Sprintf("c%d", i), b, "0", (1+9*rng.Float64())*1e-15)
	}
	// Random mutual couplings between inductor pairs (|k| < 0.5 keeps
	// every 2x2 inductance block positive definite).
	for p := 0; p+1 < len(inductors); p += 2 {
		la, lb := inductors[p], inductors[p+1]
		k := 0.4 * (2*rng.Float64() - 1)
		m := k * math.Sqrt(n.Inductors[la].L*n.Inductors[lb].L)
		n.AddM(fmt.Sprintf("k%d", p), la, lb, m)
	}
	n.AddR("rload", name(nodes), "0", 50)
	return n
}

// forceThreshold runs fn once with the sparse path forced on and once
// forced off, returning both results.
func bothPaths[T any](t *testing.T, fn func() T) (sparse, dense T) {
	t.Helper()
	old := SetSparseThreshold(1)
	sparse = fn()
	SetSparseThreshold(1 << 30)
	dense = fn()
	SetSparseThreshold(old)
	return sparse, dense
}

func TestPropertyTranSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		nodes := 4 + rng.Intn(20)
		n := randRLC(rng, nodes)
		opt := TranOptions{TStop: 2e-9, TStep: 20e-12}
		if trial%2 == 1 {
			opt.Method = BackwardEuler
		}
		type out struct {
			res *TranResult
			err error
		}
		sp, de := bothPaths(t, func() out {
			r, err := Tran(n, opt)
			return out{r, err}
		})
		if sp.err != nil || de.err != nil {
			t.Fatalf("trial %d: sparse err %v, dense err %v", trial, sp.err, de.err)
		}
		if len(sp.res.Times) != len(de.res.Times) {
			t.Fatalf("trial %d: time grids differ", trial)
		}
		for k := range sp.res.States {
			for i := range sp.res.States[k] {
				if d := math.Abs(sp.res.States[k][i] - de.res.States[k][i]); d > 1e-9 {
					t.Fatalf("trial %d: state[%d][%d] sparse %g dense %g (diff %g)",
						trial, k, i, sp.res.States[k][i], de.res.States[k][i], d)
				}
			}
		}
	}
}

func TestPropertyACSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		nodes := 4 + rng.Intn(16)
		n := randRLC(rng, nodes)
		probe := fmt.Sprintf("n%d", nodes)
		stim := ACStimulus{VSourceAmps: map[int]complex128{0: 1}}
		type out struct {
			pts []ACPoint
			err error
		}
		sp, de := bothPaths(t, func() out {
			p, err := ACSweep(n, probe, stim, 1e6, 1e11, 6)
			return out{p, err}
		})
		if sp.err != nil || de.err != nil {
			t.Fatalf("trial %d: sparse err %v, dense err %v", trial, sp.err, de.err)
		}
		if len(sp.pts) != len(de.pts) {
			t.Fatalf("trial %d: point counts differ", trial)
		}
		for k := range sp.pts {
			scale := cmplx.Abs(de.pts[k].V)
			if scale < 1 {
				scale = 1
			}
			if d := cmplx.Abs(sp.pts[k].V - de.pts[k].V); d > 1e-9*scale {
				t.Fatalf("trial %d: point %d (%g Hz) sparse %v dense %v",
					trial, k, sp.pts[k].Freq, sp.pts[k].V, de.pts[k].V)
			}
		}
	}
}

func TestPropertyAdaptiveSparseTracksFixedStep(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := randRLC(rng, 10)
	old := SetSparseThreshold(1)
	defer SetSparseThreshold(old)
	adapt, err := TranAdaptive(n, AdaptiveOptions{TStop: 2e-9, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if adapt.Steps == nil || adapt.Steps.Accepted == 0 {
		t.Fatal("adaptive run reported no accepted steps")
	}
	fixed, err := Tran(n, TranOptions{TStop: 2e-9, TStep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	av, err := Interp(adapt, "n10", fixed.Times)
	if err != nil {
		t.Fatal(err)
	}
	fv := fixed.MustV("n10")
	for k := range fv {
		if d := math.Abs(av[k] - fv[k]); d > 1e-3 {
			t.Fatalf("adaptive diverges from fine fixed-step at t=%g: %g vs %g",
				fixed.Times[k], av[k], fv[k])
		}
	}
}

// TestACPatternBuildScalesWithNNZ pins the cost of the AC pattern
// extraction to the number of structural nonzeros: quadrupling an RC
// chain's size must not cost anywhere near the 16x a quadratic scan
// would. (The historical implementation scanned the dense G and C,
// O(size^2) per sweep.)
func TestACPatternBuildScalesWithNNZ(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	chain := func(nodes int) *circuit.Netlist {
		n := circuit.New()
		n.AddV("vin", "n0", "0", circuit.DC(1))
		for i := 0; i < nodes; i++ {
			n.AddR(fmt.Sprintf("r%d", i), fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), 1)
			n.AddC(fmt.Sprintf("c%d", i), fmt.Sprintf("n%d", i+1), "0", 1e-15)
		}
		return n
	}
	measure := func(nodes int) time.Duration {
		n := chain(nodes)
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			p := acPatternFromNetlist(n)
			if el := time.Since(start); el < best {
				best = el
			}
			if p.size == 0 {
				t.Fatal("empty pattern")
			}
		}
		return best
	}
	measure(500) // warm up allocator and caches
	small := measure(2000)
	big := measure(8000)
	// Linear scaling gives ~4x, map/sort overhead pushes it a little
	// higher; a quadratic scan gives 16x. Fail midway.
	if big > 12*small {
		t.Fatalf("pattern build scaled %v -> %v (>12x for 4x the nonzeros; quadratic?)", small, big)
	}
}
