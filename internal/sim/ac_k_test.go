package sim

import (
	"math/cmplx"
	"testing"

	"inductance101/internal/circuit"
)

func TestACWithKGroupMatchesLForm(t *testing.T) {
	// The K element must be equivalent to the L form in AC analysis too
	// (the paper notes K needs "a special circuit simulator" — ours
	// handles it in every analysis).
	la, lb, m := 2e-9, 3e-9, 1e-9
	det := la*lb - m*m
	k := [][]float64{{lb / det, -m / det}, {-m / det, la / det}}
	build := func(useK bool) (*circuit.Netlist, int) {
		n := circuit.New()
		vi := n.AddV("v", "p", "0", circuit.DC(0))
		n.AddR("r", "p", "a", 5)
		var iA, iB int
		if useK {
			iA = n.AddL("la", "a", "oa", 0)
			iB = n.AddL("lb", "a", "ob", 0)
			n.AddKGroup("k", []int{iA, iB}, k)
		} else {
			iA = n.AddL("la", "a", "oa", la)
			iB = n.AddL("lb", "a", "ob", lb)
			n.AddM("m", iA, iB, m)
		}
		n.AddR("ra", "oa", "0", 50)
		n.AddR("rb", "ob", "0", 75)
		return n, vi
	}
	for _, f := range []float64{1e8, 1e9, 1e10} {
		nl, vl := build(false)
		zl, err := InputImpedance(nl, vl, f)
		if err != nil {
			t.Fatal(err)
		}
		nk, vk := build(true)
		zk, err := InputImpedance(nk, vk, f)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(zl-zk)/cmplx.Abs(zl) > 1e-9 {
			t.Errorf("f=%g: K form Z %v vs L form %v", f, zk, zl)
		}
	}
}
