package circuit

import (
	"inductance101/internal/matrix"
)

// MNA is the assembled modified-nodal-analysis description of the linear
// part of a netlist:
//
//	C dx/dt + G x = b(t) + (nonlinear device currents)
//
// with x = [node voltages; branch currents]. Branch currents exist for
// inductors and voltage sources.
type MNA struct {
	N    *Netlist
	G    *matrix.Dense
	C    *matrix.Dense
	size int
	// kMember[i] is true when inductor i's branch row is governed by a
	// KGroup instead of its own L.
	kMember map[int]bool
}

// Build assembles the dense MNA matrices for the netlist's linear
// elements. MOSFETs are not stamped here — the simulator linearizes
// them per Newton iteration.
func Build(n *Netlist) *MNA {
	size := n.Size()
	m := &MNA{
		N:       n,
		G:       matrix.NewDense(size, size),
		C:       matrix.NewDense(size, size),
		size:    size,
		kMember: kMembers(n),
	}
	stampLinear(n, m.G.Add, m.C.Add, m.kMember)
	return m
}

// kMembers marks inductors whose branch row is governed by a KGroup
// instead of their own L.
func kMembers(n *Netlist) map[int]bool {
	km := make(map[int]bool)
	for _, kg := range n.KGroups {
		for _, li := range kg.Inductors {
			km[li] = true
		}
	}
	return km
}

// stampLinear walks the linear elements once, stamping conductances via
// addG and capacitances/inductances via addC. The two sinks see the
// exact same sequence of (i, j, v) stamps, so the dense Build and the
// sparse BuildSparse accumulate bit-identical values entry for entry.
// Ground rows/columns are filtered here.
func stampLinear(n *Netlist, addGRaw, addCRaw func(i, j int, v float64), kMember map[int]bool) {
	addG := func(i, j int, v float64) {
		if i == groundIndex || j == groundIndex {
			return
		}
		addGRaw(i, j, v)
	}
	addC := func(i, j int, v float64) {
		if i == groundIndex || j == groundIndex {
			return
		}
		addCRaw(i, j, v)
	}
	for i := range n.Resistors {
		r := &n.Resistors[i]
		g := 1 / r.R
		addG(r.A, r.A, g)
		addG(r.B, r.B, g)
		addG(r.A, r.B, -g)
		addG(r.B, r.A, -g)
	}
	for i := range n.Capacitors {
		c := &n.Capacitors[i]
		addC(c.A, c.A, c.C)
		addC(c.B, c.B, c.C)
		addC(c.A, c.B, -c.C)
		addC(c.B, c.A, -c.C)
	}
	nn := n.NumNodes()
	for i := range n.Inductors {
		l := &n.Inductors[i]
		br := nn + l.Branch
		// KCL: branch current leaves A, enters B.
		addG(l.A, br, 1)
		addG(l.B, br, -1)
		if kMember[i] {
			continue // branch row stamped by the KGroup below
		}
		// Branch row: v_A - v_B - L di/dt = 0.
		addG(br, l.A, 1)
		addG(br, l.B, -1)
		addC(br, br, -l.L)
	}
	for i := range n.Mutuals {
		mu := &n.Mutuals[i]
		ba := nn + n.Inductors[mu.La].Branch
		bb := nn + n.Inductors[mu.Lb].Branch
		addC(ba, bb, -mu.M)
		addC(bb, ba, -mu.M)
	}
	for _, kg := range n.KGroups {
		// Branch rows: sum_j K_ij (v_Aj - v_Bj) - di_i/dt = 0.
		for gi, liI := range kg.Inductors {
			br := nn + n.Inductors[liI].Branch
			addC(br, br, -1)
			for gj, liJ := range kg.Inductors {
				k := kg.K[gi][gj]
				if k == 0 {
					continue
				}
				lj := &n.Inductors[liJ]
				addG(br, lj.A, k)
				addG(br, lj.B, -k)
			}
		}
	}
	for i := range n.VSources {
		v := &n.VSources[i]
		br := nn + v.Branch
		addG(v.A, br, 1)
		addG(v.B, br, -1)
		addG(br, v.A, 1)
		addG(br, v.B, -1)
	}
}

// Size returns the MNA system dimension.
func (m *MNA) Size() int { return m.size }

// RHS fills b with the independent-source vector at time t. b must have
// length Size().
func (m *MNA) RHS(t float64, b []float64) {
	for i := range b {
		b[i] = 0
	}
	m.AddRHS(t, b)
}

// AddRHS accumulates the independent-source vector at time t into b.
func (m *MNA) AddRHS(t float64, b []float64) {
	n := m.N
	nn := n.NumNodes()
	for i := range n.ISources {
		s := &n.ISources[i]
		v := s.Wave.At(t)
		if s.A != groundIndex {
			b[s.A] -= v
		}
		if s.B != groundIndex {
			b[s.B] += v
		}
	}
	for i := range n.VSources {
		s := &n.VSources[i]
		b[nn+s.Branch] += s.Wave.At(t)
	}
}

// SourceDerivRHS fills db with d/dt of the source vector at time t,
// computed by central difference with step h. Needed by AC-accurate
// integration schemes; the trapezoidal integrator does not use it.
func (m *MNA) SourceDerivRHS(t, h float64, db []float64) {
	b1 := make([]float64, m.size)
	b2 := make([]float64, m.size)
	m.RHS(t-h/2, b1)
	m.RHS(t+h/2, b2)
	for i := range db {
		db[i] = (b2[i] - b1[i]) / h
	}
}
