package circuit

import (
	"math"
	"testing"
)

func TestSourceDerivRHS(t *testing.T) {
	n := New()
	n.AddV("v", "a", "0", Pulse{V1: 0, V2: 1, Delay: 0, Rise: 1e-9, Width: 1, Fall: 1e-9})
	m := Build(n)
	db := make([]float64, m.Size())
	// Mid-ramp: dV/dt = 1 V/ns = 1e9 V/s on the source branch row.
	m.SourceDerivRHS(0.5e-9, 1e-12, db)
	br := n.BranchOfVSource(0)
	if math.Abs(db[br]-1e9)/1e9 > 1e-6 {
		t.Errorf("source derivative = %g, want 1e9", db[br])
	}
	// Flat region: zero derivative.
	m.SourceDerivRHS(5e-9, 1e-12, db)
	if db[br] != 0 {
		t.Errorf("flat-region derivative = %g", db[br])
	}
}

func TestAddRHSAccumulates(t *testing.T) {
	n := New()
	n.AddI("i", "0", "a", DC(2e-3))
	m := Build(n)
	b := make([]float64, m.Size())
	m.AddRHS(0, b)
	m.AddRHS(0, b)
	a, _ := n.NodeIndex("a")
	if math.Abs(b[a]-4e-3) > 1e-15 {
		t.Errorf("AddRHS did not accumulate: %g", b[a])
	}
}
