package circuit

import (
	"math"
	"sort"
)

// Waveform is a time-varying source value v(t).
type Waveform interface {
	// At returns the source value at time t (t >= 0).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At returns the constant value.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is the SPICE PULSE source: V1 before Delay, linear rise to V2
// over Rise, hold for Width, linear fall over Fall, then V1 again,
// repeating with Period if Period > 0.
type Pulse struct {
	V1, V2                   float64
	Delay, Rise, Width, Fall float64
	Period                   float64
}

// At evaluates the pulse.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V1
	}
	if p.Period > 0 {
		t = math.Mod(t, p.Period)
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V2
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// PWL is a piecewise-linear waveform through (Times[i], Values[i])
// breakpoints. Before the first point it holds Values[0]; after the
// last, Values[last].
type PWL struct {
	Times  []float64
	Values []float64
}

// NewPWL builds a PWL waveform, validating monotone times.
func NewPWL(times, values []float64) PWL {
	if len(times) != len(values) || len(times) == 0 {
		panic("circuit: PWL needs equal-length non-empty times/values")
	}
	if !sort.Float64sAreSorted(times) {
		panic("circuit: PWL times must be non-decreasing")
	}
	return PWL{Times: times, Values: values}
}

// At evaluates the waveform by binary search + linear interpolation.
func (p PWL) At(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	i := sort.SearchFloat64s(p.Times, t)
	// p.Times[i-1] < t <= p.Times[i]
	t0, t1 := p.Times[i-1], p.Times[i]
	v0, v1 := p.Values[i-1], p.Values[i]
	if t1 == t0 {
		return v1
	}
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Sine is v(t) = Offset + Amplitude*sin(2*pi*Freq*(t-Delay)) for
// t >= Delay, Offset before.
type Sine struct {
	Offset, Amplitude, Freq, Delay float64
}

// At evaluates the sine.
func (s Sine) At(t float64) float64 {
	if t < s.Delay {
		return s.Offset
	}
	return s.Offset + s.Amplitude*math.Sin(2*math.Pi*s.Freq*(t-s.Delay))
}

// Scaled multiplies another waveform by a constant — used by the grid
// generator to give each background-switching current source a random
// magnitude while sharing one activity profile.
type Scaled struct {
	W Waveform
	K float64
}

// At evaluates k * w(t).
func (s Scaled) At(t float64) float64 { return s.K * s.W.At(t) }

// Shifted delays another waveform by Dt, modelling "different parts of
// the chip switching at different times" (§3, current sources).
type Shifted struct {
	W  Waveform
	Dt float64
}

// At evaluates w(t - dt).
func (s Shifted) At(t float64) float64 { return s.W.At(t - s.Dt) }
