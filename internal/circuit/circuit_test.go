package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeInterning(t *testing.T) {
	n := New()
	a := n.Node("a")
	if n.Node("a") != a {
		t.Errorf("re-interning changed index")
	}
	if n.Node(Ground) != -1 || n.Node("gnd") != -1 || n.Node("GND") != -1 {
		t.Errorf("ground aliases broken")
	}
	b := n.Node("b")
	if a == b {
		t.Errorf("distinct nodes share index")
	}
	if n.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", n.NumNodes())
	}
	if n.NodeName(a) != "a" {
		t.Errorf("NodeName wrong")
	}
	if _, err := n.NodeIndex("zzz"); err == nil {
		t.Errorf("unknown node should error")
	}
	if i, err := n.NodeIndex("b"); err != nil || i != b {
		t.Errorf("NodeIndex(b) = %d, %v", i, err)
	}
}

func TestAddElementValidation(t *testing.T) {
	n := New()
	for _, f := range []func(){
		func() { n.AddR("r", "a", "b", 0) },
		func() { n.AddR("r", "a", "b", -1) },
		func() { n.AddC("c", "a", "b", -1e-15) },
		func() { n.AddL("l", "a", "b", -1e-9) },
		func() { n.AddM("m", 0, 0, 1e-9) },
		func() { n.Node("") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBranchNumbering(t *testing.T) {
	n := New()
	l0 := n.AddL("l0", "a", "b", 1e-9)
	v0 := n.AddV("v0", "a", "0", DC(1))
	l1 := n.AddL("l1", "b", "0", 1e-9)
	if n.NumBranches() != 3 {
		t.Fatalf("NumBranches = %d", n.NumBranches())
	}
	// Branch unknowns come after node unknowns and are all distinct.
	set := map[int]bool{
		n.BranchOfInductor(l0): true,
		n.BranchOfVSource(v0):  true,
		n.BranchOfInductor(l1): true,
	}
	if len(set) != 3 {
		t.Errorf("branch indices collide")
	}
	for k := range set {
		if k < n.NumNodes() || k >= n.Size() {
			t.Errorf("branch index %d out of [nodes, size)", k)
		}
	}
}

func TestMNAResistorDivider(t *testing.T) {
	// v -- R1 -- mid -- R2 -- gnd with V=2: static solve G x = b.
	n := New()
	n.AddV("v", "in", "0", DC(2))
	n.AddR("r1", "in", "mid", 1000)
	n.AddR("r2", "mid", "0", 1000)
	m := Build(n)
	b := make([]float64, m.Size())
	m.RHS(0, b)
	x := solveDense(t, m, b)
	mid, _ := n.NodeIndex("mid")
	if math.Abs(x[mid]-1) > 1e-9 {
		t.Errorf("divider mid = %g, want 1", x[mid])
	}
	// Source current = -2/2000 (flows out of the + terminal through
	// the circuit, so the A->B branch current is negative... it flows
	// B->A inside the source): check magnitude and KCL sign.
	is := x[n.BranchOfVSource(0)]
	if math.Abs(is-(-0.001)) > 1e-9 {
		t.Errorf("source branch current = %g, want -0.001", is)
	}
}

func solveDense(t *testing.T, m *MNA, b []float64) []float64 {
	t.Helper()
	// Tiny Gaussian elimination to keep this package free of solver
	// dependencies in tests.
	n := m.Size()
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = m.G.At(i, j)
		}
		a[i][n] = b[i]
	}
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
				p = i
			}
		}
		a[k], a[p] = a[p], a[k]
		if a[k][k] == 0 {
			t.Fatalf("singular MNA at %d", k)
		}
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			for j := k; j <= n; j++ {
				a[i][j] -= f * a[k][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := a[i][n]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

func TestMNAInductorDCShort(t *testing.T) {
	// At DC (G-only solve), an inductor is a short: V -- L -- R -- gnd
	// puts the full source voltage across R.
	n := New()
	n.AddV("v", "in", "0", DC(1))
	n.AddL("l", "in", "mid", 5e-9)
	n.AddR("r", "mid", "0", 50)
	m := Build(n)
	b := make([]float64, m.Size())
	m.RHS(0, b)
	x := solveDense(t, m, b)
	mid, _ := n.NodeIndex("mid")
	if math.Abs(x[mid]-1) > 1e-9 {
		t.Errorf("inductor DC short broken: mid = %g", x[mid])
	}
	il := x[n.BranchOfInductor(0)]
	if math.Abs(il-0.02) > 1e-9 {
		t.Errorf("inductor current = %g, want 0.02", il)
	}
	// C matrix carries -L on the branch diagonal.
	br := n.BranchOfInductor(0)
	if m.C.At(br, br) != -5e-9 {
		t.Errorf("C branch stamp = %g", m.C.At(br, br))
	}
}

func TestMNAMutualStamp(t *testing.T) {
	n := New()
	la := n.AddL("la", "a", "0", 2e-9)
	lb := n.AddL("lb", "b", "0", 3e-9)
	n.AddM("m", la, lb, 1e-9)
	m := Build(n)
	ba, bb := n.BranchOfInductor(la), n.BranchOfInductor(lb)
	if m.C.At(ba, bb) != -1e-9 || m.C.At(bb, ba) != -1e-9 {
		t.Errorf("mutual stamps wrong: %g %g", m.C.At(ba, bb), m.C.At(bb, ba))
	}
}

func TestMNAKGroupStamp(t *testing.T) {
	// A KGroup with K = L^-1 must produce branch equations equivalent
	// to the L form: check stamps directly for one inductor, K = 1/L.
	n := New()
	li := n.AddL("l", "a", "0", 0)
	n.AddKGroup("k", []int{li}, [][]float64{{2e8}}) // K = 1/5nH
	m := Build(n)
	br := n.BranchOfInductor(li)
	a, _ := n.NodeIndex("a")
	if m.C.At(br, br) != -1 {
		t.Errorf("K branch C stamp = %g, want -1", m.C.At(br, br))
	}
	if m.G.At(br, a) != 2e8 {
		t.Errorf("K branch G stamp = %g, want 2e8", m.G.At(br, a))
	}
	// KCL column stamp still present.
	if m.G.At(a, br) != 1 {
		t.Errorf("KCL stamp missing")
	}
}

func TestRHSSources(t *testing.T) {
	n := New()
	n.AddI("i", "a", "b", DC(1e-3))
	n.AddV("v", "c", "0", DC(5))
	m := Build(n)
	b := make([]float64, m.Size())
	m.RHS(0, b)
	a, _ := n.NodeIndex("a")
	bb, _ := n.NodeIndex("b")
	if b[a] != -1e-3 || b[bb] != 1e-3 {
		t.Errorf("ISource RHS wrong: %g %g", b[a], b[bb])
	}
	if b[n.BranchOfVSource(0)] != 5 {
		t.Errorf("VSource RHS wrong")
	}
}

func TestWaveforms(t *testing.T) {
	p := Pulse{V1: 0, V2: 1.8, Delay: 1e-9, Rise: 0.1e-9, Width: 1e-9, Fall: 0.1e-9, Period: 4e-9}
	if p.At(0) != 0 {
		t.Errorf("pulse before delay")
	}
	if math.Abs(p.At(1.05e-9)-0.9) > 1e-9 {
		t.Errorf("pulse mid-rise = %g", p.At(1.05e-9))
	}
	if p.At(1.5e-9) != 1.8 {
		t.Errorf("pulse high = %g", p.At(1.5e-9))
	}
	if math.Abs(p.At(2.15e-9)-0.9) > 1e-9 {
		t.Errorf("pulse mid-fall = %g", p.At(2.15e-9))
	}
	if p.At(3e-9) != 0 {
		t.Errorf("pulse low = %g", p.At(3e-9))
	}
	if p.At(5.5e-9) != 1.8 {
		t.Errorf("pulse periodic repeat = %g", p.At(5.5e-9))
	}

	w := NewPWL([]float64{0, 1, 2}, []float64{0, 10, 10})
	if w.At(-1) != 0 || w.At(0.5) != 5 || w.At(3) != 10 {
		t.Errorf("PWL wrong: %g %g %g", w.At(-1), w.At(0.5), w.At(3))
	}

	s := Sine{Offset: 1, Amplitude: 2, Freq: 1, Delay: 0}
	if math.Abs(s.At(0.25)-3) > 1e-12 {
		t.Errorf("sine peak = %g", s.At(0.25))
	}

	sc := Scaled{W: DC(2), K: 3}
	if sc.At(0) != 6 {
		t.Errorf("Scaled broken")
	}
	sh := Shifted{W: p, Dt: 1e-9}
	if sh.At(2.5e-9) != p.At(1.5e-9) {
		t.Errorf("Shifted broken")
	}
}

func TestPWLValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("unsorted PWL should panic")
		}
	}()
	NewPWL([]float64{1, 0}, []float64{0, 0})
}

func TestMOSFETRegions(t *testing.T) {
	p := MOSParams{VT: 0.5, K: 1e-3, Lambda: 0}
	m := &MOSFET{P: p}
	// Cutoff.
	if id, _, _ := m.Eval(1, 0.3, 0); id != 0 {
		t.Errorf("cutoff id = %g", id)
	}
	// Saturation: vgs=1.5, vds=2 > vov=1: id = K/2 * 1 = 5e-4.
	id, gm, gds := m.Eval(2, 1.5, 0)
	if math.Abs(id-5e-4) > 1e-12 {
		t.Errorf("sat id = %g", id)
	}
	if math.Abs(gm-1e-3) > 1e-12 || gds != 0 {
		t.Errorf("sat gm=%g gds=%g", gm, gds)
	}
	// Triode: vds=0.5 < vov=1: id = K(1*0.5 - 0.125) = 3.75e-4.
	id, _, gds = m.Eval(0.5, 1.5, 0)
	if math.Abs(id-3.75e-4) > 1e-12 {
		t.Errorf("triode id = %g", id)
	}
	if math.Abs(gds-0.5e-3) > 1e-12 {
		t.Errorf("triode gds = %g", gds)
	}
}

func TestMOSFETSymmetryAndPMOS(t *testing.T) {
	p := MOSParams{VT: 0.5, K: 1e-3, Lambda: 0.1}
	nm := &MOSFET{P: p}
	// Swapped drain/source must mirror the current.
	idF, _, _ := nm.Eval(1.0, 1.5, 0)
	idR, _, _ := nm.Eval(0, 1.5, 1.0)
	if math.Abs(idF+idR) > 1e-15 {
		t.Errorf("D/S swap asymmetry: %g vs %g", idF, idR)
	}
	pm := &MOSFET{P: p, PMOS: true}
	// PMOS with source at vdd: vd=0.8, vg=0, vs=1.8 conducts with
	// negative drain current (current flows out of the drain node).
	idP, gmP, gdsP := pm.Eval(0.8, 0, 1.8)
	if idP >= 0 {
		t.Errorf("PMOS drain current sign: %g", idP)
	}
	if gmP <= 0 || gdsP <= 0 {
		t.Errorf("PMOS derivatives: gm=%g gds=%g", gmP, gdsP)
	}
}

func TestMOSFETDerivativesNumeric(t *testing.T) {
	// Property: analytic gm/gds match finite differences in all regions
	// and for both polarities.
	f := func(vd8, vg8, vs8 uint8, pmos bool) bool {
		vd := float64(vd8)/255*3 - 0.5
		vg := float64(vg8) / 255 * 2
		vs := float64(vs8)/255*3 - 0.5
		m := &MOSFET{P: MOSParams{VT: 0.45, K: 2e-3, Lambda: 0.05}, PMOS: pmos}
		_, gm, gds := m.Eval(vd, vg, vs)
		const h = 1e-7
		idG1, _, _ := m.Eval(vd, vg+h, vs)
		idG0, _, _ := m.Eval(vd, vg-h, vs)
		idD1, _, _ := m.Eval(vd+h, vg, vs)
		idD0, _, _ := m.Eval(vd-h, vg, vs)
		gmN := (idG1 - idG0) / (2 * h)
		gdsN := (idD1 - idD0) / (2 * h)
		// Skip points straddling a region boundary kink.
		tol := 1e-4 * (math.Abs(gm) + math.Abs(gds) + 1e-6)
		okGm := math.Abs(gm-gmN) < tol || math.Abs(gm-gmN) < 2e-4*2e-3
		okGds := math.Abs(gds-gdsN) < tol || math.Abs(gds-gdsN) < 2e-4*2e-3
		return okGm && okGds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInverterHelper(t *testing.T) {
	n := New()
	n.AddInverter("inv", "in", "out", "vdd", "0", TypicalNMOS(1), TypicalPMOS(1), 1e-15, 2e-15)
	if len(n.MOSFETs) != 2 || len(n.Capacitors) != 2 {
		t.Errorf("inverter element counts: %d fets, %d caps", len(n.MOSFETs), len(n.Capacitors))
	}
	st := n.Stats()
	if st.NumFET != 2 || st.NumC != 2 {
		t.Errorf("stats wrong: %+v", st)
	}
}
