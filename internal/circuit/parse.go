package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseSPICE reads a SPICE deck of the dialect WriteSpice emits —
// R/C/L/K/V/I/M cards, `.model` level-1 MOSFET lines, `.end`, `*`
// comments and `+` continuations — and assembles the netlist. It is
// the inverse of WriteSpice: parsing a written deck reproduces the
// circuit (modulo element names, which SPICE keys by card).
//
// Every malformed input returns an error; no input panics. The Add*
// methods validate by panicking, so this function checks every value
// and reference before touching the netlist.
func ParseSPICE(r io.Reader) (*Netlist, error) {
	lines, err := logicalLines(r)
	if err != nil {
		return nil, err
	}
	n := New()
	inductorByName := map[string]int{}
	models := map[string]spiceModel{}

	// .model cards can appear after the M cards that use them, so
	// resolve MOSFETs in a second pass.
	type pendingMOS struct {
		lineNo         int
		name           string
		d, g, s, model string
	}
	var pending []pendingMOS

	for _, ln := range lines {
		fields := strings.Fields(ln.text)
		if len(fields) == 0 {
			continue
		}
		card := fields[0]
		fail := func(format string, args ...any) (*Netlist, error) {
			return nil, fmt.Errorf("circuit: line %d: %s: %s", ln.no, card, fmt.Sprintf(format, args...))
		}
		switch head := strings.ToUpper(card[:1]); head {
		case ".":
			switch directive := strings.ToLower(card); directive {
			case ".end":
				goto done
			case ".model":
				name, m, err := parseModel(fields)
				if err != nil {
					return fail("%v", err)
				}
				models[strings.ToLower(name)] = m
			default:
				return fail("unknown directive")
			}
		case "R", "C", "L":
			if len(fields) != 4 {
				return fail("want NAME node node value, got %d fields", len(fields))
			}
			v, err := parseValue(fields[3])
			if err != nil {
				return fail("%v", err)
			}
			switch head {
			case "R":
				if v <= 0 {
					return fail("non-positive resistance %g", v)
				}
				n.AddR(card, fields[1], fields[2], v)
			case "C":
				if v < 0 {
					return fail("negative capacitance %g", v)
				}
				n.AddC(card, fields[1], fields[2], v)
			case "L":
				if v < 0 {
					return fail("negative inductance %g", v)
				}
				key := strings.ToLower(card)
				if _, dup := inductorByName[key]; dup {
					return fail("duplicate inductor name")
				}
				inductorByName[key] = n.AddL(card, fields[1], fields[2], v)
			}
		case "K":
			if len(fields) != 4 {
				return fail("want NAME Lxxx Lyyy k, got %d fields", len(fields))
			}
			la, okA := inductorByName[strings.ToLower(fields[1])]
			lb, okB := inductorByName[strings.ToLower(fields[2])]
			if !okA || !okB {
				return fail("references unknown inductor")
			}
			if la == lb {
				return fail("couples an inductor to itself")
			}
			k, err := parseValue(fields[3])
			if err != nil {
				return fail("%v", err)
			}
			if k < -1 || k > 1 {
				return fail("coupling coefficient %g outside [-1, 1]", k)
			}
			m := k * math.Sqrt(n.Inductors[la].L*n.Inductors[lb].L)
			n.AddM(card, la, lb, m)
		case "V", "I":
			if len(fields) < 4 {
				return fail("want NAME node node spec")
			}
			w, err := parseWave(fields[3:])
			if err != nil {
				return fail("%v", err)
			}
			if head == "V" {
				n.AddV(card, fields[1], fields[2], w)
			} else {
				n.AddI(card, fields[1], fields[2], w)
			}
		case "M":
			if len(fields) != 6 {
				return fail("want NAME nd ng ns nb model, got %d fields", len(fields))
			}
			pending = append(pending, pendingMOS{
				lineNo: ln.no, name: card,
				d: fields[1], g: fields[2], s: fields[3], model: fields[5],
			})
		default:
			return fail("unknown card type %q", head)
		}
	}
done:
	for _, pm := range pending {
		m, ok := models[strings.ToLower(pm.model)]
		if !ok {
			return nil, fmt.Errorf("circuit: line %d: %s: references undeclared model %q", pm.lineNo, pm.name, pm.model)
		}
		if m.pmos {
			n.AddPMOS(pm.name, pm.d, pm.g, pm.s, m.params)
		} else {
			n.AddNMOS(pm.name, pm.d, pm.g, pm.s, m.params)
		}
	}
	return n, nil
}

// ParseSPICEString is ParseSPICE over an in-memory deck.
func ParseSPICEString(deck string) (*Netlist, error) {
	return ParseSPICE(strings.NewReader(deck))
}

type spiceLine struct {
	no   int
	text string
}

// logicalLines reads the deck, dropping '*' comments and blank lines
// and folding '+' continuations into the preceding card.
func logicalLines(r io.Reader) ([]spiceLine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var out []spiceLine
	no := 0
	for sc.Scan() {
		no++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if strings.HasPrefix(line, "+") {
			if len(out) == 0 {
				return nil, fmt.Errorf("circuit: line %d: continuation with no preceding card", no)
			}
			out[len(out)-1].text += " " + strings.TrimSpace(line[1:])
			continue
		}
		out = append(out, spiceLine{no: no, text: line})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("circuit: reading deck: %w", err)
	}
	return out, nil
}

// spiceSuffixes maps SPICE magnitude suffixes to multipliers; "meg"
// must be checked before "m".
var spiceSuffixes = []struct {
	s string
	m float64
}{
	{"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
}

// parseValue parses a SPICE number: a float with an optional magnitude
// suffix (1k, 2.2u, 3meg). Non-finite values are rejected.
func parseValue(s string) (float64, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	for _, suf := range spiceSuffixes {
		if strings.HasSuffix(low, suf.s) && len(low) > len(suf.s) {
			low = low[:len(low)-len(suf.s)]
			mult = suf.m
			break
		}
	}
	v, err := strconv.ParseFloat(low, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	v *= mult
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// parseWave parses a source specification: a bare number, DC <v>,
// PULSE(v1 v2 td tr tf pw per), PWL(t0 v0 t1 v1 ...), SIN(off ampl
// freq [delay]).
func parseWave(fields []string) (Waveform, error) {
	spec := strings.Join(fields, " ")
	upper := strings.ToUpper(spec)
	switch {
	case strings.HasPrefix(upper, "DC"):
		rest := strings.TrimSpace(spec[2:])
		v, err := parseValue(rest)
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(upper, "PULSE"):
		args, err := parenArgs(spec[5:], 2, 7)
		if err != nil {
			return nil, fmt.Errorf("PULSE: %w", err)
		}
		for len(args) < 7 {
			args = append(args, 0)
		}
		p := Pulse{V1: args[0], V2: args[1], Delay: args[2], Rise: args[3],
			Fall: args[4], Width: args[5], Period: args[6]}
		if p.Rise < 0 || p.Fall < 0 || p.Width < 0 || p.Period < 0 || p.Delay < 0 {
			return nil, fmt.Errorf("PULSE: negative timing parameter")
		}
		return p, nil
	case strings.HasPrefix(upper, "PWL"):
		args, err := parenArgs(spec[3:], 2, 2*maxPWLPoints)
		if err != nil {
			return nil, fmt.Errorf("PWL: %w", err)
		}
		if len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL: odd number of values (want t v pairs)")
		}
		times := make([]float64, 0, len(args)/2)
		values := make([]float64, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			times = append(times, args[i])
			values = append(values, args[i+1])
		}
		if !sort.Float64sAreSorted(times) {
			return nil, fmt.Errorf("PWL: times not non-decreasing")
		}
		return PWL{Times: times, Values: values}, nil
	case strings.HasPrefix(upper, "SIN"):
		args, err := parenArgs(spec[3:], 3, 4)
		if err != nil {
			return nil, fmt.Errorf("SIN: %w", err)
		}
		s := Sine{Offset: args[0], Amplitude: args[1], Freq: args[2]}
		if len(args) > 3 {
			s.Delay = args[3]
		}
		return s, nil
	default:
		v, err := parseValue(spec)
		if err != nil {
			return nil, fmt.Errorf("unrecognized source spec %q", spec)
		}
		return DC(v), nil
	}
}

// maxPWLPoints bounds PWL breakpoint counts so hostile decks cannot
// demand unbounded memory per line.
const maxPWLPoints = 1 << 16

// parenArgs parses "( a b c )" (parentheses optional) into minArgs..
// maxArgs numbers.
func parenArgs(s string, minArgs, maxArgs int) ([]float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	fields := strings.Fields(strings.ReplaceAll(s, ",", " "))
	if len(fields) < minArgs || len(fields) > maxArgs {
		return nil, fmt.Errorf("want %d..%d arguments, got %d", minArgs, maxArgs, len(fields))
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := parseValue(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type spiceModel struct {
	pmos   bool
	params MOSParams
}

// parseModel parses ".model name NMOS|PMOS (LEVEL=1 VTO=x KP=y
// LAMBDA=z)"; parentheses are optional and parameters may come in any
// order.
func parseModel(fields []string) (string, spiceModel, error) {
	if len(fields) < 3 {
		return "", spiceModel{}, fmt.Errorf("want .model name NMOS|PMOS params")
	}
	name := fields[1]
	var m spiceModel
	switch strings.ToUpper(fields[2]) {
	case "NMOS":
	case "PMOS":
		m.pmos = true
	default:
		return "", spiceModel{}, fmt.Errorf("unknown model kind %q", fields[2])
	}
	for _, f := range fields[3:] {
		f = strings.Trim(f, "()")
		if f == "" {
			continue
		}
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			return "", spiceModel{}, fmt.Errorf("bad model parameter %q", f)
		}
		key := strings.ToUpper(f[:eq])
		v, err := parseValue(f[eq+1:])
		if err != nil {
			return "", spiceModel{}, fmt.Errorf("model parameter %s: %v", key, err)
		}
		switch key {
		case "LEVEL":
			if v != 1 {
				return "", spiceModel{}, fmt.Errorf("only LEVEL=1 models are supported")
			}
		case "VTO":
			// The netlist convention keeps VT positive for both device
			// polarities; SPICE writes the PMOS threshold negated.
			if m.pmos {
				v = -v
			}
			m.params.VT = v
		case "KP":
			m.params.K = v
		case "LAMBDA":
			m.params.Lambda = v
		default:
			return "", spiceModel{}, fmt.Errorf("unknown model parameter %q", key)
		}
	}
	if m.params.K <= 0 {
		return "", spiceModel{}, fmt.Errorf("model needs KP > 0")
	}
	if m.params.Lambda < 0 {
		return "", spiceModel{}, fmt.Errorf("model needs LAMBDA >= 0")
	}
	return name, m, nil
}
