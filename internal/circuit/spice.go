package circuit

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteSpice serializes the netlist as a SPICE deck, so any model this
// repository builds (PEEC, sparsified, loop) can be cross-checked in an
// external simulator — the role MCSPICE plays in the paper. Mutual
// inductances are emitted as K cards with coupling coefficients;
// K-groups (inverse-inductance elements) have no SPICE equivalent and
// are rejected. MOSFETs are emitted as level-1 M cards with generated
// .model lines.
func WriteSpice(w io.Writer, n *Netlist, title string) error {
	if len(n.KGroups) > 0 {
		return fmt.Errorf("circuit: K-groups cannot be exported to SPICE (expand to L/M first)")
	}
	if title == "" {
		title = "inductance101 export"
	}
	pw := &printErr{w: w}
	pw.printf("* %s\n", title)

	nodeName := func(idx int) string {
		if idx < 0 {
			return "0"
		}
		// SPICE node names: replace characters some dialects reject.
		r := strings.NewReplacer(".", "_", "!", "_")
		return r.Replace(n.NodeName(idx))
	}
	for i := range n.Resistors {
		r := &n.Resistors[i]
		pw.printf("R%d %s %s %.6g\n", i, nodeName(r.A), nodeName(r.B), r.R)
	}
	for i := range n.Capacitors {
		c := &n.Capacitors[i]
		pw.printf("C%d %s %s %.6g\n", i, nodeName(c.A), nodeName(c.B), c.C)
	}
	for i := range n.Inductors {
		l := &n.Inductors[i]
		pw.printf("L%d %s %s %.6g\n", i, nodeName(l.A), nodeName(l.B), l.L)
	}
	for i := range n.Mutuals {
		m := &n.Mutuals[i]
		la, lb := n.Inductors[m.La].L, n.Inductors[m.Lb].L
		den := math.Sqrt(la * lb)
		if den <= 0 {
			return fmt.Errorf("circuit: mutual %d couples a zero inductor", i)
		}
		k := m.M / den
		if k > 1 {
			k = 1
		} else if k < -1 {
			k = -1
		}
		pw.printf("K%d L%d L%d %.6g\n", i, m.La, m.Lb, k)
	}
	for i := range n.VSources {
		v := &n.VSources[i]
		pw.printf("V%d %s %s %s\n", i, nodeName(v.A), nodeName(v.B), spiceWave(v.Wave))
	}
	for i := range n.ISources {
		s := &n.ISources[i]
		pw.printf("I%d %s %s %s\n", i, nodeName(s.A), nodeName(s.B), spiceWave(s.Wave))
	}
	models := map[string]bool{}
	for i := range n.MOSFETs {
		m := &n.MOSFETs[i]
		kind := "NMOS"
		if m.PMOS {
			kind = "PMOS"
		}
		model := fmt.Sprintf("m%s_vt%.3g_k%.3g_l%.3g", strings.ToLower(kind), m.P.VT, m.P.K, m.P.Lambda)
		models[fmt.Sprintf(".model %s %s (LEVEL=1 VTO=%.6g KP=%.6g LAMBDA=%.6g)\n",
			model, kind, vtoSigned(m), m.P.K, m.P.Lambda)] = true
		pw.printf("M%d %s %s %s %s %s\n", i,
			nodeName(m.D), nodeName(m.G), nodeName(m.S), nodeName(m.S), model)
	}
	var lines []string
	for mdl := range models {
		lines = append(lines, mdl)
	}
	sort.Strings(lines)
	for _, mdl := range lines {
		pw.printf("%s", mdl)
	}
	pw.printf(".end\n")
	return pw.err
}

func vtoSigned(m *MOSFET) float64 {
	if m.PMOS {
		return -m.P.VT
	}
	return m.P.VT
}

// spiceWave renders a waveform as a SPICE source specification.
func spiceWave(w Waveform) string {
	switch v := w.(type) {
	case DC:
		return fmt.Sprintf("DC %.6g", float64(v))
	case Pulse:
		per := v.Period
		if per <= 0 {
			per = 1 // effectively single-shot
		}
		return fmt.Sprintf("PULSE(%.6g %.6g %.6g %.6g %.6g %.6g %.6g)",
			v.V1, v.V2, v.Delay, v.Rise, v.Fall, v.Width, per)
	case PWL:
		var b strings.Builder
		b.WriteString("PWL(")
		for i := range v.Times {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g %.6g", v.Times[i], v.Values[i])
		}
		b.WriteByte(')')
		return b.String()
	case Sine:
		return fmt.Sprintf("SIN(%.6g %.6g %.6g %.6g)", v.Offset, v.Amplitude, v.Freq, v.Delay)
	case Scaled:
		// No direct SPICE form; sample into a PWL would need a horizon.
		return fmt.Sprintf("DC %.6g", v.At(0))
	case Shifted:
		if p, ok := v.W.(Pulse); ok {
			p.Delay += v.Dt
			return spiceWave(p)
		}
		return fmt.Sprintf("DC %.6g", v.At(0))
	default:
		return fmt.Sprintf("DC %.6g", w.At(0))
	}
}

type printErr struct {
	w   io.Writer
	err error
}

func (p *printErr) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
