package circuit

import (
	"fmt"

	"inductance101/internal/matrix"
)

// BuildSparseDC assembles the sparse nodal DC system G v = b of a
// resistive netlist, the form large power-grid IR-drop analysis runs on
// (SPD, so conjugate gradients apply — the iterative counterpart of the
// Cholesky solve the paper's combined technique uses).
//
// Element handling at DC:
//   - resistors stamp conductance;
//   - inductors are DC shorts, stamped as a stiff conductance;
//   - capacitors are DC opens, skipped;
//   - current sources evaluate at t0 into the RHS;
//   - voltage sources are enforced by the penalty method (a stiff
//     conductance to the source value), which keeps the system SPD;
//   - MOSFETs are rejected — linearize or use the dense OP solver.
//
// gmin grounds every node; stiff is the penalty conductance (defaults
// 1e-12 and 1e6 when zero).
func BuildSparseDC(n *Netlist, t0, gmin, stiff float64) (*matrix.Triplet, []float64, error) {
	if len(n.MOSFETs) > 0 {
		return nil, nil, fmt.Errorf("circuit: sparse DC build does not support MOSFETs (use sim.OP)")
	}
	if gmin <= 0 {
		gmin = 1e-12
	}
	if stiff <= 0 {
		stiff = 1e6
	}
	nn := n.NumNodes()
	g := matrix.NewTriplet(nn, nn)
	b := make([]float64, nn)
	stamp := func(a, c int, v float64) {
		if a >= 0 {
			g.Add(a, a, v)
		}
		if c >= 0 {
			g.Add(c, c, v)
		}
		if a >= 0 && c >= 0 {
			g.Add(a, c, -v)
			g.Add(c, a, -v)
		}
	}
	for i := range n.Resistors {
		r := &n.Resistors[i]
		stamp(r.A, r.B, 1/r.R)
	}
	for i := range n.Inductors {
		l := &n.Inductors[i]
		stamp(l.A, l.B, stiff)
	}
	for i := range n.ISources {
		s := &n.ISources[i]
		v := s.Wave.At(t0)
		if s.A >= 0 {
			b[s.A] -= v
		}
		if s.B >= 0 {
			b[s.B] += v
		}
	}
	for i := range n.VSources {
		s := &n.VSources[i]
		v := s.Wave.At(t0)
		// Penalty: a stiff conductance pulling (A - B) toward v.
		stamp(s.A, s.B, stiff)
		if s.A >= 0 {
			b[s.A] += stiff * v
		}
		if s.B >= 0 {
			b[s.B] -= stiff * v
		}
	}
	for i := 0; i < nn; i++ {
		g.Add(i, i, gmin)
	}
	return g, b, nil
}

// SparseMNA is the sparse twin of MNA: the same C dx/dt + G x = b(t)
// system held as triplet builders instead of dense matrices, assembled
// by the same stamping walk so every accumulated value is bit-identical
// to the dense build.
type SparseMNA struct {
	N    *Netlist
	G    *matrix.Triplet
	C    *matrix.Triplet
	size int
	// dense shim reused for the RHS helpers, which only read N and size.
	rhs *MNA
}

// BuildSparse assembles the sparse MNA matrices for the netlist's
// linear elements. MOSFETs are not stamped here, same as Build.
func BuildSparse(n *Netlist) *SparseMNA {
	size := n.Size()
	m := &SparseMNA{
		N:    n,
		G:    matrix.NewTriplet(size, size),
		C:    matrix.NewTriplet(size, size),
		size: size,
		rhs:  &MNA{N: n, size: size},
	}
	stampLinear(n, m.G.Add, m.C.Add, kMembers(n))
	return m
}

// Size returns the MNA system dimension.
func (m *SparseMNA) Size() int { return m.size }

// RHS fills b with the independent-source vector at time t.
func (m *SparseMNA) RHS(t float64, b []float64) { m.rhs.RHS(t, b) }

// AddRHS accumulates the independent-source vector at time t into b.
func (m *SparseMNA) AddRHS(t float64, b []float64) { m.rhs.AddRHS(t, b) }
