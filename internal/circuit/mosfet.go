package circuit

// Level-1 (Shichman–Hodges) MOSFET model — the driver/receiver model of
// the repository's SPICE-lite. The paper's experiments connect "driver
// and receiver gates" to the extracted interconnect and simulate in
// SPICE; a level-1 quadratic model reproduces the behaviours that matter
// here (output resistance, slew, short-circuit current I1 of Fig. 1).

// MOSParams are the level-1 parameters.
type MOSParams struct {
	// VT is the threshold voltage (positive for both N and P devices;
	// the PMOS sign convention is handled internally).
	VT float64
	// K is the transconductance factor k' * W / L in A/V^2.
	K float64
	// Lambda is the channel-length modulation in 1/V.
	Lambda float64
}

// MOSFET is a three-terminal transistor (bulk tied to source).
type MOSFET struct {
	Name    string
	D, G, S int
	P       MOSParams
	PMOS    bool
}

// AddNMOS adds an n-channel device.
func (n *Netlist) AddNMOS(name, d, g, s string, p MOSParams) int {
	n.MOSFETs = append(n.MOSFETs, MOSFET{Name: name, D: n.Node(d), G: n.Node(g), S: n.Node(s), P: p})
	return len(n.MOSFETs) - 1
}

// AddPMOS adds a p-channel device.
func (n *Netlist) AddPMOS(name, d, g, s string, p MOSParams) int {
	n.MOSFETs = append(n.MOSFETs, MOSFET{Name: name, D: n.Node(d), G: n.Node(g), S: n.Node(s), P: p, PMOS: true})
	return len(n.MOSFETs) - 1
}

// AddInverter adds a CMOS inverter (PMOS vdd->out, NMOS out->gnd) with
// the given device strengths, plus lumped input and output capacitance.
// This is the paper's switching driver. Returns nothing; the devices
// are retrievable through the MOSFETs slice.
func (n *Netlist) AddInverter(name, in, out, vdd, vss string, pn, pp MOSParams, cin, cout float64) {
	n.AddPMOS(name+".mp", out, in, vdd, pp)
	n.AddNMOS(name+".mn", out, in, vss, pn)
	if cin > 0 {
		n.AddC(name+".cin", in, Ground, cin)
	}
	if cout > 0 {
		n.AddC(name+".cout", out, Ground, cout)
	}
}

// eval1 computes the level-1 drain current and derivatives for an NMOS
// with vds >= 0: returns (id, d id/d vgs, d id/d vds).
func (p MOSParams) eval1(vgs, vds float64) (id, gm, gds float64) {
	vov := vgs - p.VT
	if vov <= 0 {
		return 0, 0, 0
	}
	lam := 1 + p.Lambda*vds
	if vds < vov {
		// Triode.
		id = p.K * (vov*vds - vds*vds/2) * lam
		gm = p.K * vds * lam
		gds = p.K*(vov-vds)*lam + p.K*(vov*vds-vds*vds/2)*p.Lambda
	} else {
		// Saturation.
		id = p.K / 2 * vov * vov * lam
		gm = p.K * vov * lam
		gds = p.K / 2 * vov * vov * p.Lambda
	}
	return id, gm, gds
}

// Eval returns the drain terminal current (positive into the drain) and
// the small-signal derivatives gm = d id / d vgs and gds = d id / d vds
// at the given terminal voltages. Drain/source swapping for vds < 0 and
// the PMOS sign convention are handled here, so the Newton loop in
// internal/sim can stamp the returned values directly.
func (m *MOSFET) Eval(vd, vg, vs float64) (id, gm, gds float64) {
	if m.PMOS {
		// A PMOS is an NMOS with all terminal voltages negated and the
		// current sign flipped; derivatives keep their sign.
		id, gm, gds = evalNMOS(m.P, -vd, -vg, -vs)
		return -id, gm, gds
	}
	return evalNMOS(m.P, vd, vg, vs)
}

func evalNMOS(p MOSParams, vd, vg, vs float64) (id, gm, gds float64) {
	vds := vd - vs
	if vds >= 0 {
		return p.eval1(vg-vs, vds)
	}
	// Swapped operation: the physical source is the drain terminal.
	// id = -f(vg - vd, -(vds)); chain rule gives the derivatives below.
	f, f1, f2 := p.eval1(vg-vd, -vds)
	id = -f
	gm = -f1
	gds = f1 + f2
	return id, gm, gds
}

// TypicalNMOS returns parameters for a strong 2001-era driver NMOS:
// strength scales linearly with the drive multiplier x.
func TypicalNMOS(x float64) MOSParams {
	return MOSParams{VT: 0.45, K: 2.0e-3 * x, Lambda: 0.05}
}

// TypicalPMOS returns matched-PMOS parameters (2x width for equal drive).
func TypicalPMOS(x float64) MOSParams {
	return MOSParams{VT: 0.45, K: 2.0e-3 * x, Lambda: 0.05}
}
