// Package circuit defines the netlist and modified nodal analysis (MNA)
// assembly used by the SPICE-lite simulator in internal/sim.
//
// The element set is exactly what the paper's detailed PEEC circuit
// model of §3 requires: resistors, grounded and coupling capacitors,
// partial self inductors, mutual inductances, the K (inverse inductance)
// element of Devgan et al. for the K-matrix flow, independent voltage
// and current sources with time-varying waveforms (the paper's model of
// background switching activity), and level-1 MOSFETs for drivers and
// receivers.
package circuit

import (
	"fmt"
	"sort"
)

// Ground is the reference node; "gnd" and "GND" are accepted aliases.
const Ground = "0"

const groundIndex = -1

// Netlist is a mutable circuit description. The zero value is not
// usable; create with New.
type Netlist struct {
	nodeIndex map[string]int
	nodeNames []string

	Resistors  []Resistor
	Capacitors []Capacitor
	Inductors  []Inductor
	Mutuals    []Mutual
	KGroups    []KGroup
	VSources   []VSource
	ISources   []ISource
	MOSFETs    []MOSFET
}

// New returns an empty netlist.
func New() *Netlist {
	return &Netlist{nodeIndex: make(map[string]int)}
}

// Node interns a node name and returns its index (Ground returns -1).
func (n *Netlist) Node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return groundIndex
	}
	if name == "" {
		panic("circuit: empty node name")
	}
	if i, ok := n.nodeIndex[name]; ok {
		return i
	}
	i := len(n.nodeNames)
	n.nodeIndex[name] = i
	n.nodeNames = append(n.nodeNames, name)
	return i
}

// NumNodes returns the number of non-ground nodes.
func (n *Netlist) NumNodes() int { return len(n.nodeNames) }

// NodeName returns the name of node index i.
func (n *Netlist) NodeName(i int) string { return n.nodeNames[i] }

// NodeIndex returns the index of a named node, or an error if the node
// was never mentioned by any element.
func (n *Netlist) NodeIndex(name string) (int, error) {
	if name == Ground || name == "gnd" || name == "GND" {
		return groundIndex, nil
	}
	i, ok := n.nodeIndex[name]
	if !ok {
		return 0, fmt.Errorf("circuit: unknown node %q", name)
	}
	return i, nil
}

// NodeNames returns all non-ground node names, sorted.
func (n *Netlist) NodeNames() []string {
	out := append([]string(nil), n.nodeNames...)
	sort.Strings(out)
	return out
}

// Resistor is a linear resistance between nodes A and B.
type Resistor struct {
	Name string
	A, B int
	R    float64
}

// Capacitor is a linear capacitance between nodes A and B.
type Capacitor struct {
	Name string
	A, B int
	C    float64
}

// Inductor is a self inductance between nodes A and B. Branch is the
// index of its current unknown, assigned at creation.
type Inductor struct {
	Name   string
	A, B   int
	L      float64
	Branch int
}

// Mutual couples two inductor branches with mutual inductance M
// (positive M for aiding flux with both currents flowing A->B).
type Mutual struct {
	Name   string
	La, Lb int // indices into Netlist.Inductors
	M      float64
}

// KGroup represents a group of inductive branches described by an
// inverse-inductance (K = L^-1) matrix, the circuit element of
// Devgan/Ji/Dai (ICCAD 2000). K is row-major n x n over the listed
// inductors, which must have been added with L = 0 placeholders.
type KGroup struct {
	Name      string
	Inductors []int // indices into Netlist.Inductors
	K         [][]float64
}

// VSource is an independent voltage source; V(t) given by Wave. Current
// flows through branch Branch from A to B inside the source.
type VSource struct {
	Name   string
	A, B   int
	Wave   Waveform
	Branch int
}

// ISource is an independent current source pushing I(t) out of node A
// and into node B (i.e. conventional current flows A -> B through the
// source when I(t) > 0... through the external circuit B -> A).
type ISource struct {
	Name string
	A, B int
	Wave Waveform
}

// AddR adds a resistor and returns its index.
func (n *Netlist) AddR(name, a, b string, r float64) int {
	if r <= 0 {
		panic(fmt.Sprintf("circuit: resistor %s with non-positive value %g", name, r))
	}
	n.Resistors = append(n.Resistors, Resistor{Name: name, A: n.Node(a), B: n.Node(b), R: r})
	return len(n.Resistors) - 1
}

// AddC adds a capacitor and returns its index.
func (n *Netlist) AddC(name, a, b string, c float64) int {
	if c < 0 {
		panic(fmt.Sprintf("circuit: capacitor %s with negative value %g", name, c))
	}
	n.Capacitors = append(n.Capacitors, Capacitor{Name: name, A: n.Node(a), B: n.Node(b), C: c})
	return len(n.Capacitors) - 1
}

// AddL adds a self inductor and returns its index (into Inductors).
func (n *Netlist) AddL(name, a, b string, l float64) int {
	if l < 0 {
		panic(fmt.Sprintf("circuit: inductor %s with negative value %g", name, l))
	}
	idx := len(n.Inductors)
	n.Inductors = append(n.Inductors, Inductor{
		Name: name, A: n.Node(a), B: n.Node(b), L: l, Branch: n.numBranches(),
	})
	return idx
}

// AddM couples inductors la and lb (indices from AddL) with mutual
// inductance m. Passivity requires m^2 <= La*Lb; this is checked here
// for pairwise stamps (matrix-level passivity is the job of
// internal/sparsify audits).
func (n *Netlist) AddM(name string, la, lb int, m float64) int {
	if la < 0 || la >= len(n.Inductors) || lb < 0 || lb >= len(n.Inductors) || la == lb {
		panic(fmt.Sprintf("circuit: mutual %s references bad inductors %d,%d", name, la, lb))
	}
	n.Mutuals = append(n.Mutuals, Mutual{Name: name, La: la, Lb: lb, M: m})
	return len(n.Mutuals) - 1
}

// AddKGroup attaches an inverse-inductance matrix to a set of inductors.
// The listed inductors' own L values are ignored (use 0).
func (n *Netlist) AddKGroup(name string, inductors []int, k [][]float64) int {
	if len(k) != len(inductors) {
		panic("circuit: K matrix size mismatch")
	}
	for _, row := range k {
		if len(row) != len(inductors) {
			panic("circuit: K matrix not square")
		}
	}
	for _, li := range inductors {
		if li < 0 || li >= len(n.Inductors) {
			panic("circuit: K group references bad inductor")
		}
	}
	n.KGroups = append(n.KGroups, KGroup{Name: name, Inductors: inductors, K: k})
	return len(n.KGroups) - 1
}

// AddV adds an independent voltage source and returns its index.
func (n *Netlist) AddV(name, a, b string, w Waveform) int {
	idx := len(n.VSources)
	n.VSources = append(n.VSources, VSource{
		Name: name, A: n.Node(a), B: n.Node(b), Wave: w, Branch: n.numBranches(),
	})
	return idx
}

// AddI adds an independent current source and returns its index.
func (n *Netlist) AddI(name, a, b string, w Waveform) int {
	n.ISources = append(n.ISources, ISource{Name: name, A: n.Node(a), B: n.Node(b), Wave: w})
	return len(n.ISources) - 1
}

// numBranches returns the number of branch-current unknowns so far
// (inductors + voltage sources), used to assign the next branch index.
func (n *Netlist) numBranches() int {
	return len(n.Inductors) + len(n.VSources)
}

// NumBranches returns the total number of branch-current unknowns.
func (n *Netlist) NumBranches() int { return n.numBranches() }

// Size returns the MNA system dimension: nodes + branches.
func (n *Netlist) Size() int { return n.NumNodes() + n.numBranches() }

// BranchOfInductor returns the MNA unknown index (node-offset) of an
// inductor's current, for probing currents in simulation results.
func (n *Netlist) BranchOfInductor(li int) int {
	return n.NumNodes() + n.Inductors[li].Branch
}

// BranchOfVSource returns the MNA unknown index of a source's current.
func (n *Netlist) BranchOfVSource(vi int) int {
	return n.NumNodes() + n.VSources[vi].Branch
}

// Stats reports element counts in the shape of the paper's Table 1 rows.
type Stats struct {
	NumR, NumC, NumL, NumMutual, NumV, NumI, NumFET int
	Nodes, Branches                                 int
}

// Stats counts elements.
func (n *Netlist) Stats() Stats {
	return Stats{
		NumR: len(n.Resistors), NumC: len(n.Capacitors),
		NumL: len(n.Inductors), NumMutual: len(n.Mutuals),
		NumV: len(n.VSources), NumI: len(n.ISources),
		NumFET: len(n.MOSFETs),
		Nodes:  n.NumNodes(), Branches: n.numBranches(),
	}
}
