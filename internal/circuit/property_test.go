package circuit

import (
	"fmt"
	"math/rand"
	"testing"

	"inductance101/internal/matrix"
)

// randResistiveGrid builds a random resistive mesh with sources, the
// netlist class BuildSparseDC is specified over.
func randResistiveGrid(rng *rand.Rand, w, h int) *Netlist {
	n := New()
	name := func(x, y int) string { return fmt.Sprintf("g%d_%d", x, y) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				n.AddR(fmt.Sprintf("rx%d_%d", x, y), name(x, y), name(x+1, y), 0.5+rng.Float64())
			}
			if y+1 < h {
				n.AddR(fmt.Sprintf("ry%d_%d", x, y), name(x, y), name(x, y+1), 0.5+rng.Float64())
			}
		}
	}
	// A few inductors (DC shorts), loads and a supply.
	n.AddL("lpkg", name(0, 0), "pkg", 1e-9)
	n.AddV("vdd", "pkg", "0", DC(1.8))
	for k := 0; k < 3; k++ {
		n.AddI(fmt.Sprintf("load%d", k), name(rng.Intn(w), rng.Intn(h)), "0",
			DC(1e-3*(1+rng.Float64())))
	}
	return n
}

// TestPropertyBuildSparseMatchesDense: the sparse MNA assembly must
// produce exactly the dense assembly's entries — same stamping walk,
// same accumulation order, bit-identical values.
func TestPropertyBuildSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := New()
		nm := func(i int) string { return fmt.Sprintf("n%d", i) }
		nodes := 3 + rng.Intn(12)
		var inds []int
		for i := 0; i < nodes; i++ {
			n.AddR(fmt.Sprintf("r%d", i), nm(i), nm(i+1), 1+rng.Float64())
			n.AddC(fmt.Sprintf("c%d", i), nm(i+1), "0", 1e-15*(1+rng.Float64()))
			if rng.Float64() < 0.4 {
				inds = append(inds, n.AddL(fmt.Sprintf("l%d", i), nm(i+1), nm(i+100), 1e-9))
				n.AddR(fmt.Sprintf("rr%d", i), nm(i+100), "0", 10)
			}
		}
		if len(inds) >= 2 {
			la, lb := inds[0], inds[1]
			n.AddM("m0", la, lb, 0.2e-9)
		}
		if len(inds) >= 2 {
			n.AddKGroup("kg", []int{inds[len(inds)-2], inds[len(inds)-1]},
				[][]float64{{1e-9, 0.1e-9}, {0.1e-9, 1e-9}})
		}
		n.AddV("v0", nm(0), "0", DC(1))
		n.AddI("i0", nm(nodes), "0", DC(1e-3))

		dense := Build(n)
		sparse := BuildSparse(n)
		if dense.Size() != sparse.Size() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		dg, dc := sparse.G.ToDense(), sparse.C.ToDense()
		size := dense.Size()
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if dense.G.At(i, j) != dg.At(i, j) {
					t.Fatalf("trial %d: G(%d,%d) dense %g sparse %g", trial, i, j, dense.G.At(i, j), dg.At(i, j))
				}
				if dense.C.At(i, j) != dc.At(i, j) {
					t.Fatalf("trial %d: C(%d,%d) dense %g sparse %g", trial, i, j, dense.C.At(i, j), dc.At(i, j))
				}
			}
		}
		// RHS helpers must agree too.
		b1 := make([]float64, size)
		b2 := make([]float64, size)
		for _, tm := range []float64{0, 1e-9} {
			dense.RHS(tm, b1)
			sparse.RHS(tm, b2)
			for i := range b1 {
				if b1[i] != b2[i] {
					t.Fatalf("trial %d: RHS(%g)[%d] differs", trial, tm, i)
				}
			}
		}
	}
}

// TestPropertyBuildSparseDCIsSPD: the penalty-method DC system must be
// symmetric positive definite for any resistive grid — that is the
// contract that lets CG and the sparse Cholesky solve it.
func TestPropertyBuildSparseDCIsSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		w, h := 2+rng.Intn(5), 2+rng.Intn(5)
		n := randResistiveGrid(rng, w, h)
		g, b, err := BuildSparseDC(n, 0, 0, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(b) != n.NumNodes() {
			t.Fatalf("trial %d: rhs length %d, want %d", trial, len(b), n.NumNodes())
		}
		a := g.ToCSC()
		// Symmetry.
		d := matrix.CSCToDense(a)
		if !d.IsSymmetric(0) {
			t.Fatalf("trial %d: DC system not symmetric", trial)
		}
		// Positive definiteness via the sparse Cholesky itself.
		if !matrix.IsSparsePositiveDefinite(a) {
			t.Fatalf("trial %d: DC system not positive definite", trial)
		}
	}
}
