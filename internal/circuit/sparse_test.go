package circuit

import (
	"math"
	"testing"

	"inductance101/internal/matrix"
)

func TestBuildSparseDCDivider(t *testing.T) {
	n := New()
	n.AddV("v", "in", "0", DC(2))
	n.AddR("r1", "in", "mid", 1000)
	n.AddR("r2", "mid", "0", 1000)
	g, b, err := BuildSparseDC(n, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x, err := g.ToCSR().SolveCG(b, matrix.CGOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := n.NodeIndex("mid")
	if math.Abs(x[mid]-1) > 1e-4 {
		t.Errorf("divider mid = %g, want ~1 (penalty method)", x[mid])
	}
	in, _ := n.NodeIndex("in")
	if math.Abs(x[in]-2) > 1e-3 {
		t.Errorf("source node = %g, want ~2", x[in])
	}
}

func TestBuildSparseDCInductorShort(t *testing.T) {
	n := New()
	n.AddV("v", "in", "0", DC(1))
	n.AddL("l", "in", "mid", 3e-9)
	n.AddR("r", "mid", "0", 50)
	g, b, err := BuildSparseDC(n, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x, err := g.ToCSR().SolveCG(b, matrix.CGOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := n.NodeIndex("mid")
	if math.Abs(x[mid]-1) > 1e-3 {
		t.Errorf("inductor DC short broken in sparse path: mid = %g", x[mid])
	}
}

func TestBuildSparseDCISourceAtTime(t *testing.T) {
	n := New()
	n.AddR("r", "a", "0", 100)
	n.AddI("i", "0", "a", NewPWL([]float64{0, 1e-9}, []float64{0, 10e-3}))
	_, b0, err := BuildSparseDC(n, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, b1, err := BuildSparseDC(n, 1e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.NodeIndex("a")
	if b0[a] != 0 || math.Abs(b1[a]-10e-3) > 1e-15 {
		t.Errorf("time-evaluated source wrong: %g, %g", b0[a], b1[a])
	}
}

func TestBuildSparseDCRejectsMOSFETs(t *testing.T) {
	n := New()
	n.AddNMOS("m", "d", "g", "0", TypicalNMOS(1))
	if _, _, err := BuildSparseDC(n, 0, 0, 0); err == nil {
		t.Errorf("MOSFET netlist accepted")
	}
}
