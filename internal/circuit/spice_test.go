package circuit

import (
	"strings"
	"testing"
)

func TestWriteSpiceBasic(t *testing.T) {
	n := New()
	n.AddV("v", "in", "0", Pulse{V1: 0, V2: 1.8, Delay: 1e-10, Rise: 5e-11, Width: 1e-9, Fall: 5e-11})
	n.AddR("r", "in", "mid", 50)
	la := n.AddL("la", "mid", "out", 1e-9)
	lb := n.AddL("lb", "out", "0", 2e-9)
	n.AddM("m", la, lb, 0.5e-9)
	n.AddC("c", "out", "0", 1e-13)
	n.AddI("i", "out", "0", DC(1e-3))
	n.AddNMOS("mn", "out", "in", "0", TypicalNMOS(1))
	n.AddPMOS("mp", "out", "in", "vdd", TypicalPMOS(1))

	var b strings.Builder
	if err := WriteSpice(&b, n, "test deck"); err != nil {
		t.Fatal(err)
	}
	deck := b.String()
	for _, want := range []string{
		"* test deck",
		"R0 in mid 50",
		"L0 mid out 1e-09",
		"L1 out 0 2e-09",
		"K0 L0 L1 0.353553", // 0.5n / sqrt(1n*2n)
		"C0 out 0 1e-13",
		"V0 in 0 PULSE(0 1.8 1e-10 5e-11 5e-11 1e-09 1)",
		"I0 out 0 DC 0.001",
		"M0 out in 0 0 mnmos",
		"M1 out in vdd vdd mpmos",
		".model mnmos_vt0.45_k0.002_l0.05 NMOS (LEVEL=1 VTO=0.45",
		".model mpmos_vt0.45_k0.002_l0.05 PMOS (LEVEL=1 VTO=-0.45",
		".end",
	} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestWriteSpiceWaveforms(t *testing.T) {
	n := New()
	n.AddV("v1", "a", "0", NewPWL([]float64{0, 1e-9}, []float64{0, 1}))
	n.AddV("v2", "b", "0", Sine{Offset: 0.9, Amplitude: 0.1, Freq: 1e9})
	n.AddV("v3", "c", "0", Shifted{W: Pulse{V1: 0, V2: 1, Delay: 1e-10, Rise: 1e-11, Width: 1e-9, Fall: 1e-11}, Dt: 2e-10})
	n.AddV("v4", "d", "0", Scaled{W: DC(2), K: 3})
	var b strings.Builder
	if err := WriteSpice(&b, n, ""); err != nil {
		t.Fatal(err)
	}
	deck := b.String()
	for _, want := range []string{
		"PWL(0 0 1e-09 1)",
		"SIN(0.9 0.1 1e+09 0)",
		"PULSE(0 1 3e-10", // shifted delay folded in
		"DC 6",            // scaled sampled at t=0
	} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestWriteSpiceRejectsKGroups(t *testing.T) {
	n := New()
	li := n.AddL("l", "a", "0", 0)
	n.AddKGroup("k", []int{li}, [][]float64{{1e9}})
	var b strings.Builder
	if err := WriteSpice(&b, n, ""); err == nil {
		t.Errorf("K-group export accepted")
	}
}

func TestWriteSpiceZeroInductorMutual(t *testing.T) {
	n := New()
	la := n.AddL("la", "a", "0", 0)
	lb := n.AddL("lb", "b", "0", 1e-9)
	n.AddM("m", la, lb, 1e-10)
	var b strings.Builder
	if err := WriteSpice(&b, n, ""); err == nil {
		t.Errorf("mutual on zero inductor accepted")
	}
}
