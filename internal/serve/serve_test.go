package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inductance101/internal/engine"
	"inductance101/internal/fasthenry"
	"inductance101/internal/layoutio"
)

// testLayout is the Fig. 3(a) signal-over-returns structure as the wire
// schema: one signal between two ground returns, shorted at the far
// end. pitch varies the geometry so different tenants can populate
// disjoint kernel-cache entries.
func testLayout(pitch float64) *layoutio.File {
	return &layoutio.File{
		Layers: []layoutio.LayerJSON{
			{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
		},
		Segments: []layoutio.SegmentJSON{
			{Layer: 0, Dir: "X", X0: 0, Y0: 0, Length: 2e-3, Width: 8e-6, Net: "sig", NodeA: "s0", NodeB: "s1"},
			{Layer: 0, Dir: "X", X0: 0, Y0: -pitch, Length: 2e-3, Width: 8e-6, Net: "GND", NodeA: "g0", NodeB: "g1"},
			{Layer: 0, Dir: "X", X0: 0, Y0: pitch, Length: 2e-3, Width: 8e-6, Net: "GND", NodeA: "h0", NodeB: "h1"},
		},
	}
}

func testShorts() [][2]string {
	return [][2]string{{"s1", "g1"}, {"g1", "h1"}, {"g0", "h0"}}
}

// planeLayout is a microstrip-over-plane structure in the wire schema:
// the signal on the top layer, a conductor plane below it whose edge
// rails carry the default port's g0/g1 names.
func planeLayout(planeHalfW float64) *layoutio.File {
	return &layoutio.File{
		Layers: []layoutio.LayerJSON{
			{Name: "M5", Z: 4e-6, Thickness: 0.9e-6, SheetRho: 0.025, HBelow: 1.0e-6},
			{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
		},
		Segments: []layoutio.SegmentJSON{
			{Layer: 1, Dir: "X", X0: 0, Y0: 0, Length: 100e-6, Width: 2e-6, Net: "sig", NodeA: "s0", NodeB: "s1"},
		},
		Planes: []layoutio.PlaneJSON{
			{Layer: 0, X0: 0, Y0: -planeHalfW, X1: 100e-6, Y1: planeHalfW,
				Net: "GND", NodeLeft: "g0", NodeRight: "g1"},
		},
	}
}

// withPlane swaps the default job geometry for the plane structure,
// rewriting the shorts to its node names (the port stays s0/g0).
func withPlane(j *jobJSON) {
	j.Layout = planeLayout(8e-6)
	j.Shorts = [][2]string{{"s1", "g1"}}
}

// testJob builds a job document; overrides mutate the default before
// marshalling.
func testJob(t *testing.T, overrides ...func(*jobJSON)) []byte {
	t.Helper()
	prio := 1
	doc := jobJSON{
		Tenant:   "t0",
		Priority: &prio,
		Layout:   testLayout(20e-6),
		Port:     portJSON{Plus: "s0", Minus: "g0"},
		Shorts:   testShorts(),
		FStartHz: 1e8,
		FStopHz:  2e10,
		Points:   3,
		Config:   jobConfigJSON{Solver: "dense", Workers: 1},
	}
	for _, f := range overrides {
		f(&doc)
	}
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// streamedJob is one parsed NDJSON response.
type streamedJob struct {
	points []pointJSON
	done   *doneJSON
}

// postJob submits a job and parses the NDJSON stream.
func postJob(t *testing.T, url string, body []byte) (int, *streamedJob) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	out := &streamedJob{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			var d doneJSON
			if err := json.Unmarshal(line, &d); err != nil {
				t.Fatalf("bad done line %q: %v", line, err)
			}
			out.done = &d
			continue
		}
		var p pointJSON
		if err := json.Unmarshal(line, &p); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		out.points = append(out.points, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp.StatusCode, out
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestSweepEndToEnd posts one job and checks the streamed points are
// bit-identical to a direct fasthenry solve under the same config.
func TestSweepEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, CacheBytes: 8 << 20})
	code, got := postJob(t, ts.URL, testJob(t))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.points) != 3 || got.done == nil {
		t.Fatalf("stream: %d points, done=%v", len(got.points), got.done)
	}
	if got.done.Points != 3 || got.done.Solver != "dense" || got.done.Filaments == 0 {
		t.Errorf("done line %+v", got.done)
	}

	// Direct oracle under the identical config.
	lay, err := testLayout(20e-6).ToLayout()
	if err != nil {
		t.Fatal(err)
	}
	sess := engine.New(engine.Config{Workers: 1, SolveMode: fasthenry.ModeDense, Cache: engine.CachePrivate})
	sv, err := fasthenry.NewSolver(lay, []int{0, 1, 2}, fasthenry.Port{Plus: "s0", Minus: "g0"},
		testShorts(), 2e10, sess.SolverOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sv.Sweep(fasthenry.LogSpace(1e8, 2e10, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got.points {
		if math.Float64bits(p.ROhm) != math.Float64bits(want[i].R) ||
			math.Float64bits(p.LH) != math.Float64bits(want[i].L) {
			t.Errorf("point %d: got (%g, %g) want (%g, %g)", i, p.ROhm, p.LH, want[i].R, want[i].L)
		}
	}

	st := srv.Statz()
	if st.Accepted != 1 || st.Completed != 1 || st.PointsStreamed != 3 {
		t.Errorf("statz after one job: %+v", st)
	}
	if st.Accepted != st.Completed+st.Cancelled+st.Failed {
		t.Errorf("accounting leak: %+v", st)
	}
}

// TestPlaneSweepEndToEnd submits a microstrip-over-plane job: the
// plane must lower through the shared mesh (visibly more filaments
// than the lone signal segment could produce), the per-job planenw
// override must be honoured, and the streamed points must be physical.
func TestPlaneSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, CacheBytes: 8 << 20})
	code, got := postJob(t, ts.URL, testJob(t, withPlane, func(j *jobJSON) {
		j.Config.PlaneNW = 6
	}))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.points) != 3 || got.done == nil {
		t.Fatalf("stream: %d points, done=%v", len(got.points), got.done)
	}
	// A 6x6-cell plane grid alone is ~72 filaments; the lone signal
	// segment at most a handful.
	if got.done.Filaments < 50 {
		t.Errorf("done reports %d filaments; the plane was not meshed", got.done.Filaments)
	}
	for _, p := range got.points {
		if !(p.ROhm > 0) || !(p.LH > 0) {
			t.Errorf("non-physical point %+v", p)
		}
	}
}

// TestAdaptiveSweepStream runs the same job in exact and adaptive sweep
// modes: the adaptive stream must return every requested row, mark a
// majority of them interp, and agree with the exact rows within the
// sweep tolerance.
func TestAdaptiveSweepStream(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, MaxPoints: 256})
	const n = 96
	body := func(mode string) []byte {
		return testJob(t, func(j *jobJSON) {
			j.Points = n
			j.Config.Sweep = mode
			j.Config.SweepTol = 1e-6
		})
	}
	code, exact := postJob(t, ts.URL, body("exact"))
	if code != http.StatusOK || len(exact.points) != n || exact.done == nil {
		t.Fatalf("exact job: status %d, stream %+v", code, exact)
	}
	for _, p := range exact.points {
		if p.Interp {
			t.Fatal("exact sweep streamed an interpolated row")
		}
	}
	code, adaptive := postJob(t, ts.URL, body("adaptive"))
	if code != http.StatusOK || len(adaptive.points) != n || adaptive.done == nil {
		t.Fatalf("adaptive job: status %d, stream %+v", code, adaptive)
	}
	interp := 0
	for i, p := range adaptive.points {
		if p.Interp {
			interp++
		}
		if p.FreqHz != exact.points[i].FreqHz {
			t.Fatalf("row %d: frequency %g vs exact %g", i, p.FreqHz, exact.points[i].FreqHz)
		}
		if e := math.Abs(p.LH-exact.points[i].LH) / math.Abs(exact.points[i].LH); e > 1e-4 {
			t.Errorf("row %d: L deviates %.3g from exact", i, e)
		}
	}
	if interp < n/2 {
		t.Errorf("adaptive stream marked only %d of %d rows interp", interp, n)
	}
}

// TestRejectsStructured400 pins the error contract: malformed or
// out-of-limit jobs get a JSON {"error": ...} body and a 400, and the
// message names the offending value.
func TestRejectsStructured400(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxPoints: 16, MaxSegments: 8})
	cases := []struct {
		name string
		body []byte
		want string // substring of the error message
	}{
		{"malformed", []byte(`{`), "invalid job JSON"},
		{"unknown-field", []byte(`{"bogus":1}`), "bogus"},
		{"no-layout", testJob(t, func(j *jobJSON) { j.Layout = nil }), "missing layout"},
		{"bad-priority", testJob(t, func(j *jobJSON) { p := 9; j.Priority = &p }), "priority 9"},
		{"zero-points", testJob(t, func(j *jobJSON) { j.Points = 0 }), "points 0"},
		{"too-many-points", testJob(t, func(j *jobJSON) { j.Points = 99 }), "points 99"},
		{"bad-freq-order", testJob(t, func(j *jobJSON) { j.FStartHz = 1e10; j.FStopHz = 1e8 }), "below fstart_hz"},
		{"absurd-freq", testJob(t, func(j *jobJSON) { j.FStopHz = 1e30 }), "above"},
		{"bad-solver", testJob(t, func(j *jobJSON) { j.Config.Solver = "quantum" }), "quantum"},
		{"bad-cachemode", testJob(t, func(j *jobJSON) { j.Config.KernelCache = "sometimes" }), "sometimes"},
		{"negative-width", testJob(t, func(j *jobJSON) { j.Layout.Segments[0].Width = -1e-6 }), "width"},
		{"absurd-length", testJob(t, func(j *jobJSON) { j.Layout.Segments[0].Length = 5e3 }), "length"},
		{"no-port", testJob(t, func(j *jobJSON) { j.Port = portJSON{} }), "port"},
		{"unknown-port-node", testJob(t, func(j *jobJSON) { j.Port.Plus = "nope" }), "nope"},
		{"bad-sweep-mode", testJob(t, func(j *jobJSON) { j.Config.Sweep = "spline" }), "spline"},
		{"bad-sweeptol", testJob(t, func(j *jobJSON) { j.Config.SweepTol = -1e-6 }), "sweeptol"},
		{"bad-planenw", testJob(t, withPlane, func(j *jobJSON) {
			j.Config.PlaneNW = 1
		}), "plane density 1"},
		{"huge-planenw", testJob(t, withPlane, func(j *jobJSON) {
			j.Config.PlaneNW = 1 << 16
		}), "plane density"},
		{"too-many-planes", testJob(t, withPlane, func(j *jobJSON) {
			for len(j.Layout.Planes) <= maxPlanesPerJob {
				p := j.Layout.Planes[0]
				p.NodeLeft = fmt.Sprintf("x%d", len(j.Layout.Planes))
				p.NodeRight = fmt.Sprintf("y%d", len(j.Layout.Planes))
				j.Layout.Planes = append(j.Layout.Planes, p)
			}
		}), "planes"},
		{"plane-absurd-extent", testJob(t, withPlane, func(j *jobJSON) {
			j.Layout.Planes[0].X1 = 5.0
		}), "plane 0"},
		{"plane-empty-hole", testJob(t, withPlane, func(j *jobJSON) {
			j.Layout.Planes[0].Holes = []layoutio.HoleJSON{
				{X0: 50e-6, Y0: 0, X1: 40e-6, Y1: 1e-6}}
		}), "hole"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e errorJSON
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("400 body is not the structured error shape: %v", err)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}

// TestMethodNotAllowed pins the 405 for non-POST submissions.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: status %d, want 405", resp.StatusCode)
	}
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Status != "ok" {
		t.Errorf("healthz: %v %+v", err, doc)
	}
}

// TestQueueFull429 fills the single worker slot and the one queue seat,
// then asserts the next job is rejected with 429 — backpressure, not
// buffering — and that the queued job still completes.
func TestQueueFull429(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, TenantWorkers: 1, QueueDepth: 1})

	// Occupy the only slot directly through the scheduler.
	if ok, err := srv.sched.acquire(context.Background(), "hog", PriorityHigh); !ok || err != nil {
		t.Fatalf("acquire: %v %v", ok, err)
	}

	// First job takes the single queue seat.
	type result struct {
		code int
		got  *streamedJob
	}
	queued := make(chan result, 1)
	go func() {
		code, got := postJob(t, ts.URL, testJob(t, func(j *jobJSON) { j.Tenant = "a" }))
		queued <- result{code, got}
	}()
	waitFor(t, time.Second, func() bool { return srv.sched.queueDepth() == 1 })

	// Queue full: the next submission must bounce with 429.
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		bytes.NewReader(testJob(t, func(j *jobJSON) { j.Tenant = "b" })))
	if err != nil {
		t.Fatal(err)
	}
	var e errorJSON
	if jerr := json.NewDecoder(resp.Body).Decode(&e); jerr != nil || e.Error == "" {
		t.Errorf("429 body is not structured: %v %+v", jerr, e)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submission: status %d, want 429", resp.StatusCode)
	}

	// Free the slot: the queued job must run to completion.
	srv.sched.release("hog")
	select {
	case r := <-queued:
		if r.code != http.StatusOK || r.got == nil || r.got.done == nil {
			t.Fatalf("queued job: status %d, stream %+v", r.code, r.got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued job never completed after the slot freed")
	}
	st := srv.Statz()
	if st.Rejected429 != 1 {
		t.Errorf("rejected_429 = %d, want 1", st.Rejected429)
	}
	if st.Accepted != st.Completed+st.Cancelled+st.Failed {
		t.Errorf("accounting leak: %+v", st)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSchedulerPriorityOrder pins strict priority order with FIFO
// tie-break: with the slot held, a batch job queued before an
// interactive one still runs after it.
func TestSchedulerPriorityOrder(t *testing.T) {
	s := newScheduler(1, 1, 16)
	if ok, err := s.acquire(context.Background(), "hold", 0); !ok || err != nil {
		t.Fatal("failed to take the slot")
	}
	order := make(chan string, 4)
	// Enqueue deterministically: batch first, then two interactive.
	enqueue := func(name, tenant string, prio int, depth int) {
		go func() {
			ok, err := s.acquire(context.Background(), tenant, prio)
			if !ok || err != nil {
				t.Errorf("%s: acquire failed: %v", name, err)
				return
			}
			order <- name
			s.release(tenant)
		}()
		waitForDepth(t, s, depth)
	}
	enqueue("batch", "tb", PriorityBatch, 1)
	enqueue("inter1", "ti", PriorityHigh, 2)
	enqueue("inter2", "tj", PriorityHigh, 3)

	s.release("hold")
	want := []string{"inter1", "inter2", "batch"}
	for i, w := range want {
		select {
		case got := <-order:
			if got != w {
				t.Fatalf("grant %d: got %s, want %s", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d (%s) never arrived", i, w)
		}
	}
}

func waitForDepth(t *testing.T, s *scheduler, depth int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for s.queueDepth() != depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", depth, s.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerTenantBudget pins the per-tenant carve-out: a tenant at
// its budget cannot take a third slot even though slots are free, and a
// queued other-tenant job takes it instead.
func TestSchedulerTenantBudget(t *testing.T) {
	s := newScheduler(4, 2, 16)
	for i := 0; i < 2; i++ {
		if ok, err := s.acquire(context.Background(), "big", 0); !ok || err != nil {
			t.Fatal("budget slots should be grantable")
		}
	}
	// Third job of the same tenant must queue despite two free slots.
	got := make(chan bool, 1)
	go func() {
		ok, err := s.acquire(context.Background(), "big", 0)
		got <- ok && err == nil
		if ok && err == nil {
			s.release("big")
		}
	}()
	waitForDepth(t, s, 1)
	if s.runningTotal() != 2 {
		t.Fatalf("running %d, want 2", s.runningTotal())
	}
	// Another tenant walks straight past the capped waiter.
	if ok, err := s.acquire(context.Background(), "small", PriorityBatch); !ok || err != nil {
		t.Fatal("free slot denied to an under-budget tenant")
	}
	// Releasing one of big's slots lets the waiter in.
	s.release("big")
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("capped waiter failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("capped waiter never granted after release")
	}
	s.release("small")
	s.release("big")
	if s.runningTotal() != 0 {
		t.Fatalf("slots leaked: running %d", s.runningTotal())
	}
}

// TestSchedulerCancelWhileQueued pins that a canceled waiter leaves the
// queue and nothing leaks.
func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := newScheduler(1, 1, 16)
	if ok, err := s.acquire(context.Background(), "hold", 0); !ok || err != nil {
		t.Fatal("failed to take the slot")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		admitted, err := s.acquire(ctx, "w", 0)
		if !admitted {
			err = fmt.Errorf("cancel-while-queued reported not admitted: %w", err)
		}
		done <- err
	}()
	waitForDepth(t, s, 1)
	cancel()
	if err := <-done; err == nil || ctx.Err() == nil {
		t.Fatalf("canceled acquire returned %v", err)
	}
	if s.queueDepth() != 0 {
		t.Fatal("canceled waiter still queued")
	}
	s.release("hold")
	if s.runningTotal() != 0 || s.queueDepth() != 0 {
		t.Fatal("scheduler state leaked after cancel")
	}
}
