package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"inductance101/internal/engine"
	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/layoutio"
)

// Priorities: 0 is most urgent (interactive), 2 is batch. Jobs at the
// same priority run in arrival order.
const (
	PriorityHigh  = 0
	PriorityBatch = 2
	numPriorities = 3
)

// Limits bounds what a single job may ask for. The server rejects
// over-limit requests with a structured 400 before any work starts, so
// a hostile request cannot pin a worker on an absurd sweep.
type Limits struct {
	MaxPoints   int // sweep points per job
	MaxSegments int // layout segments per job
}

// Geometry sanity bounds (SI metres): on-chip and package structures
// live comfortably inside them; anything outside is a unit mistake or
// a hostile request, and the kernels would only produce garbage from
// it.
const (
	minDimension = 1e-9 // 1 nm
	maxLength    = 1.0  // 1 m
	maxWidth     = 1e-2 // 1 cm
	maxCoord     = 1.0  // 1 m from the origin
	minFreqHz    = 1.0
	maxFreqHz    = 1e15
	// maxPlanesPerJob bounds the conductor planes one job may mesh: each
	// plane adds ~2·PlaneNW² filaments and PlaneNW² nodal solves, so the
	// cap (together with the planenw range check) bounds the work a
	// single request can pin a worker with.
	maxPlanesPerJob = 8
)

// jobJSON is the wire schema of one extraction job. Geometry reuses the
// layoutio layout schema verbatim, so a layout file accepted by the
// CLIs is accepted by the server unchanged.
type jobJSON struct {
	Tenant   string         `json:"tenant,omitempty"`
	Priority *int           `json:"priority,omitempty"`
	Layout   *layoutio.File `json:"layout"`
	Port     portJSON       `json:"port"`
	Shorts   [][2]string    `json:"shorts,omitempty"`
	FStartHz float64        `json:"fstart_hz"`
	FStopHz  float64        `json:"fstop_hz"`
	Points   int            `json:"points"`
	Config   jobConfigJSON  `json:"config,omitempty"`
}

type portJSON struct {
	Plus  string `json:"plus"`
	Minus string `json:"minus"`
}

// jobConfigJSON is the per-job slice of engine.Config a tenant may
// override. Workers is advisory: it is clamped to the tenant's worker
// budget so one request cannot grab the whole machine.
type jobConfigJSON struct {
	Solver      string  `json:"solver,omitempty"`      // dense | iterative | nested | auto
	Precond     string  `json:"precond,omitempty"`     // bjacobi | sai
	ACATol      float64 `json:"acatol,omitempty"`      // 0 = default
	Workers     int     `json:"workers,omitempty"`     // 0 = 1; clamped to the tenant budget
	KernelCache string  `json:"kernelcache,omitempty"` // shared | private | off (default shared)
	Sweep       string  `json:"sweep,omitempty"`       // exact | adaptive | auto (default auto)
	SweepTol    float64 `json:"sweeptol,omitempty"`    // 0 = default (1e-6)
	PlaneNW     int     `json:"planenw,omitempty"`     // plane mesh cells per axis; 0 = default
}

// job is a decoded, validated request ready to schedule.
type job struct {
	tenant      string
	prio        int
	layout      *geom.Layout
	segs        []int
	port        fasthenry.Port
	shorts      [][2]string
	freqs       []float64
	cfg         engine.Config
	kernelCache string
}

// decodeJob parses and validates one job document. Every failure is a
// client error: the returned message is safe to hand back verbatim in
// a structured 400 body.
func decodeJob(r io.Reader, lim Limits, tenantBudget int) (*job, error) {
	var doc jobJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("invalid job JSON: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("invalid job JSON: trailing data after the job document")
	}

	j := &job{tenant: doc.Tenant, prio: 1}
	if j.tenant == "" {
		j.tenant = "anon"
	}
	if doc.Priority != nil {
		if *doc.Priority < PriorityHigh || *doc.Priority >= numPriorities {
			return nil, fmt.Errorf("priority %d out of range [%d, %d]", *doc.Priority, PriorityHigh, numPriorities-1)
		}
		j.prio = *doc.Priority
	}

	if doc.Layout == nil {
		return nil, fmt.Errorf("missing layout")
	}
	if n := len(doc.Layout.Segments); n == 0 || n > lim.MaxSegments {
		return nil, fmt.Errorf("layout has %d segments, want 1..%d", n, lim.MaxSegments)
	}
	for i, s := range doc.Layout.Segments {
		switch {
		case !isFinite(s.Length) || s.Length < minDimension || s.Length > maxLength:
			return nil, fmt.Errorf("segment %d length %g outside [%g, %g] m", i, s.Length, minDimension, maxLength)
		case !isFinite(s.Width) || s.Width < minDimension || s.Width > maxWidth:
			return nil, fmt.Errorf("segment %d width %g outside [%g, %g] m", i, s.Width, minDimension, maxWidth)
		case !isFinite(s.X0) || !isFinite(s.Y0) || math.Abs(s.X0) > maxCoord || math.Abs(s.Y0) > maxCoord:
			return nil, fmt.Errorf("segment %d origin (%g, %g) outside +-%g m", i, s.X0, s.Y0, maxCoord)
		}
	}
	for i, l := range doc.Layout.Layers {
		if !isFinite(l.Z) || !isFinite(l.Thickness) || !isFinite(l.SheetRho) || !isFinite(l.HBelow) {
			return nil, fmt.Errorf("layer %d has a non-finite parameter", i)
		}
	}
	if n := len(doc.Layout.Planes); n > maxPlanesPerJob {
		return nil, fmt.Errorf("layout has %d planes, want at most %d", n, maxPlanesPerJob)
	}
	for i, p := range doc.Layout.Planes {
		switch {
		case !isFinite(p.X0) || !isFinite(p.Y0) || !isFinite(p.X1) || !isFinite(p.Y1):
			return nil, fmt.Errorf("plane %d has a non-finite extent", i)
		case p.X1-p.X0 < minDimension || p.Y1-p.Y0 < minDimension:
			return nil, fmt.Errorf("plane %d extent below %g m", i, minDimension)
		case p.X1-p.X0 > maxLength || p.Y1-p.Y0 > maxLength:
			return nil, fmt.Errorf("plane %d extent above %g m", i, maxLength)
		case math.Abs(p.X0) > maxCoord || math.Abs(p.Y0) > maxCoord || math.Abs(p.X1) > maxCoord || math.Abs(p.Y1) > maxCoord:
			return nil, fmt.Errorf("plane %d outside +-%g m", i, maxCoord)
		}
		for hi, h := range p.Holes {
			if !isFinite(h.X0) || !isFinite(h.Y0) || !isFinite(h.X1) || !isFinite(h.Y1) {
				return nil, fmt.Errorf("plane %d hole %d has a non-finite extent", i, hi)
			}
		}
	}
	lay, err := doc.Layout.ToLayout()
	if err != nil {
		return nil, err
	}
	j.layout = lay
	for i := range lay.Segments {
		j.segs = append(j.segs, i)
	}

	// Node names must come from the layout: the solver would silently
	// mint an isolated node for a typo and fail much later with a
	// disconnected-network error, so catch it here with the name.
	nodes := make(map[string]bool)
	for _, s := range doc.Layout.Segments {
		nodes[s.NodeA] = true
		nodes[s.NodeB] = true
	}
	// Plane edge rails are first-class electrical nodes: ports and
	// shorts may land on them.
	for _, p := range doc.Layout.Planes {
		for _, n := range []string{p.NodeLeft, p.NodeRight, p.NodeBottom, p.NodeTop} {
			if n != "" {
				nodes[n] = true
			}
		}
	}
	if doc.Port.Plus == "" || doc.Port.Minus == "" {
		return nil, fmt.Errorf("port needs both plus and minus node names")
	}
	if !nodes[doc.Port.Plus] {
		return nil, fmt.Errorf("port plus node %q not in the layout", doc.Port.Plus)
	}
	if !nodes[doc.Port.Minus] {
		return nil, fmt.Errorf("port minus node %q not in the layout", doc.Port.Minus)
	}
	j.port = fasthenry.Port{Plus: doc.Port.Plus, Minus: doc.Port.Minus}
	for i, sh := range doc.Shorts {
		if !nodes[sh[0]] || !nodes[sh[1]] {
			return nil, fmt.Errorf("short %d references a node not in the layout (%q, %q)", i, sh[0], sh[1])
		}
	}
	j.shorts = doc.Shorts

	switch {
	case !isFinite(doc.FStartHz) || doc.FStartHz < minFreqHz:
		return nil, fmt.Errorf("fstart_hz %g below %g", doc.FStartHz, minFreqHz)
	case !isFinite(doc.FStopHz) || doc.FStopHz > maxFreqHz:
		return nil, fmt.Errorf("fstop_hz %g above %g", doc.FStopHz, maxFreqHz)
	case doc.FStopHz < doc.FStartHz:
		return nil, fmt.Errorf("fstop_hz %g below fstart_hz %g", doc.FStopHz, doc.FStartHz)
	}
	if doc.Points < 1 || doc.Points > lim.MaxPoints {
		return nil, fmt.Errorf("points %d out of range [1, %d]", doc.Points, lim.MaxPoints)
	}
	j.freqs = fasthenry.LogSpace(doc.FStartHz, doc.FStopHz, doc.Points)

	cfg := engine.Config{}
	if doc.Config.Solver != "" {
		mode, err := fasthenry.ParseSolveMode(doc.Config.Solver)
		if err != nil {
			return nil, err
		}
		cfg.SolveMode = mode
	}
	if doc.Config.Precond != "" {
		pre, err := fasthenry.ParsePrecond(doc.Config.Precond)
		if err != nil {
			return nil, err
		}
		cfg.Precond = pre
	}
	if !isFinite(doc.Config.ACATol) || doc.Config.ACATol < 0 {
		return nil, fmt.Errorf("acatol %g must be a finite non-negative tolerance", doc.Config.ACATol)
	}
	cfg.ACATol = doc.Config.ACATol
	if doc.Config.Workers < 0 {
		return nil, fmt.Errorf("workers %d must be non-negative", doc.Config.Workers)
	}
	cfg.Workers = doc.Config.Workers
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > tenantBudget {
		cfg.Workers = tenantBudget
	}
	sm, err := engine.ParseSweepMode(doc.Config.Sweep)
	if err != nil {
		return nil, err
	}
	cfg.SweepMode = sm
	if !isFinite(doc.Config.SweepTol) || doc.Config.SweepTol < 0 {
		return nil, fmt.Errorf("sweeptol %g must be a finite non-negative tolerance", doc.Config.SweepTol)
	}
	cfg.SweepTol = doc.Config.SweepTol
	cfg.PlaneNW = doc.Config.PlaneNW
	switch doc.Config.KernelCache {
	case "", "shared":
		j.kernelCache = "shared"
	case "private":
		j.kernelCache = "private"
	case "off":
		j.kernelCache = "off"
	default:
		return nil, fmt.Errorf("kernelcache must be shared, private or off, got %q", doc.Config.KernelCache)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	j.cfg = cfg
	return j, nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
