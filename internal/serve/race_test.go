package serve

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"inductance101/internal/layoutio"
)

// busFile is an n-wire parallel bus as the wire schema: wire 0 is the
// signal (nodes s0/s1), the rest are grounds (g<i>a/g<i>b), pitch
// apart. Wide buses make each sweep point cost real solve time, which
// the disconnect test needs.
func busFile(n int, pitch float64) *layoutio.File {
	f := &layoutio.File{
		Layers: []layoutio.LayerJSON{
			{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
		},
	}
	for i := 0; i < n; i++ {
		na, nb := fmt.Sprintf("g%da", i), fmt.Sprintf("g%db", i)
		net := "GND"
		if i == 0 {
			na, nb, net = "s0", "s1", "sig"
		}
		f.Segments = append(f.Segments, layoutio.SegmentJSON{
			Layer: 0, Dir: "X", X0: 0, Y0: float64(i) * pitch,
			Length: 2e-3, Width: 4e-6, Net: net, NodeA: na, NodeB: nb,
		})
	}
	return f
}

// busShorts closes the busFile loop: signal far end onto the ground
// comb, and the grounds tied together at both ends.
func busShorts(n int) [][2]string {
	shorts := [][2]string{{"s1", "g1b"}}
	for i := 1; i < n-1; i++ {
		shorts = append(shorts,
			[2]string{fmt.Sprintf("g%db", i), fmt.Sprintf("g%db", i+1)},
			[2]string{fmt.Sprintf("g%da", i), fmt.Sprintf("g%da", i+1)})
	}
	return shorts
}

// TestManyTenantsConflictingConfigsRace drives the server with several
// tenants whose jobs disagree about everything configurable — solver
// mode, preconditioner, cache mode, priority — all multiplexed over the
// one shared bounded cache. Run under -race this is the server's data
// integrity check; the assertions pin the accounting invariant and the
// byte cap.
func TestManyTenantsConflictingConfigsRace(t *testing.T) {
	srv, ts := newTestServer(t, Options{
		Workers:       4,
		TenantWorkers: 2,
		QueueDepth:    256,
		CacheBytes:    1 << 20, // small enough that varied geometry evicts
	})

	type variant struct {
		solver  string
		precond string
		cache   string
		prio    int
	}
	variants := []variant{
		{"dense", "", "shared", 0},
		{"iterative", "bjacobi", "shared", 1},
		{"iterative", "sai", "private", 2},
		{"nested", "bjacobi", "shared", 1},
		{"dense", "", "off", 2},
		{"auto", "", "shared", 0},
	}

	const tenants = 6
	const jobsPerTenant = 4
	var wg sync.WaitGroup
	errs := make(chan string, tenants*jobsPerTenant)
	for ti := 0; ti < tenants; ti++ {
		for ji := 0; ji < jobsPerTenant; ji++ {
			wg.Add(1)
			v := variants[(ti+ji)%len(variants)]
			// Distinct pitch per (tenant, job) → distinct kernel keys, so
			// the shared cache churns and evicts under the 1 MiB cap.
			pitch := 10e-6 + float64(ti*jobsPerTenant+ji)*1e-6
			tenant := string(rune('a' + ti))
			go func() {
				defer wg.Done()
				body := testJob(t, func(j *jobJSON) {
					j.Tenant = tenant
					p := v.prio
					j.Priority = &p
					j.Layout = testLayout(pitch)
					j.Points = 2
					j.Config = jobConfigJSON{Solver: v.solver, Precond: v.precond, KernelCache: v.cache, Workers: 2}
				})
				code, got := postJob(t, ts.URL, body)
				if code != http.StatusOK || got == nil || got.done == nil || len(got.points) != 2 {
					errs <- tenant
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("tenant %s: job did not complete cleanly", e)
	}

	st := srv.Statz()
	if want := uint64(tenants * jobsPerTenant); st.Accepted != want || st.Completed != want {
		t.Errorf("accepted/completed = %d/%d, want %d", st.Accepted, st.Completed, want)
	}
	if st.Accepted != st.Completed+st.Cancelled+st.Failed {
		t.Errorf("accounting leak: %+v", st)
	}
	if st.Cache.Bytes > st.Cache.CapBytes {
		t.Errorf("shared cache over cap: %d > %d bytes", st.Cache.Bytes, st.Cache.CapBytes)
	}
	if st.Running != 0 || st.QueueDepth != 0 {
		t.Errorf("slots leaked: running=%d queued=%d", st.Running, st.QueueDepth)
	}
}

// TestClientDisconnectFreesWorkers starts streaming sweeps, kills the
// clients mid-stream, and asserts the cancellations free their worker
// slots: the scheduler drains to zero and a fresh job still completes.
func TestClientDisconnectFreesWorkers(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, TenantWorkers: 2, QueueDepth: 64})

	// A job heavy enough that a disconnect after the first streamed
	// point always lands with hundreds of points (several ms each) left.
	longBody := func(i int) []byte {
		return testJob(t, func(j *jobJSON) {
			j.Tenant = "flaky"
			j.Layout = busFile(12, 10e-6+float64(i)*1e-6)
			j.Port = portJSON{Plus: "s0", Minus: "g1a"}
			j.Shorts = busShorts(12)
			j.Points = 256
			// Pin the per-point streaming path: auto would adapt at this
			// point count and buffer the sweep before streaming.
			j.Config.Sweep = "exact"
		})
	}

	const dropped = 4
	var wg sync.WaitGroup
	for i := 0; i < dropped; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			body := longBody(i)
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // cancelled before the response line; also fine
			}
			defer resp.Body.Close()
			// Read one streamed point to prove the job is running, then
			// vanish.
			br := bufio.NewReader(resp.Body)
			_, _ = br.ReadBytes('\n')
			cancel()
		}()
	}
	wg.Wait()

	// Every dropped job must hand its slot back.
	waitFor(t, 10*time.Second, func() bool {
		return srv.sched.runningTotal() == 0 && srv.sched.queueDepth() == 0
	})

	// The freed capacity is usable: a well-behaved job completes.
	code, got := postJob(t, ts.URL, testJob(t))
	if code != http.StatusOK || got == nil || got.done == nil {
		t.Fatalf("post-disconnect job: status %d, stream %+v", code, got)
	}

	st := srv.Statz()
	if st.Accepted != st.Completed+st.Cancelled+st.Failed {
		t.Errorf("accounting leak after disconnects: %+v", st)
	}
	if st.Cancelled == 0 {
		t.Errorf("no job recorded as cancelled after %d mid-stream disconnects", dropped)
	}
}
