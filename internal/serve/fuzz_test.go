package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzJobRequest throws arbitrary bytes at the job endpoint. The
// contract under fuzzing: the server never panics, and every rejection
// is a structured JSON error body with the matching status code —
// malformed JSON, NaN/Inf geometry and absurd sweeps are all client
// errors, not crashes. Limits are kept tiny so an accidentally valid
// mutation stays cheap to actually solve.
func FuzzJobRequest(f *testing.F) {
	valid, err := json.Marshal(jobJSON{
		Tenant:   "fuzz",
		Layout:   testLayout(15e-6),
		Port:     portJSON{Plus: "s0", Minus: "g0"},
		Shorts:   testShorts(),
		FStartHz: 1e9, FStopHz: 1e10, Points: 2,
		Config: jobConfigJSON{Solver: "dense", Workers: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{`))
	f.Add([]byte(`{"layout":null,"port":{},"points":0}`))
	f.Add([]byte(`{"fstart_hz":1e999}`))
	f.Add(bytes.Replace(valid, []byte(`"points":2`), []byte(`"points":99999999`), 1))
	f.Add(bytes.Replace(valid, []byte(`2e-05`), []byte(`1e309`), 1))

	srv, err := New(Options{
		Workers:      1,
		QueueDepth:   4,
		CacheBytes:   1 << 20,
		MaxPoints:    4,
		MaxSegments:  8,
		MaxBodyBytes: 1 << 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req) // must not panic, whatever body holds

		switch rr.Code {
		case http.StatusOK:
			// A mutation that is a real job: the stream must be complete
			// (terminated by the done line).
			if !bytes.Contains(rr.Body.Bytes(), []byte(`"done":true`)) {
				t.Fatalf("200 stream without a done line: %q", rr.Body.Bytes())
			}
		case http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusTooManyRequests:
			var e errorJSON
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil {
				t.Fatalf("status %d with a non-JSON body %q: %v", rr.Code, rr.Body.Bytes(), err)
			}
			if e.Error == "" {
				t.Fatalf("status %d with an empty error message", rr.Code)
			}
		default:
			t.Fatalf("unexpected status %d (body %q)", rr.Code, rr.Body.Bytes())
		}
	})
}
