package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by acquire when the waiting queue is at its
// depth bound; the HTTP layer turns it into a 429 so clients back off
// instead of piling up.
var ErrQueueFull = errors.New("serve: job queue full")

// scheduler hands out worker slots to jobs. The policy is:
//
//   - at most `slots` jobs run at once (the Config.Workers carve-out);
//   - at most `tenantCap` of them belong to any one tenant, so a noisy
//     tenant cannot starve the rest of the fleet;
//   - among eligible waiting jobs, lower priority number wins, ties go
//     to arrival order;
//   - at most `queueCap` jobs wait; beyond that, admission fails with
//     ErrQueueFull (backpressure, not buffering).
//
// The scheduler is passive — there is no dispatcher goroutine. Grants
// happen inline under the mutex at release time, so a freed slot is
// reassigned before release returns.
type scheduler struct {
	mu        sync.Mutex
	slots     int
	tenantCap int
	queueCap  int
	free      int
	running   map[string]int // tenant -> running jobs
	waiting   []*waiter
	seq       uint64
}

type waiter struct {
	tenant string
	prio   int
	seq    uint64
	grant  chan struct{} // closed when a slot is assigned
}

func newScheduler(slots, tenantCap, queueCap int) *scheduler {
	return &scheduler{
		slots:     slots,
		tenantCap: tenantCap,
		queueCap:  queueCap,
		free:      slots,
		running:   make(map[string]int),
	}
}

// acquire blocks until the job holds a worker slot or ctx ends.
// admitted reports whether the job made it past admission (queued or
// granted): a false return is a queue-full rejection and err is
// ErrQueueFull; a true return with err != nil means the client went
// away while the job waited (the slot, if one was racing in, has been
// returned). On (true, nil) the caller owns a slot and must release it.
func (s *scheduler) acquire(ctx context.Context, tenant string, prio int) (admitted bool, err error) {
	s.mu.Lock()
	// Fast path: a free slot and budget headroom. Anyone still waiting
	// is blocked by their own tenant cap (the dispatch invariant), so
	// taking the slot directly cannot starve them.
	if s.free > 0 && s.running[tenant] < s.tenantCap {
		s.free--
		s.running[tenant]++
		s.mu.Unlock()
		return true, nil
	}
	if len(s.waiting) >= s.queueCap {
		s.mu.Unlock()
		return false, ErrQueueFull
	}
	w := &waiter{tenant: tenant, prio: prio, seq: s.seq, grant: make(chan struct{})}
	s.seq++
	s.waiting = append(s.waiting, w)
	s.mu.Unlock()

	select {
	case <-w.grant:
		return true, nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, x := range s.waiting {
			if x == w {
				s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
				s.mu.Unlock()
				return true, ctx.Err()
			}
		}
		s.mu.Unlock()
		// The grant raced the cancellation: the slot is ours, give it
		// straight back (which re-dispatches it).
		<-w.grant
		s.release(tenant)
		return true, ctx.Err()
	}
}

// release returns a slot and immediately re-dispatches it to the best
// eligible waiter.
func (s *scheduler) release(tenant string) {
	s.mu.Lock()
	s.running[tenant]--
	if s.running[tenant] <= 0 {
		delete(s.running, tenant)
	}
	s.free++
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked grants free slots to waiting jobs until none are
// eligible: strict priority order, FIFO within a priority, skipping
// tenants at their budget. Called with the mutex held.
func (s *scheduler) dispatchLocked() {
	for s.free > 0 {
		best := -1
		for i, w := range s.waiting {
			if s.running[w.tenant] >= s.tenantCap {
				continue
			}
			if best < 0 || w.prio < s.waiting[best].prio ||
				(w.prio == s.waiting[best].prio && w.seq < s.waiting[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		w := s.waiting[best]
		s.waiting = append(s.waiting[:best], s.waiting[best+1:]...)
		s.free--
		s.running[w.tenant]++
		close(w.grant)
	}
}

// queueDepth reports the number of jobs waiting for a slot.
func (s *scheduler) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiting)
}

// runningTotal reports the number of jobs holding slots.
func (s *scheduler) runningTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slots - s.free
}
