// Package serve turns the engine layer into a long-running,
// multi-tenant extraction service: a stdlib net/http daemon that
// accepts JSON sweep jobs (layout geometry + per-job engine.Config
// overrides), runs each through a staged Pipeline with the request's
// context threaded end to end, and streams sweep points back as NDJSON
// as they complete.
//
// The paper's closing argument is that inductance analysis has to be a
// routine design-flow step, not a one-off expert task; this package is
// that step made literal. Verification traffic is thousands of small
// jobs per chip, so the server multiplexes tenants over one shared,
// byte-bounded kernel cache (translated geometry repeats across jobs —
// the cache is the cross-job accelerator) and schedules jobs through a
// bounded priority queue with per-tenant worker budgets carved out of
// the process's worker total: backpressure (429) instead of unbounded
// buffering, and no tenant can starve the rest or grow the cache
// without bound.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inductance101/internal/engine"
	"inductance101/internal/extract"
	"inductance101/internal/fasthenry"
)

// Options configures a Server. Zero values take the documented
// defaults; negative values are rejected by New.
type Options struct {
	// Workers is the total worker-slot pool — the run-concurrency
	// carve-out every tenant budget comes from. 0 = GOMAXPROCS.
	Workers int
	// TenantWorkers caps one tenant's concurrently running jobs.
	// 0 = max(1, Workers/4).
	TenantWorkers int
	// QueueDepth bounds the waiting queue; admission beyond it fails
	// with 429. 0 = 64.
	QueueDepth int
	// CacheBytes caps the shared kernel cache's resident footprint
	// (CLOCK eviction over the cap). 0 = unbounded.
	CacheBytes int64
	// MaxPoints caps sweep points per job. 0 = 1024.
	MaxPoints int
	// MaxSegments caps layout segments per job. 0 = 4096.
	MaxSegments int
	// MaxBodyBytes caps the request body. 0 = 8 MiB.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.TenantWorkers == 0 {
		o.TenantWorkers = o.Workers / 4
		if o.TenantWorkers < 1 {
			o.TenantWorkers = 1
		}
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.MaxPoints == 0 {
		o.MaxPoints = 1024
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = 4096
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

func (o Options) validate() error {
	switch {
	case o.Workers < 0:
		return fmt.Errorf("serve: negative workers %d", o.Workers)
	case o.TenantWorkers < 0:
		return fmt.Errorf("serve: negative tenant worker budget %d", o.TenantWorkers)
	case o.QueueDepth < 0:
		return fmt.Errorf("serve: negative queue depth %d", o.QueueDepth)
	case o.CacheBytes < 0:
		return fmt.Errorf("serve: negative kernel-cache byte cap %d", o.CacheBytes)
	case o.MaxPoints < 0 || o.MaxSegments < 0 || o.MaxBodyBytes < 0:
		return fmt.Errorf("serve: negative job limit")
	}
	return nil
}

// Server is the extraction-as-a-service daemon state: the shared
// bounded kernel cache, the slot scheduler, and the counters /statz
// reports. Create one with New and mount Handler on an http.Server.
type Server struct {
	opt   Options
	cache *extract.KernelCache // shared across tenants, byte-bounded
	sched *scheduler
	mux   *http.ServeMux

	accepted    atomic.Uint64
	completed   atomic.Uint64
	cancelled   atomic.Uint64
	failed      atomic.Uint64
	rejected400 atomic.Uint64
	rejected429 atomic.Uint64
	points      atomic.Uint64

	stageMu sync.Mutex
	stages  map[string]*stageAgg
}

type stageAgg struct {
	count  uint64
	wallNs int64
}

// New builds a Server. Invalid options (negative values) are rejected
// with a one-line error.
func New(opt Options) (*Server, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	s := &Server{
		opt:    opt,
		cache:  extract.NewBoundedCache(opt.CacheBytes),
		sched:  newScheduler(opt.Workers, opt.TenantWorkers, opt.QueueDepth),
		stages: make(map[string]*stageAgg),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats snapshots the shared kernel cache.
func (s *Server) CacheStats() extract.CacheStats { return s.cache.Stats() }

func (s *Server) limits() Limits {
	return Limits{MaxPoints: s.opt.MaxPoints, MaxSegments: s.opt.MaxSegments}
}

// cacheRefFor maps a job's kernelcache choice onto a concrete cache:
// the server's shared bounded cache, a private cache under the same
// byte cap, or none.
func (s *Server) cacheRefFor(j *job) extract.CacheRef {
	switch j.kernelCache {
	case "private":
		return extract.PrivateCacheBytes(s.opt.CacheBytes)
	case "off":
		return extract.NoCache()
	default:
		return extract.CacheRefOf(s.cache)
	}
}

func (s *Server) recordStage(name string, wall time.Duration) {
	s.stageMu.Lock()
	agg := s.stages[name]
	if agg == nil {
		agg = &stageAgg{}
		s.stages[name] = agg
	}
	agg.count++
	agg.wallNs += wall.Nanoseconds()
	s.stageMu.Unlock()
}

func (s *Server) recordPipeline(pl *engine.Pipeline) {
	for _, st := range pl.Stages() {
		s.recordStage(st.Name, st.Wall)
	}
}

// errorJSON is the structured body of every non-200 response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(errorJSON{Error: msg})
}

// pointJSON is one NDJSON stream line: a completed sweep point. Interp
// marks rows an adaptive sweep filled from the rational interpolant
// rather than a solve.
type pointJSON struct {
	FreqHz float64 `json:"freq_hz"`
	ROhm   float64 `json:"r_ohm"`
	LH     float64 `json:"l_h"`
	Iters  int     `json:"iters,omitempty"`
	Interp bool    `json:"interp,omitempty"`
}

// doneJSON is the stream's final line; its presence tells the client
// the sweep completed rather than being cut off mid-stream.
type doneJSON struct {
	Done      bool   `json:"done"`
	Points    int    `json:"points"`
	Filaments int    `json:"filaments"`
	Solver    string `json:"solver"`
}

// handleSweep runs one job end to end on the caller's goroutine: decode
// and validate, wait for a worker slot (bounded queue, 429 over depth),
// build the solver, then stream sweep points as NDJSON. The request
// context is threaded through every stage, so a client disconnect
// cancels the job at the next point boundary and frees the slot.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a job document to /v1/sweep")
		return
	}
	ctx := r.Context()

	t0 := time.Now()
	jb, err := decodeJob(io.LimitReader(r.Body, s.opt.MaxBodyBytes), s.limits(), s.opt.TenantWorkers)
	s.recordStage("decode", time.Since(t0))
	if err != nil {
		s.rejected400.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	sess, err := engine.NewCheckedWithCache(jb.cfg, s.cacheRefFor(jb))
	if err != nil {
		s.rejected400.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	pl := sess.Pipeline()

	admitted := false
	err = pl.Run(ctx, "queue", func(ctx context.Context) (string, error) {
		var aerr error
		admitted, aerr = s.sched.acquire(ctx, jb.tenant, jb.prio)
		return "", aerr
	})
	if !admitted {
		s.recordPipeline(pl)
		if errors.Is(err, ErrQueueFull) {
			s.rejected429.Add(1)
			writeError(w, http.StatusTooManyRequests, ErrQueueFull.Error())
		}
		// Otherwise the client vanished before admission: nothing was
		// accepted, nothing to write.
		return
	}
	s.accepted.Add(1)
	if err != nil {
		// Admitted, then the client went away while queued; the slot
		// was never held (or was returned by acquire).
		s.cancelled.Add(1)
		s.recordPipeline(pl)
		return
	}
	defer s.sched.release(jb.tenant)
	defer s.recordPipeline(pl)

	var solver *fasthenry.Solver
	err = pl.Run(ctx, "build", func(context.Context) (string, error) {
		sv, err := fasthenry.NewSolver(jb.layout, jb.segs, jb.port, jb.shorts,
			jb.freqs[len(jb.freqs)-1], sess.SolverOptions())
		if err != nil {
			return "", err
		}
		solver = sv
		return fmt.Sprintf("%d filaments", sv.NumFilaments()), nil
	})
	if err != nil {
		if ctx.Err() != nil {
			s.cancelled.Add(1)
			return
		}
		// Build failures are request defects (unknown port node, no
		// closed loop): the geometry was syntactically fine but not
		// solvable as asked. The job was accepted, so it lands in
		// `failed` — accepted == completed + cancelled + failed.
		s.failedJob(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streamed := 0
	err = pl.Run(ctx, "sweep", func(ctx context.Context) (string, error) {
		writePoint := func(p fasthenry.Point) error {
			if err := enc.Encode(pointJSON{
				FreqHz: p.Freq, ROhm: p.R, LH: p.L, Iters: p.Iters, Interp: p.Interp,
			}); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			streamed++
			s.points.Add(1)
			return nil
		}
		if jb.cfg.SweepMode.Adapt(len(jb.freqs)) {
			// Adaptive sweeps solve only the anchor frequencies the
			// rational fit requests, so rows cannot stream point by
			// point; the whole sweep (cancellable between anchor solves
			// via ctx) runs first, then streams.
			pts, err := solver.SweepParallelCtx(ctx, jb.freqs, jb.cfg.Workers)
			if err != nil {
				return "", err
			}
			for _, p := range pts {
				if err := writePoint(p); err != nil {
					return "", err
				}
			}
			return fmt.Sprintf("%d points", streamed), nil
		}
		for _, f := range jb.freqs {
			if err := ctx.Err(); err != nil {
				return fmt.Sprintf("%d/%d points", streamed, len(jb.freqs)), err
			}
			pts, err := solver.Sweep([]float64{f})
			if err != nil {
				return "", err
			}
			if err := writePoint(pts[0]); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("%d points", streamed), nil
	})
	if err != nil {
		if ctx.Err() != nil {
			s.cancelled.Add(1)
		} else if streamed == 0 {
			s.failedJob(w, http.StatusUnprocessableEntity, err)
		} else {
			// Mid-stream failure: the status line is long gone; the
			// missing done line tells the client the stream is partial.
			s.failed.Add(1)
		}
		return
	}
	if err := enc.Encode(doneJSON{
		Done: true, Points: streamed,
		Filaments: solver.NumFilaments(),
		Solver:    solver.SolveModeInUse().String(),
	}); err != nil {
		s.failed.Add(1)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	s.completed.Add(1)
}

// failedJob reports a job that died before any point was streamed.
func (s *Server) failedJob(w http.ResponseWriter, code int, err error) {
	s.failed.Add(1)
	writeError(w, code, err.Error())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statzJSON is the /statz document. Field order is fixed by the struct
// so the golden suite can pin the shape.
type statzJSON struct {
	QueueDepth     int         `json:"queue_depth"`
	Running        int         `json:"running"`
	Workers        int         `json:"workers"`
	TenantBudget   int         `json:"tenant_budget"`
	QueueCap       int         `json:"queue_cap"`
	Accepted       uint64      `json:"accepted"`
	Completed      uint64      `json:"completed"`
	Cancelled      uint64      `json:"cancelled"`
	Failed         uint64      `json:"failed"`
	Rejected400    uint64      `json:"rejected_400"`
	Rejected429    uint64      `json:"rejected_429"`
	PointsStreamed uint64      `json:"points_streamed"`
	Cache          cacheJSON   `json:"cache"`
	Stages         []stageJSON `json:"stages"`
}

type cacheJSON struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	CapBytes  int64  `json:"cap_bytes"`
	Evictions uint64 `json:"evictions"`
}

type stageJSON struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	WallNs int64  `json:"wall_ns"`
}

// Statz snapshots the server counters (the same document /statz
// serves).
func (s *Server) Statz() statzJSON {
	cs := s.cache.Stats()
	doc := statzJSON{
		QueueDepth:     s.sched.queueDepth(),
		Running:        s.sched.runningTotal(),
		Workers:        s.opt.Workers,
		TenantBudget:   s.opt.TenantWorkers,
		QueueCap:       s.opt.QueueDepth,
		Accepted:       s.accepted.Load(),
		Completed:      s.completed.Load(),
		Cancelled:      s.cancelled.Load(),
		Failed:         s.failed.Load(),
		Rejected400:    s.rejected400.Load(),
		Rejected429:    s.rejected429.Load(),
		PointsStreamed: s.points.Load(),
		Cache: cacheJSON{
			Hits: cs.Hits, Misses: cs.Misses, Entries: cs.Entries,
			Bytes: cs.Bytes, CapBytes: cs.CapBytes, Evictions: cs.Evictions,
		},
	}
	s.stageMu.Lock()
	for name, agg := range s.stages {
		doc.Stages = append(doc.Stages, stageJSON{Name: name, Count: agg.count, WallNs: agg.wallNs})
	}
	s.stageMu.Unlock()
	sort.Slice(doc.Stages, func(i, j int) bool { return doc.Stages[i].Name < doc.Stages[j].Name })
	return doc
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	out, err := json.MarshalIndent(s.Statz(), "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(out, '\n'))
}
