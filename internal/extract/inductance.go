// Package extract computes the partial circuit elements of the PEEC
// model from layout geometry: segment resistance, partial self and
// mutual inductance, and ground/coupling capacitance.
//
// Partial inductances follow Ruehli's PEEC formulation (IBM JRD 1972):
// each conductor segment gets a partial self inductance, and every pair
// of parallel segments a partial mutual inductance, evaluated with the
// closed-form Neumann integral for parallel filaments combined with the
// geometric-mean-distance (GMD) treatment of rectangular cross-sections
// (Grover 1946; Hoer & Love 1965). Skin effect is not included here —
// as the paper notes, very wide conductors must be split into narrower
// lines first (see internal/fasthenry for the frequency-dependent
// filament solver).
package extract

import (
	"math"
	"sort"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
	"inductance101/internal/units"
)

// SelfGMDFactor is the classical approximation for the geometric mean
// distance of a rectangular cross-section from itself:
// R_self ≈ 0.2235 (w + t). Exact for squares to ~0.1%, good to ~2% for
// aspect ratios up to ~10 (Grover, "Inductance Calculations", ch. 3).
const SelfGMDFactor = 0.2235

// filamentK is the second antiderivative of 1/sqrt(u^2+d^2):
// K(u) = u asinh(u/d) - sqrt(u^2 + d^2), an even function of u.
func filamentK(u, d float64) float64 {
	if d == 0 {
		// The ln(d) terms cancel in the four-term combination because
		// the signed u coefficients sum to zero; use the d->0 limit.
		if u == 0 {
			return 0
		}
		au := math.Abs(u)
		return au*math.Log(2*au) - au
	}
	return u*math.Asinh(u/d) - math.Hypot(u, d)
}

// MutualFilaments returns the mutual inductance (H) of two parallel
// filaments: filament a of length la starting at axis coordinate 0,
// filament b of length lb starting at axis coordinate s, separated by
// perpendicular distance d > 0 (or d == 0 for collinear non-overlapping
// filaments).
//
// M = (mu0 / 4 pi) [ K(s+lb) + K(s-la) - K(s) - K(s+lb-la) ].
func MutualFilaments(la, lb, s, d float64) float64 {
	if la <= 0 || lb <= 0 {
		return 0
	}
	k := filamentK(s+lb, d) + filamentK(s-la, d) - filamentK(s, d) - filamentK(s+lb-la, d)
	return units.Mu0 / (4 * math.Pi) * k
}

// SelfInductanceBar returns the partial self inductance (H) of a
// rectangular bar of length l, width w and thickness t, using the GMD of
// the cross-section from itself as the effective filament spacing.
func SelfInductanceBar(l, w, t float64) float64 {
	if l <= 0 {
		return 0
	}
	g := SelfGMDFactor * (w + t)
	if g <= 0 {
		g = 1e-12 // degenerate cross-section: fall back to a hair filament
	}
	return MutualFilaments(l, l, 0, g)
}

// RuehliSelfInductance is the log-form approximation
// L = (mu0 l / 2 pi) [ ln(2l/(w+t)) + 1/2 + 0.2235 (w+t)/l ]
// used as an independent cross-check in tests (valid for l >> w+t).
func RuehliSelfInductance(l, w, t float64) float64 {
	if l <= 0 || w+t <= 0 {
		return 0
	}
	return units.Mu0 * l / (2 * math.Pi) *
		(math.Log(2*l/(w+t)) + 0.5 + SelfGMDFactor*(w+t)/l)
}

// GMDOptions controls mutual-inductance cross-section handling.
type GMDOptions struct {
	// Numeric enables 4-D Gauss–Legendre evaluation of the exact
	// cross-section GMD when two bars are closer than NumericRatio
	// times the sum of their half-widths. Beyond that range the
	// centre-to-centre distance is an excellent GMD approximation.
	Numeric      bool
	NumericRatio float64 // default 3
	Order        int     // quadrature points per dimension, default 6
}

// gauss points/weights on [-1, 1] for orders 2..8 would be overkill;
// order 6 covers the accuracy needed (GMD integrand is smooth).
var gauss6X = []float64{
	-0.9324695142031521, -0.6612093864662645, -0.2386191860831969,
	0.2386191860831969, 0.6612093864662645, 0.9324695142031521,
}
var gauss6W = []float64{
	0.1713244923791704, 0.3607615730481386, 0.4679139345726910,
	0.4679139345726910, 0.3607615730481386, 0.1713244923791704,
}

// NumericGMD computes the geometric mean distance between two
// rectangular cross-sections: exp of the area-averaged ln distance.
// Rectangle a spans [ax0,ax0+aw] x [az0,az0+at] in the cross-section
// plane; rectangle b likewise.
//
// Valid only for DISJOINT rectangles: for overlapping or identical
// cross-sections the ln r singularity defeats fixed-order quadrature
// (use SelfGMDFactor for the self case). Touching rectangles are fine —
// the singular set has measure zero and Gauss nodes stay interior.
func NumericGMD(ax0, aw, az0, at, bx0, bw, bz0, bt float64) float64 {
	sum := 0.0
	for i, xi := range gauss6X {
		xa := ax0 + aw*(xi+1)/2
		for j, zj := range gauss6X {
			za := az0 + at*(zj+1)/2
			for k, xk := range gauss6X {
				xb := bx0 + bw*(xk+1)/2
				for m, zm := range gauss6X {
					zb := bz0 + bt*(zm+1)/2
					r := math.Hypot(xa-xb, za-zb)
					if r < 1e-18 {
						r = 1e-18
					}
					sum += gauss6W[i] * gauss6W[j] * gauss6W[k] * gauss6W[m] * math.Log(r)
				}
			}
		}
	}
	// Each Gauss sum over [-1,1] carries weight total 2; normalize by 2^4.
	return math.Exp(sum / 16)
}

// MutualBars returns the partial mutual inductance (H) between two
// parallel rectangular bars given their ParallelGeometry and widths/
// thicknesses, using the filament formula at the cross-section GMD.
func MutualBars(pg geom.ParallelGeometry, wa, ta, wb, tb float64, opt GMDOptions) float64 {
	if pg.La <= 0 || pg.Lb <= 0 {
		return 0
	}
	d := pg.D
	if opt.Numeric {
		ratio := opt.NumericRatio
		if ratio <= 0 {
			ratio = 3
		}
		if d < ratio*(wa+wb)/2 {
			// Cross-sections in the (cross-axis, z) plane. Place a at
			// origin, b at (D, 0): we only know the scalar distance, so
			// model the offset entirely along the cross axis — exact for
			// same-layer neighbours, a good proxy across layers.
			d = NumericGMD(-wa/2, wa, -ta/2, ta, pg.D-wb/2, wb, -tb/2, tb)
		}
	}
	if d <= 0 {
		// Overlapping centre lines (e.g. stacked segments): use the
		// mean self-GMD as a regularized spacing.
		d = SelfGMDFactor * (wa + ta + wb + tb) / 2
	}
	return MutualFilaments(pg.La, pg.Lb, pg.S, d)
}

// InductanceMatrix assembles the partial inductance matrix for the given
// segments of a layout. window limits mutual computation to segment
// pairs whose perpendicular distance is below window (use +Inf for the
// full dense PEEC matrix). The result is symmetric with positive
// diagonal.
//
// Kernel evaluations go through the geometry-keyed cache named by cache
// (see cache.go — the zero CacheRef is the process-wide default): each
// unique relative pair geometry is computed once, and every value is
// bit-identical to the uncached path. With a finite window the candidate
// pairs come from a uniform-grid spatial index instead of the all-pairs
// scan, making windowed assembly O(n·k) in the neighbour count k.
func InductanceMatrix(l *geom.Layout, segs []int, window float64, opt GMDOptions, cache CacheRef) *matrix.Dense {
	n := len(segs)
	m := matrix.NewDense(n, n)
	pairs := pairCandidates(l, segs, window)
	c := cache.Cache()
	for i := 0; i < n; i++ {
		fillInductanceRow(l, segs, window, opt, m, i, pairs, c)
	}
	return m
}

// pairCandidates returns, for each position i in segs, the sorted
// positions j > i whose segments might lie within the perpendicular
// window (a bounding-box superset from the spatial index; callers
// re-check with Parallel and the exact D test). A nil return means "all
// j > i" — used when the window is unbounded, where an index prunes
// nothing.
func pairCandidates(l *geom.Layout, segs []int, window float64) [][]int {
	if math.IsInf(window, 1) || len(segs) < 2 {
		return nil
	}
	idx := geom.NewIndex(l, 0)
	pos := make(map[int]int, len(segs))
	for i, si := range segs {
		pos[si] = i
	}
	pairs := make([][]int, len(segs))
	for i, si := range segs {
		var row []int
		for _, c := range idx.ParallelCandidates(si, window) {
			if j, ok := pos[c]; ok && j > i {
				row = append(row, j)
			}
		}
		sort.Ints(row)
		pairs[i] = row
	}
	return pairs
}

// fillInductanceRow computes the diagonal entry and the mutuals of row
// i, visiting either the indexed candidate list or every j > i. c is the
// resolved kernel cache (nil = compute directly).
func fillInductanceRow(l *geom.Layout, segs []int, window float64, opt GMDOptions, m *matrix.Dense, i int, pairs [][]int, c *KernelCache) {
	n := len(segs)
	si := &l.Segments[segs[i]]
	t := l.Layers[si.Layer].Thickness
	m.Set(i, i, c.SelfInductanceBar(si.Length, si.Width, t))
	visit := func(j int) {
		sj := &l.Segments[segs[j]]
		pg, ok := l.Parallel(segs[i], segs[j])
		if !ok || pg.D > window {
			return
		}
		tj := l.Layers[sj.Layer].Thickness
		v := c.MutualBars(pg, si.Width, t, sj.Width, tj, opt)
		m.Set(i, j, v)
		m.Set(j, i, v)
	}
	if pairs != nil {
		for _, j := range pairs[i] {
			visit(j)
		}
		return
	}
	for j := i + 1; j < n; j++ {
		visit(j)
	}
}

// LoopInductanceTwoWire returns the loop inductance of a signal/return
// pair of equal length l: L_loop = L11 + L22 - 2 M12. Used by tests and
// by the closed-form design guidelines in internal/design.
func LoopInductanceTwoWire(l11, l22, m12 float64) float64 {
	return l11 + l22 - 2*m12
}
