package extract

import (
	"math"
	"sort"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// Options controls a full-layout extraction.
type Options struct {
	// MutualWindow is the maximum perpendicular distance at which
	// partial mutual inductances are computed. +Inf (the default when
	// zero is passed to Extract via DefaultOptions) gives the paper's
	// full dense PEEC matrix; finite values are a pre-sparsification
	// used only to bound extraction cost on huge layouts.
	MutualWindow float64
	// CouplingWindow is the maximum edge-to-edge spacing at which
	// line-to-line coupling capacitance is extracted ("all pairs of
	// adjacent lines" in the paper).
	CouplingWindow float64
	// GMD selects numeric cross-section GMD for close conductors.
	GMD GMDOptions
	// Workers parallelizes the inductance-matrix assembly across CPUs
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Cache names the kernel cache the run consults. The zero value is
	// the process-default cache (subject to the deprecated
	// SetKernelCache switch); sessions pass their own ref for isolation.
	Cache CacheRef
	// SkipInductance leaves Parasitics.L nil. Used by callers that
	// represent the partial-inductance coupling some other way (e.g.
	// the hierarchically compressed operator from CompressInductance)
	// and must not pay the dense n x n assembly.
	SkipInductance bool
}

// DefaultOptions extracts the full dense mutual matrix and couples lines
// within 5x of typical spacing.
func DefaultOptions() Options {
	return Options{
		MutualWindow:   math.Inf(1),
		CouplingWindow: 3e-6,
	}
}

// CapPair is a coupling capacitor between two circuit nodes.
type CapPair struct {
	NodeA, NodeB string
	C            float64
}

// Parasitics is the result of extracting a layout: the inputs to the
// PEEC circuit model of §3 of the paper.
type Parasitics struct {
	// Segs maps matrix/array position to layout segment index.
	Segs []int
	// R[i] is the series resistance of segment Segs[i].
	R []float64
	// L is the (symmetric, dense) partial inductance matrix over Segs.
	L *matrix.Dense
	// CGround[node] is the lumped capacitance to the substrate/ground
	// reference at each node, from the RLC-π split (half the segment's
	// ground capacitance at each end).
	CGround map[string]float64
	// CCoupling lists node-to-node coupling capacitors.
	CCoupling []CapPair
}

// Extract computes the PEEC parasitics of all segments in the layout.
func Extract(l *geom.Layout, opt Options) *Parasitics {
	segs := make([]int, len(l.Segments))
	for i := range segs {
		segs[i] = i
	}
	return ExtractSegments(l, segs, opt)
}

// ExtractSegments computes PEEC parasitics restricted to the given
// segment indices (e.g. a single net plus its neighbourhood).
func ExtractSegments(l *geom.Layout, segs []int, opt Options) *Parasitics {
	if opt.MutualWindow == 0 {
		opt.MutualWindow = math.Inf(1)
	}
	if opt.CouplingWindow == 0 {
		opt.CouplingWindow = 3e-6
	}
	p := &Parasitics{
		Segs:    append([]int(nil), segs...),
		R:       make([]float64, len(segs)),
		CGround: make(map[string]float64),
	}
	for i, si := range segs {
		p.R[i] = Resistance(l, si)
		cg := GroundCap(l, si)
		s := &l.Segments[si]
		p.CGround[s.NodeA] += cg / 2
		p.CGround[s.NodeB] += cg / 2
	}
	if !opt.SkipInductance {
		p.L = InductanceMatrixParallel(l, segs, opt.MutualWindow, opt.GMD, opt.Workers, opt.Cache)
	}
	cc := opt.Cache.Cache()

	// Coupling capacitance between adjacent same-layer parallel lines.
	// Use a spatial index to keep this near-linear; window by spacing.
	idx := geom.NewIndex(l, 0)
	inSet := make(map[int]int, len(segs))
	for i, si := range segs {
		inSet[si] = i
	}
	seen := make(map[[2]int]bool)
	for _, si := range segs {
		for _, sj := range idx.Neighbors(si, opt.CouplingWindow) {
			if _, ok := inSet[sj]; !ok {
				continue
			}
			a, b := si, sj
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			if l.EdgeSpacing(a, b) > opt.CouplingWindow {
				continue
			}
			cv := couplingCap(l, a, b, cc)
			if cv <= 0 {
				continue
			}
			// Split the coupling capacitor across the two end-node
			// pairs, pairing ends by axis position so the halves land
			// between geometrically adjacent nodes.
			sa, sb := &l.Segments[a], &l.Segments[b]
			aLoNode, aHiNode := orderedNodes(sa)
			bLoNode, bHiNode := orderedNodes(sb)
			p.CCoupling = append(p.CCoupling,
				CapPair{NodeA: aLoNode, NodeB: bLoNode, C: cv / 2},
				CapPair{NodeA: aHiNode, NodeB: bHiNode, C: cv / 2},
			)
		}
	}
	sort.Slice(p.CCoupling, func(i, j int) bool {
		if p.CCoupling[i].NodeA != p.CCoupling[j].NodeA {
			return p.CCoupling[i].NodeA < p.CCoupling[j].NodeA
		}
		return p.CCoupling[i].NodeB < p.CCoupling[j].NodeB
	})
	return p
}

// orderedNodes returns (node at low axis coordinate, node at high axis
// coordinate). NodeA is at (X0, Y0), which for positive Length is always
// the low end.
func orderedNodes(s *geom.Segment) (lo, hi string) {
	return s.NodeA, s.NodeB
}

// Stats summarizes an extraction, matching the element-count rows of
// the paper's Table 1.
type Stats struct {
	NumR       int
	NumCGround int
	NumCCouple int
	NumL       int
	NumMutual  int // strictly off-diagonal nonzeros / 2
}

// Stats counts the extracted elements. With SkipInductance the mutual
// count is zero — the caller owns the inductance representation.
func (p *Parasitics) Stats() Stats {
	st := Stats{
		NumR:       len(p.R),
		NumCGround: len(p.CGround),
		NumCCouple: len(p.CCoupling),
		NumL:       len(p.Segs),
	}
	if p.L == nil {
		return st
	}
	n := p.L.Rows()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if p.L.At(i, j) != 0 {
				st.NumMutual++
			}
		}
	}
	return st
}
