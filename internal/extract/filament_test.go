package extract

import (
	"math"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/mesh"
)

// TestFilamentEntryOrthogonalExactlyZero pins the plane-mesh property
// the overlapping X/Y grids rely on: perpendicular filament pairs —
// including crossing ones — couple with exactly zero mutual partial
// inductance, not merely a small number.
func TestFilamentEntryOrthogonalExactlyZero(t *testing.T) {
	fils := []mesh.Filament{
		{Dir: geom.DirX, X0: 0, Y0: 0, Z: 1e-6, Length: 10e-6, W: 1e-6, T: 0.5e-6},
		{Dir: geom.DirY, X0: 5e-6, Y0: -5e-6, Z: 1e-6, Length: 10e-6, W: 1e-6, T: 0.5e-6},
		{Dir: geom.DirY, X0: 40e-6, Y0: 2e-6, Z: 3e-6, Length: 4e-6, W: 2e-6, T: 0.5e-6},
	}
	entry := FilamentEntry(fils, NoCache())
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 0}, {2, 0}} {
		if v := entry(pair[0], pair[1]); v != 0 {
			t.Errorf("entry(%d, %d) = %g for orthogonal filaments, want exactly 0", pair[0], pair[1], v)
		}
	}
}

// TestFilamentEntrySymmetricAndFinite checks argument symmetry (both
// orders canonicalize to one cache key, so the values are bit-equal)
// and the collinear d == 0 regularization.
func TestFilamentEntrySymmetricAndFinite(t *testing.T) {
	fils := []mesh.Filament{
		{Dir: geom.DirX, X0: 0, Y0: 0, Z: 1e-6, Length: 20e-6, W: 1e-6, T: 0.5e-6},
		{Dir: geom.DirX, X0: 0, Y0: 3e-6, Z: 1e-6, Length: 20e-6, W: 1e-6, T: 0.5e-6},
		// Collinear with filament 0: same track, offset along it.
		{Dir: geom.DirX, X0: 25e-6, Y0: 0, Z: 1e-6, Length: 20e-6, W: 1e-6, T: 0.5e-6},
	}
	entry := FilamentEntry(fils, PrivateCache())
	for i := 0; i < len(fils); i++ {
		self := entry(i, i)
		if !(self > 0) || math.IsInf(self, 0) {
			t.Errorf("entry(%d, %d) = %g, want a positive finite self inductance", i, i, self)
		}
		for j := i + 1; j < len(fils); j++ {
			a, b := entry(i, j), entry(j, i)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("entry(%d, %d) = %g but entry(%d, %d) = %g", i, j, a, j, i, b)
			}
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Errorf("entry(%d, %d) = %g, want finite", i, j, a)
			}
		}
	}
	// The parallel pair at 3 um must couple more strongly than the
	// collinear pair a track-length away.
	if near, far := entry(0, 1), entry(0, 2); !(near > far) || !(far > 0) {
		t.Errorf("mutual ordering violated: parallel %g, collinear %g", near, far)
	}
}

// TestFilamentElementsGeometry checks the HElement mapping both ways
// round: routing span, cross coordinate, height and radius.
func TestFilamentElementsGeometry(t *testing.T) {
	fils := []mesh.Filament{
		{Dir: geom.DirX, X0: 2e-6, Y0: 7e-6, Z: 1e-6, Length: 10e-6, W: 3e-6, T: 4e-6},
		{Dir: geom.DirY, X0: 5e-6, Y0: -1e-6, Z: 2e-6, Length: 8e-6, W: 1e-6, T: 0.5e-6},
	}
	elems := FilamentElements(fils)
	if e := elems[0]; e.Dir != int(geom.DirX) || e.A0 != 2e-6 || e.A1 != 12e-6 || e.Cross != 7e-6 || e.Z != 1e-6 {
		t.Errorf("X element mapped to %+v", e)
	}
	if e := elems[1]; e.Dir != int(geom.DirY) || e.A0 != -1e-6 || e.A1 != 7e-6 || e.Cross != 5e-6 || e.Z != 2e-6 {
		t.Errorf("Y element mapped to %+v", e)
	}
	if want := math.Hypot(3e-6, 4e-6) / 2; elems[0].Rad != want {
		t.Errorf("radius %g, want %g", elems[0].Rad, want)
	}
}
