package extract

import (
	"math"
	"math/rand"
	"testing"

	"inductance101/internal/geom"
)

// gridLayout builds an nx x ny Manhattan grid: nx vertical and ny
// horizontal wires — both routing directions, many parallel conductors
// per direction.
func gridLayout(nx, ny int, length, width, pitch float64) (*geom.Layout, []int) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.025, HBelow: 1e-6},
		{Name: "M6", Z: 6e-6, Thickness: 1.1e-6, SheetRho: 0.020, HBelow: 1e-6},
	})
	var segs []int
	for i := 0; i < ny; i++ {
		segs = append(segs, l.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, X0: 0, Y0: float64(i) * pitch,
			Length: length, Width: width, Net: "h", NodeA: "a", NodeB: "b",
		}))
	}
	for i := 0; i < nx; i++ {
		segs = append(segs, l.AddSegment(geom.Segment{
			Layer: 1, Dir: geom.DirY, X0: float64(i) * pitch, Y0: 0,
			Length: length, Width: width, Net: "v", NodeA: "c", NodeB: "d",
		}))
	}
	return l, segs
}

// matvecAgainstDense checks the compressed operator against the dense
// partial-inductance matrix on random vectors.
func matvecAgainstDense(t *testing.T, l *geom.Layout, segs []int, tol float64, rng *rand.Rand, label string) *CompressedL {
	t.Helper()
	op := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Tol: 1e-8}, DefaultCacheRef())
	dense := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	n := len(segs)
	if op.Dim() != n {
		t.Fatalf("%s: dim %d, want %d", label, op.Dim(), n)
	}
	for trial := 0; trial < 3; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		op.ApplyTo(got, x)
		var errN, refN float64
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += dense.At(i, j) * x[j]
			}
			d := got[i] - want
			errN += d * d
			refN += want * want
		}
		if math.Sqrt(errN) > tol*math.Sqrt(refN) {
			t.Errorf("%s trial %d: matvec error %.3g of %.3g",
				label, trial, math.Sqrt(errN), math.Sqrt(refN))
		}
	}
	return op
}

// TestCompressInductanceMatvecBuses is the satellite property test on
// random parallel buses.
func TestCompressInductanceMatvecBuses(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(60)
		pitch := (2 + 6*rng.Float64()) * 1e-6
		length := (200 + 600*rng.Float64()) * 1e-6
		l := makeBusLayout(n, length, 1e-6, pitch)
		segs := make([]int, n)
		for i := range segs {
			segs[i] = i
		}
		matvecAgainstDense(t, l, segs, 1e-6, rng, "bus")
	}
}

// TestCompressInductanceMatvecGrid covers both routing directions: the
// cross-direction blocks are identically zero and must stay so.
func TestCompressInductanceMatvecGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l, segs := gridLayout(9, 9, 300e-6, 1e-6, 8e-6)
	op := matvecAgainstDense(t, l, segs, 1e-6, rng, "grid")
	// A vector supported on DirX wires must produce zero on DirY wires.
	n := len(segs)
	x := make([]float64, n)
	for i := 0; i < 9; i++ { // first 9 are DirX
		x[i] = 1
	}
	y := make([]float64, n)
	op.ApplyTo(y, x)
	for i := 9; i < n; i++ {
		if y[i] != 0 {
			t.Fatalf("cross-direction coupling leaked: y[%d] = %g", i, y[i])
		}
	}
}

// TestCompressedSymmetryExact: the compressed L must be exactly
// symmetric (blocks are stored once and applied both ways), not merely
// symmetric to ACA tolerance.
func TestCompressedSymmetryExact(t *testing.T) {
	l := makeBusLayout(40, 400e-6, 1e-6, 4e-6)
	segs := make([]int, 40)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Tol: 1e-6}, DefaultCacheRef())
	n := op.Dim()
	ei := make([]float64, n)
	col := make([]float64, n)
	get := func(i, j int) float64 {
		ei[i] = 1
		op.ApplyTo(col, ei)
		ei[i] = 0
		return col[j]
	}
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			a, b := get(i, j), get(j, i)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("L(%d,%d)=%v != L(%d,%d)=%v", i, j, a, j, i, b)
			}
		}
	}
}

// TestCompressedDiagAndEachUpper: Diag returns exact self terms; the
// EachUpper walk visits every upper-triangle pair exactly once and
// reconstructs the dense matrix to ACA tolerance (exactly, on near and
// diagonal blocks).
func TestCompressedDiagAndEachUpper(t *testing.T) {
	l := makeBusLayout(30, 350e-6, 1e-6, 3e-6)
	segs := make([]int, 30)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Tol: 1e-8}, DefaultCacheRef())
	dense := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	n := len(segs)
	for i := 0; i < n; i++ {
		if got, want := op.Diag(i), dense.At(i, i); got != want {
			t.Fatalf("Diag(%d) = %g, dense %g", i, got, want)
		}
	}
	seen := make(map[[2]int]float64)
	op.EachUpper(func(i, j int, v float64) {
		if i >= j {
			t.Fatalf("EachUpper visited non-strict pair (%d,%d)", i, j)
		}
		k := [2]int{i, j}
		if _, dup := seen[k]; dup {
			t.Fatalf("pair (%d,%d) visited twice", i, j)
		}
		seen[k] = v
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, ok := seen[[2]int{i, j}]
			if !ok {
				t.Fatalf("pair (%d,%d) never visited", i, j)
			}
			want := dense.At(i, j)
			if math.Abs(v-want) > 1e-6*(1e-12+math.Abs(want)) {
				t.Errorf("EachUpper(%d,%d) = %g, dense %g", i, j, v, want)
			}
		}
	}
}

// TestCompressionActuallyCompresses: on a large regular bus the far
// field must dominate and be stored low-rank — the whole point of the
// operator. Also sanity-checks the stats accounting.
func TestCompressionActuallyCompresses(t *testing.T) {
	n := 160
	l := makeBusLayout(n, 500e-6, 1e-6, 2.5e-6)
	segs := make([]int, n)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Tol: 1e-8}, DefaultCacheRef())
	st := op.Stats()
	if st.FarBlocks == 0 {
		t.Fatal("no low-rank blocks on a 160-wire bus")
	}
	if st.StoredFloats >= st.DenseFloats {
		t.Fatalf("compressed storage %d >= dense %d", st.StoredFloats, st.DenseFloats)
	}
	if r := st.CompressionRatio(); r <= 1 {
		t.Fatalf("compression ratio %g <= 1", r)
	}
	if st.KernelEvals >= st.DenseKernelEntries {
		t.Errorf("kernel evaluations %d not below dense upper triangle %d",
			st.KernelEvals, st.DenseKernelEntries)
	}
}

// TestACAMaxRankFallback: with MaxRank 1 far blocks mostly cannot reach
// tolerance, so the compressor must fall back to dense blocks rather
// than return inaccurate factors.
func TestACAMaxRankFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 40
	l := makeBusLayout(n, 400e-6, 1e-6, 3e-6)
	segs := make([]int, n)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Tol: 1e-12, MaxRank: 1}, DefaultCacheRef())
	dense := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	op.ApplyTo(got, x)
	var errN, refN float64
	for i := 0; i < n; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += dense.At(i, j) * x[j]
		}
		d := got[i] - want
		errN += d * d
		refN += want * want
	}
	// Rank-1-capped blocks that fail tolerance fall back to dense, so
	// the result must still be accurate.
	if math.Sqrt(errN) > 1e-6*math.Sqrt(refN) {
		t.Errorf("MaxRank fallback lost accuracy: %.3g of %.3g",
			math.Sqrt(errN), math.Sqrt(refN))
	}
}
