package extract

import (
	"math"
	"sync"
	"sync/atomic"

	"inductance101/internal/geom"
)

// Geometry-keyed kernel cache.
//
// On the regular structures the paper's experiments run on (buses,
// power grids, H-trees) most parallel segment pairs are translates of a
// handful of unique relative geometries: the mutual-inductance and
// coupling-capacitance kernels depend only on lengths, cross-sections
// and relative offsets, never on absolute position. The cache
// canonicalizes each kernel evaluation into a translation-invariant key
// and memoizes the exact computed value in a sharded, lock-striped
// concurrent map, so repeated geometries are evaluated once per process
// instead of once per pair.
//
// Exactness: the key is the full IEEE-754 bit pattern of every kernel
// input (quantization at full float64 resolution — the finest grid that
// cannot merge two distinct geometries). Two pairs share a cache entry
// only when the kernel would receive bit-identical arguments, and the
// stored value is the kernel's exact output, so cached and uncached
// extraction results are bit-identical. Layouts generated on a layout
// grid (coordinates that are integer multiples of a pitch) produce
// bit-identical coordinate differences for translated pairs, which is
// what makes the hit rate high in practice. A coarser key quantum would
// raise the hit rate further but break exactness, so it is deliberately
// not offered.

// cacheShards is the number of lock stripes; a power of two so shard
// selection is a mask. 64 stripes keep contention negligible at any
// realistic GOMAXPROCS.
const cacheShards = 64

// kernelKind discriminates the memoized kernel families sharing one map.
type kernelKind uint8

const (
	kindSelfBar kernelKind = iota + 1
	kindMutualFilaments
	kindMutualBars
	kindCouplingCapPerLen
)

// kernelKey is the canonical, translation-invariant identity of one
// kernel evaluation: the kind plus the raw bit patterns of up to nine
// float64 arguments (unused slots stay zero). Comparable, so it can key
// a Go map directly.
type kernelKey struct {
	kind kernelKind
	p    [9]uint64
}

// fbits returns the canonical bit pattern of v for keying: -0.0 is
// folded into +0.0 (the kernels cannot distinguish them).
func fbits(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v)
}

// shard hashes the key FNV-1a style onto a stripe.
func (k kernelKey) shard() int {
	h := uint64(k.kind) ^ 0xcbf29ce484222325
	for _, v := range k.p {
		h ^= v
		h *= 0x100000001b3
	}
	// Fold the high bits in so shard choice sees the whole hash.
	return int((h ^ h>>32) & (cacheShards - 1))
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[kernelKey]float64
}

// KernelCache is a sharded memo table for the pure geometry kernels.
// The zero value is ready to use. All methods are safe for concurrent
// use; two goroutines racing on the same missing key both compute the
// (deterministic) value and store identical results.
type KernelCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// getOrCompute returns the cached value for k, computing and storing it
// on a miss.
func (c *KernelCache) getOrCompute(k kernelKey, compute func() float64) float64 {
	sh := &c.shards[k.shard()]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	v = compute()
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[kernelKey]float64)
	}
	sh.m[k] = v
	sh.mu.Unlock()
	return v
}

// reset drops every entry and zeroes the counters.
func (c *KernelCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// entries counts the stored values across shards.
func (c *KernelCache) entries() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// The process-wide cache the extraction paths consult. On by default;
// the CLIs expose -kernelcache=off as an escape hatch (and the
// equivalence tests flip it to prove bit-identity).
var (
	defaultCache  KernelCache
	cacheDisabled atomic.Bool // zero value = enabled
)

// SetKernelCache enables or disables the process-wide kernel cache.
// Disabling does not drop stored entries (re-enabling resumes hits);
// use ResetKernelCache to free them.
func SetKernelCache(on bool) {
	cacheDisabled.Store(!on)
}

// KernelCacheEnabled reports whether the process-wide cache is active.
func KernelCacheEnabled() bool { return !cacheDisabled.Load() }

// ResetKernelCache drops every memoized kernel value and zeroes the
// hit/miss counters. Useful between benchmark runs and after processing
// one layout when memory matters more than warm-start hits.
func ResetKernelCache() {
	defaultCache.reset()
}

// CacheStats is a snapshot of the kernel cache counters.
type CacheStats struct {
	Enabled bool
	Hits    uint64
	Misses  uint64
	Entries int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}

// KernelCacheStats snapshots the process-wide cache counters.
func KernelCacheStats() CacheStats {
	return CacheStats{
		Enabled: KernelCacheEnabled(),
		Hits:    defaultCache.hits.Load(),
		Misses:  defaultCache.misses.Load(),
		Entries: defaultCache.entries(),
	}
}

// SelfInductanceBarCached is SelfInductanceBar through the kernel
// cache: bit-identical to the direct call, computed once per unique
// (l, w, t).
func SelfInductanceBarCached(l, w, t float64) float64 {
	if cacheDisabled.Load() {
		return SelfInductanceBar(l, w, t)
	}
	k := kernelKey{kind: kindSelfBar}
	k.p[0], k.p[1], k.p[2] = fbits(l), fbits(w), fbits(t)
	return defaultCache.getOrCompute(k, func() float64 {
		return SelfInductanceBar(l, w, t)
	})
}

// MutualFilamentsCached is MutualFilaments through the kernel cache —
// the memo the FastHenry-style filament-matrix assembly uses, where a
// regular discretization repeats the same relative filament geometry
// thousands of times.
func MutualFilamentsCached(la, lb, s, d float64) float64 {
	if cacheDisabled.Load() {
		return MutualFilaments(la, lb, s, d)
	}
	k := kernelKey{kind: kindMutualFilaments}
	k.p[0], k.p[1], k.p[2], k.p[3] = fbits(la), fbits(lb), fbits(s), fbits(d)
	return defaultCache.getOrCompute(k, func() float64 {
		return MutualFilaments(la, lb, s, d)
	})
}

// MutualBarsCached is MutualBars through the kernel cache. The key is
// the pair's translation-invariant relative geometry (lengths,
// longitudinal offset, perpendicular distance, both cross-sections)
// plus the GMD options that steer the evaluation. GMDOptions.Order is
// not part of the key because NumericGMD's quadrature order is fixed
// (see the gauss6 tables); if it ever becomes configurable it must join
// the key.
func MutualBarsCached(pg geom.ParallelGeometry, wa, ta, wb, tb float64, opt GMDOptions) float64 {
	if cacheDisabled.Load() {
		return MutualBars(pg, wa, ta, wb, tb, opt)
	}
	k := kernelKey{kind: kindMutualBars}
	k.p[0], k.p[1], k.p[2], k.p[3] = fbits(pg.La), fbits(pg.Lb), fbits(pg.S), fbits(pg.D)
	k.p[4], k.p[5], k.p[6], k.p[7] = fbits(wa), fbits(ta), fbits(wb), fbits(tb)
	if opt.Numeric {
		ratio := opt.NumericRatio
		if ratio <= 0 {
			ratio = 3 // MutualBars' own default; canonicalize so 0 and 3 share entries
		}
		k.p[8] = fbits(ratio)
	}
	return defaultCache.getOrCompute(k, func() float64 {
		return MutualBars(pg, wa, ta, wb, tb, opt)
	})
}

// couplingCapPerLengthCached memoizes CouplingCapPerLength; the two
// math.Pow calls dominate coupling-capacitance extraction on large
// regular layouts.
func couplingCapPerLengthCached(w, t, h, s float64) float64 {
	if cacheDisabled.Load() {
		return CouplingCapPerLength(w, t, h, s)
	}
	k := kernelKey{kind: kindCouplingCapPerLen}
	k.p[0], k.p[1], k.p[2], k.p[3] = fbits(w), fbits(t), fbits(h), fbits(s)
	return defaultCache.getOrCompute(k, func() float64 {
		return CouplingCapPerLength(w, t, h, s)
	})
}
