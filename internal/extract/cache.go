package extract

import (
	"math"
	"sync"
	"sync/atomic"

	"inductance101/internal/geom"
)

// Geometry-keyed kernel cache.
//
// On the regular structures the paper's experiments run on (buses,
// power grids, H-trees) most parallel segment pairs are translates of a
// handful of unique relative geometries: the mutual-inductance and
// coupling-capacitance kernels depend only on lengths, cross-sections
// and relative offsets, never on absolute position. The cache
// canonicalizes each kernel evaluation into a translation-invariant key
// and memoizes the exact computed value in a sharded, lock-striped
// concurrent map, so repeated geometries are evaluated once per process
// instead of once per pair.
//
// Exactness: the key is the full IEEE-754 bit pattern of every kernel
// input (quantization at full float64 resolution — the finest grid that
// cannot merge two distinct geometries). Two pairs share a cache entry
// only when the kernel would receive bit-identical arguments, and the
// stored value is the kernel's exact output, so cached and uncached
// extraction results are bit-identical. Layouts generated on a layout
// grid (coordinates that are integer multiples of a pitch) produce
// bit-identical coordinate differences for translated pairs, which is
// what makes the hit rate high in practice. A coarser key quantum would
// raise the hit rate further but break exactness, so it is deliberately
// not offered.

// cacheShards is the number of lock stripes; a power of two so shard
// selection is a mask. 64 stripes keep contention negligible at any
// realistic GOMAXPROCS.
const cacheShards = 64

// kernelKind discriminates the memoized kernel families sharing one map.
type kernelKind uint8

const (
	kindSelfBar kernelKind = iota + 1
	kindMutualFilaments
	kindMutualBars
	kindCouplingCapPerLen
)

// kernelKey is the canonical, translation-invariant identity of one
// kernel evaluation: the kind plus the raw bit patterns of up to nine
// float64 arguments (unused slots stay zero). Comparable, so it can key
// a Go map directly.
type kernelKey struct {
	kind kernelKind
	p    [9]uint64
}

// fbits returns the canonical bit pattern of v for keying: -0.0 is
// folded into +0.0 (the kernels cannot distinguish them).
func fbits(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v)
}

// shard hashes the key FNV-1a style onto a stripe.
func (k kernelKey) shard() int {
	h := uint64(k.kind) ^ 0xcbf29ce484222325
	for _, v := range k.p {
		h ^= v
		h *= 0x100000001b3
	}
	// Fold the high bits in so shard choice sees the whole hash.
	return int((h ^ h>>32) & (cacheShards - 1))
}

// cacheEntry is one resident kernel value plus its CLOCK reference
// bit. The bit is set atomically on hits (under the shard read lock)
// and inspected/cleared by the evictor (under the shard write lock), so
// hits never upgrade to the write lock.
type cacheEntry struct {
	val float64
	ref atomic.Bool
}

// entryBytes is the accounted footprint of one resident entry: the
// 80-byte key stored twice (map key + CLOCK ring slot), the boxed
// entry, the map's pointer value, and amortized map-bucket overhead.
// A deliberately conservative flat constant so the byte accounting is
// exact and deterministic: resident bytes == entries * entryBytes.
const entryBytes = 256

type cacheShard struct {
	mu    sync.RWMutex
	m     map[kernelKey]*cacheEntry
	ring  []kernelKey // CLOCK ring over resident keys
	hand  int
	bytes int64
}

// evictOne runs the CLOCK hand until it finds an entry with a clear
// reference bit and evicts it. Called with the shard write lock held
// and at least one resident entry.
func (sh *cacheShard) evictOne(evictions *atomic.Uint64) {
	for {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		k := sh.ring[sh.hand]
		e := sh.m[k]
		if e.ref.Load() {
			// Second chance: clear the bit, advance the hand.
			e.ref.Store(false)
			sh.hand++
			continue
		}
		delete(sh.m, k)
		last := len(sh.ring) - 1
		sh.ring[sh.hand] = sh.ring[last]
		sh.ring = sh.ring[:last]
		sh.bytes -= entryBytes
		evictions.Add(1)
		return
	}
}

// trim evicts until the shard holds at most maxEntries entries
// (maxEntries < 0 means unbounded). Called with the write lock held.
func (sh *cacheShard) trim(maxEntries int, evictions *atomic.Uint64) {
	if maxEntries < 0 {
		return
	}
	for len(sh.m) > maxEntries {
		sh.evictOne(evictions)
	}
}

// KernelCache is a sharded memo table for the pure geometry kernels.
// The zero value is ready to use and unbounded. All methods are safe
// for concurrent use; two goroutines racing on the same missing key
// both compute the (deterministic) value and store identical results.
//
// A cache that lives in a long-running process sets a byte capacity
// (SetCapacity / NewBoundedCache): resident entries are then evicted
// with a sharded CLOCK policy (each insert over budget gives every
// resident entry a second chance before reclaiming it), so the cache's
// accounted footprint never exceeds the cap. Eviction only discards
// memoized values — a re-miss recomputes the exact same bits — so
// bounded and unbounded caches stay bit-identical in results.
type KernelCache struct {
	shards    [cacheShards]cacheShard
	capBytes  atomic.Int64 // 0 = unbounded
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewBoundedCache returns a fresh cache capped at capBytes of accounted
// entry footprint (<= 0 means unbounded). Callers that need several
// runs to share one bounded cache wrap it with CacheRefOf.
func NewBoundedCache(capBytes int64) *KernelCache {
	c := new(KernelCache)
	c.SetCapacity(capBytes)
	return c
}

// SetCapacity bounds the cache's accounted resident footprint to
// capBytes (<= 0 removes the bound). Shrinking trims each shard to the
// new budget immediately. The budget is split evenly across the 64
// shards, so caps below 64*entryBytes (16 KiB) leave some shards with
// no budget at all; such shards stop memoizing rather than thrash.
func (c *KernelCache) SetCapacity(capBytes int64) {
	if capBytes < 0 {
		capBytes = 0
	}
	c.capBytes.Store(capBytes)
	max := c.shardMaxEntries()
	if max < 0 {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.trim(max, &c.evictions)
		sh.mu.Unlock()
	}
}

// Capacity returns the byte cap (0 = unbounded).
func (c *KernelCache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capBytes.Load()
}

// shardMaxEntries converts the byte cap into a per-shard entry budget:
// -1 for unbounded, otherwise floor(cap/shards/entryBytes).
func (c *KernelCache) shardMaxEntries() int {
	cap := c.capBytes.Load()
	if cap <= 0 {
		return -1
	}
	return int(cap / cacheShards / entryBytes)
}

// getOrCompute returns the cached value for k, computing and storing it
// on a miss (evicting first if the shard is at its budget).
func (c *KernelCache) getOrCompute(k kernelKey, compute func() float64) float64 {
	sh := &c.shards[k.shard()]
	sh.mu.RLock()
	e, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		e.ref.Store(true)
		c.hits.Add(1)
		return e.val
	}
	c.misses.Add(1)
	v := compute()
	max := c.shardMaxEntries()
	if max == 0 {
		// No per-shard budget at this cap: stay a pure pass-through.
		return v
	}
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		// A racing goroutine stored the (identical) value first.
		sh.mu.Unlock()
		return e.val
	}
	if sh.m == nil {
		sh.m = make(map[kernelKey]*cacheEntry)
	}
	if max > 0 {
		sh.trim(max-1, &c.evictions)
	}
	sh.m[k] = &cacheEntry{val: v}
	sh.ring = append(sh.ring, k)
	sh.bytes += entryBytes
	sh.mu.Unlock()
	return v
}

// reset drops every entry and zeroes the counters (the byte capacity is
// retained).
func (c *KernelCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.ring = nil
		sh.hand = 0
		sh.bytes = 0
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// entries counts the stored values across shards.
func (c *KernelCache) entries() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// residentBytes sums the accounted footprint across shards.
func (c *KernelCache) residentBytes() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += sh.bytes
		sh.mu.RUnlock()
	}
	return n
}

// The process-wide cache the deprecated package-level extraction paths
// consult. On by default; the CLIs once exposed -kernelcache=off through
// SetKernelCache, and the equivalence tests still flip it to prove
// bit-identity. New code selects a cache per run with a CacheRef.
var (
	defaultCache  KernelCache
	cacheDisabled atomic.Bool // zero value = enabled
)

// SetKernelCache enables or disables the process-wide kernel cache.
// Disabling does not drop stored entries (re-enabling resumes hits);
// use ResetKernelCache to free them.
//
// Deprecated: SetKernelCache mutates process-wide state, so two analyses
// with different cache settings cannot coexist. New code should thread a
// CacheRef (NoCache, PrivateCache, or the default) through
// extract.Options / the *InductanceMatrix* entry points instead — see
// internal/engine for the config that builds one per run. The shim
// remains so existing call sites keep their exact behavior.
func SetKernelCache(on bool) {
	cacheDisabled.Store(!on)
}

// KernelCacheEnabled reports whether the process-wide cache is active.
func KernelCacheEnabled() bool { return !cacheDisabled.Load() }

// ResetKernelCache drops every memoized kernel value and zeroes the
// hit/miss counters. Useful between benchmark runs and after processing
// one layout when memory matters more than warm-start hits.
func ResetKernelCache() {
	defaultCache.reset()
}

// DefaultKernelCache returns the process-wide cache, so long-running
// owners can bound it (SetCapacity) or inspect it directly. The
// returned cache is shared state: capping it affects every run that
// resolves a default CacheRef.
func DefaultKernelCache() *KernelCache { return &defaultCache }

// CacheStats is a snapshot of the kernel cache counters.
type CacheStats struct {
	Enabled bool
	Hits    uint64
	Misses  uint64
	Entries int
	// Bytes is the accounted resident footprint (Entries * entryBytes);
	// it never exceeds CapBytes when a cap is set.
	Bytes int64
	// CapBytes is the byte capacity (0 = unbounded).
	CapBytes int64
	// Evictions counts entries reclaimed by the CLOCK policy.
	Evictions uint64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}

// KernelCacheStats snapshots the process-wide cache counters.
func KernelCacheStats() CacheStats {
	st := defaultCache.Stats()
	st.Enabled = KernelCacheEnabled()
	return st
}

// Stats snapshots this cache's counters. A nil receiver (the disabled
// cache a NoCache ref resolves to) reports Enabled=false.
func (c *KernelCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:   true,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Entries:   c.entries(),
		Bytes:     c.residentBytes(),
		CapBytes:  c.capBytes.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Reset drops every memoized value and zeroes the counters. No-op on a
// nil receiver.
func (c *KernelCache) Reset() {
	if c != nil {
		c.reset()
	}
}

// cacheRefKind discriminates how a CacheRef resolves to a cache.
type cacheRefKind uint8

const (
	cacheRefDefault cacheRefKind = iota // process default, honoring SetKernelCache
	cacheRefOff                         // no memoization
	cacheRefOwned                       // an explicit cache instance
)

// CacheRef names which kernel cache an extraction run consults. It is a
// small value meant to be embedded in option structs and threaded down
// call chains. The zero value resolves to the process-default cache at
// each use, honoring the deprecated SetKernelCache switch — so an unset
// config reproduces the legacy behavior exactly. Sessions that need
// isolation hold a PrivateCache ref; runs that must not memoize use
// NoCache.
type CacheRef struct {
	kind cacheRefKind
	c    *KernelCache
}

// DefaultCacheRef returns the zero CacheRef: the process-default cache,
// subject to the deprecated SetKernelCache switch.
func DefaultCacheRef() CacheRef { return CacheRef{} }

// NoCache returns a ref that disables kernel memoization for the runs
// that carry it. Results are bit-identical with and without the cache;
// this only trades recomputation for memory.
func NoCache() CacheRef { return CacheRef{kind: cacheRefOff} }

// PrivateCache returns a ref owning a fresh cache, isolated from the
// process default and from every other session.
func PrivateCache() CacheRef { return CacheRef{kind: cacheRefOwned, c: new(KernelCache)} }

// PrivateCacheBytes is PrivateCache with a byte cap on the fresh
// cache's resident footprint (<= 0 means unbounded).
func PrivateCacheBytes(capBytes int64) CacheRef {
	return CacheRef{kind: cacheRefOwned, c: NewBoundedCache(capBytes)}
}

// CacheRefOf wraps an existing cache so several runs can share it
// explicitly. A nil cache behaves like NoCache.
func CacheRefOf(c *KernelCache) CacheRef {
	if c == nil {
		return NoCache()
	}
	return CacheRef{kind: cacheRefOwned, c: c}
}

// Cache resolves the ref to a concrete cache: nil means "compute
// directly" (every kernel method on *KernelCache accepts a nil receiver
// and falls through to the uncached kernel). The default ref re-reads
// the SetKernelCache switch on every call, preserving shim semantics.
func (r CacheRef) Cache() *KernelCache {
	switch r.kind {
	case cacheRefOff:
		return nil
	case cacheRefOwned:
		return r.c
	default:
		if cacheDisabled.Load() {
			return nil
		}
		return &defaultCache
	}
}

// Stats snapshots the counters of the cache the ref resolves to.
func (r CacheRef) Stats() CacheStats { return r.Cache().Stats() }

// Reset drops the resolved cache's entries (no-op for NoCache).
func (r CacheRef) Reset() { r.Cache().Reset() }

// SelfInductanceBar evaluates the self-inductance kernel through the
// cache: bit-identical to the direct call, computed once per unique
// (l, w, t). A nil receiver computes directly.
func (c *KernelCache) SelfInductanceBar(l, w, t float64) float64 {
	if c == nil {
		return SelfInductanceBar(l, w, t)
	}
	k := kernelKey{kind: kindSelfBar}
	k.p[0], k.p[1], k.p[2] = fbits(l), fbits(w), fbits(t)
	return c.getOrCompute(k, func() float64 {
		return SelfInductanceBar(l, w, t)
	})
}

// MutualFilaments evaluates the filament mutual-inductance kernel
// through the cache — the memo the FastHenry-style filament-matrix
// assembly uses, where a regular discretization repeats the same
// relative filament geometry thousands of times.
func (c *KernelCache) MutualFilaments(la, lb, s, d float64) float64 {
	if c == nil {
		return MutualFilaments(la, lb, s, d)
	}
	k := kernelKey{kind: kindMutualFilaments}
	k.p[0], k.p[1], k.p[2], k.p[3] = fbits(la), fbits(lb), fbits(s), fbits(d)
	return c.getOrCompute(k, func() float64 {
		return MutualFilaments(la, lb, s, d)
	})
}

// MutualBars evaluates the bar mutual-inductance kernel through the
// cache. The key is the pair's translation-invariant relative geometry
// (lengths, longitudinal offset, perpendicular distance, both
// cross-sections) plus the GMD options that steer the evaluation.
// GMDOptions.Order is not part of the key because NumericGMD's
// quadrature order is fixed (see the gauss6 tables); if it ever becomes
// configurable it must join the key.
func (c *KernelCache) MutualBars(pg geom.ParallelGeometry, wa, ta, wb, tb float64, opt GMDOptions) float64 {
	if c == nil {
		return MutualBars(pg, wa, ta, wb, tb, opt)
	}
	k := kernelKey{kind: kindMutualBars}
	k.p[0], k.p[1], k.p[2], k.p[3] = fbits(pg.La), fbits(pg.Lb), fbits(pg.S), fbits(pg.D)
	k.p[4], k.p[5], k.p[6], k.p[7] = fbits(wa), fbits(ta), fbits(wb), fbits(tb)
	if opt.Numeric {
		ratio := opt.NumericRatio
		if ratio <= 0 {
			ratio = 3 // MutualBars' own default; canonicalize so 0 and 3 share entries
		}
		k.p[8] = fbits(ratio)
	}
	return c.getOrCompute(k, func() float64 {
		return MutualBars(pg, wa, ta, wb, tb, opt)
	})
}

// couplingCapPerLength memoizes CouplingCapPerLength; the two math.Pow
// calls dominate coupling-capacitance extraction on large regular
// layouts.
func (c *KernelCache) couplingCapPerLength(w, t, h, s float64) float64 {
	if c == nil {
		return CouplingCapPerLength(w, t, h, s)
	}
	k := kernelKey{kind: kindCouplingCapPerLen}
	k.p[0], k.p[1], k.p[2], k.p[3] = fbits(w), fbits(t), fbits(h), fbits(s)
	return c.getOrCompute(k, func() float64 {
		return CouplingCapPerLength(w, t, h, s)
	})
}

// SelfInductanceBarCached is SelfInductanceBar through the
// process-default kernel cache (subject to SetKernelCache).
func SelfInductanceBarCached(l, w, t float64) float64 {
	return DefaultCacheRef().Cache().SelfInductanceBar(l, w, t)
}

// MutualFilamentsCached is MutualFilaments through the process-default
// kernel cache (subject to SetKernelCache).
func MutualFilamentsCached(la, lb, s, d float64) float64 {
	return DefaultCacheRef().Cache().MutualFilaments(la, lb, s, d)
}

// MutualBarsCached is MutualBars through the process-default kernel
// cache (subject to SetKernelCache).
func MutualBarsCached(pg geom.ParallelGeometry, wa, ta, wb, tb float64, opt GMDOptions) float64 {
	return DefaultCacheRef().Cache().MutualBars(pg, wa, ta, wb, tb, opt)
}

// couplingCapPerLengthCached is couplingCapPerLength through the
// process-default kernel cache (subject to SetKernelCache).
func couplingCapPerLengthCached(w, t, h, s float64) float64 {
	return DefaultCacheRef().Cache().couplingCapPerLength(w, t, h, s)
}
