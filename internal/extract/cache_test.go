package extract

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// withCache runs f with the kernel cache forced to the given state and
// restores the default (enabled, empty) afterwards, so tests cannot
// leak warm entries into each other.
func withCache(t *testing.T, on bool, f func()) {
	t.Helper()
	ResetKernelCache()
	SetKernelCache(on)
	defer func() {
		SetKernelCache(true)
		ResetKernelCache()
	}()
	f()
}

// randomLayout builds an irregular two-layer layout with both routing
// directions, random sizes and random offsets — the adversarial case
// for the cache (few repeated geometries) and for the spatial index
// (no grid regularity).
func randomLayout(rng *rand.Rand, nSegs int) (*geom.Layout, []int) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 0.9e-6, SheetRho: 0.025, HBelow: 1.0e-6},
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	segs := make([]int, nSegs)
	for i := range segs {
		dir := geom.DirX
		if rng.Intn(2) == 1 {
			dir = geom.DirY
		}
		segs[i] = l.AddSegment(geom.Segment{
			Layer:  rng.Intn(2),
			Dir:    dir,
			X0:     rng.Float64() * 200e-6,
			Y0:     rng.Float64() * 200e-6,
			Length: 10e-6 + rng.Float64()*150e-6,
			Width:  0.4e-6 + rng.Float64()*3e-6,
			Net:    "n",
			NodeA:  "a",
			NodeB:  "b",
		})
	}
	return l, segs
}

func requireBitIdentical(t *testing.T, want, got *matrix.Dense, label string) {
	t.Helper()
	n := want.Rows()
	if got.Rows() != n {
		t.Fatalf("%s: size %d != %d", label, got.Rows(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := want.At(i, j), got.At(i, j)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: (%d,%d) %v != %v (bits %x vs %x)",
					label, i, j, a, b, math.Float64bits(a), math.Float64bits(b))
			}
		}
	}
}

// TestCachedInductanceBitIdentical is the equivalence suite the cache's
// exactness contract rests on: cached and uncached assembly must agree
// to the last bit on regular buses (high hit rate) and random layouts
// (low hit rate), at every window, GMD setting and worker count.
func TestCachedInductanceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layouts := []struct {
		name string
		l    *geom.Layout
		segs []int
	}{}
	bus := makeBusLayout(16, 800e-6, 1e-6, 2e-6)
	busSegs := make([]int, 16)
	for i := range busSegs {
		busSegs[i] = i
	}
	layouts = append(layouts, struct {
		name string
		l    *geom.Layout
		segs []int
	}{"bus16", bus, busSegs})
	rl, rsegs := randomLayout(rng, 40)
	layouts = append(layouts, struct {
		name string
		l    *geom.Layout
		segs []int
	}{"random40", rl, rsegs})

	windows := []float64{math.Inf(1), 5e-6, 60e-6}
	gmds := []GMDOptions{{}, {Numeric: true}, {Numeric: true, NumericRatio: 8}}
	for _, lc := range layouts {
		for _, w := range windows {
			for _, g := range gmds {
				var off, on, par *matrix.Dense
				withCache(t, false, func() {
					off = InductanceMatrix(lc.l, lc.segs, w, g, DefaultCacheRef())
				})
				withCache(t, true, func() {
					on = InductanceMatrix(lc.l, lc.segs, w, g, DefaultCacheRef())
					par = InductanceMatrixParallel(lc.l, lc.segs, w, g, 4, DefaultCacheRef())
				})
				requireBitIdentical(t, off, on, lc.name+" serial")
				requireBitIdentical(t, off, par, lc.name+" parallel")
			}
		}
	}
}

// TestWindowedIndexMatchesBruteForce pins the spatial-index candidate
// path against a brute-force all-pairs windowed reference: the index
// may only prune pairs the window test would reject anyway.
func TestWindowedIndexMatchesBruteForce(t *testing.T) {
	bruteForce := func(l *geom.Layout, segs []int, window float64, opt GMDOptions) *matrix.Dense {
		n := len(segs)
		m := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			si := &l.Segments[segs[i]]
			th := l.Layers[si.Layer].Thickness
			m.Set(i, i, SelfInductanceBar(si.Length, si.Width, th))
			for j := i + 1; j < n; j++ {
				sj := &l.Segments[segs[j]]
				pg, ok := l.Parallel(segs[i], segs[j])
				if !ok || pg.D > window {
					continue
				}
				tj := l.Layers[sj.Layer].Thickness
				v := MutualBars(pg, si.Width, th, sj.Width, tj, opt)
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		return m
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		l, segs := randomLayout(rng, 30)
		window := []float64{1e-6, 10e-6, 50e-6, 400e-6}[trial%4]
		ref := bruteForce(l, segs, window, GMDOptions{})
		withCache(t, false, func() {
			got := InductanceMatrix(l, segs, window, GMDOptions{}, DefaultCacheRef())
			requireBitIdentical(t, ref, got, "indexed windowed")
		})
	}
	// Collinear far-apart segments: perpendicular distance is zero even
	// though the bounding boxes are a millimetre apart — the stretched
	// query box must still find the pair.
	l := geom.NewLayout([]geom.Layer{{Name: "M6", Thickness: 1e-6, SheetRho: 0.02, HBelow: 1e-6}})
	a := l.AddSegment(geom.Segment{Dir: geom.DirX, X0: 0, Y0: 3e-6, Length: 100e-6, Width: 1e-6, Net: "n", NodeA: "a", NodeB: "b"})
	b := l.AddSegment(geom.Segment{Dir: geom.DirX, X0: 1e-3, Y0: 0, Length: 100e-6, Width: 1e-6, Net: "n", NodeA: "c", NodeB: "d"})
	segs := []int{a, b}
	ref := bruteForce(l, segs, 5e-6, GMDOptions{})
	if ref.At(0, 1) == 0 {
		t.Fatal("test geometry broken: collinear pair should couple")
	}
	withCache(t, false, func() {
		requireBitIdentical(t, ref, InductanceMatrix(l, segs, 5e-6, GMDOptions{}, DefaultCacheRef()), "collinear pair")
	})
}

// TestCachedCouplingCapBitIdentical runs the full extraction (which
// routes coupling capacitance through the memoized per-length kernel)
// with the cache on and off.
func TestCachedCouplingCapBitIdentical(t *testing.T) {
	l := makeBusLayout(12, 600e-6, 1e-6, 2.5e-6)
	var off, on *Parasitics
	withCache(t, false, func() { off = Extract(l, DefaultOptions()) })
	withCache(t, true, func() { on = Extract(l, DefaultOptions()) })
	if len(off.CCoupling) == 0 || len(off.CCoupling) != len(on.CCoupling) {
		t.Fatalf("coupling cap count: %d vs %d", len(off.CCoupling), len(on.CCoupling))
	}
	for k := range off.CCoupling {
		a, b := off.CCoupling[k], on.CCoupling[k]
		if a.NodeA != b.NodeA || a.NodeB != b.NodeB ||
			math.Float64bits(a.C) != math.Float64bits(b.C) {
			t.Fatalf("coupling cap %d differs: %+v vs %+v", k, a, b)
		}
	}
	requireBitIdentical(t, off.L, on.L, "extract L")
}

// TestCacheStatsCounters exercises the accessor inductx -v prints.
func TestCacheStatsCounters(t *testing.T) {
	l := makeBusLayout(16, 800e-6, 1e-6, 2e-6)
	segs := make([]int, 16)
	for i := range segs {
		segs[i] = i
	}
	withCache(t, true, func() {
		InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
		st := KernelCacheStats()
		if !st.Enabled {
			t.Fatal("cache should report enabled")
		}
		if st.Misses == 0 || st.Entries == 0 {
			t.Fatalf("expected misses and entries after a cold run: %+v", st)
		}
		if st.Hits == 0 {
			t.Fatalf("a 16-line regular bus must hit the cache: %+v", st)
		}
		// A second identical assembly must be all hits.
		before := st
		InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
		st = KernelCacheStats()
		if st.Misses != before.Misses {
			t.Fatalf("warm rerun missed: %d -> %d misses", before.Misses, st.Misses)
		}
		if st.Hits <= before.Hits {
			t.Fatalf("warm rerun did not hit: %+v", st)
		}
	})
	withCache(t, false, func() {
		if st := KernelCacheStats(); st.Enabled {
			t.Fatal("cache should report disabled")
		}
	})
	if st := KernelCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("reset did not clear counters: %+v", st)
	}
}

// TestConcurrentAssemblySharedCache hammers the sharded cache from
// several concurrent parallel assemblies over different layouts — the
// race-detector target ci.sh runs with -race. Results must match the
// serial uncached reference exactly.
func TestConcurrentAssemblySharedCache(t *testing.T) {
	type job struct {
		l    *geom.Layout
		segs []int
		ref  *matrix.Dense
	}
	rng := rand.New(rand.NewSource(3))
	jobs := make([]job, 6)
	for k := range jobs {
		var l *geom.Layout
		var segs []int
		if k%2 == 0 {
			l = makeBusLayout(12, 500e-6, 1e-6, 2e-6)
			segs = make([]int, 12)
			for i := range segs {
				segs[i] = i
			}
		} else {
			l, segs = randomLayout(rng, 24)
		}
		jobs[k] = job{l: l, segs: segs}
	}
	withCache(t, false, func() {
		for k := range jobs {
			jobs[k].ref = InductanceMatrix(jobs[k].l, jobs[k].segs, math.Inf(1), GMDOptions{Numeric: true}, DefaultCacheRef())
		}
	})
	withCache(t, true, func() {
		var wg sync.WaitGroup
		results := make([]*matrix.Dense, len(jobs))
		for k := range jobs {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				results[k] = InductanceMatrixParallel(jobs[k].l, jobs[k].segs, math.Inf(1), GMDOptions{Numeric: true}, 3, DefaultCacheRef())
			}(k)
		}
		wg.Wait()
		for k := range jobs {
			requireBitIdentical(t, jobs[k].ref, results[k], "concurrent job")
		}
	})
}
