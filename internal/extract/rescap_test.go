package extract

import (
	"math"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/units"
)

func twoWireLayout(spacing float64) *geom.Layout {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 0.8e-6, SheetRho: 0.03, HBelow: 1e-6},
	})
	l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 200e-6, Width: 1e-6, Net: "a", NodeA: "a0", NodeB: "a1"})
	l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: spacing + 1e-6,
		Length: 200e-6, Width: 1e-6, Net: "b", NodeA: "b0", NodeB: "b1"})
	return l
}

func TestResistance(t *testing.T) {
	l := twoWireLayout(1e-6)
	// R = 0.03 ohm/sq * 200um / 1um = 6 ohm.
	if got := Resistance(l, 0); relErr(got, 6) > 1e-12 {
		t.Errorf("Resistance = %g, want 6", got)
	}
}

func TestGroundCapMagnitude(t *testing.T) {
	// Typical on-chip wire: ~0.1-0.3 fF/um total. 200um wire should be
	// tens of fF.
	l := twoWireLayout(1e-6)
	c := GroundCap(l, 0)
	if c < 5e-15 || c > 100e-15 {
		t.Errorf("ground cap = %s, expected tens of fF", units.FormatSI(c, "F"))
	}
	// Wider wire has more capacitance.
	l.Segments[0].Width = 4e-6
	if GroundCap(l, 0) <= c {
		t.Errorf("wider wire should have more ground cap")
	}
}

func TestCouplingCapBehaviour(t *testing.T) {
	cNear := CouplingCap(twoWireLayout(0.5e-6), 0, 1)
	cFar := CouplingCap(twoWireLayout(4e-6), 0, 1)
	if cNear <= 0 || cFar <= 0 {
		t.Fatalf("coupling caps must be positive: %g %g", cNear, cFar)
	}
	if cNear <= cFar {
		t.Errorf("coupling must increase at smaller spacing: near %g far %g", cNear, cFar)
	}
	// Orthogonal or different-layer pairs couple zero in this model.
	l := twoWireLayout(1e-6)
	l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirY, X0: 50e-6, Y0: -100e-6,
		Length: 50e-6, Width: 1e-6, Net: "c", NodeA: "c0", NodeB: "c1"})
	if CouplingCap(l, 0, 2) != 0 {
		t.Errorf("orthogonal coupling should be 0")
	}
}

func TestCapPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GroundCapPerLength(1e-6, 1e-6, 0) },
		func() { CouplingCapPerLength(1e-6, 1e-6, 1e-6, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestExtractFullLayout(t *testing.T) {
	l := twoWireLayout(1e-6)
	p := Extract(l, DefaultOptions())
	if len(p.R) != 2 || p.L.Rows() != 2 {
		t.Fatalf("wrong element counts: %d R, %dx%d L", len(p.R), p.L.Rows(), p.L.Cols())
	}
	if p.L.At(0, 1) <= 0 {
		t.Errorf("mutual inductance missing")
	}
	// pi-model: half the ground cap at each end node.
	if p.CGround["a0"] <= 0 || relErr(p.CGround["a0"], p.CGround["a1"]) > 1e-12 {
		t.Errorf("pi split wrong: %g vs %g", p.CGround["a0"], p.CGround["a1"])
	}
	if relErr(p.CGround["a0"]+p.CGround["a1"], GroundCap(l, 0)) > 1e-12 {
		t.Errorf("ground cap not conserved")
	}
	// Coupling caps: two halves between end-node pairs.
	if len(p.CCoupling) != 2 {
		t.Fatalf("expected 2 coupling cap halves, got %d", len(p.CCoupling))
	}
	tot := p.CCoupling[0].C + p.CCoupling[1].C
	if relErr(tot, CouplingCap(l, 0, 1)) > 1e-12 {
		t.Errorf("coupling cap not conserved: %g", tot)
	}
	st := p.Stats()
	if st.NumR != 2 || st.NumL != 2 || st.NumMutual != 1 || st.NumCCouple != 2 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestExtractCouplingWindow(t *testing.T) {
	l := twoWireLayout(10e-6)
	opt := DefaultOptions()
	opt.CouplingWindow = 2e-6
	p := Extract(l, opt)
	if len(p.CCoupling) != 0 {
		t.Errorf("coupling beyond window extracted: %v", p.CCoupling)
	}
	opt.CouplingWindow = 50e-6
	p = Extract(l, opt)
	if len(p.CCoupling) != 2 {
		t.Errorf("coupling inside window missing")
	}
}

func TestExtractSegmentsSubset(t *testing.T) {
	l := twoWireLayout(1e-6)
	p := ExtractSegments(l, []int{1}, DefaultOptions())
	if len(p.R) != 1 || p.L.Rows() != 1 {
		t.Errorf("subset extraction wrong size")
	}
	if _, ok := p.CGround["a0"]; ok {
		t.Errorf("subset extraction leaked other segment's nodes")
	}
}

func TestExtractMutualWindowInf(t *testing.T) {
	l := twoWireLayout(1e-6)
	opt := Options{MutualWindow: 0, CouplingWindow: 0} // zeros -> defaults
	p := Extract(l, opt)
	if p.L.At(0, 1) == 0 {
		t.Errorf("default mutual window should be infinite")
	}
	if math.IsNaN(p.L.At(0, 1)) {
		t.Errorf("NaN mutual")
	}
}
