package extract

import (
	"math"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

func TestSplitWideWirePreservesLowFreqInductance(t *testing.T) {
	// §3: wide conductors must be split before computing inductance.
	// Sanity of the transform: with uniform (DC) current split, the
	// parallel combination of the strips' partial inductances must
	// reproduce the wide bar's own partial self inductance.
	length, width, thick := 1000e-6, 12e-6, 1e-6
	l := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: thick, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, Length: length, Width: width,
		Net: "w", NodeA: "a", NodeB: "b"})
	wide := SelfInductanceBar(length, width, thick)

	split, _ := geom.SplitWideSegments(l, 3e-6)
	segs := make([]int, len(split.Segments))
	for i := range segs {
		segs[i] = i
	}
	lp := InductanceMatrix(split, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	// Parallel combination: L_eff = 1 / sum_ij (Lp^-1)_ij.
	inv, err := matrix.Inverse(lp)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < inv.Rows(); i++ {
		for j := 0; j < inv.Cols(); j++ {
			sum += inv.At(i, j)
		}
	}
	eff := 1 / sum
	if math.Abs(eff-wide)/wide > 0.03 {
		t.Errorf("split-strip parallel L %g vs wide-bar L %g (%.1f%%)",
			eff, wide, 100*math.Abs(eff-wide)/wide)
	}
}
