package extract

import (
	"math"

	"inductance101/internal/geom"
	"inductance101/internal/units"
)

// Resistance returns the DC resistance (ohm) of a segment from its
// layer's sheet resistance: R = rho_sheet * length / width. The paper's
// PEEC model treats interconnect resistance as frequency independent;
// frequency-dependent loop resistance comes from internal/fasthenry.
func Resistance(l *geom.Layout, segIdx int) float64 {
	s := &l.Segments[segIdx]
	return l.Layers[s.Layer].SheetRho * s.Length / s.Width
}

// Chern-style empirical capacitance model. The paper cites Chern's
// multilevel-metal CAD models [8]; this implementation uses the same
// functional family (area term plus fractional-power fringe and coupling
// terms fitted to field-solver data — here the widely published
// Sakurai–Tamaru coefficients), which preserves the geometry scaling
// that matters to the inductance-vs-capacitance current-return story.

// GroundCapPerLength returns the capacitance per unit length (F/m) of a
// wire of width w and thickness t at height h over a ground plane,
// including fringe:
//
//	C/l = eps_ox [ 1.15 (w/h) + 2.80 (t/h)^0.222 ].
func GroundCapPerLength(w, t, h float64) float64 {
	if h <= 0 {
		panic("extract: ground capacitance with non-positive height")
	}
	eps := units.EpsSiO2 * units.Eps0
	return eps * (1.15*(w/h) + 2.80*math.Pow(t/h, 0.222))
}

// CouplingCapPerLength returns the line-to-line coupling capacitance per
// unit length (F/m) for two parallel wires of thickness t at height h
// with edge-to-edge spacing s:
//
//	C_c/l = eps_ox [ 0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222 ] (s/h)^-1.34.
func CouplingCapPerLength(w, t, h, s float64) float64 {
	if h <= 0 || s <= 0 {
		panic("extract: coupling capacitance with non-positive height or spacing")
	}
	eps := units.EpsSiO2 * units.Eps0
	c := eps * (0.03*(w/h) + 0.83*(t/h) - 0.07*math.Pow(t/h, 0.222)) *
		math.Pow(s/h, -1.34)
	if c < 0 {
		return 0
	}
	return c
}

// GroundCap returns the total capacitance to ground (F) of a segment.
func GroundCap(l *geom.Layout, segIdx int) float64 {
	s := &l.Segments[segIdx]
	ly := l.Layers[s.Layer]
	return GroundCapPerLength(s.Width, ly.Thickness, ly.HBelow) * s.Length
}

// CouplingCap returns the coupling capacitance (F) between two parallel
// same-layer segments over their overlap length, zero when they do not
// run side by side. The per-length kernel is memoized through the
// process-default cache; ExtractSegments threads its own cache via
// couplingCap.
func CouplingCap(l *geom.Layout, i, j int) float64 {
	return couplingCap(l, i, j, DefaultCacheRef().Cache())
}

// couplingCap is CouplingCap against an explicit resolved cache (nil =
// compute directly).
func couplingCap(l *geom.Layout, i, j int, c *KernelCache) float64 {
	a := &l.Segments[i]
	b := &l.Segments[j]
	if a.Dir != b.Dir || a.Layer != b.Layer {
		return 0
	}
	ov := l.OverlapLength(i, j)
	if ov <= 0 {
		return 0
	}
	sp := l.EdgeSpacing(i, j)
	if sp <= 0 {
		return 0 // overlapping metal is a layout error, not a capacitor
	}
	ly := l.Layers[a.Layer]
	w := math.Min(a.Width, b.Width)
	// The per-length kernel is memoized by its exact arguments (see
	// cache.go): on a regular bus every adjacent pair shares one entry.
	return c.couplingCapPerLength(w, ly.Thickness, ly.HBelow, sp) * ov
}
