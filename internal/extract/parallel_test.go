package extract

import (
	"math"
	"testing"
)

func TestInductanceMatrixParallelMatchesSerial(t *testing.T) {
	l := makeBusLayout(8, 600e-6, 1.5e-6, 3e-6)
	segs := make([]int, 8)
	for i := range segs {
		segs[i] = i
	}
	serial := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	for _, workers := range []int{0, 1, 2, 7, 32} {
		par := InductanceMatrixParallel(l, segs, math.Inf(1), GMDOptions{}, workers, DefaultCacheRef())
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if par.At(i, j) != serial.At(i, j) {
					t.Fatalf("workers=%d: (%d,%d) %g != %g",
						workers, i, j, par.At(i, j), serial.At(i, j))
				}
			}
		}
	}
	// Windowed variant too.
	sw := InductanceMatrix(l, segs, 4e-6, GMDOptions{}, DefaultCacheRef())
	pw := InductanceMatrixParallel(l, segs, 4e-6, GMDOptions{}, 4, DefaultCacheRef())
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if pw.At(i, j) != sw.At(i, j) {
				t.Fatalf("windowed mismatch at (%d,%d)", i, j)
			}
		}
	}
}
