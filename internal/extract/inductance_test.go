package extract

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
	"inductance101/internal/units"
)

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestMutualFilamentsAgainstNeumannQuadrature(t *testing.T) {
	// Numerically integrate the Neumann double integral and compare
	// against the closed form for several geometries.
	cases := []struct{ la, lb, s, d float64 }{
		{100e-6, 100e-6, 0, 2e-6},
		{100e-6, 50e-6, 20e-6, 5e-6},
		{30e-6, 80e-6, -40e-6, 1e-6},
		{10e-6, 10e-6, 15e-6, 3e-6}, // disjoint along the axis
	}
	for _, c := range cases {
		got := MutualFilaments(c.la, c.lb, c.s, c.d)
		// Simpson quadrature of (mu0/4pi) ∬ dx dy / sqrt((x-y)^2+d^2).
		const n = 400
		hx := c.la / n
		hy := c.lb / n
		sum := 0.0
		for i := 0; i <= n; i++ {
			x := float64(i) * hx
			wi := simpsonW(i, n)
			for j := 0; j <= n; j++ {
				y := c.s + float64(j)*hy
				wj := simpsonW(j, n)
				sum += wi * wj / math.Hypot(x-y, c.d)
			}
		}
		want := units.Mu0 / (4 * math.Pi) * sum * hx * hy / 9
		if relErr(got, want) > 1e-4 {
			t.Errorf("M(%+v): closed form %g vs quadrature %g", c, got, want)
		}
	}
}

func simpsonW(i, n int) float64 {
	switch {
	case i == 0 || i == n:
		return 1
	case i%2 == 1:
		return 4
	default:
		return 2
	}
}

func TestMutualFilamentsCollinear(t *testing.T) {
	// Two collinear filaments (d=0), non-overlapping: finite positive M.
	m := MutualFilaments(10e-6, 10e-6, 20e-6, 0)
	if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		t.Fatalf("collinear mutual = %g", m)
	}
	// Must match the small-d limit.
	m2 := MutualFilaments(10e-6, 10e-6, 20e-6, 1e-12)
	if relErr(m, m2) > 1e-6 {
		t.Errorf("d=0 limit mismatch: %g vs %g", m, m2)
	}
}

func TestSelfInductanceAgainstRuehli(t *testing.T) {
	// For long thin bars the GMD evaluation and the log approximation
	// must agree to ~1%.
	for _, c := range []struct{ l, w, t float64 }{
		{1000e-6, 1e-6, 0.5e-6},
		{500e-6, 2e-6, 1e-6},
		{2000e-6, 5e-6, 1e-6},
	} {
		a := SelfInductanceBar(c.l, c.w, c.t)
		b := RuehliSelfInductance(c.l, c.w, c.t)
		if relErr(a, b) > 0.01 {
			t.Errorf("l=%g w=%g t=%g: GMD %g vs Ruehli %g (%.2f%%)",
				c.l, c.w, c.t, a, b, 100*relErr(a, b))
		}
	}
}

func TestSelfInductanceMagnitude(t *testing.T) {
	// Classic rule of thumb: on-chip wires run ~0.5-1 pH/um of partial
	// self inductance. A 1000 um x 2 um x 0.5 um line should land in
	// [0.5, 2] nH.
	l := SelfInductanceBar(1000e-6, 2e-6, 0.5e-6)
	if l < 0.5e-9 || l > 2e-9 {
		t.Errorf("1mm wire self inductance = %s, expected ~1nH",
			units.FormatSI(l, "H"))
	}
}

func TestMutualDecreasesWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{1e-6, 2e-6, 5e-6, 10e-6, 50e-6, 200e-6} {
		m := MutualFilaments(100e-6, 100e-6, 0, d)
		if m <= 0 || m >= prev {
			t.Fatalf("mutual not monotonically decreasing at d=%g: %g >= %g", d, m, prev)
		}
		prev = m
	}
}

func TestMutualLessThanSelf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 10e-6 + rng.Float64()*1000e-6
		w := 0.5e-6 + rng.Float64()*5e-6
		th := 0.2e-6 + rng.Float64()*1e-6
		d := (w + th) * (0.5 + rng.Float64()*50)
		self := SelfInductanceBar(l, w, th)
		mut := MutualFilaments(l, l, 0, d+w) // centre distance > GMD_self
		return mut < self && mut > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNumericGMDFarLimit(t *testing.T) {
	// For widely separated cross sections, GMD -> centre distance.
	g := NumericGMD(0, 1e-6, 0, 0.5e-6, 100e-6, 1e-6, 0, 0.5e-6)
	centre := 100e-6
	if relErr(g, centre) > 1e-3 {
		t.Errorf("far GMD = %g, want ~%g", g, centre)
	}
}

func TestNumericGMDCloseIsBelowCentreDistance(t *testing.T) {
	// For adjacent wide conductors the GMD is smaller than the centre
	// distance (current spreads toward facing edges... actually for
	// coplanar rectangles GMD < centre distance slightly).
	aw := 4e-6
	g := NumericGMD(0, aw, 0, 0.5e-6, 5e-6, aw, 0, 0.5e-6)
	centre := 5e-6
	if g <= 0 || math.Abs(g-centre)/centre > 0.2 {
		t.Errorf("close GMD = %g, centre %g: implausible", g, centre)
	}
}

func TestNumericGMDAdjacentSegmentsExact(t *testing.T) {
	// Exact result for two adjacent collinear thin strips [0,l], [l,2l]:
	// ln GMD = ln l + 2 ln 2 - 3/2, i.e. GMD = 4 e^{-3/2} l ≈ 0.8925 l.
	l := 1e-6
	thin := l * 1e-5
	g := NumericGMD(0, l, 0, thin, l, l, 0, thin)
	want := 4 * math.Exp(-1.5) * l
	if relErr(g, want) > 0.01 {
		t.Errorf("adjacent-strip GMD %g vs exact %g", g, want)
	}
}

func makeBusLayout(nWires int, length, width, pitch float64) *geom.Layout {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Index: 0, Z: 4e-6, Thickness: 1e-6, SheetRho: 0.025, HBelow: 1e-6},
	})
	for i := 0; i < nWires; i++ {
		l.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, X0: 0, Y0: float64(i) * pitch,
			Length: length, Width: width,
			Net:   string(rune('a' + i)),
			NodeA: "n" + string(rune('a'+i)) + "0",
			NodeB: "n" + string(rune('a'+i)) + "1",
		})
	}
	return l
}

func TestInductanceMatrixProperties(t *testing.T) {
	l := makeBusLayout(6, 500e-6, 1e-6, 2e-6)
	segs := []int{0, 1, 2, 3, 4, 5}
	m := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	if !m.IsSymmetric(1e-12) {
		t.Fatalf("L not symmetric")
	}
	if !matrix.IsPositiveDefinite(m) {
		t.Fatalf("full partial L matrix must be positive definite")
	}
	// Diagonal dominance of physical partial inductance in magnitude:
	// L_ii > L_ij for all j.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j && m.At(i, j) >= m.At(i, i) {
				t.Errorf("L[%d,%d] >= L[%d,%d]", i, j, i, i)
			}
		}
	}
	// Windowed matrix: far mutuals dropped.
	mw := InductanceMatrix(l, segs, 3e-6, GMDOptions{}, DefaultCacheRef())
	if mw.At(0, 5) != 0 {
		t.Errorf("window did not drop far mutual")
	}
	if mw.At(0, 1) == 0 {
		t.Errorf("window dropped near mutual")
	}
}

func TestInductanceMatrixPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		pitch := (1.5 + rng.Float64()*5) * 1e-6
		length := (50 + rng.Float64()*500) * 1e-6
		l := makeBusLayout(n, length, 1e-6, pitch)
		segs := make([]int, n)
		for i := range segs {
			segs[i] = i
		}
		m := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
		return matrix.IsPositiveDefinite(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoopInductanceShrinksWithCloserReturn(t *testing.T) {
	// Loop inductance of a signal + return pair decreases as the return
	// is brought closer — the core design guideline of §7.
	length := 1000e-6
	self := SelfInductanceBar(length, 1e-6, 0.5e-6)
	prev := math.Inf(1)
	for _, d := range []float64{50e-6, 20e-6, 10e-6, 4e-6, 2e-6} {
		m := MutualFilaments(length, length, 0, d)
		loop := LoopInductanceTwoWire(self, self, m)
		if loop >= prev {
			t.Fatalf("loop L not decreasing at d=%g", d)
		}
		if loop <= 0 {
			t.Fatalf("loop L must stay positive, got %g", loop)
		}
		prev = loop
	}
}

func TestOrthogonalMutualZero(t *testing.T) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.025, HBelow: 1e-6},
	})
	l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, Length: 100e-6, Width: 1e-6, Net: "a", NodeA: "a0", NodeB: "a1"})
	l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirY, X0: 50e-6, Y0: -50e-6, Length: 100e-6, Width: 1e-6, Net: "b", NodeA: "b0", NodeB: "b1"})
	m := InductanceMatrix(l, []int{0, 1}, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	if m.At(0, 1) != 0 {
		t.Errorf("orthogonal mutual = %g, want 0", m.At(0, 1))
	}
}
