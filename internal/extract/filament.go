package extract

// Filament-level kernel entry points: the bridge between the mesh
// lowering (internal/mesh) and the partial-inductance operators. All
// three solve paths — the dense oracle, the flat-ACA compressed
// operator and the nested-basis one — evaluate the same entry function
// over the same lowered filaments, so whether a filament came from a
// segment cross-section or a plane grid is invisible past this point.

import (
	"math"

	"inductance101/internal/geom"
	"inductance101/internal/mesh"
)

// FilamentElements converts lowered filaments into the geometric
// elements the hierarchical compression clusters and measures (span
// along the routing axis, cross coordinate, height, cross-section
// radius).
func FilamentElements(fils []mesh.Filament) []HElement {
	elems := make([]HElement, len(fils))
	for i := range fils {
		f := &fils[i]
		e := HElement{Dir: int(f.Dir), Z: f.Z, Rad: math.Hypot(f.W, f.T) / 2}
		if f.Dir == geom.DirX {
			e.A0, e.A1, e.Cross = f.X0, f.X0+f.Length, f.Y0
		} else {
			e.A0, e.A1, e.Cross = f.Y0, f.Y0+f.Length, f.X0
		}
		elems[i] = e
	}
	return elems
}

// FilamentEntry returns the partial-inductance entry function over
// lowered filaments, routed through the given kernel cache. The
// arguments are canonicalized to i <= j so both orders hit the same
// translation-invariant cache key (the value is symmetric); a regular
// filament grid — a bus of identical segments, or a plane's uniform
// mesh — repeats the same relative geometry constantly, so each unique
// (la, lb, s, d) is integrated once per cache lifetime.
//
// Orthogonal pairs return exactly zero (the Neumann integral vanishes
// by symmetry); collinear pairs (perpendicular distance zero, e.g.
// filaments in the same plane-grid track) are regularized with the
// mean self-GMD of the two cross-sections so the formula stays finite.
func FilamentEntry(fils []mesh.Filament, cache CacheRef) func(i, j int) float64 {
	return func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		c := cache.Cache()
		fi := &fils[i]
		if i == j {
			return c.SelfInductanceBar(fi.Length, fi.W, fi.T)
		}
		fj := &fils[j]
		if fi.Dir != fj.Dir {
			return 0
		}
		var off, d float64
		if fi.Dir == geom.DirX {
			off = fj.X0 - fi.X0
			d = math.Hypot(fj.Y0-fi.Y0, fj.Z-fi.Z)
		} else {
			off = fj.Y0 - fi.Y0
			d = math.Hypot(fj.X0-fi.X0, fj.Z-fi.Z)
		}
		if d == 0 {
			d = SelfGMDFactor * (fi.W + fi.T + fj.W + fj.T) / 2
		}
		return c.MutualFilaments(fi.Length, fj.Length, off, d)
	}
}
