package extract

import (
	"math"
	"sync/atomic"

	"inductance101/internal/geom"
)

// Nested-basis (H²) compressed partial-inductance operator.
//
// The flat scheme in aca.go factors every admissible block pair
// independently, so each cluster re-derives what is essentially the
// same information — how its elements look from far away — once per
// partner. Both the factor storage and the build cost therefore carry
// an extra log factor times the per-block rank, and the 2048-filament
// wins in BENCH_fasthenry.json flatten near 10⁴ elements. The
// nested-basis scheme removes the redundancy the FMM way:
//
//   - every cluster-tree node t gets ONE interpolation basis U_t,
//     computed algebraically as a row interpolative decomposition of
//     the interaction between t's elements and a sampled far field
//     (the union of t's and its ancestors' coupling partners). The ID
//     selects k skeleton elements of t whose kernel rows span, to the
//     requested tolerance, every row in the block — so any far
//     interaction of t factors through those k representatives;
//   - bases are nested: a non-leaf's basis is an ID over its
//     children's skeleton elements only, stored as a small transfer
//     matrix, so basis construction is bottom-up and touches each
//     level's skeletons once — O(N log N) kernel evaluations total;
//   - an admissible pair (a, b) stores only the k_a x k_b coupling
//     block A(skel_a, skel_b) between the shared bases;
//   - the matvec runs in three phases: an upward pass restricting x
//     through the transfer matrices to per-cluster skeleton
//     coefficients, the coupling multiplications, and a downward pass
//     prolongating the results back to elements. Near and diagonal
//     blocks stay exact dense, identical to the flat path.
//
// Construction parallelizes over the cluster tree: the partition is
// serial geometry, then bases are built level by level (deepest
// first) with nodes of a level fanned out across workers, and
// coupling/near/diagonal blocks are filled concurrently through the
// shared kernel cache. Every block and basis depends only on its own
// deterministic index lists, so the operator is bit-identical at any
// worker count.
//
// Degraded paths are exact, not approximate: a basis that cannot reach
// the tolerance within H2Options.MaxRank marks its node (and, since
// parents interpolate children's skeletons, its ancestors) failed, and
// every coupling touching a failed node is re-routed down the tree
// until it lands on valid bases or on dense leaf-leaf near blocks.

// H2Options controls the nested-basis compression.
type H2Options struct {
	// Tol is the relative tolerance of each interpolative
	// decomposition: pivoting stops once the largest remaining residual
	// row norm falls below Tol times the largest initial row norm.
	// Default 1e-8.
	Tol float64
	// Eta is the admissibility parameter, as in ACAOptions. Default 1.
	Eta float64
	// MaxRank caps each cluster basis rank; a basis that cannot reach
	// Tol within the cap fails its node and re-routes the node's
	// couplings to exact dense blocks. 0 = uncapped (a basis of
	// min(rows, samples) columns is always exact, so uncapped never
	// fails).
	MaxRank int
	// Sample caps how many far-field elements each basis samples.
	// Default 128. Larger samples make the skeleton selection see more
	// of the true far field at proportional build cost.
	Sample int
	// Workers caps the goroutines used during construction. 0 = process
	// default (matrix.Workers), 1 = fully serial. The operator is
	// bit-identical at every worker count.
	Workers int
}

func (o H2Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-8
	}
	return o.Tol
}

func (o H2Options) eta() float64 {
	if o.Eta <= 0 {
		return 1
	}
	return o.Eta
}

func (o H2Options) sample() int {
	if o.Sample <= 0 {
		return 128
	}
	return o.Sample
}

// h2node wraps one cluster-tree node with its nested basis.
type h2node struct {
	t           *ElemTree
	parent      *h2node
	left, right *h2node
	// partners lists the element sets this node couples to directly
	// (one entry per admissible pair the partition anchored here), in
	// deterministic partition order. The far-field sample of every
	// descendant draws from these lists up the ancestor chain.
	partners [][]int
	need     bool // a basis is required here (endpoint or under one)
	failed   bool // basis exceeded MaxRank (or a child's did)
	skel     []int
	// u is the basis, row-major m x k: for a leaf m = len(t.Elems) and
	// rows follow t.Elems; for a non-leaf m = k_left + k_right and rows
	// follow the children's skeletons (left first) — the transfer
	// matrix. Skeleton rows are exact unit rows.
	u []float64
	k int
	// off is the node's offset into the matvec workspace (-1 without a
	// basis).
	off int
}

func (nd *h2node) hasBasis() bool { return nd.need && !nd.failed }

// h2coupling is one admissible interaction: the k_a x k_b block
// A(skel_a, skel_b), row-major.
type h2coupling struct {
	a, b *h2node
	s    []float64
}

// H2L is the nested-basis compressed partial-inductance operator. Like
// CompressedL it is immutable after construction and safe for
// concurrent use; unlike CompressedL its two probe directions associate
// the same products in different orders, so ⟨e_i, L e_j⟩ and
// ⟨e_j, L e_i⟩ agree to rounding, not bit-exactly.
type H2L struct {
	n     int
	diag  []denseBlock
	near  []denseBlock
	nodes []*h2node // post-order: children before parents
	coups []h2coupling
	wsize int // Σ k over nodes with bases
	stats CompressStats

	elemBlock []int32
	elemPos   []int32
}

var _ LOperator = (*H2L)(nil)

// Dim returns the operator dimension.
func (h *H2L) Dim() int { return h.n }

// Stats returns the compression summary.
func (h *H2L) Stats() CompressStats { return h.stats }

// DiagBlocks returns the dense diagonal leaf blocks.
func (h *H2L) DiagBlocks() []DiagBlock { return diagBlockViews(h.diag) }

// Diag returns the exact diagonal entry L[i][i].
func (h *H2L) Diag(i int) float64 {
	b := &h.diag[h.elemBlock[i]]
	p := int(h.elemPos[i])
	return b.v[p*len(b.cols)+p]
}

// ApplyTo computes dst = L*x over real vectors (no aliasing).
func (h *H2L) ApplyTo(dst, x []float64) {
	if len(dst) != h.n || len(x) != h.n {
		panic("extract: H2L ApplyTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	applyDiagDense(h.diag, dst, x)
	applyNearDense(h.near, dst, x)
	xhat := make([]float64, h.wsize)
	yhat := make([]float64, h.wsize)
	// Upward: children before parents, so a transfer reads finished
	// child coefficients.
	for _, nd := range h.nodes {
		if nd.off < 0 || nd.k == 0 {
			continue
		}
		out := xhat[nd.off : nd.off+nd.k]
		if nd.left == nil {
			for a, ei := range nd.t.Elems {
				xi := x[ei]
				row := nd.u[a*nd.k : (a+1)*nd.k]
				for c, uv := range row {
					out[c] += uv * xi
				}
			}
			continue
		}
		r := 0
		for _, ch := range [2]*h2node{nd.left, nd.right} {
			cx := xhat[ch.off : ch.off+ch.k]
			for _, xv := range cx {
				row := nd.u[r*nd.k : (r+1)*nd.k]
				for c, uv := range row {
					out[c] += uv * xv
				}
				r++
			}
		}
	}
	// Interaction: each coupling applied both ways.
	for ci := range h.coups {
		cp := &h.coups[ci]
		ka, kb := cp.a.k, cp.b.k
		xa := xhat[cp.a.off : cp.a.off+ka]
		xb := xhat[cp.b.off : cp.b.off+kb]
		ya := yhat[cp.a.off : cp.a.off+ka]
		yb := yhat[cp.b.off : cp.b.off+kb]
		for p := 0; p < ka; p++ {
			row := cp.s[p*kb : (p+1)*kb]
			s := 0.0
			xp := xa[p]
			for q, sv := range row {
				s += sv * xb[q]
				yb[q] += sv * xp
			}
			ya[p] += s
		}
	}
	// Downward: parents before children.
	for i := len(h.nodes) - 1; i >= 0; i-- {
		nd := h.nodes[i]
		if nd.off < 0 || nd.k == 0 {
			continue
		}
		in := yhat[nd.off : nd.off+nd.k]
		if nd.left == nil {
			for a, ei := range nd.t.Elems {
				row := nd.u[a*nd.k : (a+1)*nd.k]
				s := 0.0
				for c, uv := range row {
					s += uv * in[c]
				}
				dst[ei] += s
			}
			continue
		}
		r := 0
		for _, ch := range [2]*h2node{nd.left, nd.right} {
			cy := yhat[ch.off : ch.off+ch.k]
			for j := range cy {
				row := nd.u[r*nd.k : (r+1)*nd.k]
				s := 0.0
				for c, uv := range row {
					s += uv * in[c]
				}
				cy[j] += s
				r++
			}
		}
	}
}

// ApplyCTo computes dst = L*x over complex vectors (no aliasing).
func (h *H2L) ApplyCTo(dst, x []complex128) {
	if len(dst) != h.n || len(x) != h.n {
		panic("extract: H2L ApplyCTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	applyDiagDenseC(h.diag, dst, x)
	applyNearDenseC(h.near, dst, x)
	xhat := make([]complex128, h.wsize)
	yhat := make([]complex128, h.wsize)
	for _, nd := range h.nodes {
		if nd.off < 0 || nd.k == 0 {
			continue
		}
		out := xhat[nd.off : nd.off+nd.k]
		if nd.left == nil {
			for a, ei := range nd.t.Elems {
				xi := x[ei]
				row := nd.u[a*nd.k : (a+1)*nd.k]
				for c, uv := range row {
					out[c] += complex(uv, 0) * xi
				}
			}
			continue
		}
		r := 0
		for _, ch := range [2]*h2node{nd.left, nd.right} {
			cx := xhat[ch.off : ch.off+ch.k]
			for _, xv := range cx {
				row := nd.u[r*nd.k : (r+1)*nd.k]
				for c, uv := range row {
					out[c] += complex(uv, 0) * xv
				}
				r++
			}
		}
	}
	for ci := range h.coups {
		cp := &h.coups[ci]
		ka, kb := cp.a.k, cp.b.k
		xa := xhat[cp.a.off : cp.a.off+ka]
		xb := xhat[cp.b.off : cp.b.off+kb]
		ya := yhat[cp.a.off : cp.a.off+ka]
		yb := yhat[cp.b.off : cp.b.off+kb]
		for p := 0; p < ka; p++ {
			row := cp.s[p*kb : (p+1)*kb]
			var s complex128
			xp := xa[p]
			for q, sv := range row {
				cv := complex(sv, 0)
				s += cv * xb[q]
				yb[q] += cv * xp
			}
			ya[p] += s
		}
	}
	for i := len(h.nodes) - 1; i >= 0; i-- {
		nd := h.nodes[i]
		if nd.off < 0 || nd.k == 0 {
			continue
		}
		in := yhat[nd.off : nd.off+nd.k]
		if nd.left == nil {
			for a, ei := range nd.t.Elems {
				row := nd.u[a*nd.k : (a+1)*nd.k]
				var s complex128
				for c, uv := range row {
					s += complex(uv, 0) * in[c]
				}
				dst[ei] += s
			}
			continue
		}
		r := 0
		for _, ch := range [2]*h2node{nd.left, nd.right} {
			cy := yhat[ch.off : ch.off+ch.k]
			for j := range cy {
				row := nd.u[r*nd.k : (r+1)*nd.k]
				var s complex128
				for c, uv := range row {
					s += complex(uv, 0) * in[c]
				}
				cy[j] += s
				r++
			}
		}
	}
}

// ApplyNearCTo computes dst = N*x over the exact off-diagonal near
// blocks only (no aliasing).
func (h *H2L) ApplyNearCTo(dst, x []complex128) {
	if len(dst) != h.n || len(x) != h.n {
		panic("extract: H2L ApplyNearCTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	applyNearDenseC(h.near, dst, x)
}

// EachUpper visits every strictly-upper-triangle entry once (coupling
// entries are the nested-basis approximation). Cross-direction pairs,
// identically zero, are not visited. Cost is O(n) per coupled element
// pair — use for inspection and small exports, not in solves.
func (h *H2L) EachUpper(fn func(i, j int, v float64)) {
	eachUpperDense(h.diag, h.near, fn)
	emit := func(i, j int, v float64) {
		if i < j {
			fn(i, j, v)
		} else {
			fn(j, i, v)
		}
	}
	memo := make(map[*h2node][]float64)
	for ci := range h.coups {
		cp := &h.coups[ci]
		va := h.vfull(cp.a, memo) // ma x ka over a's subtree elements
		vb := h.vfull(cp.b, memo)
		ka, kb := cp.a.k, cp.b.k
		aEl, bEl := cp.a.t.Elems, cp.b.t.Elems
		// w = va * s, then block = w * vbᵀ.
		w := make([]float64, len(aEl)*kb)
		for ia := range aEl {
			for p := 0; p < ka; p++ {
				av := va[ia*ka+p]
				if av == 0 {
					continue
				}
				srow := cp.s[p*kb : (p+1)*kb]
				wrow := w[ia*kb : (ia+1)*kb]
				for q, sv := range srow {
					wrow[q] += av * sv
				}
			}
		}
		for ia, ei := range aEl {
			wrow := w[ia*kb : (ia+1)*kb]
			for jb, ej := range bEl {
				s := 0.0
				vrow := vb[jb*kb : (jb+1)*kb]
				for q, wv := range wrow {
					s += wv * vrow[q]
				}
				emit(ei, ej, s)
			}
		}
	}
}

// vfull materializes a node's element-level basis (subtree elements x
// k, rows in t.Elems order) by pushing transfer matrices down through
// the children, memoized per EachUpper call.
func (h *H2L) vfull(nd *h2node, memo map[*h2node][]float64) []float64 {
	if v, ok := memo[nd]; ok {
		return v
	}
	var v []float64
	if nd.left == nil {
		v = nd.u
	} else {
		vl := h.vfull(nd.left, memo)
		vr := h.vfull(nd.right, memo)
		k, k1 := nd.k, nd.left.k
		ml, mr := len(nd.left.t.Elems), len(nd.right.t.Elems)
		v = make([]float64, (ml+mr)*k)
		for i := 0; i < ml; i++ {
			out := v[i*k : (i+1)*k]
			for p := 0; p < k1; p++ {
				lv := vl[i*k1+p]
				if lv == 0 {
					continue
				}
				trow := nd.u[p*k : (p+1)*k]
				for c, tv := range trow {
					out[c] += lv * tv
				}
			}
		}
		k2 := nd.right.k
		for i := 0; i < mr; i++ {
			out := v[(ml+i)*k : (ml+i+1)*k]
			for p := 0; p < k2; p++ {
				rv := vr[i*k2+p]
				if rv == 0 {
					continue
				}
				trow := nd.u[(k1+p)*k : (k1+p+1)*k]
				for c, tv := range trow {
					out[c] += rv * tv
				}
			}
		}
	}
	memo[nd] = v
	return v
}

// h2builder carries the construction state.
type h2builder struct {
	elems   []HElement
	entry   func(i, j int) float64
	opt     H2Options
	bounds  map[*ElemTree]nodeBounds
	workers int

	byTree    map[*ElemTree]*h2node
	nodes     []*h2node // post-order across all trees
	diagSpecs []*ElemTree
	nearSpecs [][2]*ElemTree
	cands     [][2]*h2node // admissible pairs, partition order
	coups     []h2coupling

	near  int64 // kernel entries into dense blocks (atomic)
	farEv int64 // kernel entries into bases/couplings (atomic)

	op *H2L
}

// CompressLH2 builds the nested-basis operator over elems from the
// given per-direction cluster trees. The entry contract matches
// CompressL: symmetric, called with i <= j only, safe for concurrent
// calls.
func CompressLH2(elems []HElement, trees []*ElemTree, entry func(i, j int) float64, opt H2Options) *H2L {
	b := &h2builder{
		elems:   elems,
		entry:   entry,
		opt:     opt,
		bounds:  make(map[*ElemTree]nodeBounds),
		workers: opt.Workers,
		byTree:  make(map[*ElemTree]*h2node),
		op:      &H2L{n: len(elems)},
	}
	for _, t := range trees {
		b.wrap(t, nil)
	}
	for _, t := range trees {
		b.visitSelf(t)
	}
	b.buildBases()
	b.resolveCouplings()
	b.fillDense()
	b.assignOffsets()
	b.op.elemBlock, b.op.elemPos = buildElemIndex(len(elems), b.op.diag)
	b.finishStats()
	return b.op
}

// wrap mirrors the element tree into h2nodes, post-order.
func (b *h2builder) wrap(t *ElemTree, parent *h2node) *h2node {
	nd := &h2node{t: t, parent: parent, off: -1}
	if t.Left != nil {
		nd.left = b.wrap(t.Left, nd)
		nd.right = b.wrap(t.Right, nd)
	}
	b.byTree[t] = nd
	b.nodes = append(b.nodes, nd)
	return nd
}

func (b *h2builder) boundsOf(t *ElemTree) nodeBounds {
	if bb, ok := b.bounds[t]; ok {
		return bb
	}
	bb := elemBounds(b.elems, t.Elems)
	b.bounds[t] = bb
	return bb
}

// visitSelf/visitPair partition a tree exactly like the flat
// compressor, but admissible pairs become basis-coupling candidates
// anchored at the pair's nodes instead of per-pair ACA factors.
func (b *h2builder) visitSelf(t *ElemTree) {
	if t.Left == nil {
		b.diagSpecs = append(b.diagSpecs, t)
		return
	}
	b.visitSelf(t.Left)
	b.visitSelf(t.Right)
	b.visitPair(t.Left, t.Right)
}

func (b *h2builder) visitPair(ta, tb *ElemTree) {
	if len(ta.Elems) == 0 || len(tb.Elems) == 0 {
		return
	}
	if boundsAdmissible(b.boundsOf(ta), b.boundsOf(tb), b.opt.eta()) {
		na, nb := b.byTree[ta], b.byTree[tb]
		na.partners = append(na.partners, tb.Elems)
		nb.partners = append(nb.partners, ta.Elems)
		b.cands = append(b.cands, [2]*h2node{na, nb})
		return
	}
	aLeaf, bLeaf := ta.Left == nil, tb.Left == nil
	switch {
	case aLeaf && bLeaf:
		b.nearSpecs = append(b.nearSpecs, [2]*ElemTree{ta, tb})
	case aLeaf:
		b.visitPair(ta, tb.Left)
		b.visitPair(ta, tb.Right)
	case bLeaf:
		b.visitPair(ta.Left, tb)
		b.visitPair(ta.Right, tb)
	case len(ta.Elems) >= len(tb.Elems):
		b.visitPair(ta.Left, tb)
		b.visitPair(ta.Right, tb)
	default:
		b.visitPair(ta, tb.Left)
		b.visitPair(ta, tb.Right)
	}
}

// buildBases marks every coupling endpoint and its subtree as needing a
// basis, then builds bases level by level from the deepest up, fanning
// each level's nodes across the workers. A node's far-field sample —
// the partner element sets of itself and its ancestors — is fixed by
// the serial partition, so the bases are deterministic.
func (b *h2builder) buildBases() {
	for _, pair := range b.cands {
		pair[0].need = true
		pair[1].need = true
	}
	// Propagate need down: nested bases interpolate children skeletons,
	// recursively to the leaves.
	var markDown func(nd *h2node)
	markDown = func(nd *h2node) {
		nd.need = true
		if nd.left != nil {
			markDown(nd.left)
			markDown(nd.right)
		}
	}
	maxLevel := 0
	for _, nd := range b.nodes {
		if nd.need {
			markDown(nd)
		}
		if nd.t.Level > maxLevel {
			maxLevel = nd.t.Level
		}
	}
	byLevel := make([][]*h2node, maxLevel+1)
	for _, nd := range b.nodes {
		if nd.need {
			byLevel[nd.t.Level] = append(byLevel[nd.t.Level], nd)
		}
	}
	for lvl := maxLevel; lvl >= 0; lvl-- {
		level := byLevel[lvl]
		parallelItems(b.workers, len(level), func(i int) {
			b.buildBasis(level[i])
		})
	}
}

// fieldSample gathers up to opt.Sample far-field element indices for a
// node: a deterministic stride over the concatenated partner lists of
// the node and its ancestors. The partition tiles the matrix, so those
// lists are disjoint.
func (b *h2builder) fieldSample(nd *h2node) []int {
	total := 0
	for a := nd; a != nil; a = a.parent {
		for _, p := range a.partners {
			total += len(p)
		}
	}
	budget := b.opt.sample()
	if total == 0 {
		return nil
	}
	stride := 1
	if total > budget {
		stride = total / budget
	}
	out := make([]int, 0, budget)
	pos := 0
	for a := nd; a != nil; a = a.parent {
		for _, p := range a.partners {
			for _, ei := range p {
				if pos%stride == 0 {
					out = append(out, ei)
					if len(out) == budget {
						return out
					}
				}
				pos++
			}
		}
	}
	return out
}

// buildBasis computes one node's interpolative basis (or transfer
// matrix). Children of a needed non-leaf are guaranteed built already
// (levels run deepest-first); a failed child fails the node.
func (b *h2builder) buildBasis(nd *h2node) {
	var rows []int
	if nd.left == nil {
		rows = nd.t.Elems
	} else {
		if nd.left.failed || nd.right.failed {
			nd.failed = true
			return
		}
		rows = make([]int, 0, len(nd.left.skel)+len(nd.right.skel))
		rows = append(rows, nd.left.skel...)
		rows = append(rows, nd.right.skel...)
	}
	cols := b.fieldSample(nd)
	m, s := len(rows), len(cols)
	if m == 0 || s == 0 {
		nd.skel, nd.u, nd.k = nil, nil, 0
		return
	}
	mat := make([]float64, m*s)
	for a, ri := range rows {
		for c, cj := range cols {
			if ri <= cj {
				mat[a*s+c] = b.entry(ri, cj)
			} else {
				mat[a*s+c] = b.entry(cj, ri)
			}
		}
	}
	atomic.AddInt64(&b.farEv, int64(m*s))
	pivots, u, ok := rowID(mat, m, s, b.opt.tol(), b.opt.MaxRank)
	if !ok {
		nd.failed = true
		return
	}
	nd.k = len(pivots)
	nd.u = u
	nd.skel = make([]int, nd.k)
	for l, p := range pivots {
		nd.skel[l] = rows[p]
	}
}

// rowID computes a row interpolative decomposition of the m x s matrix
// mat (row-major): it selects pivot rows p_1..p_k and returns U (m x k)
// with U[p_l] = e_l and mat ≈ U * mat[pivots], pivoting greedily on the
// largest residual row norm until it drops below tol times the largest
// initial row norm. maxRank > 0 caps k; hitting the cap above tolerance
// returns ok = false. An uncapped ID always succeeds (k ≤ min(m, s)
// zeroes the residual).
func rowID(mat []float64, m, s int, tol float64, maxRank int) (pivots []int, u []float64, ok bool) {
	res := append([]float64(nil), mat...)
	norm2 := make([]float64, m)
	maxNorm0 := 0.0
	for i := 0; i < m; i++ {
		n2 := 0.0
		for _, v := range res[i*s : (i+1)*s] {
			n2 += v * v
		}
		norm2[i] = n2
		if n2 > maxNorm0 {
			maxNorm0 = n2
		}
	}
	if maxNorm0 == 0 {
		return nil, nil, true
	}
	thresh2 := tol * tol * maxNorm0
	limit := m
	if s < limit {
		limit = s
	}
	isPivot := make([]bool, m)
	// coef[i*limit+l]: coefficient of row i on orthonormal direction l.
	coef := make([]float64, m*limit)
	k := 0
	for {
		p, best := -1, thresh2
		for i := 0; i < m; i++ {
			if !isPivot[i] && norm2[i] > best {
				p, best = i, norm2[i]
			}
		}
		if p < 0 {
			break // converged
		}
		if k == limit {
			break // residual is rounding noise beyond min(m, s) terms
		}
		if maxRank > 0 && k == maxRank {
			return nil, nil, false
		}
		// Orthonormalize the pivot row's residual and project the rest.
		prow := res[p*s : (p+1)*s]
		pn := 0.0
		for _, v := range prow {
			pn += v * v
		}
		pn = math.Sqrt(pn)
		if pn == 0 {
			norm2[p] = 0
			continue
		}
		inv := 1 / pn
		for j := range prow {
			prow[j] *= inv
		}
		coef[p*limit+k] = pn
		isPivot[p] = true
		for i := 0; i < m; i++ {
			if isPivot[i] {
				continue
			}
			irow := res[i*s : (i+1)*s]
			d := 0.0
			for j, qv := range prow {
				d += irow[j] * qv
			}
			coef[i*limit+k] = d
			for j, qv := range prow {
				irow[j] -= d * qv
			}
			norm2[i] -= d * d
			if norm2[i] < 0 {
				norm2[i] = 0
			}
		}
		pivots = append(pivots, p)
		norm2[p] = 0
		k++
	}
	// U solves U * C_S = C row-wise; C_S (the pivot rows' coefficients)
	// is lower-triangular with positive diagonal by construction.
	u = make([]float64, m*k)
	for l, p := range pivots {
		u[p*k+l] = 1
	}
	for i := 0; i < m; i++ {
		if isPivot[i] {
			continue
		}
		urow := u[i*k : i*k+k]
		ci := coef[i*limit : i*limit+k]
		for l := k - 1; l >= 0; l-- {
			x := ci[l]
			for r := l + 1; r < k; r++ {
				x -= urow[r] * coef[pivots[r]*limit+l]
			}
			urow[l] = x / coef[pivots[l]*limit+l]
		}
	}
	return pivots, u, true
}

// resolveCouplings turns the admissible candidates into coupling
// blocks, re-routing pairs whose endpoint bases failed down the tree —
// onto descendant bases where those converged, or onto exact dense
// leaf-leaf blocks at the bottom. The routing is serial geometry; the
// surviving blocks are then filled in parallel.
func (b *h2builder) resolveCouplings() {
	var route func(na, nb *h2node)
	bad := func(nd *h2node) bool { return !nd.hasBasis() }
	route = func(na, nb *h2node) {
		switch {
		case !bad(na) && !bad(nb):
			b.coups = append(b.coups, h2coupling{a: na, b: nb})
		case bad(na) && na.left != nil:
			route(na.left, nb)
			route(na.right, nb)
		case bad(nb) && nb.left != nil:
			route(na, nb.left)
			route(na, nb.right)
		case na.left == nil && nb.left == nil:
			b.nearSpecs = append(b.nearSpecs, [2]*ElemTree{na.t, nb.t})
		case na.left != nil:
			// The bad side is an unsplittable leaf; descend the good
			// side to dense leaf-leaf blocks.
			route(na.left, nb)
			route(na.right, nb)
		default:
			route(na, nb.left)
			route(na, nb.right)
		}
	}
	for _, pair := range b.cands {
		route(pair[0], pair[1])
	}
	parallelItems(b.workers, len(b.coups), func(i int) {
		cp := &b.coups[i]
		ka, kb := cp.a.k, cp.b.k
		s := make([]float64, ka*kb)
		for p, ri := range cp.a.skel {
			for q, cj := range cp.b.skel {
				if ri <= cj {
					s[p*kb+q] = b.entry(ri, cj)
				} else {
					s[p*kb+q] = b.entry(cj, ri)
				}
			}
		}
		atomic.AddInt64(&b.farEv, int64(ka*kb))
		cp.s = s
	})
	// Drop rank-zero couplings (an endpoint whose far field vanished);
	// they contribute nothing to the matvec.
	kept := b.coups[:0]
	for _, cp := range b.coups {
		if cp.a.k > 0 && cp.b.k > 0 {
			kept = append(kept, cp)
		}
	}
	b.coups = kept
	b.op.coups = b.coups
}

// fillDense evaluates the diagonal and near blocks in parallel.
func (b *h2builder) fillDense() {
	entry := func(i, j int) float64 {
		if i <= j {
			return b.entry(i, j)
		}
		return b.entry(j, i)
	}
	b.op.diag = make([]denseBlock, len(b.diagSpecs))
	parallelItems(b.workers, len(b.diagSpecs), func(bi int) {
		idx := b.diagSpecs[bi].Elems
		n := len(idx)
		v := make([]float64, n*n)
		for a := 0; a < n; a++ {
			v[a*n+a] = entry(idx[a], idx[a])
			for c := a + 1; c < n; c++ {
				e := entry(idx[a], idx[c])
				v[a*n+c] = e
				v[c*n+a] = e
			}
		}
		atomic.AddInt64(&b.near, int64(n*(n+1)/2))
		b.op.diag[bi] = denseBlock{rows: idx, cols: idx, v: v}
	})
	b.op.near = make([]denseBlock, len(b.nearSpecs))
	parallelItems(b.workers, len(b.nearSpecs), func(bi int) {
		rows, cols := b.nearSpecs[bi][0].Elems, b.nearSpecs[bi][1].Elems
		m, n := len(rows), len(cols)
		v := make([]float64, m*n)
		for a, i := range rows {
			for c, j := range cols {
				v[a*n+c] = entry(i, j)
			}
		}
		atomic.AddInt64(&b.near, int64(m*n))
		b.op.near[bi] = denseBlock{rows: rows, cols: cols, v: v}
	})
}

// assignOffsets lays the per-node skeleton coefficients out in one flat
// workspace and publishes the node order to the operator.
func (b *h2builder) assignOffsets() {
	off := 0
	for _, nd := range b.nodes {
		if nd.hasBasis() {
			nd.off = off
			off += nd.k
		}
	}
	b.op.wsize = off
	b.op.nodes = b.nodes
}

// buildElemIndex maps each element to its diagonal block and position,
// shared by both compressed operators for O(1) Diag lookups.
func buildElemIndex(n int, diag []denseBlock) (blk, pos []int32) {
	blk = make([]int32, n)
	pos = make([]int32, n)
	for bi, db := range diag {
		for p, i := range db.rows {
			blk[i] = int32(bi)
			pos[i] = int32(p)
		}
	}
	return blk, pos
}

func (b *h2builder) finishStats() {
	st := &b.op.stats
	st.N = b.op.n
	st.Nested = true
	st.DiagBlocks = len(b.op.diag)
	st.NearBlocks = len(b.op.near)
	st.FarBlocks = len(b.op.coups)
	for _, db := range b.op.diag {
		st.StoredFloats += len(db.v)
	}
	for _, db := range b.op.near {
		st.StoredFloats += len(db.v)
	}
	byLevel := make(map[int]*LevelStats)
	levelOf := func(lvl int) *LevelStats {
		ls := byLevel[lvl]
		if ls == nil {
			ls = &LevelStats{Level: lvl, MinRank: 1 << 30}
			byLevel[lvl] = ls
		}
		return ls
	}
	for _, nd := range b.op.nodes {
		if !nd.hasBasis() || nd.k == 0 {
			continue
		}
		st.StoredFloats += len(nd.u)
		ls := levelOf(nd.t.Level)
		ls.Bases++
		if nd.k > ls.BasisMaxRank {
			ls.BasisMaxRank = nd.k
		}
	}
	ranks := 0
	for _, cp := range b.op.coups {
		st.StoredFloats += len(cp.s)
		r := cp.a.k
		if cp.b.k < r {
			r = cp.b.k
		}
		ranks += r
		if r > st.MaxRank {
			st.MaxRank = r
		}
		lvl := cp.a.t.Level
		if cp.b.t.Level > lvl {
			lvl = cp.b.t.Level
		}
		ls := levelOf(lvl)
		ls.FarBlocks++
		if r < ls.MinRank {
			ls.MinRank = r
		}
		if r > ls.MaxRank {
			ls.MaxRank = r
		}
		ls.AvgRank += float64(r)
	}
	for _, ls := range byLevel {
		if ls.FarBlocks == 0 {
			ls.MinRank = 0
		}
	}
	if len(b.op.coups) > 0 {
		st.AvgRank = float64(ranks) / float64(len(b.op.coups))
	}
	st.Levels = sortedLevels(byLevel)
	st.DenseFloats = b.op.n * b.op.n
	st.NearKernelEvals = int(b.near)
	st.FarKernelEvals = int(b.farEv)
	st.KernelEvals = st.NearKernelEvals + st.FarKernelEvals
	st.DenseKernelEntries = b.op.n * (b.op.n + 1) / 2
}

// CompressInductanceH2 builds the nested-basis partial-inductance
// operator over the given layout segments, mirroring
// CompressInductance: one element per segment, kernels through the
// geometry-keyed cache named by cache, position k of the operator
// corresponding to segs[k].
func CompressInductanceH2(l *geom.Layout, segs []int, gmd GMDOptions, opt H2Options, cache CacheRef) *H2L {
	elems, trees, entry := segmentOperatorInputs(l, segs, gmd, cache, opt.Workers)
	return CompressLH2(elems, trees, entry, opt)
}
