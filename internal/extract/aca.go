package extract

import (
	"math"
	"sync"
	"sync/atomic"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// Hierarchically compressed partial-inductance operator.
//
// A dense partial-inductance matrix over n coupled elements costs O(n²)
// memory and O(n²) kernel evaluations, and any solve through it at
// least O(n²) per matvec — the wall the paper's §4 points at when it
// recommends hierarchical models over raw partial-inductance matrices.
// The structure that saves us is smoothness: the mutual-inductance
// kernel between well-separated parallel conductors varies slowly with
// their relative placement, so the interaction block between two
// distant clusters is numerically low-rank. This file implements the
// flat hierarchical-matrix recipe over a geometric cluster tree
// (geom.Index.ClusterTree):
//
//   - near blocks (clusters that touch or overlap) are stored dense,
//     assembled through the geometry-keyed kernel cache, exact to the
//     last bit;
//   - far blocks (clusters whose cross-plane separation — or gap along
//     the shared routing axis — exceeds η times their extents) are
//     compressed with adaptive cross approximation (ACA) into rank-k
//     factors U Vᵀ, sampling only O(k(m+n)) kernel entries;
//   - symmetry is preserved by construction: each off-diagonal block is
//     stored once and applied both ways with the same factors, so
//     ⟨e_i, L e_j⟩ and ⟨e_j, L e_i⟩ are bit-identical.
//
// A matvec then costs the sum of the near-block areas plus Σ k(m+n)
// over far blocks — near-linear in n on regular layouts — which is what
// makes matrix-free GMRES extraction (internal/fasthenry) scale. Each
// far block's factors still grow with the block's side length, though,
// so both storage and build flatten at ~10⁴ elements; h2.go upgrades
// the same partition to nested bases for the 10⁵ regime.
//
// Construction is two-phase so it parallelizes over the cluster tree:
// a serial geometric partition lists the diagonal, near and admissible
// blocks (no kernel evaluations), then workers claim blocks from the
// lists and fill them concurrently through the shared lock-striped
// kernel cache. Far blocks whose ACA hits the break-even rank cap are
// re-partitioned into their children between waves. Every block's
// content depends only on its own index lists, and blocks are stored in
// partition order, so the operator is bit-identical at any worker
// count.

// LOperator is the read interface shared by the compressed
// partial-inductance operators (the flat-ACA CompressedL and the
// nested-basis H2L): everything internal/fasthenry and the CLIs need
// to solve through, precondition, and inspect a compressed L without
// knowing its representation. Implementations are immutable after
// construction and safe for concurrent use.
type LOperator interface {
	// Dim returns the operator dimension.
	Dim() int
	// Stats returns the compression summary.
	Stats() CompressStats
	// Diag returns the exact diagonal entry L[i][i].
	Diag(i int) float64
	// DiagBlocks returns the dense diagonal leaf blocks — the basis of
	// the block-Jacobi preconditioner.
	DiagBlocks() []DiagBlock
	// ApplyTo computes dst = L*x over real vectors (no aliasing).
	ApplyTo(dst, x []float64)
	// ApplyCTo computes dst = L*x over complex vectors (no aliasing).
	ApplyCTo(dst, x []complex128)
	// ApplyNearCTo computes dst = N*x where N holds only the exact
	// off-diagonal near-field blocks — the sparse pattern the
	// approximate-inverse preconditioner corrects over.
	ApplyNearCTo(dst, x []complex128)
	// EachUpper visits every strictly-upper-triangle entry once.
	EachUpper(fn func(i, j int, v float64))
}

// HElement describes one current-carrying element (a conductor bar or a
// skin-effect filament) for the compressed operator: its routing
// direction, span along that axis, centre-line coordinates in the
// perpendicular plane, and a radius bounding its cross-section.
type HElement struct {
	Dir      int     // 0 = x-directed, 1 = y-directed (matches geom.Direction)
	A0, A1   float64 // span along the routing axis (m)
	Cross, Z float64 // centre-line cross coordinate and height (m)
	Rad      float64 // cross-section bounding radius (m)
}

// ElemTree is a cluster tree over element indices — the element-level
// mirror of geom.ClusterNode, with segments expanded into the elements
// they contain (a bar maps to itself, a FastHenry segment to its
// filaments).
type ElemTree struct {
	Elems       []int
	Left, Right *ElemTree
	// Level is the depth below the root (roots are level 0).
	Level int
}

// ElemTreesFromClusters converts segment cluster trees into element
// trees: each segment node's element list is the concatenation of
// elemsOf(seg) over its segments, preserving tree shape, order and
// levels.
func ElemTreesFromClusters(roots []*geom.ClusterNode, elemsOf func(seg int) []int) []*ElemTree {
	out := make([]*ElemTree, 0, len(roots))
	for _, r := range roots {
		out = append(out, elemTreeFrom(r, elemsOf, 0))
	}
	return out
}

func elemTreeFrom(n *geom.ClusterNode, elemsOf func(seg int) []int, level int) *ElemTree {
	t := &ElemTree{Level: level}
	if n.IsLeaf() {
		for _, si := range n.Segs {
			t.Elems = append(t.Elems, elemsOf(si)...)
		}
		return t
	}
	t.Left = elemTreeFrom(n.Left, elemsOf, level+1)
	t.Right = elemTreeFrom(n.Right, elemsOf, level+1)
	t.Elems = make([]int, 0, len(t.Left.Elems)+len(t.Right.Elems))
	t.Elems = append(t.Elems, t.Left.Elems...)
	t.Elems = append(t.Elems, t.Right.Elems...)
	return t
}

// ACAOptions controls the flat hierarchical compression.
type ACAOptions struct {
	// Tol is the relative Frobenius-norm tolerance of each low-rank
	// block: ACA stops adding rank-one terms once the latest term's
	// norm falls below Tol times the accumulated block norm. Default
	// 1e-8. Smaller is tighter and more expensive; the operator's
	// overall matvec error is of the same order as Tol.
	Tol float64
	// Eta is the admissibility parameter: two clusters are compressed
	// when their separation exceeds Eta times the sum of their extents
	// (cross-plane distance vs cross extents, or axis gap vs axis
	// extents for collinear clusters). Default 1.
	Eta float64
	// MaxRank caps each block's ACA rank; blocks that fail to converge
	// within the cap fall back to exact dense storage. Default: the
	// break-even rank m·n/(2(m+n)) beyond which the factors would cost
	// more than the dense block.
	MaxRank int
	// Workers caps the goroutines filling blocks during construction.
	// 0 = process default (matrix.Workers), 1 = fully serial. The
	// operator is bit-identical at every worker count.
	Workers int
}

func (o ACAOptions) tol() float64 {
	if o.Tol <= 0 {
		return 1e-8
	}
	return o.Tol
}

func (o ACAOptions) eta() float64 {
	if o.Eta <= 0 {
		return 1
	}
	return o.Eta
}

// denseBlock is an exactly stored interaction block. For diagonal
// blocks rows and cols are the same slice.
type denseBlock struct {
	rows, cols []int
	v          []float64 // len(rows) x len(cols), row-major
}

// lowRankBlock approximates an interaction block as U Vᵀ with k
// rank-one terms: u is k x len(rows), v is k x len(cols), row-major by
// term.
type lowRankBlock struct {
	rows, cols []int
	u, v       []float64
	k          int
	level      int // cluster-tree depth the block was created at
}

// LevelStats is one cluster-tree depth's compression summary: how many
// low-rank blocks (ACA factors or nested-basis couplings) live there
// and the spread of their ranks, plus — on the nested-basis path — the
// interpolation bases anchored at that depth. The per-level rank
// histogram is how compression quality vs depth is inspected without a
// debugger (rlsweep -v / inductx -v print it).
type LevelStats struct {
	Level     int // depth below the root (0 = coarsest)
	FarBlocks int // low-rank blocks anchored at this depth
	MinRank   int
	MaxRank   int
	AvgRank   float64
	// Bases and BasisMaxRank describe the nested-basis cluster bases at
	// this depth (zero on the flat-ACA path).
	Bases        int
	BasisMaxRank int
}

// CompressStats summarizes a compressed operator.
type CompressStats struct {
	N                  int // elements
	DiagBlocks         int // dense diagonal leaf blocks
	NearBlocks         int // dense off-diagonal blocks
	FarBlocks          int // low-rank far blocks (ACA factors or couplings)
	MaxRank            int
	AvgRank            float64
	StoredFloats       int // floats held by all blocks (and bases)
	DenseFloats        int // n*n a dense matrix would hold
	KernelEvals        int // kernel entries sampled during construction
	NearKernelEvals    int // exact evaluations into diagonal + near blocks
	FarKernelEvals     int // sampled evaluations into low-rank factors/bases
	DenseKernelEntries int // n*(n+1)/2 a dense assembly would evaluate
	Levels             []LevelStats
	Nested             bool // true for the nested-basis (H²) operator
}

// CompressionRatio returns dense storage over compressed storage.
func (s CompressStats) CompressionRatio() float64 {
	if s.StoredFloats == 0 {
		return 0
	}
	return float64(s.DenseFloats) / float64(s.StoredFloats)
}

// CompressedL is a symmetric partial-inductance operator stored as
// flat hierarchical blocks. It is immutable after construction and safe
// for concurrent ApplyTo/ApplyCTo/Diag/EachUpper calls — a frequency
// sweep shares one operator across all worker goroutines.
type CompressedL struct {
	n     int
	diag  []denseBlock
	near  []denseBlock
	far   []lowRankBlock
	stats CompressStats
	// elemBlock/elemPos locate each element's diagonal block for O(1)
	// Diag lookups and the block-Jacobi preconditioner.
	elemBlock []int32
	elemPos   []int32
	maxK      int
}

var _ LOperator = (*CompressedL)(nil)

// Dim returns the operator dimension.
func (c *CompressedL) Dim() int { return c.n }

// Stats returns the compression summary.
func (c *CompressedL) Stats() CompressStats { return c.stats }

// DiagBlock holds one diagonal leaf cluster: the element indices and
// the exact dense block over them (len(Idx)² row-major). The returned
// slices are views into the operator — callers must not modify them.
type DiagBlock struct {
	Idx []int
	V   []float64
}

// DiagBlocks returns the diagonal leaf blocks, the basis of the
// block-Jacobi preconditioner in internal/fasthenry.
func (c *CompressedL) DiagBlocks() []DiagBlock {
	return diagBlockViews(c.diag)
}

func diagBlockViews(diag []denseBlock) []DiagBlock {
	out := make([]DiagBlock, len(diag))
	for i, b := range diag {
		out[i] = DiagBlock{Idx: b.rows, V: b.v}
	}
	return out
}

// Diag returns the exact diagonal entry L[i][i].
func (c *CompressedL) Diag(i int) float64 {
	b := &c.diag[c.elemBlock[i]]
	p := int(c.elemPos[i])
	return b.v[p*len(b.cols)+p]
}

// applyDiagDense accumulates the symmetric dense diagonal blocks.
func applyDiagDense(diag []denseBlock, dst, x []float64) {
	for bi := range diag {
		b := &diag[bi]
		nc := len(b.cols)
		for a, i := range b.rows {
			row := b.v[a*nc : (a+1)*nc]
			s := 0.0
			for bidx, v := range row {
				s += v * x[b.cols[bidx]]
			}
			dst[i] += s
		}
	}
}

// applyNearDense accumulates the off-diagonal dense blocks both ways.
func applyNearDense(near []denseBlock, dst, x []float64) {
	for bi := range near {
		b := &near[bi]
		nc := len(b.cols)
		for a, i := range b.rows {
			row := b.v[a*nc : (a+1)*nc]
			s := 0.0
			for bidx, v := range row {
				s += v * x[b.cols[bidx]]
			}
			dst[i] += s
			// Transpose side: dst[cols] += row * x[i].
			xi := x[i]
			for bidx, v := range row {
				dst[b.cols[bidx]] += v * xi
			}
		}
	}
}

func applyDiagDenseC(diag []denseBlock, dst, x []complex128) {
	for bi := range diag {
		b := &diag[bi]
		nc := len(b.cols)
		for a, i := range b.rows {
			row := b.v[a*nc : (a+1)*nc]
			var s complex128
			for bidx, v := range row {
				s += complex(v, 0) * x[b.cols[bidx]]
			}
			dst[i] += s
		}
	}
}

func applyNearDenseC(near []denseBlock, dst, x []complex128) {
	for bi := range near {
		b := &near[bi]
		nc := len(b.cols)
		for a, i := range b.rows {
			row := b.v[a*nc : (a+1)*nc]
			var s complex128
			xi := x[i]
			for bidx, v := range row {
				cv := complex(v, 0)
				s += cv * x[b.cols[bidx]]
				dst[b.cols[bidx]] += cv * xi
			}
			dst[i] += s
		}
	}
}

// ApplyTo computes dst = L*x over real vectors. dst and x must not
// alias and have length Dim.
func (c *CompressedL) ApplyTo(dst, x []float64) {
	if len(dst) != c.n || len(x) != c.n {
		panic("extract: CompressedL ApplyTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	applyDiagDense(c.diag, dst, x)
	applyNearDense(c.near, dst, x)
	t := make([]float64, c.maxK)
	for bi := range c.far {
		b := &c.far[bi]
		m, n := len(b.rows), len(b.cols)
		// dst[rows] += U (Vᵀ x[cols]); dst[cols] += V (Uᵀ x[rows]).
		for k := 0; k < b.k; k++ {
			vk := b.v[k*n : (k+1)*n]
			s := 0.0
			for j, cj := range b.cols {
				s += vk[j] * x[cj]
			}
			t[k] = s
		}
		for k := 0; k < b.k; k++ {
			uk := b.u[k*m : (k+1)*m]
			tk := t[k]
			for a, ri := range b.rows {
				dst[ri] += uk[a] * tk
			}
		}
		for k := 0; k < b.k; k++ {
			uk := b.u[k*m : (k+1)*m]
			s := 0.0
			for a, ri := range b.rows {
				s += uk[a] * x[ri]
			}
			t[k] = s
		}
		for k := 0; k < b.k; k++ {
			vk := b.v[k*n : (k+1)*n]
			tk := t[k]
			for j, cj := range b.cols {
				dst[cj] += vk[j] * tk
			}
		}
	}
}

// ApplyCTo computes dst = L*x over complex vectors (the factors are
// real; the FastHenry branch-impedance operator applies jωL to complex
// currents). dst and x must not alias and have length Dim.
func (c *CompressedL) ApplyCTo(dst, x []complex128) {
	if len(dst) != c.n || len(x) != c.n {
		panic("extract: CompressedL ApplyCTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	applyDiagDenseC(c.diag, dst, x)
	applyNearDenseC(c.near, dst, x)
	t := make([]complex128, c.maxK)
	for bi := range c.far {
		b := &c.far[bi]
		m, n := len(b.rows), len(b.cols)
		for k := 0; k < b.k; k++ {
			vk := b.v[k*n : (k+1)*n]
			var s complex128
			for j, cj := range b.cols {
				s += complex(vk[j], 0) * x[cj]
			}
			t[k] = s
		}
		for k := 0; k < b.k; k++ {
			uk := b.u[k*m : (k+1)*m]
			tk := t[k]
			for a, ri := range b.rows {
				dst[ri] += complex(uk[a], 0) * tk
			}
		}
		for k := 0; k < b.k; k++ {
			uk := b.u[k*m : (k+1)*m]
			var s complex128
			for a, ri := range b.rows {
				s += complex(uk[a], 0) * x[ri]
			}
			t[k] = s
		}
		for k := 0; k < b.k; k++ {
			vk := b.v[k*n : (k+1)*n]
			tk := t[k]
			for j, cj := range b.cols {
				dst[cj] += complex(vk[j], 0) * tk
			}
		}
	}
}

// ApplyNearCTo computes dst = N*x over the exact off-diagonal near
// blocks only — the sparse near-field pattern the approximate-inverse
// preconditioner in internal/fasthenry corrects over. dst and x must
// not alias and have length Dim.
func (c *CompressedL) ApplyNearCTo(dst, x []complex128) {
	if len(dst) != c.n || len(x) != c.n {
		panic("extract: CompressedL ApplyNearCTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	applyNearDenseC(c.near, dst, x)
}

// EachUpper visits every strictly-upper-triangle entry (i < j, value
// possibly an ACA approximation on far blocks) exactly once, in block
// order. Cross-direction pairs, which are identically zero, are not
// visited.
func (c *CompressedL) EachUpper(fn func(i, j int, v float64)) {
	eachUpperDense(c.diag, c.near, fn)
	emit := func(i, j int, v float64) {
		if i < j {
			fn(i, j, v)
		} else {
			fn(j, i, v)
		}
	}
	for bi := range c.far {
		b := &c.far[bi]
		m, n := len(b.rows), len(b.cols)
		for a, i := range b.rows {
			for j, cj := range b.cols {
				s := 0.0
				for k := 0; k < b.k; k++ {
					s += b.u[k*m+a] * b.v[k*n+j]
				}
				emit(i, cj, s)
			}
		}
	}
}

// eachUpperDense walks the diagonal and near dense blocks shared by
// both operator representations.
func eachUpperDense(diag, near []denseBlock, fn func(i, j int, v float64)) {
	emit := func(i, j int, v float64) {
		if i < j {
			fn(i, j, v)
		} else {
			fn(j, i, v)
		}
	}
	for bi := range diag {
		b := &diag[bi]
		nc := len(b.cols)
		for a := range b.rows {
			for bidx := a + 1; bidx < nc; bidx++ {
				emit(b.rows[a], b.cols[bidx], b.v[a*nc+bidx])
			}
		}
	}
	for bi := range near {
		b := &near[bi]
		nc := len(b.cols)
		for a, i := range b.rows {
			for bidx, j := range b.cols {
				emit(i, j, b.v[a*nc+bidx])
			}
		}
	}
}

// nodeBounds is the cached geometry of one cluster-tree node.
type nodeBounds struct {
	axisLo, axisHi   float64
	crossLo, crossHi float64 // inflated by element radii
	zLo, zHi         float64 // inflated by element radii
}

func (b nodeBounds) crossExtent() float64 {
	return math.Hypot(b.crossHi-b.crossLo, b.zHi-b.zLo)
}

func gap(aLo, aHi, bLo, bHi float64) float64 {
	if aHi < bLo {
		return bLo - aHi
	}
	if bHi < aLo {
		return aLo - bHi
	}
	return 0
}

// elemBounds computes the bounding box of the given elements, inflated
// by their cross-section radii.
func elemBounds(elems []HElement, idx []int) nodeBounds {
	var b nodeBounds
	for i, ei := range idx {
		e := &elems[ei]
		if i == 0 {
			b = nodeBounds{
				axisLo: e.A0, axisHi: e.A1,
				crossLo: e.Cross - e.Rad, crossHi: e.Cross + e.Rad,
				zLo: e.Z - e.Rad, zHi: e.Z + e.Rad,
			}
			continue
		}
		b.axisLo = math.Min(b.axisLo, e.A0)
		b.axisHi = math.Max(b.axisHi, e.A1)
		b.crossLo = math.Min(b.crossLo, e.Cross-e.Rad)
		b.crossHi = math.Max(b.crossHi, e.Cross+e.Rad)
		b.zLo = math.Min(b.zLo, e.Z-e.Rad)
		b.zHi = math.Max(b.zHi, e.Z+e.Rad)
	}
	return b
}

// boundsAdmissible reports whether two bounded clusters are smooth
// enough to compress: separated in the cross plane by more than eta
// times their combined cross extents, or — for collinear clusters —
// separated along the routing axis by more than eta times their
// combined axis extents. Either separation bounds the kernel away from
// its near-field singularity across the whole block.
func boundsAdmissible(ba, bb nodeBounds, eta float64) bool {
	crossDist := math.Hypot(
		gap(ba.crossLo, ba.crossHi, bb.crossLo, bb.crossHi),
		gap(ba.zLo, ba.zHi, bb.zLo, bb.zHi),
	)
	if crossDist > 0 && crossDist >= eta*(ba.crossExtent()+bb.crossExtent()) {
		return true
	}
	axisGap := gap(ba.axisLo, ba.axisHi, bb.axisLo, bb.axisHi)
	if axisGap > 0 && axisGap >= eta*((ba.axisHi-ba.axisLo)+(bb.axisHi-bb.axisLo)) {
		return true
	}
	return false
}

type compressor struct {
	elems   []HElement
	entry   func(i, j int) float64
	opt     ACAOptions
	bounds  map[*ElemTree]nodeBounds
	op      *CompressedL
	near    int64 // kernel entries into diagonal/near blocks (atomic)
	farEv   int64 // kernel entries sampled by ACA (atomic)
	workers int

	// Partition output, in deterministic order.
	diagSpecs []*ElemTree
	nearSpecs [][2]*ElemTree
	farCands  []farCand
}

type farCand struct {
	a, b  *ElemTree
	level int
}

func (c *compressor) boundsOf(t *ElemTree) nodeBounds {
	if b, ok := c.bounds[t]; ok {
		return b
	}
	b := elemBounds(c.elems, t.Elems)
	c.bounds[t] = b
	return b
}

// admissible reports whether the (a, b) interaction block is smooth
// enough to compress.
func (c *compressor) admissible(a, b *ElemTree) bool {
	return boundsAdmissible(c.boundsOf(a), c.boundsOf(b), c.opt.eta())
}

// CompressL builds the flat hierarchically compressed operator over
// elems from the given per-direction cluster trees. entry(i, j) must
// return the symmetric interaction L[i][j] and be safe to call with
// i == j; it is evaluated with i <= j only, so kernel-cache keys stay
// canonical, and it must be safe for concurrent calls (the build fans
// out over ACAOptions.Workers). Trees must partition [0, len(elems))
// and each tree must hold elements of a single direction.
func CompressL(elems []HElement, trees []*ElemTree, entry func(i, j int) float64, opt ACAOptions) *CompressedL {
	c := &compressor{
		elems:   elems,
		entry:   entry,
		opt:     opt,
		bounds:  make(map[*ElemTree]nodeBounds),
		op:      &CompressedL{n: len(elems)},
		workers: opt.Workers,
	}
	for _, t := range trees {
		c.visitSelf(t)
	}
	// Cross-direction tree pairs couple nothing (zero blocks) and are
	// skipped entirely; within-direction roots are each a single tree.
	c.fillBlocks()
	c.op.elemBlock = make([]int32, len(elems))
	c.op.elemPos = make([]int32, len(elems))
	for bi, b := range c.op.diag {
		for p, i := range b.rows {
			c.op.elemBlock[i] = int32(bi)
			c.op.elemPos[i] = int32(p)
		}
	}
	c.finishStats()
	return c.op
}

// visitSelf partitions a tree against itself: leaves become dense
// diagonal blocks, sibling interactions are partitioned into near and
// admissible far candidates. Pure geometry — no kernel evaluations.
func (c *compressor) visitSelf(t *ElemTree) {
	if t.Left == nil {
		c.diagSpecs = append(c.diagSpecs, t)
		return
	}
	c.visitSelf(t.Left)
	c.visitSelf(t.Right)
	c.visitPair(t.Left, t.Right)
}

func (c *compressor) visitPair(a, b *ElemTree) {
	if len(a.Elems) == 0 || len(b.Elems) == 0 {
		return
	}
	if c.admissible(a, b) {
		lvl := a.Level
		if b.Level > lvl {
			lvl = b.Level
		}
		c.farCands = append(c.farCands, farCand{a: a, b: b, level: lvl})
		return
	}
	c.subdividePair(a, b)
}

// subdividePair recurses an inadmissible (or ACA-failed) pair one step
// down, mirroring the classic H-matrix partition.
func (c *compressor) subdividePair(a, b *ElemTree) {
	aLeaf, bLeaf := a.Left == nil, b.Left == nil
	switch {
	case aLeaf && bLeaf:
		c.nearSpecs = append(c.nearSpecs, [2]*ElemTree{a, b})
	case aLeaf:
		c.visitPair(a, b.Left)
		c.visitPair(a, b.Right)
	case bLeaf:
		c.visitPair(a.Left, b)
		c.visitPair(a.Right, b)
	case len(a.Elems) >= len(b.Elems):
		c.visitPair(a.Left, b)
		c.visitPair(a.Right, b)
	default:
		c.visitPair(a, b.Left)
		c.visitPair(a, b.Right)
	}
}

// fillBlocks evaluates the partitioned blocks in parallel waves: all
// diagonal/near blocks plus the current far candidates are filled
// concurrently; far candidates whose ACA fails are re-partitioned and
// their replacement blocks filled in the next wave. Block content
// depends only on its own index lists and blocks land in partition
// order, so the result is identical at every worker count.
func (c *compressor) fillBlocks() {
	for wave := 0; len(c.farCands) > 0 || wave == 0; wave++ {
		cands := c.farCands
		c.farCands = nil
		type farResult struct {
			u, v []float64
			k    int
			ok   bool
		}
		results := make([]farResult, len(cands))
		parallelItems(c.workers, len(cands), func(i int) {
			u, v, k, ok := c.aca(cands[i].a.Elems, cands[i].b.Elems)
			results[i] = farResult{u: u, v: v, k: k, ok: ok}
		})
		for i, r := range results {
			if r.ok {
				c.op.far = append(c.op.far, lowRankBlock{
					rows: cands[i].a.Elems, cols: cands[i].b.Elems,
					u: r.u, v: r.v, k: r.k, level: cands[i].level,
				})
				if r.k > c.op.maxK {
					c.op.maxK = r.k
				}
				continue
			}
			// The block refused to converge within the break-even rank:
			// subdivide (or store dense at the leaves) next wave.
			c.subdividePair(cands[i].a, cands[i].b)
		}
	}
	// All dense blocks are known now; fill them concurrently.
	c.op.diag = make([]denseBlock, len(c.diagSpecs))
	parallelItems(c.workers, len(c.diagSpecs), func(i int) {
		c.op.diag[i] = c.buildDiag(c.diagSpecs[i].Elems)
	})
	c.op.near = make([]denseBlock, len(c.nearSpecs))
	parallelItems(c.workers, len(c.nearSpecs), func(i int) {
		c.op.near[i] = c.buildNear(c.nearSpecs[i][0].Elems, c.nearSpecs[i][1].Elems)
	})
}

// parallelItems runs fn(0..n-1) across workers goroutines with an
// atomic work counter (item costs vary wildly — top-level far blocks
// dominate — so fine-grained stealing balances best). workers <= 0
// means the process default; 1 runs inline.
func parallelItems(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = matrix.Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// entryNear evaluates the symmetric kernel into a dense block with
// canonical argument order.
func (c *compressor) entryNear(i, j int) float64 {
	atomic.AddInt64(&c.near, 1)
	if i <= j {
		return c.entry(i, j)
	}
	return c.entry(j, i)
}

// entryFar evaluates the symmetric kernel as an ACA sample.
func (c *compressor) entryFar(i, j int) float64 {
	atomic.AddInt64(&c.farEv, 1)
	if i <= j {
		return c.entry(i, j)
	}
	return c.entry(j, i)
}

func (c *compressor) buildDiag(idx []int) denseBlock {
	n := len(idx)
	v := make([]float64, n*n)
	for a := 0; a < n; a++ {
		v[a*n+a] = c.entryNear(idx[a], idx[a])
		for b := a + 1; b < n; b++ {
			e := c.entryNear(idx[a], idx[b])
			v[a*n+b] = e
			v[b*n+a] = e
		}
	}
	return denseBlock{rows: idx, cols: idx, v: v}
}

func (c *compressor) buildNear(rows, cols []int) denseBlock {
	m, n := len(rows), len(cols)
	v := make([]float64, m*n)
	for a, i := range rows {
		for b, j := range cols {
			v[a*n+b] = c.entryNear(i, j)
		}
	}
	return denseBlock{rows: rows, cols: cols, v: v}
}

// aca runs partially pivoted adaptive cross approximation on the block
// entry(rows[a], cols[b]), sampling whole residual rows and columns
// until the newest rank-one term's norm drops below tol times the
// accumulated approximation norm.
func (c *compressor) aca(rows, cols []int) (u, v []float64, rank int, ok bool) {
	m, n := len(rows), len(cols)
	maxRank := c.opt.MaxRank
	if maxRank <= 0 {
		maxRank = m * n / (2 * (m + n))
	}
	if maxRank < 1 {
		// Blocks too small to ever profit from factors.
		return nil, nil, 0, false
	}
	tol := c.opt.tol()
	usedRow := make([]bool, m)
	usedCol := make([]bool, n)
	fro2 := 0.0
	i := 0
	rowsLeft := m
	for rank < maxRank {
		// Residual row i.
		r := make([]float64, n)
		for j := 0; j < n; j++ {
			e := c.entryFar(rows[i], cols[j])
			for k := 0; k < rank; k++ {
				e -= u[k*m+i] * v[k*n+j]
			}
			r[j] = e
		}
		usedRow[i] = true
		rowsLeft--
		// Pivot column: largest residual among unused columns.
		jp, amax := -1, 0.0
		for j := 0; j < n; j++ {
			if usedCol[j] {
				continue
			}
			if a := math.Abs(r[j]); a > amax {
				jp, amax = j, a
			}
		}
		if jp < 0 || amax == 0 {
			// Row already fully represented: move to the next one, or
			// stop if the whole block is captured.
			if rowsLeft == 0 {
				return u, v, rank, true
			}
			for a := 0; a < m; a++ {
				if !usedRow[a] {
					i = a
					break
				}
			}
			continue
		}
		piv := r[jp]
		for j := range r {
			r[j] /= piv
		}
		// Residual column jp.
		cv := make([]float64, m)
		for a := 0; a < m; a++ {
			e := c.entryFar(rows[a], cols[jp])
			for k := 0; k < rank; k++ {
				e -= u[k*m+a] * v[k*n+jp]
			}
			cv[a] = e
		}
		usedCol[jp] = true
		// Accumulate the new term and the running Frobenius norm:
		// ||A_k||² = ||A_{k-1}||² + 2 Σ (u_k·u_t)(v_k·v_t) + ||u_k||²||v_k||².
		nu2, nv2 := 0.0, 0.0
		for _, x := range cv {
			nu2 += x * x
		}
		for _, x := range r {
			nv2 += x * x
		}
		for k := 0; k < rank; k++ {
			du, dv := 0.0, 0.0
			for a := 0; a < m; a++ {
				du += u[k*m+a] * cv[a]
			}
			for j := 0; j < n; j++ {
				dv += v[k*n+j] * r[j]
			}
			fro2 += 2 * du * dv
		}
		fro2 += nu2 * nv2
		u = append(u, cv...)
		v = append(v, r...)
		rank++
		if math.Sqrt(nu2*nv2) <= tol*math.Sqrt(math.Max(fro2, 0)) {
			return u, v, rank, true
		}
		if rowsLeft == 0 {
			return u, v, rank, true
		}
		// Next pivot row: largest entry of the new column among unused
		// rows.
		ip, rmax := -1, -1.0
		for a := 0; a < m; a++ {
			if usedRow[a] {
				continue
			}
			if x := math.Abs(cv[a]); x > rmax {
				ip, rmax = a, x
			}
		}
		i = ip
	}
	return nil, nil, 0, false
}

func (c *compressor) finishStats() {
	st := &c.op.stats
	st.N = c.op.n
	st.DiagBlocks = len(c.op.diag)
	st.NearBlocks = len(c.op.near)
	st.FarBlocks = len(c.op.far)
	for _, b := range c.op.diag {
		st.StoredFloats += len(b.v)
	}
	for _, b := range c.op.near {
		st.StoredFloats += len(b.v)
	}
	ranks := 0
	byLevel := make(map[int]*LevelStats)
	for _, b := range c.op.far {
		st.StoredFloats += len(b.u) + len(b.v)
		ranks += b.k
		if b.k > st.MaxRank {
			st.MaxRank = b.k
		}
		ls := byLevel[b.level]
		if ls == nil {
			ls = &LevelStats{Level: b.level, MinRank: b.k}
			byLevel[b.level] = ls
		}
		ls.FarBlocks++
		if b.k < ls.MinRank {
			ls.MinRank = b.k
		}
		if b.k > ls.MaxRank {
			ls.MaxRank = b.k
		}
		ls.AvgRank += float64(b.k)
	}
	if len(c.op.far) > 0 {
		st.AvgRank = float64(ranks) / float64(len(c.op.far))
	}
	st.Levels = sortedLevels(byLevel)
	st.DenseFloats = c.op.n * c.op.n
	st.NearKernelEvals = int(c.near)
	st.FarKernelEvals = int(c.farEv)
	st.KernelEvals = st.NearKernelEvals + st.FarKernelEvals
	st.DenseKernelEntries = c.op.n * (c.op.n + 1) / 2
}

// sortedLevels orders the per-level stats by depth and finalizes the
// rank averages (accumulated as sums).
func sortedLevels(byLevel map[int]*LevelStats) []LevelStats {
	out := make([]LevelStats, 0, len(byLevel))
	for _, ls := range byLevel {
		if ls.FarBlocks > 0 {
			ls.AvgRank /= float64(ls.FarBlocks)
		}
		out = append(out, *ls)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Level < out[j-1].Level; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CompressInductance builds the compressed partial-inductance operator
// over the given layout segments (one element per segment), with the
// same self/mutual kernels — through the geometry-keyed cache named by
// cache (zero = process default) — as InductanceMatrix with an
// unlimited window. Position k of the operator corresponds to segs[k].
func CompressInductance(l *geom.Layout, segs []int, gmd GMDOptions, opt ACAOptions, cache CacheRef) *CompressedL {
	elems, trees, entry := segmentOperatorInputs(l, segs, gmd, cache, opt.Workers)
	return CompressL(elems, trees, entry, opt)
}

// segmentOperatorInputs prepares the shared inputs of the segment-level
// compressed operators: one HElement per segment, per-direction cluster
// trees, and the cached self/mutual kernel closure.
func segmentOperatorInputs(l *geom.Layout, segs []int, gmd GMDOptions, cache CacheRef, workers int) ([]HElement, []*ElemTree, func(i, j int) float64) {
	kc := cache.Cache()
	elems := make([]HElement, len(segs))
	for k, si := range segs {
		s := &l.Segments[si]
		t := l.Layers[s.Layer].Thickness
		lo, hi := s.AxisSpan()
		elems[k] = HElement{
			Dir: int(s.Dir), A0: lo, A1: hi,
			Cross: s.CrossCoord(), Z: l.Z(si),
			Rad: math.Hypot(s.Width, t) / 2,
		}
	}
	pos := make(map[int]int, len(segs))
	for k, si := range segs {
		pos[si] = k
	}
	entry := func(i, j int) float64 {
		si, sj := segs[i], segs[j]
		a := &l.Segments[si]
		ta := l.Layers[a.Layer].Thickness
		if i == j {
			return kc.SelfInductanceBar(a.Length, a.Width, ta)
		}
		b := &l.Segments[sj]
		pg, okPar := l.Parallel(si, sj)
		if !okPar {
			return 0
		}
		tb := l.Layers[b.Layer].Thickness
		return kc.MutualBars(pg, a.Width, ta, b.Width, tb, gmd)
	}
	idx := geom.NewIndex(l, 0)
	roots := idx.ClusterTreeParallel(segs, 16, workers)
	trees := ElemTreesFromClusters(roots, func(si int) []int { return []int{pos[si]} })
	return elems, trees, entry
}
