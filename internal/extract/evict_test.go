package extract

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"inductance101/internal/geom"
)

// keysInShard synthesizes n distinct kernel keys that all hash to the
// same stripe, so the CLOCK policy of a single shard can be exercised
// deterministically.
func keysInShard(n int) []kernelKey {
	var out []kernelKey
	want := -1
	for i := uint64(1); len(out) < n; i++ {
		k := kernelKey{kind: kindSelfBar}
		k.p[0] = i
		if want < 0 {
			want = k.shard()
		}
		if k.shard() == want {
			out = append(out, k)
		}
	}
	return out
}

// TestBoundedCacheEvictionDeterministic pins the CLOCK policy on one
// shard: with a two-entry budget the oldest unreferenced entry is the
// victim, and a hit's reference bit buys its entry a second chance.
func TestBoundedCacheEvictionDeterministic(t *testing.T) {
	keys := keysInShard(3)
	val := func(k kernelKey) float64 { return float64(k.p[0]) }
	lookup := func(c *KernelCache, k kernelKey) float64 {
		return c.getOrCompute(k, func() float64 { return val(k) })
	}

	// Cold inserts only: the hand evicts the oldest entry.
	c := NewBoundedCache(cacheShards * 2 * entryBytes)
	lookup(c, keys[0])
	lookup(c, keys[1])
	lookup(c, keys[2]) // evicts keys[0]
	if got := c.Stats(); got.Entries != 2 || got.Evictions != 1 {
		t.Fatalf("after 3 inserts at 2-entry budget: %+v", got)
	}
	misses := c.misses.Load()
	lookup(c, keys[1])
	lookup(c, keys[2])
	if c.misses.Load() != misses {
		t.Errorf("resident keys missed after eviction pass")
	}
	misses = c.misses.Load()
	if lookup(c, keys[0]); c.misses.Load() != misses+1 {
		t.Errorf("evicted key did not re-miss")
	}

	// Second chance: a referenced entry survives, the unreferenced
	// newer entry is reclaimed instead.
	c = NewBoundedCache(cacheShards * 2 * entryBytes)
	lookup(c, keys[0])
	lookup(c, keys[1])
	lookup(c, keys[0]) // hit: sets keys[0]'s reference bit
	lookup(c, keys[2]) // hand clears keys[0]'s bit, evicts keys[1]
	misses = c.misses.Load()
	if lookup(c, keys[0]); c.misses.Load() != misses {
		t.Errorf("referenced entry was evicted despite its second chance")
	}
	if lookup(c, keys[1]); c.misses.Load() != misses+1 {
		t.Errorf("unreferenced entry survived over the referenced one")
	}

	// Eviction must never change values: every lookup above returned
	// the recomputed bits.
	for _, k := range keys {
		if got := lookup(c, k); got != val(k) {
			t.Fatalf("key %d: got %g want %g", k.p[0], got, val(k))
		}
	}
}

// TestBoundedCacheByteAccounting drives concurrent inserts and
// evictions through a small cap while a sampler asserts the accounted
// footprint stays under the cap, and checks the final accounting is
// exact: Bytes == Entries*entryBytes and entries never exceed the
// budget.
func TestBoundedCacheByteAccounting(t *testing.T) {
	const capBytes = cacheShards * 4 * entryBytes // 4 entries per shard
	c := NewBoundedCache(capBytes)

	const goroutines = 8
	const perG = 4000
	stop := make(chan struct{})
	var samplerErr error
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := c.Stats()
			if st.Bytes > capBytes {
				samplerErr = fmt.Errorf("resident bytes %d exceed cap %d", st.Bytes, capBytes)
				return
			}
			if st.Bytes%entryBytes != 0 {
				samplerErr = fmt.Errorf("resident bytes %d not a multiple of entryBytes", st.Bytes)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Overlapping key ranges: some keys race across
				// goroutines, most churn the CLOCK rings.
				id := uint64(g*perG/2 + i)
				k := kernelKey{kind: kindMutualFilaments}
				k.p[0] = id
				want := float64(id) * 0.5
				if got := c.getOrCompute(k, func() float64 { return want }); got != want {
					t.Errorf("key %d: got %g want %g", id, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	samplerWG.Wait()
	if samplerErr != nil {
		t.Fatal(samplerErr)
	}

	st := c.Stats()
	if st.Bytes != int64(st.Entries)*entryBytes {
		t.Errorf("byte accounting drifted: %d entries but %d bytes", st.Entries, st.Bytes)
	}
	if st.Bytes > capBytes {
		t.Errorf("final resident bytes %d exceed cap %d", st.Bytes, capBytes)
	}
	if st.Evictions == 0 {
		t.Errorf("workload of %d distinct keys at a %d-entry cap evicted nothing", goroutines*perG, capBytes/entryBytes)
	}
	if st.Hits+st.Misses == 0 {
		t.Errorf("counters recorded no lookups")
	}
}

// TestBoundedCacheHitRateRepeatedLayout reruns the same extraction
// through a bounded cache whose cap comfortably holds the working set:
// the hit rate must match the unbounded cache exactly, and the
// extracted matrices must be bit-identical.
func TestBoundedCacheHitRateRepeatedLayout(t *testing.T) {
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	var segs []int
	for w := 0; w < 12; w++ {
		segs = append(segs, lay.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, X0: 0, Y0: float64(w) * 2e-6,
			Length: 400e-6, Width: 1e-6,
			Net:   fmt.Sprintf("w%d", w),
			NodeA: fmt.Sprintf("a%d", w), NodeB: fmt.Sprintf("b%d", w),
		}))
	}

	unbounded := PrivateCache()
	bounded := PrivateCacheBytes(8 << 20)
	for pass := 0; pass < 3; pass++ {
		a := InductanceMatrix(lay, segs, 0, GMDOptions{}, unbounded)
		b := InductanceMatrix(lay, segs, 0, GMDOptions{}, bounded)
		for i := 0; i < len(segs); i++ {
			for j := 0; j < len(segs); j++ {
				if av, bv := a.At(i, j), b.At(i, j); math.Float64bits(av) != math.Float64bits(bv) {
					t.Fatalf("pass %d: L[%d,%d] differs: %g vs %g", pass, i, j, av, bv)
				}
			}
		}
	}
	su, sb := unbounded.Stats(), bounded.Stats()
	if su.Hits != sb.Hits || su.Misses != sb.Misses {
		t.Errorf("bounded cache hit rate degraded on repeated layout: unbounded %d/%d, bounded %d/%d",
			su.Hits, su.Misses, sb.Hits, sb.Misses)
	}
	if sb.Evictions != 0 {
		t.Errorf("cap holding the working set still evicted %d entries", sb.Evictions)
	}
	if sb.Bytes != int64(sb.Entries)*entryBytes {
		t.Errorf("byte accounting drifted: %d entries but %d bytes", sb.Entries, sb.Bytes)
	}
}

// TestCacheCapacityEdgeCases covers shrinking an over-full cache, caps
// too small to give every shard a budget, and removing the bound.
func TestCacheCapacityEdgeCases(t *testing.T) {
	c := new(KernelCache) // unbounded
	for i := uint64(1); i <= 500; i++ {
		k := kernelKey{kind: kindCouplingCapPerLen}
		k.p[0] = i
		c.getOrCompute(k, func() float64 { return float64(i) })
	}
	if st := c.Stats(); st.Entries != 500 || st.CapBytes != 0 {
		t.Fatalf("unbounded fill: %+v", st)
	}

	// Shrinking trims immediately.
	const cap2 = cacheShards * 2 * entryBytes
	c.SetCapacity(cap2)
	st := c.Stats()
	if st.Bytes > cap2 {
		t.Errorf("SetCapacity did not trim: %d bytes over cap %d", st.Bytes, cap2)
	}
	if st.Evictions == 0 {
		t.Errorf("trim recorded no evictions")
	}
	if st.Bytes != int64(st.Entries)*entryBytes {
		t.Errorf("byte accounting drifted after trim: %+v", st)
	}

	// A cap below one entry per shard leaves no budget: lookups still
	// return exact values but store nothing new.
	c.SetCapacity(entryBytes / 2)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("sub-shard cap retained %d entries", st.Entries)
	}
	k := kernelKey{kind: kindCouplingCapPerLen}
	k.p[0] = 10001
	if got := c.getOrCompute(k, func() float64 { return 42 }); got != 42 {
		t.Fatalf("budgetless lookup returned %g", got)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("budgetless shard stored an entry")
	}

	// Removing the bound restores normal memoization.
	c.SetCapacity(0)
	c.getOrCompute(k, func() float64 { return 42 })
	if got := c.getOrCompute(k, func() float64 { t.Error("recomputed after unbound"); return 42 }); got != 42 {
		t.Fatalf("unbound lookup returned %g", got)
	}
}
