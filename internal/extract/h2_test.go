package extract

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"inductance101/internal/geom"
)

// h2AgainstDense checks the nested-basis operator against the dense
// partial-inductance matrix on random vectors.
func h2AgainstDense(t *testing.T, l *geom.Layout, segs []int, opt H2Options, tol float64, rng *rand.Rand, label string) *H2L {
	t.Helper()
	op := CompressInductanceH2(l, segs, GMDOptions{}, opt, DefaultCacheRef())
	dense := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	n := len(segs)
	if op.Dim() != n {
		t.Fatalf("%s: dim %d, want %d", label, op.Dim(), n)
	}
	for trial := 0; trial < 3; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		op.ApplyTo(got, x)
		var errN, refN float64
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += dense.At(i, j) * x[j]
			}
			d := got[i] - want
			errN += d * d
			refN += want * want
		}
		if math.Sqrt(errN) > tol*math.Sqrt(refN) {
			t.Errorf("%s trial %d: matvec error %.3g of %.3g",
				label, trial, math.Sqrt(errN), math.Sqrt(refN))
		}
	}
	return op
}

// TestH2MatvecBuses is the nested-basis analogue of the flat property
// test on random parallel buses.
func TestH2MatvecBuses(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(60)
		pitch := (2 + 6*rng.Float64()) * 1e-6
		length := (200 + 600*rng.Float64()) * 1e-6
		l := makeBusLayout(n, length, 1e-6, pitch)
		segs := make([]int, n)
		for i := range segs {
			segs[i] = i
		}
		h2AgainstDense(t, l, segs, H2Options{}, 1e-6, rng, "bus")
	}
}

// TestH2MatvecGrid covers both routing directions; the cross-direction
// blocks never enter any basis or block and must stay exactly zero.
func TestH2MatvecGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	l, segs := gridLayout(9, 9, 300e-6, 1e-6, 8e-6)
	op := h2AgainstDense(t, l, segs, H2Options{}, 1e-6, rng, "grid")
	n := len(segs)
	x := make([]float64, n)
	for i := 0; i < 9; i++ { // first 9 are DirX
		x[i] = 1
	}
	y := make([]float64, n)
	op.ApplyTo(y, x)
	for i := 9; i < n; i++ {
		if y[i] != 0 {
			t.Fatalf("cross-direction coupling leaked: y[%d] = %g", i, y[i])
		}
	}
}

// TestH2SymmetryToRounding: the nested operator is algebraically
// symmetric — every coupling is applied with the same factors both ways
// — but the two probe directions associate the same products in
// different orders, so entries agree to rounding rather than
// bit-exactly (unlike the flat operator, see TestCompressedSymmetryExact).
func TestH2SymmetryToRounding(t *testing.T) {
	l := makeBusLayout(40, 400e-6, 1e-6, 4e-6)
	segs := make([]int, 40)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductanceH2(l, segs, GMDOptions{}, H2Options{}, DefaultCacheRef())
	n := op.Dim()
	ei := make([]float64, n)
	col := make([]float64, n)
	get := func(i, j int) float64 {
		ei[i] = 1
		op.ApplyTo(col, ei)
		ei[i] = 0
		return col[j]
	}
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			a, b := get(i, j), get(j, i)
			if d := math.Abs(a - b); d > 1e-10*(math.Abs(a)+math.Abs(b))+1e-30 {
				t.Fatalf("L(%d,%d)=%v vs L(%d,%d)=%v: asymmetry %g", i, j, a, j, i, b, d)
			}
		}
	}
}

// TestH2DiagAndEachUpper: Diag returns exact self terms; EachUpper
// visits every upper pair once and reconstructs dense to tolerance.
func TestH2DiagAndEachUpper(t *testing.T) {
	l := makeBusLayout(30, 350e-6, 1e-6, 3e-6)
	segs := make([]int, 30)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductanceH2(l, segs, GMDOptions{}, H2Options{}, DefaultCacheRef())
	dense := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	n := len(segs)
	for i := 0; i < n; i++ {
		if got, want := op.Diag(i), dense.At(i, i); got != want {
			t.Fatalf("Diag(%d) = %g, dense %g", i, got, want)
		}
	}
	seen := make(map[[2]int]float64)
	op.EachUpper(func(i, j int, v float64) {
		if i >= j {
			t.Fatalf("EachUpper visited non-strict pair (%d,%d)", i, j)
		}
		k := [2]int{i, j}
		if _, dup := seen[k]; dup {
			t.Fatalf("pair (%d,%d) visited twice", i, j)
		}
		seen[k] = v
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, ok := seen[[2]int{i, j}]
			if !ok {
				t.Fatalf("pair (%d,%d) never visited", i, j)
			}
			want := dense.At(i, j)
			if math.Abs(v-want) > 1e-6*(1e-12+math.Abs(want)) {
				t.Errorf("EachUpper(%d,%d) = %g, dense %g", i, j, v, want)
			}
		}
	}
}

// TestH2MaxRankFallback: with the basis rank capped at 1 the
// interpolative decompositions fail, and every affected coupling must
// re-route to exact dense blocks — accuracy survives, approximation is
// never silently degraded.
func TestH2MaxRankFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 40
	l := makeBusLayout(n, 400e-6, 1e-6, 3e-6)
	segs := make([]int, n)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductanceH2(l, segs, GMDOptions{},
		H2Options{Tol: 1e-12, MaxRank: 1}, DefaultCacheRef())
	dense := InductanceMatrix(l, segs, math.Inf(1), GMDOptions{}, DefaultCacheRef())
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	op.ApplyTo(got, x)
	var errN, refN float64
	for i := 0; i < n; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += dense.At(i, j) * x[j]
		}
		d := got[i] - want
		errN += d * d
		refN += want * want
	}
	if math.Sqrt(errN) > 1e-6*math.Sqrt(refN) {
		t.Errorf("MaxRank fallback lost accuracy: %.3g of %.3g",
			math.Sqrt(errN), math.Sqrt(refN))
	}
}

// TestH2Stats: the nested operator must actually compress a large bus,
// the eval split must add up, and the per-level histogram must report
// both bases and couplings. The bus is deliberately big: below ~1000
// elements the fixed far-field sampling cost still rivals the dense
// triangle and the nested scheme has nothing to win.
func TestH2Stats(t *testing.T) {
	n := 1280
	l := makeBusLayout(n, 500e-6, 1e-6, 2.5e-6)
	segs := make([]int, n)
	for i := range segs {
		segs[i] = i
	}
	op := CompressInductanceH2(l, segs, GMDOptions{}, H2Options{}, DefaultCacheRef())
	st := op.Stats()
	if !st.Nested {
		t.Fatal("Nested flag not set")
	}
	if st.FarBlocks == 0 {
		t.Fatal("no coupling blocks on a 160-wire bus")
	}
	if st.StoredFloats >= st.DenseFloats {
		t.Fatalf("compressed storage %d >= dense %d", st.StoredFloats, st.DenseFloats)
	}
	if st.KernelEvals != st.NearKernelEvals+st.FarKernelEvals {
		t.Fatalf("eval split %d + %d != total %d",
			st.NearKernelEvals, st.FarKernelEvals, st.KernelEvals)
	}
	if st.KernelEvals >= st.DenseKernelEntries {
		t.Errorf("kernel evaluations %d not below dense upper triangle %d",
			st.KernelEvals, st.DenseKernelEntries)
	}
	if len(st.Levels) == 0 {
		t.Fatal("no per-level stats")
	}
	bases, coups := 0, 0
	for _, ls := range st.Levels {
		bases += ls.Bases
		coups += ls.FarBlocks
		if ls.FarBlocks > 0 && (ls.MinRank < 1 || ls.MaxRank < ls.MinRank) {
			t.Errorf("level %d rank range [%d,%d] malformed", ls.Level, ls.MinRank, ls.MaxRank)
		}
	}
	if bases == 0 {
		t.Fatal("per-level stats report no bases")
	}
	if coups != st.FarBlocks {
		t.Fatalf("per-level coupling sum %d != FarBlocks %d", coups, st.FarBlocks)
	}
}

// TestH2ParallelBuildDeterministic: the operator must be bit-identical
// at every worker count — same blocks, same bases, same matvec output.
func TestH2ParallelBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	l, segs := gridLayout(12, 12, 400e-6, 1e-6, 6e-6)
	op1 := CompressInductanceH2(l, segs, GMDOptions{}, H2Options{Workers: 1}, DefaultCacheRef())
	op8 := CompressInductanceH2(l, segs, GMDOptions{}, H2Options{Workers: 8}, DefaultCacheRef())
	if s1, s8 := op1.Stats(), op8.Stats(); s1.StoredFloats != s8.StoredFloats ||
		s1.FarBlocks != s8.FarBlocks || s1.NearBlocks != s8.NearBlocks ||
		s1.KernelEvals != s8.KernelEvals {
		t.Fatalf("stats differ across worker counts:\n1: %+v\n8: %+v", s1, s8)
	}
	n := op1.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, n)
	y8 := make([]float64, n)
	op1.ApplyTo(y1, x)
	op8.ApplyTo(y8, x)
	for i := range y1 {
		if math.Float64bits(y1[i]) != math.Float64bits(y8[i]) {
			t.Fatalf("matvec differs at %d: %v vs %v", i, y1[i], y8[i])
		}
	}
}

// TestFlatParallelBuildDeterministic: same guarantee for the parallel
// flat-ACA build.
func TestFlatParallelBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	l, segs := gridLayout(12, 12, 400e-6, 1e-6, 6e-6)
	op1 := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Workers: 1}, DefaultCacheRef())
	op8 := CompressInductance(l, segs, GMDOptions{}, ACAOptions{Workers: 8}, DefaultCacheRef())
	if s1, s8 := op1.Stats(), op8.Stats(); s1.StoredFloats != s8.StoredFloats ||
		s1.FarBlocks != s8.FarBlocks || s1.NearBlocks != s8.NearBlocks ||
		s1.KernelEvals != s8.KernelEvals {
		t.Fatalf("stats differ across worker counts:\n1: %+v\n8: %+v", s1, s8)
	}
	n := op1.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, n)
	y8 := make([]float64, n)
	op1.ApplyTo(y1, x)
	op8.ApplyTo(y8, x)
	for i := range y1 {
		if math.Float64bits(y1[i]) != math.Float64bits(y8[i]) {
			t.Fatalf("matvec differs at %d: %v vs %v", i, y1[i], y8[i])
		}
	}
}

// TestH2ConcurrentBuildsSharedCache is the race-set target for the
// parallel operator build: several goroutines each build a nested
// operator with internal worker fan-out, all hammering the same
// geometry-keyed kernel cache.
func TestH2ConcurrentBuildsSharedCache(t *testing.T) {
	l, segs := gridLayout(10, 10, 350e-6, 1e-6, 5e-6)
	ref := PrivateCache()
	ops := make([]*H2L, 3)
	var wg sync.WaitGroup
	for g := range ops {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops[g] = CompressInductanceH2(l, segs, GMDOptions{}, H2Options{Workers: 3}, ref)
		}(g)
	}
	wg.Wait()
	n := ops[0].Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	want := make([]float64, n)
	ops[0].ApplyTo(want, x)
	got := make([]float64, n)
	for g := 1; g < len(ops); g++ {
		ops[g].ApplyTo(got, x)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("concurrent build %d diverged at %d: %v vs %v", g, i, got[i], want[i])
			}
		}
	}
}

// TestRowID exercises the interpolative decomposition directly: exact
// reconstruction of a synthetic low-rank matrix, unit rows at the
// skeleton, and failure (not silent truncation) under a rank cap.
func TestRowID(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m, s, r := 24, 17, 3
	a := make([]float64, m*r)
	bb := make([]float64, r*s)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	mat := make([]float64, m*s)
	for i := 0; i < m; i++ {
		for j := 0; j < s; j++ {
			v := 0.0
			for q := 0; q < r; q++ {
				v += a[i*r+q] * bb[q*s+j]
			}
			mat[i*s+j] = v
		}
	}
	pivots, u, ok := rowID(mat, m, s, 1e-12, 0)
	if !ok {
		t.Fatal("uncapped rowID failed")
	}
	k := len(pivots)
	if k < r {
		t.Fatalf("rank %d below true rank %d", k, r)
	}
	// Reconstruct: mat ≈ u * mat[pivots].
	var errN, refN float64
	for i := 0; i < m; i++ {
		for j := 0; j < s; j++ {
			v := 0.0
			for l, p := range pivots {
				v += u[i*k+l] * mat[p*s+j]
			}
			d := v - mat[i*s+j]
			errN += d * d
			refN += mat[i*s+j] * mat[i*s+j]
		}
	}
	if math.Sqrt(errN) > 1e-9*math.Sqrt(refN) {
		t.Fatalf("ID reconstruction error %.3g of %.3g", math.Sqrt(errN), math.Sqrt(refN))
	}
	for l, p := range pivots {
		for c := 0; c < k; c++ {
			want := 0.0
			if c == l {
				want = 1
			}
			if u[p*k+c] != want {
				t.Fatalf("skeleton row %d not a unit row", p)
			}
		}
	}
	if _, _, ok := rowID(mat, m, s, 1e-12, 1); ok {
		t.Fatal("rank-1 cap on a rank-3 matrix did not fail")
	}
}
