package extract

import (
	"runtime"
	"sync"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// InductanceMatrixParallel is InductanceMatrix with the row loop spread
// across CPUs. The partial-inductance matrix dominates extraction time
// on large layouts (the paper's 10^5-segment nets imply 10^10 pair
// evaluations); rows are independent, so this parallelizes perfectly.
// workers <= 0 uses GOMAXPROCS. The result is bit-identical to the
// serial version — each entry is computed exactly once by one goroutine.
func InductanceMatrixParallel(l *geom.Layout, segs []int, window float64, opt GMDOptions, workers int) *matrix.Dense {
	n := len(segs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return InductanceMatrix(l, segs, window, opt)
	}
	m := matrix.NewDense(n, n)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i >= n {
					return
				}
				si := &l.Segments[segs[i]]
				t := l.Layers[si.Layer].Thickness
				m.Set(i, i, SelfInductanceBar(si.Length, si.Width, t))
				for j := i + 1; j < n; j++ {
					sj := &l.Segments[segs[j]]
					pg, ok := l.Parallel(segs[i], segs[j])
					if !ok || pg.D > window {
						continue
					}
					tj := l.Layers[sj.Layer].Thickness
					v := MutualBars(pg, si.Width, t, sj.Width, tj, opt)
					m.Set(i, j, v)
					m.Set(j, i, v)
				}
			}
		}()
	}
	wg.Wait()
	return m
}
