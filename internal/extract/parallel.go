package extract

import (
	"runtime"
	"sync"
	"sync/atomic"

	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// InductanceMatrixParallel is InductanceMatrix with the row loop spread
// across CPUs. The partial-inductance matrix dominates extraction time
// on large layouts (the paper's 10^5-segment nets imply 10^10 pair
// evaluations); rows are independent, so this parallelizes perfectly.
// workers <= 0 uses GOMAXPROCS. The result is bit-identical to the
// serial version — each entry is computed exactly once by one goroutine.
//
// Work is handed out as interleaved strides: stride u covers rows
// u, u+U, u+2U, ... for U total strides. Row i does n-i pair
// evaluations (the loop only fills j > i), so contiguous chunks would
// make the first worker's chunk several times more expensive than the
// last one's; interleaving gives every stride the same mix of cheap and
// expensive rows. Strides are claimed with a lock-free atomic counter —
// the mutex-guarded handout this replaces serialized all workers through
// one critical section per row.
//
// All workers share the geometry-keyed kernel cache named by cache (the
// zero CacheRef is the process-wide default); its lock striping (64
// shards, read-locked lookups) keeps contention negligible, and because
// the memoized values are the kernels' exact outputs the result stays
// bit-identical at every worker count.
func InductanceMatrixParallel(l *geom.Layout, segs []int, window float64, opt GMDOptions, workers int, cache CacheRef) *matrix.Dense {
	n := len(segs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return InductanceMatrix(l, segs, window, opt, cache)
	}
	m := matrix.NewDense(n, n)
	pairs := pairCandidates(l, segs, window)
	c := cache.Cache()
	// A few strides per worker keeps the tail balanced even if one
	// stride stalls (e.g. a worker descheduled by the OS).
	numUnits := 4 * workers
	if numUnits > n {
		numUnits = n
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := int(atomic.AddInt64(&next, 1)) - 1
				if u >= numUnits {
					return
				}
				for i := u; i < n; i += numUnits {
					fillInductanceRow(l, segs, window, opt, m, i, pairs, c)
				}
			}
		}()
	}
	wg.Wait()
	return m
}
