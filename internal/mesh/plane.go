package mesh

import (
	"fmt"

	"inductance101/internal/geom"
)

// lowerPlane meshes one conductor plane into overlapping X- and
// Y-directed filament grids with shared nodes at the grid
// intersections — FastHenry's uniform-plane model. A regular node grid
// is laid over the plane at a pitch of (narrow span)/PlaneNW; every
// horizontally adjacent node pair is joined by an X filament of width
// equal to the row pitch, every vertically adjacent pair by a Y
// filament of width equal to the column pitch, so each metal patch is
// represented once per current direction and the solve redistributes
// current between the two grids freely.
//
// Holes remove the nodes strictly inside them and any filament whose
// endpoint is gone or whose midpoint falls in a hole, forcing return
// current to detour around the perforation. Boundary nodes on an edge
// with a named rail all collapse onto that rail's electrical node
// (corners resolve in left, right, bottom, top priority order), and
// filaments running along such an edge — both ends on the same rail —
// are dropped as electrically degenerate.
func (m *Mesh) lowerPlane(l *geom.Layout, pi int, opt Options) error {
	p := &l.Planes[pi]
	ly := l.Layers[p.Layer]
	w, h := p.X1-p.X0, p.Y1-p.Y0
	// PlaneNW cells along each axis regardless of aspect ratio
	// (FastHenry's seg1/seg2 plane parameters collapsed to one knob):
	// the nodal solve costs one solve per node, so the grid must stay
	// bounded by the user's density choice, not by the plane's shape.
	nx := opt.planeNW() + 1
	ny := opt.planeNW() + 1
	if nx*ny > maxPlaneNodes {
		return fmt.Errorf("mesh: plane %d meshes to %d x %d nodes (limit %d); reduce PlaneNW", pi, nx, ny, maxPlaneNodes)
	}
	dx := w / float64(nx-1)
	dy := h / float64(ny-1)
	zc := ly.Z + ly.Thickness/2

	inHole := func(x, y float64) bool {
		for _, hl := range p.Holes {
			if hl.Contains(x, y) {
				return true
			}
		}
		return false
	}

	// ids[j*nx+i] is the node id of grid point (i, j), or -1 where a
	// hole removed the node.
	ids := make([]int, nx*ny)
	for j := 0; j < ny; j++ {
		y := p.Y0 + float64(j)*dy
		for i := 0; i < nx; i++ {
			x := p.X0 + float64(i)*dx
			k := j*nx + i
			switch {
			case inHole(x, y):
				ids[k] = -1
			case i == 0 && p.NodeLeft != "":
				ids[k] = m.Node(p.NodeLeft)
			case i == nx-1 && p.NodeRight != "":
				ids[k] = m.Node(p.NodeRight)
			case j == 0 && p.NodeBottom != "":
				ids[k] = m.Node(p.NodeBottom)
			case j == ny-1 && p.NodeTop != "":
				ids[k] = m.Node(p.NodeTop)
			default:
				ids[k] = m.anonNode()
			}
		}
	}

	// Sheet-resistance form of R = rho l / (w t): the thickness cancels,
	// leaving SheetRho * length / width per grid filament.
	add := func(dir geom.Direction, x0, y0, length, width float64, na, nb int) {
		m.Filaments = append(m.Filaments, Filament{
			Seg: -1, Plane: pi, Dir: dir,
			X0: x0, Y0: y0, Z: zc,
			Length: length, W: width, T: ly.Thickness,
			R:     ly.SheetRho * length / width,
			NodeA: na, NodeB: nb,
		})
	}
	// X grid: rows bottom to top, columns left to right.
	for j := 0; j < ny; j++ {
		y := p.Y0 + float64(j)*dy
		for i := 0; i+1 < nx; i++ {
			x := p.X0 + float64(i)*dx
			na, nb := ids[j*nx+i], ids[j*nx+i+1]
			if na < 0 || nb < 0 || na == nb || inHole(x+dx/2, y) {
				continue
			}
			add(geom.DirX, x, y, dx, dy, na, nb)
		}
	}
	// Y grid: columns left to right, rows bottom to top.
	for i := 0; i < nx; i++ {
		x := p.X0 + float64(i)*dx
		for j := 0; j+1 < ny; j++ {
			y := p.Y0 + float64(j)*dy
			na, nb := ids[j*nx+i], ids[(j+1)*nx+i]
			if na < 0 || nb < 0 || na == nb || inHole(x, y+dy/2) {
				continue
			}
			add(geom.DirY, x, y, dy, dx, na, nb)
		}
	}
	return nil
}
