// Package mesh is the shared lowering stage between layout geometry
// (internal/geom) and the filament-level solvers: it discretizes
// Segments, Planes and Vias into one uniform set of current filaments
// with merged electrical node ids, the representation every
// partial-inductance solve path (dense LU, flat-ACA GMRES, nested-basis
// H²) consumes.
//
// Segments are split across their cross-section into parallel
// filaments, enough that each is no wider than the skin depth at the
// reference frequency (FastHenry's discretization). Planes are lowered
// into overlapping X- and Y-directed filament grids with node
// stitching at the grid intersections — FastHenry's uniform-plane
// model — with perforation holes respected and edge node rails merging
// boundary nodes onto named terminals (see plane.go). Vias short their
// endpoint nodes, as do explicit shorts lists.
//
// The lowering is a pure serial function of its inputs: filament
// order, node ids and every geometric value are deterministic, so the
// solvers built on top stay bit-identical at any worker count.
package mesh

import (
	"fmt"
	"math"

	"inductance101/internal/geom"
	"inductance101/internal/units"
)

// Filament is one straight rectangular current tube: the uniform
// element all solve paths operate on, whether it was lowered from a
// segment's cross-section or a plane's grid.
type Filament struct {
	// Seg is the source segment index, or -1 for plane filaments;
	// Plane the source plane index, or -1 for segment filaments.
	Seg, Plane int
	Dir        geom.Direction
	X0, Y0     float64 // centre-line start (plane coordinates)
	Z          float64 // centre height
	Length     float64
	W, T       float64 // cross-section
	R          float64 // series resistance
	NodeA      int     // merged node id at (X0, Y0)
	NodeB      int     // merged node id at the far end
}

// End returns the filament's far-end centre-line coordinates.
func (f *Filament) End() (x, y float64) {
	if f.Dir == geom.DirX {
		return f.X0 + f.Length, f.Y0
	}
	return f.X0, f.Y0 + f.Length
}

// Options controls the lowering density.
type Options struct {
	// NW, NT force the per-segment filament counts across width and
	// thickness. Zero means automatic: enough filaments that each is
	// no wider than the skin depth at the reference frequency, capped
	// by MaxPerSide.
	NW, NT int
	// MaxPerSide caps automatic segment discretization (default 5).
	MaxPerSide int
	// Rho is the conductor resistivity used for skin-depth sizing
	// (default copper).
	Rho float64
	// PlaneNW is the number of grid cells along each axis of a plane's
	// filament mesh: every plane lowers to a PlaneNW x PlaneNW cell
	// grid (~2·PlaneNW² filaments), whatever its aspect ratio, so the
	// node count — and with it the nodal solve cost — is bounded by
	// this knob alone. 0 means DefaultPlaneNW. Values below 2 or above
	// MaxPlaneNW are rejected fail-fast: a 1-cell grid cannot
	// redistribute current and a huge one is a typo that would
	// allocate millions of filaments.
	PlaneNW int
}

// DefaultPlaneNW is the plane grid density when Options.PlaneNW is 0:
// coarse enough that a Fig. 6 structure stays interactive, fine enough
// that the return-current spread under the signal resolves.
const DefaultPlaneNW = 8

// MaxPlaneNW caps the plane grid density a run may request.
const MaxPlaneNW = 1024

// maxPlaneNodes bounds one plane's grid so an extreme aspect ratio
// cannot silently allocate an absurd mesh.
const maxPlaneNodes = 1 << 20

func (o Options) maxPerSide() int {
	if o.MaxPerSide <= 0 {
		return 5
	}
	return o.MaxPerSide
}

func (o Options) rho() float64 {
	if o.Rho <= 0 {
		return units.RhoCu
	}
	return o.Rho
}

func (o Options) planeNW() int {
	if o.PlaneNW == 0 {
		return DefaultPlaneNW
	}
	return o.PlaneNW
}

// ValidatePlaneNW rejects plane densities no lowering can honor; the
// engine config and the job decoders call it so every entry point
// fails fast with the same message. 0 (the default) is valid.
func ValidatePlaneNW(nw int) error {
	if nw == 0 {
		return nil
	}
	if nw < 2 || nw > MaxPlaneNW {
		return fmt.Errorf("mesh: plane density %d outside [2, %d]", nw, MaxPlaneNW)
	}
	return nil
}

// Mesh is the lowered filament set plus the electrical node space the
// filaments connect. It is immutable except for Node, which may mint
// ids for names (ports) that appear on no conductor.
type Mesh struct {
	Filaments []Filament
	// SegFilaments and PlaneFilaments count the filaments by source.
	SegFilaments, PlaneFilaments int

	parent map[string]string // union-find over node names
	nodeID map[string]int    // canonical name -> id
	nNodes int
}

// NumNodes returns the number of distinct electrical nodes, including
// any minted by Node since the build.
func (m *Mesh) NumNodes() int { return m.nNodes }

func (m *Mesh) find(s string) string {
	p, ok := m.parent[s]
	if !ok || p == s {
		m.parent[s] = s
		return s
	}
	r := m.find(p)
	m.parent[s] = r
	return r
}

func (m *Mesh) union(a, b string) { m.parent[m.find(a)] = m.find(b) }

// Node resolves a node name through the shorts/via merges to its id,
// minting a fresh id for names not on any conductor (a port terminal
// referencing a node the layout never mentions solves — and then fails
// — exactly as it always has, with a disconnected-network error).
func (m *Mesh) Node(name string) int {
	r := m.find(name)
	if id, ok := m.nodeID[r]; ok {
		return id
	}
	id := m.nNodes
	m.nodeID[r] = id
	m.nNodes++
	return id
}

// anonNode mints an id with no name — a plane-interior grid node,
// unreachable from shorts and ports by construction.
func (m *Mesh) anonNode() int {
	id := m.nNodes
	m.nNodes++
	return id
}

// Build lowers the given segments of the layout (plus every plane and
// via it contains) into filaments at reference frequency fRef (which
// sizes the segment filament grids), merging the node pairs in shorts.
// Filament order is deterministic: segments in the order given (width
// index outer, thickness inner — the historical fasthenry order, so
// segment-only layouts lower bit-identically to the pre-mesh solver),
// then planes in layout order (X-directed grid rows, then Y-directed
// columns).
func Build(l *geom.Layout, segs []int, shorts [][2]string, fRef float64, opt Options) (*Mesh, error) {
	if err := ValidatePlaneNW(opt.PlaneNW); err != nil {
		return nil, err
	}
	m := &Mesh{
		parent: make(map[string]string),
		nodeID: make(map[string]int),
	}
	for _, sh := range shorts {
		m.union(sh[0], sh[1])
	}
	// Vias short their endpoint nodes: via resistance is negligible
	// against the loop impedances of interest, and the RL solver has no
	// resistor-only branches. Vias whose nodes never appear on lowered
	// conductors are harmless — their merged names are simply never
	// used.
	for i := range l.Vias {
		v := &l.Vias[i]
		m.union(v.NodeLo, v.NodeHi)
	}

	skin := units.SkinDepth(opt.rho(), fRef)
	for _, si := range segs {
		if err := m.lowerSegment(l, si, skin, opt); err != nil {
			return nil, err
		}
	}
	m.SegFilaments = len(m.Filaments)
	for pi := range l.Planes {
		if err := m.lowerPlane(l, pi, opt); err != nil {
			return nil, err
		}
	}
	m.PlaneFilaments = len(m.Filaments) - m.SegFilaments
	if len(m.Filaments) == 0 {
		return nil, fmt.Errorf("mesh: no filaments (empty segment and plane lists)")
	}
	return m, nil
}

// lowerSegment splits one segment across its cross-section into
// nw x nt parallel filaments.
func (m *Mesh) lowerSegment(l *geom.Layout, si int, skin float64, opt Options) error {
	s := &l.Segments[si]
	ly := l.Layers[s.Layer]
	nw, nt := opt.NW, opt.NT
	if nw <= 0 {
		nw = autoDiv(s.Width, skin, opt.maxPerSide())
	}
	if nt <= 0 {
		nt = autoDiv(ly.Thickness, skin, opt.maxPerSide())
	}
	fw := s.Width / float64(nw)
	ft := ly.Thickness / float64(nt)
	// Filament resistance from the layer's sheet resistance:
	// rho = SheetRho * thickness; R = rho l / (fw ft). Each filament
	// carries rFil; the parallel combination of nw*nt filaments equals
	// the segment resistance.
	rho := ly.SheetRho * ly.Thickness
	rFil := rho * s.Length / (fw * ft)
	na, nb := m.Node(s.NodeA), m.Node(s.NodeB)
	if na == nb {
		return fmt.Errorf("mesh: segment %d shorted end-to-end by shorts list", si)
	}
	zc := ly.Z + ly.Thickness/2
	for iw := 0; iw < nw; iw++ {
		off := -s.Width/2 + (float64(iw)+0.5)*fw
		for it := 0; it < nt; it++ {
			zf := zc - ly.Thickness/2 + (float64(it)+0.5)*ft
			f := Filament{
				Seg: si, Plane: -1, Dir: s.Dir, Length: s.Length,
				W: fw, T: ft, R: rFil,
				NodeA: na, NodeB: nb, Z: zf,
			}
			if s.Dir == geom.DirX {
				f.X0, f.Y0 = s.X0, s.Y0+off
			} else {
				f.X0, f.Y0 = s.X0+off, s.Y0
			}
			m.Filaments = append(m.Filaments, f)
		}
	}
	return nil
}

func autoDiv(dim, skin float64, maxN int) int {
	if skin <= 0 || math.IsInf(skin, 1) {
		return 1
	}
	n := int(math.Ceil(dim / skin))
	if n < 1 {
		n = 1
	}
	if n > maxN {
		n = maxN
	}
	return n
}
