package mesh

import "inductance101/internal/geom"

// ClusterFilaments builds spatial cluster trees directly over a lowered
// filament set, one root per routing direction present, through the
// same median-bisection core (geom.ClusterItems) the segment-level
// index uses. Before the mesh layer existed the compressed operators
// clustered segments and expanded each into its filaments; plane grids
// have no segment to cluster by, so the trees now index filaments
// themselves — bisection coordinates are the filament's centre along
// its routing axis, its cross coordinate, and its height, and the
// result is deterministic at every worker count.
func ClusterFilaments(fils []Filament, leafSize, workers int) []*geom.ClusterNode {
	dir := func(i int) geom.Direction { return fils[i].Dir }
	coord := func(dim, i int) float64 {
		f := &fils[i]
		switch dim {
		case 0:
			if f.Dir == geom.DirX {
				return f.X0 + f.Length/2
			}
			return f.Y0 + f.Length/2
		case 1:
			if f.Dir == geom.DirX {
				return f.Y0
			}
			return f.X0
		default:
			return f.Z
		}
	}
	return geom.ClusterItems(len(fils), dir, coord, leafSize, workers)
}
