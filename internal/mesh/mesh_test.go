package mesh

import (
	"math"
	"reflect"
	"testing"

	"inductance101/internal/geom"
)

// twoLayers is the minimal plane-capable stack: a plane layer below a
// signal layer, dimensioned like the standard grid stack.
func twoLayers() []geom.Layer {
	return []geom.Layer{
		{Name: "M5", Index: 0, Z: 4e-6, Thickness: 0.9e-6, SheetRho: 0.025, HBelow: 1.0e-6},
		{Name: "M6", Index: 1, Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	}
}

func planeOnlyLayout(t *testing.T, p geom.Plane) *geom.Layout {
	t.Helper()
	lay := geom.NewLayout(twoLayers())
	lay.AddPlane(p)
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestValidatePlaneNW pins the fail-fast range: 0 delegates to the
// default, [2, MaxPlaneNW] is accepted, everything else rejected.
func TestValidatePlaneNW(t *testing.T) {
	for _, nw := range []int{0, 2, 8, MaxPlaneNW} {
		if err := ValidatePlaneNW(nw); err != nil {
			t.Errorf("ValidatePlaneNW(%d) = %v, want nil", nw, err)
		}
	}
	for _, nw := range []int{1, -1, -8, MaxPlaneNW + 1, 1 << 20} {
		if err := ValidatePlaneNW(nw); err == nil {
			t.Errorf("ValidatePlaneNW(%d) accepted an out-of-range density", nw)
		}
	}
}

// TestPlaneGridCounts checks the solid-plane mesh arithmetic at
// PlaneNW=4 (a 5x5 node grid): rail columns collapse onto one node
// each, rail-edge filaments are dropped as degenerate, and the X/Y
// grids cover every interior cell boundary exactly once.
func TestPlaneGridCounts(t *testing.T) {
	lay := planeOnlyLayout(t, geom.Plane{
		Layer: 0, X0: 0, Y0: 0, X1: 4e-6, Y1: 4e-6,
		Net: "GND", NodeLeft: "p0", NodeRight: "p1",
	})
	m, err := Build(lay, nil, nil, 1e9, Options{PlaneNW: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.SegFilaments != 0 {
		t.Errorf("SegFilaments = %d on a segment-free layout", m.SegFilaments)
	}
	// X grid: 5 rows x 4 spans = 20, none degenerate. Y grid: 5 columns
	// x 4 spans = 20, minus the 4+4 filaments running along the two rail
	// edges (both ends on the same rail node) = 12.
	if m.PlaneFilaments != 32 {
		t.Errorf("PlaneFilaments = %d, want 32", m.PlaneFilaments)
	}
	// Nodes: two rails plus 5x5 - 2x5 = 15 anonymous interior nodes.
	if got := m.NumNodes(); got != 17 {
		t.Errorf("NumNodes = %d, want 17", got)
	}
	// Every X filament starting on the left edge must see the left rail.
	p0 := m.Node("p0")
	leftEdge := 0
	for i := range m.Filaments {
		f := &m.Filaments[i]
		if f.Plane != 0 || f.Seg != -1 {
			t.Fatalf("filament %d has source (%d, %d), want plane 0", i, f.Seg, f.Plane)
		}
		if f.Dir == geom.DirX && f.X0 == 0 {
			leftEdge++
			if f.NodeA != p0 {
				t.Errorf("left-edge X filament at y=%g has NodeA %d, want rail %d", f.Y0, f.NodeA, p0)
			}
		}
		if f.NodeA == f.NodeB {
			t.Errorf("filament %d is degenerate (both ends on node %d)", i, f.NodeA)
		}
	}
	if leftEdge != 5 {
		t.Errorf("%d left-edge X filaments, want 5", leftEdge)
	}
}

// TestPlaneFilamentResistance checks the sheet-resistance form: a grid
// filament of length dx and width dy carries R = SheetRho * dx / dy
// regardless of the layer thickness.
func TestPlaneFilamentResistance(t *testing.T) {
	lay := planeOnlyLayout(t, geom.Plane{
		Layer: 0, X0: 0, Y0: 0, X1: 8e-6, Y1: 4e-6,
		Net: "GND", NodeLeft: "p0", NodeRight: "p1",
	})
	m, err := Build(lay, nil, nil, 1e9, Options{PlaneNW: 4})
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := 2e-6, 1e-6 // 8u/4 cells, 4u/4 cells
	for i := range m.Filaments {
		f := &m.Filaments[i]
		var want float64
		if f.Dir == geom.DirX {
			want = 0.025 * dx / dy
		} else {
			want = 0.025 * dy / dx
		}
		if math.Abs(f.R-want) > 1e-12*want {
			t.Fatalf("filament %d (dir %v): R = %g, want %g", i, f.Dir, f.R, want)
		}
		if f.T != 0.9e-6 {
			t.Fatalf("filament %d: thickness %g, want the layer's 0.9e-6", i, f.T)
		}
	}
}

// TestPlaneHoleRemovesNodesAndFilaments perforates the 5x5 grid with a
// hole strictly containing only the centre node: that node and its four
// incident filaments must vanish, nothing else.
func TestPlaneHoleRemovesNodesAndFilaments(t *testing.T) {
	hole := geom.Hole{X0: 1.5e-6, Y0: 1.5e-6, X1: 2.5e-6, Y1: 2.5e-6}
	lay := planeOnlyLayout(t, geom.Plane{
		Layer: 0, X0: 0, Y0: 0, X1: 4e-6, Y1: 4e-6,
		Net: "GND", NodeLeft: "p0", NodeRight: "p1",
		Holes: []geom.Hole{hole},
	})
	m, err := Build(lay, nil, nil, 1e9, Options{PlaneNW: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.PlaneFilaments != 32-4 {
		t.Errorf("PlaneFilaments = %d, want 28 (solid 32 minus the centre node's 4)", m.PlaneFilaments)
	}
	if got := m.NumNodes(); got != 16 {
		t.Errorf("NumNodes = %d, want 16 (solid 17 minus the centre node)", got)
	}
	// No surviving filament may end at — or cross — the hole interior.
	for i := range m.Filaments {
		f := &m.Filaments[i]
		mx, my := f.X0, f.Y0
		if f.Dir == geom.DirX {
			mx += f.Length / 2
		} else {
			my += f.Length / 2
		}
		if hole.Contains(mx, my) {
			t.Errorf("filament %d midpoint (%g, %g) inside the hole", i, mx, my)
		}
	}
}

// TestPlaneRailOmitted leaves three edges unnamed: their boundary nodes
// must stay anonymous (distinct), so only the named edge collapses.
func TestPlaneRailOmitted(t *testing.T) {
	lay := planeOnlyLayout(t, geom.Plane{
		Layer: 0, X0: 0, Y0: 0, X1: 4e-6, Y1: 4e-6,
		Net: "GND", NodeLeft: "p0",
	})
	m, err := Build(lay, nil, nil, 1e9, Options{PlaneNW: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One rail + 20 anonymous nodes; all 20 Y-grid filaments minus the 4
	// along the left rail survive, plus the full 20-filament X grid.
	if got := m.NumNodes(); got != 21 {
		t.Errorf("NumNodes = %d, want 21", got)
	}
	if m.PlaneFilaments != 36 {
		t.Errorf("PlaneFilaments = %d, want 36", m.PlaneFilaments)
	}
}

// TestSegmentLoweringParallelResistance pins the cross-section split: a
// forced nw x nt grid of identical filaments whose parallel combination
// equals the segment's sheet resistance.
func TestSegmentLoweringParallelResistance(t *testing.T) {
	lay := geom.NewLayout(twoLayers())
	si := lay.AddSegment(geom.Segment{
		Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 100e-6, Width: 4e-6,
		Net: "sig", NodeA: "a", NodeB: "b",
	})
	m, err := Build(lay, []int{si}, nil, 1e9, Options{NW: 3, NT: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.SegFilaments != 6 || m.PlaneFilaments != 0 {
		t.Fatalf("filament split %d/%d, want 6 segment filaments", m.SegFilaments, m.PlaneFilaments)
	}
	inv := 0.0
	for i := range m.Filaments {
		f := &m.Filaments[i]
		if f.Seg != si || f.Plane != -1 {
			t.Fatalf("filament %d has source (%d, %d), want segment %d", i, f.Seg, f.Plane, si)
		}
		inv += 1 / f.R
	}
	want := 0.018 * 100e-6 / 4e-6 // SheetRho * L / W
	if got := 1 / inv; math.Abs(got-want) > 1e-12*want {
		t.Errorf("parallel filament resistance %g, want segment resistance %g", got, want)
	}
}

// TestBuildDeterministic lowers a mixed segment+plane+hole layout twice
// and demands bit-identical filament lists — the contract that keeps
// every solver deterministic at any worker count.
func TestBuildDeterministic(t *testing.T) {
	build := func() *Mesh {
		lay := geom.NewLayout(twoLayers())
		s0 := lay.AddSegment(geom.Segment{
			Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
			Length: 40e-6, Width: 2e-6, Net: "sig", NodeA: "s0", NodeB: "s1",
		})
		lay.AddPlane(geom.Plane{
			Layer: 0, X0: 0, Y0: -8e-6, X1: 40e-6, Y1: 8e-6,
			Net: "GND", NodeLeft: "g0", NodeRight: "g1",
			Holes: []geom.Hole{{X0: 12e-6, Y0: -3e-6, X1: 28e-6, Y1: 3e-6}},
		})
		if err := lay.Validate(); err != nil {
			t.Fatal(err)
		}
		m, err := Build(lay, []int{s0}, [][2]string{{"s1", "g1"}}, 2e10, Options{PlaneNW: 6})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Filaments, b.Filaments) {
		t.Fatal("two identical builds produced different filament lists")
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
}

// TestClusterFilamentsDeterministic builds filament cluster trees at
// several worker counts and demands identical shapes and leaf orders.
func TestClusterFilamentsDeterministic(t *testing.T) {
	lay := planeOnlyLayout(t, geom.Plane{
		Layer: 0, X0: 0, Y0: 0, X1: 100e-6, Y1: 100e-6,
		Net: "GND", NodeLeft: "p0", NodeRight: "p1",
	})
	m, err := Build(lay, nil, nil, 1e9, Options{PlaneNW: 12})
	if err != nil {
		t.Fatal(err)
	}
	var flatten func(n *geom.ClusterNode, out *[]int)
	flatten = func(n *geom.ClusterNode, out *[]int) {
		if n.IsLeaf() {
			*out = append(*out, n.Segs...)
			*out = append(*out, -1) // leaf boundary marker
			return
		}
		flatten(n.Left, out)
		flatten(n.Right, out)
	}
	shape := func(workers int) []int {
		var out []int
		for _, r := range ClusterFilaments(m.Filaments, 16, workers) {
			flatten(r, &out)
			out = append(out, -2) // root boundary marker
		}
		return out
	}
	want := shape(1)
	for _, w := range []int{2, 8} {
		if got := shape(w); !reflect.DeepEqual(got, want) {
			t.Errorf("cluster tree at workers=%d differs from the serial tree", w)
		}
	}
}

// TestBuildErrors pins the build-time failure modes: an empty lowering,
// a segment shorted end-to-end, and a rejected plane density.
func TestBuildErrors(t *testing.T) {
	lay := geom.NewLayout(twoLayers())
	if _, err := Build(lay, nil, nil, 1e9, Options{}); err == nil {
		t.Error("empty lowering did not error")
	}

	si := lay.AddSegment(geom.Segment{
		Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 10e-6, Width: 2e-6, Net: "sig", NodeA: "a", NodeB: "b",
	})
	if _, err := Build(lay, []int{si}, [][2]string{{"a", "b"}}, 1e9, Options{}); err == nil {
		t.Error("segment shorted end-to-end did not error")
	}
	if _, err := Build(lay, []int{si}, nil, 1e9, Options{PlaneNW: 1}); err == nil {
		t.Error("PlaneNW=1 did not error")
	}
}

// TestNodeMinting checks Node's contract for names no conductor
// carries: a fresh id, stable on repeat, counted by NumNodes.
func TestNodeMinting(t *testing.T) {
	lay := geom.NewLayout(twoLayers())
	si := lay.AddSegment(geom.Segment{
		Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 10e-6, Width: 2e-6, Net: "sig", NodeA: "a", NodeB: "b",
	})
	m, err := Build(lay, []int{si}, nil, 1e9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumNodes()
	g := m.Node("ghost")
	if g < before || m.NumNodes() != before+1 {
		t.Errorf("minted node %d, NumNodes %d -> %d", g, before, m.NumNodes())
	}
	if m.Node("ghost") != g {
		t.Error("repeat Node lookup minted a second id")
	}
}
