package mor

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"inductance101/internal/circuit"
	"inductance101/internal/sim"
)

// rlcLine builds an n-section RLC ladder (distributed interconnect)
// driven by a current injection at "in" and observed at "out".
func rlcLine(n int) (*circuit.Netlist, int, int) {
	nl := circuit.New()
	prev := "in"
	for i := 0; i < n; i++ {
		mid := fmt.Sprintf("m%d", i)
		next := fmt.Sprintf("n%d", i)
		if i == n-1 {
			next = "out"
		}
		nl.AddR(fmt.Sprintf("r%d", i), prev, mid, 2)
		nl.AddL(fmt.Sprintf("l%d", i), mid, next, 0.2e-9)
		nl.AddC(fmt.Sprintf("c%d", i), next, "0", 20e-15)
		prev = next
	}
	nl.AddR("rload", "out", "0", 500)
	in, _ := nl.NodeIndex("in")
	out, _ := nl.NodeIndex("out")
	return nl, in, out
}

func fullTransfer(nl *circuit.Netlist, inNode string, outNode string, f float64, t *testing.T) complex128 {
	t.Helper()
	// Reference: full AC solve with a 1A injection at the input. The
	// probe source is appended and popped so nl stays reusable.
	ii := nl.AddI("probe", "0", inNode, circuit.DC(0))
	defer func() {
		nl.ISources = nl.ISources[:len(nl.ISources)-1]
	}()
	m := circuit.Build(nl)
	x, err := sim.AC(m, 2*math.Pi*f, sim.ACStimulus{ISourceAmps: map[int]complex128{ii: 1}})
	if err != nil {
		t.Fatal(err)
	}
	oi, _ := nl.NodeIndex(outNode)
	return x[oi]
}

func TestReduceMatchesFullTransfer(t *testing.T) {
	nl, in, out := rlcLine(12)
	m := circuit.Build(nl)
	rm, err := Reduce(m, GroundedPorts([]int{in}), []int{in, out}, Options{Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Order() >= m.Size() {
		t.Fatalf("no reduction: order %d vs full %d", rm.Order(), m.Size())
	}
	for _, f := range []float64{1e6, 1e8, 1e9, 3e9} {
		h, err := rm.TransferAt(2 * math.Pi * f)
		if err != nil {
			t.Fatal(err)
		}
		ref := fullTransfer(nl, "in", "out", f, t)
		got := h.At(1, 0)
		if cmplx.Abs(got-ref)/cmplx.Abs(ref) > 1e-3 {
			t.Errorf("f=%g: reduced transfer %v, full %v", f, got, ref)
		}
	}
}

func TestReduceMomentMatchingAtDC(t *testing.T) {
	// At DC the transfer is pure resistance: with a 1A injection, the
	// input voltage equals the driving-point resistance (series R chain
	// in parallel with rload... here series path to rload then ground).
	nl, in, out := rlcLine(6)
	m := circuit.Build(nl)
	rm, err := Reduce(m, GroundedPorts([]int{in}), []int{in, out}, Options{Blocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rm.TransferAt(0)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance 1e-4: Reduce adds gmin=1e-9 S to every node, which
	// bleeds a few mohm at DC by design.
	wantIn := 6*2 + 500.0 // 6 series R + load
	if math.Abs(real(h.At(0, 0))-wantIn)/wantIn > 1e-4 {
		t.Errorf("DC driving-point R = %v, want %g", h.At(0, 0), wantIn)
	}
	if math.Abs(real(h.At(1, 0))-500)/500 > 1e-4 {
		t.Errorf("DC transfer to out = %v, want 500", h.At(1, 0))
	}
}

func TestReducedTranMatchesFullSim(t *testing.T) {
	nl, in, out := rlcLine(10)
	m := circuit.Build(nl)
	rm, err := Reduce(m, GroundedPorts([]int{in}), []int{out}, Options{Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Drive with a current pulse; compare against the full simulator
	// with an equivalent ISource.
	pulse := circuit.Pulse{V1: 0, V2: 1e-3, Delay: 0.1e-9, Rise: 50e-12, Width: 2e-9, Fall: 50e-12}
	h := 2e-12
	red, err := rm.Tran(func(tm float64) []float64 {
		return []float64{pulse.At(tm)}
	}, 3e-9, h)
	if err != nil {
		t.Fatal(err)
	}
	nl.AddI("drv", "0", "in", pulse)
	full, err := sim.Tran(nl, sim.TranOptions{TStop: 3e-9, TStep: h})
	if err != nil {
		t.Fatal(err)
	}
	vout := full.MustV("out")
	if len(red.Times) != len(full.Times) {
		t.Fatalf("time base mismatch: %d vs %d", len(red.Times), len(full.Times))
	}
	worst := 0.0
	peak := 0.0
	for k := range red.Times {
		worst = math.Max(worst, math.Abs(red.Outputs[k][0]-vout[k]))
		peak = math.Max(peak, math.Abs(vout[k]))
	}
	if worst > 0.01*peak {
		t.Errorf("reduced transient deviates by %g (peak %g)", worst, peak)
	}
	_ = in
	_ = out
}

func TestReducedStability(t *testing.T) {
	nl, in, out := rlcLine(15)
	m := circuit.Build(nl)
	rm, err := Reduce(m, GroundedPorts([]int{in}), []int{out}, Options{Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.StableSpectrum(); err != nil {
		t.Errorf("PRIMA lost the passivity structure: %v", err)
	}
	// Long-horizon reduced transient must not blow up.
	res, err := rm.Tran(func(tm float64) []float64 { return []float64{1e-3} }, 50e-9, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Outputs[len(res.Outputs)-1][0]
	if math.IsNaN(last) || math.Abs(last) > 10 {
		t.Errorf("reduced model diverges: final output %g", last)
	}
}

func TestReduceWithMutualInductance(t *testing.T) {
	// Coupled lines: reduction must handle the mutual inductance block
	// and stay accurate on the victim waveform.
	nl := circuit.New()
	nl.AddR("ra", "in", "a1", 5)
	la := nl.AddL("la", "a1", "a2", 1e-9)
	nl.AddC("ca", "a2", "0", 50e-15)
	nl.AddR("rla", "a2", "0", 200)
	nl.AddR("rb", "vb0", "b1", 5)
	lb := nl.AddL("lb", "b1", "b2", 1e-9)
	nl.AddC("cb", "b2", "0", 50e-15)
	nl.AddR("rlb", "b2", "0", 200)
	nl.AddR("rbgnd", "vb0", "0", 1) // victim near-end termination
	nl.AddM("m", la, lb, 0.5e-9)
	in, _ := nl.NodeIndex("in")
	victim, _ := nl.NodeIndex("b2")
	m := circuit.Build(nl)
	rm, err := Reduce(m, GroundedPorts([]int{in}), []int{victim}, Options{Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1e8, 1e9, 5e9} {
		h, err := rm.TransferAt(2 * math.Pi * f)
		if err != nil {
			t.Fatal(err)
		}
		ref := fullTransfer(nl, "in", "b2", f, t)
		if cmplx.Abs(ref) < 1e-12 {
			continue
		}
		if cmplx.Abs(h.At(0, 0)-ref)/cmplx.Abs(ref) > 1e-3 {
			t.Errorf("f=%g: coupled transfer %v, want %v", f, h.At(0, 0), ref)
		}
	}
}

func TestReduceErrors(t *testing.T) {
	nl, in, _ := rlcLine(3)
	m := circuit.Build(nl)
	if _, err := Reduce(m, nil, nil, Options{}); err == nil {
		t.Errorf("no ports accepted")
	}
	if _, err := Reduce(m, []Port{{Plus: m.Size() + 5, Minus: -1}}, nil, Options{}); err == nil {
		t.Errorf("bad port index accepted")
	}
	if _, err := Reduce(m, []Port{{Plus: -1, Minus: -1}}, nil, Options{}); err == nil {
		t.Errorf("fully grounded port accepted")
	}
	rm, err := Reduce(m, GroundedPorts([]int{in}), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Tran(func(float64) []float64 { return []float64{0} }, 0, 1e-12); err == nil {
		t.Errorf("bad tran range accepted")
	}
}
