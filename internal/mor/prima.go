// Package mor implements PRIMA — the Passive Reduced-order Interconnect
// Macromodeling Algorithm of Odabasioglu, Celik & Pileggi (ICCAD 1997) —
// which the paper's combined acceleration technique pairs with
// block-diagonal sparsification: reduce the huge linear RLC part of the
// PEEC model to a small port macromodel, then simulate that.
//
// The variant here follows the paper's §4 refinements: excitation is
// applied only to the *active* ports (the switching driver), not to the
// passive sinks, which keeps the Krylov block narrow; sinks remain
// observable through the projection matrix V.
package mor

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/matrix"
)

// ReducedModel is the projected system
//
//	Cr x' + Gr x = Br u(t),   y = Lr^T x
//
// with x of dimension Order(). Br columns correspond to the active
// ports (current injections), Lr columns to the observation nodes.
type ReducedModel struct {
	Gr, Cr *matrix.Dense
	Br     *matrix.Dense
	Lr     *matrix.Dense
	// V is the n x q projection basis, for expanding reduced states
	// back to full MNA coordinates.
	V *matrix.Dense
}

// Order returns the reduced dimension q.
func (rm *ReducedModel) Order() int { return rm.Gr.Rows() }

// Options configures the reduction.
type Options struct {
	// Blocks is the number of block-Krylov iterations (moments matched
	// per port ~ Blocks). Default 6.
	Blocks int
	// Gmin regularizes G (default 1e-9; the reduction solves with G
	// repeatedly, so it needs a slightly stronger floor than transient).
	Gmin float64
	// DropTol deflates nearly dependent Krylov columns (default 1e-8).
	DropTol float64
}

func (o *Options) setDefaults() {
	if o.Blocks <= 0 {
		o.Blocks = 6
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-9
	}
	if o.DropTol <= 0 {
		o.DropTol = 1e-8
	}
}

// Port is a current-injection terminal pair: current enters at Plus and
// leaves at Minus. Use -1 (ground) for a single-ended port.
type Port struct {
	Plus, Minus int
}

// GroundedPorts converts bare node indices to single-ended ports.
func GroundedPorts(nodes []int) []Port {
	out := make([]Port, len(nodes))
	for i, n := range nodes {
		out[i] = Port{Plus: n, Minus: -1}
	}
	return out
}

// Reduce runs block-Arnoldi PRIMA on the linear MNA system. activePorts
// are current-injection terminal pairs; observeNodes are MNA node
// indices (from Netlist.NodeIndex) whose voltages the reduced model
// reports.
//
// The MNA is used in its PRIMA-compatible symmetrized form: branch-
// current rows are negated so that C becomes symmetric positive
// semidefinite (node caps and the inductance matrix on the diagonal
// blocks) and G + G^T is positive semidefinite — the structural
// precondition for PRIMA's passivity guarantee.
func Reduce(m *circuit.MNA, activePorts []Port, observeNodes []int, opt Options) (*ReducedModel, error) {
	opt.setDefaults()
	if len(activePorts) == 0 {
		return nil, fmt.Errorf("mor: no active ports")
	}
	n := m.Size()
	nodes := m.N.NumNodes()
	// Symmetrized pencil: flip branch rows.
	g := m.G.Clone()
	c := m.C.Clone()
	for r := nodes; r < n; r++ {
		for j := 0; j < n; j++ {
			g.Set(r, j, -g.At(r, j))
			c.Set(r, j, -c.At(r, j))
		}
	}
	for i := 0; i < nodes; i++ {
		g.Add(i, i, opt.Gmin)
	}
	lu, err := matrix.FactorLU(g)
	if err != nil {
		return nil, fmt.Errorf("mor: G singular even with gmin: %w", err)
	}

	// B: one column per active port.
	b := matrix.NewDense(n, len(activePorts))
	for k, p := range activePorts {
		if p.Plus >= nodes || p.Minus >= nodes || (p.Plus < 0 && p.Minus < 0) {
			return nil, fmt.Errorf("mor: active port %+v not a node pair", p)
		}
		if p.Plus >= 0 {
			b.Set(p.Plus, k, 1)
		}
		if p.Minus >= 0 {
			b.Set(p.Minus, k, -1)
		}
	}

	// Block Arnoldi: V0 = orth(G^-1 B); V_{k+1} = orth(G^-1 C V_k ⊥ V).
	x, err := lu.SolveMat(b)
	if err != nil {
		return nil, err
	}
	v := matrix.OrthonormalizeColumns(x, nil, opt.DropTol)
	if v.Cols() == 0 {
		return nil, fmt.Errorf("mor: input block vanished (ports disconnected?)")
	}
	prev := v
	for k := 1; k < opt.Blocks; k++ {
		cx := c.Mul(prev)
		x, err = lu.SolveMat(cx)
		if err != nil {
			return nil, err
		}
		nv := matrix.OrthonormalizeColumns(x, v, opt.DropTol)
		if nv.Cols() == 0 {
			break // Krylov space exhausted
		}
		v = matrix.AppendColumns(v, nv)
		prev = nv
	}

	// Projections via MulTrans: V^T * X without materializing V^T, with
	// the blocked parallel product doing the heavy n x q work.
	rm := &ReducedModel{
		Gr: v.MulTrans(g.Mul(v)),
		Cr: v.MulTrans(c.Mul(v)),
		Br: v.MulTrans(b),
		V:  v,
	}
	// Observation matrix over requested nodes.
	l := matrix.NewDense(n, len(observeNodes))
	for k, p := range observeNodes {
		if p < 0 || p >= nodes {
			return nil, fmt.Errorf("mor: observation node %d not a node index", p)
		}
		l.Set(p, k, 1)
	}
	rm.Lr = v.MulTrans(l)
	return rm, nil
}

// TransferAt evaluates the reduced transfer matrix
// H(jω) = Lr^T (Gr + jω Cr)^{-1} Br  (observations x ports).
func (rm *ReducedModel) TransferAt(omega float64) (*matrix.CDense, error) {
	q := rm.Order()
	a := matrix.NewCDense(q, q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			a.Set(i, j, complex(rm.Gr.At(i, j), omega*rm.Cr.At(i, j)))
		}
	}
	p := rm.Br.Cols()
	o := rm.Lr.Cols()
	h := matrix.NewCDense(o, p)
	col := make([]complex128, q)
	for pj := 0; pj < p; pj++ {
		for i := 0; i < q; i++ {
			col[i] = complex(rm.Br.At(i, pj), 0)
		}
		x, err := matrix.SolveComplex(a, col)
		if err != nil {
			return nil, err
		}
		for oi := 0; oi < o; oi++ {
			var s complex128
			for i := 0; i < q; i++ {
				s += complex(rm.Lr.At(i, oi), 0) * x[i]
			}
			h.Set(oi, pj, s)
		}
	}
	return h, nil
}

// TranResult is the reduced-model transient output.
type TranResult struct {
	Times   []float64
	Outputs [][]float64 // Outputs[k][observation]
}

// Tran integrates the reduced model with trapezoidal companion steps:
// u(t) returns the port current vector at time t.
func (rm *ReducedModel) Tran(u func(t float64) []float64, tStop, h float64) (*TranResult, error) {
	if tStop <= 0 || h <= 0 {
		return nil, fmt.Errorf("mor: bad transient range")
	}
	q := rm.Order()
	a := rm.Cr.Clone().Scale(2 / h).AddMat(rm.Gr)
	hist := rm.Cr.Clone().Scale(2/h).AddScaled(-1, rm.Gr)
	lu, err := matrix.FactorLU(a)
	if err != nil {
		return nil, fmt.Errorf("mor: reduced system singular: %w", err)
	}
	x := make([]float64, q)
	bu := func(t float64) []float64 {
		uv := u(t)
		if len(uv) != rm.Br.Cols() {
			panic(fmt.Sprintf("mor: u(t) length %d, want %d ports", len(uv), rm.Br.Cols()))
		}
		return rm.Br.MulVec(uv)
	}
	out := &TranResult{}
	record := func(t float64, x []float64) {
		y := rm.Lr.T().MulVec(x)
		out.Times = append(out.Times, t)
		out.Outputs = append(out.Outputs, y)
	}
	record(0, x)
	bPrev := bu(0)
	steps := int(tStop/h + 0.5)
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		bNow := bu(t)
		rhs := hist.MulVec(x)
		matrix.Axpy(1, bPrev, rhs)
		matrix.Axpy(1, bNow, rhs)
		xn, err := lu.Solve(rhs)
		if err != nil {
			return nil, err
		}
		x = xn
		bPrev = bNow
		record(t, x)
	}
	return out, nil
}

// StableSpectrum checks (empirically) that the reduced pencil is stable:
// all generalized eigenvalue real parts non-positive, probed via the
// positive-real test det(Gr + jωCr) != 0 along the imaginary axis and a
// Cholesky audit of the symmetric parts. Returns an explanatory error
// when a precondition fails.
func (rm *ReducedModel) StableSpectrum() error {
	gs := rm.Gr.Clone().AddMat(rm.Gr.T()).Scale(0.5)
	if !psd(gs) {
		return fmt.Errorf("mor: symmetric part of Gr not PSD")
	}
	cs := rm.Cr.Clone().AddMat(rm.Cr.T()).Scale(0.5)
	if !psd(cs) {
		return fmt.Errorf("mor: symmetric part of Cr not PSD")
	}
	return nil
}

func psd(a *matrix.Dense) bool {
	// PSD test with a tiny relative ridge (Cholesky needs PD).
	n := a.Rows()
	ridge := a.MaxAbs()*1e-10 + 1e-300
	s := a.Clone()
	for i := 0; i < n; i++ {
		s.Add(i, i, ridge)
	}
	if matrix.IsPositiveDefinite(s) {
		return true
	}
	return matrix.MinEigenEstimate(a, 1e-3) >= -math.Max(a.MaxAbs()*1e-8, 1e-300)
}
