package core

import (
	"testing"

	"inductance101/internal/grid"
)

func TestTable1AtScale(t *testing.T) {
	// Scaled-up integration run: a 5x5 grid with an 8-sink tree. The
	// qualitative Table 1 orderings must survive the size change.
	if testing.Short() {
		t.Skip("scale test")
	}
	opt := DefaultCaseOptions()
	opt.Grid = grid.Spec{
		NX: 5, NY: 5, Pitch: 300e-6, Width: 5e-6,
		LayerX: 0, LayerY: 1, ViaR: 0.4,
	}
	opt.ClockLevels = 3 // 8 sinks
	c, err := NewClockCase(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clock.Sinks) != 8 {
		t.Fatalf("sinks = %d", len(c.Clock.Sinks))
	}
	rows, err := Table1(c, 2.0e-9, 4e-12)
	if err != nil {
		t.Fatal(err)
	}
	rc, rlc, loop := rows[0], rows[1], rows[2]
	if rlc.WorstDelay <= rc.WorstDelay {
		t.Errorf("scale: RLC delay %g not above RC %g", rlc.WorstDelay, rc.WorstDelay)
	}
	if rlc.WorstSkew <= rc.WorstSkew {
		t.Errorf("scale: RLC skew %g not above RC %g", rlc.WorstSkew, rc.WorstSkew)
	}
	if loop.NumR*4 > rlc.NumR {
		t.Errorf("scale: loop model not smaller")
	}
	if rlc.NumMutual < rows[1].NumL {
		t.Errorf("scale: mutual count %d below self count %d", rlc.NumMutual, rlc.NumL)
	}
}
