package core

import (
	"math"
	"testing"
)

func TestKMatrixFlowTracksFull(t *testing.T) {
	c := testCase(t)
	full, err := c.RunPEEC(fastOpt(StrategyFull))
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpt(StrategyKMatrix)
	r, err := c.RunPEEC(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !r.PositiveDefinite {
		t.Errorf("windowed K lost positive definiteness")
	}
	if r.KeptFraction >= 1 || r.KeptFraction <= 0 {
		t.Errorf("K density = %g, expected partial", r.KeptFraction)
	}
	dev := math.Abs(r.WorstDelay-full.WorstDelay) / full.WorstDelay
	if dev > 0.10 {
		t.Errorf("K-matrix delay deviates %.1f%% from full (%g vs %g)",
			dev*100, r.WorstDelay, full.WorstDelay)
	}
	// With a full window the K flow equals the dense model exactly.
	optFull := fastOpt(StrategyKMatrix)
	optFull.KWindow = c.Par.L.Rows()
	rf, err := c.RunPEEC(optFull)
	if err != nil {
		t.Fatal(err)
	}
	devF := math.Abs(rf.WorstDelay-full.WorstDelay) / full.WorstDelay
	if devF > 0.005 {
		t.Errorf("full-window K deviates %.2f%% from dense L", devF*100)
	}
}
