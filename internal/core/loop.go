package core

import (
	"context"
	"fmt"
	"time"

	"inductance101/internal/circuit"
	"inductance101/internal/fasthenry"
	"inductance101/internal/loopmodel"
	"inductance101/internal/sim"
)

// LoopOptions configures the §5 loop-inductance flow.
type LoopOptions struct {
	// FLow and FHigh are the two extraction frequencies for the ladder
	// fit (Fig. 3(d)).
	FLow, FHigh float64
	// Ladder selects the frequency-dependent ladder model; false uses
	// the single-frequency R+L of Fig. 3(c), extracted at FHigh.
	Ladder bool
	// RCSegments splits the per-sink loop R/L into this many RLC-π
	// sections ("the lumped representation can be improved by
	// increasing the number of RLC-π segments"); 1 = fully lumped.
	RCSegments int
	// Transient window.
	TStop, TStep float64
}

// DefaultLoopOptions matches the default case's band.
func DefaultLoopOptions() LoopOptions {
	return LoopOptions{
		FLow: 2e8, FHigh: 1e10,
		Ladder:     true,
		RCSegments: 1,
		TStop:      2.5e-9, TStep: 2e-12,
	}
}

// RunLoop executes the loop-inductance flow: per-sink loop extraction
// with the receiver shorted to local ground (FastHenry style), ladder
// fit, lumped-capacitance netlist, SPICE-lite simulation. Per the
// paper, all interconnect and load capacitance is lumped at the
// receiver ends; the measured run time includes extraction and fitting.
func (c *ClockCase) RunLoop(opt LoopOptions) (*FlowResult, error) {
	return c.RunLoopCtx(context.Background(), opt)
}

// RunLoopCtx is RunLoop under a context, staged through the session's
// pipeline (extract → model → sim → measure) like RunPEECCtx.
func (c *ClockCase) RunLoopCtx(ctx context.Context, opt LoopOptions) (*FlowResult, error) {
	start := time.Now()
	if opt.FLow <= 0 || opt.FHigh <= opt.FLow {
		return nil, fmt.Errorf("core: bad loop extraction band [%g, %g]", opt.FLow, opt.FHigh)
	}
	if opt.RCSegments <= 0 {
		opt.RCSegments = 1
	}
	pipe := c.session().Pipeline()
	res := &FlowResult{Name: "LOOP(RLC)", KeptFraction: 1, PositiveDefinite: true}
	defer func() {
		res.Stages = pipe.Stages()
		res.Runtime = time.Since(start)
	}()

	lay := c.Grid.Layout
	segs := append([]int(nil), c.Clock.Segs...)
	segs = append(segs, c.gndSegs()...)

	// Per-sink ladder extraction.
	ladders := make([]loopmodel.Ladder, len(c.Clock.Sinks))
	if err := pipe.Run(ctx, "extract", func(context.Context) (string, error) {
		fhOpt := c.session().SolverOptions()
		fhOpt.MaxPerSide = 2
		for k, sink := range c.Clock.Sinks {
			x, y, err := c.sinkPosition(sink)
			if err != nil {
				return "", err
			}
			shorts := [][2]string{{sink, c.nearestGndNode(x, y)}}
			solver, err := fasthenry.NewSolver(lay, segs,
				fasthenry.Port{Plus: c.Clock.Root, Minus: c.DriverGnd},
				shorts, opt.FHigh, fhOpt)
			if err != nil {
				return "", fmt.Errorf("core: loop extraction for sink %d: %w", k, err)
			}
			zLo, err := solver.Impedance(opt.FLow)
			if err != nil {
				return "", err
			}
			if !opt.Ladder {
				r, l := loopmodel.SingleFrequencyRL(zLo, opt.FLow)
				ladders[k] = loopmodel.Ladder{R0: r, L0: l}
				continue
			}
			zHi, err := solver.Impedance(opt.FHigh)
			if err != nil {
				return "", err
			}
			ladders[k], err = loopmodel.FitTwoPoint(zLo, opt.FLow, zHi, opt.FHigh)
			if err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("%d sink loops", len(ladders)), nil
	}); err != nil {
		return nil, err
	}

	// Netlist: per-sink ladder with the lumped capacitance at the
	// receiver; interconnect element counts are captured before the
	// driver is added (they are the Table 1 rows).
	n := circuit.New()
	if err := pipe.Run(ctx, "model", func(context.Context) (string, error) {
		cWire := c.TotalClockInterconnectCap() / float64(len(c.Clock.Sinks))
		for k := range c.Clock.Sinks {
			sinkNode := fmt.Sprintf("sink%d", k)
			stampLadderSegments(n, ladders[k], opt.RCSegments, cWire+c.SinkLoad(k),
				fmt.Sprintf("loop%d", k), "root", sinkNode)
		}
		res.Stats = n.Stats()
		n.AddV("vdrv", "drv_src", circuit.Ground, c.InputWave())
		n.AddR("rdrv", "drv_src", "root", c.Opt.DriverR)
		return "", nil
	}); err != nil {
		return nil, err
	}

	if err := pipe.Run(ctx, "sim", func(context.Context) (string, error) {
		tr, err := sim.Tran(n, sim.TranOptions{
			TStop: opt.TStop, TStep: opt.TStep,
			Policy: c.session().SimPolicy(),
		})
		if err != nil {
			return "", fmt.Errorf("core: loop transient: %w", err)
		}
		res.Times = tr.Times
		res.RootV = tr.MustV("root")
		for k := range c.Clock.Sinks {
			res.SinkV = append(res.SinkV, tr.MustV(fmt.Sprintf("sink%d", k)))
		}
		return fmt.Sprintf("%d steps", len(tr.Times)), nil
	}); err != nil {
		return nil, err
	}

	if err := pipe.Run(ctx, "measure", func(context.Context) (string, error) {
		if err := c.measure(res); err != nil {
			return "", fmt.Errorf("core: loop: %w", err)
		}
		return "", nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// stampLadderSegments distributes a ladder and the lumped capacitance
// over nSeg RLC-π sections between nodes a and b.
func stampLadderSegments(n *circuit.Netlist, ld loopmodel.Ladder, nSeg int, cTotal float64, prefix, a, b string) {
	if nSeg <= 1 {
		ld.Stamp(n, prefix, a, b)
		n.AddC(prefix+".cl", b, circuit.Ground, cTotal)
		return
	}
	// Split the ladder values evenly across sections, with the
	// capacitance spread over section boundaries (π style: interior
	// nodes get full shares, the receiver the final share).
	part := loopmodel.Ladder{R0: ld.R0 / float64(nSeg), L0: ld.L0 / float64(nSeg)}
	for _, s := range ld.Sections {
		part.Sections = append(part.Sections, loopmodel.Section{
			R: s.R / float64(nSeg), L: s.L / float64(nSeg),
		})
	}
	cur := a
	for k := 0; k < nSeg; k++ {
		next := b
		if k < nSeg-1 {
			next = fmt.Sprintf("%s.seg%d", prefix, k)
		}
		part.Stamp(n, fmt.Sprintf("%s.lad%d", prefix, k), cur, next)
		n.AddC(fmt.Sprintf("%s.c%d", prefix, k), next, circuit.Ground, cTotal/float64(nSeg))
		cur = next
	}
}
