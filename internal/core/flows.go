package core

import (
	"context"
	"fmt"
	"time"

	"inductance101/internal/circuit"
	"inductance101/internal/engine"
	"inductance101/internal/grid"
	"inductance101/internal/matrix"
	"inductance101/internal/mor"
	"inductance101/internal/sim"
	"inductance101/internal/sparsify"
)

// Strategy selects how the partial inductance matrix enters the PEEC
// simulation.
type Strategy int

// PEEC flow strategies (the §4 menu).
const (
	// StrategyRC drops inductance entirely — Table 1's "PEEC (RC)".
	StrategyRC Strategy = iota
	// StrategyFull keeps the dense partial inductance matrix —
	// "PEEC (RLC)".
	StrategyFull
	// StrategyBlockDiag applies block-diagonal sparsification.
	StrategyBlockDiag
	// StrategyShell applies the shell shift-truncate method.
	StrategyShell
	// StrategyHalo applies the return-limited halo method.
	StrategyHalo
	// StrategyTruncate applies naive truncation (for the instability
	// ablation; may produce a non-passive model on purpose).
	StrategyTruncate
	// StrategyKMatrix inverts the partial inductance matrix into the
	// K (inverse inductance) element of Devgan et al., sparsified by
	// windowed local inversion, and simulates with the K-group stamp.
	StrategyKMatrix
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case StrategyRC:
		return "PEEC(RC)"
	case StrategyFull:
		return "PEEC(RLC)"
	case StrategyBlockDiag:
		return "PEEC(block-diag)"
	case StrategyShell:
		return "PEEC(shell)"
	case StrategyHalo:
		return "PEEC(halo)"
	case StrategyTruncate:
		return "PEEC(truncated)"
	case StrategyKMatrix:
		return "PEEC(K-matrix)"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// FlowOptions configures one PEEC simulation flow.
type FlowOptions struct {
	Strategy Strategy
	// Sections for block-diagonal; ShellRadius for shell;
	// TruncThreshold for truncation; KWindow for the windowed
	// K-matrix inversion.
	Sections       int
	ShellRadius    float64
	TruncThreshold float64
	KWindow        int
	// UsePRIMA reduces the linear part before transient simulation —
	// the paper's combined technique. Background sources are excluded
	// in this mode (the active-port refinement).
	UsePRIMA    bool
	PrimaBlocks int
	// Transient window.
	TStop, TStep float64
}

// DefaultFlowOptions fills the transient window for the default case.
func DefaultFlowOptions(s Strategy) FlowOptions {
	return FlowOptions{
		Strategy:       s,
		Sections:       4,
		ShellRadius:    150e-6,
		KWindow:        8,
		TruncThreshold: 0.1,
		PrimaBlocks:    16,
		TStop:          2.5e-9,
		TStep:          2e-12,
	}
}

// StrategyFromConfig maps the engine's core-free sparsification enum
// onto the §4 strategy menu.
func StrategyFromConfig(s engine.Sparsification) (Strategy, error) {
	switch s {
	case engine.SparsifyNone:
		return StrategyFull, nil
	case engine.SparsifyRC:
		return StrategyRC, nil
	case engine.SparsifyBlockDiag:
		return StrategyBlockDiag, nil
	case engine.SparsifyShell:
		return StrategyShell, nil
	case engine.SparsifyHalo:
		return StrategyHalo, nil
	case engine.SparsifyTruncate:
		return StrategyTruncate, nil
	case engine.SparsifyKMatrix:
		return StrategyKMatrix, nil
	}
	return StrategyFull, fmt.Errorf("core: unknown sparsification %d", int(s))
}

// FlowOptionsFromConfig translates a run config into flow options: the
// sparsification strategy and, when MOROrder is positive, a PRIMA
// reduction of that block order. Everything else keeps the defaults.
func FlowOptionsFromConfig(cfg engine.Config) (FlowOptions, error) {
	s, err := StrategyFromConfig(cfg.Sparsification)
	if err != nil {
		return FlowOptions{}, err
	}
	opt := DefaultFlowOptions(s)
	if cfg.MOROrder > 0 {
		opt.UsePRIMA = true
		opt.PrimaBlocks = cfg.MOROrder
	}
	return opt, nil
}

// FlowResult carries the waveforms, metrics and costs of one flow.
type FlowResult struct {
	Name  string
	Times []float64
	// SinkV[k] is sink k's waveform; RootV the driver output.
	SinkV [][]float64
	RootV []float64

	Delays     []float64 // per-sink 50% delay from the input transition
	WorstDelay float64
	Skew       float64
	Overshoot  float64 // worst overshoot above Vdd across sinks

	Stats       circuit.Stats
	MutualCount int
	// KeptFraction and PositiveDefinite report the sparsification audit
	// (1 and true for full/RC).
	KeptFraction     float64
	PositiveDefinite bool
	ReducedOrder     int // PRIMA order, 0 if unused
	Runtime          time.Duration
	// Stages is the pipeline's per-stage wall-time/diagnostic log.
	Stages []engine.StageStat
}

// RunPEEC executes the detailed-model flow with the chosen §4 options.
func (c *ClockCase) RunPEEC(opt FlowOptions) (*FlowResult, error) {
	return c.RunPEECCtx(context.Background(), opt)
}

// RunPEECCtx is RunPEEC under a context: the flow runs its stages
// (sparsify → model → [mor] → sim → measure) through the case
// session's pipeline, stopping at the first stage whose turn comes
// after ctx is cancelled and recording per-stage wall time and
// diagnostics in FlowResult.Stages.
func (c *ClockCase) RunPEECCtx(ctx context.Context, opt FlowOptions) (*FlowResult, error) {
	start := time.Now()
	pipe := c.session().Pipeline()
	res := &FlowResult{Name: opt.Strategy.String(), KeptFraction: 1, PositiveDefinite: true}
	if opt.UsePRIMA {
		res.Name += "+PRIMA"
	}
	defer func() {
		res.Stages = pipe.Stages()
		res.Runtime = time.Since(start)
	}()

	var lOverride, kOverride *matrix.Dense
	lay := c.Grid.Layout
	if err := pipe.Run(ctx, "sparsify", func(context.Context) (string, error) {
		switch opt.Strategy {
		case StrategyRC, StrategyFull:
			return "", nil
		case StrategyBlockDiag:
			sec := sparsify.SectionsByCrossCoordinate(lay, c.Par.Segs, opt.Sections)
			r := sparsify.BlockDiagonal(c.Par.L, sec)
			lOverride, res.KeptFraction, res.PositiveDefinite = r.L, r.KeptFraction, r.PositiveDefinite
		case StrategyShell:
			r := sparsify.Shell(lay, c.Par.Segs, c.Par.L, opt.ShellRadius)
			lOverride, res.KeptFraction, res.PositiveDefinite = r.L, r.KeptFraction, r.PositiveDefinite
		case StrategyHalo:
			r := sparsify.Halo(lay, c.Par.Segs, c.Par.L, func(net string) bool {
				return net == "GND" || net == "VDD"
			})
			lOverride, res.KeptFraction, res.PositiveDefinite = r.L, r.KeptFraction, r.PositiveDefinite
		case StrategyTruncate:
			r := sparsify.Truncate(c.Par.L, opt.TruncThreshold)
			lOverride, res.KeptFraction, res.PositiveDefinite = r.L, r.KeptFraction, r.PositiveDefinite
		case StrategyKMatrix:
			k, err := sparsify.WindowedK(c.Par.L, opt.KWindow)
			if err != nil {
				return "", fmt.Errorf("core: windowed K: %w", err)
			}
			kOverride = k
			res.PositiveDefinite = matrix.IsPositiveDefinite(k)
			n := k.Rows()
			kept := 0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && k.At(i, j) != 0 {
						kept++
					}
				}
			}
			if n > 1 {
				res.KeptFraction = float64(kept) / float64(n*(n-1))
			}
		default:
			return "", fmt.Errorf("core: unknown strategy %d", opt.Strategy)
		}
		return fmt.Sprintf("kept %.3g of mutuals", res.KeptFraction), nil
	}); err != nil {
		return nil, err
	}

	var p *grid.PEECNetlist
	var n *circuit.Netlist
	if err := pipe.Run(ctx, "model", func(context.Context) (string, error) {
		mode := grid.ModeRLC
		if opt.Strategy == StrategyRC {
			mode = grid.ModeRC
		}
		var err error
		p, err = grid.BuildPEECNetlist(lay, c.Par, grid.PEECOptions{
			Mode: mode, LOverride: lOverride, KOverride: kOverride,
		})
		if err != nil {
			return "", err
		}
		n = p.Netlist
		res.MutualCount = p.MutualCount
		// Interconnect element counts (Table 1 rows) are captured before
		// the environment (package, decap, sources) is attached.
		res.Stats = n.Stats()
		return fmt.Sprintf("%d mutuals", res.MutualCount), nil
	}); err != nil {
		return nil, err
	}

	if opt.UsePRIMA {
		if err := c.runPRIMA(ctx, pipe, n, p, opt, res); err != nil {
			return nil, err
		}
	} else {
		if err := pipe.Run(ctx, "sim", func(context.Context) (string, error) {
			if err := c.attachEnvironment(n, true, true, true); err != nil {
				return "", err
			}
			tr, err := sim.Tran(n, sim.TranOptions{
				TStop: opt.TStop, TStep: opt.TStep,
				Policy: c.session().SimPolicy(),
			})
			if err != nil {
				return "", fmt.Errorf("core: %s transient: %w", res.Name, err)
			}
			res.Times = tr.Times
			res.RootV = tr.MustV(c.Clock.Root)
			for _, s := range c.Clock.Sinks {
				res.SinkV = append(res.SinkV, tr.MustV(s))
			}
			return fmt.Sprintf("%d steps", len(tr.Times)), nil
		}); err != nil {
			return nil, err
		}
	}
	if err := pipe.Run(ctx, "measure", func(context.Context) (string, error) {
		if err := c.measure(res); err != nil {
			return "", fmt.Errorf("core: %s: %w", res.Name, err)
		}
		return "", nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// runPRIMA reduces the linear PEEC model (driver Norton-folded, no
// background sources) and simulates the reduced system, as the "mor"
// and "sim" stages of the flow pipeline.
func (c *ClockCase) runPRIMA(ctx context.Context, pipe *engine.Pipeline, n *circuit.Netlist, p *grid.PEECNetlist, opt FlowOptions, res *FlowResult) error {
	var rm *mor.ReducedModel
	if err := pipe.Run(ctx, "mor", func(context.Context) (string, error) {
		// Environment without driver, background, or supply source: PRIMA
		// needs a source-free linear system, so both the driver and the
		// external supply enter as Norton current injections.
		if err := c.attachEnvironment(n, false, false, false); err != nil {
			return "", err
		}
		// Driver as Norton: R from root to the local ground node stays in
		// the linear system; the current injection I(t) = V(t)/R drives the
		// (root, gnd) port pair.
		n.AddR("rdrv", c.Clock.Root, c.DriverGnd, c.Opt.DriverR)
		// The linear system is simulated incrementally around the DC
		// operating point (superposition): at rest the clock net sits at 0V
		// and the supply at Vdd, so the only nonzero incremental input is
		// the driver transition. The ideal supply is a short for
		// increments — a stiff anchor resistor on vdd_ext models it.
		n.AddR("rext", "vdd_ext", circuit.Ground, 1e-3)

		m := circuit.Build(n)
		rootIdx, err := n.NodeIndex(c.Clock.Root)
		if err != nil {
			return "", err
		}
		gndIdx, err := n.NodeIndex(c.DriverGnd)
		if err != nil {
			return "", err
		}
		var observe []int
		observe = append(observe, rootIdx)
		for _, s := range c.Clock.Sinks {
			si, err := n.NodeIndex(s)
			if err != nil {
				return "", err
			}
			observe = append(observe, si)
		}
		ports := []mor.Port{{Plus: rootIdx, Minus: gndIdx}}
		rm, err = mor.Reduce(m, ports, observe, mor.Options{Blocks: opt.PrimaBlocks})
		if err != nil {
			return "", err
		}
		res.ReducedOrder = rm.Order()
		return fmt.Sprintf("order %d", rm.Order()), nil
	}); err != nil {
		return err
	}

	return pipe.Run(ctx, "sim", func(context.Context) (string, error) {
		wave := c.InputWave()
		tr, err := rm.Tran(func(t float64) []float64 {
			return []float64{wave.At(t) / c.Opt.DriverR}
		}, opt.TStop, opt.TStep)
		if err != nil {
			return "", err
		}
		res.Times = tr.Times
		res.RootV = make([]float64, len(tr.Times))
		res.SinkV = make([][]float64, len(c.Clock.Sinks))
		for k := range c.Clock.Sinks {
			res.SinkV[k] = make([]float64, len(tr.Times))
		}
		for ti, y := range tr.Outputs {
			res.RootV[ti] = y[0]
			for k := range c.Clock.Sinks {
				res.SinkV[k][ti] = y[1+k]
			}
		}
		return fmt.Sprintf("%d steps", len(tr.Times)), nil
	})
}

// measure fills the delay/skew/overshoot metrics from the waveforms.
//
// PRIMA transients start from a zero state rather than the DC operating
// point, so sink waveforms may begin away from their settled low value;
// delay crossings are still well-defined because the clock transition
// dominates.
func (c *ClockCase) measure(res *FlowResult) error {
	t50 := c.InputT50()
	mid := c.Opt.Vdd / 2
	res.Delays = res.Delays[:0]
	for k, v := range res.SinkV {
		tc, err := sim.CrossTime(res.Times, v, mid, true)
		if err != nil {
			return fmt.Errorf("sink %d: %w", k, err)
		}
		res.Delays = append(res.Delays, tc-t50)
		if ov := sim.Overshoot(v, c.Opt.Vdd); ov > res.Overshoot {
			res.Overshoot = ov
		}
	}
	for _, d := range res.Delays {
		if d > res.WorstDelay {
			res.WorstDelay = d
		}
	}
	res.Skew = sim.Skew(res.Delays)
	return nil
}
