package core

import (
	"math"
	"testing"

	"inductance101/internal/grid"
)

// testCase returns a reduced-size case so the full flow suite stays
// fast under `go test`.
func testCase(t *testing.T) *ClockCase {
	t.Helper()
	opt := DefaultCaseOptions()
	opt.Grid = grid.Spec{
		NX: 3, NY: 3, Pitch: 100e-6, Width: 4e-6,
		LayerX: 0, LayerY: 1, ViaR: 0.4,
	}
	opt.ClockLevels = 2
	opt.Background = 2
	c, err := NewClockCase(opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClockCase(t *testing.T) {
	c := testCase(t)
	if len(c.Clock.Sinks) != 4 {
		t.Errorf("sinks = %d", len(c.Clock.Sinks))
	}
	if c.Par.L.Rows() != len(c.Grid.Layout.Segments) {
		t.Errorf("extraction covers %d of %d segments", c.Par.L.Rows(), len(c.Grid.Layout.Segments))
	}
	if c.TotalClockInterconnectCap() <= 0 {
		t.Errorf("no clock interconnect capacitance")
	}
	for _, s := range c.Clock.Sinks {
		if _, _, err := c.sinkPosition(s); err != nil {
			t.Errorf("sink position: %v", err)
		}
	}
	if _, _, err := c.sinkPosition("nope"); err == nil {
		t.Errorf("bogus sink accepted")
	}
}

func TestTable1Flows(t *testing.T) {
	c := testCase(t)
	rows, err := Table1(c, 2.0e-9, 4e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	rc, rlc, loop := rows[0], rows[1], rows[2]

	// Headline qualitative reproduction of Table 1:
	// inductance increases the delay vs the RC model.
	if rlc.WorstDelay <= rc.WorstDelay {
		t.Errorf("RLC delay %g not above RC delay %g", rlc.WorstDelay, rc.WorstDelay)
	}
	// The loop model sees inductance too (delay above RC), but deviates
	// from the detailed PEEC answer.
	if loop.WorstDelay <= rc.WorstDelay {
		t.Errorf("loop delay %g not above RC delay %g", loop.WorstDelay, rc.WorstDelay)
	}
	dev := math.Abs(loop.WorstDelay-rlc.WorstDelay) / rlc.WorstDelay
	if dev > 0.5 {
		t.Errorf("loop model deviates %.0f%% from PEEC — too much", dev*100)
	}
	// Element counts: the loop model is drastically smaller and has no
	// mutual inductances at all (the grid return is folded into the
	// extracted loop values).
	if loop.NumR*4 > rlc.NumR || loop.NumL*2 > rlc.NumL {
		t.Errorf("loop model not smaller: R %d vs %d, L %d vs %d",
			loop.NumR, rlc.NumR, loop.NumL, rlc.NumL)
	}
	if loop.NumMutual != 0 {
		t.Errorf("loop model has %d mutuals", loop.NumMutual)
	}
	// RC interconnect has no inductors; RLC one per segment + mutuals.
	if rc.NumL != 0 || rlc.NumL == 0 || rlc.NumMutual == 0 {
		t.Errorf("element counts wrong: %+v / %+v", rc, rlc)
	}
	// Unbalanced sink loads give a measurable skew.
	if rlc.WorstSkew <= 0 {
		t.Errorf("no skew measured")
	}
	// All delays physical: positive, sub-ns at this scale.
	for _, r := range rows {
		if r.WorstDelay <= 0 || r.WorstDelay > 1e-9 {
			t.Errorf("%s worst delay %g implausible", r.Model, r.WorstDelay)
		}
		if r.WorstSkew < 0 || r.WorstSkew > r.WorstDelay {
			t.Errorf("%s skew %g vs delay %g implausible", r.Model, r.WorstSkew, r.WorstDelay)
		}
	}
	// The formatted table mentions every model.
	s := FormatTable1(rows)
	for _, want := range []string{"PEEC(RC)", "PEEC(RLC)", "LOOP(RLC)", "Worst delay"} {
		if !contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestInductanceCausesOvershoot(t *testing.T) {
	c := testCase(t)
	rc, err := c.RunPEEC(fastOpt(StrategyRC))
	if err != nil {
		t.Fatal(err)
	}
	rlc, err := c.RunPEEC(fastOpt(StrategyFull))
	if err != nil {
		t.Fatal(err)
	}
	if rlc.Overshoot <= rc.Overshoot {
		t.Errorf("RLC overshoot %g not above RC %g", rlc.Overshoot, rc.Overshoot)
	}
}

func fastOpt(s Strategy) FlowOptions {
	o := DefaultFlowOptions(s)
	o.TStop = 2.0e-9
	o.TStep = 4e-12
	return o
}

func TestSparsifiedFlowsTrackFullModel(t *testing.T) {
	c := testCase(t)
	full, err := c.RunPEEC(fastOpt(StrategyFull))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategyBlockDiag, StrategyShell, StrategyHalo} {
		r, err := c.RunPEEC(fastOpt(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !r.PositiveDefinite {
			t.Errorf("%s lost positive definiteness", r.Name)
		}
		if r.KeptFraction >= 1 {
			t.Errorf("%s kept everything", r.Name)
		}
		dev := math.Abs(r.WorstDelay-full.WorstDelay) / full.WorstDelay
		if dev > 0.15 {
			t.Errorf("%s delay deviates %.0f%% from full PEEC", r.Name, dev*100)
		}
	}
}

func TestPRIMAFlowMatchesFull(t *testing.T) {
	c := testCase(t)
	// Compare against the full flow without background activity (the
	// PRIMA flow excludes it per the paper's refinement) and with a
	// Thevenin driver, so the only modeling difference is reduction.
	cNoBg := c
	cNoBg.Opt.Background = 0
	full, err := cNoBg.RunPEEC(fastOpt(StrategyFull))
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpt(StrategyFull)
	opt.UsePRIMA = true
	red, err := cNoBg.RunPEEC(opt)
	if err != nil {
		t.Fatal(err)
	}
	if red.ReducedOrder == 0 || red.ReducedOrder >= c.Par.L.Rows()*2 {
		t.Errorf("reduced order %d implausible", red.ReducedOrder)
	}
	dev := math.Abs(red.WorstDelay-full.WorstDelay) / full.WorstDelay
	if dev > 0.10 {
		t.Errorf("PRIMA delay deviates %.1f%% from full (got %g vs %g)",
			dev*100, red.WorstDelay, full.WorstDelay)
	}
	devS := math.Abs(red.Skew - full.Skew)
	if devS > 0.25*full.Skew+2e-12 {
		t.Errorf("PRIMA skew %g vs full %g", red.Skew, full.Skew)
	}
}

func TestTruncateFlowAuditsPassivity(t *testing.T) {
	c := testCase(t)
	opt := fastOpt(StrategyTruncate)
	opt.TruncThreshold = 0.4
	r, err := c.RunPEEC(opt)
	// Either the run reports the lost passivity or (if this topology
	// survives 0.4) keeps a reduced fraction; both are valid audits —
	// but the audit fields must be consistent.
	if err != nil {
		t.Skipf("truncated model did not simulate (expected for active models): %v", err)
	}
	if r.KeptFraction >= 1 {
		t.Errorf("truncation kept everything at threshold 0.4")
	}
}

func TestCurrentAnalysis(t *testing.T) {
	c := testCase(t)
	cc, err := c.CurrentAnalysis(1.5e-9, 4e-12)
	if err != nil {
		t.Fatal(err)
	}
	if cc.QShort <= 0 {
		t.Errorf("no short-circuit charge (I1 missing)")
	}
	if cc.QCharge <= 0 {
		t.Errorf("no charging current (I2 missing)")
	}
	// The load charge dominates the crowbar charge for a healthy gate.
	if cc.QCharge < cc.QShort {
		t.Errorf("QCharge %g below QShort %g — ramp too slow", cc.QCharge, cc.QShort)
	}
	// Output must rise to the rail.
	last := cc.VOut[len(cc.VOut)-1]
	if last < 0.9*c.Opt.Vdd {
		t.Errorf("driver output only reached %g", last)
	}
	// Total charge delivered to the 60fF load + parasitics should be
	// within an order of magnitude of C*Vdd.
	wantQ := 60e-15 * c.Opt.Vdd
	if cc.QCharge < wantQ/2 || cc.QCharge > wantQ*20 {
		t.Errorf("QCharge %g vs CVdd %g implausible", cc.QCharge, wantQ)
	}
}
