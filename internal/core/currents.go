package core

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/grid"
	"inductance101/internal/sim"
)

// CurrentComponents is the Fig. 1 experiment output: the decomposition
// of the currents that flow when a gate switches over the power/ground
// grid.
//
//	I1 — short-circuit current through both devices while switching
//	I2 — charging current into signal/gate capacitance (PMOS path)
//	I3 — discharging current out of signal capacitance (NMOS path)
//
// plus the loop-closing paths: package supply current and decap current.
type CurrentComponents struct {
	Times []float64
	// IPMOS and INMOS are the drain-terminal currents of the driver
	// devices (sign: positive into the drain / out of the output node
	// for the NMOS, negative for a sourcing PMOS).
	IPMOS, INMOS []float64
	// IShort is the instantaneous short-circuit component: the part of
	// the PMOS current that flows straight through the NMOS (I1).
	IShort []float64
	// ICharge is the remainder charging the signal net (I2 for a rising
	// output; the falling edge's NMOS remainder is I3).
	ICharge []float64
	// QShort, QCharge integrate the components over the transition.
	QShort, QCharge float64
	// VOut is the switching output waveform.
	VOut []float64
}

// FETCurrent evaluates a MOSFET's drain current over a transient result
// by re-applying the device model to the solved node voltages.
func FETCurrent(n *circuit.Netlist, res *sim.TranResult, fet int) []float64 {
	m := &n.MOSFETs[fet]
	vAt := func(x []float64, node int) float64 {
		if node < 0 {
			return 0
		}
		return x[node]
	}
	out := make([]float64, len(res.States))
	for k, x := range res.States {
		id, _, _ := m.Eval(vAt(x, m.D), vAt(x, m.G), vAt(x, m.S))
		out[k] = id
	}
	return out
}

// CurrentAnalysis runs the Fig. 1 experiment on the case's grid: an
// inverter driver powered from the grid switches a capacitive signal
// net while the input ramps slowly enough that both devices conduct.
func (c *ClockCase) CurrentAnalysis(tStop, tStep float64) (*CurrentComponents, error) {
	p, err := c.buildPEECBase()
	if err != nil {
		return nil, err
	}
	n := p.Netlist
	if err := c.attachEnvironment(n, false, false, true); err != nil {
		return nil, err
	}
	vdd := c.Opt.Vdd
	// Slow input fall (output rises): both devices conduct mid-ramp.
	n.AddV("vin", "fig1_in", circuit.Ground, circuit.Pulse{
		V1: vdd, V2: 0, Delay: 0.2e-9, Rise: 0.3e-9, Width: 1, Fall: 0.3e-9,
	})
	n.AddInverter("fig1_drv", "fig1_in", "fig1_out", c.DriverVdd, c.DriverGnd,
		circuit.TypicalNMOS(10), circuit.TypicalPMOS(10), 2e-15, 5e-15)
	n.AddC("fig1_cl", "fig1_out", circuit.Ground, 60e-15)

	res, err := sim.Tran(n, sim.TranOptions{TStop: tStop, TStep: tStep})
	if err != nil {
		return nil, err
	}
	// The inverter helper adds PMOS then NMOS.
	nFET := len(n.MOSFETs)
	if nFET < 2 {
		return nil, fmt.Errorf("core: driver devices missing")
	}
	ip := FETCurrent(n, res, nFET-2)
	in := FETCurrent(n, res, nFET-1)
	cc := &CurrentComponents{
		Times: res.Times,
		IPMOS: ip, INMOS: in,
		IShort:  make([]float64, len(res.Times)),
		ICharge: make([]float64, len(res.Times)),
		VOut:    res.MustV("fig1_out"),
	}
	for k := range res.Times {
		// PMOS sources current into the output (id < 0 into its drain
		// means current out of the drain node... our convention:
		// positive drain current flows into the drain terminal).
		src := -ip[k] // current delivered by the PMOS into the net
		sink := in[k] // current pulled by the NMOS out of the net
		if src < 0 {
			src = 0
		}
		if sink < 0 {
			sink = 0
		}
		short := src
		if sink < short {
			short = sink
		}
		cc.IShort[k] = short
		cc.ICharge[k] = src - short
	}
	cc.QShort = sim.Integrate(cc.Times, cc.IShort)
	cc.QCharge = sim.Integrate(cc.Times, cc.ICharge)
	return cc, nil
}

// buildPEECBase stamps the default RLC PEEC netlist for ad-hoc
// experiments.
func (c *ClockCase) buildPEECBase() (*grid.PEECNetlist, error) {
	return grid.BuildPEECNetlist(c.Grid.Layout, c.Par, grid.PEECOptions{Mode: grid.ModeRLC})
}
