package core

import (
	"math"
	"testing"
)

func TestLoopFlowMultiSegmentAndSingleFrequency(t *testing.T) {
	c := testCase(t)
	base := DefaultLoopOptions()
	base.TStop, base.TStep = 2.0e-9, 4e-12
	ref, err := c.RunLoop(base)
	if err != nil {
		t.Fatal(err)
	}
	// Distributing the ladder over several RLC-π sections ("the lumped
	// representation can be improved by increasing the number of RLC-π
	// segments") must stay close to the lumped answer at these scales.
	multi := base
	multi.RCSegments = 3
	rm, err := c.RunLoop(multi)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Stats.NumL <= ref.Stats.NumL {
		t.Errorf("multi-segment loop netlist not larger: %d vs %d", rm.Stats.NumL, ref.Stats.NumL)
	}
	dev := math.Abs(rm.WorstDelay-ref.WorstDelay) / ref.WorstDelay
	if dev > 0.25 {
		t.Errorf("multi-segment delay deviates %.0f%% from lumped", dev*100)
	}
	// Single-frequency (non-ladder) variant, Fig. 3(c).
	single := base
	single.Ladder = false
	rs, err := c.RunLoop(single)
	if err != nil {
		t.Fatal(err)
	}
	if rs.WorstDelay <= 0 {
		t.Errorf("single-frequency loop model delay %g", rs.WorstDelay)
	}
	// Validation.
	bad := base
	bad.FLow, bad.FHigh = 1e10, 1e9
	if _, err := c.RunLoop(bad); err == nil {
		t.Errorf("inverted band accepted")
	}
}
