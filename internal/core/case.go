// Package core ties the substrates together into the paper's analysis
// flows: the detailed PEEC flow (§3, with the §4 acceleration options:
// sparsification and PRIMA), the loop-inductance flow (§5), and the
// experiment drivers that regenerate the paper's figures and Table 1
// (§6): a global clock net simulated over a multi-layer power grid with
// package, decap and background switching activity.
package core

import (
	"fmt"
	"math/rand"

	"inductance101/internal/circuit"
	"inductance101/internal/decap"
	"inductance101/internal/engine"
	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/grid"
	"inductance101/internal/pkgmodel"
)

// CaseOptions parameterizes the clock-over-grid workload.
type CaseOptions struct {
	Grid        grid.Spec
	ClockLevels int
	ClockWidth  float64
	SegsPerArm  int

	Vdd float64
	// DriverR is the Thevenin output resistance of the clock driver;
	// the driver switches the root between the local ground and Vdd.
	DriverR float64
	// SinkLoad is the lumped receiver capacitance per sink.
	SinkLoad float64
	// LoadSpread unbalances the sink loads by the given fraction across
	// sinks (sector buffers are never identical in a real design; this
	// is also what gives the clock tree a nonzero skew to measure).
	LoadSpread float64
	// StubLength, when nonzero, extends every odd-indexed sink with an
	// extra final-route segment of this length — the unbalanced sector
	// routing that gives real clock trees their skew.
	StubLength float64
	// InputDelay/InputRise shape the driver's switching waveform.
	InputDelay, InputRise float64

	// DecapWidth is the total non-switching transistor width (um)
	// distributed as decoupling capacitance; 0 disables.
	DecapWidth float64
	// Background is the number of background switching current sources;
	// 0 disables.
	Background     int
	BackgroundPeak float64
	Package        pkgmodel.Connection
	Seed           int64

	// Engine is the run-scoped solver configuration (workers, cache
	// policy, solve mode, sparse threshold). The zero value inherits
	// every process default.
	Engine engine.Config
}

// DefaultCaseOptions returns the scaled-down Table 1 workload.
func DefaultCaseOptions() CaseOptions {
	return CaseOptions{
		Grid: grid.Spec{
			NX: 4, NY: 4, Pitch: 400e-6, Width: 6e-6,
			LayerX: 0, LayerY: 1, ViaR: 0.4,
		},
		ClockLevels:    2,
		ClockWidth:     5e-6,
		SegsPerArm:     1,
		Vdd:            1.8,
		DriverR:        30,
		SinkLoad:       300e-15,
		LoadSpread:     0.5,
		StubLength:     600e-6,
		InputDelay:     0.15e-9,
		InputRise:      50e-12,
		DecapWidth:     3e4,
		Background:     4,
		BackgroundPeak: 4e-3,
		Package:        pkgmodel.FlipChip(),
		Seed:           2001,
	}
}

// ClockCase is a constructed workload with its extraction shared by all
// flows.
type ClockCase struct {
	Opt   CaseOptions
	Grid  *grid.Model
	Clock *grid.ClockNet
	// Sess owns the case's kernel cache and mints the per-layer option
	// structs every flow threads through the stack.
	Sess *engine.Session
	// Par holds the full PEEC extraction of every segment (grid +
	// clock) with the dense partial inductance matrix.
	Par *extract.Parasitics
	// DriverVdd/DriverGnd are the grid nodes the clock driver draws
	// from.
	DriverVdd, DriverGnd string

	decapEst *decap.Estimator
}

// NewClockCase builds the layout and runs the full extraction.
func NewClockCase(opt CaseOptions) (*ClockCase, error) {
	sess, err := engine.NewChecked(opt.Engine)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	gm, err := grid.BuildPowerGrid(grid.StandardLayers(), opt.Grid)
	if err != nil {
		return nil, err
	}
	cs := grid.DefaultClockSpec(gm)
	if opt.ClockLevels > 0 {
		cs.Levels = opt.ClockLevels
	}
	if opt.ClockWidth > 0 {
		cs.Width = opt.ClockWidth
	}
	if opt.SegsPerArm > 0 {
		cs.SegsPerArm = opt.SegsPerArm
	}
	cn, err := grid.AddClockTree(gm.Layout, cs)
	if err != nil {
		return nil, err
	}
	if opt.StubLength > 0 {
		addSinkStubs(gm.Layout, cn, cs, opt.StubLength)
	}
	if err := gm.Layout.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated layout invalid: %w", err)
	}
	par := extract.Extract(gm.Layout, sess.ExtractOptions())
	c := &ClockCase{Opt: opt, Grid: gm, Clock: cn, Sess: sess, Par: par}
	c.DriverVdd, c.DriverGnd = gm.NearestGridNodes(cs.CX, cs.CY)

	if opt.DecapWidth > 0 {
		ref, err := decap.MeasureBlock(decap.Typical2001(), 100, 10, 1e6)
		if err != nil {
			return nil, err
		}
		est, err := decap.NewEstimator(ref, 0.85)
		if err != nil {
			return nil, err
		}
		c.decapEst = est
	}
	return c, nil
}

// session returns the case's engine session, tolerating hand-built
// ClockCase literals (tests) by falling back to a default session.
func (c *ClockCase) session() *engine.Session {
	if c.Sess == nil {
		c.Sess = engine.New(engine.Config{})
	}
	return c.Sess
}

// InputWave is the driver's Thevenin source waveform (a single rising
// transition).
func (c *ClockCase) InputWave() circuit.Pulse {
	return circuit.Pulse{
		V1: 0, V2: c.Opt.Vdd,
		Delay: c.Opt.InputDelay, Rise: c.Opt.InputRise,
		Width: 1, Fall: c.Opt.InputRise,
	}
}

// InputT50 is the analytic 50% crossing time of the input transition,
// the reference point for all delay measurements.
func (c *ClockCase) InputT50() float64 {
	return c.Opt.InputDelay + c.Opt.InputRise/2
}

// attachEnvironment adds the package, decap, background activity and
// the Thevenin clock driver plus sink loads to a stamped PEEC netlist.
// withBackground lets the PRIMA flow drop the background sources — the
// paper's active-port refinement.
func (c *ClockCase) attachEnvironment(n *circuit.Netlist, withBackground, withDriver, withSupplySource bool) error {
	if withSupplySource {
		if err := c.Grid.AttachPackage(n, c.Opt.Package, c.Opt.Vdd); err != nil {
			return err
		}
	} else {
		if err := c.Grid.AttachPackagePads(n, c.Opt.Package); err != nil {
			return err
		}
	}
	if c.decapEst != nil {
		c.Grid.AddDecap(n, c.decapEst, c.Opt.DecapWidth)
	}
	if withBackground && c.Opt.Background > 0 {
		rng := rand.New(rand.NewSource(c.Opt.Seed))
		c.Grid.AddBackgroundActivity(n, rng, c.Opt.Background, c.Opt.BackgroundPeak, 1e-9)
	}
	if withDriver {
		n.AddV("vdrv", "drv_src", c.DriverGnd, c.InputWave())
		n.AddR("rdrv", "drv_src", c.Clock.Root, c.Opt.DriverR)
	}
	for k, s := range c.Clock.Sinks {
		n.AddC(fmt.Sprintf("csink%d", k), s, circuit.Ground, c.SinkLoad(k))
	}
	return nil
}

// SinkLoad returns sink k's lumped load capacitance, spread across
// sinks by Opt.LoadSpread.
func (c *ClockCase) SinkLoad(k int) float64 {
	n := len(c.Clock.Sinks)
	if n <= 1 || c.Opt.LoadSpread == 0 {
		return c.Opt.SinkLoad
	}
	frac := float64(k)/float64(n-1) - 0.5
	return c.Opt.SinkLoad * (1 + c.Opt.LoadSpread*frac)
}

// sinkPosition locates a sink node in the layout (the endpoint of the
// clock segment that carries it).
func (c *ClockCase) sinkPosition(sink string) (x, y float64, err error) {
	for _, si := range c.Clock.Segs {
		s := &c.Grid.Layout.Segments[si]
		if s.NodeA == sink {
			return s.X0, s.Y0, nil
		}
		if s.NodeB == sink {
			ex, ey := s.End()
			return ex, ey, nil
		}
	}
	return 0, 0, fmt.Errorf("core: sink %q not found on clock net", sink)
}

// TotalClockInterconnectCap sums the extracted ground capacitance of
// the clock net (for the loop model's lumped receiver capacitance).
func (c *ClockCase) TotalClockInterconnectCap() float64 {
	tot := 0.0
	lay := c.Grid.Layout
	for _, si := range c.Clock.Segs {
		tot += extract.GroundCap(lay, si)
	}
	return tot
}

// gndSegs returns the layout indices of ground-net segments.
func (c *ClockCase) gndSegs() []int {
	return c.Grid.Layout.SegmentsOnNet("GND")
}

// nearestGndNode returns the ground-grid crossing node nearest (x, y).
func (c *ClockCase) nearestGndNode(x, y float64) string {
	_, g := c.Grid.NearestGridNodes(x, y)
	return g
}

// addSinkStubs extends odd-indexed sinks with an extra final-route
// segment, unbalancing the otherwise perfectly symmetric H-tree.
func addSinkStubs(lay *geom.Layout, cn *grid.ClockNet, cs grid.ClockSpec, length float64) {
	for k := 1; k < len(cn.Sinks); k += 2 {
		sink := cn.Sinks[k]
		var x, y float64
		found := false
		for _, si := range cn.Segs {
			s := &lay.Segments[si]
			if s.NodeA == sink {
				x, y = s.X0, s.Y0
				found = true
			} else if s.NodeB == sink {
				x, y = s.End()
				found = true
			}
		}
		if !found {
			continue
		}
		stub := fmt.Sprintf("%s_stub", sink)
		cn.Segs = append(cn.Segs, lay.AddSegment(geom.Segment{
			Layer: cs.Layer, Dir: geom.DirX,
			X0: x, Y0: y, Length: length, Width: cs.Width,
			Net: "clk", NodeA: sink, NodeB: stub,
		}))
		cn.Sinks[k] = stub
	}
}
