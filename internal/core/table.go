package core

import (
	"fmt"
	"strings"
	"time"

	"inductance101/internal/units"
)

// Table1Row is one column of the paper's Table 1, transposed into a row
// per model.
type Table1Row struct {
	Model      string
	NumR       int
	NumC       int
	NumL       int
	NumMutual  int
	WorstDelay float64
	WorstSkew  float64
	Runtime    time.Duration
	// Result keeps the full flow output for further inspection.
	Result *FlowResult
}

// Table1 runs the three flows of the paper's Table 1 — PEEC (RC),
// PEEC (RLC), LOOP (RLC) — on the case and returns their rows.
func Table1(c *ClockCase, tranStop, tranStep float64) ([]Table1Row, error) {
	var rows []Table1Row
	add := func(r *FlowResult) {
		rows = append(rows, Table1Row{
			Model: r.Name,
			NumR:  r.Stats.NumR, NumC: r.Stats.NumC, NumL: r.Stats.NumL,
			NumMutual:  r.MutualCount,
			WorstDelay: r.WorstDelay, WorstSkew: r.Skew,
			Runtime: r.Runtime, Result: r,
		})
	}
	for _, s := range []Strategy{StrategyRC, StrategyFull} {
		opt := DefaultFlowOptions(s)
		if tranStop > 0 {
			opt.TStop = tranStop
		}
		if tranStep > 0 {
			opt.TStep = tranStep
		}
		r, err := c.RunPEEC(opt)
		if err != nil {
			return nil, err
		}
		add(r)
	}
	lopt := DefaultLoopOptions()
	if tranStop > 0 {
		lopt.TStop = tranStop
	}
	if tranStep > 0 {
		lopt.TStep = tranStep
	}
	r, err := c.RunLoop(lopt)
	if err != nil {
		return nil, err
	}
	add(r)
	return rows, nil
}

// FormatTable1 renders the rows as the paper's table (transposed:
// models as columns).
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%16s", r.Model)
	}
	b.WriteByte('\n')
	line := func(label string, f func(r Table1Row) string) {
		fmt.Fprintf(&b, "%-14s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%16s", f(r))
		}
		b.WriteByte('\n')
	}
	line("Num. of R", func(r Table1Row) string { return fmt.Sprintf("%d", r.NumR) })
	line("Num. of C", func(r Table1Row) string { return fmt.Sprintf("%d", r.NumC) })
	line("Num. of L", func(r Table1Row) string {
		if r.NumL == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", r.NumL)
	})
	line("# mutuals", func(r Table1Row) string {
		if r.NumMutual == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", r.NumMutual)
	})
	line("Worst delay", func(r Table1Row) string { return units.FormatSI(r.WorstDelay, "s") })
	line("Worst skew", func(r Table1Row) string { return units.FormatSI(r.WorstSkew, "s") })
	line("Run-time", func(r Table1Row) string { return r.Runtime.Round(time.Millisecond).String() })
	return b.String()
}
