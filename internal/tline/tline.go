// Package tline implements the classical criterion for when on-chip
// inductance matters (Deutsch et al., "When are Transmission-Line
// Effects Important for On-Chip Interconnections?", IEEE T-MTT 1997 —
// the paper's reference [1], and the basis for §7's rule that short and
// medium wires behave resistively while long, wide wires behave
// inductively).
//
// For a line with per-unit-length parameters R, L, C driven by an edge
// with rise time tr, transmission-line (inductive) behaviour appears in
// the length window
//
//	tr / (2 sqrt(LC))  <  len  <  2/R * sqrt(L/C)
//
// The lower bound says the wire must be long enough that its time of
// flight is comparable to the edge; the upper bound says it must not be
// so resistive that the line is overdamped. Below the window the wire is
// capacitive/resistive; above it, RC-dominated.
package tline

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/extract"
	"inductance101/internal/sim"
)

// LineParams are per-unit-length line constants (ohm/m, H/m, F/m).
type LineParams struct {
	R, L, C float64
}

// Validate checks physicality.
func (p LineParams) Validate() error {
	if p.R <= 0 || p.L <= 0 || p.C <= 0 {
		return fmt.Errorf("tline: non-positive line parameters %+v", p)
	}
	return nil
}

// FromGeometry derives line constants for a signal wire with a coplanar
// return at the given centre-to-centre distance: R from sheet
// resistance, loop L from the partial formulas, C from the Chern-style
// model (ground plus a coupling share).
func FromGeometry(width, thickness, hBelow, sheetRho, returnDist float64) (LineParams, error) {
	if width <= 0 || thickness <= 0 || returnDist <= width {
		return LineParams{}, fmt.Errorf("tline: bad geometry (w=%g t=%g d=%g)", width, thickness, returnDist)
	}
	// Evaluate per-unit-length values on a 1mm reference length (the
	// partial-inductance log term makes loop L weakly length-dependent;
	// 1mm is the scale the criterion is used at).
	const ref = 1e-3
	ls := extract.SelfInductanceBar(ref, width, thickness)
	m := extract.MutualFilaments(ref, ref, 0, returnDist)
	loopL := (2*ls - 2*m) / ref // signal + identical return
	r := 2 * sheetRho / width   // out and back
	c := extract.GroundCapPerLength(width, thickness, hBelow)
	p := LineParams{R: r, L: loopL, C: c}
	return p, p.Validate()
}

// FlightTime returns the time of flight l*sqrt(LC).
func (p LineParams) FlightTime(length float64) float64 {
	return length * math.Sqrt(p.L*p.C)
}

// CharacteristicImpedance returns sqrt(L/C).
func (p LineParams) CharacteristicImpedance() float64 {
	return math.Sqrt(p.L / p.C)
}

// Damping returns the damping factor of the full line,
// zeta = (R*len/2) * sqrt(C*len / (L*len)) = R*len/(2 Z0).
// zeta >= 1 means the line cannot ring no matter how fast the edge.
func (p LineParams) Damping(length float64) float64 {
	return p.R * length / (2 * p.CharacteristicImpedance())
}

// CriticalRange returns the length window [lMin, lMax] where
// transmission-line effects matter for edges of rise time tr. ok is
// false when the window is empty (the wire is too resistive for
// inductance to ever matter at this edge rate).
func CriticalRange(p LineParams, tRise float64) (lMin, lMax float64, ok bool) {
	if err := p.Validate(); err != nil || tRise <= 0 {
		return 0, 0, false
	}
	lMin = tRise / (2 * math.Sqrt(p.L*p.C))
	lMax = 2 / p.R * math.Sqrt(p.L/p.C)
	return lMin, lMax, lMax > lMin
}

// Regime classifies a wire.
type Regime int

// Wire regimes per the criterion.
const (
	// RegimeCapacitive: too short — the edge dwarfs the flight time.
	RegimeCapacitive Regime = iota
	// RegimeInductive: inside the window — model L or get it wrong.
	RegimeInductive
	// RegimeRC: too long/resistive — damping kills inductive behaviour.
	RegimeRC
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeCapacitive:
		return "capacitive"
	case RegimeInductive:
		return "inductive"
	case RegimeRC:
		return "rc-dominated"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Classify applies the criterion to a wire of the given length.
func Classify(p LineParams, length, tRise float64) Regime {
	lMin, lMax, ok := CriticalRange(p, tRise)
	switch {
	case length < lMin:
		return RegimeCapacitive
	case ok && length <= lMax:
		return RegimeInductive
	default:
		return RegimeRC
	}
}

// SimPoint is one row of an RC-vs-RLC sweep.
type SimPoint struct {
	Length    float64
	Regime    Regime
	DelayRC   float64
	DelayRLC  float64
	DelayErr  float64 // |RC-RLC| / RLC
	Overshoot float64 // RLC overshoot above the rail
}

// SweepOptions configures an RC-vs-RLC delay sweep.
type SweepOptions struct {
	TRise    float64 // edge rise time
	Vdd      float64
	DriverR  float64
	LoadC    float64
	Sections int // lumped π sections per line (default 10)
}

// DefaultSweepOptions gives a fast 2001-era driver.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		TRise: 50e-12, Vdd: 1.8, DriverR: 25, LoadC: 50e-15, Sections: 10,
	}
}

// Sweep simulates a distributed line at each length with and without
// inductance and reports the delay discrepancy — the quantitative form
// of the criterion (and of §7's opening sentence). The simulation uses
// Sections lumped RLC-π stages, trapezoidal integration.
func Sweep(p LineParams, lengths []float64, opt SweepOptions) ([]SimPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.Sections <= 0 {
		opt.Sections = 10
	}
	out := make([]SimPoint, 0, len(lengths))
	for _, length := range lengths {
		dRC, _, err := simulate(p, length, opt, false)
		if err != nil {
			return nil, fmt.Errorf("tline: RC at %g m: %w", length, err)
		}
		dRLC, ov, err := simulate(p, length, opt, true)
		if err != nil {
			return nil, fmt.Errorf("tline: RLC at %g m: %w", length, err)
		}
		out = append(out, SimPoint{
			Length:    length,
			Regime:    Classify(p, length, opt.TRise),
			DelayRC:   dRC,
			DelayRLC:  dRLC,
			DelayErr:  math.Abs(dRC-dRLC) / math.Max(dRLC, 1e-18),
			Overshoot: ov,
		})
	}
	return out, nil
}

func simulate(p LineParams, length float64, opt SweepOptions, withL bool) (delay, overshoot float64, err error) {
	n := circuit.New()
	rise := opt.TRise
	n.AddV("v", "src", circuit.Ground, circuit.Pulse{
		V1: 0, V2: opt.Vdd, Delay: rise, Rise: rise, Width: 1, Fall: rise,
	})
	n.AddR("rdrv", "src", "n0", opt.DriverR)
	sec := opt.Sections
	dl := length / float64(sec)
	for k := 0; k < sec; k++ {
		a := fmt.Sprintf("n%d", k)
		mid := fmt.Sprintf("m%d", k)
		bNode := fmt.Sprintf("n%d", k+1)
		n.AddR(fmt.Sprintf("r%d", k), a, mid, p.R*dl)
		if withL {
			n.AddL(fmt.Sprintf("l%d", k), mid, bNode, p.L*dl)
		} else {
			n.AddR(fmt.Sprintf("rl%d", k), mid, bNode, 1e-9)
		}
		n.AddC(fmt.Sprintf("c%d", k), bNode, circuit.Ground, p.C*dl)
	}
	last := fmt.Sprintf("n%d", sec)
	n.AddC("cl", last, circuit.Ground, opt.LoadC)

	// Simulation window: generous multiple of the slowest time scale.
	tau := opt.DriverR*(p.C*length+opt.LoadC) + p.R*length*p.C*length/2
	tof := p.FlightTime(length)
	tStop := rise*4 + 10*math.Max(tau, tof)
	tStep := math.Min(rise/20, tStop/2000)
	res, err := sim.Tran(n, sim.TranOptions{TStop: tStop, TStep: tStep})
	if err != nil {
		return 0, 0, err
	}
	v := res.MustV(last)
	cross, err := sim.CrossTime(res.Times, v, opt.Vdd/2, true)
	if err != nil {
		return 0, 0, err
	}
	return cross - rise*1.5, sim.Overshoot(v, opt.Vdd), nil
}
