package tline

import (
	"math"
	"testing"
	"testing/quick"
)

// wideGlobal is a wide, low-resistance global wire — the kind §7 says
// behaves inductively.
func wideGlobal() LineParams {
	p, err := FromGeometry(8e-6, 1.2e-6, 1.1e-6, 0.018, 20e-6)
	if err != nil {
		panic(err)
	}
	return p
}

// thinLocal is a narrow, resistive local wire — §7's "short/medium
// wires show resistive behaviour".
func thinLocal() LineParams {
	p, err := FromGeometry(0.4e-6, 0.4e-6, 0.4e-6, 0.08, 1.2e-6)
	if err != nil {
		panic(err)
	}
	return p
}

func TestFromGeometryValidation(t *testing.T) {
	if _, err := FromGeometry(0, 1e-6, 1e-6, 0.02, 5e-6); err == nil {
		t.Errorf("zero width accepted")
	}
	if _, err := FromGeometry(2e-6, 1e-6, 1e-6, 0.02, 1e-6); err == nil {
		t.Errorf("return inside the wire accepted")
	}
	p := wideGlobal()
	if p.R <= 0 || p.L <= 0 || p.C <= 0 {
		t.Errorf("non-physical params %+v", p)
	}
	// Plausible magnitudes: global wires run ~100s nH/m and ~100pF/m.
	if p.L < 1e-8 || p.L > 1e-5 {
		t.Errorf("L/m = %g implausible", p.L)
	}
	if p.C < 1e-11 || p.C > 1e-9 {
		t.Errorf("C/m = %g implausible", p.C)
	}
}

func TestCriticalRangeShape(t *testing.T) {
	p := wideGlobal()
	lMin, lMax, ok := CriticalRange(p, 50e-12)
	if !ok {
		t.Fatalf("wide global wire should have a nonempty inductive window")
	}
	if lMin <= 0 || lMax <= lMin {
		t.Fatalf("window [%g, %g] malformed", lMin, lMax)
	}
	// Faster edges widen the window downward.
	lMin2, _, _ := CriticalRange(p, 25e-12)
	if lMin2 >= lMin {
		t.Errorf("faster edge should lower lMin: %g vs %g", lMin2, lMin)
	}
	// The thin local wire's window must be much smaller or empty.
	tl := thinLocal()
	_, lMaxThin, okThin := CriticalRange(tl, 50e-12)
	if okThin && lMaxThin > lMax {
		t.Errorf("resistive wire has a larger inductive window (%g > %g)?", lMaxThin, lMax)
	}
}

func TestClassify(t *testing.T) {
	p := wideGlobal()
	lMin, lMax, _ := CriticalRange(p, 50e-12)
	cases := []struct {
		l    float64
		want Regime
	}{
		{lMin / 3, RegimeCapacitive},
		{math.Sqrt(lMin * lMax), RegimeInductive},
		{lMax * 3, RegimeRC},
	}
	for _, c := range cases {
		if got := Classify(p, c.l, 50e-12); got != c.want {
			t.Errorf("Classify(%g) = %v, want %v", c.l, got, c.want)
		}
	}
	if RegimeCapacitive.String() == "" || RegimeInductive.String() != "inductive" {
		t.Errorf("Regime strings broken")
	}
}

func TestDampingMonotone(t *testing.T) {
	p := wideGlobal()
	if p.Damping(1e-3) >= p.Damping(5e-3) {
		t.Errorf("damping must grow with length")
	}
	if p.FlightTime(2e-3) <= p.FlightTime(1e-3) {
		t.Errorf("flight time must grow with length")
	}
	if p.CharacteristicImpedance() < 5 || p.CharacteristicImpedance() > 500 {
		t.Errorf("Z0 = %g implausible for on-chip", p.CharacteristicImpedance())
	}
}

func TestSweepCriterionAgreesWithSimulation(t *testing.T) {
	// The headline property: inside the critical window the RC model's
	// delay error and the RLC overshoot are large; outside they shrink.
	p := wideGlobal()
	opt := DefaultSweepOptions()
	lMin, lMax, ok := CriticalRange(p, opt.TRise)
	if !ok {
		t.Fatal("no window")
	}
	mid := math.Sqrt(lMin * lMax)
	pts, err := Sweep(p, []float64{lMin / 4, mid, lMax * 4}, opt)
	if err != nil {
		t.Fatal(err)
	}
	short, in, long := pts[0], pts[1], pts[2]
	if in.Regime != RegimeInductive {
		t.Fatalf("mid-window point classified %v", in.Regime)
	}
	if in.Overshoot < 0.05 {
		t.Errorf("no ringing inside the inductive window: overshoot %g", in.Overshoot)
	}
	if long.Overshoot > in.Overshoot/2 {
		t.Errorf("overdamped long wire still rings: %g vs %g", long.Overshoot, in.Overshoot)
	}
	if in.DelayErr < 0.05 {
		t.Errorf("RC model accurate inside the window (err %g) — criterion would be pointless", in.DelayErr)
	}
	if short.DelayErr > in.DelayErr {
		t.Errorf("short-wire RC error %g above in-window error %g", short.DelayErr, in.DelayErr)
	}
	if long.DelayErr > in.DelayErr {
		t.Errorf("long-wire RC error %g above in-window error %g", long.DelayErr, in.DelayErr)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(LineParams{}, []float64{1e-3}, DefaultSweepOptions()); err == nil {
		t.Errorf("invalid params accepted")
	}
}

func TestCriticalRangeProperty(t *testing.T) {
	// For any physical parameters: lMin scales linearly with tRise and
	// lMax is independent of it; both positive.
	f := func(ru, lu, cu uint16, tr8 uint8) bool {
		p := LineParams{
			R: 100 + float64(ru), // ohm/m
			L: 1e-7 * (1 + float64(lu)/1000),
			C: 1e-10 * (1 + float64(cu)/1000),
		}
		tr := 10e-12 * (1 + float64(tr8))
		l1, h1, _ := CriticalRange(p, tr)
		l2, h2, _ := CriticalRange(p, 2*tr)
		if l1 <= 0 || h1 <= 0 {
			return false
		}
		if math.Abs(l2-2*l1) > 1e-9*l1 {
			return false
		}
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
