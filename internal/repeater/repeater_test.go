package repeater

import (
	"testing"

	"inductance101/internal/tline"
)

// globalLine is a long wire in the regime where repeaters pay off:
// resistive enough that unrepeated wire delay is quadratic-dominant,
// inductive enough that L matters per stage.
func globalLine(t *testing.T) tline.LineParams {
	t.Helper()
	p, err := tline.FromGeometry(1.5e-6, 1.2e-6, 1.1e-6, 0.018, 8e-6)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testDriver is a strong repeater matched to the test wire.
func testDriver() Driver {
	return Driver{R: 15, Cin: 20e-15, TIntrinsic: 8e-12, Vdd: 1.8, TRise: 40e-12}
}

func TestSweepShape(t *testing.T) {
	p := globalLine(t)
	res, err := Sweep(p, 14e-3, testDriver(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.StageDelay <= 0 || pt.TotalDelay <= 0 {
			t.Errorf("k=%d: non-positive delays %+v", pt.Repeaters, pt)
		}
	}
	// On a long RC line, several repeaters beat none (quadratic wire
	// delay); the curve is U-shaped with an interior optimum.
	if res.BestK < 2 {
		t.Errorf("RC optimum k=%d — repeaters should help a 14mm line", res.BestK)
	}
	// And the optimum beats both extremes.
	if res.BestDelay >= res.Points[0].TotalDelay {
		t.Errorf("optimum %g not below unrepeated %g", res.BestDelay, res.Points[0].TotalDelay)
	}
}

func TestInductanceReducesOptimalRepeaterCount(t *testing.T) {
	// The Ismail-Friedman result: k_opt(RLC) <= k_opt(RC), because
	// time-of-flight scaling makes long segments cheaper than RC
	// analysis predicts.
	p := globalLine(t)
	cmp, err := Compare(p, 14e-3, testDriver(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RLC.BestK > cmp.RC.BestK {
		t.Errorf("RLC optimum %d repeaters above RC optimum %d", cmp.RLC.BestK, cmp.RC.BestK)
	}
	// At the RC-chosen k the RLC delay differs from the RC prediction:
	// the mis-planning an RC-only methodology commits.
	rcAtK := cmp.RC.Points[cmp.RC.BestK].TotalDelay
	rlcAtK := cmp.RLC.Points[cmp.RC.BestK].TotalDelay
	if rlcAtK == rcAtK {
		t.Errorf("inductance changed nothing at k=%d", cmp.RC.BestK)
	}
	// Inductance slows the optimum and rings per stage: segmenting an
	// inductive line makes each (faster-edged) stage ring harder — a
	// signal-integrity tension RC planning never sees.
	if cmp.RLC.BestDelay <= cmp.RC.BestDelay {
		t.Errorf("RLC optimum %g not above RC optimum %g", cmp.RLC.BestDelay, cmp.RC.BestDelay)
	}
	if cmp.RLC.Points[cmp.RLC.BestK].Overshoot < 0.05 {
		t.Errorf("no per-stage ringing at the RLC optimum")
	}
	if cmp.RC.Points[cmp.RC.BestK].Overshoot > 1e-3 {
		t.Errorf("RC stage shows overshoot %g", cmp.RC.Points[cmp.RC.BestK].Overshoot)
	}
}

func TestSweepValidation(t *testing.T) {
	p := globalLine(t)
	if _, err := Sweep(tline.LineParams{}, 1e-3, DefaultDriver(), 4, true); err == nil {
		t.Errorf("bad params accepted")
	}
	if _, err := Sweep(p, 0, DefaultDriver(), 4, true); err == nil {
		t.Errorf("zero length accepted")
	}
	if _, err := Sweep(p, 1e-3, Driver{}, 4, true); err == nil {
		t.Errorf("empty driver accepted")
	}
	if _, err := Sweep(p, 1e-3, DefaultDriver(), -1, true); err == nil {
		t.Errorf("negative maxK accepted")
	}
}
