// Package repeater analyzes repeater insertion on long RLC lines —
// after Ismail & Friedman ("Effects of Inductance on the Propagation
// Delay and Repeater Insertion in VLSI Circuits", cited alongside the
// paper's design-technique references). The RC-era rule inserts many
// repeaters to linearize quadratic wire delay; inductance makes long
// unrepeated segments faster than RC analysis predicts (time-of-flight
// scaling), so the optimal repeater count DROPS once L is modeled —
// RC-based repeater methodology over-inserts on inductive lines.
//
// The analysis follows the standard per-stage method: a line of total
// length split by k repeaters gives k+1 identical stages; each stage is
// simulated once (driver resistance, wire segment, next repeater's
// input capacitance) and the stage delays add, plus the repeaters'
// intrinsic delays.
package repeater

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/sim"
	"inductance101/internal/tline"
)

// Driver models a repeater stage electrically.
type Driver struct {
	// R is the repeater output resistance; Cin its input capacitance;
	// TIntrinsic its unloaded gate delay.
	R, Cin     float64
	TIntrinsic float64
	// Vdd and TRise shape the stage stimulus.
	Vdd, TRise float64
}

// DefaultDriver is a strong 2001-era repeater.
func DefaultDriver() Driver {
	return Driver{R: 40, Cin: 30e-15, TIntrinsic: 15e-12, Vdd: 1.8, TRise: 40e-12}
}

// StageResult is the outcome at one repeater count.
type StageResult struct {
	Repeaters  int
	StageDelay float64 // one segment's 50% delay
	TotalDelay float64 // (k+1) stages + k intrinsic delays
	Overshoot  float64 // per-stage overshoot (signal-integrity hazard)
}

// Result is a full sweep with its optimum.
type Result struct {
	Points    []StageResult
	BestK     int
	BestDelay float64
}

// Sweep evaluates repeater counts 0..maxK on a line of the given total
// length, with (withL=true) or without wire inductance.
func Sweep(p tline.LineParams, length float64, drv Driver, maxK int, withL bool) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if length <= 0 || maxK < 0 {
		return nil, fmt.Errorf("repeater: bad length %g or maxK %d", length, maxK)
	}
	if drv.R <= 0 || drv.Cin < 0 || drv.Vdd <= 0 || drv.TRise <= 0 {
		return nil, fmt.Errorf("repeater: bad driver %+v", drv)
	}
	res := &Result{BestDelay: math.Inf(1)}
	for k := 0; k <= maxK; k++ {
		segLen := length / float64(k+1)
		d, ov, err := stageDelay(p, segLen, drv, withL)
		if err != nil {
			return nil, fmt.Errorf("repeater: k=%d: %w", k, err)
		}
		total := float64(k+1)*d + float64(k)*drv.TIntrinsic
		pt := StageResult{Repeaters: k, StageDelay: d, TotalDelay: total, Overshoot: ov}
		res.Points = append(res.Points, pt)
		if total < res.BestDelay {
			res.BestDelay = total
			res.BestK = k
		}
	}
	return res, nil
}

// stageDelay simulates one repeater stage: driver R, nSec lumped wire
// sections, and the next stage's input capacitance as load.
func stageDelay(p tline.LineParams, segLen float64, drv Driver, withL bool) (delay, overshoot float64, err error) {
	const nSec = 6
	n := circuit.New()
	t0 := 2 * drv.TRise
	n.AddV("v", "src", circuit.Ground, circuit.Pulse{
		V1: 0, V2: drv.Vdd, Delay: t0, Rise: drv.TRise, Width: 1, Fall: drv.TRise,
	})
	n.AddR("rdrv", "src", "n0", drv.R)
	dl := segLen / nSec
	for s := 0; s < nSec; s++ {
		a := fmt.Sprintf("n%d", s)
		mid := fmt.Sprintf("m%d", s)
		b := fmt.Sprintf("n%d", s+1)
		n.AddR(fmt.Sprintf("rw%d", s), a, mid, p.R*dl)
		if withL {
			n.AddL(fmt.Sprintf("lw%d", s), mid, b, p.L*dl)
		} else {
			n.AddR(fmt.Sprintf("ls%d", s), mid, b, 1e-9)
		}
		n.AddC(fmt.Sprintf("cw%d", s), b, circuit.Ground, p.C*dl)
	}
	out := fmt.Sprintf("n%d", nSec)
	if drv.Cin > 0 {
		n.AddC("cin", out, circuit.Ground, drv.Cin)
	}
	// Window: edge + generous settling.
	tau := drv.R*(p.C*segLen+drv.Cin) + p.R*segLen*p.C*segLen/2
	tof := p.FlightTime(segLen)
	tStop := t0 + drv.TRise + 12*math.Max(tau, tof) + 6*drv.TRise
	tStep := math.Min(drv.TRise/15, tStop/3000)
	res, err := sim.Tran(n, sim.TranOptions{TStop: tStop, TStep: tStep})
	if err != nil {
		return 0, 0, err
	}
	v := res.MustV(out)
	cross, err := sim.CrossTime(res.Times, v, drv.Vdd/2, true)
	if err != nil {
		return 0, 0, err
	}
	return cross - (t0 + drv.TRise/2), sim.Overshoot(v, drv.Vdd), nil
}

// Compare runs the RC and RLC sweeps side by side — the Ismail-Friedman
// experiment in one call.
type Comparison struct {
	RC, RLC *Result
}

// Compare sweeps both models.
func Compare(p tline.LineParams, length float64, drv Driver, maxK int) (*Comparison, error) {
	rc, err := Sweep(p, length, drv, maxK, false)
	if err != nil {
		return nil, err
	}
	rlc, err := Sweep(p, length, drv, maxK, true)
	if err != nil {
		return nil, err
	}
	return &Comparison{RC: rc, RLC: rlc}, nil
}
