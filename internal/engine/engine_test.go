package engine

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"inductance101/internal/extract"
	"inductance101/internal/fasthenry"
	"inductance101/internal/sweep"
)

func TestZeroConfigInheritsDefaults(t *testing.T) {
	s := New(Config{})
	if pol := s.SimPolicy(); pol.Workers != 0 || pol.SparseThreshold != 0 {
		t.Errorf("zero config minted non-inheriting policy %+v", pol)
	}
	opt := s.SolverOptions()
	if opt.Mode != fasthenry.ModeAuto || opt.ACATol != 0 || opt.Workers != 0 ||
		opt.Precond != fasthenry.PrecondBlockJacobi {
		t.Errorf("zero config minted non-inheriting solver options %+v", opt)
	}
	eo := s.ExtractOptions()
	if eo.CouplingWindow != 3e-6 {
		t.Errorf("ExtractOptions lost the default coupling window: %+v", eo)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ACATol: -1},
		{MOROrder: -2},
		{Cache: CachePolicy(99)},
		{SolveMode: fasthenry.SolveMode(42)},
		{Precond: fasthenry.Precond(7)},
		{Sparsification: Sparsification(-1)},
		{Sparsification: SparsifyKMatrix + 1},
		{CacheBytes: -1},
		{Cache: CachePrivate, CacheBytes: -4096},
		{GridSolver: GridSolver(-1)},
		{GridSolver: GridSolverMG + 1},
		{SweepMode: sweep.Mode(9)},
		{SweepTol: -1e-6},
		{SweepTol: math.NaN()},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted bad config %+v", cfg)
		}
		if _, err := NewChecked(cfg); err == nil {
			t.Errorf("NewChecked accepted bad config %+v", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	good := []Config{
		{SolveMode: fasthenry.ModeNested},
		{Precond: fasthenry.PrecondSAI},
		{SolveMode: fasthenry.ModeNested, Precond: fasthenry.PrecondSAI},
		{Cache: CachePrivate, CacheBytes: 1 << 20}, // zero CacheBytes = unbounded, positive = cap
		{SweepMode: sweep.ModeAdaptive, SweepTol: 1e-8},
		{SweepMode: sweep.ModeExact},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected good config %+v: %v", cfg, err)
		}
	}
}

// TestSweepConfigPlumbing pins that the sweep settings reach both
// consumers: the fasthenry solver options and the sim policy.
func TestSweepConfigPlumbing(t *testing.T) {
	s := New(Config{SweepMode: sweep.ModeAdaptive, SweepTol: 1e-7})
	if opt := s.SolverOptions(); opt.SweepMode != sweep.ModeAdaptive || opt.SweepTol != 1e-7 {
		t.Errorf("SolverOptions dropped sweep config: %+v", opt)
	}
	if pol := s.SimPolicy(); pol.SweepMode != sweep.ModeAdaptive || pol.SweepTol != 1e-7 {
		t.Errorf("SimPolicy dropped sweep config: %+v", pol)
	}
	for _, tc := range []struct {
		in   string
		want sweep.Mode
	}{{"", sweep.ModeAuto}, {"auto", sweep.ModeAuto}, {"exact", sweep.ModeExact}, {"adaptive", sweep.ModeAdaptive}} {
		m, err := ParseSweepMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseSweepMode(%q) = %v, %v", tc.in, m, err)
		}
	}
	if _, err := ParseSweepMode("spline"); err == nil {
		t.Error("ParseSweepMode accepted unknown mode")
	}
}

// TestSessionCacheBytes pins the CacheBytes plumbing: a private-cache
// session carries the cap on its own cache, and NewCheckedWithCache
// binds the caller's shared cache to every session built over it.
func TestSessionCacheBytes(t *testing.T) {
	s := New(Config{Cache: CachePrivate, CacheBytes: 1 << 20})
	if st := s.CacheStats(); st.CapBytes != 1<<20 {
		t.Errorf("private session cache cap = %d, want %d", st.CapBytes, 1<<20)
	}
	if st := New(Config{Cache: CachePrivate}).CacheStats(); st.CapBytes != 0 {
		t.Errorf("uncapped private session reports cap %d", st.CapBytes)
	}

	shared := extract.NewBoundedCache(2 << 20)
	ref := extract.CacheRefOf(shared)
	a, err := NewCheckedWithCache(Config{Workers: 1}, ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCheckedWithCache(Config{Workers: 2, Cache: CacheOff}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheRef().Cache() != shared || b.CacheRef().Cache() != shared {
		t.Errorf("NewCheckedWithCache sessions do not share the supplied cache")
	}
	if _, err := NewCheckedWithCache(Config{CacheBytes: -1}, ref); err == nil {
		t.Errorf("NewCheckedWithCache accepted an invalid config")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on an invalid config")
		}
	}()
	New(Config{ACATol: -1})
}

func TestCachePolicies(t *testing.T) {
	priv := New(Config{Cache: CachePrivate})
	if st := priv.CacheStats(); !st.Enabled {
		t.Error("private cache reports disabled")
	}
	off := New(Config{Cache: CacheOff})
	if st := off.CacheStats(); st.Enabled {
		t.Error("CacheOff session reports an enabled cache")
	}
	// A private cache's counters are the session's own.
	priv.CacheRef().Cache().SelfInductanceBar(100e-6, 1e-6, 1e-6)
	priv.CacheRef().Cache().SelfInductanceBar(100e-6, 1e-6, 1e-6)
	st := priv.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("private cache counters = %+v, want 1 hit / 1 miss", st)
	}
	other := New(Config{Cache: CachePrivate})
	if st := other.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("second private session inherited counters: %+v", st)
	}
	priv.ResetCache()
	if st := priv.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("ResetCache left counters: %+v", st)
	}
}

func TestEnumStrings(t *testing.T) {
	if CacheDefault.String() != "default" || CachePrivate.String() != "private" || CacheOff.String() != "off" {
		t.Error("CachePolicy strings drifted")
	}
	want := map[Sparsification]string{
		SparsifyNone: "full", SparsifyRC: "rc", SparsifyBlockDiag: "blockdiag",
		SparsifyShell: "shell", SparsifyHalo: "halo",
		SparsifyTruncate: "truncate", SparsifyKMatrix: "kmatrix",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
}

func TestParseGridSolver(t *testing.T) {
	good := map[string]GridSolver{
		"": GridSolverAuto, "auto": GridSolverAuto, "dense": GridSolverDense,
		"cg": GridSolverCG, "chol": GridSolverChol, "mg": GridSolverMG,
	}
	for in, want := range good {
		gs, err := ParseGridSolver(in)
		if err != nil || gs != want {
			t.Errorf("ParseGridSolver(%q) = %v, %v; want %v", in, gs, err, want)
		}
		if err := (Config{GridSolver: gs}).Validate(); err != nil {
			t.Errorf("Validate rejected GridSolver %v: %v", gs, err)
		}
	}
	for _, in := range []string{"multigrid", "lu", "CG", "amg"} {
		if _, err := ParseGridSolver(in); err == nil {
			t.Errorf("ParseGridSolver accepted %q", in)
		}
	}
	// IRSolverName round-trips into the supply layer: auto maps to the
	// empty string (let the grid size pick), everything else verbatim.
	if GridSolverAuto.IRSolverName() != "" || GridSolverMG.IRSolverName() != "mg" {
		t.Error("IRSolverName drifted")
	}
}

func TestPipelineRunsAndRecords(t *testing.T) {
	p := New(Config{}).Pipeline()
	if err := p.Run(context.Background(), "extract", func(context.Context) (string, error) {
		time.Sleep(time.Millisecond)
		return "3 segments", nil
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := p.Run(context.Background(), "sim", func(context.Context) (string, error) {
		return "", boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("stage error not propagated: %v", err)
	}
	st := p.Stages()
	if len(st) != 2 {
		t.Fatalf("recorded %d stages, want 2", len(st))
	}
	if st[0].Name != "extract" || st[0].Wall <= 0 || st[0].Note != "3 segments" {
		t.Errorf("stage 0 = %+v", st[0])
	}
	if st[1].Err == nil {
		t.Error("failed stage recorded without error")
	}
	if p.Wall() < st[0].Wall {
		t.Error("Wall() lost stage time")
	}
	rep := p.Report()
	if !strings.Contains(rep, "extract") || !strings.Contains(rep, "3 segments") || !strings.Contains(rep, "boom") {
		t.Errorf("Report missing content:\n%s", rep)
	}
}

func TestPipelineHonorsCancellation(t *testing.T) {
	p := New(Config{}).Pipeline()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.Run(ctx, "sim", func(context.Context) (string, error) {
		ran = true
		return "", nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stage returned %v", err)
	}
	if ran {
		t.Error("stage body ran after cancellation")
	}
	if st := p.Stages(); len(st) != 1 || st[0].Err == nil {
		t.Errorf("cancelled stage not recorded: %+v", st)
	}
}
