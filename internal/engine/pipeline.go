package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// StageStat is one pipeline stage's cost/diagnostic record.
type StageStat struct {
	Name string
	Wall time.Duration
	// Note is the stage's one-line diagnostic (e.g. "kept 8.3% of
	// mutuals", "order 32"); empty when the stage had nothing to say.
	Note string
	// Err records a failed stage (the pipeline stops at the first one).
	Err error
}

// Pipeline sequences the named stages of one flow (geometry → extract
// → sparsify → model → MOR → sim → measure) under a shared
// context.Context, recording per-stage wall time and diagnostics. It
// replaces the ad-hoc wiring each CLI used to carry: the CLI builds a
// Config, the flow runs its stages through the pipeline, and the
// report comes out uniform.
type Pipeline struct {
	sess *Session

	mu     sync.Mutex
	stages []StageStat
}

// Pipeline starts an empty stage log bound to the session.
func (s *Session) Pipeline() *Pipeline { return &Pipeline{sess: s} }

// Session returns the session the pipeline runs under.
func (p *Pipeline) Session() *Session { return p.sess }

// Run executes one stage: it refuses to start once ctx is cancelled,
// times fn, records the stage, and returns fn's error wrapped with the
// stage name. fn's note string lands in the stage record.
func (p *Pipeline) Run(ctx context.Context, name string, fn func(context.Context) (string, error)) error {
	if err := ctx.Err(); err != nil {
		p.record(StageStat{Name: name, Err: err})
		return fmt.Errorf("engine: stage %s: %w", name, err)
	}
	start := time.Now()
	note, err := fn(ctx)
	p.record(StageStat{Name: name, Wall: time.Since(start), Note: note, Err: err})
	if err != nil {
		return fmt.Errorf("engine: stage %s: %w", name, err)
	}
	return nil
}

func (p *Pipeline) record(st StageStat) {
	p.mu.Lock()
	p.stages = append(p.stages, st)
	p.mu.Unlock()
}

// Stages returns a copy of the per-stage records in execution order.
func (p *Pipeline) Stages() []StageStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]StageStat(nil), p.stages...)
}

// Wall sums the recorded stage wall times.
func (p *Pipeline) Wall() time.Duration {
	var tot time.Duration
	for _, st := range p.Stages() {
		tot += st.Wall
	}
	return tot
}

// Report formats the stage log, one line per stage.
func (p *Pipeline) Report() string {
	var b strings.Builder
	for _, st := range p.Stages() {
		fmt.Fprintf(&b, "%-10s %12v", st.Name, st.Wall.Round(time.Microsecond))
		if st.Note != "" {
			fmt.Fprintf(&b, "  %s", st.Note)
		}
		if st.Err != nil {
			fmt.Fprintf(&b, "  ERROR: %v", st.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
