package engine

import (
	"math"
	"sync"
	"testing"

	"inductance101/internal/circuit"
	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/sim"
)

// raceLayout is the Fig. 3(a) signal-over-return structure used by the
// fasthenry tests: a signal wire between two ground returns, shorted at
// the far end.
func raceLayout() (*geom.Layout, []int, fasthenry.Port, [][2]string) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.022, HBelow: 1e-6},
	})
	sig := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 1500e-6, Width: 2e-6, Net: "sig", NodeA: "sig0", NodeB: "sig1"})
	g1 := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: -8e-6,
		Length: 1500e-6, Width: 2e-6, Net: "gnd", NodeA: "g1a", NodeB: "g1b"})
	g2 := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 8e-6,
		Length: 1500e-6, Width: 2e-6, Net: "gnd", NodeA: "g2a", NodeB: "g2b"})
	port := fasthenry.Port{Plus: "sig0", Minus: "g1a"}
	shorts := [][2]string{{"sig1", "g1b"}, {"g1b", "g2b"}, {"g1a", "g2a"}}
	return l, []int{sig, g1, g2}, port, shorts
}

// raceNetlist is a small linear RLC ladder for the transient leg.
func raceNetlist() *circuit.Netlist {
	n := circuit.New()
	n.AddV("vin", "in", circuit.Ground, circuit.Pulse{
		V1: 0, V2: 1, Delay: 50e-12, Rise: 50e-12, Width: 1, Fall: 50e-12,
	})
	n.AddR("r1", "in", "a", 50)
	n.AddL("l1", "a", "b", 2e-9)
	n.AddC("c1", "b", circuit.Ground, 1e-12)
	n.AddR("r2", "b", "out", 100)
	n.AddC("c2", "out", circuit.Ground, 0.5e-12)
	return n
}

// TestConcurrentSessionsConflictingConfigs runs two sessions with
// deliberately opposed configs — dense vs iterative solve, private
// cache vs no cache, serial vs parallel, dense-forced vs
// sparse-forced transient — concurrently through the fasthenry sweep
// and transient paths. Under -race this proves per-run config threads
// through the stack without shared mutable tuning state; the result
// checks prove neither session perturbs the other's answers.
func TestConcurrentSessionsConflictingConfigs(t *testing.T) {
	sessA := New(Config{
		Workers:         1,
		SolveMode:       fasthenry.ModeDense,
		Cache:           CachePrivate,
		SparseThreshold: -1, // dense transient at every size
	})
	sessB := New(Config{
		Workers:         4,
		SolveMode:       fasthenry.ModeIterative,
		ACATol:          1e-9,
		Cache:           CacheOff,
		SparseThreshold: 1, // sparse transient at every size
	})

	freqs := fasthenry.LogSpace(1e8, 1e10, 5)

	// Serial references, one fresh solver per session config.
	ref := func(s *Session) []fasthenry.Point {
		l, segs, port, shorts := raceLayout()
		solver, err := fasthenry.NewSolver(l, segs, port, shorts, 1e9, s.SolverOptions())
		if err != nil {
			t.Fatal(err)
		}
		pts, err := solver.Sweep(freqs)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	refA, refB := ref(sessA), ref(sessB)

	topt := func(s *Session) sim.TranOptions {
		return sim.TranOptions{TStop: 1e-9, TStep: 1e-12, Policy: s.SimPolicy()}
	}
	trRefA, err := sim.Tran(raceNetlist(), topt(sessA))
	if err != nil {
		t.Fatal(err)
	}
	trRefB, err := sim.Tran(raceNetlist(), topt(sessB))
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the two configs solve the same physics.
	vA, vB := trRefA.MustV("out"), trRefB.MustV("out")
	for i := range vA {
		if math.Abs(vA[i]-vB[i]) > 1e-6 {
			t.Fatalf("dense and sparse transient disagree at step %d: %g vs %g", i, vA[i], vB[i])
		}
	}

	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, 4*rounds)
	for r := 0; r < rounds; r++ {
		for _, tc := range []struct {
			sess *Session
			want []fasthenry.Point
			tr   *sim.TranResult
		}{{sessA, refA, trRefA}, {sessB, refB, trRefB}} {
			tc := tc
			wg.Add(1)
			go func() {
				defer wg.Done()
				l, segs, port, shorts := raceLayout()
				solver, err := fasthenry.NewSolver(l, segs, port, shorts, 1e9, tc.sess.SolverOptions())
				if err != nil {
					errc <- err
					return
				}
				pts, err := solver.Sweep(freqs)
				if err != nil {
					errc <- err
					return
				}
				for i := range pts {
					if pts[i].R != tc.want[i].R || pts[i].L != tc.want[i].L {
						t.Errorf("concurrent sweep diverged from the session's own serial run at point %d", i)
						return
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				tr, err := sim.Tran(raceNetlist(), topt(tc.sess))
				if err != nil {
					errc <- err
					return
				}
				got, want := tr.MustV("out"), tc.tr.MustV("out")
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("concurrent transient diverged from the session's own serial run at step %d", i)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The cache-off session must not have populated anything anywhere;
	// the private session's cache saw its own traffic only.
	if st := sessB.CacheStats(); st.Enabled || st.Entries != 0 {
		t.Errorf("cache-off session accumulated cache state: %+v", st)
	}
	if st := sessA.CacheStats(); !st.Enabled || st.Misses == 0 {
		t.Errorf("private-cache session saw no kernel traffic: %+v", st)
	}
}
