// Package engine is the run-scoped configuration layer of the
// extraction/simulation stack. A Config is an immutable description of
// one run's tuning (worker fan-out, dense/sparse switch-over, solve
// mode, ACA tolerance, kernel-cache policy, §4 sparsification, MOR
// order); a Session owns the run's kernel cache and translates the
// Config into the option structs of the lower layers (extract,
// fasthenry, sim). Two Sessions with conflicting configs can run
// concurrently in one process without touching each other — the
// property the deprecated package-level Set* switches could never
// provide.
//
// The zero Config inherits every process default, so a Session built
// from it reproduces the legacy behavior bit-identically.
package engine

import (
	"fmt"
	"math"

	"inductance101/internal/extract"
	"inductance101/internal/fasthenry"
	"inductance101/internal/mesh"
	"inductance101/internal/sim"
	"inductance101/internal/sweep"
)

// CachePolicy selects the kernel cache a session's extraction kernels
// memoize into.
type CachePolicy int

const (
	// CacheDefault uses the process-wide shared cache (and honors the
	// deprecated extract.SetKernelCache switch).
	CacheDefault CachePolicy = iota
	// CachePrivate gives the session its own cache: full memoization
	// within the session, no sharing or interference across sessions.
	CachePrivate
	// CacheOff computes every kernel directly.
	CacheOff
)

// String returns the CLI spelling of the policy.
func (p CachePolicy) String() string {
	switch p {
	case CachePrivate:
		return "private"
	case CacheOff:
		return "off"
	default:
		return "default"
	}
}

// Sparsification mirrors the §4 menu of core's PEEC strategies without
// importing core (core builds on engine, not the reverse). The zero
// value keeps the full dense partial-inductance matrix.
type Sparsification int

const (
	// SparsifyNone keeps the full dense matrix — "PEEC (RLC)".
	SparsifyNone Sparsification = iota
	// SparsifyRC drops inductance entirely — "PEEC (RC)".
	SparsifyRC
	// SparsifyBlockDiag applies block-diagonal sparsification.
	SparsifyBlockDiag
	// SparsifyShell applies the shell shift-truncate method.
	SparsifyShell
	// SparsifyHalo applies the return-limited halo method.
	SparsifyHalo
	// SparsifyTruncate applies naive truncation (instability ablation).
	SparsifyTruncate
	// SparsifyKMatrix uses the windowed inverse-inductance K element.
	SparsifyKMatrix
)

// String names the strategy as the CLIs spell it.
func (s Sparsification) String() string {
	switch s {
	case SparsifyNone:
		return "full"
	case SparsifyRC:
		return "rc"
	case SparsifyBlockDiag:
		return "blockdiag"
	case SparsifyShell:
		return "shell"
	case SparsifyHalo:
		return "halo"
	case SparsifyTruncate:
		return "truncate"
	case SparsifyKMatrix:
		return "kmatrix"
	default:
		return fmt.Sprintf("Sparsification(%d)", int(s))
	}
}

// GridSolver selects the power-grid static-IR solve path of a run's
// supply analyses.
type GridSolver int

const (
	// GridSolverAuto defers to the analyzer default (dense today).
	GridSolverAuto GridSolver = iota
	// GridSolverDense solves the full MNA system densely.
	GridSolverDense
	// GridSolverCG solves the SPD sparse system with Jacobi-
	// preconditioned conjugate gradients.
	GridSolverCG
	// GridSolverChol solves the sparse system with the direct
	// fill-reducing Cholesky factorization.
	GridSolverChol
	// GridSolverMG solves with multigrid-preconditioned conjugate
	// gradients — the O(N) path that reaches million-node grids.
	GridSolverMG
)

// String returns the CLI spelling of the solver.
func (g GridSolver) String() string {
	switch g {
	case GridSolverDense:
		return "dense"
	case GridSolverCG:
		return "cg"
	case GridSolverChol:
		return "chol"
	case GridSolverMG:
		return "mg"
	default:
		return "auto"
	}
}

// IRSolverName returns the spelling the supply analyzer's Spec.IRSolver
// field accepts: "" for auto (inherit the analyzer default), the CLI
// spelling otherwise.
func (g GridSolver) IRSolverName() string {
	if g == GridSolverAuto {
		return ""
	}
	return g.String()
}

// ParseGridSolver parses the CLI spelling of a grid solver, rejecting
// unknown values with a one-line error.
func ParseGridSolver(s string) (GridSolver, error) {
	switch s {
	case "", "auto":
		return GridSolverAuto, nil
	case "dense":
		return GridSolverDense, nil
	case "cg":
		return GridSolverCG, nil
	case "chol":
		return GridSolverChol, nil
	case "mg":
		return GridSolverMG, nil
	}
	return 0, fmt.Errorf("engine: unknown grid solver %q (want auto, dense, cg, chol or mg)", s)
}

// Config is one run's immutable tuning. Zero values inherit the
// process defaults (each field documents its own convention), so
// Config{} reproduces today's behavior exactly.
type Config struct {
	// Workers caps goroutine fan-out everywhere the run parallelizes:
	// extraction rows, factorization strips, sweep points, AC points.
	// 0 = process default (matrix.Workers), 1 = fully serial.
	Workers int
	// SparseThreshold is the MNA size at which transient/AC analyses
	// switch to the sparse direct solver: > 0 explicit, 0 = process
	// default, < 0 = dense at every size.
	SparseThreshold int
	// SolveMode picks the fasthenry solve path
	// (auto/dense/iterative/nested).
	SolveMode fasthenry.SolveMode
	// ACATol is the relative tolerance of the compressed far field —
	// ACA factors or nested interpolation bases (0 = the
	// extract/fasthenry default, 1e-8).
	ACATol float64
	// Precond selects the iterative paths' preconditioner
	// (block-Jacobi, or the near-field sparse approximate inverse).
	Precond fasthenry.Precond
	// Cache is the kernel-cache policy.
	Cache CachePolicy
	// CacheBytes bounds the run's kernel-cache resident footprint in
	// bytes; over the cap, entries are evicted with a sharded CLOCK
	// policy (bit-identical results either way — eviction only trades
	// recomputation for memory). 0 = unbounded, the historical
	// behavior; negative values are rejected. With CachePrivate the cap
	// applies to the session's own cache; with CacheDefault it is
	// applied to the process-wide shared cache (a process-level
	// setting: the last session built wins); CacheOff ignores it.
	CacheBytes int64
	// Sparsification selects the §4 strategy for PEEC flows.
	Sparsification Sparsification
	// GridSolver selects the power-grid static-IR solve path
	// (auto/dense/cg/chol/mg).
	GridSolver GridSolver
	// MOROrder, when positive, reduces PEEC flows with PRIMA using this
	// many block moments. 0 = no model-order reduction.
	MOROrder int
	// SweepMode selects how frequency sweeps (loop extraction and AC)
	// are solved: exact per-point solves, the adaptive rational-
	// interpolation engine, or automatic selection by point count (the
	// zero value, sweep.ModeAuto — adaptive at sweep.AutoThreshold
	// requested points and exact below, which keeps every small legacy
	// sweep bit-identical).
	SweepMode sweep.Mode
	// SweepTol is the adaptive engine's relative interpolation
	// tolerance: interpolated points target |Z_fit - Z_exact| <=
	// SweepTol*|Z_exact|. 0 = sweep.DefaultTol (1e-6); negative or NaN
	// values are rejected by Validate.
	SweepTol float64
	// PlaneNW is the mesh grid density of conductor planes: the number
	// of grid cells along each plane axis. 0 = mesh.DefaultPlaneNW;
	// values outside [2, mesh.MaxPlaneNW] are rejected by Validate
	// before any geometry is read.
	PlaneNW int
}

// Validate rejects configs no layer can interpret. Zero values are
// always valid (they mean "inherit").
func (c Config) Validate() error {
	if c.ACATol < 0 {
		return fmt.Errorf("engine: negative ACA tolerance %g", c.ACATol)
	}
	if c.MOROrder < 0 {
		return fmt.Errorf("engine: negative MOR order %d", c.MOROrder)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("engine: negative kernel-cache byte cap %d", c.CacheBytes)
	}
	switch c.Cache {
	case CacheDefault, CachePrivate, CacheOff:
	default:
		return fmt.Errorf("engine: unknown cache policy %d", int(c.Cache))
	}
	switch c.SolveMode {
	case fasthenry.ModeAuto, fasthenry.ModeDense, fasthenry.ModeIterative, fasthenry.ModeNested:
	default:
		return fmt.Errorf("engine: unknown solve mode %d", int(c.SolveMode))
	}
	switch c.Precond {
	case fasthenry.PrecondBlockJacobi, fasthenry.PrecondSAI:
	default:
		return fmt.Errorf("engine: unknown preconditioner %d", int(c.Precond))
	}
	if c.Sparsification < SparsifyNone || c.Sparsification > SparsifyKMatrix {
		return fmt.Errorf("engine: unknown sparsification %d", int(c.Sparsification))
	}
	if c.GridSolver < GridSolverAuto || c.GridSolver > GridSolverMG {
		return fmt.Errorf("engine: unknown grid solver %d", int(c.GridSolver))
	}
	switch c.SweepMode {
	case sweep.ModeAuto, sweep.ModeExact, sweep.ModeAdaptive:
	default:
		return fmt.Errorf("engine: unknown sweep mode %d", int(c.SweepMode))
	}
	if c.SweepTol < 0 || math.IsNaN(c.SweepTol) {
		return fmt.Errorf("engine: sweep tolerance must be > 0, got %g", c.SweepTol)
	}
	if err := mesh.ValidatePlaneNW(c.PlaneNW); err != nil {
		return err
	}
	return nil
}

// ParseSweepMode parses the CLI spelling of a sweep mode ("", "auto",
// "exact", "adaptive"), rejecting unknown values with a one-line error.
// It exists so CLIs configure sweeps entirely through engine.Config
// without importing internal/sweep.
func ParseSweepMode(s string) (sweep.Mode, error) {
	return sweep.ParseMode(s)
}

// Session binds a Config to run-owned state: the kernel cache the
// config's policy names. Sessions are cheap; build one per logical run
// and thread it (or the option structs it mints) through the call
// chain. All methods are safe for concurrent use — the config is
// immutable and the cache is internally synchronized.
type Session struct {
	cfg   Config
	cache extract.CacheRef
}

// New builds a Session. Invalid configs are rejected by NewChecked;
// New panics on them, which keeps the common literal-config call sites
// un-error-checked (a config is program text, not input).
func New(cfg Config) *Session {
	s, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewChecked is New with the validation error returned instead of
// panicking, for configs assembled from user input.
func NewChecked(cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg}
	switch cfg.Cache {
	case CachePrivate:
		if cfg.CacheBytes > 0 {
			s.cache = extract.PrivateCacheBytes(cfg.CacheBytes)
		} else {
			s.cache = extract.PrivateCache()
		}
	case CacheOff:
		s.cache = extract.NoCache()
	default:
		if cfg.CacheBytes > 0 {
			extract.DefaultKernelCache().SetCapacity(cfg.CacheBytes)
		}
		s.cache = extract.DefaultCacheRef()
	}
	return s, nil
}

// NewCheckedWithCache is NewChecked with the session's kernel cache
// supplied by the caller instead of minted from the config's cache
// policy. It exists for daemons that multiplex many sessions over one
// explicitly bounded cache (see internal/serve): each request gets its
// own config, but they all memoize into — and are capped by — the one
// cache the process owns. cfg.Cache and cfg.CacheBytes are validated
// but otherwise ignored.
func NewCheckedWithCache(cfg Config, ref extract.CacheRef) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, cache: ref}, nil
}

// Config returns the session's immutable config.
func (s *Session) Config() Config { return s.cfg }

// CacheRef names the session's kernel cache; pass it to extract entry
// points.
func (s *Session) CacheRef() extract.CacheRef { return s.cache }

// CacheStats reports the session cache's hit/miss counters.
func (s *Session) CacheStats() extract.CacheStats { return s.cache.Stats() }

// ResetCache clears the session cache's entries and counters.
func (s *Session) ResetCache() { s.cache.Reset() }

// SimPolicy mints the sim-layer solver policy for this run.
func (s *Session) SimPolicy() sim.Policy {
	return sim.Policy{
		Workers: s.cfg.Workers, SparseThreshold: s.cfg.SparseThreshold,
		SweepMode: s.cfg.SweepMode, SweepTol: s.cfg.SweepTol,
	}
}

// ExtractOptions mints a full-layout extraction option set: the
// process defaults (dense mutual matrix, 3 um coupling window) under
// this session's workers and cache.
func (s *Session) ExtractOptions() extract.Options {
	opt := extract.DefaultOptions()
	opt.Workers = s.cfg.Workers
	opt.Cache = s.cache
	return opt
}

// SolverOptions mints the base fasthenry option set (solve mode, ACA
// tolerance, preconditioner, cache, workers); callers fill the
// discretization fields (NW/NT/MaxPerSide/Rho) per extraction.
func (s *Session) SolverOptions() fasthenry.Options {
	return fasthenry.Options{
		Mode:      s.cfg.SolveMode,
		ACATol:    s.cfg.ACATol,
		Precond:   s.cfg.Precond,
		Cache:     s.cache,
		Workers:   s.cfg.Workers,
		SweepMode: s.cfg.SweepMode,
		SweepTol:  s.cfg.SweepTol,
		PlaneNW:   s.cfg.PlaneNW,
	}
}
