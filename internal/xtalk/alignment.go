package xtalk

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/grid"
	"inductance101/internal/sim"
)

// Worst-case aggressor alignment under timing-window constraints, after
// Chen & He ("Worst Case RLC Noise with Timing Window Constraints" —
// from the same research thread the paper's shield-insertion reference
// [21] belongs to): each aggressor may switch anywhere inside its
// timing window, and the verification question is the alignment that
// maximizes victim noise. For RC coupling, simultaneous switching is
// provably worst; with inductive coupling the optimum can stagger, so a
// search is required.

// Window bounds one aggressor's switching time.
type Window struct {
	Lo, Hi float64
}

// AlignmentResult is the outcome of the worst-case search.
type AlignmentResult struct {
	// Times[k] is the chosen switching time of aggressor k (wires in
	// order, skipping the victim).
	Times []float64
	// Noise is the victim's peak noise at that alignment.
	Noise float64
	// Evals counts transient simulations spent.
	Evals int
}

// noiseAt simulates the quiet-victim configuration with per-aggressor
// switching delays and returns the victim's peak noise.
func noiseAt(spec BusSpec, delays []float64) (float64, error) {
	lay, ends, err := buildLayout(spec)
	if err != nil {
		return 0, err
	}
	par := extractAll(lay)
	p, err := grid.BuildPEECNetlist(lay, par, grid.PEECOptions{Mode: grid.ModeRLC})
	if err != nil {
		return 0, err
	}
	n := p.Netlist
	vi := spec.victimIndex()
	ai := 0
	maxDelay := 0.0
	for w := 0; w < spec.NWires; w++ {
		var wave circuit.Waveform = circuit.DC(0)
		if w != vi {
			d := delays[ai]
			if d > maxDelay {
				maxDelay = d
			}
			wave = circuit.Pulse{V1: 0, V2: spec.Vdd, Delay: d, Rise: spec.TRise, Width: 1, Fall: spec.TRise}
			ai++
		}
		src := fmt.Sprintf("src%d", w)
		n.AddV("v"+src, src, circuit.Ground, wave)
		n.AddR("r"+src, src, ends[w][0], spec.DriverR)
		n.AddC(fmt.Sprintf("cl%d", w), ends[w][1], circuit.Ground, spec.LoadC)
	}
	tStop := maxDelay + 30*spec.TRise
	res, err := sim.Tran(n, sim.TranOptions{TStop: tStop, TStep: spec.TRise / 12})
	if err != nil {
		return 0, err
	}
	v, err := res.V(ends[vi][1])
	if err != nil {
		return 0, err
	}
	return sim.PeakAbs(v), nil
}

// WorstAlignment searches the aggressors' timing windows for the
// switching-time vector that maximizes victim noise, by cyclic
// coordinate descent over a uniform grid inside each window. gridPts
// samples per window (default 5) and passes full sweeps (default 2)
// bound the cost at gridPts*passes*(NWires-1) transients.
func WorstAlignment(spec BusSpec, windows []Window, gridPts, passes int) (*AlignmentResult, error) {
	nAgg := spec.NWires - 1
	if len(windows) != nAgg {
		return nil, fmt.Errorf("xtalk: %d windows for %d aggressors", len(windows), nAgg)
	}
	for i, w := range windows {
		if w.Hi < w.Lo || w.Lo < 0 {
			return nil, fmt.Errorf("xtalk: bad window %d: [%g, %g]", i, w.Lo, w.Hi)
		}
	}
	if gridPts < 2 {
		gridPts = 5
	}
	if passes < 1 {
		passes = 2
	}
	res := &AlignmentResult{Times: make([]float64, nAgg)}
	for i, w := range windows {
		res.Times[i] = (w.Lo + w.Hi) / 2
	}
	best, err := noiseAt(spec, res.Times)
	if err != nil {
		return nil, err
	}
	res.Evals++
	res.Noise = best
	for p := 0; p < passes; p++ {
		improved := false
		for a := 0; a < nAgg; a++ {
			w := windows[a]
			for g := 0; g < gridPts; g++ {
				t := w.Lo
				if gridPts > 1 {
					t = w.Lo + (w.Hi-w.Lo)*float64(g)/float64(gridPts-1)
				}
				if t == res.Times[a] {
					continue
				}
				cand := append([]float64(nil), res.Times...)
				cand[a] = t
				noise, err := noiseAt(spec, cand)
				if err != nil {
					return nil, err
				}
				res.Evals++
				if noise > res.Noise {
					res.Noise = noise
					res.Times = cand
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return res, nil
}

// extractAll is a tiny indirection so tests can count extraction work.
var extractAll = defaultExtract
