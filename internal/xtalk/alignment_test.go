package xtalk

import (
	"testing"
)

func TestWorstAlignmentBeatsMidpoint(t *testing.T) {
	spec := fastSpec()
	windows := []Window{
		{Lo: 1e-10, Hi: 4e-10},
		{Lo: 1e-10, Hi: 4e-10},
	}
	mid := []float64{2.5e-10, 2.5e-10}
	base, err := noiseAt(spec, mid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorstAlignment(spec, windows, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Noise < base-1e-12 {
		t.Errorf("search (%g) worse than its own starting point (%g)", res.Noise, base)
	}
	if res.Evals < 3 {
		t.Errorf("suspiciously few evaluations: %d", res.Evals)
	}
	// Times must respect the windows.
	for i, tm := range res.Times {
		if tm < windows[i].Lo-1e-15 || tm > windows[i].Hi+1e-15 {
			t.Errorf("aggressor %d time %g outside window %+v", i, tm, windows[i])
		}
	}
}

func TestWorstAlignmentOverlappingWindowsAlign(t *testing.T) {
	// With fully overlapping windows the worst case is (near-)
	// simultaneous switching: the found alignment must be at least as
	// bad as any single-aggressor run.
	spec := fastSpec()
	w := Window{Lo: 2e-10, Hi: 2e-10} // degenerate: forced simultaneous
	forced, err := WorstAlignment(spec, []Window{w, w}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := noiseAt(spec, []float64{2e-10, 10e-9}) // second far away
	if err != nil {
		t.Fatal(err)
	}
	if forced.Noise <= solo {
		t.Errorf("simultaneous aggressors (%g) not worse than staggered-away (%g)",
			forced.Noise, solo)
	}
}

func TestWorstAlignmentValidation(t *testing.T) {
	spec := fastSpec()
	if _, err := WorstAlignment(spec, []Window{{0, 1e-10}}, 3, 1); err == nil {
		t.Errorf("window count mismatch accepted")
	}
	if _, err := WorstAlignment(spec, []Window{{2e-10, 1e-10}, {0, 1e-10}}, 3, 1); err == nil {
		t.Errorf("inverted window accepted")
	}
}
