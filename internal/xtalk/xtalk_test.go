package xtalk

import (
	"testing"
)

func fastSpec() BusSpec {
	s := DefaultBusSpec()
	s.NWires = 3
	s.Sections = 3
	s.Length = 1.5e-3
	return s
}

func TestAnalyzeBasicPhysics(t *testing.T) {
	r, err := Analyze(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakNoise <= 0 {
		t.Errorf("no coupled noise at minimum spacing")
	}
	if r.PeakNoise > 1.8 {
		t.Errorf("noise %g above the rail — unphysical", r.PeakNoise)
	}
	// Some aggressor pattern must move the victim's delay.
	if r.DeltaWorst() <= 0 {
		t.Errorf("no delay sensitivity to aggressor patterns")
	}
	if r.PushOut < 0 {
		t.Errorf("negative push-out")
	}
	if r.Mutuals == 0 {
		t.Errorf("no mutual inductances in the coupled model")
	}
}

func TestCouplingRegimeFlipsWorstPattern(t *testing.T) {
	// Capacitance-dominated bus (short, tightly spaced, resistive
	// drive): opposing transitions are worst — the classical Miller
	// effect. Inductance-dominated bus (long, fast drive): same-
	// direction transitions are worst — the RLC-specific reversal.
	capSpec := DefaultBusSpec()
	capSpec.NWires, capSpec.Sections = 3, 3
	capSpec.Length = 0.4e-3
	capSpec.Spacing = 0.25e-6
	capSpec.DriverR = 150
	capSpec.TRise = 120e-12
	capRes, err := Analyze(capSpec)
	if err != nil {
		t.Fatal(err)
	}
	if capRes.InductanceDominated {
		t.Errorf("short tight bus should be capacitance-dominated: opposing %g vs same %g",
			capRes.DelayOpposing, capRes.DelaySame)
	}

	indSpec := DefaultBusSpec()
	indSpec.NWires, indSpec.Sections = 3, 3
	indSpec.Length = 2e-3
	indSpec.Spacing = 2e-6
	indSpec.DriverR = 15
	indSpec.TRise = 40e-12
	indRes, err := Analyze(indSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !indRes.InductanceDominated {
		t.Errorf("long fast bus should be inductance-dominated: opposing %g vs same %g",
			indRes.DelayOpposing, indRes.DelaySame)
	}
}

func TestNoiseDecreasesWithSpacing(t *testing.T) {
	spec := fastSpec()
	rs, err := SpacingSweep(spec, []float64{0.5e-6, 1.5e-6, 4e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].PeakNoise >= rs[i-1].PeakNoise {
			t.Errorf("noise did not fall with spacing: %g -> %g",
				rs[i-1].PeakNoise, rs[i].PeakNoise)
		}
	}
}

func TestShieldsReduceNoise(t *testing.T) {
	spec := fastSpec()
	bare, err := Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shields = true
	shielded, err := Analyze(spec)
	if err != nil {
		t.Fatal(err)
	}
	if shielded.PeakNoise >= bare.PeakNoise {
		t.Errorf("shields did not reduce noise: %g vs %g",
			shielded.PeakNoise, bare.PeakNoise)
	}
	if shielded.DeltaWorst() >= bare.DeltaWorst() {
		t.Errorf("shields did not shrink the delay uncertainty: %g vs %g",
			shielded.DeltaWorst(), bare.DeltaWorst())
	}
}

func TestSpecValidation(t *testing.T) {
	s := fastSpec()
	s.NWires = 4 // even
	if _, err := Analyze(s); err == nil {
		t.Errorf("even wire count accepted")
	}
	s.NWires = 1
	if _, err := Analyze(s); err == nil {
		t.Errorf("single wire accepted")
	}
}
