// Package xtalk analyzes capacitive + inductive crosstalk on parallel
// buses — the "aggravation of signal crosstalk" the paper's
// introduction lists among the inductance effects, and the noise that
// §7's shielding/ordering techniques exist to control.
//
// A bus is generated as geometry, extracted with the full PEEC flow
// (coupling capacitance between adjacent lines, mutual inductance
// between all parallel segments) and simulated in three stimulus
// configurations: quiet victim under switching aggressors (glitch
// noise), lone victim switching (nominal delay), and victim switching
// against opposing aggressors (worst-case delay push-out from the
// Miller effect plus inductive coupling).
package xtalk

import (
	"fmt"

	"inductance101/internal/circuit"
	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/grid"
	"inductance101/internal/sim"
)

// BusSpec describes the coupled bus under analysis.
type BusSpec struct {
	// NWires parallel wires; the victim is the centre one.
	NWires int
	Length float64
	Width  float64
	// Spacing is the edge-to-edge gap between adjacent wires.
	Spacing float64
	// Shields inserts grounded shield wires between every pair.
	Shields bool
	// Sections splits each wire for distributed accuracy (default 4).
	Sections int

	// Drive and load.
	Vdd     float64
	TRise   float64
	DriverR float64
	LoadC   float64
}

// DefaultBusSpec is a five-wire global bus at minimum spacing.
func DefaultBusSpec() BusSpec {
	return BusSpec{
		NWires: 5, Length: 2e-3, Width: 1e-6, Spacing: 1e-6,
		Sections: 4,
		Vdd:      1.8, TRise: 60e-12, DriverR: 40, LoadC: 40e-15,
	}
}

// Result carries the crosstalk metrics.
//
// Which aggressor pattern is worst depends on the coupling regime — the
// central insight of RLC (as opposed to RC) crosstalk analysis: in a
// capacitance-dominated bus, opposing transitions are worst (Miller
// effect doubles the coupling charge); in an inductance-dominated bus,
// same-direction transitions are worst (aiding return currents raise
// the effective loop inductance). Both delays are reported.
type Result struct {
	// PeakNoise is the worst glitch on the quiet victim (V).
	PeakNoise float64
	// DelayNominal is the victim's 50% delay switching alone.
	DelayNominal float64
	// DelayOpposing is the delay with all aggressors switching against
	// the victim; DelaySame with all aggressors switching along.
	DelayOpposing float64
	DelaySame     float64
	// PushOut is the worst-pattern delay increase over nominal
	// (non-negative; zero when every pattern helps).
	PushOut float64
	// InductanceDominated reports which pattern was worse.
	InductanceDominated bool
	// Elements counts the stamped coupled netlist size.
	Elements circuit.Stats
	Mutuals  int
}

// DeltaWorst is the largest absolute delay deviation any aggressor
// pattern causes — the timing-window uncertainty crosstalk induces.
func (r *Result) DeltaWorst() float64 {
	d1 := abs(r.DelayOpposing - r.DelayNominal)
	d2 := abs(r.DelaySame - r.DelayNominal)
	if d1 > d2 {
		return d1
	}
	return d2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// victimIndex returns the centre wire.
func (s BusSpec) victimIndex() int { return s.NWires / 2 }

// buildLayout generates the bus geometry (with shields interleaved when
// requested) and returns the layout plus each signal wire's node chain
// endpoints.
func buildLayout(spec BusSpec) (*geom.Layout, [][2]string, error) {
	if spec.NWires < 2 || spec.NWires%2 == 0 {
		return nil, nil, fmt.Errorf("xtalk: NWires must be odd and >= 3, got %d", spec.NWires)
	}
	if spec.Sections <= 0 {
		spec.Sections = 4
	}
	lay := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	pitch := spec.Width + spec.Spacing
	if spec.Shields {
		pitch = 2 * (spec.Width + spec.Spacing) // room for a shield between
	}
	segLen := spec.Length / float64(spec.Sections)
	ends := make([][2]string, spec.NWires)
	for w := 0; w < spec.NWires; w++ {
		y := float64(w) * pitch
		prev := fmt.Sprintf("w%d_n0", w)
		ends[w][0] = prev
		for k := 0; k < spec.Sections; k++ {
			next := fmt.Sprintf("w%d_n%d", w, k+1)
			lay.AddSegment(geom.Segment{
				Layer: 0, Dir: geom.DirX, X0: float64(k) * segLen, Y0: y,
				Length: segLen, Width: spec.Width,
				Net: fmt.Sprintf("w%d", w), NodeA: prev, NodeB: next,
			})
			prev = next
		}
		ends[w][1] = prev
		if spec.Shields && w < spec.NWires-1 {
			sy := y + pitch/2
			sprev := fmt.Sprintf("sh%d_n0", w)
			for k := 0; k < spec.Sections; k++ {
				snext := fmt.Sprintf("sh%d_n%d", w, k+1)
				lay.AddSegment(geom.Segment{
					Layer: 0, Dir: geom.DirX, X0: float64(k) * segLen, Y0: sy,
					Length: segLen, Width: spec.Width,
					Net: "GND", NodeA: sprev, NodeB: snext,
				})
				sprev = snext
			}
		}
	}
	return lay, ends, nil
}

// stimulus describes what each wire does in one simulation run.
type stimulus int

const (
	quiet stimulus = iota
	rising
	falling
)

// simulateBus runs one stimulus configuration and returns the victim's
// far-end waveform with its time base.
func simulateBus(spec BusSpec, stim func(wire int) stimulus) (times, victim []float64, st circuit.Stats, mutuals int, err error) {
	lay, ends, err := buildLayout(spec)
	if err != nil {
		return nil, nil, st, 0, err
	}
	par := defaultExtract(lay)
	p, err := grid.BuildPEECNetlist(lay, par, grid.PEECOptions{Mode: grid.ModeRLC})
	if err != nil {
		return nil, nil, st, 0, err
	}
	n := p.Netlist
	st = n.Stats()
	mutuals = p.MutualCount
	// Ground the shield chains at both ends.
	if spec.Shields {
		for w := 0; w < spec.NWires-1; w++ {
			n.AddR(fmt.Sprintf("shg0_%d", w), fmt.Sprintf("sh%d_n0", w), circuit.Ground, 0.1)
			n.AddR(fmt.Sprintf("shg1_%d", w), fmt.Sprintf("sh%d_n%d", w, spec.Sections), circuit.Ground, 0.1)
		}
	}
	delay := 2 * spec.TRise
	for w := 0; w < spec.NWires; w++ {
		var wave circuit.Waveform
		switch stim(w) {
		case quiet:
			wave = circuit.DC(0)
		case rising:
			wave = circuit.Pulse{V1: 0, V2: spec.Vdd, Delay: delay, Rise: spec.TRise, Width: 1, Fall: spec.TRise}
		case falling:
			wave = circuit.Pulse{V1: spec.Vdd, V2: 0, Delay: delay, Rise: spec.TRise, Width: 1, Fall: spec.TRise}
		}
		src := fmt.Sprintf("src%d", w)
		n.AddV("v"+src, src, circuit.Ground, wave)
		n.AddR("r"+src, src, ends[w][0], spec.DriverR)
		n.AddC(fmt.Sprintf("cl%d", w), ends[w][1], circuit.Ground, spec.LoadC)
	}
	tStop := delay + 30*spec.TRise
	res, err := sim.Tran(n, sim.TranOptions{TStop: tStop, TStep: spec.TRise / 15})
	if err != nil {
		return nil, nil, st, 0, err
	}
	v, err := res.V(ends[spec.victimIndex()][1])
	if err != nil {
		return nil, nil, st, 0, err
	}
	return res.Times, v, st, mutuals, nil
}

// Analyze runs the three stimulus configurations and collects metrics.
func Analyze(spec BusSpec) (*Result, error) {
	vi := spec.victimIndex()
	// 1. Quiet victim, rising aggressors: glitch noise.
	times, v, st, mut, err := simulateBus(spec, func(w int) stimulus {
		if w == vi {
			return quiet
		}
		return rising
	})
	if err != nil {
		return nil, fmt.Errorf("xtalk: noise run: %w", err)
	}
	res := &Result{PeakNoise: sim.PeakAbs(v), Elements: st, Mutuals: mut}

	delayOf := func(stim func(int) stimulus) (float64, error) {
		times, v, _, _, err := simulateBus(spec, stim)
		if err != nil {
			return 0, err
		}
		cross, err := sim.CrossTime(times, v, spec.Vdd/2, true)
		if err != nil {
			return 0, err
		}
		return cross - (2*spec.TRise + spec.TRise/2), nil
	}
	_ = times
	if res.DelayNominal, err = delayOf(func(w int) stimulus {
		if w == vi {
			return rising
		}
		return quiet
	}); err != nil {
		return nil, fmt.Errorf("xtalk: nominal run: %w", err)
	}
	if res.DelayOpposing, err = delayOf(func(w int) stimulus {
		if w == vi {
			return rising
		}
		return falling
	}); err != nil {
		return nil, fmt.Errorf("xtalk: opposing run: %w", err)
	}
	if res.DelaySame, err = delayOf(func(int) stimulus { return rising }); err != nil {
		return nil, fmt.Errorf("xtalk: same-direction run: %w", err)
	}
	worst := res.DelayOpposing
	res.InductanceDominated = res.DelaySame > res.DelayOpposing
	if res.InductanceDominated {
		worst = res.DelaySame
	}
	res.PushOut = worst - res.DelayNominal
	if res.PushOut < 0 {
		res.PushOut = 0
	}
	return res, nil
}

// SpacingSweep analyzes the bus at each spacing, for the noise-vs-
// spacing trend (§7: "capacitive coupling can be reduced by increasing
// the spacing").
func SpacingSweep(spec BusSpec, spacings []float64) ([]*Result, error) {
	out := make([]*Result, 0, len(spacings))
	for _, sp := range spacings {
		s := spec
		s.Spacing = sp
		r, err := Analyze(s)
		if err != nil {
			return nil, fmt.Errorf("xtalk: spacing %g: %w", sp, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// defaultExtract runs the standard full extraction on a bus layout.
func defaultExtract(lay *geom.Layout) *extract.Parasitics {
	return extract.Extract(lay, extract.DefaultOptions())
}
