package sparsify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// busOverGrid builds a bus of nSig signal wires interleaved with ground
// returns, a structure where every sparsification method has work to do.
func busOverGrid(nSig int, pitch float64) (*geom.Layout, []int) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.025, HBelow: 1e-6},
	})
	var segs []int
	y := 0.0
	for i := 0; i < nSig; i++ {
		// ground - signal - ground - signal ... ground.
		segs = append(segs, l.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, Y0: y, Length: 800e-6, Width: 1.5e-6,
			Net: "GND", NodeA: nn("g", i, 0), NodeB: nn("g", i, 1)}))
		y += pitch
		segs = append(segs, l.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, Y0: y, Length: 800e-6, Width: 1.5e-6,
			Net: nn("s", i, -1), NodeA: nn("s", i, 0), NodeB: nn("s", i, 1)}))
		y += pitch
	}
	segs = append(segs, l.AddSegment(geom.Segment{
		Layer: 0, Dir: geom.DirX, Y0: y, Length: 800e-6, Width: 1.5e-6,
		Net: "GND", NodeA: "glast0", NodeB: "glast1"}))
	return l, segs
}

func nn(p string, i, k int) string {
	s := p + string(rune('0'+i))
	switch k {
	case 0:
		return s + "a"
	case 1:
		return s + "b"
	}
	return s
}

func fullL(t *testing.T) (*geom.Layout, []int, *matrix.Dense) {
	t.Helper()
	l, segs := busOverGrid(4, 3e-6)
	lp := extract.InductanceMatrix(l, segs, math.Inf(1), extract.GMDOptions{}, extract.DefaultCacheRef())
	if !matrix.IsPositiveDefinite(lp) {
		t.Fatal("reference L not PD")
	}
	return l, segs, lp
}

func TestTruncateAggressiveLosesPD(t *testing.T) {
	_, _, lp := fullL(t)
	// The paper: truncation gives no stability guarantee. With this
	// geometry a mid-range threshold destroys positive definiteness
	// while a tiny one preserves it.
	gentle := Truncate(lp, 1e-4)
	if !gentle.PositiveDefinite {
		t.Errorf("near-zero threshold should preserve PD")
	}
	if gentle.KeptFraction < 0.99 {
		t.Errorf("near-zero threshold dropped too much: %g", gentle.KeptFraction)
	}
	foundFailure := false
	for _, th := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		r := Truncate(lp, th)
		if !r.PositiveDefinite {
			foundFailure = true
			if r.MinEigen >= 0 {
				t.Errorf("failed audit must report negative eigenvalue, got %g", r.MinEigen)
			}
			break
		}
	}
	if !foundFailure {
		t.Errorf("expected some truncation threshold to break positive definiteness")
	}
}

func TestBlockDiagonalAlwaysPD(t *testing.T) {
	lay, segs, lp := fullL(t)
	for _, nSec := range []int{1, 2, 3, 5, len(segs)} {
		sec := SectionsByCrossCoordinate(lay, segs, nSec)
		r := BlockDiagonal(lp, sec)
		if !r.PositiveDefinite {
			t.Errorf("block-diagonal with %d sections lost PD", nSec)
		}
		if nSec == 1 && r.KeptFraction != 1 {
			t.Errorf("single section should keep everything")
		}
		if nSec == len(segs) && r.KeptFraction != 0 {
			t.Errorf("per-segment sections should keep nothing, kept %g", r.KeptFraction)
		}
	}
}

func TestBlockDiagonalPDProperty(t *testing.T) {
	lay, segs, lp := fullL(t)
	f := func(seed int64) bool {
		// Random section assignment must still be PD.
		rng := seed
		sec := make([]int, len(segs))
		for i := range sec {
			rng = rng*6364136223846793005 + 1442695040888963407
			sec[i] = int(uint64(rng)>>33) % 3
		}
		return BlockDiagonal(lp, sec).PositiveDefinite
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	_ = lay
}

func TestShellMethod(t *testing.T) {
	lay, segs, lp := fullL(t)
	r := Shell(lay, segs, lp, 10e-6)
	if !r.PositiveDefinite {
		t.Errorf("shell result lost PD (min eig %g)", r.MinEigen)
	}
	if r.KeptFraction >= 1 || r.KeptFraction <= 0 {
		t.Errorf("shell kept fraction %g, expected partial sparsity", r.KeptFraction)
	}
	// Shell-relative self inductance is below the partial value.
	for i := 0; i < lp.Rows(); i++ {
		if r.L.At(i, i) >= lp.At(i, i) {
			t.Errorf("shell self L[%d] not reduced", i)
		}
	}
	// Widening the shell keeps more couplings and raises values toward
	// the original.
	r2 := Shell(lay, segs, lp, 100e-6)
	if r2.KeptFraction < r.KeptFraction {
		t.Errorf("larger shell kept less: %g < %g", r2.KeptFraction, r.KeptFraction)
	}
	if r2.L.At(0, 0) <= r.L.At(0, 0) {
		t.Errorf("larger shell should give larger self inductance")
	}
}

func TestHaloMethod(t *testing.T) {
	lay, segs, lp := fullL(t)
	isRet := func(net string) bool { return net == "GND" }
	r := Halo(lay, segs, lp, isRet)
	if !r.PositiveDefinite {
		t.Errorf("halo result lost PD (min eig %g)", r.MinEigen)
	}
	if r.KeptFraction >= 1 {
		t.Errorf("halo dropped nothing")
	}
	// Two signals separated by a ground line must be decoupled:
	// signals are at rows 1, 3, 5, 7 with grounds between.
	if r.L.At(1, 3) != 0 {
		t.Errorf("halo kept coupling across a return line: %g", r.L.At(1, 3))
	}
	// A signal still couples to its adjacent grounds.
	if r.L.At(1, 0) == 0 || r.L.At(1, 2) == 0 {
		t.Errorf("halo dropped coupling to bounding returns")
	}
}

func TestKMatrixLocality(t *testing.T) {
	_, _, lp := fullL(t)
	k, err := InvertToK(lp)
	if err != nil {
		t.Fatal(err)
	}
	// K must be the inverse.
	prod := lp.Mul(k)
	n := lp.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-6 {
				t.Fatalf("L*K != I at (%d,%d): %g", i, j, prod.At(i, j))
			}
		}
	}
	// The paper's point: K has higher locality than L. Compare the
	// relative magnitude of the farthest coupling.
	farL := math.Abs(lp.At(0, n-1)) / lp.At(0, 0)
	farK := math.Abs(k.At(0, n-1)) / math.Abs(k.At(0, 0))
	if farK >= farL {
		t.Errorf("K locality not better than L: K %g vs L %g", farK, farL)
	}
}

func TestWindowedKApproximatesExactK(t *testing.T) {
	_, _, lp := fullL(t)
	exact, err := InvertToK(lp)
	if err != nil {
		t.Fatal(err)
	}
	kw, err := WindowedK(lp, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal within a few percent of the exact inverse diagonal.
	for i := 0; i < lp.Rows(); i++ {
		if math.Abs(kw.At(i, i)-exact.At(i, i))/exact.At(i, i) > 0.05 {
			t.Errorf("windowed K diagonal %d off: %g vs %g", i, kw.At(i, i), exact.At(i, i))
		}
	}
	// Full window reproduces the exact inverse.
	kFull, err := WindowedK(lp, lp.Rows())
	if err != nil {
		t.Fatal(err)
	}
	diff := kFull.Clone().AddScaled(-1, exact)
	if diff.MaxAbs() > 1e-6*exact.MaxAbs() {
		t.Errorf("full-window K differs from exact inverse by %g", diff.MaxAbs())
	}
}

func TestDensity(t *testing.T) {
	m := matrix.Identity(4)
	if Density(m, 1e-9) != 0 {
		t.Errorf("identity density should be 0")
	}
	m.Set(0, 1, 0.5)
	m.Set(1, 0, 0.5)
	if got := Density(m, 1e-9); math.Abs(got-2.0/12) > 1e-12 {
		t.Errorf("density = %g", got)
	}
}

func TestKronReduceResistorChain(t *testing.T) {
	// Conductance matrix of a 3-resistor chain a-m1-m2-b (1 ohm each),
	// reduce onto {a, b}: equivalent is a 3-ohm resistor between them.
	g := matrix.NewDenseFrom([][]float64{
		{1, -1, 0, 0},
		{-1, 2, -1, 0},
		{0, -1, 2, -1},
		{0, 0, -1, 1},
	})
	r, err := KronReduce(g, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 3
	if math.Abs(r.At(0, 0)-want) > 1e-12 || math.Abs(r.At(0, 1)+want) > 1e-12 {
		t.Errorf("Kron reduced G =\n%v", r)
	}
	// Keeping everything is the identity operation.
	all, err := KronReduce(g, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if all.Clone().AddScaled(-1, g).MaxAbs() != 0 {
		t.Errorf("KronReduce(all) changed the matrix")
	}
	// Errors.
	if _, err := KronReduce(g, []int{0, 0}); err == nil {
		t.Errorf("duplicate keep accepted")
	}
	if _, err := KronReduce(g, []int{9}); err == nil {
		t.Errorf("out-of-range keep accepted")
	}
}

func TestKronReducePreservesSolution(t *testing.T) {
	// Property: for an SPD system, the Schur complement gives the same
	// kept-node solution as solving the full system with zero injection
	// at eliminated nodes.
	f := func(seed int64) bool {
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64(int64(uint64(rng)>>11))/(1<<52) + 0.5
		}
		n := 6
		a := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g := next()
				a.Add(i, i, g)
				a.Add(j, j, g)
				a.Add(i, j, -g)
				a.Add(j, i, -g)
			}
			a.Add(i, i, 0.1) // ground leak keeps it nonsingular
		}
		keep := []int{0, 2, 4}
		red, err := KronReduce(a, keep)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		b[0], b[2] = 1, -0.5
		xFull, err := matrix.SolveDense(a, b)
		if err != nil {
			return false
		}
		bk := []float64{1, -0.5, 0}
		xRed, err := matrix.SolveDense(red, bk)
		if err != nil {
			return false
		}
		for i, k := range keep {
			if math.Abs(xRed[i]-xFull[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHaloRadiiMatchBruteForce pins the indexed expanding-window
// nearest-return search against the all-pairs scan it replaced: the
// radii must be identical on regular and irregular layouts, so the
// sparsified matrix is too.
func TestHaloRadiiMatchBruteForce(t *testing.T) {
	brute := func(lay *geom.Layout, segs []int, isReturn HaloReturn) []float64 {
		n := len(segs)
		radius := make([]float64, n)
		var spanLo, spanHi float64 = math.Inf(1), math.Inf(-1)
		for _, si := range segs {
			c := lay.Segments[si].CrossCoord()
			spanLo = math.Min(spanLo, c)
			spanHi = math.Max(spanHi, c)
		}
		fallback := math.Max(spanHi-spanLo, 1e-9)
		for i := 0; i < n; i++ {
			si := &lay.Segments[segs[i]]
			c := si.CrossCoord()
			below, above := math.Inf(1), math.Inf(1)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				sj := &lay.Segments[segs[j]]
				if sj.Dir != si.Dir || !isReturn(sj.Net) {
					continue
				}
				if lay.OverlapLength(segs[i], segs[j]) <= 0 {
					continue
				}
				d := sj.CrossCoord() - c
				if d < 0 && -d < below {
					below = -d
				}
				if d > 0 && d < above {
					above = d
				}
			}
			var r float64
			switch {
			case !math.IsInf(below, 1) && !math.IsInf(above, 1):
				r = below + above
			case !math.IsInf(below, 1):
				r = 2 * below
			case !math.IsInf(above, 1):
				r = 2 * above
			default:
				r = fallback
			}
			if r <= 0 {
				r = fallback
			}
			radius[i] = r
		}
		return radius
	}
	isReturn := func(net string) bool { return net == "gnd" }

	// Regular bus with interleaved returns.
	lay, segs := busOverGrid(6, 3e-6)
	got := haloRadii(lay, segs, isReturn)
	want := brute(lay, segs, isReturn)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("bus: radius[%d] = %g, want %g", i, got[i], want[i])
		}
	}

	// Irregular layout: random staggered wires, sparse returns, some
	// segments with no return neighbour on one or both sides.
	rng := rand.New(rand.NewSource(41))
	lay2 := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 6e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.1e-6},
	})
	var segs2 []int
	for i := 0; i < 60; i++ {
		net := "sig"
		if rng.Intn(4) == 0 {
			net = "gnd"
		}
		dir := geom.DirX
		if rng.Intn(2) == 1 {
			dir = geom.DirY
		}
		segs2 = append(segs2, lay2.AddSegment(geom.Segment{
			Layer: 0, Dir: dir,
			X0: rng.Float64() * 400e-6, Y0: rng.Float64() * 400e-6,
			Length: 20e-6 + rng.Float64()*200e-6, Width: 1e-6,
			Net: net, NodeA: "a", NodeB: "b",
		}))
	}
	got = haloRadii(lay2, segs2, isReturn)
	want = brute(lay2, segs2, isReturn)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("random: radius[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
