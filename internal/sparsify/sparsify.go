// Package sparsify implements the partial-inductance matrix
// sparsification and acceleration techniques surveyed in §4 of the
// paper: naive truncation (unstable), block-diagonal sparsification,
// the shell shift-truncate method of Krauter & Pileggi (ICCAD 1995),
// the halo / return-limited method of Shepard et al. (TCAD 2000), the
// windowed K (inverse inductance) matrix of Devgan et al. (ICCAD 2000),
// and Kron (Schur-complement) reduction for hierarchical models.
//
// Every method returns a Result carrying the sparsified matrix, the
// achieved density, and a passivity audit: a partial inductance matrix
// that loses positive definiteness describes a circuit that can generate
// energy, the paper's core argument for why truncation is not viable.
package sparsify

import (
	"fmt"
	"math"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/matrix"
)

// Result is a sparsified inductance matrix plus diagnostics.
type Result struct {
	// L is the sparsified matrix (same order as the input).
	L *matrix.Dense
	// KeptFraction is the fraction of off-diagonal entries retained.
	KeptFraction float64
	// PositiveDefinite records the passivity audit (Cholesky succeeds).
	PositiveDefinite bool
	// MinEigen is an estimate of the smallest eigenvalue when the
	// audit failed (how active the sparsified system is); zero when PD.
	MinEigen float64
}

func finish(l *matrix.Dense, kept, offDiag int) *Result {
	r := &Result{L: l}
	if offDiag > 0 {
		r.KeptFraction = float64(kept) / float64(offDiag)
	} else {
		r.KeptFraction = 1
	}
	r.PositiveDefinite = matrix.IsPositiveDefinite(l)
	if !r.PositiveDefinite {
		r.MinEigen = matrix.MinEigenEstimate(l, 1e-3)
	}
	return r
}

// Truncate drops every mutual with |L_ij| < threshold*sqrt(L_ii*L_jj).
// As the paper warns, the result can lose positive definiteness — the
// audit fields report whether it did.
func Truncate(l *matrix.Dense, threshold float64) *Result {
	n := l.Rows()
	out := l.Clone()
	kept, off := 0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			off++
			lim := threshold * math.Sqrt(l.At(i, i)*l.At(j, j))
			if math.Abs(out.At(i, j)) < lim {
				out.Set(i, j, 0)
			} else {
				kept++
			}
		}
	}
	return finish(out, kept, off)
}

// BlockDiagonal keeps mutuals only inside sections: section[i] gives the
// section id of row i. Because each retained block is a principal
// submatrix of the (positive definite) original, the result is always
// positive definite — the guarantee the paper relies on.
func BlockDiagonal(l *matrix.Dense, section []int) *Result {
	n := l.Rows()
	if len(section) != n {
		panic(fmt.Sprintf("sparsify: section list length %d, matrix %d", len(section), n))
	}
	out := l.Clone()
	kept, off := 0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			off++
			if section[i] != section[j] {
				out.Set(i, j, 0)
			} else if out.At(i, j) != 0 {
				kept++
			}
		}
	}
	return finish(out, kept, off)
}

// SectionsByCrossCoordinate partitions segments into nSections vertical
// slabs by their cross-axis coordinate — the paper's topology-based
// sectioning, with the signal bus of interest placed mid-section by
// choosing boundaries between grid lines.
func SectionsByCrossCoordinate(l *geom.Layout, segs []int, nSections int) []int {
	if nSections < 1 {
		nSections = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, si := range segs {
		c := l.Segments[si].CrossCoord()
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	out := make([]int, len(segs))
	span := hi - lo
	if span <= 0 {
		return out
	}
	for i, si := range segs {
		c := l.Segments[si].CrossCoord()
		s := int(float64(nSections) * (c - lo) / span)
		if s >= nSections {
			s = nSections - 1
		}
		out[i] = s
	}
	return out
}

// Shell applies the shift-truncate method: each pairwise mutual is
// replaced by the mutual relative to a distributed return shell at
// radius r0 — L'_ij = L_ij - M(lengths, offset, r0) — and pairs beyond
// r0 are dropped entirely. Self terms shift the same way, so every
// retained value is a "loop inductance with return at r0", which decays
// to zero at the shell and keeps the matrix (numerically) passive.
func Shell(lay *geom.Layout, segs []int, lp *matrix.Dense, r0 float64) *Result {
	n := lp.Rows()
	if len(segs) != n {
		panic("sparsify: segs/matrix size mismatch")
	}
	out := matrix.NewDense(n, n)
	kept, off := 0, 0
	for i := 0; i < n; i++ {
		si := &lay.Segments[segs[i]]
		selfShift := extract.MutualFilaments(si.Length, si.Length, 0, r0)
		d := lp.At(i, i) - selfShift
		if d <= 0 {
			// Shell tighter than the conductor itself; keep a floor.
			d = lp.At(i, i) * 1e-6
		}
		out.Set(i, i, d)
		for j := i + 1; j < n; j++ {
			off += 2
			pg, ok := lay.Parallel(segs[i], segs[j])
			if !ok || pg.D >= r0 || lp.At(i, j) == 0 {
				continue
			}
			shift := extract.MutualFilaments(pg.La, pg.Lb, pg.S, r0)
			v := lp.At(i, j) - shift
			if v <= 0 {
				continue
			}
			out.Set(i, j, v)
			out.Set(j, i, v)
			kept += 2
		}
	}
	return finish(out, kept, off)
}

// HaloReturn classifies which nets act as current returns (power/ground)
// for the halo method.
type HaloReturn func(net string) bool

// Halo applies the return-limited rule of Shepard et al.: a signal
// segment's current is assumed to return within the halo bounded by the
// nearest same-direction power/ground lines on either side. Every
// inductance is re-expressed relative to a return at the segment's halo
// radius (the shift-truncate construction, applied with a per-segment,
// geometry-derived radius instead of a global shell): couplings beyond
// the halo vanish, retained couplings decay to zero at the halo edge,
// and the result stays passive like the shell method.
func Halo(lay *geom.Layout, segs []int, lp *matrix.Dense, isReturn HaloReturn) *Result {
	n := lp.Rows()
	if len(segs) != n {
		panic("sparsify: segs/matrix size mismatch")
	}
	radius := haloRadii(lay, segs, isReturn)
	out := matrix.NewDense(n, n)
	kept, off := 0, 0
	for i := 0; i < n; i++ {
		si := &lay.Segments[segs[i]]
		selfShift := extract.MutualFilaments(si.Length, si.Length, 0, radius[i])
		d := lp.At(i, i) - selfShift
		if d <= 0 {
			d = lp.At(i, i) * 1e-6
		}
		out.Set(i, i, d)
		for j := i + 1; j < n; j++ {
			off += 2
			if lp.At(i, j) == 0 {
				continue
			}
			pg, ok := lay.Parallel(segs[i], segs[j])
			if !ok {
				continue
			}
			// Symmetric pair radius: the tighter of the two halos.
			r := math.Min(radius[i], radius[j])
			if pg.D >= r {
				continue
			}
			v := lp.At(i, j) - extract.MutualFilaments(pg.La, pg.Lb, pg.S, r)
			if v <= 0 {
				continue
			}
			out.Set(i, j, v)
			out.Set(j, i, v)
			kept += 2
		}
	}
	return finish(out, kept, off)
}

// haloRadii computes each segment's halo radius: the distance to the
// farther of the nearest bounding same-direction return lines on either
// side (so the halo encloses both returns), falling back to the
// layout's cross extent when a side has none. The nearest-return search
// runs on the uniform-grid spatial index with an expanding cross-axis
// window — O(n·k) on regular grids — replacing the former all-pairs
// scan; the radii (and therefore the sparsified matrix) are identical,
// because a return found within the current window is provably the
// global nearest on its side.
func haloRadii(lay *geom.Layout, segs []int, isReturn HaloReturn) []float64 {
	n := len(segs)
	radius := make([]float64, n)
	var spanLo, spanHi float64 = math.Inf(1), math.Inf(-1)
	for _, si := range segs {
		c := lay.Segments[si].CrossCoord()
		spanLo = math.Min(spanLo, c)
		spanHi = math.Max(spanHi, c)
	}
	fallback := math.Max(spanHi-spanLo, 1e-9)
	idx := geom.NewIndex(lay, 0)
	inSet := make(map[int]bool, n)
	for _, si := range segs {
		inSet[si] = true
	}
	for i := 0; i < n; i++ {
		c := lay.Segments[segs[i]].CrossCoord()
		below, above := math.Inf(1), math.Inf(1)
		for w := fallback / 64; ; w *= 2 {
			below, above = math.Inf(1), math.Inf(1)
			for _, cj := range idx.ParallelCandidates(segs[i], w) {
				sj := &lay.Segments[cj]
				if !inSet[cj] || !isReturn(sj.Net) {
					continue
				}
				if lay.OverlapLength(segs[i], cj) <= 0 {
					continue
				}
				d := sj.CrossCoord() - c
				if d < 0 && -d < below {
					below = -d
				}
				if d > 0 && d < above {
					above = d
				}
			}
			// A side is settled once its nearest hit lies inside the
			// scanned window (nothing closer can be outside it). Stop
			// when both are, or the window covers the whole cross span.
			if (below <= w && above <= w) || w >= fallback {
				break
			}
		}
		var r float64
		switch {
		case !math.IsInf(below, 1) && !math.IsInf(above, 1):
			r = below + above
		case !math.IsInf(below, 1):
			r = 2 * below
		case !math.IsInf(above, 1):
			r = 2 * above
		default:
			r = fallback
		}
		if r <= 0 {
			r = fallback
		}
		radius[i] = r
	}
	return radius
}

// InvertToK returns the exact K = L^-1 matrix.
func InvertToK(l *matrix.Dense) (*matrix.Dense, error) {
	ch, err := matrix.FactorCholesky(l)
	if err != nil {
		return nil, fmt.Errorf("sparsify: L not SPD, cannot form K: %w", err)
	}
	k, err := ch.SolveMat(matrix.Identity(l.Rows()))
	if err != nil {
		return nil, err
	}
	return k.Symmetrize(), nil
}

// WindowedK builds a sparse approximation of K = L^-1 by the locality
// argument of Devgan et al.: for each row i, invert only the local
// window of the w strongest-coupled neighbours and keep row i of that
// small inverse. K inherits the capacitance-like locality that makes it
// (unlike L itself) safe to sparsify.
func WindowedK(l *matrix.Dense, window int) (*matrix.Dense, error) {
	n := l.Rows()
	if window < 1 {
		window = 1
	}
	if window > n {
		window = n
	}
	k := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		// Select the window-1 strongest neighbours of i plus i itself.
		idx := strongestNeighbors(l, i, window)
		sub := matrix.NewDense(len(idx), len(idx))
		pos := -1
		for a, ia := range idx {
			if ia == i {
				pos = a
			}
			for b, ib := range idx {
				sub.Set(a, b, l.At(ia, ib))
			}
		}
		ch, err := matrix.FactorCholesky(sub)
		if err != nil {
			return nil, fmt.Errorf("sparsify: window around %d not SPD: %w", i, err)
		}
		e := make([]float64, len(idx))
		e[pos] = 1
		row, err := ch.Solve(e)
		if err != nil {
			return nil, err
		}
		for a, ia := range idx {
			k.Set(i, ia, row[a])
		}
	}
	return k.Symmetrize(), nil
}

// strongestNeighbors returns i plus the (window-1) indices j maximizing
// |L_ij|, sorted ascending.
func strongestNeighbors(l *matrix.Dense, i, window int) []int {
	n := l.Rows()
	type cand struct {
		j int
		v float64
	}
	cands := make([]cand, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			cands = append(cands, cand{j, math.Abs(l.At(i, j))})
		}
	}
	// Partial selection sort: window is small.
	for a := 0; a < window-1 && a < len(cands); a++ {
		best := a
		for b := a + 1; b < len(cands); b++ {
			if cands[b].v > cands[best].v {
				best = b
			}
		}
		cands[a], cands[best] = cands[best], cands[a]
	}
	idx := []int{i}
	for a := 0; a < window-1 && a < len(cands); a++ {
		idx = append(idx, cands[a].j)
	}
	// Ascending order for deterministic submatrices.
	for a := 1; a < len(idx); a++ {
		for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	return idx
}

// Density returns the fraction of off-diagonal entries of m with
// magnitude above tol relative to the largest diagonal entry.
func Density(m *matrix.Dense, tol float64) float64 {
	n := m.Rows()
	if n < 2 {
		return 0
	}
	ref := 0.0
	for i := 0; i < n; i++ {
		ref = math.Max(ref, math.Abs(m.At(i, i)))
	}
	cnt := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && math.Abs(m.At(i, j)) > tol*ref {
				cnt++
			}
		}
	}
	return float64(cnt) / float64(n*(n-1))
}
