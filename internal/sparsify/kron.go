package sparsify

import (
	"fmt"

	"inductance101/internal/matrix"
)

// KronReduce eliminates the non-kept unknowns of a symmetric system
// matrix by Schur complement: given the partition
//
//	[ A_kk  A_ke ] [x_k]   [b_k]
//	[ A_ek  A_ee ] [x_e] = [0  ]
//
// the reduced matrix is A_kk - A_ke A_ee^{-1} A_ek. This is the
// "hierarchical interconnect model" mechanism of Beattie et al. (ICCAD
// 2000): internal (local) nodes are folded away exactly, leaving a
// model over the global nodes only.
//
// keep lists the row/column indices to retain, in the order they should
// appear in the reduced matrix.
func KronReduce(a *matrix.Dense, keep []int) (*matrix.Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("sparsify: KronReduce needs square matrix")
	}
	inKeep := make(map[int]bool, len(keep))
	for _, k := range keep {
		if k < 0 || k >= n {
			return nil, fmt.Errorf("sparsify: keep index %d out of range", k)
		}
		if inKeep[k] {
			return nil, fmt.Errorf("sparsify: duplicate keep index %d", k)
		}
		inKeep[k] = true
	}
	var elim []int
	for i := 0; i < n; i++ {
		if !inKeep[i] {
			elim = append(elim, i)
		}
	}
	nk, ne := len(keep), len(elim)
	akk := matrix.NewDense(nk, nk)
	ake := matrix.NewDense(nk, ne)
	aek := matrix.NewDense(ne, nk)
	aee := matrix.NewDense(ne, ne)
	for i, ki := range keep {
		for j, kj := range keep {
			akk.Set(i, j, a.At(ki, kj))
		}
		for j, ej := range elim {
			ake.Set(i, j, a.At(ki, ej))
		}
	}
	for i, ei := range elim {
		for j, kj := range keep {
			aek.Set(i, j, a.At(ei, kj))
		}
		for j, ej := range elim {
			aee.Set(i, j, a.At(ei, ej))
		}
	}
	if ne == 0 {
		return akk, nil
	}
	lu, err := matrix.FactorLU(aee)
	if err != nil {
		return nil, fmt.Errorf("sparsify: internal block singular (floating internal nodes?): %w", err)
	}
	x, err := lu.SolveMat(aek) // x = A_ee^{-1} A_ek
	if err != nil {
		return nil, err
	}
	return akk.AddScaled(-1, ake.Mul(x)), nil
}
