package sparsify

import (
	"math"
	"math/rand"
	"testing"

	"inductance101/internal/extract"
	"inductance101/internal/matrix"
)

// toTriplet lifts a dense symmetric matrix into sparse form for the
// sparse-Cholesky passivity audit.
func toTriplet(d *matrix.Dense) *matrix.Triplet {
	t := matrix.NewTriplet(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if v := d.At(i, j); v != 0 {
				t.Add(i, j, v)
			}
		}
	}
	return t
}

// TestPropertyBlockDiagonalPassive: for random bus geometries and
// random sectionings, the block-diagonal sparsification must always
// stay positive definite (each block is a principal submatrix of a PD
// matrix). Audited by both the dense and the sparse Cholesky.
func TestPropertyBlockDiagonalPassive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		nSig := 2 + rng.Intn(4)
		pitch := (2 + 4*rng.Float64()) * 1e-6
		lay, segs := busOverGrid(nSig, pitch)
		lp := extract.InductanceMatrix(lay, segs, math.Inf(1), extract.GMDOptions{}, extract.DefaultCacheRef())
		if !matrix.IsPositiveDefinite(lp) {
			t.Fatalf("trial %d: reference L not PD", trial)
		}
		nSections := 1 + rng.Intn(4)
		sections := SectionsByCrossCoordinate(lay, segs, nSections)
		res := BlockDiagonal(lp, sections)
		if !res.PositiveDefinite {
			t.Fatalf("trial %d: block-diagonal (nSig=%d, sections=%d) lost PD, min eig %g",
				trial, nSig, nSections, res.MinEigen)
		}
		if !matrix.IsSparsePositiveDefinite(toTriplet(res.L).ToCSC()) {
			t.Fatalf("trial %d: sparse Cholesky disagrees with dense PD audit", trial)
		}
	}
}

// TestPropertyShellPassive: the shift-truncate shell method must keep
// the sparsified matrix passive across shell radii, per the Krauter &
// Pileggi guarantee the paper cites.
func TestPropertyShellPassive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 4; trial++ {
		nSig := 2 + rng.Intn(3)
		pitch := (2 + 3*rng.Float64()) * 1e-6
		lay, segs := busOverGrid(nSig, pitch)
		lp := extract.InductanceMatrix(lay, segs, math.Inf(1), extract.GMDOptions{}, extract.DefaultCacheRef())
		if !matrix.IsPositiveDefinite(lp) {
			t.Fatalf("trial %d: reference L not PD", trial)
		}
		for _, mult := range []float64{2, 5, 20} {
			res := Shell(lay, segs, lp, mult*pitch)
			if !res.PositiveDefinite {
				t.Fatalf("trial %d: shell r0=%g*pitch lost PD, min eig %g",
					trial, mult, res.MinEigen)
			}
			if !matrix.IsSparsePositiveDefinite(toTriplet(res.L).ToCSC()) {
				t.Fatalf("trial %d: sparse Cholesky disagrees with dense PD audit", trial)
			}
		}
	}
}
