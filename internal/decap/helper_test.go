package decap

import "inductance101/internal/circuit"

func newNetlist() *circuit.Netlist { return circuit.New() }
