// Package decap estimates the device decoupling capacitance of
// non-switching gates, following the statistical methodology the paper
// cites (Panda et al., ISLPED 2000): measure the small-signal rail-to-
// rail capacitance of a representative circuit block, then translate to
// other blocks in proportion to their total transistor width. During
// normal operation only 10-20% of gates switch; the parasitic
// capacitance of the remaining 80-90% acts as distributed decoupling
// between the power and ground grids.
package decap

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/sim"
)

// GateModel are the per-micron parasitics of a static (non-switching)
// gate: the series channel/diffusion resistance and the effective
// rail-to-rail capacitance.
type GateModel struct {
	// CapPerWidth is the effective decoupling capacitance per micron of
	// transistor width, F/um. 2001-era CMOS sits around 1-2 fF/um.
	CapPerWidth float64
	// ResPerWidth is the series resistance times width, ohm*um (the
	// channel resistance scales as 1/W).
	ResPerWidth float64
}

// Typical2001 returns representative values for a 0.18um-class process.
func Typical2001() GateModel {
	return GateModel{CapPerWidth: 1.5e-15, ResPerWidth: 2000}
}

// RepresentativeBlock is a circuit block whose decap was characterized
// by small-signal analysis.
type RepresentativeBlock struct {
	Name       string
	TotalWidth float64 // total transistor width, um
	MeasuredC  float64 // measured rail-to-rail decap, F
	SeriesR    float64 // effective series resistance, ohm
}

// MeasureBlock performs the "small-signal analysis of a representative
// circuit block": it builds nGates static gates (each an R-C branch
// between the rails, per gm), drives the rail pair with a 1V AC source,
// and extracts C_eff = Im(Y)/omega at the given frequency. At
// frequencies well below 1/(2 pi R C) this recovers the lumped sum; at
// higher frequencies the series resistance shields part of the
// capacitance, exactly the effect that motivates frequency-aware decap
// modeling.
func MeasureBlock(gm GateModel, nGates int, widthPerGate, freq float64) (RepresentativeBlock, error) {
	if nGates <= 0 || widthPerGate <= 0 || freq <= 0 {
		return RepresentativeBlock{}, fmt.Errorf("decap: bad block parameters")
	}
	n := circuit.New()
	vi := n.AddV("vac", "vdd", "0", circuit.DC(0))
	for i := 0; i < nGates; i++ {
		mid := fmt.Sprintf("g%d", i)
		n.AddR(fmt.Sprintf("rg%d", i), "vdd", mid, gm.ResPerWidth/widthPerGate)
		n.AddC(fmt.Sprintf("cg%d", i), mid, "0", gm.CapPerWidth*widthPerGate)
	}
	m := circuit.Build(n)
	omega := 2 * math.Pi * freq
	x, err := sim.AC(m, omega, sim.ACStimulus{VSourceAmps: map[int]complex128{vi: 1}})
	if err != nil {
		return RepresentativeBlock{}, err
	}
	// Branch current flows A->B inside the source; admittance seen by
	// the rails is -I.
	y := -x[n.BranchOfVSource(vi)]
	c := imag(y) / omega
	r := 0.0
	if real(y) > 0 {
		r = real(y) / (real(y)*real(y) + imag(y)*imag(y))
	}
	return RepresentativeBlock{
		Name:       fmt.Sprintf("rep%dx%gum", nGates, widthPerGate),
		TotalWidth: float64(nGates) * widthPerGate,
		MeasuredC:  c,
		SeriesR:    r,
	}, nil
}

// Estimator translates a representative block's measurement to other
// blocks by relative total transistor width.
type Estimator struct {
	Ref RepresentativeBlock
	// StaticFraction is the fraction of gates that do NOT switch and
	// therefore contribute decap (paper: 0.8-0.9).
	StaticFraction float64
}

// NewEstimator validates and builds an estimator.
func NewEstimator(ref RepresentativeBlock, staticFraction float64) (*Estimator, error) {
	if ref.TotalWidth <= 0 || ref.MeasuredC <= 0 {
		return nil, fmt.Errorf("decap: reference block not characterized")
	}
	if staticFraction <= 0 || staticFraction > 1 {
		return nil, fmt.Errorf("decap: static fraction %g outside (0, 1]", staticFraction)
	}
	return &Estimator{Ref: ref, StaticFraction: staticFraction}, nil
}

// BlockDecap returns the estimated decoupling capacitance and its
// effective series resistance for a block of the given total transistor
// width (um).
func (e *Estimator) BlockDecap(totalWidth float64) (c, r float64) {
	scale := totalWidth / e.Ref.TotalWidth * e.StaticFraction
	c = e.Ref.MeasuredC * scale
	if scale > 0 {
		// Series resistance scales inversely with the amount of
		// parallel static width.
		r = e.Ref.SeriesR / scale
	}
	return c, r
}

// Stamp adds the estimated block decap between the given rail nodes as
// a series R-C (the frequency-aware form), returning the internal node
// name.
func (e *Estimator) Stamp(n *circuit.Netlist, prefix, vdd, gnd string, totalWidth float64) string {
	c, r := e.BlockDecap(totalWidth)
	mid := prefix + ".dcap"
	if r <= 0 {
		r = 1e-3
	}
	n.AddR(prefix+".rd", vdd, mid, r)
	n.AddC(prefix+".cd", mid, gnd, c)
	return mid
}
