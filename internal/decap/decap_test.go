package decap

import (
	"math"
	"testing"
)

func TestMeasureBlockLowFrequency(t *testing.T) {
	gm := Typical2001()
	// At low frequency the measured C is the lumped sum.
	ref, err := MeasureBlock(gm, 100, 10, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * 10 * gm.CapPerWidth
	if math.Abs(ref.MeasuredC-want)/want > 1e-3 {
		t.Errorf("low-f block C = %g, want %g", ref.MeasuredC, want)
	}
	if ref.TotalWidth != 1000 {
		t.Errorf("TotalWidth = %g", ref.TotalWidth)
	}
}

func TestMeasureBlockHighFrequencyShielding(t *testing.T) {
	gm := Typical2001()
	lo, err := MeasureBlock(gm, 50, 10, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Around and beyond the RC corner the series resistance shields the
	// capacitance: effective C drops.
	fc := 1 / (2 * math.Pi * (gm.ResPerWidth / 10) * (gm.CapPerWidth * 10))
	hi, err := MeasureBlock(gm, 50, 10, 5*fc)
	if err != nil {
		t.Fatal(err)
	}
	if hi.MeasuredC >= lo.MeasuredC {
		t.Errorf("high-f C %g not below low-f C %g", hi.MeasuredC, lo.MeasuredC)
	}
}

func TestMeasureBlockErrors(t *testing.T) {
	gm := Typical2001()
	if _, err := MeasureBlock(gm, 0, 10, 1e6); err == nil {
		t.Errorf("zero gates accepted")
	}
	if _, err := MeasureBlock(gm, 10, -1, 1e6); err == nil {
		t.Errorf("negative width accepted")
	}
}

func TestEstimatorTranslation(t *testing.T) {
	ref, err := MeasureBlock(Typical2001(), 100, 10, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(ref, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// A block twice the width has twice the decap (times the static
	// fraction).
	c, r := e.BlockDecap(2 * ref.TotalWidth)
	wantC := ref.MeasuredC * 2 * 0.85
	if math.Abs(c-wantC)/wantC > 1e-12 {
		t.Errorf("translated C = %g, want %g", c, wantC)
	}
	if r <= 0 {
		t.Errorf("translated R = %g", r)
	}
	// Twice the block -> half the series resistance.
	c2, r2 := e.BlockDecap(4 * ref.TotalWidth)
	if c2 <= c || r2 >= r {
		t.Errorf("scaling broken: c %g->%g, r %g->%g", c, c2, r, r2)
	}
}

func TestEstimatorValidation(t *testing.T) {
	ref, _ := MeasureBlock(Typical2001(), 10, 10, 1e6)
	if _, err := NewEstimator(ref, 0); err == nil {
		t.Errorf("zero static fraction accepted")
	}
	if _, err := NewEstimator(ref, 1.5); err == nil {
		t.Errorf("static fraction > 1 accepted")
	}
	if _, err := NewEstimator(RepresentativeBlock{}, 0.8); err == nil {
		t.Errorf("uncharacterized reference accepted")
	}
}

func TestStampProducesElements(t *testing.T) {
	ref, _ := MeasureBlock(Typical2001(), 100, 10, 1e6)
	e, _ := NewEstimator(ref, 0.9)
	n := newNetlist()
	e.Stamp(n, "blk0", "vdd", "gnd", 5000)
	st := n.Stats()
	if st.NumR != 1 || st.NumC != 1 {
		t.Errorf("stamp produced %d R, %d C", st.NumR, st.NumC)
	}
}
