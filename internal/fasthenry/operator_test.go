package fasthenry

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"inductance101/internal/geom"
)

// iterDenseTol is the documented relative tolerance between the
// iterative and dense port impedances (DESIGN.md §10): ACA block
// tolerance 1e-8 and GMRES residual 1e-10 keep the port-level mismatch
// well under 1e-6.
const iterDenseTol = 1e-6

// busLayout builds an nWires parallel-wire bus (wire 0 is the signal,
// the rest are returns shorted at both ends), the structure the
// iterative path is designed for.
func busLayout(nWires int, length, width, pitch float64) (*geom.Layout, []int, Port, [][2]string) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.022, HBelow: 1e-6},
	})
	var segs []int
	names := func(i int) (string, string) {
		if i == 0 {
			return "sig0", "sig1"
		}
		return "g" + string(rune('a'+i)) + "0", "g" + string(rune('a'+i)) + "1"
	}
	for i := 0; i < nWires; i++ {
		a, b := names(i)
		segs = append(segs, l.AddSegment(geom.Segment{
			Layer: 0, Dir: geom.DirX, X0: 0, Y0: float64(i) * pitch,
			Length: length, Width: width, Net: "n", NodeA: a, NodeB: b,
		}))
	}
	var shorts [][2]string
	prevA, prevB := "", ""
	for i := 1; i < nWires; i++ {
		a, b := names(i)
		if prevA != "" {
			shorts = append(shorts, [2]string{prevA, a}, [2]string{prevB, b})
		}
		prevA, prevB = a, b
	}
	// Receiver end: signal shorted to the return bundle.
	ga, _ := names(1)
	shorts = append(shorts, [2]string{"sig1", gbOf(1)})
	return l, segs, Port{Plus: "sig0", Minus: ga}, shorts
}

func gbOf(i int) string { return "g" + string(rune('a'+i)) + "1" }

func relDiff(a, b complex128) float64 {
	d := cmplx.Abs(a - b)
	m := cmplx.Abs(b)
	if m == 0 {
		return d
	}
	return d / m
}

// TestIterativeMatchesDense verifies the tentpole acceptance criterion
// on representative structures: the matrix-free GMRES path reproduces
// the dense oracle's port impedance within the documented tolerance.
func TestIterativeMatchesDense(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*geom.Layout, []int, Port, [][2]string)
		fRef  float64
		opt   Options
	}{
		{"signal-over-return", func() (*geom.Layout, []int, Port, [][2]string) {
			return signalOverReturn(1500e-6, 6e-6, 15e-6)
		}, 10e9, Options{MaxPerSide: 4}},
		{"bus8", func() (*geom.Layout, []int, Port, [][2]string) {
			return busLayout(8, 800e-6, 2e-6, 6e-6)
		}, 20e9, Options{NW: 3, NT: 2}},
		{"bus3-fine", func() (*geom.Layout, []int, Port, [][2]string) {
			return busLayout(3, 400e-6, 4e-6, 10e-6)
		}, 20e9, Options{NW: 4, NT: 3}},
	}
	freqs := []float64{1e8, 1e9, 5e9, 2e10}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, segs, port, shorts := tc.build()
			dense, err := NewSolver(l, segs, port, shorts, tc.fRef, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			dense.SetSolveMode(ModeDense)
			iter, err := NewSolver(l, segs, port, shorts, tc.fRef, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			iter.SetSolveMode(ModeIterative)
			for _, f := range freqs {
				zd, err := dense.Impedance(f)
				if err != nil {
					t.Fatalf("dense at %g: %v", f, err)
				}
				zi, it, err := iter.impedanceIterative(f, nil, nil)
				if err != nil {
					t.Fatalf("iterative at %g: %v", f, err)
				}
				if it <= 0 {
					t.Fatalf("no GMRES iterations reported at %g Hz", f)
				}
				if d := relDiff(zi, zd); d > iterDenseTol {
					t.Errorf("%s at %g Hz: |Zi-Zd|/|Zd| = %.3g > %g (Zi=%v Zd=%v)",
						tc.name, f, d, iterDenseTol, zi, zd)
				}
			}
		})
	}
}

// TestIterativeSweepWarmStarts checks the chunked warm-started parallel
// sweep end to end: values match the dense sweep, iteration counts are
// recorded, and warm-started points converge in no more iterations than
// a cold solve needs.
func TestIterativeSweepWarmStarts(t *testing.T) {
	l, segs, port, shorts := busLayout(6, 600e-6, 2e-6, 6e-6)
	mk := func(mode SolveMode) *Solver {
		s, err := NewSolver(l, segs, port, shorts, 20e9, Options{NW: 3, NT: 2})
		if err != nil {
			t.Fatal(err)
		}
		s.SetSolveMode(mode)
		return s
	}
	freqs := LogSpace(1e8, 2e10, 9)
	densePts, err := mk(ModeDense).SweepParallel(freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	iter := mk(ModeIterative)
	iterPts, err := iter.SweepParallel(freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		if iterPts[i].Iters <= 0 {
			t.Errorf("point %d: no iteration count recorded", i)
		}
		if d := relDiff(iterPts[i].Z, densePts[i].Z); d > iterDenseTol {
			t.Errorf("point %d (%g Hz): iterative/dense mismatch %.3g", i, freqs[i], d)
		}
	}
	// A warm-started second point must not be harder than its own cold
	// solve (chunk of 9 points over 3 workers => points 1,2 warm-started).
	_, cold, err := iter.impedanceIterative(freqs[1], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iterPts[1].Iters > cold {
		t.Errorf("warm-started point used %d iterations, cold solve %d", iterPts[1].Iters, cold)
	}
}

// TestIterativeSweepSharedOperatorParallel hammers one solver from many
// goroutines (the -race target): the compressed operator and its
// sync.Once build must be safe to share across sweep workers.
func TestIterativeSweepSharedOperatorParallel(t *testing.T) {
	l, segs, port, shorts := busLayout(5, 500e-6, 2e-6, 6e-6)
	s, err := NewSolver(l, segs, port, shorts, 20e9, Options{NW: 2, NT: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSolveMode(ModeIterative)
	pts, err := s.SweepParallel(LogSpace(1e8, 1e10, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].R < pts[i-1].R*(1-1e-9) || pts[i].L > pts[i-1].L*(1+1e-9) {
			t.Errorf("non-monotone R/L at point %d: R %g->%g, L %g->%g",
				i, pts[i-1].R, pts[i].R, pts[i-1].L, pts[i].L)
		}
	}
}

// TestCompressedOperatorMatvecProperty is the satellite property test:
// on randomized buses and grids, the ACA-compressed operator's matvec
// agrees with the dense lp matvec to tolerance, and the implied L stays
// exactly symmetric.
func TestCompressedOperatorMatvecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		nW := 3 + rng.Intn(6)
		length := (300 + 400*rng.Float64()) * 1e-6
		width := (1 + 3*rng.Float64()) * 1e-6
		pitch := width * (2 + 3*rng.Float64())
		l, segs, port, shorts := busLayout(nW, length, width, pitch)
		s, err := NewSolver(l, segs, port, shorts, 20e9, Options{NW: 1 + rng.Intn(3), NT: 1 + rng.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		nf := s.NumFilaments()
		op := s.compressedOp()
		if op.Dim() != nf {
			t.Fatalf("operator dim %d, want %d", op.Dim(), nf)
		}
		lp := s.denseLP()
		x := make([]float64, nf)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, nf)
		op.ApplyTo(got, x)
		want := make([]float64, nf)
		var ref float64
		for i := 0; i < nf; i++ {
			var sum float64
			for j := 0; j < nf; j++ {
				sum += lp.At(i, j) * x[j]
			}
			want[i] = sum
			ref += sum * sum
		}
		ref = math.Sqrt(ref)
		var errNorm float64
		for i := range got {
			d := got[i] - want[i]
			errNorm += d * d
		}
		errNorm = math.Sqrt(errNorm)
		if errNorm > 1e-6*ref {
			t.Errorf("trial %d (nf=%d): matvec error %.3g of %.3g", trial, nf, errNorm, ref)
		}
		// Exact symmetry: <e_i, L e_j> must bit-equal <e_j, L e_i>.
		ei := make([]float64, nf)
		col := make([]float64, nf)
		for rep := 0; rep < 8; rep++ {
			i, j := rng.Intn(nf), rng.Intn(nf)
			ei[i] = 1
			op.ApplyTo(col, ei)
			lij := col[j]
			ei[i] = 0
			ei[j] = 1
			op.ApplyTo(col, ei)
			lji := col[i]
			ei[j] = 0
			if math.Float64bits(lij) != math.Float64bits(lji) {
				t.Fatalf("trial %d: L(%d,%d)=%v != L(%d,%d)=%v", trial, i, j, lij, j, i, lji)
			}
		}
	}
}

// TestAutoModeThreshold pins the auto-mode policy: small problems stay
// on the dense oracle (golden CLI outputs depend on it), large ones
// switch to the iterative path.
func TestAutoModeThreshold(t *testing.T) {
	l, segs, port, shorts := signalOverReturn(1000e-6, 2e-6, 6e-6)
	s, err := NewSolver(l, segs, port, shorts, 1e9, Options{NW: 1, NT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFilaments() >= AutoIterativeThreshold {
		t.Fatalf("test premise broken: %d filaments", s.NumFilaments())
	}
	if got := s.SolveModeInUse(); got != ModeDense {
		t.Errorf("auto mode on %d filaments resolved to %v, want dense", s.NumFilaments(), got)
	}
	s.SetSolveMode(ModeIterative)
	if got := s.SolveModeInUse(); got != ModeIterative {
		t.Errorf("explicit iterative resolved to %v", got)
	}
}

func TestParseSolveMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SolveMode
		ok   bool
	}{
		{"auto", ModeAuto, true},
		{"dense", ModeDense, true},
		{"iterative", ModeIterative, true},
		{"nested", ModeNested, true},
		{"gmres", ModeAuto, false},
		{"", ModeAuto, false},
	} {
		got, err := ParseSolveMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSolveMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String round-trip: %v -> %q", got, got.String())
		}
	}
}

func TestLogSpaceDegenerate(t *testing.T) {
	for _, tc := range []struct {
		f0, f1 float64
		n      int
	}{
		{1e9, 1e10, 1},
		{1e9, 1e10, 0},
		{1e9, 1e10, -3},
		{5e9, 5e9, 7},
		{5e9, 5e9, 1},
	} {
		got := LogSpace(tc.f0, tc.f1, tc.n)
		if len(got) != 1 || got[0] != tc.f0 {
			t.Errorf("LogSpace(%g, %g, %d) = %v, want [%g]", tc.f0, tc.f1, tc.n, got, tc.f0)
		}
	}
	// The regular path is unchanged: endpoints exact, strictly rising.
	got := LogSpace(1e8, 1e10, 5)
	if len(got) != 5 || got[0] != 1e8 || got[4] != 1e10 {
		t.Fatalf("LogSpace(1e8,1e10,5) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
}
