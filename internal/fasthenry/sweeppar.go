package fasthenry

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"inductance101/internal/matrix"
	"inductance101/internal/sweep"
	"inductance101/internal/units"
)

// SweepParallel runs the frequency sweep with one goroutine per CPU:
// each frequency's complex solve is independent, which makes extraction
// sweeps (the dominant cost of the loop-model flow) scale with cores.
// Results come back in ascending frequency order.
//
// The two exact solve paths schedule differently. The dense path hands
// out single frequencies with a lock-free atomic counter (every point
// costs the same LU, so fine-grained stealing balances best). The
// iterative path splits the ascending frequencies into one contiguous
// chunk per worker: within a chunk each point warm-starts GMRES from
// the previous point's branch currents, which cuts iteration counts
// sharply because R(f), L(f) vary smoothly. All workers share the one
// immutable compressed operator; per-point state (preconditioner,
// Krylov basis) is worker-local.
//
// Under Options.SweepMode adaptive (or auto at sweep.AutoThreshold
// requested points) only a few adaptively chosen anchor frequencies are
// solved — chunked and warm-started exactly as above, with a Krylov
// recycling space per worker so later anchors reuse the slow modes of
// earlier ones — and the remaining points are filled by a
// cross-validated rational interpolant (Point.Interp marks them).
func (s *Solver) SweepParallel(freqs []float64, workers int) ([]Point, error) {
	return s.SweepParallelCtx(context.Background(), freqs, workers)
}

// SweepParallelCtx is SweepParallel with cooperative cancellation: the
// sweep stops between solves once ctx is done and returns ctx's error.
func (s *Solver) SweepParallelCtx(ctx context.Context, freqs []float64, workers int) ([]Point, error) {
	fs := append([]float64(nil), freqs...)
	sort.Float64s(fs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	if s.sweepMode.Adapt(len(fs)) {
		return s.sweepAdaptive(ctx, fs, workers)
	}
	out := make([]Point, len(fs))
	errs := make([]error, len(fs))
	if s.iterativeMode() {
		s.compressedOp()
		sweepIterativeRun(ctx, fs, workers, s.nNodes-1, out, errs, func(f float64, warm [][]complex128) (complex128, int, error) {
			return s.impedanceIterative(f, warm, nil)
		})
	} else {
		s.sweepDense(ctx, fs, workers, out, errs)
	}
	return out, firstSweepError(fs, errs)
}

func firstSweepError(fs []float64, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fasthenry: at %s: %w", units.FormatSI(fs[i], "Hz"), err)
		}
	}
	return nil
}

// sweepDense claims single frequencies with an atomic counter; results
// are identical to a serial dense sweep.
func (s *Solver) sweepDense(ctx context.Context, fs []float64, workers int, out []Point, errs []error) {
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(fs) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				z, err := s.impedanceDense(fs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				r, l := RL(z, fs[i])
				out[i] = Point{Freq: fs[i], Z: z, R: r, L: l}
			}
		}()
	}
	wg.Wait()
}

// chunkRanges splits [0, n) into one contiguous range per worker (the
// iterative sweep's warm-start chunks). Workers beyond n get no range.
func chunkRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// sweepIterativeRun is the chunked warm-started executor of the
// iterative sweep: each worker owns one contiguous ascending-frequency
// chunk and a private warm-start state (nWarm slots — one previous
// solution per reduced node) that carries across the chunk. solve is
// the per-point solver — injected so tests can drive the scheduling
// with failures and order probes the real physics cannot produce on
// demand. On a failed point the worker's warm state is cleared (it may
// be mid-update) and the chunk continues cold.
func sweepIterativeRun(ctx context.Context, fs []float64, workers, nWarm int, out []Point, errs []error,
	solve func(f float64, warm [][]complex128) (complex128, int, error)) {
	var wg sync.WaitGroup
	for _, r := range chunkRanges(len(fs), workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			warm := make([][]complex128, nWarm)
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				z, iters, err := solve(fs[i], warm)
				if err != nil {
					errs[i] = err
					// Warm state may be mid-update; restart cold.
					for k := range warm {
						warm[k] = nil
					}
					continue
				}
				r, l := RL(z, fs[i])
				out[i] = Point{Freq: fs[i], Z: z, R: r, L: l, Iters: iters}
			}
		}(r[0], r[1])
	}
	wg.Wait()
}

// sweepAdaptive runs the anchor-and-fit engine: anchors are solved in
// ascending contiguous chunks across workers with warm starts, and on
// the iterative paths each worker carries a Krylov recycling space so
// later anchors deflate the slow modes of earlier ones. Interpolated
// points carry Interp=true and no iteration count.
func (s *Solver) sweepAdaptive(ctx context.Context, fs []float64, workers int) ([]Point, error) {
	iters := make([]int, len(fs))
	errs := make([]error, len(fs))
	var batch func(idxs []int) ([]complex128, error)

	if s.iterativeMode() {
		s.compressedOp()
		// Per-worker sweep state, persistent across anchor batches: the
		// refine loop mostly adds one anchor at a time, and those solves
		// keep worker 0's warm vector and recycled basis.
		type anchorState struct {
			warm [][]complex128
			rs   *matrix.RecycleSpace
		}
		states := make([]*anchorState, workers)
		for w := range states {
			st := &anchorState{warm: make([][]complex128, s.nNodes-1)}
			if s.recycleDim >= 0 {
				st.rs = &matrix.RecycleSpace{MaxDim: s.recycleDim}
			}
			states[w] = st
		}
		batch = func(idxs []int) ([]complex128, error) {
			vals := make([]complex128, len(idxs))
			var wg sync.WaitGroup
			var failed atomic.Bool
			for w, r := range chunkRanges(len(idxs), workers) {
				wg.Add(1)
				go func(st *anchorState, lo, hi int) {
					defer wg.Done()
					for k := lo; k < hi; k++ {
						i := idxs[k]
						if err := ctx.Err(); err != nil {
							errs[i] = err
							failed.Store(true)
							return
						}
						z, it, err := s.impedanceIterative(fs[i], st.warm, st.rs)
						if err != nil {
							errs[i] = err
							failed.Store(true)
							for n := range st.warm {
								st.warm[n] = nil
							}
							return
						}
						vals[k] = z
						iters[i] = it
					}
				}(states[w], r[0], r[1])
			}
			wg.Wait()
			if failed.Load() {
				return nil, firstSweepError(fs, errs)
			}
			return vals, nil
		}
	} else {
		batch = func(idxs []int) ([]complex128, error) {
			vals := make([]complex128, len(idxs))
			var next int64
			var wg sync.WaitGroup
			var failed atomic.Bool
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := int(atomic.AddInt64(&next, 1)) - 1
						if k >= len(idxs) {
							return
						}
						i := idxs[k]
						if err := ctx.Err(); err != nil {
							errs[i] = err
							failed.Store(true)
							return
						}
						z, err := s.impedanceDense(fs[i])
						if err != nil {
							errs[i] = err
							failed.Store(true)
							return
						}
						vals[k] = z
					}
				}()
			}
			wg.Wait()
			if failed.Load() {
				return nil, firstSweepError(fs, errs)
			}
			return vals, nil
		}
	}

	res, err := sweep.Adaptive(fs, sweep.Options{Tol: s.sweepTol}, batch)
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(fs))
	for i := range fs {
		z := res.Values[i]
		r, l := RL(z, fs[i])
		out[i] = Point{Freq: fs[i], Z: z, R: r, L: l, Interp: !res.Solved[i]}
		if res.Solved[i] {
			out[i].Iters = iters[i]
		}
	}
	return out, nil
}
