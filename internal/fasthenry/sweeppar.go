package fasthenry

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"inductance101/internal/units"
)

// SweepParallel runs the frequency sweep with one goroutine per CPU:
// each frequency's complex solve is independent, which makes extraction
// sweeps (the dominant cost of the loop-model flow) scale with cores.
// Results come back in ascending frequency order.
//
// The two solve paths schedule differently. The dense path hands out
// single frequencies with a lock-free atomic counter (every point costs
// the same LU, so fine-grained stealing balances best). The iterative
// path splits the ascending frequencies into one contiguous chunk per
// worker: within a chunk each point warm-starts GMRES from the previous
// point's branch currents, which cuts iteration counts sharply because
// R(f), L(f) vary smoothly. All workers share the one immutable
// compressed operator; per-point state (preconditioner, Krylov basis)
// is worker-local.
func (s *Solver) SweepParallel(freqs []float64, workers int) ([]Point, error) {
	fs := append([]float64(nil), freqs...)
	sort.Float64s(fs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	out := make([]Point, len(fs))
	errs := make([]error, len(fs))
	if s.iterativeMode() {
		s.sweepIterative(fs, workers, out, errs)
	} else {
		s.sweepDense(fs, workers, out, errs)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fasthenry: at %s: %w", units.FormatSI(fs[i], "Hz"), err)
		}
	}
	return out, nil
}

// sweepDense claims single frequencies with an atomic counter; results
// are identical to a serial dense sweep.
func (s *Solver) sweepDense(fs []float64, workers int, out []Point, errs []error) {
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(fs) {
					return
				}
				z, err := s.impedanceDense(fs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				r, l := RL(z, fs[i])
				out[i] = Point{Freq: fs[i], Z: z, R: r, L: l}
			}
		}()
	}
	wg.Wait()
}

// sweepIterative gives each worker a contiguous ascending-frequency
// chunk and a private warm-start state (one previous solution per
// reduced node) that carries across the chunk.
func (s *Solver) sweepIterative(fs []float64, workers int, out []Point, errs []error) {
	// Build the operator once up front so workers never race the
	// sync.Once body against their first solves' full cost.
	s.compressedOp()
	chunk := (len(fs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(fs) {
			hi = len(fs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			warm := make([][]complex128, s.nNodes-1)
			for i := lo; i < hi; i++ {
				z, iters, err := s.impedanceIterative(fs[i], warm)
				if err != nil {
					errs[i] = err
					// Warm state may be mid-update; restart cold.
					for k := range warm {
						warm[k] = nil
					}
					continue
				}
				r, l := RL(z, fs[i])
				out[i] = Point{Freq: fs[i], Z: z, R: r, L: l, Iters: iters}
			}
		}(lo, hi)
	}
	wg.Wait()
}
