package fasthenry

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"inductance101/internal/units"
)

// SweepParallel runs the frequency sweep with one goroutine per CPU:
// each frequency's complex solve is independent, which makes extraction
// sweeps (the dominant cost of the loop-model flow) scale with cores.
// Frequencies are claimed with a lock-free atomic counter, so workers
// never serialize on a shared mutex between solves. Results are
// identical to a serial sweep, in ascending frequency order.
func (s *Solver) SweepParallel(freqs []float64, workers int) ([]Point, error) {
	fs := append([]float64(nil), freqs...)
	sort.Float64s(fs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	out := make([]Point, len(fs))
	errs := make([]error, len(fs))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(fs) {
					return
				}
				z, err := s.Impedance(fs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				r, l := RL(z, fs[i])
				out[i] = Point{Freq: fs[i], Z: z, R: r, L: l}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fasthenry: at %s: %w", units.FormatSI(fs[i], "Hz"), err)
		}
	}
	return out, nil
}
