package fasthenry

import (
	"math"
	"math/cmplx"
	"testing"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/mesh"
)

// TestNestedMatchesDense extends the iterative==dense equivalence suite
// to the nested-basis path: GMRES through the H² operator must
// reproduce the dense oracle's port impedance within the documented
// tolerance.
func TestNestedMatchesDense(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*geom.Layout, []int, Port, [][2]string)
		fRef  float64
		opt   Options
	}{
		{"bus8", func() (*geom.Layout, []int, Port, [][2]string) {
			return busLayout(8, 800e-6, 2e-6, 6e-6)
		}, 20e9, Options{NW: 3, NT: 2}},
		{"bus64-wide", func() (*geom.Layout, []int, Port, [][2]string) {
			// Wide enough that distant segment clusters turn into real
			// basis couplings, not just near blocks.
			return busLayout(64, 500e-6, 1e-6, 2.5e-6)
		}, 20e9, Options{NW: 2, NT: 1}},
	}
	freqs := []float64{1e8, 1e9, 5e9, 2e10}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, segs, port, shorts := tc.build()
			optDense := tc.opt
			optDense.Mode = ModeDense
			dense, err := NewSolver(l, segs, port, shorts, tc.fRef, optDense)
			if err != nil {
				t.Fatal(err)
			}
			optNested := tc.opt
			optNested.Mode = ModeNested
			nested, err := NewSolver(l, segs, port, shorts, tc.fRef, optNested)
			if err != nil {
				t.Fatal(err)
			}
			if !nested.OperatorStats().Nested {
				t.Fatal("nested mode built a non-nested operator")
			}
			for _, f := range freqs {
				zd, err := dense.Impedance(f)
				if err != nil {
					t.Fatalf("dense at %g: %v", f, err)
				}
				zn, it, err := nested.impedanceIterative(f, nil, nil)
				if err != nil {
					t.Fatalf("nested at %g: %v", f, err)
				}
				if it <= 0 {
					t.Fatalf("no GMRES iterations reported at %g Hz", f)
				}
				if d := relDiff(zn, zd); d > iterDenseTol {
					t.Errorf("%s at %g Hz: |Zn-Zd|/|Zd| = %.3g > %g (Zn=%v Zd=%v)",
						tc.name, f, d, iterDenseTol, zn, zd)
				}
			}
		})
	}
}

// TestNestedSweepMatchesDense runs the chunked warm-started parallel
// sweep through the nested operator and checks it against the dense
// sweep point by point.
func TestNestedSweepMatchesDense(t *testing.T) {
	l, segs, port, shorts := busLayout(6, 600e-6, 2e-6, 6e-6)
	mk := func(mode SolveMode) *Solver {
		s, err := NewSolver(l, segs, port, shorts, 20e9,
			Options{NW: 3, NT: 2, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	freqs := LogSpace(1e8, 2e10, 9)
	densePts, err := mk(ModeDense).SweepParallel(freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	nestedPts, err := mk(ModeNested).SweepParallel(freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		if nestedPts[i].Iters <= 0 {
			t.Errorf("point %d: no iteration count recorded", i)
		}
		if d := relDiff(nestedPts[i].Z, densePts[i].Z); d > iterDenseTol {
			t.Errorf("point %d (%g Hz): nested/dense mismatch %.3g", i, freqs[i], d)
		}
	}
}

// TestSAIMatchesDense: the sparse-approximate-inverse preconditioner
// must change only the iteration path, never the answer, on both
// compressed operators.
func TestSAIMatchesDense(t *testing.T) {
	l, segs, port, shorts := busLayout(8, 800e-6, 2e-6, 6e-6)
	opt := Options{NW: 3, NT: 2, Mode: ModeDense}
	dense, err := NewSolver(l, segs, port, shorts, 20e9, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []SolveMode{ModeIterative, ModeNested} {
		optSAI := Options{NW: 3, NT: 2, Mode: mode, Precond: PrecondSAI}
		sai, err := NewSolver(l, segs, port, shorts, 20e9, optSAI)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []float64{1e9, 2e10} {
			zd, err := dense.Impedance(f)
			if err != nil {
				t.Fatal(err)
			}
			zs, it, err := sai.impedanceIterative(f, nil, nil)
			if err != nil {
				t.Fatalf("%v+sai at %g: %v", mode, f, err)
			}
			if it <= 0 {
				t.Fatalf("%v+sai at %g: no iterations", mode, f)
			}
			if d := relDiff(zs, zd); d > iterDenseTol {
				t.Errorf("%v+sai at %g Hz: mismatch %.3g (Zs=%v Zd=%v)", mode, f, d, zs, zd)
			}
		}
	}
}

// singularOp is a hand-built operator whose single diagonal block is
// exactly singular at any frequency — the degraded geometry the
// preconditioner must survive.
type singularOp struct {
	n int
	v []float64 // n x n, rank-deficient
}

func (o *singularOp) Dim() int                     { return o.n }
func (o *singularOp) Stats() extract.CompressStats { return extract.CompressStats{N: o.n} }
func (o *singularOp) Diag(i int) float64           { return o.v[i*o.n+i] }
func (o *singularOp) DiagBlocks() []extract.DiagBlock {
	idx := make([]int, o.n)
	for i := range idx {
		idx[i] = i
	}
	return []extract.DiagBlock{{Idx: idx, V: o.v}}
}
func (o *singularOp) ApplyTo(dst, x []float64) {
	for i := 0; i < o.n; i++ {
		s := 0.0
		for j := 0; j < o.n; j++ {
			s += o.v[i*o.n+j] * x[j]
		}
		dst[i] = s
	}
}
func (o *singularOp) ApplyCTo(dst, x []complex128) {
	for i := 0; i < o.n; i++ {
		var s complex128
		for j := 0; j < o.n; j++ {
			s += complex(o.v[i*o.n+j], 0) * x[j]
		}
		dst[i] = s
	}
}
func (o *singularOp) ApplyNearCTo(dst, x []complex128) {
	for i := range dst {
		dst[i] = 0
	}
}
func (o *singularOp) EachUpper(fn func(i, j int, v float64)) {
	for i := 0; i < o.n; i++ {
		for j := i + 1; j < o.n; j++ {
			fn(i, j, o.v[i*o.n+j])
		}
	}
}

// TestSingularPrecondBlockFallback: a cluster block that refuses to
// LU-factor must degrade the preconditioner to its diagonal inverse —
// finite output, no error, no NaN in the sweep — rather than failing
// the solve.
func TestSingularPrecondBlockFallback(t *testing.T) {
	// Zero resistance and a rank-1 inductance block: R + jωL is exactly
	// singular.
	op := &singularOp{n: 2, v: []float64{1, 1, 1, 1}}
	s := &Solver{fils: make([]mesh.Filament, 2)}
	pre := s.buildBlockPrecond(op, 2*math.Pi*1e9)
	if len(pre.blocks) != 1 {
		t.Fatalf("expected 1 block, got %d", len(pre.blocks))
	}
	if pre.blocks[0].lu != nil {
		t.Fatal("singular block factored; test premise broken")
	}
	src := []complex128{1 + 2i, -3i}
	dst := make([]complex128, 2)
	pre.apply(dst, src)
	for i, v := range dst {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatalf("fallback produced non-finite dst[%d] = %v", i, v)
		}
	}
	// The diagonal is jω·1 ≠ 0, so the fallback is a true (scaled)
	// inverse, not the identity.
	w := complex(0, 2*math.Pi*1e9)
	for i, v := range dst {
		if d := cmplx.Abs(v - src[i]/w); d > 1e-12*cmplx.Abs(src[i]/w) {
			t.Errorf("dst[%d] = %v, want %v", i, v, src[i]/w)
		}
	}
	// A fully zero block degrades to the identity and must still be
	// finite.
	opz := &singularOp{n: 2, v: []float64{0, 0, 0, 0}}
	prez := s.buildBlockPrecond(opz, 0)
	prez.apply(dst, src)
	for i, v := range dst {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatalf("zero-block fallback produced non-finite dst[%d] = %v", i, v)
		}
		if v != src[i] {
			t.Errorf("zero-block fallback dst[%d] = %v, want identity %v", i, v, src[i])
		}
	}
}

// TestAutoNestedThreshold pins the three-way auto policy: dense below
// the iterative threshold, flat ACA between the thresholds, nested
// bases beyond.
func TestAutoNestedThreshold(t *testing.T) {
	at := func(nf int) SolveMode {
		s := &Solver{fils: make([]mesh.Filament, nf)}
		return s.effectiveMode()
	}
	if got := at(AutoIterativeThreshold - 1); got != ModeDense {
		t.Errorf("auto at %d filaments = %v, want dense", AutoIterativeThreshold-1, got)
	}
	if got := at(AutoIterativeThreshold); got != ModeIterative {
		t.Errorf("auto at %d filaments = %v, want iterative", AutoIterativeThreshold, got)
	}
	if got := at(AutoNestedThreshold - 1); got != ModeIterative {
		t.Errorf("auto at %d filaments = %v, want iterative", AutoNestedThreshold-1, got)
	}
	if got := at(AutoNestedThreshold); got != ModeNested {
		t.Errorf("auto at %d filaments = %v, want nested", AutoNestedThreshold, got)
	}
}

func TestParsePrecond(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precond
		ok   bool
	}{
		{"bjacobi", PrecondBlockJacobi, true},
		{"sai", PrecondSAI, true},
		{"jacobi", PrecondBlockJacobi, false},
		{"", PrecondBlockJacobi, false},
	} {
		got, err := ParsePrecond(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePrecond(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String round-trip: %v -> %q", got, got.String())
		}
	}
}
