package fasthenry

import (
	"fmt"
	"math"

	"inductance101/internal/extract"
	"inductance101/internal/matrix"
	"inductance101/internal/mesh"
)

// Matrix-free iterative extraction path.
//
// The dense path assembles the nf x nf branch impedance matrix
// Zb = R + jω Lp and LU-factors it at every frequency point: O(nf²)
// memory and O(nf³) per point, which caps filament refinement well
// below skin-depth-accurate discretizations. The iterative path never
// forms Zb. Lp becomes a hierarchically compressed operator
// (extract.CompressedL): filaments are clustered through
// mesh.ClusterFilaments, near blocks stay exact through the kernel
// cache, and well-separated blocks are ACA low-rank factors, so one
// matvec is near-linear in nf. Each nodal solve then runs restarted
// GMRES with a block-Jacobi preconditioner built from the per-cluster
// R + jω L_self diagonal blocks, and frequency sweeps warm-start every
// point with the previous point's branch currents.

// SolveMode selects how Solver.Impedance solves the branch system.
type SolveMode int

const (
	// ModeAuto picks the dense oracle below AutoIterativeThreshold
	// filaments and the iterative path at or above it.
	ModeAuto SolveMode = iota
	// ModeDense forces the dense complex-LU oracle.
	ModeDense
	// ModeIterative forces matrix-free GMRES through the flat-ACA
	// compressed operator.
	ModeIterative
	// ModeNested forces matrix-free GMRES through the nested-basis
	// (H²) compressed operator — same solves, an operator whose build
	// and matvec stay near-linear where the flat factors flatten out.
	ModeNested
)

// AutoIterativeThreshold is the filament count at which ModeAuto
// switches from the dense oracle to the iterative path. Below it the
// dense LU is fast enough that operator construction would dominate.
const AutoIterativeThreshold = 512

// AutoNestedThreshold is the filament count at which ModeAuto switches
// from the flat-ACA operator to the nested-basis one. Between the two
// thresholds the flat build is cheaper (the nested scheme's per-node
// far-field sampling is a fixed cost); beyond it the pairwise factors
// grow superlinearly and shared bases win.
const AutoNestedThreshold = 8192

// String returns the CLI spelling of the mode.
func (m SolveMode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeIterative:
		return "iterative"
	case ModeNested:
		return "nested"
	default:
		return "auto"
	}
}

// ParseSolveMode parses the -solver CLI flag value.
func ParseSolveMode(s string) (SolveMode, error) {
	switch s {
	case "auto":
		return ModeAuto, nil
	case "dense":
		return ModeDense, nil
	case "iterative":
		return ModeIterative, nil
	case "nested":
		return ModeNested, nil
	}
	return ModeAuto, fmt.Errorf("fasthenry: unknown solve mode %q (want dense, iterative, nested or auto)", s)
}

// Precond selects the preconditioner of the iterative solve paths.
type Precond int

const (
	// PrecondBlockJacobi is the per-cluster block-Jacobi preconditioner
	// (the default): the diagonal leaf blocks of R + jωL, complex-LU
	// factored once per frequency point.
	PrecondBlockJacobi Precond = iota
	// PrecondSAI is a sparse approximate inverse over the near-field
	// pattern: one Neumann correction of block-Jacobi through the exact
	// off-diagonal near blocks, M⁻¹ = D⁻¹ − D⁻¹ (jω L_near) D⁻¹. It
	// costs one extra near-field matvec and block solve per
	// application and cuts GMRES iterations on tightly coupled layouts
	// where the nearest-neighbour coupling dominates.
	PrecondSAI
)

// String returns the CLI spelling of the preconditioner.
func (p Precond) String() string {
	switch p {
	case PrecondSAI:
		return "sai"
	default:
		return "bjacobi"
	}
}

// ParsePrecond parses the -precond CLI flag value.
func ParsePrecond(s string) (Precond, error) {
	switch s {
	case "bjacobi":
		return PrecondBlockJacobi, nil
	case "sai":
		return PrecondSAI, nil
	}
	return PrecondBlockJacobi, fmt.Errorf("fasthenry: unknown preconditioner %q (want bjacobi or sai)", s)
}

// SetSolveMode selects the solve path. Call before the first solve:
// the dense matrix and the compressed operator are each built once, on
// first use by their respective paths.
//
// Deprecated: set Options.Mode when constructing the solver (or build
// it through an engine.Session); mutating a shared solver races with
// concurrent sweeps.
func (s *Solver) SetSolveMode(m SolveMode) { s.mode = m }

// SolveModeInUse reports the mode Impedance will actually run
// (ModeAuto resolved against the filament count).
func (s *Solver) SolveModeInUse() SolveMode { return s.effectiveMode() }

// SetACATol sets the relative tolerance of the ACA low-rank far-field
// blocks (default 1e-8). It must be called before the first iterative
// solve; the compressed operator is built once and cached.
//
// Deprecated: set Options.ACATol when constructing the solver (or
// build it through an engine.Session).
func (s *Solver) SetACATol(tol float64) { s.acaTol = tol }

func (s *Solver) effectiveMode() SolveMode {
	switch s.mode {
	case ModeDense:
		return ModeDense
	case ModeIterative:
		return ModeIterative
	case ModeNested:
		return ModeNested
	}
	switch {
	case len(s.fils) >= AutoNestedThreshold:
		return ModeNested
	case len(s.fils) >= AutoIterativeThreshold:
		return ModeIterative
	}
	return ModeDense
}

// iterativeMode reports whether the effective mode runs matrix-free
// GMRES (through either compressed operator).
func (s *Solver) iterativeMode() bool {
	m := s.effectiveMode()
	return m == ModeIterative || m == ModeNested
}

// gmresTol is the relative residual target of each branch-system
// solve. Together with the ACA tolerance it bounds the iterative vs
// dense port-impedance mismatch (see DESIGN.md §10: documented at
// 1e-6 relative).
const gmresTol = 1e-10

// gmresRestart is the Krylov dimension per GMRES cycle.
const gmresRestart = 60

// compressedOp builds (once) the hierarchically compressed
// partial-inductance operator over the solver's filaments — flat ACA
// factors, or nested bases when the effective mode is ModeNested. Safe
// for concurrent callers; sweep workers share the cached operator. The
// construction itself fans out over Options.Workers goroutines through
// the shared kernel cache.
func (s *Solver) compressedOp() extract.LOperator {
	s.opOnce.Do(func() {
		elems := extract.FilamentElements(s.fils)
		// Cluster the filaments directly (plane grids have no segment to
		// cluster by; segment filaments land in the same leaves their
		// spatial position dictates). Leaf size targets ~48 filaments so
		// the block-Jacobi diagonal blocks stay cheap to factor while
		// capturing whole-conductor self coupling.
		roots := mesh.ClusterFilaments(s.fils, 48, s.workers)
		trees := extract.ElemTreesFromClusters(roots, func(i int) []int { return []int{i} })
		tol := s.acaTol
		if tol <= 0 {
			tol = 1e-8
		}
		if s.effectiveMode() == ModeNested {
			s.op = extract.CompressLH2(elems, trees, s.lpEntry,
				extract.H2Options{Tol: tol, Workers: s.workers})
		} else {
			s.op = extract.CompressL(elems, trees, s.lpEntry,
				extract.ACAOptions{Tol: tol, Workers: s.workers})
		}
	})
	return s.op
}

// OperatorStats returns the compression summary of the iterative
// path's operator (building it if needed).
func (s *Solver) OperatorStats() extract.CompressStats {
	return s.compressedOp().Stats()
}

// zbOp is the matrix-free branch impedance operator
// Zb x = R x + jω (Lp x) at one frequency. Each Impedance call makes
// its own (the scratch buffer is per-solve), so parallel sweep points
// share only the immutable compressed operator.
type zbOp struct {
	s       *Solver
	omega   float64
	op      extract.LOperator
	scratch []complex128
}

func (z *zbOp) Dim() int { return len(z.s.fils) }

func (z *zbOp) ApplyTo(dst, x []complex128) {
	z.op.ApplyCTo(z.scratch, x)
	jw := complex(0, z.omega)
	for i := range dst {
		dst[i] = complex(z.s.fils[i].R, 0)*x[i] + jw*z.scratch[i]
	}
}

// blockPrecond is the block-Jacobi preconditioner: the per-cluster
// diagonal blocks of Zb (per-conductor R + L_self coupling), complex-LU
// factored once per frequency point.
type blockPrecond struct {
	blocks []precondBlock
}

type precondBlock struct {
	idx []int
	lu  *matrix.CLU
	// dinv is the degraded per-entry fallback when the cluster block is
	// numerically singular and refuses to factor: the inverse of the
	// block's diagonal (identity where even that vanishes). A weaker
	// preconditioner costs GMRES iterations; a NaN-ed sweep costs the
	// run.
	dinv []complex128
}

// buildBlockPrecond factors diag(R) + jω L_cc for every diagonal leaf
// cluster c of the compressed operator. Blocks that fail to factor
// fall back to their diagonal inverse instead of failing the solve.
func (s *Solver) buildBlockPrecond(op extract.LOperator, omega float64) *blockPrecond {
	diags := op.DiagBlocks()
	p := &blockPrecond{blocks: make([]precondBlock, 0, len(diags))}
	for _, d := range diags {
		n := len(d.Idx)
		zb := matrix.NewCDense(n, n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				re := 0.0
				if a == b {
					re = s.fils[d.Idx[a]].R
				}
				zb.Set(a, b, complex(re, omega*d.V[a*n+b]))
			}
		}
		lu, err := matrix.FactorComplexLU(zb)
		if err != nil {
			dinv := make([]complex128, n)
			for a := 0; a < n; a++ {
				if v := zb.At(a, a); v != 0 {
					dinv[a] = 1 / v
				} else {
					dinv[a] = 1
				}
			}
			p.blocks = append(p.blocks, precondBlock{idx: d.Idx, dinv: dinv})
			continue
		}
		p.blocks = append(p.blocks, precondBlock{idx: d.Idx, lu: lu})
	}
	return p
}

// apply computes dst = M^{-1} src blockwise.
func (p *blockPrecond) apply(dst, src []complex128) {
	for _, b := range p.blocks {
		if b.lu == nil {
			for a, i := range b.idx {
				dst[i] = b.dinv[a] * src[i]
			}
			continue
		}
		rhs := make([]complex128, len(b.idx))
		for a, i := range b.idx {
			rhs[a] = src[i]
		}
		x, err := b.lu.Solve(rhs)
		if err != nil {
			// The factorization succeeded, so Solve cannot fail; fall
			// back to the identity on this block out of caution.
			copy(x, rhs)
		}
		for a, i := range b.idx {
			dst[i] = x[a]
		}
	}
}

// saiPrecond is the sparse-approximate-inverse preconditioner: a
// one-term Neumann correction of block-Jacobi over the operator's
// exact near-field pattern,
//
//	M⁻¹ src = D⁻¹ src − D⁻¹ (jω L_near) D⁻¹ src,
//
// with D the factored diagonal blocks and L_near the off-diagonal
// dense near blocks. It approximates the inverse over the full sparse
// near pattern (the strongest couplings GMRES otherwise has to iterate
// away) at one extra near-field matvec and block solve per
// application.
type saiPrecond struct {
	bj     *blockPrecond
	op     extract.LOperator
	omega  float64
	t1, t2 []complex128
}

func (p *saiPrecond) apply(dst, src []complex128) {
	p.bj.apply(p.t1, src)
	p.op.ApplyNearCTo(p.t2, p.t1)
	jw := complex(0, p.omega)
	for i := range p.t2 {
		p.t2[i] *= jw
	}
	p.bj.apply(dst, p.t2)
	for i := range dst {
		dst[i] = p.t1[i] - dst[i]
	}
}

// precondApply builds the configured preconditioner for one frequency
// point and returns its application closure.
func (s *Solver) precondApply(op extract.LOperator, omega float64) func(dst, src []complex128) {
	bj := s.buildBlockPrecond(op, omega)
	if s.precond != PrecondSAI {
		return bj.apply
	}
	nf := len(s.fils)
	sp := &saiPrecond{
		bj: bj, op: op, omega: omega,
		t1: make([]complex128, nf), t2: make([]complex128, nf),
	}
	return sp.apply
}

// impedanceIterative solves the port impedance at frequency f with
// restarted, right-preconditioned GMRES through the compressed
// operator. warm, when non-nil, holds one previous branch-current
// solution per reduced node (a frequency sweep's warm starts); entries
// are updated in place. rs, when non-nil, is a Krylov recycling space
// carried across an adaptive sweep's anchor solves: it is invalidated
// once for this frequency's operator and then shared by all the nodal
// solves, which re-project it exactly once. It returns the impedance
// and the total GMRES iterations across the nodal solves.
func (s *Solver) impedanceIterative(f float64, warm [][]complex128, rs *matrix.RecycleSpace) (complex128, int, error) {
	op := s.compressedOp()
	omega := 2 * math.Pi * f
	pre := s.precondApply(op, omega)
	nf := len(s.fils)
	zop := &zbOp{s: s, omega: omega, op: op, scratch: make([]complex128, nf)}
	nn := s.nNodes - 1
	y := matrix.NewCDense(nn, nn)
	col := make([]complex128, nf)
	iters := 0
	rs.Invalidate()
	for k := 0; k < nn; k++ {
		s.incidenceColumn(col, k)
		opt := matrix.GMRESOptions{
			Restart: gmresRestart,
			Tol:     gmresTol,
			Precond: pre,
		}
		if warm != nil && warm[k] != nil {
			opt.X0 = warm[k]
		}
		w, res, err := matrix.GMRESRecycled(zop, col, opt, rs)
		if err != nil {
			return 0, iters, fmt.Errorf("fasthenry: GMRES at %g Hz: %w", f, err)
		}
		iters += res.Iters
		if !res.Converged {
			return 0, iters, fmt.Errorf(
				"fasthenry: GMRES stalled at %g Hz (residual %.2e after %d iterations); use the dense solve mode",
				f, res.Residual, res.Iters)
		}
		if warm != nil {
			warm[k] = w
		}
		s.scatterAdmittance(y, k, w)
	}
	z, err := s.portSolve(y)
	return z, iters, err
}
