package fasthenry

import (
	"math"
	"testing"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/grid"
)

// microstripOverPlane builds a microstrip-over-plane layout big enough
// for the compressed operators to be meaningful: a signal and its far
// return over a PlaneNW=16 plane lower to ~550 filaments, past the
// dense/iterative auto threshold.
func microstripOverPlane(t *testing.T) (*geom.Layout, []int, Port, [][2]string) {
	t.Helper()
	lay := geom.NewLayout(grid.StandardLayers())
	segs := []int{
		lay.AddSegment(geom.Segment{
			Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
			Length: 1500e-6, Width: 2e-6,
			Net: "sig", NodeA: "s0", NodeB: "s1",
		}),
		lay.AddSegment(geom.Segment{
			Layer: 1, Dir: geom.DirX, X0: 0, Y0: 80e-6,
			Length: 1500e-6, Width: 2e-6,
			Net: "ret", NodeA: "r0", NodeB: "r1",
		}),
	}
	lay.AddPlane(geom.Plane{
		Layer: 0, X0: 0, Y0: -24e-6, X1: 1500e-6, Y1: 24e-6,
		Net: "ret", NodeLeft: "p0", NodeRight: "p1",
	})
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	return lay, segs, Port{Plus: "s0", Minus: "r0"},
		[][2]string{{"s1", "r1"}, {"p1", "s1"}, {"p0", "r0"}}
}

// TestPlaneThreeModeAgreement is the acceptance gate of the shared
// lowering stage: all three solve paths — dense LU, flat-ACA GMRES and
// the nested-basis operator — consume the same mesh filaments for a
// microstrip over a conductor plane and must agree pairwise to 1e-6
// relative on the port impedance.
func TestPlaneThreeModeAgreement(t *testing.T) {
	lay, segs, port, shorts := microstripOverPlane(t)
	const f = 1e9
	modes := []struct {
		name string
		mode SolveMode
	}{
		{"dense", ModeDense},
		{"iterative", ModeIterative},
		{"nested", ModeNested},
	}
	z := make([]complex128, len(modes))
	for i, m := range modes {
		s, err := NewSolver(lay, segs, port, shorts, f, Options{
			MaxPerSide: 2, PlaneNW: 16, Mode: m.mode,
			Cache: extract.PrivateCache(), Workers: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if i == 0 && s.NumFilaments() < 512 {
			t.Fatalf("only %d filaments; the structure no longer exercises the compressed paths", s.NumFilaments())
		}
		zi, err := s.Impedance(f)
		if err != nil {
			t.Fatalf("%s impedance: %v", m.name, err)
		}
		z[i] = zi
	}
	for i := 0; i < len(modes); i++ {
		for j := i + 1; j < len(modes); j++ {
			rel := cmplxAbs(z[i]-z[j]) / cmplxAbs(z[i])
			if rel > 1e-6 {
				t.Errorf("%s vs %s: Z %v vs %v (rel %.3g > 1e-6)",
					modes[i].name, modes[j].name, z[i], z[j], rel)
			}
		}
	}
	r, l := RL(z[0], f)
	if r <= 0 || l <= 0 {
		t.Errorf("non-physical plane extraction: R=%g L=%g", r, l)
	}
}

func cmplxAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

// TestPlaneSolverDeterministic re-extracts the plane structure on the
// iterative path at different worker counts: the mesh lowering and the
// clustered operator are both deterministic, so the impedances must be
// bit-identical.
func TestPlaneSolverDeterministic(t *testing.T) {
	lay, segs, port, shorts := microstripOverPlane(t)
	const f = 2e9
	solve := func(workers int) complex128 {
		s, err := NewSolver(lay, segs, port, shorts, f, Options{
			MaxPerSide: 2, PlaneNW: 12, Mode: ModeIterative,
			Cache: extract.PrivateCache(), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		z, err := s.Impedance(f)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	want := solve(1)
	for _, w := range []int{2, 4} {
		got := solve(w)
		if math.Float64bits(real(got)) != math.Float64bits(real(want)) ||
			math.Float64bits(imag(got)) != math.Float64bits(imag(want)) {
			t.Errorf("workers=%d: Z %v differs from serial %v", w, got, want)
		}
	}
}
