package fasthenry

import "testing"

func TestSweepParallelMatchesSerial(t *testing.T) {
	l, segs, port, shorts := signalOverReturn(1500e-6, 4e-6, 10e-6)
	s, err := NewSolver(l, segs, port, shorts, 1e10, Options{MaxPerSide: 2})
	if err != nil {
		t.Fatal(err)
	}
	freqs := LogSpace(1e8, 1e10, 6)
	serial, err := s.Sweep(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := s.SweepParallel(freqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("length mismatch")
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d point %d: %+v != %+v", workers, i, par[i], serial[i])
			}
		}
	}
}
