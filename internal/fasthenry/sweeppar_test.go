package fasthenry

import (
	"context"
	"fmt"
	"math/cmplx"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/sweep"
)

func TestSweepParallelMatchesSerial(t *testing.T) {
	l, segs, port, shorts := signalOverReturn(1500e-6, 4e-6, 10e-6)
	s, err := NewSolver(l, segs, port, shorts, 1e10, Options{MaxPerSide: 2})
	if err != nil {
		t.Fatal(err)
	}
	freqs := LogSpace(1e8, 1e10, 6)
	serial, err := s.Sweep(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := s.SweepParallel(freqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("length mismatch")
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d point %d: %+v != %+v", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestChunkRanges pins the iterative sweep's scheduling contract:
// contiguous ascending chunks that cover every index exactly once, and
// worker counts clamped to the point count (and to at least one).
func TestChunkRanges(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {10, 10}, {10, 100}, {1, 8}, {7, 1}, {5, 0}, {3, -2}, {16, 4},
	} {
		rs := chunkRanges(tc.n, tc.workers)
		if tc.workers > tc.n && len(rs) != tc.n {
			t.Fatalf("n=%d workers=%d: %d chunks, want clamp to %d", tc.n, tc.workers, len(rs), tc.n)
		}
		next := 0
		for _, r := range rs {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("n=%d workers=%d: chunk %v not contiguous ascending from %d", tc.n, tc.workers, r, next)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: chunks cover %d of %d", tc.n, tc.workers, next, tc.n)
		}
	}
}

// TestSweepIterativeRunWarmStart drives the chunked executor with a
// probe solver: within one chunk every point must see the same warm
// state, in ascending frequency order, and a mid-chunk failure must be
// recorded at its own index, clear the warm state, and leave the rest
// of the chunk solving cold.
func TestSweepIterativeRunWarmStart(t *testing.T) {
	fs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out := make([]Point, len(fs))
	errs := make([]error, len(fs))

	var mu sync.Mutex
	orders := map[*[]complex128][]float64{} // warm identity -> visit order
	sweepIterativeRun(context.Background(), fs, 2, 3, out, errs,
		func(f float64, warm [][]complex128) (complex128, int, error) {
			mu.Lock()
			orders[&warm[0]] = append(orders[&warm[0]], f)
			mu.Unlock()
			if f == 3 {
				return 0, 0, fmt.Errorf("solver blew up")
			}
			if warm[1] != nil && real(warm[1][0]) >= f {
				return 0, 0, fmt.Errorf("warm state from the future at f=%g", f)
			}
			warm[1] = []complex128{complex(f, 0)}
			return complex(f, f), 7, nil
		})

	if len(orders) != 2 {
		t.Fatalf("expected 2 worker states, saw %d", len(orders))
	}
	for _, seq := range orders {
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1]+1 {
				t.Fatalf("worker visited %v: not contiguous ascending", seq)
			}
		}
	}
	for i, err := range errs {
		if fs[i] == 3 && err == nil {
			t.Fatal("mid-chunk failure not recorded")
		}
		if fs[i] != 3 {
			if err != nil {
				t.Fatalf("point %d failed: %v", i, err)
			}
			if out[i].Iters != 7 || out[i].Z != complex(fs[i], fs[i]) {
				t.Fatalf("point %d not solved: %+v", i, out[i])
			}
		}
	}
	if err := firstSweepError(fs, errs); err == nil || !strings.Contains(err.Error(), "3Hz") {
		t.Fatalf("sweep error %v does not name the failing frequency", err)
	}
}

// TestSweepIterativeRunCancel: a cancelled context stops the chunks and
// surfaces as a per-point error.
func TestSweepIterativeRunCancel(t *testing.T) {
	fs := []float64{1, 2, 3, 4}
	out := make([]Point, len(fs))
	errs := make([]error, len(fs))
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	sweepIterativeRun(ctx, fs, 1, 1, out, errs,
		func(f float64, warm [][]complex128) (complex128, int, error) {
			calls++
			cancel()
			return complex(f, 0), 1, nil
		})
	if calls != 1 {
		t.Fatalf("executor kept solving after cancel: %d calls", calls)
	}
	if errs[1] == nil || errs[1] != ctx.Err() {
		t.Fatalf("cancellation not recorded: %v", errs[1])
	}
}

// randomBus builds a randomized parallel-bus loop: one signal wire and
// 2-4 return wires at random pitches, shorted at the far end.
func randomBus(rng *rand.Rand) (*geom.Layout, []int, Port, [][2]string) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.022, HBelow: 1e-6},
	})
	length := (500 + 2000*rng.Float64()) * 1e-6
	width := (2 + 6*rng.Float64()) * 1e-6
	nRet := 2 + rng.Intn(3)
	sig := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: length, Width: width, Net: "sig", NodeA: "sig0", NodeB: "sig1"})
	segs := []int{sig}
	shorts := [][2]string{{"sig1", "r0b"}}
	y := 0.0
	for k := 0; k < nRet; k++ {
		y += (width/1e-6 + 2 + 10*rng.Float64()) * 1e-6
		side := y
		if k%2 == 1 {
			side = -y
		}
		na, nb := fmt.Sprintf("r%da", k), fmt.Sprintf("r%db", k)
		segs = append(segs, l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: side,
			Length: length, Width: width, Net: "gnd", NodeA: na, NodeB: nb}))
		if k > 0 {
			shorts = append(shorts, [2]string{"r0b", nb}, [2]string{"r0a", na})
		}
	}
	return l, segs, Port{Plus: "sig0", Minus: "r0a"}, shorts
}

// TestSweepAdaptiveMatchesExact is the wiring-level property: for
// randomized bus geometries, random log/linear ranges and every solve
// mode, the adaptive sweep agrees with the exact sweep within the sweep
// tolerance at every requested frequency, actually interpolates, and
// marks what it interpolated.
func TestSweepAdaptiveMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const tol = 1e-6
	for _, mode := range []SolveMode{ModeDense, ModeIterative, ModeNested} {
		l, segs, port, shorts := randomBus(rng)
		var freqs []float64
		n := 80 + rng.Intn(120)
		if rng.Intn(2) == 0 {
			freqs = LogSpace(1e8, 1e10, n)
		} else {
			f0 := 1e8 * (1 + 9*rng.Float64())
			f1 := f0 * (3 + 20*rng.Float64())
			freqs = make([]float64, n)
			for i := range freqs {
				freqs[i] = f0 + (f1-f0)*float64(i)/float64(n-1)
			}
		}
		mk := func(sm sweep.Mode) *Solver {
			s, err := NewSolver(l, segs, port, shorts, 1e10,
				Options{MaxPerSide: 2, Mode: mode, SweepMode: sm, SweepTol: tol})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		exact, err := mk(sweep.ModeExact).SweepParallel(freqs, 4)
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := mk(sweep.ModeAdaptive).SweepParallel(freqs, 4)
		if err != nil {
			t.Fatal(err)
		}
		interp := 0
		for i := range freqs {
			if adaptive[i].Interp {
				interp++
			}
			e := cmplx.Abs(adaptive[i].Z-exact[i].Z) / cmplx.Abs(exact[i].Z)
			if e > 10*tol {
				t.Fatalf("mode=%v point %d (f=%g): adaptive deviates %.3g (interp=%v)",
					mode, i, freqs[i], e, adaptive[i].Interp)
			}
		}
		if interp == 0 {
			t.Fatalf("mode=%v: adaptive sweep interpolated nothing over %d points", mode, n)
		}
		if interp < n/2 {
			t.Fatalf("mode=%v: only %d of %d points interpolated — no win", mode, interp, n)
		}
	}
}

// TestSweepAutoThreshold: auto mode stays exact below the threshold and
// adapts above it.
func TestSweepAutoThreshold(t *testing.T) {
	l, segs, port, shorts := signalOverReturn(1000e-6, 4e-6, 10e-6)
	s, err := NewSolver(l, segs, port, shorts, 1e10, Options{MaxPerSide: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, err := s.SweepParallel(LogSpace(1e8, 1e10, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range short {
		if p.Interp {
			t.Fatal("short auto sweep interpolated")
		}
	}
	long, err := s.SweepParallel(LogSpace(1e8, 1e10, sweep.AutoThreshold+36), 2)
	if err != nil {
		t.Fatal(err)
	}
	interp := 0
	for _, p := range long {
		if p.Interp {
			interp++
		}
	}
	if interp == 0 {
		t.Fatal("long auto sweep never interpolated")
	}
}
