// Package fasthenry is a FastHenry-style frequency-dependent inductance
// and resistance extractor (Kamon, Tsuk & White, IEEE MTT 1994).
//
// Conductor segments are discretized into parallel filaments across
// their cross-section; the dense complex branch impedance matrix
// Zb = R + jω Lp (partial inductances between every filament pair) is
// assembled and the port impedance solved by nodal analysis:
// Y = A Zb^{-1} A^T. Skin and proximity effects emerge from the current
// redistribution among filaments, exactly as in FastHenry.
//
// Substitution note (see DESIGN.md §5): FastHenry accelerates the dense
// solve with a multipole expansion; at the scales this repository
// simulates, a direct dense complex LU is exact and fast enough, so the
// multipole stage is intentionally omitted — it changes run time, never
// extracted values.
package fasthenry

import (
	"fmt"
	"math"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/matrix"
	"inductance101/internal/units"
)

// Port defines the two terminals the impedance is extracted between.
type Port struct {
	Plus, Minus string
}

// Options controls filament discretization.
type Options struct {
	// NW, NT force the per-segment filament counts across width and
	// thickness. Zero means automatic: enough filaments that each is
	// no wider than the skin depth at the extraction frequency, capped
	// by MaxPerSide.
	NW, NT int
	// MaxPerSide caps automatic discretization (default 5).
	MaxPerSide int
	// Rho is the conductor resistivity used for skin-depth sizing
	// (default copper).
	Rho float64
}

func (o Options) maxPerSide() int {
	if o.MaxPerSide <= 0 {
		return 5
	}
	return o.MaxPerSide
}

func (o Options) rho() float64 {
	if o.Rho <= 0 {
		return units.RhoCu
	}
	return o.Rho
}

// filament is one current tube of a segment.
type filament struct {
	seg    int // layout segment index
	dir    geom.Direction
	x0, y0 float64 // centre-line start (plane coordinates)
	z      float64 // centre height
	length float64
	w, t   float64
	r      float64 // series resistance
	na, nb int     // merged node ids
}

// Solver holds the discretized problem for repeated solves across a
// frequency sweep.
type Solver struct {
	layout *geom.Layout
	fils   []filament
	lp     *matrix.Dense // partial inductance over filaments
	nNodes int
	plus   int // node index of port plus (minus is the reference)
	minus  int
}

// NewSolver discretizes the given segments of the layout at a reference
// frequency fRef (which sizes the filament grid), merges the node pairs
// in shorts, and prepares the partial-inductance matrix.
func NewSolver(l *geom.Layout, segs []int, port Port, shorts [][2]string, fRef float64, opt Options) (*Solver, error) {
	// Union-find over node names for shorts.
	parent := make(map[string]string)
	var find func(string) string
	find = func(s string) string {
		p, ok := parent[s]
		if !ok || p == s {
			parent[s] = s
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, sh := range shorts {
		union(sh[0], sh[1])
	}
	// Vias short their endpoint nodes: via resistance is negligible
	// against the loop impedances of interest, and the RL solver has no
	// resistor-only branches. Vias whose nodes never appear on extracted
	// segments are harmless — their merged names are simply never used.
	for i := range l.Vias {
		v := &l.Vias[i]
		union(v.NodeLo, v.NodeHi)
	}

	nodeID := make(map[string]int)
	idOf := func(name string) int {
		r := find(name)
		if id, ok := nodeID[r]; ok {
			return id
		}
		id := len(nodeID)
		nodeID[r] = id
		return id
	}

	skin := units.SkinDepth(opt.rho(), fRef)
	var fils []filament
	for _, si := range segs {
		s := &l.Segments[si]
		ly := l.Layers[s.Layer]
		nw, nt := opt.NW, opt.NT
		if nw <= 0 {
			nw = autoDiv(s.Width, skin, opt.maxPerSide())
		}
		if nt <= 0 {
			nt = autoDiv(ly.Thickness, skin, opt.maxPerSide())
		}
		fw := s.Width / float64(nw)
		ft := ly.Thickness / float64(nt)
		// Filament resistance from the layer's sheet resistance:
		// rho = SheetRho * thickness; R = rho l / (fw ft).
		rho := ly.SheetRho * ly.Thickness
		rFil := rho * s.Length / (fw * ft)
		na, nb := idOf(s.NodeA), idOf(s.NodeB)
		if na == nb {
			return nil, fmt.Errorf("fasthenry: segment %d shorted end-to-end by shorts list", si)
		}
		zc := ly.Z + ly.Thickness/2
		for iw := 0; iw < nw; iw++ {
			off := -s.Width/2 + (float64(iw)+0.5)*fw
			for it := 0; it < nt; it++ {
				zf := zc - ly.Thickness/2 + (float64(it)+0.5)*ft
				// Each filament carries rFil; the parallel combination
				// of nw*nt filaments equals the segment resistance.
				f := filament{
					seg: si, dir: s.Dir, length: s.Length,
					w: fw, t: ft, r: rFil,
					na: na, nb: nb, z: zf,
				}
				if s.Dir == geom.DirX {
					f.x0, f.y0 = s.X0, s.Y0+off
				} else {
					f.x0, f.y0 = s.X0+off, s.Y0
				}
				fils = append(fils, f)
			}
		}
	}
	if len(fils) == 0 {
		return nil, fmt.Errorf("fasthenry: no filaments (empty segment list)")
	}

	plus, minus := idOf(port.Plus), idOf(port.Minus)
	if plus == minus {
		return nil, fmt.Errorf("fasthenry: port terminals are shorted together")
	}

	// Partial inductance matrix over filaments. A regular filament grid
	// repeats the same relative geometry constantly (every segment of a
	// bus discretizes identically), so the kernels go through extract's
	// geometry-keyed cache — values stay bit-identical, each unique
	// (la, lb, s, d) is integrated once.
	nf := len(fils)
	lp := matrix.NewDense(nf, nf)
	for i := 0; i < nf; i++ {
		fi := &fils[i]
		lp.Set(i, i, extract.SelfInductanceBarCached(fi.length, fi.w, fi.t))
		for j := i + 1; j < nf; j++ {
			fj := &fils[j]
			if fi.dir != fj.dir {
				continue
			}
			var s, d float64
			if fi.dir == geom.DirX {
				s = fj.x0 - fi.x0
				d = math.Hypot(fj.y0-fi.y0, fj.z-fi.z)
			} else {
				s = fj.y0 - fi.y0
				d = math.Hypot(fj.x0-fi.x0, fj.z-fi.z)
			}
			if d == 0 {
				// Collinear filaments (same track): regularize with the
				// mean self-GMD so the formula stays finite.
				d = extract.SelfGMDFactor * (fi.w + fi.t + fj.w + fj.t) / 2
			}
			m := extract.MutualFilamentsCached(fi.length, fj.length, s, d)
			lp.Set(i, j, m)
			lp.Set(j, i, m)
		}
	}
	return &Solver{
		layout: l, fils: fils, lp: lp,
		nNodes: len(nodeID), plus: plus, minus: minus,
	}, nil
}

func autoDiv(dim, skin float64, maxN int) int {
	if skin <= 0 || math.IsInf(skin, 1) {
		return 1
	}
	n := int(math.Ceil(dim / skin))
	if n < 1 {
		n = 1
	}
	if n > maxN {
		n = maxN
	}
	return n
}

// NumFilaments reports the discretization size.
func (s *Solver) NumFilaments() int { return len(s.fils) }

// Impedance returns the complex port impedance at frequency f (Hz).
func (s *Solver) Impedance(f float64) (complex128, error) {
	omega := 2 * math.Pi * f
	nf := len(s.fils)
	zb := matrix.NewCDense(nf, nf)
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			re := 0.0
			if i == j {
				re = s.fils[i].r
			}
			zb.Set(i, j, complex(re, omega*s.lp.At(i, j)))
		}
	}
	lu, err := matrix.FactorComplexLU(zb)
	if err != nil {
		return 0, fmt.Errorf("fasthenry: branch impedance singular: %w", err)
	}

	// Nodal admittance with the port minus node as reference:
	// Y = A Zb^{-1} A^T with A the reduced incidence matrix.
	nn := s.nNodes - 1
	nodeRow := func(n int) int {
		// Map node -> reduced index (reference removed).
		if n == s.minus {
			return -1
		}
		if n > s.minus {
			return n - 1
		}
		return n
	}
	// X[:, k] = Zb^{-1} * (A^T e_k) would need nn solves; instead solve
	// Zb^{-1} once per filament-incidence column: W = Zb^{-1} A^T is
	// nf x nn. Assemble A^T columns (sparse: each filament touches two
	// nodes), then Y = A W.
	y := matrix.NewCDense(nn, nn)
	col := make([]complex128, nf)
	for k := 0; k < nn; k++ {
		for i := range col {
			col[i] = 0
		}
		for fi := range s.fils {
			f := &s.fils[fi]
			if nodeRow(f.na) == k {
				col[fi] += 1
			}
			if nodeRow(f.nb) == k {
				col[fi] -= 1
			}
		}
		w, err := lu.Solve(col)
		if err != nil {
			return 0, err
		}
		for fi := range s.fils {
			f := &s.fils[fi]
			if ra := nodeRow(f.na); ra >= 0 {
				y.Add(ra, k, w[fi])
			}
			if rb := nodeRow(f.nb); rb >= 0 {
				y.Add(rb, k, -w[fi])
			}
		}
	}
	// Inject 1A into plus, out of reference; solve Y v = i.
	rhs := make([]complex128, nn)
	pr := nodeRow(s.plus)
	if pr < 0 {
		return 0, fmt.Errorf("fasthenry: port plus equals reference")
	}
	rhs[pr] = 1
	v, err := matrix.SolveComplex(y, rhs)
	if err != nil {
		return 0, fmt.Errorf("fasthenry: port network disconnected: %w", err)
	}
	return v[pr], nil
}

// RL decomposes an impedance into series resistance and inductance at
// frequency f: R = Re Z, L = Im Z / (2 pi f).
func RL(z complex128, f float64) (r, l float64) {
	return real(z), imag(z) / (2 * math.Pi * f)
}

// Point is one frequency sample of an extraction sweep.
type Point struct {
	Freq float64
	Z    complex128
	R    float64
	L    float64
}

// Sweep extracts the port impedance at each frequency. Points are
// independent complex solves, so the sweep fans out across workers
// (matrix.SetWorkers controls the count); results are identical to a
// serial loop, in ascending frequency order.
func (s *Solver) Sweep(freqs []float64) ([]Point, error) {
	return s.SweepParallel(freqs, matrix.Workers())
}

// LogSpace returns n logarithmically spaced frequencies in [f0, f1].
func LogSpace(f0, f1 float64, n int) []float64 {
	if n < 2 {
		return []float64{f0}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f0 * math.Pow(f1/f0, float64(i)/float64(n-1))
	}
	return out
}

// DCResistance returns the zero-frequency limit of the port resistance,
// from a purely resistive solve (useful as a sanity anchor: the
// extraction's R(f) must approach this as f -> 0).
func (s *Solver) DCResistance() (float64, error) {
	z, err := s.Impedance(1) // 1 Hz: inductive part utterly negligible
	if err != nil {
		return 0, err
	}
	return real(z), nil
}
