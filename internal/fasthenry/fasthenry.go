// Package fasthenry is a FastHenry-style frequency-dependent inductance
// and resistance extractor (Kamon, Tsuk & White, IEEE MTT 1994).
//
// Conductor segments are discretized into parallel filaments across
// their cross-section; the dense complex branch impedance matrix
// Zb = R + jω Lp (partial inductances between every filament pair) is
// assembled and the port impedance solved by nodal analysis:
// Y = A Zb^{-1} A^T. Skin and proximity effects emerge from the current
// redistribution among filaments, exactly as in FastHenry.
//
// Substitution note (see DESIGN.md §5): FastHenry accelerates the dense
// solve with a multipole expansion; at the scales this repository
// simulates, a direct dense complex LU is exact and fast enough, so the
// multipole stage is intentionally omitted — it changes run time, never
// extracted values.
package fasthenry

import (
	"fmt"
	"math"
	"sync"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/matrix"
	"inductance101/internal/sweep"
	"inductance101/internal/units"
)

// Port defines the two terminals the impedance is extracted between.
type Port struct {
	Plus, Minus string
}

// Options controls filament discretization.
type Options struct {
	// NW, NT force the per-segment filament counts across width and
	// thickness. Zero means automatic: enough filaments that each is
	// no wider than the skin depth at the extraction frequency, capped
	// by MaxPerSide.
	NW, NT int
	// MaxPerSide caps automatic discretization (default 5).
	MaxPerSide int
	// Rho is the conductor resistivity used for skin-depth sizing
	// (default copper).
	Rho float64
	// Mode selects the solve path (dense oracle, matrix-free GMRES, or
	// auto by filament count). The zero value is ModeAuto.
	Mode SolveMode
	// ACATol is the relative tolerance of the compressed operator's
	// low-rank far field on the iterative paths — the ACA factor
	// tolerance in ModeIterative, the interpolative-basis tolerance in
	// ModeNested (default 1e-8 for both).
	ACATol float64
	// Precond selects the iterative paths' preconditioner. The zero
	// value is PrecondBlockJacobi.
	Precond Precond
	// Cache names the kernel cache the solver's partial-inductance
	// entries go through. The zero value is the process-default shared
	// cache (honoring the deprecated extract.SetKernelCache switch);
	// sessions pass their own extract.PrivateCache() or extract.NoCache().
	Cache extract.CacheRef
	// Workers caps the sweep fan-out and dense-kernel goroutines.
	// 0 = process default (matrix.Workers), 1 = fully serial.
	Workers int
	// SweepMode selects exact per-point solves, the adaptive
	// anchor-and-fit engine, or auto (adaptive at sweep.AutoThreshold
	// requested points). The zero value is sweep.ModeAuto.
	SweepMode sweep.Mode
	// SweepTol is the adaptive engine's relative interpolation
	// tolerance (0 = sweep.DefaultTol).
	SweepTol float64
	// RecycleDim caps the Krylov recycling space the adaptive anchor
	// solves carry between frequencies on the iterative paths.
	// 0 = matrix.DefaultRecycleDim; negative disables recycling
	// (warm starts only).
	RecycleDim int
}

func (o Options) maxPerSide() int {
	if o.MaxPerSide <= 0 {
		return 5
	}
	return o.MaxPerSide
}

func (o Options) rho() float64 {
	if o.Rho <= 0 {
		return units.RhoCu
	}
	return o.Rho
}

// filament is one current tube of a segment.
type filament struct {
	seg    int // layout segment index
	dir    geom.Direction
	x0, y0 float64 // centre-line start (plane coordinates)
	z      float64 // centre height
	length float64
	w, t   float64
	r      float64 // series resistance
	na, nb int     // merged node ids
}

// Solver holds the discretized problem for repeated solves across a
// frequency sweep. The partial-inductance matrix is materialized
// lazily: the dense oracle path assembles the full nf x nf matrix on
// first use, the iterative path a hierarchically compressed operator —
// whichever the solve mode needs, never both by default.
type Solver struct {
	layout *geom.Layout
	fils   []filament
	nNodes int
	plus   int // node index of port plus (minus is the reference)
	minus  int

	lpOnce sync.Once
	lp     *matrix.Dense // dense partial inductance over filaments (lazy)

	mode    SolveMode
	acaTol  float64
	precond Precond
	cache   extract.CacheRef
	workers int

	sweepMode  sweep.Mode
	sweepTol   float64
	recycleDim int

	opOnce sync.Once
	op     extract.LOperator // compressed partial inductance (lazy)
}

// NewSolver discretizes the given segments of the layout at a reference
// frequency fRef (which sizes the filament grid), merges the node pairs
// in shorts, and prepares the partial-inductance matrix.
func NewSolver(l *geom.Layout, segs []int, port Port, shorts [][2]string, fRef float64, opt Options) (*Solver, error) {
	// Union-find over node names for shorts.
	parent := make(map[string]string)
	var find func(string) string
	find = func(s string) string {
		p, ok := parent[s]
		if !ok || p == s {
			parent[s] = s
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, sh := range shorts {
		union(sh[0], sh[1])
	}
	// Vias short their endpoint nodes: via resistance is negligible
	// against the loop impedances of interest, and the RL solver has no
	// resistor-only branches. Vias whose nodes never appear on extracted
	// segments are harmless — their merged names are simply never used.
	for i := range l.Vias {
		v := &l.Vias[i]
		union(v.NodeLo, v.NodeHi)
	}

	nodeID := make(map[string]int)
	idOf := func(name string) int {
		r := find(name)
		if id, ok := nodeID[r]; ok {
			return id
		}
		id := len(nodeID)
		nodeID[r] = id
		return id
	}

	skin := units.SkinDepth(opt.rho(), fRef)
	var fils []filament
	for _, si := range segs {
		s := &l.Segments[si]
		ly := l.Layers[s.Layer]
		nw, nt := opt.NW, opt.NT
		if nw <= 0 {
			nw = autoDiv(s.Width, skin, opt.maxPerSide())
		}
		if nt <= 0 {
			nt = autoDiv(ly.Thickness, skin, opt.maxPerSide())
		}
		fw := s.Width / float64(nw)
		ft := ly.Thickness / float64(nt)
		// Filament resistance from the layer's sheet resistance:
		// rho = SheetRho * thickness; R = rho l / (fw ft).
		rho := ly.SheetRho * ly.Thickness
		rFil := rho * s.Length / (fw * ft)
		na, nb := idOf(s.NodeA), idOf(s.NodeB)
		if na == nb {
			return nil, fmt.Errorf("fasthenry: segment %d shorted end-to-end by shorts list", si)
		}
		zc := ly.Z + ly.Thickness/2
		for iw := 0; iw < nw; iw++ {
			off := -s.Width/2 + (float64(iw)+0.5)*fw
			for it := 0; it < nt; it++ {
				zf := zc - ly.Thickness/2 + (float64(it)+0.5)*ft
				// Each filament carries rFil; the parallel combination
				// of nw*nt filaments equals the segment resistance.
				f := filament{
					seg: si, dir: s.Dir, length: s.Length,
					w: fw, t: ft, r: rFil,
					na: na, nb: nb, z: zf,
				}
				if s.Dir == geom.DirX {
					f.x0, f.y0 = s.X0, s.Y0+off
				} else {
					f.x0, f.y0 = s.X0+off, s.Y0
				}
				fils = append(fils, f)
			}
		}
	}
	if len(fils) == 0 {
		return nil, fmt.Errorf("fasthenry: no filaments (empty segment list)")
	}

	plus, minus := idOf(port.Plus), idOf(port.Minus)
	if plus == minus {
		return nil, fmt.Errorf("fasthenry: port terminals are shorted together")
	}

	return &Solver{
		layout: l, fils: fils,
		nNodes: len(nodeID), plus: plus, minus: minus,
		mode: opt.Mode, acaTol: opt.ACATol, precond: opt.Precond,
		cache: opt.Cache, workers: opt.Workers,
		sweepMode: opt.SweepMode, sweepTol: opt.SweepTol,
		recycleDim: opt.RecycleDim,
	}, nil
}

// lpEntry returns the partial inductance between filaments i and j
// (i <= j for canonical kernel-cache keys; callers may pass either
// order, the value is symmetric). A regular filament grid repeats the
// same relative geometry constantly (every segment of a bus discretizes
// identically), so the kernels go through extract's geometry-keyed
// cache — values stay bit-identical, each unique (la, lb, s, d) is
// integrated once per process.
func (s *Solver) lpEntry(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	c := s.cache.Cache()
	fi := &s.fils[i]
	if i == j {
		return c.SelfInductanceBar(fi.length, fi.w, fi.t)
	}
	fj := &s.fils[j]
	if fi.dir != fj.dir {
		return 0
	}
	var off, d float64
	if fi.dir == geom.DirX {
		off = fj.x0 - fi.x0
		d = math.Hypot(fj.y0-fi.y0, fj.z-fi.z)
	} else {
		off = fj.y0 - fi.y0
		d = math.Hypot(fj.x0-fi.x0, fj.z-fi.z)
	}
	if d == 0 {
		// Collinear filaments (same track): regularize with the
		// mean self-GMD so the formula stays finite.
		d = extract.SelfGMDFactor * (fi.w + fi.t + fj.w + fj.t) / 2
	}
	return c.MutualFilaments(fi.length, fj.length, off, d)
}

// denseLP materializes (once) the dense partial-inductance matrix over
// filaments — the exact oracle the dense solve path factorizes and the
// compressed operator is verified against.
func (s *Solver) denseLP() *matrix.Dense {
	s.lpOnce.Do(func() {
		nf := len(s.fils)
		lp := matrix.NewDense(nf, nf)
		for i := 0; i < nf; i++ {
			lp.Set(i, i, s.lpEntry(i, i))
			for j := i + 1; j < nf; j++ {
				if s.fils[i].dir != s.fils[j].dir {
					continue
				}
				m := s.lpEntry(i, j)
				lp.Set(i, j, m)
				lp.Set(j, i, m)
			}
		}
		s.lp = lp
	})
	return s.lp
}

func autoDiv(dim, skin float64, maxN int) int {
	if skin <= 0 || math.IsInf(skin, 1) {
		return 1
	}
	n := int(math.Ceil(dim / skin))
	if n < 1 {
		n = 1
	}
	if n > maxN {
		n = maxN
	}
	return n
}

// NumFilaments reports the discretization size.
func (s *Solver) NumFilaments() int { return len(s.fils) }

// nodeRow maps a node id to its reduced nodal index with the port
// minus node removed as the reference (-1 for the reference itself).
func (s *Solver) nodeRow(n int) int {
	if n == s.minus {
		return -1
	}
	if n > s.minus {
		return n - 1
	}
	return n
}

// Impedance returns the complex port impedance at frequency f (Hz),
// using the configured solve mode (see SetSolveMode): the dense complex
// LU oracle, or matrix-free GMRES through the hierarchically
// compressed partial-inductance operator.
func (s *Solver) Impedance(f float64) (complex128, error) {
	if s.iterativeMode() {
		z, _, err := s.impedanceIterative(f, nil, nil)
		return z, err
	}
	return s.impedanceDense(f)
}

// impedanceDense is the exact direct path: dense complex LU of the
// branch impedance matrix at this frequency.
func (s *Solver) impedanceDense(f float64) (complex128, error) {
	omega := 2 * math.Pi * f
	nf := len(s.fils)
	lp := s.denseLP()
	zb := matrix.NewCDense(nf, nf)
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			re := 0.0
			if i == j {
				re = s.fils[i].r
			}
			zb.Set(i, j, complex(re, omega*lp.At(i, j)))
		}
	}
	lu, err := matrix.FactorComplexLU(zb)
	if err != nil {
		return 0, fmt.Errorf("fasthenry: branch impedance singular: %w", err)
	}

	// Nodal admittance with the port minus node as reference:
	// Y = A Zb^{-1} A^T with A the reduced incidence matrix.
	nn := s.nNodes - 1
	// X[:, k] = Zb^{-1} * (A^T e_k) would need nn solves; instead solve
	// Zb^{-1} once per filament-incidence column: W = Zb^{-1} A^T is
	// nf x nn. Assemble A^T columns (sparse: each filament touches two
	// nodes), then Y = A W.
	y := matrix.NewCDense(nn, nn)
	col := make([]complex128, nf)
	for k := 0; k < nn; k++ {
		s.incidenceColumn(col, k)
		w, err := lu.Solve(col)
		if err != nil {
			return 0, err
		}
		s.scatterAdmittance(y, k, w)
	}
	return s.portSolve(y)
}

// incidenceColumn fills col with the A^T e_k column: +1/-1 at the
// filaments whose end nodes map to reduced index k.
func (s *Solver) incidenceColumn(col []complex128, k int) {
	for i := range col {
		col[i] = 0
	}
	for fi := range s.fils {
		f := &s.fils[fi]
		if s.nodeRow(f.na) == k {
			col[fi] += 1
		}
		if s.nodeRow(f.nb) == k {
			col[fi] -= 1
		}
	}
}

// scatterAdmittance accumulates column k of Y = A W from the branch
// current solution w.
func (s *Solver) scatterAdmittance(y *matrix.CDense, k int, w []complex128) {
	for fi := range s.fils {
		f := &s.fils[fi]
		if ra := s.nodeRow(f.na); ra >= 0 {
			y.Add(ra, k, w[fi])
		}
		if rb := s.nodeRow(f.nb); rb >= 0 {
			y.Add(rb, k, -w[fi])
		}
	}
}

// portSolve injects 1 A into the port plus node and solves the reduced
// nodal system for the port voltage (= impedance).
func (s *Solver) portSolve(y *matrix.CDense) (complex128, error) {
	nn := y.Rows()
	rhs := make([]complex128, nn)
	pr := s.nodeRow(s.plus)
	if pr < 0 {
		return 0, fmt.Errorf("fasthenry: port plus equals reference")
	}
	rhs[pr] = 1
	v, err := matrix.SolveComplex(y, rhs)
	if err != nil {
		return 0, fmt.Errorf("fasthenry: port network disconnected: %w", err)
	}
	return v[pr], nil
}

// RL decomposes an impedance into series resistance and inductance at
// frequency f: R = Re Z, L = Im Z / (2 pi f).
func RL(z complex128, f float64) (r, l float64) {
	return real(z), imag(z) / (2 * math.Pi * f)
}

// Point is one frequency sample of an extraction sweep.
type Point struct {
	Freq float64
	Z    complex128
	R    float64
	L    float64
	// Iters is the total GMRES iteration count across the point's nodal
	// solves (zero on the dense path and on interpolated points).
	Iters int
	// Interp marks a point filled by the adaptive sweep's rational
	// interpolant instead of an exact solve.
	Interp bool
}

// Sweep extracts the port impedance at each frequency. Points are
// independent complex solves, so the sweep fans out across workers
// (Options.Workers, or matrix.SetWorkers when unset); results are
// identical to a serial loop, in ascending frequency order.
func (s *Solver) Sweep(freqs []float64) ([]Point, error) {
	w := s.workers
	if w <= 0 {
		w = matrix.Workers()
	}
	return s.SweepParallel(freqs, w)
}

// LogSpace returns n logarithmically spaced frequencies in [f0, f1].
// Degenerate requests are well defined: n <= 1 or a collapsed band
// (f0 == f1) yield the single-point slice [f0] rather than repeated
// points or NaN spacing from the zero-width ratio.
func LogSpace(f0, f1 float64, n int) []float64 {
	if n <= 1 || f0 == f1 {
		return []float64{f0}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f0 * math.Pow(f1/f0, float64(i)/float64(n-1))
	}
	return out
}

// DCResistance returns the zero-frequency limit of the port resistance,
// from a purely resistive solve (useful as a sanity anchor: the
// extraction's R(f) must approach this as f -> 0).
func (s *Solver) DCResistance() (float64, error) {
	z, err := s.Impedance(1) // 1 Hz: inductive part utterly negligible
	if err != nil {
		return 0, err
	}
	return real(z), nil
}
