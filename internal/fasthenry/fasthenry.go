// Package fasthenry is a FastHenry-style frequency-dependent inductance
// and resistance extractor (Kamon, Tsuk & White, IEEE MTT 1994).
//
// Conductor segments and planes are lowered by internal/mesh into a
// uniform filament set (segments split across their cross-section,
// planes into overlapping X/Y filament grids); the dense complex branch
// impedance matrix Zb = R + jω Lp (partial inductances between every
// filament pair) is assembled and the port impedance solved by nodal
// analysis: Y = A Zb^{-1} A^T. Skin and proximity effects emerge from
// the current redistribution among filaments, exactly as in FastHenry.
//
// Substitution note (see DESIGN.md §5): FastHenry accelerates the dense
// solve with a multipole expansion; at the scales this repository
// simulates, a direct dense complex LU is exact and fast enough, so the
// multipole stage is intentionally omitted — it changes run time, never
// extracted values.
package fasthenry

import (
	"fmt"
	"math"
	"sync"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
	"inductance101/internal/matrix"
	"inductance101/internal/mesh"
	"inductance101/internal/sweep"
)

// Port defines the two terminals the impedance is extracted between.
type Port struct {
	Plus, Minus string
}

// Options controls filament discretization.
type Options struct {
	// NW, NT force the per-segment filament counts across width and
	// thickness. Zero means automatic: enough filaments that each is
	// no wider than the skin depth at the extraction frequency, capped
	// by MaxPerSide.
	NW, NT int
	// MaxPerSide caps automatic discretization (default 5).
	MaxPerSide int
	// Rho is the conductor resistivity used for skin-depth sizing
	// (default copper).
	Rho float64
	// PlaneNW is the mesh grid density of conductor planes: the number
	// of grid cells along each plane axis (0 = mesh.DefaultPlaneNW;
	// see mesh.Options.PlaneNW for the valid range, which NewSolver
	// rejects fail-fast).
	PlaneNW int
	// Mode selects the solve path (dense oracle, matrix-free GMRES, or
	// auto by filament count). The zero value is ModeAuto.
	Mode SolveMode
	// ACATol is the relative tolerance of the compressed operator's
	// low-rank far field on the iterative paths — the ACA factor
	// tolerance in ModeIterative, the interpolative-basis tolerance in
	// ModeNested (default 1e-8 for both).
	ACATol float64
	// Precond selects the iterative paths' preconditioner. The zero
	// value is PrecondBlockJacobi.
	Precond Precond
	// Cache names the kernel cache the solver's partial-inductance
	// entries go through. The zero value is the process-default shared
	// cache (honoring the deprecated extract.SetKernelCache switch);
	// sessions pass their own extract.PrivateCache() or extract.NoCache().
	Cache extract.CacheRef
	// Workers caps the sweep fan-out and dense-kernel goroutines.
	// 0 = process default (matrix.Workers), 1 = fully serial.
	Workers int
	// SweepMode selects exact per-point solves, the adaptive
	// anchor-and-fit engine, or auto (adaptive at sweep.AutoThreshold
	// requested points). The zero value is sweep.ModeAuto.
	SweepMode sweep.Mode
	// SweepTol is the adaptive engine's relative interpolation
	// tolerance (0 = sweep.DefaultTol).
	SweepTol float64
	// RecycleDim caps the Krylov recycling space the adaptive anchor
	// solves carry between frequencies on the iterative paths.
	// 0 = matrix.DefaultRecycleDim; negative disables recycling
	// (warm starts only).
	RecycleDim int
}

// meshOptions maps the solver options onto the lowering stage's.
func (o Options) meshOptions() mesh.Options {
	return mesh.Options{
		NW: o.NW, NT: o.NT, MaxPerSide: o.MaxPerSide,
		Rho: o.Rho, PlaneNW: o.PlaneNW,
	}
}

// Solver holds the discretized problem for repeated solves across a
// frequency sweep. The partial-inductance matrix is materialized
// lazily: the dense oracle path assembles the full nf x nf matrix on
// first use, the iterative path a hierarchically compressed operator —
// whichever the solve mode needs, never both by default.
type Solver struct {
	fils   []mesh.Filament
	entry  func(i, j int) float64 // filament partial-inductance kernel
	nNodes int
	plus   int // node index of port plus (minus is the reference)
	minus  int

	lpOnce sync.Once
	lp     *matrix.Dense // dense partial inductance over filaments (lazy)

	mode    SolveMode
	acaTol  float64
	precond Precond
	cache   extract.CacheRef
	workers int

	sweepMode  sweep.Mode
	sweepTol   float64
	recycleDim int

	opOnce sync.Once
	op     extract.LOperator // compressed partial inductance (lazy)
}

// NewSolver lowers the given segments of the layout — plus every
// conductor plane and via it contains — through internal/mesh at a
// reference frequency fRef (which sizes the filament grids), merges the
// node pairs in shorts, and prepares the partial-inductance problem.
func NewSolver(l *geom.Layout, segs []int, port Port, shorts [][2]string, fRef float64, opt Options) (*Solver, error) {
	m, err := mesh.Build(l, segs, shorts, fRef, opt.meshOptions())
	if err != nil {
		return nil, fmt.Errorf("fasthenry: %w", err)
	}
	plus, minus := m.Node(port.Plus), m.Node(port.Minus)
	if plus == minus {
		return nil, fmt.Errorf("fasthenry: port terminals are shorted together")
	}

	return &Solver{
		fils:   m.Filaments,
		entry:  extract.FilamentEntry(m.Filaments, opt.Cache),
		nNodes: m.NumNodes(), plus: plus, minus: minus,
		mode: opt.Mode, acaTol: opt.ACATol, precond: opt.Precond,
		cache: opt.Cache, workers: opt.Workers,
		sweepMode: opt.SweepMode, sweepTol: opt.SweepTol,
		recycleDim: opt.RecycleDim,
	}, nil
}

// lpEntry returns the partial inductance between filaments i and j
// (symmetric in its arguments): extract.FilamentEntry over the lowered
// mesh, routed through the solver's kernel cache.
func (s *Solver) lpEntry(i, j int) float64 {
	if s.entry == nil {
		// Solvers assembled literally in tests bypass NewSolver; build
		// the entry function over the bare filament slice on first use.
		s.entry = extract.FilamentEntry(s.fils, s.cache)
	}
	return s.entry(i, j)
}

// denseLP materializes (once) the dense partial-inductance matrix over
// filaments — the exact oracle the dense solve path factorizes and the
// compressed operator is verified against.
func (s *Solver) denseLP() *matrix.Dense {
	s.lpOnce.Do(func() {
		nf := len(s.fils)
		lp := matrix.NewDense(nf, nf)
		for i := 0; i < nf; i++ {
			lp.Set(i, i, s.lpEntry(i, i))
			for j := i + 1; j < nf; j++ {
				if s.fils[i].Dir != s.fils[j].Dir {
					continue
				}
				m := s.lpEntry(i, j)
				lp.Set(i, j, m)
				lp.Set(j, i, m)
			}
		}
		s.lp = lp
	})
	return s.lp
}

// NumFilaments reports the discretization size.
func (s *Solver) NumFilaments() int { return len(s.fils) }

// nodeRow maps a node id to its reduced nodal index with the port
// minus node removed as the reference (-1 for the reference itself).
func (s *Solver) nodeRow(n int) int {
	if n == s.minus {
		return -1
	}
	if n > s.minus {
		return n - 1
	}
	return n
}

// Impedance returns the complex port impedance at frequency f (Hz),
// using the configured solve mode (see SetSolveMode): the dense complex
// LU oracle, or matrix-free GMRES through the hierarchically
// compressed partial-inductance operator.
func (s *Solver) Impedance(f float64) (complex128, error) {
	if s.iterativeMode() {
		z, _, err := s.impedanceIterative(f, nil, nil)
		return z, err
	}
	return s.impedanceDense(f)
}

// impedanceDense is the exact direct path: dense complex LU of the
// branch impedance matrix at this frequency.
func (s *Solver) impedanceDense(f float64) (complex128, error) {
	omega := 2 * math.Pi * f
	nf := len(s.fils)
	lp := s.denseLP()
	zb := matrix.NewCDense(nf, nf)
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			re := 0.0
			if i == j {
				re = s.fils[i].R
			}
			zb.Set(i, j, complex(re, omega*lp.At(i, j)))
		}
	}
	lu, err := matrix.FactorComplexLU(zb)
	if err != nil {
		return 0, fmt.Errorf("fasthenry: branch impedance singular: %w", err)
	}

	// Nodal admittance with the port minus node as reference:
	// Y = A Zb^{-1} A^T with A the reduced incidence matrix.
	nn := s.nNodes - 1
	// X[:, k] = Zb^{-1} * (A^T e_k) would need nn solves; instead solve
	// Zb^{-1} once per filament-incidence column: W = Zb^{-1} A^T is
	// nf x nn. Assemble A^T columns (sparse: each filament touches two
	// nodes), then Y = A W.
	y := matrix.NewCDense(nn, nn)
	col := make([]complex128, nf)
	for k := 0; k < nn; k++ {
		s.incidenceColumn(col, k)
		w, err := lu.Solve(col)
		if err != nil {
			return 0, err
		}
		s.scatterAdmittance(y, k, w)
	}
	return s.portSolve(y)
}

// incidenceColumn fills col with the A^T e_k column: +1/-1 at the
// filaments whose end nodes map to reduced index k.
func (s *Solver) incidenceColumn(col []complex128, k int) {
	for i := range col {
		col[i] = 0
	}
	for fi := range s.fils {
		f := &s.fils[fi]
		if s.nodeRow(f.NodeA) == k {
			col[fi] += 1
		}
		if s.nodeRow(f.NodeB) == k {
			col[fi] -= 1
		}
	}
}

// scatterAdmittance accumulates column k of Y = A W from the branch
// current solution w.
func (s *Solver) scatterAdmittance(y *matrix.CDense, k int, w []complex128) {
	for fi := range s.fils {
		f := &s.fils[fi]
		if ra := s.nodeRow(f.NodeA); ra >= 0 {
			y.Add(ra, k, w[fi])
		}
		if rb := s.nodeRow(f.NodeB); rb >= 0 {
			y.Add(rb, k, -w[fi])
		}
	}
}

// portSolve injects 1 A into the port plus node and solves the reduced
// nodal system for the port voltage (= impedance).
func (s *Solver) portSolve(y *matrix.CDense) (complex128, error) {
	nn := y.Rows()
	rhs := make([]complex128, nn)
	pr := s.nodeRow(s.plus)
	if pr < 0 {
		return 0, fmt.Errorf("fasthenry: port plus equals reference")
	}
	rhs[pr] = 1
	v, err := matrix.SolveComplex(y, rhs)
	if err != nil {
		return 0, fmt.Errorf("fasthenry: port network disconnected: %w", err)
	}
	return v[pr], nil
}

// RL decomposes an impedance into series resistance and inductance at
// frequency f: R = Re Z, L = Im Z / (2 pi f).
func RL(z complex128, f float64) (r, l float64) {
	return real(z), imag(z) / (2 * math.Pi * f)
}

// Point is one frequency sample of an extraction sweep.
type Point struct {
	Freq float64
	Z    complex128
	R    float64
	L    float64
	// Iters is the total GMRES iteration count across the point's nodal
	// solves (zero on the dense path and on interpolated points).
	Iters int
	// Interp marks a point filled by the adaptive sweep's rational
	// interpolant instead of an exact solve.
	Interp bool
}

// Sweep extracts the port impedance at each frequency. Points are
// independent complex solves, so the sweep fans out across workers
// (Options.Workers, or matrix.SetWorkers when unset); results are
// identical to a serial loop, in ascending frequency order.
func (s *Solver) Sweep(freqs []float64) ([]Point, error) {
	w := s.workers
	if w <= 0 {
		w = matrix.Workers()
	}
	return s.SweepParallel(freqs, w)
}

// LogSpace returns n logarithmically spaced frequencies in [f0, f1].
// Degenerate requests are well defined: n <= 1 or a collapsed band
// (f0 == f1) yield the single-point slice [f0] rather than repeated
// points or NaN spacing from the zero-width ratio.
func LogSpace(f0, f1 float64, n int) []float64 {
	if n <= 1 || f0 == f1 {
		return []float64{f0}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f0 * math.Pow(f1/f0, float64(i)/float64(n-1))
	}
	return out
}

// DCResistance returns the zero-frequency limit of the port resistance,
// from a purely resistive solve (useful as a sanity anchor: the
// extraction's R(f) must approach this as f -> 0).
func (s *Solver) DCResistance() (float64, error) {
	z, err := s.Impedance(1) // 1 Hz: inductive part utterly negligible
	if err != nil {
		return 0, err
	}
	return real(z), nil
}
