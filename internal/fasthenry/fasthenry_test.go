package fasthenry

import (
	"math"
	"testing"

	"inductance101/internal/extract"
	"inductance101/internal/geom"
)

// signalOverReturn builds the canonical Fig. 3(a) structure: a signal
// wire with ground return lines on both sides, all tied together at the
// far end (the "receiver shorted to local ground" port definition).
func signalOverReturn(length, width, pitch float64) (*geom.Layout, []int, Port, [][2]string) {
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.022, HBelow: 1e-6},
	})
	sig := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: length, Width: width, Net: "sig", NodeA: "sig0", NodeB: "sig1"})
	g1 := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: -pitch,
		Length: length, Width: width, Net: "gnd", NodeA: "g1a", NodeB: "g1b"})
	g2 := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, X0: 0, Y0: pitch,
		Length: length, Width: width, Net: "gnd", NodeA: "g2a", NodeB: "g2b"})
	port := Port{Plus: "sig0", Minus: "g1a"}
	shorts := [][2]string{
		{"sig1", "g1b"}, {"g1b", "g2b"}, // receiver end shorted to returns
		{"g1a", "g2a"}, // returns tied at the driver end
	}
	return l, []int{sig, g1, g2}, port, shorts
}

func TestDCResistanceMatchesAnalytic(t *testing.T) {
	length, width, pitch := 1000e-6, 2e-6, 6e-6
	l, segs, port, shorts := signalOverReturn(length, width, pitch)
	s, err := NewSolver(l, segs, port, shorts, 1e9, Options{NW: 1, NT: 1})
	if err != nil {
		t.Fatal(err)
	}
	rdc, err := s.DCResistance()
	if err != nil {
		t.Fatal(err)
	}
	// Signal R + (two returns in parallel): 0.022*1000/2 = 11 ohm
	// signal, 5.5 ohm return pair => 16.5 ohm loop.
	rSeg := 0.022 * length / width
	want := rSeg + rSeg/2
	if math.Abs(rdc-want)/want > 1e-6 {
		t.Errorf("DC loop resistance %g, want %g", rdc, want)
	}
}

func TestLoopRIncreasesLDecreasesWithFrequency(t *testing.T) {
	// The paper's Fig. 3(b): loop resistance rises and loop inductance
	// falls as frequency grows (current crowds into low-inductance
	// paths / skin of the conductors).
	l, segs, port, shorts := signalOverReturn(2000e-6, 8e-6, 20e-6)
	s, err := NewSolver(l, segs, port, shorts, 20e9, Options{MaxPerSide: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFilaments() <= 3 {
		t.Fatalf("expected multi-filament discretization, got %d", s.NumFilaments())
	}
	pts, err := s.Sweep(LogSpace(1e8, 2e10, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].R < pts[i-1].R*(1-1e-9) {
			t.Errorf("R(f) decreased: %g@%g -> %g@%g",
				pts[i-1].R, pts[i-1].Freq, pts[i].R, pts[i].Freq)
		}
		if pts[i].L > pts[i-1].L*(1+1e-9) {
			t.Errorf("L(f) increased: %g@%g -> %g@%g",
				pts[i-1].L, pts[i-1].Freq, pts[i].L, pts[i].Freq)
		}
	}
	// Both must stay physical.
	for _, p := range pts {
		if p.R <= 0 || p.L <= 0 {
			t.Fatalf("unphysical extraction at %g Hz: R=%g L=%g", p.Freq, p.R, p.L)
		}
	}
}

func TestLoopInductanceMatchesPartialFormula(t *testing.T) {
	// With single filaments and symmetric returns, the low-frequency
	// loop inductance of signal + two parallel returns has the closed
	// form L = Ls + (Lg + Mgg)/2 - 2*Msg (return current splits evenly).
	length, width, pitch := 1000e-6, 2e-6, 5e-6
	l, segs, port, shorts := signalOverReturn(length, width, pitch)
	s, err := NewSolver(l, segs, port, shorts, 1e9, Options{NW: 1, NT: 1})
	if err != nil {
		t.Fatal(err)
	}
	z, err := s.Impedance(1e6) // low frequency: uniform current split
	if err != nil {
		t.Fatal(err)
	}
	_, lGot := RL(z, 1e6)
	th := 1e-6
	ls := extract.SelfInductanceBar(length, width, th)
	msg := extract.MutualFilaments(length, length, 0, pitch)
	mgg := extract.MutualFilaments(length, length, 0, 2*pitch)
	want := ls + (ls+mgg)/2 - 2*msg
	if math.Abs(lGot-want)/want > 0.02 {
		t.Errorf("loop L = %g, closed form %g", lGot, want)
	}
}

func TestCloserReturnsLowerLoopInductance(t *testing.T) {
	extractL := func(pitch float64) float64 {
		l, segs, port, shorts := signalOverReturn(1000e-6, 2e-6, pitch)
		s, err := NewSolver(l, segs, port, shorts, 1e9, Options{NW: 1, NT: 1})
		if err != nil {
			t.Fatal(err)
		}
		z, err := s.Impedance(1e9)
		if err != nil {
			t.Fatal(err)
		}
		_, lv := RL(z, 1e9)
		return lv
	}
	lNear := extractL(3e-6)
	lFar := extractL(30e-6)
	if lNear >= lFar {
		t.Errorf("closer returns must lower loop L: near %g far %g", lNear, lFar)
	}
}

func TestSolverErrors(t *testing.T) {
	l, segs, port, shorts := signalOverReturn(100e-6, 1e-6, 3e-6)
	if _, err := NewSolver(l, nil, port, shorts, 1e9, Options{}); err == nil {
		t.Errorf("empty segment list accepted")
	}
	if _, err := NewSolver(l, segs, Port{Plus: "sig0", Minus: "sig0"}, nil, 1e9, Options{}); err == nil {
		t.Errorf("degenerate port accepted")
	}
	// Shorting a segment end-to-end is rejected.
	bad := append([][2]string{{"sig0", "sig1"}}, shorts...)
	if _, err := NewSolver(l, segs, port, bad, 1e9, Options{}); err == nil {
		t.Errorf("end-to-end short accepted")
	}
	// Disconnected port: no shorts at the far end leaves no loop.
	if _, err := NewSolver(l, segs, port, nil, 1e9, Options{NW: 1, NT: 1}); err == nil {
		s, _ := NewSolver(l, segs, port, nil, 1e9, Options{NW: 1, NT: 1})
		if _, err2 := s.Impedance(1e9); err2 == nil {
			t.Errorf("disconnected network should fail to solve")
		}
	}
}

func TestViasShortLayers(t *testing.T) {
	// A two-layer loop closed by vias must extract a finite impedance.
	l := geom.NewLayout([]geom.Layer{
		{Name: "M5", Z: 4e-6, Thickness: 1e-6, SheetRho: 0.022, HBelow: 1e-6},
		{Name: "M6", Z: 6e-6, Thickness: 1e-6, SheetRho: 0.022, HBelow: 1e-6},
	})
	a := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, Length: 500e-6, Width: 2e-6,
		Net: "sig", NodeA: "a0", NodeB: "a1"})
	b := l.AddSegment(geom.Segment{Layer: 1, Dir: geom.DirX, Length: 500e-6, Width: 2e-6,
		Net: "ret", NodeA: "b0", NodeB: "b1"})
	l.AddVia(geom.Via{X: 500e-6, Y: 0, LayerLo: 0, LayerHi: 1, Resistance: 0.5,
		NodeLo: "a1", NodeHi: "b1"})
	s, err := NewSolver(l, []int{a, b}, Port{Plus: "a0", Minus: "b0"}, nil, 1e9, Options{NW: 1, NT: 1})
	if err != nil {
		t.Fatal(err)
	}
	z, err := s.Impedance(1e9)
	if err != nil {
		t.Fatal(err)
	}
	r, lv := RL(z, 1e9)
	if r <= 0 || lv <= 0 {
		t.Errorf("via loop: R=%g L=%g", r, lv)
	}
}

func TestLogSpace(t *testing.T) {
	fs := LogSpace(1e8, 1e10, 3)
	if len(fs) != 3 || fs[0] != 1e8 || math.Abs(fs[1]-1e9)/1e9 > 1e-12 || math.Abs(fs[2]-1e10)/1e10 > 1e-12 {
		t.Errorf("LogSpace = %v", fs)
	}
	if one := LogSpace(5, 10, 1); len(one) != 1 || one[0] != 5 {
		t.Errorf("LogSpace n=1 = %v", one)
	}
}

func TestSkinEffectResistanceRatio(t *testing.T) {
	// A wide, thick conductor must show a larger high/low frequency
	// resistance ratio than a thin one whose cross-section is already
	// below the skin depth.
	ratio := func(width float64) float64 {
		l, segs, port, shorts := signalOverReturn(2000e-6, width, 4*width)
		s, err := NewSolver(l, segs, port, shorts, 50e9, Options{MaxPerSide: 5})
		if err != nil {
			t.Fatal(err)
		}
		zLo, err := s.Impedance(1e7)
		if err != nil {
			t.Fatal(err)
		}
		zHi, err := s.Impedance(5e10)
		if err != nil {
			t.Fatal(err)
		}
		return real(zHi) / real(zLo)
	}
	wide := ratio(10e-6)
	thin := ratio(1e-6)
	if wide <= thin {
		t.Errorf("skin effect ratio: wide %g <= thin %g", wide, thin)
	}
	if wide < 1.05 {
		t.Errorf("wide conductor shows no skin effect: ratio %g", wide)
	}
}

// TestFilamentAssemblyCacheBitIdentical builds the same solver with the
// kernel cache enabled and disabled: the filament partial-inductance
// matrix, and therefore the extracted port impedance, must match to the
// last bit (the cache memoizes exact kernel outputs only).
func TestFilamentAssemblyCacheBitIdentical(t *testing.T) {
	l, segs, port, shorts := signalOverReturn(1500e-6, 6e-6, 15e-6)
	build := func(on bool) *Solver {
		extract.ResetKernelCache()
		extract.SetKernelCache(on)
		defer func() {
			extract.SetKernelCache(true)
			extract.ResetKernelCache()
		}()
		s, err := NewSolver(l, segs, port, shorts, 10e9, Options{MaxPerSide: 4})
		if err != nil {
			t.Fatal(err)
		}
		s.denseLP() // materialize while this cache setting is in effect
		return s
	}
	off := build(false)
	on := build(true)
	nf := off.NumFilaments()
	if on.NumFilaments() != nf {
		t.Fatalf("filament counts differ: %d vs %d", on.NumFilaments(), nf)
	}
	for i := 0; i < nf; i++ {
		for j := 0; j < nf; j++ {
			a, b := off.denseLP().At(i, j), on.denseLP().At(i, j)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("lp(%d,%d): %v != %v", i, j, a, b)
			}
		}
	}
	za, err := off.Impedance(5e9)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := on.Impedance(5e9)
	if err != nil {
		t.Fatal(err)
	}
	if za != zb {
		t.Fatalf("impedance differs: %v vs %v", za, zb)
	}
}
