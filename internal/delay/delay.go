// Package delay implements moment-based RC delay metrics — Elmore (the
// first moment) and D2M (a two-moment metric) — computed directly on RC
// tree netlists. These are the estimators static timing flows used
// before and during the paper's era; comparing them against simulated
// RLC delays shows exactly where "inductance impacts ... delay
// variations" breaks the RC abstractions.
package delay

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
)

// Moments holds the first two moments of a node's impulse response and
// the derived delay metrics.
type Moments struct {
	M1 float64 // Elmore delay (s)
	M2 float64 // second moment (s^2)
}

// Elmore returns the Elmore delay: m1.
func (m Moments) Elmore() float64 { return m.M1 }

// D2M returns the "Delay with 2 Moments" metric of Alpert et al.:
// D2M = ln2 * m1^2 / sqrt(m2), a far better 50% estimate than Elmore on
// far-from-driver nodes. Falls back to Elmore when m2 degenerates.
func (m Moments) D2M() float64 {
	if m.M2 <= 0 {
		return m.M1 * math.Ln2
	}
	return math.Ln2 * m.M1 * m.M1 / math.Sqrt(m.M2)
}

// Tree is the analyzed RC tree rooted at the driver.
type Tree struct {
	nodes   []string
	parent  []int     // parent node index (-1 for root)
	resUp   []float64 // resistance to the parent
	cap     []float64 // grounded capacitance at each node
	index   map[string]int
	moments []Moments
}

// BuildTree extracts the RC tree reachable from root through the
// netlist's resistors. Every grounded capacitor on a tree node
// contributes load; floating (node-to-node) capacitors are rejected, as
// are resistor loops — the Elmore recursion is only defined on trees.
// Inductors, sources and MOSFETs are ignored (the metric models the
// passive RC skeleton), but an inductor bridging two tree nodes would
// hide resistance, so their presence on tree nodes is also rejected.
func BuildTree(n *circuit.Netlist, root string) (*Tree, error) {
	rootIdx, err := n.NodeIndex(root)
	if err != nil {
		return nil, err
	}
	if rootIdx < 0 {
		return nil, fmt.Errorf("delay: root cannot be ground")
	}
	// Adjacency over resistors.
	type edge struct {
		to int
		r  float64
	}
	adj := make(map[int][]edge)
	for i := range n.Resistors {
		r := &n.Resistors[i]
		adj[r.A] = append(adj[r.A], edge{r.B, r.R})
		adj[r.B] = append(adj[r.B], edge{r.A, r.R})
	}
	for i := range n.Inductors {
		l := &n.Inductors[i]
		if l.A == rootIdx || l.B == rootIdx {
			return nil, fmt.Errorf("delay: inductor %s touches the tree (RC metrics do not apply)", l.Name)
		}
	}

	t := &Tree{index: make(map[string]int)}
	add := func(nodeIdx, parent int, r float64) int {
		name := circuit.Ground
		if nodeIdx >= 0 {
			name = n.NodeName(nodeIdx)
		}
		id := len(t.nodes)
		t.nodes = append(t.nodes, name)
		t.parent = append(t.parent, parent)
		t.resUp = append(t.resUp, r)
		t.cap = append(t.cap, 0)
		t.index[name] = id
		return id
	}
	visited := map[int]int{} // netlist node idx -> tree id
	rootID := add(rootIdx, -1, 0)
	visited[rootIdx] = rootID
	queue := []int{rootIdx}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if e.to < 0 {
				continue // resistor to ground is a DC load, not a branch
			}
			if prev, seen := visited[e.to]; seen {
				if t.parent[visited[cur]] != prev && prev != visited[cur] {
					return nil, fmt.Errorf("delay: resistor loop through node %s (not a tree)", n.NodeName(e.to))
				}
				continue
			}
			// An inductor anywhere on a reached node invalidates RC.
			for li := range n.Inductors {
				l := &n.Inductors[li]
				if l.A == e.to || l.B == e.to {
					return nil, fmt.Errorf("delay: inductor %s touches the tree (RC metrics do not apply)", l.Name)
				}
			}
			id := add(e.to, visited[cur], e.r)
			visited[e.to] = id
			queue = append(queue, e.to)
		}
	}
	// Capacitors.
	for i := range n.Capacitors {
		c := &n.Capacitors[i]
		aIn := c.A >= 0 && inMap(visited, c.A)
		bIn := c.B >= 0 && inMap(visited, c.B)
		switch {
		case aIn && c.B < 0:
			t.cap[visited[c.A]] += c.C
		case bIn && c.A < 0:
			t.cap[visited[c.B]] += c.C
		case aIn && bIn:
			return nil, fmt.Errorf("delay: floating capacitor %s between tree nodes", c.Name)
		case aIn || bIn:
			// Coupling to an off-tree node: treat as grounded at the
			// tree side (the standard decoupled approximation).
			if aIn {
				t.cap[visited[c.A]] += c.C
			} else {
				t.cap[visited[c.B]] += c.C
			}
		}
	}
	t.computeMoments()
	return t, nil
}

func inMap(m map[int]int, k int) bool {
	_, ok := m[k]
	return ok
}

// computeMoments runs the classic two-pass tree recursion: downstream
// capacitance, then path accumulation for m1; the second moment uses
// the "capacitance-weighted Elmore" downstream sums.
func (t *Tree) computeMoments() {
	n := len(t.nodes)
	// Children lists in topological (BFS) order — parents precede
	// children by construction.
	downCap := make([]float64, n)
	copy(downCap, t.cap)
	for i := n - 1; i >= 1; i-- {
		downCap[t.parent[i]] += downCap[i]
	}
	m1 := make([]float64, n)
	for i := 1; i < n; i++ {
		m1[i] = m1[t.parent[i]] + t.resUp[i]*downCap[i]
	}
	// Second moment: m2_i = sum_k R_ik * C_k * m1_k, computed with the
	// same downstream trick on C_k * m1_k.
	downCm := make([]float64, n)
	for i := 0; i < n; i++ {
		downCm[i] = t.cap[i] * m1[i]
	}
	for i := n - 1; i >= 1; i-- {
		downCm[t.parent[i]] += downCm[i]
	}
	m2 := make([]float64, n)
	for i := 1; i < n; i++ {
		m2[i] = m2[t.parent[i]] + t.resUp[i]*downCm[i]
	}
	t.moments = make([]Moments, n)
	for i := 0; i < n; i++ {
		t.moments[i] = Moments{M1: m1[i], M2: m2[i]}
	}
}

// At returns the moments of a named node.
func (t *Tree) At(node string) (Moments, error) {
	id, ok := t.index[node]
	if !ok {
		return Moments{}, fmt.Errorf("delay: node %q not in the tree", node)
	}
	return t.moments[id], nil
}

// Nodes lists the tree's node names in BFS order from the root.
func (t *Tree) Nodes() []string {
	return append([]string(nil), t.nodes...)
}

// TotalCap returns the tree's total grounded capacitance.
func (t *Tree) TotalCap() float64 {
	s := 0.0
	for _, c := range t.cap {
		s += c
	}
	return s
}
