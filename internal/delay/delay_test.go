package delay

import (
	"fmt"
	"math"
	"testing"

	"inductance101/internal/circuit"
	"inductance101/internal/sim"
)

// chain builds root -R- n1 -R- n2 ... with C at every node.
func chain(k int, r, c float64) *circuit.Netlist {
	n := circuit.New()
	prev := "root"
	for i := 1; i <= k; i++ {
		next := fmt.Sprintf("n%d", i)
		n.AddR(fmt.Sprintf("r%d", i), prev, next, r)
		n.AddC(fmt.Sprintf("c%d", i), next, "0", c)
		prev = next
	}
	return n
}

func TestElmoreChainClosedForm(t *testing.T) {
	// Elmore of node j in a uniform RC chain: sum_{i<=j} iR*... the
	// classical m1(j) = R*C * sum_{i=1..j} (k - i + 1)... compute
	// directly: m1(j) = sum over resistors i<=j of R * C_downstream(i)
	// with C_downstream(i) = (k-i+1)*C.
	k, r, c := 5, 100.0, 1e-14
	tr, err := BuildTree(chain(k, r, c), "root")
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= k; j++ {
		want := 0.0
		for i := 1; i <= j; i++ {
			want += r * float64(k-i+1) * c
		}
		m, err := tr.At(fmt.Sprintf("n%d", j))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.M1-want)/want > 1e-12 {
			t.Errorf("Elmore(n%d) = %g, want %g", j, m.M1, want)
		}
	}
	if math.Abs(tr.TotalCap()-float64(k)*c) > 1e-20 {
		t.Errorf("TotalCap = %g", tr.TotalCap())
	}
}

func TestElmoreBranchedTree(t *testing.T) {
	// root -R- a -R- b ; a -R- c with caps at each. Downstream caps:
	// at root-a resistor: Ca+Cb+Cc.
	n := circuit.New()
	n.AddR("r1", "root", "a", 10)
	n.AddR("r2", "a", "b", 20)
	n.AddR("r3", "a", "c", 30)
	n.AddC("ca", "a", "0", 1e-13)
	n.AddC("cb", "b", "0", 2e-13)
	n.AddC("cc", "c", "0", 3e-13)
	tr, err := BuildTree(n, "root")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := tr.At("b")
	wantB := 10*(6e-13) + 20*(2e-13)
	if math.Abs(mb.M1-wantB)/wantB > 1e-12 {
		t.Errorf("Elmore(b) = %g, want %g", mb.M1, wantB)
	}
	mc, _ := tr.At("c")
	wantC := 10*(6e-13) + 30*(3e-13)
	if math.Abs(mc.M1-wantC)/wantC > 1e-12 {
		t.Errorf("Elmore(c) = %g, want %g", mc.M1, wantC)
	}
	if len(tr.Nodes()) != 4 {
		t.Errorf("nodes = %v", tr.Nodes())
	}
}

func TestMetricsAgainstSimulation(t *testing.T) {
	// Drive the chain with an ideal step through a driver resistance
	// and compare the metrics to the simulated 50% delay: Elmore
	// overestimates (it is the mean, 69% point for a 1-pole), D2M is
	// closer; both within a factor of two.
	k, r, c := 8, 50.0, 2e-14
	n := chain(k, r, c)
	n.AddV("v", "src", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 1e-12, Rise: 1e-13, Width: 1, Fall: 1e-13})
	n.AddR("rdrv", "src", "root", 30)
	tr, err := BuildTree(n, "src")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Tran(n, sim.TranOptions{TStop: 60e-12, TStep: 5e-15})
	if err != nil {
		t.Fatal(err)
	}
	last := fmt.Sprintf("n%d", k)
	cross, err := sim.CrossTime(res.Times, res.MustV(last), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	simDelay := cross - 1.05e-12
	m, err := tr.At(last)
	if err != nil {
		t.Fatal(err)
	}
	if m.Elmore() < simDelay {
		t.Errorf("Elmore %g below simulated 50%% delay %g (must overestimate)", m.Elmore(), simDelay)
	}
	if m.Elmore() > 2.2*simDelay {
		t.Errorf("Elmore %g more than ~2x simulated %g", m.Elmore(), simDelay)
	}
	d2m := m.D2M()
	errD2M := math.Abs(d2m-simDelay) / simDelay
	errElm := math.Abs(m.Elmore()-simDelay) / simDelay
	if errD2M >= errElm {
		t.Errorf("D2M (%g, err %.0f%%) not better than Elmore (%g, err %.0f%%) vs sim %g",
			d2m, errD2M*100, m.Elmore(), errElm*100, simDelay)
	}
}

func TestRCMetricsUnderestimateRLC(t *testing.T) {
	// The punchline: add the wire's loop inductance and the simulated
	// delay exceeds what any RC metric predicts from the same R and C.
	n := circuit.New()
	n.AddV("v", "src", "0", circuit.Pulse{V1: 0, V2: 1, Delay: 1e-11, Rise: 1e-12, Width: 1, Fall: 1e-12})
	n.AddR("rdrv", "src", "root", 15)
	n.AddR("rw", "root", "mid", 10)
	n.AddL("lw", "mid", "out", 2.5e-9)
	n.AddC("cw", "out", "0", 0.3e-12)

	// RC tree metrics see only the resistors/caps (build on a copy
	// without the inductor: short it).
	rcOnly := circuit.New()
	rcOnly.AddV("v", "src", "0", circuit.DC(0))
	rcOnly.AddR("rdrv", "src", "root", 15)
	rcOnly.AddR("rw", "root", "mid", 10)
	rcOnly.AddR("rshort", "mid", "out", 1e-9)
	rcOnly.AddC("cw", "out", "0", 0.3e-12)
	tr, err := BuildTree(rcOnly, "src")
	if err != nil {
		t.Fatal(err)
	}
	m, err := tr.At("out")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Tran(n, sim.TranOptions{TStop: 0.5e-9, TStep: 0.05e-12})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := sim.CrossTime(res.Times, res.MustV("out"), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	simDelay := cross - 10.5e-12
	if m.D2M() >= simDelay {
		t.Errorf("D2M %g should underestimate the RLC delay %g — that failure is the paper's point", m.D2M(), simDelay)
	}
}

func TestBuildTreeErrors(t *testing.T) {
	// Loop.
	n := circuit.New()
	n.AddR("r1", "root", "a", 1)
	n.AddR("r2", "a", "b", 1)
	n.AddR("r3", "b", "root", 1)
	if _, err := BuildTree(n, "root"); err == nil {
		t.Errorf("resistor loop accepted")
	}
	// Inductor on the tree.
	n2 := circuit.New()
	n2.AddR("r", "root", "a", 1)
	n2.AddL("l", "a", "b", 1e-9)
	if _, err := BuildTree(n2, "root"); err == nil {
		t.Errorf("inductor on tree accepted")
	}
	// Floating cap between tree nodes.
	n3 := circuit.New()
	n3.AddR("r1", "root", "a", 1)
	n3.AddR("r2", "root", "b", 1)
	n3.AddC("c", "a", "b", 1e-15)
	if _, err := BuildTree(n3, "root"); err == nil {
		t.Errorf("floating cap accepted")
	}
	// Unknown nodes.
	n4 := circuit.New()
	n4.AddR("r", "root", "a", 1)
	if _, err := BuildTree(n4, "zzz"); err == nil {
		t.Errorf("unknown root accepted")
	}
	tr, err := BuildTree(n4, "root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.At("nope"); err == nil {
		t.Errorf("unknown node accepted")
	}
	if _, err := BuildTree(n4, "0"); err == nil {
		t.Errorf("ground root accepted")
	}
}

func TestCouplingCapDecoupledApproximation(t *testing.T) {
	// A coupling cap to an off-tree node counts as grounded load.
	n := circuit.New()
	n.AddR("r", "root", "a", 100)
	n.AddC("cc", "a", "victim", 1e-13) // victim unreachable via R
	tr, err := BuildTree(n, "root")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := tr.At("a")
	if math.Abs(m.M1-100*1e-13)/1e-11 > 1e-9 {
		t.Errorf("coupling cap not counted: m1 = %g", m.M1)
	}
}
