package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if got, want := Mu0, 1.2566370614359173e-6; math.Abs(got-want) > 1e-18 {
		t.Errorf("Mu0 = %g, want %g", got, want)
	}
	// c = 1/sqrt(mu0 eps0) must be the speed of light to ~1e-3 relative
	// (Eps0 here is the CODATA value; Mu0 the pre-2019 exact value).
	c := 1 / math.Sqrt(Mu0*Eps0)
	if !ApproxEqual(c, 2.99792458e8, 1e-6, 0) {
		t.Errorf("1/sqrt(mu0 eps0) = %g, want c", c)
	}
}

func TestSkinDepth(t *testing.T) {
	// Copper at 1 GHz: ~2.36 um with rho=2.2e-8.
	d := SkinDepth(RhoCu, 1e9)
	if !ApproxEqual(d, 2.36e-6, 0.02, 0) {
		t.Errorf("skin depth = %g, want ~2.36um", d)
	}
	if !math.IsInf(SkinDepth(RhoCu, 0), 1) {
		t.Errorf("skin depth at DC should be +Inf")
	}
	// Skin depth decreases as 1/sqrt(f).
	d1, d4 := SkinDepth(RhoCu, 1e9), SkinDepth(RhoCu, 4e9)
	if !ApproxEqual(d1/d4, 2, 1e-12, 0) {
		t.Errorf("skin depth ratio = %g, want 2", d1/d4)
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2.2e-9, "H", "2.2nH"},
		{0, "F", "0F"},
		{1.5e3, "Hz", "1.5kHz"},
		{-3e-12, "F", "-3pF"},
		{1, "ohm", "1ohm"},
		{1e10, "Hz", "10GHz"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, c.unit); got != c.want {
			t.Errorf("FormatSI(%g,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestParseSI(t *testing.T) {
	cases := []struct {
		in    string
		value float64
		unit  string
	}{
		{"2.2nH", 2.2e-9, "H"},
		{"15 ohm", 15, "ohm"},
		{"1.5G", 1.5e9, ""},
		{"-3pF", -3e-12, "F"},
		{"1e-9H", 1e-9, "H"},
		{"100", 100, ""},
	}
	for _, c := range cases {
		v, u, err := ParseSI(c.in)
		if err != nil {
			t.Fatalf("ParseSI(%q): %v", c.in, err)
		}
		if !ApproxEqual(v, c.value, 1e-12, 0) || u != c.unit {
			t.Errorf("ParseSI(%q) = %g,%q want %g,%q", c.in, v, u, c.value, c.unit)
		}
	}
	if _, _, err := ParseSI(""); err == nil {
		t.Errorf("ParseSI(\"\") should error")
	}
	if _, _, err := ParseSI("abc"); err == nil {
		t.Errorf("ParseSI(\"abc\") should error")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(mant float64, exp int8) bool {
		e := int(exp)%12 - 6 // exponent in [-6, 5]
		v := (1 + math.Abs(math.Mod(mant, 8.9))) * math.Pow10(e*3)
		s := FormatSI(v, "H")
		got, unit, err := ParseSI(s)
		if err != nil || unit != "H" {
			return false
		}
		// FormatSI prints 4 significant digits.
		return ApproxEqual(got, v, 1e-3, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Errorf("Clamp broken")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Errorf("should be equal within rel tol")
	}
	if ApproxEqual(1.0, 1.1, 1e-3, 0) {
		t.Errorf("should not be equal")
	}
	if !ApproxEqual(0, 1e-15, 0, 1e-12) {
		t.Errorf("abs tolerance near zero")
	}
}
