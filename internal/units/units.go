// Package units provides the physical constants and unit helpers used
// throughout the inductance-analysis library.
//
// All quantities in this repository are SI unless a name says otherwise:
// lengths in metres, resistance in ohms, inductance in henries,
// capacitance in farads, frequency in hertz, time in seconds.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Physical constants (SI).
const (
	// Mu0 is the permeability of free space, H/m.
	Mu0 = 4e-7 * math.Pi
	// Eps0 is the permittivity of free space, F/m.
	Eps0 = 8.8541878128e-12
	// EpsSiO2 is the relative permittivity of silicon dioxide, the
	// inter-layer dielectric assumed by the Chern-style capacitance
	// models in internal/extract.
	EpsSiO2 = 3.9
	// RhoCu is the resistivity of copper interconnect at 25C, ohm*m.
	// On-chip copper is slightly worse than bulk due to barriers and
	// grain scattering; 2.2e-8 is a typical 2001-era value.
	RhoCu = 2.2e-8
	// RhoAl is the resistivity of aluminum interconnect, ohm*m.
	RhoAl = 3.3e-8
)

// Convenience multipliers for readable literals, e.g. 3*units.Millimetre.
const (
	Metre      = 1.0
	Millimetre = 1e-3
	Micrometre = 1e-6
	Nanometre  = 1e-9

	Second     = 1.0
	Nanosecond = 1e-9
	Picosecond = 1e-12

	Henry     = 1.0
	Nanohenry = 1e-9
	Picohenry = 1e-12

	Farad      = 1.0
	Picofarad  = 1e-12
	Femtofarad = 1e-15

	Hertz     = 1.0
	Kilohertz = 1e3
	Megahertz = 1e6
	Gigahertz = 1e9
)

// SkinDepth returns the skin depth in metres for a conductor of
// resistivity rho (ohm*m) at frequency f (Hz). It is the depth at which
// current density falls to 1/e of its surface value and controls how
// finely internal/fasthenry must discretize conductor cross-sections.
func SkinDepth(rho, f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(rho / (math.Pi * f * Mu0))
}

// siPrefixes maps metric prefixes to multipliers, for FormatSI/ParseSI.
var siPrefixes = []struct {
	mult   float64
	symbol string
}{
	{1e12, "T"},
	{1e9, "G"},
	{1e6, "M"},
	{1e3, "k"},
	{1, ""},
	{1e-3, "m"},
	{1e-6, "u"},
	{1e-9, "n"},
	{1e-12, "p"},
	{1e-15, "f"},
	{1e-18, "a"},
}

// FormatSI renders v with an SI prefix and the given unit symbol, e.g.
// FormatSI(2.2e-9, "H") == "2.2nH". Zero renders without a prefix.
func FormatSI(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	av := math.Abs(v)
	for _, p := range siPrefixes {
		if av >= p.mult {
			return trimFloat(v/p.mult) + p.symbol + unit
		}
	}
	last := siPrefixes[len(siPrefixes)-1]
	return trimFloat(v/last.mult) + last.symbol + unit
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 4, 64)
	return s
}

// ParseSI parses strings like "2.2nH", "15 ohm", "1.5G" into an SI value.
// The unit suffix, if present, is returned alongside the value. Prefix
// matching is case-sensitive for the ambiguous m/M pair.
func ParseSI(s string) (value float64, unit string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", fmt.Errorf("units: empty string")
	}
	// Split the leading numeric part.
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' ||
			c == 'e' || c == 'E' {
			// Accept e/E only when followed by a digit or sign, so that
			// a bare unit like "eV" is not swallowed.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '+' && n != '-' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	if i == 0 {
		return 0, "", fmt.Errorf("units: no number in %q", s)
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, "", fmt.Errorf("units: bad number in %q: %v", s, err)
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return v, "", nil
	}
	for _, p := range siPrefixes {
		if p.symbol == "" {
			continue
		}
		if strings.HasPrefix(rest, p.symbol) {
			// Treat a bare trailing prefix ("1.5k") or prefix+unit
			// ("2.2nH") as scaled; but a string like "mil" must not
			// parse as milli+"il" for known unit words.
			u := rest[len(p.symbol):]
			return v * p.mult, u, nil
		}
	}
	return v, rest, nil
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree to within rel relative
// tolerance (or abs absolute tolerance for values near zero).
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}
