// Package supply analyzes power-grid noise — the "increased power grid
// noise" of the paper's introduction, produced by the very current
// loops §2 dissects: switching currents drawn through the grid's
// resistance (IR drop) and through the package/grid inductance (Ldi/dt
// droop), with on-chip decoupling capacitance as the counterweight.
//
// The analyzer builds the full §3 PEEC model of a grid, applies
// localized switching-current bursts, and reports the worst droop and
// its static/dynamic decomposition, plus sweep helpers for the two
// design levers (decap budget, package choice).
package supply

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/decap"
	"inductance101/internal/extract"
	"inductance101/internal/grid"
	"inductance101/internal/pkgmodel"
	"inductance101/internal/sim"
)

// Burst is one localized switching event drawing current from VDD to
// GND at grid position (X, Y).
type Burst struct {
	X, Y  float64
	Peak  float64 // A
	T0    float64 // onset
	TRise float64 // ramp to peak
	TFall float64 // decay back to zero
}

// Spec configures a supply-noise analysis.
type Spec struct {
	Grid       grid.Spec
	Vdd        float64
	Package    pkgmodel.Connection
	DecapWidth float64 // total static transistor width (um); 0 = none
	Bursts     []Burst
	TStop      float64
	TStep      float64
	// IRSolver picks the static-reference solve: "dense" (default, the
	// dense LU on the full MNA), "cg" (sparse conjugate gradients),
	// "chol" (sparse direct Cholesky), or "mg" (multigrid-preconditioned
	// conjugate gradients). The sparse choices route through
	// circuit.BuildSparseDC and scale to grids far beyond dense reach;
	// "mg" is the O(N) path of the million-node flows. "auto" and ""
	// both mean the dense default.
	IRSolver string
	// Workers caps the iterative solvers' parallelism (0 = process
	// default); only "mg" currently fans out.
	Workers int
}

// DefaultSpec gives a 4x4 grid with a single centre burst.
func DefaultSpec() Spec {
	g := grid.Spec{NX: 4, NY: 4, Pitch: 150e-6, Width: 4e-6, LayerX: 0, LayerY: 1, ViaR: 0.4}
	return Spec{
		Grid: g, Vdd: 1.8,
		Package:    pkgmodel.FlipChip(),
		DecapWidth: 2e4,
		Bursts: []Burst{{
			X: 1.5 * g.Pitch, Y: 1.5 * g.Pitch,
			Peak: 25e-3, T0: 0.2e-9, TRise: 0.1e-9, TFall: 0.3e-9,
		}},
		TStop: 2e-9, TStep: 2e-12,
	}
}

// Report is the analysis outcome.
type Report struct {
	// WorstDroop is the largest VDD dip below Vdd anywhere on the grid;
	// WorstBounce the largest GND rise. WorstNode names the dip site.
	WorstDroop  float64
	WorstBounce float64
	WorstNode   string
	// StaticIR is the DC drop at the same total current drawn steadily
	// — the resistive floor; Dynamic = WorstDroop - StaticIR is the
	// inductive/charge-transient excess.
	StaticIR float64
	Dynamic  float64
	// NodeDroop maps every VDD crossing to its worst dip.
	NodeDroop map[string]float64
}

// ValidateIRSolver rejects unknown Spec.IRSolver spellings. "" is the
// dense default. CLIs call this before doing any work so a typo fails
// in milliseconds, not after the transient.
func ValidateIRSolver(s string) error {
	switch s {
	case "", "auto", "dense", "cg", "chol", "mg":
		return nil
	}
	return fmt.Errorf("supply: unknown IR solver %q (want auto, dense, cg, chol or mg)", s)
}

// Analyze runs the transient and the static reference solve.
func Analyze(spec Spec) (*Report, error) {
	if len(spec.Bursts) == 0 {
		return nil, fmt.Errorf("supply: no bursts")
	}
	if spec.TStop <= 0 || spec.TStep <= 0 {
		return nil, fmt.Errorf("supply: bad transient window")
	}
	if err := ValidateIRSolver(spec.IRSolver); err != nil {
		return nil, err
	}
	m, n, err := build(spec)
	if err != nil {
		return nil, err
	}
	// Transient with the burst waveforms.
	for k, bu := range spec.Bursts {
		vddN, gndN := m.NearestGridNodes(bu.X, bu.Y)
		n.AddI(fmt.Sprintf("burst%d", k), vddN, gndN, circuit.PWL{
			Times:  []float64{bu.T0, bu.T0 + bu.TRise, bu.T0 + bu.TRise + bu.TFall},
			Values: []float64{0, bu.Peak, 0},
		})
	}
	res, err := sim.Tran(n, sim.TranOptions{TStop: spec.TStop, TStep: spec.TStep})
	if err != nil {
		return nil, fmt.Errorf("supply: transient: %w", err)
	}
	rep := &Report{NodeDroop: make(map[string]float64)}
	for i := 0; i < spec.Grid.NY; i++ {
		for j := 0; j < spec.Grid.NX; j++ {
			node := m.VddX[i][j]
			v, err := res.V(node)
			if err != nil {
				continue
			}
			dip := 0.0
			for _, x := range v {
				if d := spec.Vdd - x; d > dip {
					dip = d
				}
			}
			rep.NodeDroop[node] = dip
			if dip > rep.WorstDroop {
				rep.WorstDroop = dip
				rep.WorstNode = node
			}
			g, err := res.V(m.GndX[i][j])
			if err != nil {
				continue
			}
			if b := sim.PeakAbs(g); b > rep.WorstBounce {
				rep.WorstBounce = b
			}
		}
	}

	// Static reference: the same peak current drawn steadily — pure IR.
	mS, nS, err := build(spec)
	if err != nil {
		return nil, err
	}
	for k, bu := range spec.Bursts {
		vddN, gndN := mS.NearestGridNodes(bu.X, bu.Y)
		nS.AddI(fmt.Sprintf("dc%d", k), vddN, gndN, circuit.DC(bu.Peak))
	}
	switch spec.IRSolver {
	case "", "auto", "dense":
		rep.StaticIR, err = grid.IRDropDC(mS, nS, spec.Vdd)
	case "cg":
		rep.StaticIR, err = grid.IRDropDCSparse(mS, nS, spec.Vdd)
	case "chol":
		rep.StaticIR, err = grid.IRDropDCSparseChol(mS, nS, spec.Vdd)
	case "mg":
		rep.StaticIR, err = grid.IRDropDCMG(mS, nS, spec.Vdd, spec.Workers)
	default:
		return nil, fmt.Errorf("supply: unknown IR solver %q (want auto, dense, cg, chol or mg)", spec.IRSolver)
	}
	if err != nil {
		return nil, fmt.Errorf("supply: static reference: %w", err)
	}
	rep.Dynamic = math.Max(rep.WorstDroop-rep.StaticIR, 0)
	return rep, nil
}

// build assembles the grid PEEC model with package and decap.
func build(spec Spec) (*grid.Model, *circuit.Netlist, error) {
	m, err := grid.BuildPowerGrid(grid.StandardLayers(), spec.Grid)
	if err != nil {
		return nil, nil, err
	}
	par := extract.Extract(m.Layout, extract.DefaultOptions())
	p, err := grid.BuildPEECNetlist(m.Layout, par, grid.PEECOptions{Mode: grid.ModeRLC})
	if err != nil {
		return nil, nil, err
	}
	n := p.Netlist
	if err := m.AttachPackage(n, spec.Package, spec.Vdd); err != nil {
		return nil, nil, err
	}
	if spec.DecapWidth > 0 {
		ref, err := decap.MeasureBlock(decap.Typical2001(), 100, 10, 1e6)
		if err != nil {
			return nil, nil, err
		}
		est, err := decap.NewEstimator(ref, 0.85)
		if err != nil {
			return nil, nil, err
		}
		m.AddDecap(n, est, spec.DecapWidth)
	}
	return m, n, nil
}

// DecapSweep reports the worst droop at each decap budget.
func DecapSweep(spec Spec, widths []float64) ([]float64, error) {
	out := make([]float64, 0, len(widths))
	for _, w := range widths {
		s := spec
		s.DecapWidth = w
		r, err := Analyze(s)
		if err != nil {
			return nil, fmt.Errorf("supply: decap %g: %w", w, err)
		}
		out = append(out, r.WorstDroop)
	}
	return out, nil
}

// PackageComparison returns the worst droop under each package model.
func PackageComparison(spec Spec, pkgs map[string]pkgmodel.Connection) (map[string]float64, error) {
	out := make(map[string]float64, len(pkgs))
	for name, conn := range pkgs {
		s := spec
		s.Package = conn
		r, err := Analyze(s)
		if err != nil {
			return nil, fmt.Errorf("supply: package %s: %w", name, err)
		}
		out[name] = r.WorstDroop
	}
	return out, nil
}
