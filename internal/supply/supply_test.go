package supply

import (
	"strings"
	"testing"

	"inductance101/internal/grid"
	"inductance101/internal/pkgmodel"
)

func fastSpec() Spec {
	s := DefaultSpec()
	s.Grid = grid.Spec{NX: 3, NY: 3, Pitch: 150e-6, Width: 4e-6, LayerX: 0, LayerY: 1, ViaR: 0.4}
	s.Bursts[0].X, s.Bursts[0].Y = 150e-6, 150e-6 // centre of 3x3
	s.TStop = 1.5e-9
	s.TStep = 3e-12
	return s
}

func TestAnalyzeBasics(t *testing.T) {
	r, err := Analyze(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstDroop <= 0 || r.WorstDroop > 0.9 {
		t.Errorf("worst droop %g implausible", r.WorstDroop)
	}
	if r.WorstBounce <= 0 {
		t.Errorf("no ground bounce")
	}
	if r.StaticIR <= 0 || r.StaticIR > r.WorstDroop {
		t.Errorf("static IR %g vs total droop %g: transient must exceed DC", r.StaticIR, r.WorstDroop)
	}
	if r.Dynamic <= 0 {
		t.Errorf("no dynamic (Ldi/dt + charge) component")
	}
	// The worst node should be the burst site (grid centre, index 1,1).
	if !strings.Contains(r.WorstNode, "_1_1") {
		t.Errorf("worst node %q not at the burst site", r.WorstNode)
	}
	if len(r.NodeDroop) != 9 {
		t.Errorf("droop map has %d nodes", len(r.NodeDroop))
	}
	// Droop decays away from the burst: corner below centre.
	if r.NodeDroop["vddx_0_0"] >= r.NodeDroop[r.WorstNode] {
		t.Errorf("corner droop %g not below burst-site droop %g",
			r.NodeDroop["vddx_0_0"], r.NodeDroop[r.WorstNode])
	}
}

func TestDecapSweepMonotone(t *testing.T) {
	spec := fastSpec()
	droops, err := DecapSweep(spec, []float64{0, 2e4, 8e4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(droops); i++ {
		if droops[i] >= droops[i-1] {
			t.Errorf("decap did not reduce droop: %v", droops)
		}
	}
}

func TestPackageComparison(t *testing.T) {
	spec := fastSpec()
	out, err := PackageComparison(spec, map[string]pkgmodel.Connection{
		"flipchip": pkgmodel.FlipChip(),
		"wirebond": pkgmodel.WireBond(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out["wirebond"] <= out["flipchip"] {
		t.Errorf("wire-bond droop %g not above flip-chip %g",
			out["wirebond"], out["flipchip"])
	}
}

func TestAnalyzeValidation(t *testing.T) {
	s := fastSpec()
	s.Bursts = nil
	if _, err := Analyze(s); err == nil {
		t.Errorf("no bursts accepted")
	}
	s = fastSpec()
	s.TStop = 0
	if _, err := Analyze(s); err == nil {
		t.Errorf("zero TStop accepted")
	}
}
