package layoutio

import (
	"bytes"
	"strings"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/grid"
)

const sampleDoc = `{
  "layers": [
    {"name":"M5","z":4e-6,"thickness":0.9e-6,"sheet_rho":0.025,"h_below":1e-6},
    {"name":"M6","z":6e-6,"thickness":1.2e-6,"sheet_rho":0.018,"h_below":1.1e-6}
  ],
  "segments": [
    {"layer":0,"dir":"X","x0":0,"y0":0,"length":1e-3,"width":2e-6,
     "net":"clk","node_a":"a","node_b":"b"},
    {"layer":1,"dir":"Y","x0":0,"y0":0,"length":5e-4,"width":3e-6,
     "net":"GND","node_a":"g0","node_b":"g1"}
  ],
  "vias": [
    {"x":0,"y":0,"layer_lo":0,"layer_hi":1,"resistance":0.5,
     "net":"GND","node_lo":"b","node_hi":"g0"}
  ]
}`

func TestReadSample(t *testing.T) {
	lay, err := Read(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Layers) != 2 || len(lay.Segments) != 2 || len(lay.Vias) != 1 {
		t.Fatalf("counts: %d layers, %d segs, %d vias",
			len(lay.Layers), len(lay.Segments), len(lay.Vias))
	}
	if lay.Segments[0].Dir != geom.DirX || lay.Segments[1].Dir != geom.DirY {
		t.Errorf("directions wrong")
	}
	if lay.Segments[0].Length != 1e-3 {
		t.Errorf("length = %g", lay.Segments[0].Length)
	}
}

func TestRoundTrip(t *testing.T) {
	m, err := grid.BuildPowerGrid(grid.StandardLayers(), grid.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m.Layout); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != len(m.Layout.Segments) || len(back.Vias) != len(m.Layout.Vias) {
		t.Fatalf("round trip lost elements")
	}
	for i := range back.Segments {
		a, b := &back.Segments[i], &m.Layout.Segments[i]
		if *a != *b {
			t.Fatalf("segment %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

// TestPlaneRoundTrip drives a plane with holes and edge rails through
// the wire schema and back: every field must survive, and the parsed
// layout must pass geometry validation.
func TestPlaneRoundTrip(t *testing.T) {
	lay := geom.NewLayout(grid.StandardLayers())
	lay.AddSegment(geom.Segment{
		Layer: 1, Dir: geom.DirX, X0: 0, Y0: 0,
		Length: 1e-3, Width: 2e-6, Net: "sig", NodeA: "s0", NodeB: "s1",
	})
	lay.AddPlane(geom.Plane{
		Layer: 0, X0: 0, Y0: -20e-6, X1: 1e-3, Y1: 20e-6,
		Net: "GND", NodeLeft: "p0", NodeRight: "p1", NodeTop: "pt",
		Holes: []geom.Hole{
			{X0: 2e-4, Y0: -5e-6, X1: 3e-4, Y1: 5e-6},
			{X0: 6e-4, Y0: -8e-6, X1: 7e-4, Y1: 8e-6},
		},
	})
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, lay); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Planes) != 1 {
		t.Fatalf("round trip lost the plane: %d planes", len(back.Planes))
	}
	got, want := &back.Planes[0], &lay.Planes[0]
	if got.Layer != want.Layer || got.X0 != want.X0 || got.Y1 != want.Y1 ||
		got.Net != want.Net || got.NodeLeft != want.NodeLeft ||
		got.NodeRight != want.NodeRight || got.NodeBottom != want.NodeBottom ||
		got.NodeTop != want.NodeTop {
		t.Errorf("plane mismatch: %+v vs %+v", got, want)
	}
	if len(got.Holes) != 2 || got.Holes[0] != want.Holes[0] || got.Holes[1] != want.Holes[1] {
		t.Errorf("holes mismatch: %+v vs %+v", got.Holes, want.Holes)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"layers":[{"name":"M","z":0,"thickness":0,"sheet_rho":1,"h_below":1}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "segments":[{"layer":0,"dir":"Z","x0":0,"y0":0,"length":1,"width":1,
		               "net":"n","node_a":"a","node_b":"b"}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "segments":[{"layer":5,"dir":"X","x0":0,"y0":0,"length":1,"width":1,
		               "net":"n","node_a":"a","node_b":"b"}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "segments":[{"layer":0,"dir":"X","x0":0,"y0":0,"length":0,"width":1,
		               "net":"n","node_a":"a","node_b":"b"}]}`,
		`{"unknown_field": 1}`,
		// Plane rejections: layer out of range, empty extent, all four
		// rails floating, hole outside the plane extent.
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "planes":[{"layer":3,"x0":0,"y0":0,"x1":1e-3,"y1":1e-3,"node_left":"p0"}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "planes":[{"layer":0,"x0":0,"y0":0,"x1":0,"y1":1e-3,"node_left":"p0"}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "planes":[{"layer":0,"x0":0,"y0":0,"x1":1e-3,"y1":1e-3}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "planes":[{"layer":0,"x0":0,"y0":0,"x1":1e-3,"y1":1e-3,"node_left":"p0",
		             "holes":[{"x0":-1e-4,"y0":0,"x1":1e-4,"y1":1e-4}]}]}`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted invalid document", i)
		}
	}
}
