package layoutio

import (
	"bytes"
	"strings"
	"testing"

	"inductance101/internal/geom"
	"inductance101/internal/grid"
)

const sampleDoc = `{
  "layers": [
    {"name":"M5","z":4e-6,"thickness":0.9e-6,"sheet_rho":0.025,"h_below":1e-6},
    {"name":"M6","z":6e-6,"thickness":1.2e-6,"sheet_rho":0.018,"h_below":1.1e-6}
  ],
  "segments": [
    {"layer":0,"dir":"X","x0":0,"y0":0,"length":1e-3,"width":2e-6,
     "net":"clk","node_a":"a","node_b":"b"},
    {"layer":1,"dir":"Y","x0":0,"y0":0,"length":5e-4,"width":3e-6,
     "net":"GND","node_a":"g0","node_b":"g1"}
  ],
  "vias": [
    {"x":0,"y":0,"layer_lo":0,"layer_hi":1,"resistance":0.5,
     "net":"GND","node_lo":"b","node_hi":"g0"}
  ]
}`

func TestReadSample(t *testing.T) {
	lay, err := Read(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Layers) != 2 || len(lay.Segments) != 2 || len(lay.Vias) != 1 {
		t.Fatalf("counts: %d layers, %d segs, %d vias",
			len(lay.Layers), len(lay.Segments), len(lay.Vias))
	}
	if lay.Segments[0].Dir != geom.DirX || lay.Segments[1].Dir != geom.DirY {
		t.Errorf("directions wrong")
	}
	if lay.Segments[0].Length != 1e-3 {
		t.Errorf("length = %g", lay.Segments[0].Length)
	}
}

func TestRoundTrip(t *testing.T) {
	m, err := grid.BuildPowerGrid(grid.StandardLayers(), grid.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m.Layout); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != len(m.Layout.Segments) || len(back.Vias) != len(m.Layout.Vias) {
		t.Fatalf("round trip lost elements")
	}
	for i := range back.Segments {
		a, b := &back.Segments[i], &m.Layout.Segments[i]
		if *a != *b {
			t.Fatalf("segment %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"layers":[{"name":"M","z":0,"thickness":0,"sheet_rho":1,"h_below":1}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "segments":[{"layer":0,"dir":"Z","x0":0,"y0":0,"length":1,"width":1,
		               "net":"n","node_a":"a","node_b":"b"}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "segments":[{"layer":5,"dir":"X","x0":0,"y0":0,"length":1,"width":1,
		               "net":"n","node_a":"a","node_b":"b"}]}`,
		`{"layers":[{"name":"M","z":0,"thickness":1e-6,"sheet_rho":0.1,"h_below":1e-6}],
		  "segments":[{"layer":0,"dir":"X","x0":0,"y0":0,"length":0,"width":1,
		               "net":"n","node_a":"a","node_b":"b"}]}`,
		`{"unknown_field": 1}`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted invalid document", i)
		}
	}
}
