// Package layoutio serializes layouts to and from a small JSON schema,
// so the command-line tools (cmd/inductx, cmd/rlsweep) can work on
// user-provided geometry instead of only generated topologies.
//
// The schema keeps SI units (metres, ohms) and mirrors internal/geom:
//
//	{
//	  "layers": [{"name":"M5","z":4e-6,"thickness":0.9e-6,
//	              "sheet_rho":0.025,"h_below":1e-6}],
//	  "segments": [{"layer":0,"dir":"X","x0":0,"y0":0,"length":1e-3,
//	                "width":2e-6,"net":"clk","node_a":"a","node_b":"b"}],
//	  "planes": [{"layer":0,"x0":0,"y0":-24e-6,"x1":1e-3,"y1":24e-6,
//	              "net":"GND","node_left":"p0","node_right":"p1",
//	              "holes":[{"x0":4e-4,"y0":-4e-6,"x1":6e-4,"y1":4e-6}]}],
//	  "vias": [{"x":0,"y":0,"layer_lo":0,"layer_hi":1,"resistance":0.5,
//	            "net":"VDD","node_lo":"p","node_hi":"q"}]
//	}
package layoutio

import (
	"encoding/json"
	"fmt"
	"io"

	"inductance101/internal/geom"
)

// File is the JSON document root.
type File struct {
	Layers   []LayerJSON   `json:"layers"`
	Segments []SegmentJSON `json:"segments"`
	Planes   []PlaneJSON   `json:"planes,omitempty"`
	Vias     []ViaJSON     `json:"vias,omitempty"`
}

// LayerJSON mirrors geom.Layer.
type LayerJSON struct {
	Name      string  `json:"name"`
	Z         float64 `json:"z"`
	Thickness float64 `json:"thickness"`
	SheetRho  float64 `json:"sheet_rho"`
	HBelow    float64 `json:"h_below"`
}

// SegmentJSON mirrors geom.Segment; Dir is "X" or "Y".
type SegmentJSON struct {
	Layer  int     `json:"layer"`
	Dir    string  `json:"dir"`
	X0     float64 `json:"x0"`
	Y0     float64 `json:"y0"`
	Length float64 `json:"length"`
	Width  float64 `json:"width"`
	Net    string  `json:"net"`
	NodeA  string  `json:"node_a"`
	NodeB  string  `json:"node_b"`
}

// HoleJSON mirrors geom.Hole: a rectangular perforation in absolute
// plane coordinates.
type HoleJSON struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

// PlaneJSON mirrors geom.Plane; the four node_* fields name the edge
// rails (empty = that edge floats, at least one must be set).
type PlaneJSON struct {
	Layer      int        `json:"layer"`
	X0         float64    `json:"x0"`
	Y0         float64    `json:"y0"`
	X1         float64    `json:"x1"`
	Y1         float64    `json:"y1"`
	Net        string     `json:"net,omitempty"`
	NodeLeft   string     `json:"node_left,omitempty"`
	NodeRight  string     `json:"node_right,omitempty"`
	NodeBottom string     `json:"node_bottom,omitempty"`
	NodeTop    string     `json:"node_top,omitempty"`
	Holes      []HoleJSON `json:"holes,omitempty"`
}

// ViaJSON mirrors geom.Via.
type ViaJSON struct {
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	LayerLo    int     `json:"layer_lo"`
	LayerHi    int     `json:"layer_hi"`
	Resistance float64 `json:"resistance"`
	Net        string  `json:"net,omitempty"`
	NodeLo     string  `json:"node_lo"`
	NodeHi     string  `json:"node_hi"`
}

// Read parses a layout document and validates the result.
func Read(r io.Reader) (*geom.Layout, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("layoutio: %w", err)
	}
	return f.ToLayout()
}

// ToLayout converts the document to a validated layout.
func (f *File) ToLayout() (*geom.Layout, error) {
	if len(f.Layers) == 0 {
		return nil, fmt.Errorf("layoutio: no layers")
	}
	layers := make([]geom.Layer, len(f.Layers))
	for i, l := range f.Layers {
		if l.Thickness <= 0 || l.SheetRho <= 0 || l.HBelow <= 0 {
			return nil, fmt.Errorf("layoutio: layer %d (%s) has non-positive thickness/sheet_rho/h_below", i, l.Name)
		}
		layers[i] = geom.Layer{
			Name: l.Name, Index: i, Z: l.Z, Thickness: l.Thickness,
			SheetRho: l.SheetRho, HBelow: l.HBelow,
		}
	}
	lay := geom.NewLayout(layers)
	for i, s := range f.Segments {
		var dir geom.Direction
		switch s.Dir {
		case "X", "x":
			dir = geom.DirX
		case "Y", "y":
			dir = geom.DirY
		default:
			return nil, fmt.Errorf("layoutio: segment %d has dir %q (want X or Y)", i, s.Dir)
		}
		if s.Layer < 0 || s.Layer >= len(layers) {
			return nil, fmt.Errorf("layoutio: segment %d layer %d out of range", i, s.Layer)
		}
		if s.Length <= 0 || s.Width <= 0 {
			return nil, fmt.Errorf("layoutio: segment %d has non-positive length/width", i)
		}
		lay.AddSegment(geom.Segment{
			Layer: s.Layer, Dir: dir, X0: s.X0, Y0: s.Y0,
			Length: s.Length, Width: s.Width,
			Net: s.Net, NodeA: s.NodeA, NodeB: s.NodeB,
		})
	}
	for i, p := range f.Planes {
		if p.Layer < 0 || p.Layer >= len(layers) {
			return nil, fmt.Errorf("layoutio: plane %d layer %d out of range", i, p.Layer)
		}
		if p.X1 <= p.X0 || p.Y1 <= p.Y0 {
			return nil, fmt.Errorf("layoutio: plane %d has empty extent", i)
		}
		gp := geom.Plane{
			Layer: p.Layer, X0: p.X0, Y0: p.Y0, X1: p.X1, Y1: p.Y1,
			Net:      p.Net,
			NodeLeft: p.NodeLeft, NodeRight: p.NodeRight,
			NodeBottom: p.NodeBottom, NodeTop: p.NodeTop,
		}
		for _, h := range p.Holes {
			gp.Holes = append(gp.Holes, geom.Hole{X0: h.X0, Y0: h.Y0, X1: h.X1, Y1: h.Y1})
		}
		lay.AddPlane(gp)
	}
	for _, v := range f.Vias {
		lay.AddVia(geom.Via{
			X: v.X, Y: v.Y, LayerLo: v.LayerLo, LayerHi: v.LayerHi,
			Resistance: v.Resistance, Net: v.Net,
			NodeLo: v.NodeLo, NodeHi: v.NodeHi,
		})
	}
	if err := lay.Validate(); err != nil {
		return nil, fmt.Errorf("layoutio: %w", err)
	}
	return lay, nil
}

// Write serializes a layout as indented JSON.
func Write(w io.Writer, lay *geom.Layout) error {
	f := FromLayout(lay)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// FromLayout converts a layout into the document form.
func FromLayout(lay *geom.Layout) *File {
	f := &File{}
	for _, l := range lay.Layers {
		f.Layers = append(f.Layers, LayerJSON{
			Name: l.Name, Z: l.Z, Thickness: l.Thickness,
			SheetRho: l.SheetRho, HBelow: l.HBelow,
		})
	}
	for i := range lay.Segments {
		s := &lay.Segments[i]
		f.Segments = append(f.Segments, SegmentJSON{
			Layer: s.Layer, Dir: s.Dir.String(), X0: s.X0, Y0: s.Y0,
			Length: s.Length, Width: s.Width,
			Net: s.Net, NodeA: s.NodeA, NodeB: s.NodeB,
		})
	}
	for i := range lay.Planes {
		p := &lay.Planes[i]
		pj := PlaneJSON{
			Layer: p.Layer, X0: p.X0, Y0: p.Y0, X1: p.X1, Y1: p.Y1,
			Net:      p.Net,
			NodeLeft: p.NodeLeft, NodeRight: p.NodeRight,
			NodeBottom: p.NodeBottom, NodeTop: p.NodeTop,
		}
		for _, h := range p.Holes {
			pj.Holes = append(pj.Holes, HoleJSON{X0: h.X0, Y0: h.Y0, X1: h.X1, Y1: h.Y1})
		}
		f.Planes = append(f.Planes, pj)
	}
	for i := range lay.Vias {
		v := &lay.Vias[i]
		f.Vias = append(f.Vias, ViaJSON{
			X: v.X, Y: v.Y, LayerLo: v.LayerLo, LayerHi: v.LayerHi,
			Resistance: v.Resistance, Net: v.Net,
			NodeLo: v.NodeLo, NodeHi: v.NodeHi,
		})
	}
	return f
}
