// Package loopmodel implements the paper's §5 loop inductance approach:
// a port is defined at the driving gate, the receiver end is shorted to
// the local ground (inductance extraction is independent of
// capacitance), loop impedance is extracted with the FastHenry-style
// solver over frequency, and a compact ladder circuit (Krauter &
// Mehrotra, DAC 1998) models the frequency dependence of loop R and L.
// The interconnect and load capacitance is then lumped at the receiver
// and the whole thing simulated as an ordinary netlist.
package loopmodel

import (
	"fmt"
	"math"

	"inductance101/internal/circuit"
	"inductance101/internal/fasthenry"
	"inductance101/internal/matrix"
)

// Section is one R parallel-L rung of the ladder.
type Section struct {
	R, L float64
}

// Ladder is the compact frequency-dependent loop model:
// Z(ω) = R0 + jωL0 + Σ_k jωL_k R_k / (R_k + jωL_k).
//
// At low frequency Z → R0 + jω(L0 + ΣL_k) (current takes all paths);
// at high frequency Z → (R0 + ΣR_k) + jωL0 (current crowds into the
// low-inductance path) — exactly the R-up/L-down trend of Fig. 3(b).
type Ladder struct {
	R0, L0   float64
	Sections []Section
}

// Z evaluates the ladder impedance at frequency f (Hz).
func (ld Ladder) Z(f float64) complex128 {
	jw := complex(0, 2*math.Pi*f)
	z := complex(ld.R0, 0) + jw*complex(ld.L0, 0)
	for _, s := range ld.Sections {
		zl := jw * complex(s.L, 0)
		zr := complex(s.R, 0)
		if s.R == 0 || s.L == 0 {
			continue
		}
		z += zl * zr / (zl + zr)
	}
	return z
}

// RL returns the series-equivalent R(f) and L(f) of the ladder.
func (ld Ladder) RL(f float64) (r, l float64) {
	return fasthenry.RL(ld.Z(f), f)
}

// LowFreqL returns L0 + sum L_k, the DC-limit loop inductance.
func (ld Ladder) LowFreqL() float64 {
	l := ld.L0
	for _, s := range ld.Sections {
		l += s.L
	}
	return l
}

// HighFreqR returns R0 + sum R_k, the fully-crowded loop resistance.
func (ld Ladder) HighFreqR() float64 {
	r := ld.R0
	for _, s := range ld.Sections {
		r += s.R
	}
	return r
}

// FitTwoPoint fits the single-section ladder (R0, L0, R1, L1) exactly
// through two extracted impedances, the construction of [5] as described
// in the paper's §5. f1 < f2 required.
//
// With a = R1/L1, the two-point data gives the closed form
// a = (R(f2)-R(f1)) / (L(f1)-L(f2)); the remaining parameters follow by
// substitution.
func FitTwoPoint(z1 complex128, f1 float64, z2 complex128, f2 float64) (Ladder, error) {
	if f1 <= 0 || f2 <= f1 {
		return Ladder{}, fmt.Errorf("loopmodel: need 0 < f1 < f2, got %g, %g", f1, f2)
	}
	r1v, l1v := fasthenry.RL(z1, f1)
	r2v, l2v := fasthenry.RL(z2, f2)
	dR := r2v - r1v
	dL := l1v - l2v
	if dR <= 0 || dL <= 0 {
		// No measurable frequency dependence: degenerate single RL.
		return Ladder{R0: r1v, L0: l1v}, nil
	}
	w1 := 2 * math.Pi * f1
	w2 := 2 * math.Pi * f2
	a := dR / dL
	den1 := a*a + w1*w1
	den2 := a*a + w2*w2
	// dR = R1 (w2^2/den2 - w1^2/den1)
	rr := w2*w2/den2 - w1*w1/den1
	if rr <= 0 {
		return Ladder{R0: r1v, L0: l1v}, nil
	}
	rSec := dR / rr
	lSec := rSec / a
	r0 := r1v - rSec*w1*w1/den1
	l0 := l1v - lSec*a*a/den1
	if r0 < 0 {
		r0 = 0
	}
	if l0 < 0 {
		l0 = 0
	}
	return Ladder{R0: r0, L0: l0, Sections: []Section{{R: rSec, L: lSec}}}, nil
}

// FitSections fits an n-section ladder to a full extraction sweep by
// linear least squares: section corner rates a_k = R_k/L_k are pinned
// log-spaced across the sweep, leaving R(ω) and L(ω) linear in the
// unknowns (R0, L0, R_1..R_n). Negative solutions are clamped to zero
// (passive ladders only).
func FitSections(points []fasthenry.Point, n int) (Ladder, error) {
	if len(points) < n+2 {
		return Ladder{}, fmt.Errorf("loopmodel: %d points cannot fit %d sections", len(points), n)
	}
	if n < 1 {
		return Ladder{}, fmt.Errorf("loopmodel: need at least one section")
	}
	fLo := points[0].Freq
	fHi := points[len(points)-1].Freq
	if fLo <= 0 || fHi <= fLo {
		return Ladder{}, fmt.Errorf("loopmodel: bad sweep range")
	}
	corners := make([]float64, n)
	for k := 0; k < n; k++ {
		frac := (float64(k) + 0.5) / float64(n)
		corners[k] = 2 * math.Pi * fLo * math.Pow(fHi/fLo, frac)
	}
	// Rows: for each point, an R equation and a (scaled) L equation.
	// Unknowns: [R0, L0, R_1..R_n].
	// R(w) = R0 + sum R_k w^2/(a_k^2+w^2)
	// L(w) = L0 + sum (R_k/a_k) a_k^2/(a_k^2+w^2)
	// Scale the L rows by a reference rate so both halves have
	// comparable magnitude.
	wRef := 2 * math.Pi * math.Sqrt(fLo*fHi)
	rows := len(points) * 2
	cols := 2 + n
	A := matrix.NewDense(rows, cols)
	b := make([]float64, rows)
	for i, p := range points {
		w := 2 * math.Pi * p.Freq
		// R row.
		A.Set(2*i, 0, 1)
		for k, a := range corners {
			A.Set(2*i, 2+k, w*w/(a*a+w*w))
		}
		b[2*i] = p.R
		// L row scaled by wRef.
		A.Set(2*i+1, 1, wRef)
		for k, a := range corners {
			A.Set(2*i+1, 2+k, wRef/a*(a*a)/(a*a+w*w))
		}
		b[2*i+1] = p.L * wRef
	}
	// Non-negative solve by active-set elimination: solve unconstrained
	// least squares; while any section resistance comes out negative,
	// remove the most negative section's column and re-solve. (A full
	// Lawson–Hanson NNLS is unnecessary for these small, well-scaled
	// systems.)
	active := make([]int, n)
	for k := range active {
		active[k] = k
	}
	for {
		cols := 2 + len(active)
		Aa := matrix.NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			Aa.Set(i, 0, A.At(i, 0))
			Aa.Set(i, 1, A.At(i, 1))
			for j, k := range active {
				Aa.Set(i, 2+j, A.At(i, 2+k))
			}
		}
		x, err := matrix.LeastSquares(Aa, b)
		if err != nil {
			return Ladder{}, fmt.Errorf("loopmodel: fit failed: %w", err)
		}
		worst, worstJ := 0.0, -1
		for j := range active {
			if x[2+j] < worst {
				worst, worstJ = x[2+j], j
			}
		}
		if worstJ >= 0 && len(active) > 1 {
			active = append(active[:worstJ], active[worstJ+1:]...)
			continue
		}
		ld := Ladder{R0: math.Max(x[0], 0), L0: math.Max(x[1], 0)}
		for j, k := range active {
			r := x[2+j]
			if r <= 0 {
				continue
			}
			ld.Sections = append(ld.Sections, Section{R: r, L: r / corners[k]})
		}
		return ld, nil
	}
}

// MaxRelErr evaluates the worst relative error of the ladder against a
// sweep, separately for R and L.
func (ld Ladder) MaxRelErr(points []fasthenry.Point) (errR, errL float64) {
	for _, p := range points {
		r, l := ld.RL(p.Freq)
		if p.R != 0 {
			errR = math.Max(errR, math.Abs(r-p.R)/math.Abs(p.R))
		}
		if p.L != 0 {
			errL = math.Max(errL, math.Abs(l-p.L)/math.Abs(p.L))
		}
	}
	return errR, errL
}

// Stamp adds the ladder between nodes a and b of a netlist, creating
// internal nodes prefixed with prefix. Returns the inductor indices so
// callers can probe currents.
func (ld Ladder) Stamp(n *circuit.Netlist, prefix, a, b string) []int {
	var inductors []int
	cur := a
	next := prefix + ".n0"
	if ld.R0 > 0 {
		n.AddR(prefix+".r0", cur, next, ld.R0)
		cur, next = next, fmt.Sprintf("%s.n%d", prefix, 1)
	}
	nodeCount := 1
	if ld.L0 > 0 {
		target := next
		if len(ld.Sections) == 0 {
			target = b
		}
		inductors = append(inductors, n.AddL(prefix+".l0", cur, target, ld.L0))
		cur = target
		nodeCount++
		next = fmt.Sprintf("%s.n%d", prefix, nodeCount)
	}
	for i, s := range ld.Sections {
		target := next
		if i == len(ld.Sections)-1 {
			target = b
		}
		n.AddR(fmt.Sprintf("%s.rs%d", prefix, i), cur, target, s.R)
		inductors = append(inductors, n.AddL(fmt.Sprintf("%s.ls%d", prefix, i), cur, target, s.L))
		cur = target
		nodeCount++
		next = fmt.Sprintf("%s.n%d", prefix, nodeCount)
	}
	if cur != b {
		// Ladder was fully degenerate (no elements): tie with a tiny R.
		n.AddR(prefix+".rshort", cur, b, 1e-6)
	}
	return inductors
}

// SingleFrequencyRL reduces an extraction at one frequency to a plain
// series R + L pair — the simplest loop netlist of Fig. 3(c).
func SingleFrequencyRL(z complex128, f float64) (r, l float64) {
	return fasthenry.RL(z, f)
}
