package loopmodel

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"inductance101/internal/circuit"
	"inductance101/internal/fasthenry"
	"inductance101/internal/geom"
	"inductance101/internal/sim"
)

// ladderFor builds a known ladder to generate synthetic "extraction"
// data.
func refLadder() Ladder {
	return Ladder{R0: 5, L0: 1.2e-9, Sections: []Section{{R: 8, L: 2.5e-9}}}
}

func TestFitTwoPointRecoversExactLadder(t *testing.T) {
	ref := refLadder()
	f1, f2 := 2e8, 2e10
	ld, err := FitTwoPoint(ref.Z(f1), f1, ref.Z(f2), f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.Sections) != 1 {
		t.Fatalf("expected one section, got %d", len(ld.Sections))
	}
	for _, c := range []struct{ got, want float64 }{
		{ld.R0, ref.R0}, {ld.L0, ref.L0},
		{ld.Sections[0].R, ref.Sections[0].R},
		{ld.Sections[0].L, ref.Sections[0].L},
	} {
		if math.Abs(c.got-c.want)/c.want > 1e-9 {
			t.Errorf("fit parameter %g, want %g", c.got, c.want)
		}
	}
	// Interpolated frequencies must match too (same model class).
	for _, f := range []float64{5e8, 2e9, 8e9} {
		if cmplx.Abs(ld.Z(f)-ref.Z(f))/cmplx.Abs(ref.Z(f)) > 1e-9 {
			t.Errorf("fit deviates at %g Hz", f)
		}
	}
}

func TestFitTwoPointDegenerate(t *testing.T) {
	// Frequency-independent impedance: plain RL.
	z := func(f float64) complex128 { return complex(10, 2*math.Pi*f*1e-9) }
	ld, err := FitTwoPoint(z(1e9), 1e9, z(1e10), 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.Sections) != 0 || math.Abs(ld.R0-10) > 1e-9 || math.Abs(ld.L0-1e-9) > 1e-21 {
		t.Errorf("degenerate fit = %+v", ld)
	}
	if _, err := FitTwoPoint(0, 1e10, 0, 1e9); err == nil {
		t.Errorf("inverted frequency order accepted")
	}
}

func TestLadderAsymptotes(t *testing.T) {
	ld := refLadder()
	rLo, lLo := ld.RL(1e3)
	rHi, lHi := ld.RL(1e15)
	if math.Abs(rLo-ld.R0)/ld.R0 > 1e-6 {
		t.Errorf("low-f R = %g, want %g", rLo, ld.R0)
	}
	if math.Abs(lLo-ld.LowFreqL())/ld.LowFreqL() > 1e-6 {
		t.Errorf("low-f L = %g, want %g", lLo, ld.LowFreqL())
	}
	if math.Abs(rHi-ld.HighFreqR())/ld.HighFreqR() > 1e-6 {
		t.Errorf("high-f R = %g, want %g", rHi, ld.HighFreqR())
	}
	if math.Abs(lHi-ld.L0)/ld.L0 > 1e-6 {
		t.Errorf("high-f L = %g, want %g", lHi, ld.L0)
	}
}

func TestLadderMonotonicityProperty(t *testing.T) {
	// R(f) non-decreasing, L(f) non-increasing for any passive ladder.
	f := func(r0u, l0u, r1u, l1u uint16) bool {
		ld := Ladder{
			R0: 0.1 + float64(r0u)/1000,
			L0: 1e-10 + float64(l0u)*1e-12,
			Sections: []Section{{
				R: 0.1 + float64(r1u)/1000,
				L: 1e-10 + float64(l1u)*1e-12,
			}},
		}
		prevR, prevL := ld.RL(1e6)
		for _, fr := range fasthenry.LogSpace(1e7, 1e12, 11) {
			r, l := ld.RL(fr)
			if r < prevR*(1-1e-9) || l > prevL*(1+1e-9) {
				return false
			}
			prevR, prevL = r, l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitSections(t *testing.T) {
	// A 3-section reference fit with 3 sections over a sweep: small error.
	ref := Ladder{R0: 3, L0: 1e-9, Sections: []Section{
		{R: 2, L: 4e-9}, {R: 5, L: 1e-9}, {R: 8, L: 0.3e-9},
	}}
	var pts []fasthenry.Point
	for _, f := range fasthenry.LogSpace(1e8, 1e11, 25) {
		z := ref.Z(f)
		r, l := fasthenry.RL(z, f)
		pts = append(pts, fasthenry.Point{Freq: f, Z: z, R: r, L: l})
	}
	ld, err := FitSections(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	errR, errL := ld.MaxRelErr(pts)
	if errR > 0.05 || errL > 0.05 {
		t.Errorf("multi-section fit errors: R %g, L %g", errR, errL)
	}
	if _, err := FitSections(pts[:2], 4); err == nil {
		t.Errorf("underdetermined fit accepted")
	}
	if _, err := FitSections(pts, 0); err == nil {
		t.Errorf("zero sections accepted")
	}
}

func TestStampMatchesLadderImpedance(t *testing.T) {
	// AC analysis of the stamped netlist must reproduce Ladder.Z.
	for _, ld := range []Ladder{
		refLadder(),
		{R0: 5, L0: 1.2e-9}, // no sections
		{R0: 0, L0: 1e-9, Sections: []Section{{2, 1e-9}}}, // no R0
		{R0: 4, L0: 0, Sections: []Section{{2, 1e-9}}},    // no L0
		{R0: 0, L0: 0, Sections: []Section{{2, 1e-9}}},    // bare section
	} {
		n := circuit.New()
		vi := n.AddV("v", "p", "0", circuit.DC(0))
		ld.Stamp(n, "lad", "p", "0")
		for _, f := range []float64{1e8, 1e9, 2e10} {
			z, err := sim.InputImpedance(n, vi, f)
			if err != nil {
				t.Fatalf("ladder %+v: %v", ld, err)
			}
			want := ld.Z(f)
			if cmplx.Abs(z-want)/cmplx.Abs(want) > 1e-6 {
				t.Errorf("ladder %+v at %g Hz: stamped Z %v, want %v", ld, f, z, want)
			}
		}
	}
}

func TestEndToEndFitFromFastHenry(t *testing.T) {
	// Extract a real structure, fit at two frequencies, and verify the
	// ladder tracks the solver across the band (the Fig. 3(b)/(d)
	// story). Wide conductors so R(f) actually moves.
	l := geom.NewLayout([]geom.Layer{
		{Name: "M6", Z: 5e-6, Thickness: 1.2e-6, SheetRho: 0.018, HBelow: 1.2e-6},
	})
	sig := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, Length: 3000e-6, Width: 6e-6,
		Net: "clk", NodeA: "s0", NodeB: "s1"})
	g1 := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, Y0: -30e-6, Length: 3000e-6, Width: 6e-6,
		Net: "gnd", NodeA: "g0", NodeB: "g1"})
	g2 := l.AddSegment(geom.Segment{Layer: 0, Dir: geom.DirX, Y0: 12e-6, Length: 3000e-6, Width: 2e-6,
		Net: "gnd", NodeA: "h0", NodeB: "h1"})
	s, err := fasthenry.NewSolver(l, []int{sig, g1, g2},
		fasthenry.Port{Plus: "s0", Minus: "g0"},
		[][2]string{{"s1", "g1"}, {"g1", "h1"}, {"g0", "h0"}},
		2e10, fasthenry.Options{MaxPerSide: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.Sweep(fasthenry.LogSpace(1e8, 2e10, 9))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := FitTwoPoint(pts[0].Z, pts[0].Freq, pts[len(pts)-1].Z, pts[len(pts)-1].Freq)
	if err != nil {
		t.Fatal(err)
	}
	errR, errL := ld.MaxRelErr(pts)
	// One section through two points: mid-band error should be modest.
	if errR > 0.25 || errL > 0.10 {
		t.Errorf("two-point ladder errors across band: R %g, L %g", errR, errL)
	}
	// And the 4-section LS fit must do at least as well on L.
	ld4, err := FitSections(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	errR4, errL4 := ld4.MaxRelErr(pts)
	if errL4 > errL+1e-9 && errR4 > errR+1e-9 {
		t.Errorf("4-section fit (R %g, L %g) no better than 1-section (R %g, L %g)",
			errR4, errL4, errR, errL)
	}
}
