// Package sweep implements adaptive frequency sweeps: instead of one
// exact complex solve per requested frequency, a handful of adaptively
// chosen anchor frequencies are solved exactly and the rest are filled
// by a barycentric rational (AAA-style) fit — the responses R(f), L(f),
// Z(f) of the extraction and AC paths are smooth low-order rational
// functions of jω, so dense sweeps (hundreds of points per decade)
// collapse to a few dozen solves. The fitter cross-validates itself and
// falls back to exact per-point solves when the response refuses to fit.
package sweep

import "fmt"

// Mode selects how a frequency sweep executes.
type Mode int

const (
	// ModeAuto solves exactly for short sweeps and switches to the
	// adaptive fitter at AutoThreshold requested points, where anchor
	// solves plus interpolation win by a wide margin.
	ModeAuto Mode = iota
	// ModeExact solves every requested frequency point.
	ModeExact
	// ModeAdaptive always runs the anchor-and-fit engine (it still
	// degrades to exact solves when the response refuses to fit).
	ModeAdaptive
)

// AutoThreshold is the requested-point count at which ModeAuto switches
// to the adaptive engine. Below it a sweep is too short for the fit to
// amortize its minimum anchor set.
const AutoThreshold = 64

// DefaultTol is the relative interpolation tolerance used when a
// caller leaves the sweep tolerance unset.
const DefaultTol = 1e-6

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeAdaptive:
		return "adaptive"
	default:
		return "auto"
	}
}

// ParseMode maps the CLI/config spelling to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "exact":
		return ModeExact, nil
	case "adaptive":
		return ModeAdaptive, nil
	}
	return ModeAuto, fmt.Errorf("sweep: unknown sweep mode %q (want exact, adaptive or auto)", s)
}

// Adapt reports whether a sweep over n requested points should run the
// adaptive engine under the given mode.
func (m Mode) Adapt(n int) bool {
	switch m {
	case ModeAdaptive:
		return true
	case ModeAuto:
		return n >= AutoThreshold
	default:
		return false
	}
}
