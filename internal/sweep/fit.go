package sweep

import (
	"math"
	"math/cmplx"

	"inductance101/internal/matrix"
)

// fit is a barycentric rational interpolant r(z) = N(z)/D(z) with
// support nodes z, values f and weights w. By construction r(z_k) = f_k
// for any nonzero weights; the weight choice picks which rational
// function passes through the nodes.
type fit struct {
	z, f, w []complex128
}

func (ft *fit) eval(z complex128) complex128 {
	var num, den complex128
	for k := range ft.z {
		d := z - ft.z[k]
		if d == 0 {
			return ft.f[k]
		}
		t := ft.w[k] / d
		num += t * ft.f[k]
		den += t
	}
	if den == 0 {
		return cmplx.Inf()
	}
	return num / den
}

// aaaFit builds an AAA rational approximation of the samples (zs, vs):
// support points are chosen greedily at the worst-fit sample, and after
// each addition the barycentric weights are recomputed as the smallest
// singular vector of the Loewner matrix over the remaining (non-support)
// samples — the standard AAA least-squares linearization. The loop stops
// when the residual on the non-support samples drops below tol relative
// to the largest sample magnitude, or maxSupport is reached. ok reports
// whether that residual target was met.
func aaaFit(zs, vs []complex128, tol float64, maxSupport int) (ft *fit, ok bool) {
	n := len(zs)
	if maxSupport >= n {
		maxSupport = n - 1
	}
	fscale := 0.0
	var mean complex128
	for _, v := range vs {
		if a := cmplx.Abs(v); a > fscale {
			fscale = a
		}
		mean += v
	}
	mean /= complex(float64(n), 0)
	if fscale == 0 {
		// Identically zero response: a constant fit is exact.
		return &fit{z: zs[:1], f: vs[:1], w: []complex128{1}}, true
	}

	ft = &fit{}
	inSupport := make([]bool, n)
	// Residual of the current fit at every sample; the constant mean
	// seeds the first pick.
	resid := make([]float64, n)
	for i, v := range vs {
		resid[i] = cmplx.Abs(v - mean)
	}
	for len(ft.z) < maxSupport {
		worst, werr := -1, tol*fscale
		for i := range resid {
			if !inSupport[i] && resid[i] > werr {
				worst, werr = i, resid[i]
			}
		}
		if worst < 0 {
			return ft, true // all non-support samples within tolerance
		}
		inSupport[worst] = true
		ft.z = append(ft.z, zs[worst])
		ft.f = append(ft.f, vs[worst])
		ft.w = loewnerWeights(zs, vs, inSupport, ft)
		for i := range resid {
			if inSupport[i] {
				resid[i] = 0
				continue
			}
			resid[i] = cmplx.Abs(vs[i] - ft.eval(zs[i]))
		}
	}
	worstLeft := 0.0
	for i, r := range resid {
		if !inSupport[i] && r > worstLeft {
			worstLeft = r
		}
	}
	return ft, worstLeft <= tol*fscale
}

// loewnerWeights computes the AAA weight vector for the current support
// set: the smallest singular vector of the Loewner matrix L with
// L[i][k] = (F_i - f_k) / (z_i - z_k) over non-support rows i and
// support columns k, found by inverse iteration on the ridge-stabilized
// normal matrix L^H L (tiny — at most maxSupport square). Falls back to
// uniform weights (still interpolatory) when the iteration cannot run.
func loewnerWeights(zs, vs []complex128, inSupport []bool, ft *fit) []complex128 {
	k := len(ft.z)
	uniform := make([]complex128, k)
	for i := range uniform {
		uniform[i] = 1
	}
	rows := make([][]complex128, 0, len(zs)-k)
	for i := range zs {
		if inSupport[i] {
			continue
		}
		row := make([]complex128, k)
		for c := 0; c < k; c++ {
			row[c] = (vs[i] - ft.f[c]) / (zs[i] - ft.z[c])
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return uniform
	}
	a := matrix.NewCDense(k, k)
	for _, row := range rows {
		for r := 0; r < k; r++ {
			cr := cmplx.Conj(row[r])
			for c := 0; c < k; c++ {
				a.Add(r, c, cr*row[c])
			}
		}
	}
	ridge := 0.0
	for i := 0; i < k; i++ {
		ridge += real(a.At(i, i))
	}
	ridge = ridge/float64(k)*1e-14 + 1e-300
	for i := 0; i < k; i++ {
		a.Add(i, i, complex(ridge, 0))
	}
	lu, err := matrix.FactorComplexLU(a)
	if err != nil {
		return uniform
	}
	w := make([]complex128, k)
	inv := complex(1/math.Sqrt(float64(k)), 0)
	for i := range w {
		w[i] = inv
	}
	for sweep := 0; sweep < 4; sweep++ {
		nw, err := lu.Solve(w)
		if err != nil {
			return uniform
		}
		nrm := 0.0
		for _, v := range nw {
			nrm += real(v)*real(v) + imag(v)*imag(v)
		}
		nrm = math.Sqrt(nrm)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			return uniform
		}
		s := complex(1/nrm, 0)
		for i := range nw {
			nw[i] *= s
		}
		w = nw
	}
	return w
}
