package sweep

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Options tunes the adaptive engine. The zero value means defaults.
type Options struct {
	// Tol is the relative interpolation tolerance (0 = DefaultTol).
	// Interpolated values target |r(f) - exact(f)| <= Tol * |exact(f)|.
	Tol float64
	// MinAnchors is the initial uniformly spread anchor count (0 = 9).
	MinAnchors int
	// MaxAnchors caps the anchor solves before the engine gives up and
	// falls back to exact per-point solves (0 = len(fs)/4 clamped to
	// [2*MinAnchors, 64]).
	MaxAnchors int
}

// Result is an adaptive sweep outcome. Values holds the response at
// every requested frequency, exact where Solved is true and rational-
// interpolated elsewhere.
type Result struct {
	Values []complex128
	Solved []bool
	// Anchors counts the exact solves the fit itself requested (in a
	// fallback the remaining points are solved too, but were never
	// anchors).
	Anchors int
	// AnchorIdx lists the anchor indices in solve order — diagnostics
	// for verbose CLIs and benches.
	AnchorIdx []int
	// Fallback reports that the response refused to fit (or the sweep
	// was too short to bother) and every point was solved exactly.
	Fallback bool
	// MaxCV is the final cross-validated relative error estimate the
	// fit was accepted at (0 when Fallback).
	MaxCV float64
}

// cvSafety shrinks the acceptance threshold below the user tolerance:
// the cross-validation residual is an estimate, not a bound.
const cvSafety = 0.5

// Adaptive sweeps the ascending frequencies fs by solving a few anchor
// points exactly — through solve, which receives indices into fs and
// returns the exact complex response at each — and fitting a barycentric
// rational interpolant over them. The refine loop evaluates two fits
// (one trained on all anchors, one on half) everywhere, solves a new
// anchor where they disagree most, and accepts once the worst
// cross-validated relative residual is safely below opt.Tol. Sweeps too
// short to amortize the fit, and responses that still disagree at
// MaxAnchors anchors, are solved exactly point by point (Fallback).
func Adaptive(fs []float64, opt Options, solve func(idxs []int) ([]complex128, error)) (Result, error) {
	n := len(fs)
	res := Result{Values: make([]complex128, n), Solved: make([]bool, n)}
	if n == 0 {
		return res, nil
	}
	for i := 1; i < n; i++ {
		if fs[i] < fs[i-1] {
			return res, fmt.Errorf("sweep: frequencies not in ascending order")
		}
	}
	tol := opt.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	if tol < 0 || math.IsNaN(tol) {
		return res, fmt.Errorf("sweep: tolerance must be > 0, got %g", opt.Tol)
	}

	// Representatives: duplicate frequencies share one solve/fit slot.
	rep := make([]int, n)
	uniq := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && fs[i] == fs[i-1] {
			rep[i] = rep[i-1]
			continue
		}
		rep[i] = i
		uniq = append(uniq, i)
	}

	minA := opt.MinAnchors
	if minA <= 0 {
		minA = 9
	}
	if minA < 3 {
		minA = 3
	}
	maxA := opt.MaxAnchors
	if maxA <= 0 {
		maxA = len(uniq) / 4
		if maxA < 2*minA {
			maxA = 2 * minA
		}
		if maxA > 64 {
			maxA = 64
		}
	}

	solveAll := func() (Result, error) {
		vals, err := solve(uniq)
		if err != nil {
			return res, err
		}
		if len(vals) != len(uniq) {
			return res, fmt.Errorf("sweep: solver returned %d values for %d points", len(vals), len(uniq))
		}
		for k, i := range uniq {
			res.Values[i] = vals[k]
			res.Solved[i] = true
		}
		expand(res.Values, res.Solved, rep)
		res.Fallback = true
		return res, nil
	}
	if len(uniq) < 2*minA {
		return solveAll()
	}

	fmax := fs[n-1]
	if fmax == 0 {
		fmax = 1
	}
	zOf := func(i int) complex128 { return complex(fs[i]/fmax, 0) }

	// Initial anchors: uniform over the unique points, endpoints
	// included so the fit never extrapolates.
	solvedSet := make(map[int]bool, maxA)
	var order []int
	for k := 0; k < minA; k++ {
		i := uniq[k*(len(uniq)-1)/(minA-1)]
		if !solvedSet[i] {
			solvedSet[i] = true
			order = append(order, i)
		}
	}
	vals := make(map[int]complex128, maxA)
	doSolve := func(idxs []int) error {
		out, err := solve(idxs)
		if err != nil {
			return err
		}
		if len(out) != len(idxs) {
			return fmt.Errorf("sweep: solver returned %d values for %d points", len(out), len(idxs))
		}
		for k, i := range idxs {
			vals[i] = out[k]
		}
		return nil
	}
	if err := doSolve(order); err != nil {
		return res, err
	}

	var ft *fit
	for {
		solved := make([]int, 0, len(vals))
		for i := range vals {
			solved = append(solved, i)
		}
		sort.Ints(solved)
		zs := make([]complex128, len(solved))
		vv := make([]complex128, len(solved))
		fscale := 0.0
		for k, i := range solved {
			zs[k], vv[k] = zOf(i), vals[i]
			if a := cmplx.Abs(vv[k]); a > fscale {
				fscale = a
			}
		}
		floor := fscale * 1e-12
		innerTol := tol * cvSafety * 0.2

		ft, _ = aaaFit(zs, vv, innerTol, 40)
		// Cross-validation fit: trained on alternate anchors only, so
		// its agreement with the full fit on the held-out anchors and
		// the unsolved points measures real generalization.
		tz := make([]complex128, 0, (len(solved)+1)/2)
		tv := make([]complex128, 0, (len(solved)+1)/2)
		for k := range solved {
			if k%2 == 0 || k == len(solved)-1 {
				tz = append(tz, zs[k])
				tv = append(tv, vv[k])
			}
		}
		ft2, _ := aaaFit(tz, tv, innerTol, 40)

		maxCV, next, nextErr := 0.0, -1, 0.0
		for k, i := range solved {
			if k%2 == 0 || k == len(solved)-1 {
				continue
			}
			e := relErr(ft2.eval(zs[k]), vals[i], floor)
			if e > maxCV {
				maxCV = e
			}
		}
		for _, i := range uniq {
			if _, ok := vals[i]; ok {
				continue
			}
			z := zOf(i)
			v1 := ft.eval(z)
			e := relErr(v1, ft2.eval(z), floor)
			if e > maxCV {
				maxCV = e
			}
			if e > nextErr {
				next, nextErr = i, e
			}
		}
		res.MaxCV = maxCV
		if maxCV <= tol*cvSafety || next < 0 {
			break
		}
		if len(vals) >= maxA {
			res.Anchors = len(vals)
			res.AnchorIdx = order
			rest := make([]int, 0, len(uniq)-len(vals))
			for _, i := range uniq {
				if _, ok := vals[i]; !ok {
					rest = append(rest, i)
				}
			}
			if err := doSolve(rest); err != nil {
				return res, err
			}
			for i, v := range vals {
				res.Values[i] = v
				res.Solved[i] = true
			}
			expand(res.Values, res.Solved, rep)
			res.Fallback = true
			res.MaxCV = 0
			return res, nil
		}
		if err := doSolve([]int{next}); err != nil {
			return res, err
		}
		order = append(order, next)
	}

	res.Anchors = len(vals)
	res.AnchorIdx = order
	for i, v := range vals {
		res.Values[i] = v
		res.Solved[i] = true
	}
	for _, i := range uniq {
		if !res.Solved[i] {
			res.Values[i] = ft.eval(zOf(i))
		}
	}
	expand(res.Values, res.Solved, rep)
	return res, nil
}

func relErr(got, want complex128, floor float64) float64 {
	den := cmplx.Abs(want)
	if den < floor {
		den = floor
	}
	if den == 0 {
		return 0
	}
	e := cmplx.Abs(got-want) / den
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e
}

// expand copies representative values onto duplicate-frequency slots.
func expand(values []complex128, solved []bool, rep []int) {
	for i, r := range rep {
		if r != i {
			values[i] = values[r]
			solved[i] = solved[r]
		}
	}
}
