package sweep

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

func logGrid(f0, f1 float64, n int) []float64 {
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = f0 * math.Pow(f1/f0, float64(i)/float64(n-1))
	}
	return fs
}

func linGrid(f0, f1 float64, n int) []float64 {
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = f0 + (f1-f0)*float64(i)/float64(n-1)
	}
	return fs
}

// exactSolver adapts a closed-form response to the batch-solve
// signature and counts the solves it performs.
type exactSolver struct {
	fs    []float64
	f     func(float64) complex128
	calls int
	mu    sync.Mutex
}

func (s *exactSolver) solve(idxs []int) ([]complex128, error) {
	s.mu.Lock()
	s.calls += len(idxs)
	s.mu.Unlock()
	out := make([]complex128, len(idxs))
	for k, i := range idxs {
		out[k] = s.f(s.fs[i])
	}
	return out, nil
}

// rlResponse is the physical shape of the extraction paths: a smooth
// skin-effect-style R(f) + jωL(f) impedance (low-order rational in jω).
func rlResponse(f float64) complex128 {
	w := 2 * math.Pi * f
	s := complex(0, w)
	// Two-branch ladder: R1 + sL1 in parallel with R2 + sL2 — the
	// classic skin-effect equivalent circuit.
	z1 := complex(1.0, 0) + s*3e-9
	z2 := complex(8.0, 0) + s*0.5e-9
	return z1 * z2 / (z1 + z2)
}

func TestAdaptiveMatchesExactSmooth(t *testing.T) {
	for _, grid := range [][]float64{
		logGrid(1e3, 1e9, 400),
		linGrid(1e6, 5e8, 300),
	} {
		sv := &exactSolver{fs: grid, f: rlResponse}
		res, err := Adaptive(grid, Options{Tol: 1e-8}, sv.solve)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback {
			t.Fatalf("smooth rational response fell back to exact solves")
		}
		if res.Anchors >= len(grid)/4 {
			t.Fatalf("adaptive used %d anchors for %d points — no win", res.Anchors, len(grid))
		}
		if sv.calls != res.Anchors {
			t.Fatalf("solver saw %d solves, result claims %d anchors", sv.calls, res.Anchors)
		}
		interp := 0
		for i, f := range grid {
			want := rlResponse(f)
			if e := relErr(res.Values[i], want, cmplx.Abs(want)*1e-12); e > 1e-7 {
				t.Fatalf("point %d (f=%g): interp error %.3g (solved=%v)", i, f, e, res.Solved[i])
			}
			if !res.Solved[i] {
				interp++
			}
		}
		if interp == 0 {
			t.Fatal("no interpolated points")
		}
	}
}

// TestAdaptiveResonanceFallback caps the anchor budget below what a
// high-Q resonance needs at a tight tolerance, forcing the exact-solve
// fallback; every returned point must then be an exact solve.
func TestAdaptiveResonanceFallback(t *testing.T) {
	// Series RLC resonance with a skin-effect sqrt(f) resistance: the
	// sqrt makes the response non-rational, so at 1e-10 tolerance it
	// needs far more anchors than the budget below allows.
	zres := func(f float64) complex128 {
		w := 2 * math.Pi * f
		s := complex(0, w)
		r := complex(0.1*(1+math.Sqrt(f/1e6)), 0)
		return r + s*1e-6 + 1/(s*1e-11)
	}
	grid := logGrid(1e6, 1e9, 500)
	sv := &exactSolver{fs: grid, f: zres}
	res, err := Adaptive(grid, Options{Tol: 1e-10, MinAnchors: 4, MaxAnchors: 9}, sv.solve)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatalf("expected fallback, got %d anchors (maxCV %.3g)", res.Anchors, res.MaxCV)
	}
	for i, f := range grid {
		if !res.Solved[i] {
			t.Fatalf("fallback left point %d unsolved", i)
		}
		if res.Values[i] != zres(f) {
			t.Fatalf("fallback value %d is not the exact solve", i)
		}
	}
	if sv.calls != len(grid) {
		t.Fatalf("fallback solved %d of %d points", sv.calls, len(grid))
	}
}

// A genuine resonance fits fine when the anchor budget is sane: RLC
// impedances are themselves rational, the bread and butter of AAA.
func TestAdaptiveResonanceFits(t *testing.T) {
	zres := func(f float64) complex128 {
		w := 2 * math.Pi * f
		s := complex(0, w)
		return complex(5, 0) + s*1e-6 + 1/(s*1e-11)
	}
	grid := logGrid(1e6, 1e8, 600)
	sv := &exactSolver{fs: grid, f: zres}
	res, err := Adaptive(grid, Options{Tol: 1e-8}, sv.solve)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("rational resonance should fit without fallback")
	}
	for i, f := range grid {
		want := zres(f)
		if e := relErr(res.Values[i], want, cmplx.Abs(want)*1e-12); e > 1e-7 {
			t.Fatalf("point %d (f=%g): error %.3g", i, f, e)
		}
	}
}

func TestAdaptiveShortSweepSolvesAll(t *testing.T) {
	grid := logGrid(1e3, 1e6, 7)
	sv := &exactSolver{fs: grid, f: rlResponse}
	res, err := Adaptive(grid, Options{}, sv.solve)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback || sv.calls != len(grid) {
		t.Fatalf("short sweep should solve all points exactly (fallback=%v calls=%d)", res.Fallback, sv.calls)
	}
}

func TestAdaptiveDuplicatesAndErrors(t *testing.T) {
	grid := append(logGrid(1e3, 1e9, 200), 1e9)
	grid[50] = grid[49] // duplicate mid-sweep
	sortAscending(grid)
	sv := &exactSolver{fs: grid, f: rlResponse}
	res, err := Adaptive(grid, Options{Tol: 1e-8}, sv.solve)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] == grid[i-1] {
			if res.Values[i] != res.Values[i-1] || res.Solved[i] != res.Solved[i-1] {
				t.Fatalf("duplicate frequency %d diverged from its twin", i)
			}
		}
	}

	if _, err := Adaptive([]float64{2, 1, 3}, Options{}, sv.solve); err == nil {
		t.Fatal("unsorted frequencies accepted")
	}
	if _, err := Adaptive(logGrid(1, 10, 100), Options{Tol: math.NaN()}, sv.solve); err == nil {
		t.Fatal("NaN tolerance accepted")
	}
	wantErr := fmt.Errorf("solver exploded")
	_, err = Adaptive(logGrid(1, 10, 100), Options{}, func([]int) ([]complex128, error) {
		return nil, wantErr
	})
	if err == nil {
		t.Fatal("solver error swallowed")
	}

	res, err = Adaptive(nil, Options{}, sv.solve)
	if err != nil || len(res.Values) != 0 {
		t.Fatalf("empty sweep: %v %v", res, err)
	}
}

// TestAdaptiveParallelSolver races the batch callback across
// goroutines the way fasthenry's chunked workers will.
func TestAdaptiveParallelSolver(t *testing.T) {
	grid := logGrid(1e3, 1e9, 512)
	solve := func(idxs []int) ([]complex128, error) {
		out := make([]complex128, len(idxs))
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := w; k < len(idxs); k += 4 {
					out[k] = rlResponse(grid[idxs[k]])
				}
			}(w)
		}
		wg.Wait()
		return out, nil
	}
	res, err := Adaptive(grid, Options{Tol: 1e-8}, solve)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range grid {
		want := rlResponse(f)
		if e := relErr(res.Values[i], want, cmplx.Abs(want)*1e-12); e > 1e-7 {
			t.Fatalf("point %d: error %.3g", i, e)
		}
	}
}

// TestAdaptiveRandomRational fits randomized stable rational responses
// on randomized grids — the property the wiring layers rely on.
func TestAdaptiveRandomRational(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		// Random stable pole-residue response: poles well off the jω
		// axis (damped), spread across the sweep decades.
		np := 2 + rng.Intn(4)
		poles := make([]complex128, np)
		resid := make([]complex128, np)
		for p := range poles {
			wp := math.Pow(10, 4+5*rng.Float64()) // 1e4..1e9 rad/s
			poles[p] = complex(-wp*(0.3+rng.Float64()), wp*(rng.Float64()-0.5))
			resid[p] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(wp, 0)
		}
		d := complex(1+rng.Float64(), 0)
		zf := func(f float64) complex128 {
			s := complex(0, 2*math.Pi*f)
			v := d
			for p := range poles {
				v += resid[p] / (s - poles[p])
			}
			return v
		}
		var grid []float64
		n := 150 + rng.Intn(400)
		f0 := math.Pow(10, 2+3*rng.Float64())
		f1 := f0 * math.Pow(10, 1+3*rng.Float64())
		if rng.Intn(2) == 0 {
			grid = logGrid(f0, f1, n)
		} else {
			grid = linGrid(f0, f1, n)
		}
		tol := 1e-8
		sv := &exactSolver{fs: grid, f: zf}
		res, err := Adaptive(grid, Options{Tol: tol}, sv.solve)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallback {
			// Permitted (correct, just slow) — but values must be exact.
			for i, f := range grid {
				if res.Values[i] != zf(f) {
					t.Fatalf("trial %d: fallback value %d not exact", trial, i)
				}
			}
			continue
		}
		for i, f := range grid {
			want := zf(f)
			if e := relErr(res.Values[i], want, cmplx.Abs(want)*1e-10); e > 10*tol {
				t.Fatalf("trial %d point %d (f=%g): error %.3g anchors=%d maxCV=%.3g",
					trial, i, f, e, res.Anchors, res.MaxCV)
			}
		}
	}
}

func TestModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeAuto}, {"auto", ModeAuto}, {"exact", ModeExact}, {"adaptive", ModeAdaptive}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
		if tc.in != "" && m.String() != tc.in {
			t.Fatalf("Mode round-trip %q -> %q", tc.in, m.String())
		}
	}
	if _, err := ParseMode("fancy"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if ModeExact.Adapt(1000) || !ModeAdaptive.Adapt(2) {
		t.Fatal("fixed modes wrong")
	}
	if ModeAuto.Adapt(AutoThreshold-1) || !ModeAuto.Adapt(AutoThreshold) {
		t.Fatal("auto threshold wrong")
	}
}

func sortAscending(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
