package hier

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inductance101/internal/matrix"
)

// gridG builds the conductance matrix of an nx x ny resistor mesh with
// unit conductances and a small ground leak at every node, plus the
// node coordinates.
func gridG(nx, ny int) (*matrix.Dense, []float64, []float64) {
	n := nx * ny
	g := matrix.NewDense(n, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	idx := func(x, y int) int { return y*nx + x }
	stamp := func(a, b int) {
		g.Add(a, a, 1)
		g.Add(b, b, 1)
		g.Add(a, b, -1)
		g.Add(b, a, -1)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			xs[i], ys[i] = float64(x), float64(y)
			g.Add(i, i, 0.01) // ground leak keeps it nonsingular
			if x+1 < nx {
				stamp(i, idx(x+1, y))
			}
			if y+1 < ny {
				stamp(i, idx(x, y+1))
			}
		}
	}
	return g, xs, ys
}

func TestHierMatchesFlatSolve(t *testing.T) {
	g, xs, ys := gridG(8, 8)
	assign := TileAssign(xs, ys, 2, 2)
	p := AutoPartition(g, assign)
	if len(p.Boundary) == 0 || len(p.Boundary) == g.Rows() {
		t.Fatalf("degenerate partition: %d boundary of %d", len(p.Boundary), g.Rows())
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, g.Rows())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	flat, err := matrix.SolveDense(g, b)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(g, b, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if math.Abs(sol.X[i]-flat[i]) > 1e-9*math.Max(1, math.Abs(flat[i])) {
			t.Fatalf("x[%d] = %g, flat %g", i, sol.X[i], flat[i])
		}
	}
	if sol.GlobalSize >= g.Rows() {
		t.Errorf("no reduction: global %d of %d", sol.GlobalSize, g.Rows())
	}
	if sol.LargestBlock >= g.Rows() {
		t.Errorf("block as large as the whole system")
	}
}

func TestAutoPartitionInvariant(t *testing.T) {
	g, xs, ys := gridG(6, 6)
	for _, tiles := range [][2]int{{2, 2}, {3, 2}, {1, 4}, {6, 6}} {
		assign := TileAssign(xs, ys, tiles[0], tiles[1])
		p := AutoPartition(g, assign)
		if err := p.Validate(g); err != nil {
			t.Errorf("tiles %v: %v", tiles, err)
		}
	}
}

func TestAutoPartitionForcedBoundary(t *testing.T) {
	g, xs, ys := gridG(4, 4)
	assign := TileAssign(xs, ys, 2, 1)
	assign[5] = -1 // forced
	p := AutoPartition(g, assign)
	found := false
	for _, i := range p.Boundary {
		if i == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("forced boundary node missing")
	}
}

func TestValidateCatchesCrossCoupling(t *testing.T) {
	g := matrix.NewDenseFrom([][]float64{
		{2, -1, 0},
		{-1, 2, -1},
		{0, -1, 2},
	})
	// Blocks {0} and {2} with boundary {1}: valid.
	ok := Partition{Blocks: [][]int{{0}, {2}}, Boundary: []int{1}}
	if err := ok.Validate(g); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	// Blocks {0,1} and {2} with no boundary: 1 couples to 2 directly.
	bad := Partition{Blocks: [][]int{{0, 1}, {2}}}
	if err := bad.Validate(g); err == nil {
		t.Errorf("cross-coupled partition accepted")
	}
	// Duplicate membership.
	dup := Partition{Blocks: [][]int{{0, 1}}, Boundary: []int{1, 2}}
	if err := dup.Validate(g); err == nil {
		t.Errorf("duplicate membership accepted")
	}
	// Incomplete cover.
	missing := Partition{Blocks: [][]int{{0}}, Boundary: []int{1}}
	if err := missing.Validate(g); err == nil {
		t.Errorf("incomplete partition accepted")
	}
}

func TestHierProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := 3 + rng.Intn(5)
		ny := 3 + rng.Intn(5)
		g, xs, ys := gridG(nx, ny)
		assign := TileAssign(xs, ys, 1+rng.Intn(3), 1+rng.Intn(3))
		p := AutoPartition(g, assign)
		b := make([]float64, g.Rows())
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		flat, err := matrix.SolveDense(g, b)
		if err != nil {
			return false
		}
		sol, err := Solve(g, b, p)
		if err != nil {
			return false
		}
		for i := range flat {
			if math.Abs(sol.X[i]-flat[i]) > 1e-8*math.Max(1, math.Abs(flat[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTileAssignEdges(t *testing.T) {
	// Single point: everything tile 0.
	a := TileAssign([]float64{1, 1}, []float64{2, 2}, 3, 3)
	if a[0] != 0 || a[1] != 0 {
		t.Errorf("degenerate span assignment %v", a)
	}
	// Clamping at the max edge.
	a = TileAssign([]float64{0, 10}, []float64{0, 10}, 2, 2)
	if a[1] != 3 {
		t.Errorf("max corner tile = %d, want 3", a[1])
	}
}
