// Package hier implements hierarchical interconnect analysis in the
// spirit of Beattie et al. (ICCAD 2000), the §4 technique that
// "separates the electrical interaction into local and global
// interaction": unknowns are partitioned into blocks, each block's
// internal nodes are eliminated exactly by Schur complement onto the
// global (boundary) nodes, the small global system is solved, and the
// internal solutions are recovered by back-substitution.
//
// For the resistive systems power-grid IR-drop analysis runs on, this
// is exact — and it is the standard way production tools make
// full-chip grid analysis tractable.
package hier

import (
	"fmt"

	"inductance101/internal/matrix"
)

// Partition assigns each unknown to a block or to the global boundary.
type Partition struct {
	// Blocks[k] lists the internal unknowns of block k.
	Blocks [][]int
	// Boundary lists the global unknowns every block may couple to.
	Boundary []int
}

// AutoPartition builds a partition from a block assignment: assign[i]
// is the tentative block of unknown i (use -1 to force an unknown onto
// the boundary). Any unknown that couples (g[i][j] != 0) to a different
// block is promoted to the boundary, so the result always satisfies the
// hierarchical invariant that internals of distinct blocks never couple
// directly.
func AutoPartition(g *matrix.Dense, assign []int) Partition {
	n := g.Rows()
	if len(assign) != n {
		panic(fmt.Sprintf("hier: assignment length %d, matrix %d", len(assign), n))
	}
	isBoundary := make([]bool, n)
	for i := 0; i < n; i++ {
		if assign[i] < 0 {
			isBoundary[i] = true
		}
	}
	// Promote until stable: one pass suffices because promotion only
	// depends on the original assignment (boundary nodes absorb all
	// cross-block coupling).
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || g.At(i, j) == 0 {
				continue
			}
			if assign[j] >= 0 && assign[j] != assign[i] {
				isBoundary[i] = true
				break
			}
		}
	}
	maxBlock := -1
	for _, a := range assign {
		if a > maxBlock {
			maxBlock = a
		}
	}
	p := Partition{Blocks: make([][]int, maxBlock+1)}
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			p.Boundary = append(p.Boundary, i)
		} else {
			p.Blocks[assign[i]] = append(p.Blocks[assign[i]], i)
		}
	}
	return p
}

// Validate checks the hierarchical invariant: no direct coupling
// between internals of different blocks.
func (p Partition) Validate(g *matrix.Dense) error {
	blockOf := make(map[int]int)
	for k, blk := range p.Blocks {
		for _, i := range blk {
			if _, dup := blockOf[i]; dup {
				return fmt.Errorf("hier: unknown %d in two blocks", i)
			}
			blockOf[i] = k
		}
	}
	for _, i := range p.Boundary {
		if _, dup := blockOf[i]; dup {
			return fmt.Errorf("hier: unknown %d both internal and boundary", i)
		}
		blockOf[i] = -1
	}
	if len(blockOf) != g.Rows() {
		return fmt.Errorf("hier: partition covers %d of %d unknowns", len(blockOf), g.Rows())
	}
	for i := 0; i < g.Rows(); i++ {
		bi := blockOf[i]
		if bi < 0 {
			continue
		}
		for j := 0; j < g.Cols(); j++ {
			if g.At(i, j) == 0 || i == j {
				continue
			}
			if bj := blockOf[j]; bj >= 0 && bj != bi {
				return fmt.Errorf("hier: internals %d (block %d) and %d (block %d) couple directly", i, bi, j, bj)
			}
		}
	}
	return nil
}

// Solution carries the hierarchical solve result and its cost metrics.
type Solution struct {
	X []float64
	// GlobalSize is the reduced boundary system dimension.
	GlobalSize int
	// LargestBlock is the biggest internal block factored.
	LargestBlock int
}

// Solve solves g*x = b hierarchically under the partition. It is exact
// (up to roundoff) for any nonsingular g satisfying the partition
// invariant.
func Solve(g *matrix.Dense, b []float64, p Partition) (*Solution, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	n := g.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("hier: rhs length %d, want %d", len(b), n)
	}
	nb := len(p.Boundary)
	bdIndex := make(map[int]int, nb)
	for k, i := range p.Boundary {
		bdIndex[i] = k
	}
	// Global system accumulates G_bb plus each block's Schur term.
	gg := matrix.NewDense(nb, nb)
	for a, ia := range p.Boundary {
		for c, ic := range p.Boundary {
			gg.Set(a, c, g.At(ia, ic))
		}
	}
	bg := make([]float64, nb)
	for a, ia := range p.Boundary {
		bg[a] = b[ia]
	}

	sol := &Solution{X: make([]float64, n), GlobalSize: nb}
	type blockFactor struct {
		lu    *matrix.LU
		idx   []int
		gib   *matrix.Dense // internal x boundary coupling
		biInt []float64
	}
	factors := make([]*blockFactor, 0, len(p.Blocks))
	for _, blk := range p.Blocks {
		ni := len(blk)
		if ni == 0 {
			factors = append(factors, nil)
			continue
		}
		if ni > sol.LargestBlock {
			sol.LargestBlock = ni
		}
		gii := matrix.NewDense(ni, ni)
		gib := matrix.NewDense(ni, nb)
		bi := make([]float64, ni)
		for a, ia := range blk {
			bi[a] = b[ia]
			for c, ic := range blk {
				gii.Set(a, c, g.At(ia, ic))
			}
			for c, ic := range p.Boundary {
				gib.Set(a, c, g.At(ia, ic))
			}
		}
		lu, err := matrix.FactorLU(gii)
		if err != nil {
			return nil, fmt.Errorf("hier: block internal matrix singular (floating internal node?): %w", err)
		}
		// Schur: S = -G_bi G_ii^{-1} G_ib ; rhs: -G_bi G_ii^{-1} b_i.
		x, err := lu.SolveMat(gib) // G_ii^{-1} G_ib
		if err != nil {
			return nil, err
		}
		y, err := lu.Solve(bi) // G_ii^{-1} b_i
		if err != nil {
			return nil, err
		}
		// G_bi rows are g[boundary][internal].
		for a, ia := range p.Boundary {
			for c, ic := range blk {
				gbi := g.At(ia, ic)
				if gbi == 0 {
					continue
				}
				for d := 0; d < nb; d++ {
					gg.Add(a, d, -gbi*x.At(c, d))
				}
				bg[a] -= gbi * y[c]
			}
			_ = ia
		}
		factors = append(factors, &blockFactor{lu: lu, idx: blk, gib: gib, biInt: bi})
	}

	xb, err := matrix.SolveDense(gg, bg)
	if err != nil {
		return nil, fmt.Errorf("hier: global system singular: %w", err)
	}
	for k, i := range p.Boundary {
		sol.X[i] = xb[k]
	}
	// Back-substitute internals: x_i = G_ii^{-1}(b_i - G_ib x_b).
	for _, f := range factors {
		if f == nil {
			continue
		}
		rhs := matrix.CloneVec(f.biInt)
		matrix.Axpy(-1, f.gib.MulVec(xb), rhs)
		xi, err := f.lu.Solve(rhs)
		if err != nil {
			return nil, err
		}
		for a, ia := range f.idx {
			sol.X[ia] = xi[a]
		}
	}
	return sol, nil
}

// TileAssign produces a block assignment for unknowns laid out on a
// 2-D grid: coords[i] = (x, y) in metres, tilesX x tilesY tiles over
// the bounding box. Unknowns without coordinates (nil entry semantics:
// x = y = NaN not supported; pass force=-1 via the assign slice
// afterwards) default to tile 0.
func TileAssign(xs, ys []float64, tilesX, tilesY int) []int {
	n := len(xs)
	if len(ys) != n {
		panic("hier: coordinate length mismatch")
	}
	if tilesX < 1 {
		tilesX = 1
	}
	if tilesY < 1 {
		tilesY = 1
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	spanX := maxX - minX
	spanY := maxY - minY
	out := make([]int, n)
	for i := 0; i < n; i++ {
		tx, ty := 0, 0
		if spanX > 0 {
			tx = int(float64(tilesX) * (xs[i] - minX) / spanX)
			if tx >= tilesX {
				tx = tilesX - 1
			}
		}
		if spanY > 0 {
			ty = int(float64(tilesY) * (ys[i] - minY) / spanY)
			if ty >= tilesY {
				ty = tilesY - 1
			}
		}
		out[i] = ty*tilesX + tx
	}
	return out
}

func minMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
