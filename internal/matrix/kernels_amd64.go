//go:build amd64

package matrix

// AVX2 micro-kernels for the blocked dense routines. The kernels use
// separate VMULPD/VSUBPD (or VADDPD) instructions — never FMA — so each
// multiply and each subtract rounds exactly like the scalar reference
// code, and the blocked kernels stay bit-identical to the unblocked
// ones. SIMD lanes hold *different* matrix entries; no per-entry sum is
// ever split across lanes, so the accumulation order per entry is the
// same increasing-k order as the reference loops.

// gemmSubAVX2 updates a 4x4 tile: C -= L * U, where C points to the
// first element of a 4x4 tile with row stride cn, L to a 4 x kb block
// with row stride ln, and U to a kb x 4 tile packed contiguously
// (U[m][0..3] at u[4m..4m+3]).
//
//go:noescape
func gemmSubAVX2(c, l, u *float64, cn, ln, kb int)

// gemmAddAVX2 is gemmSubAVX2 with C += L * U (for Mul).
//
//go:noescape
func gemmAddAVX2(c, l, u *float64, cn, ln, kb int)

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether the CPU and OS support AVX2 (YMM state
// enabled). Checked once at startup; the scalar tiled path is used
// otherwise, with identical results.
var hasAVX2 = func() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&6 != 6 { // XMM and YMM state saved by OS
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()
