package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randSPD returns a random symmetric positive definite matrix A = B*B^T + n*I.
func randSPD(rng *rand.Rand, n int) *Dense {
	b := randDense(rng, n, n)
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestDenseBasics(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims")
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g", m.At(1, 0))
	}
	m.Add(1, 0, 2)
	if m.At(1, 0) != 5 {
		t.Errorf("Add failed")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Errorf("Clone aliases original")
	}
	tr := m.T()
	if tr.At(0, 1) != 5 {
		t.Errorf("transpose wrong: %g", tr.At(0, 1))
	}
}

func TestDensePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.MulVec([]float64{1}) },
		func() { NewDense(3, 3).Mul(NewDense(2, 2)) },
		func() { NewDense(2, 3).Symmetrize() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 5, 5)
	p := a.Mul(Identity(5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatalf("A*I != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 4, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := NewDense(6, 1)
	for i, v := range x {
		xm.Set(i, 0, v)
	}
	y1 := a.MulVec(x)
	y2 := a.Mul(xm)
	for i := range y1 {
		if !almostEq(y1[i], y2.At(i, 0), 1e-12) {
			t.Fatalf("MulVec disagrees with Mul at %d", i)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize wrong: %v %v", m.At(0, 1), m.At(1, 0))
	}
	if !m.IsSymmetric(1e-15) {
		t.Errorf("should be symmetric")
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix(1, 3, 0, 2)
	want := NewDenseFrom([][]float64{{4, 5}, {7, 8}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if s.At(i, j) != want.At(i, j) {
				t.Fatalf("Submatrix wrong at (%d,%d)", i, j)
			}
		}
	}
	z := NewDense(3, 3)
	z.SetSubmatrix(1, 1, s)
	if z.At(2, 2) != 8 || z.At(0, 0) != 0 {
		t.Errorf("SetSubmatrix wrong")
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 20; n += 3 {
		a := randDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, 5) // keep well-conditioned
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-9) {
				t.Fatalf("n=%d: x[%d]=%g want %g", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Errorf("expected singular error")
	}
}

func TestLUDetAndInverse(t *testing.T) {
	a := NewDenseFrom([][]float64{{4, 7}, {2, 6}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 10, 1e-12) {
		t.Errorf("det = %g, want 10", f.Det())
	}
	inv, err := f.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	p := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(p.At(i, j), want, 1e-12) {
				t.Errorf("A*inv(A) at (%d,%d) = %g", i, j, p.At(i, j))
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 12)
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ch.L()
	rec := l.Mul(l.T())
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if !almostEq(rec.At(i, j), a.At(i, j), 1e-9) {
				t.Fatalf("L*L^T != A at (%d,%d): %g vs %g", i, j, rec.At(i, j), a.At(i, j))
			}
		}
	}
	xTrue := make([]float64, 12)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-8) {
			t.Fatalf("cholesky solve x[%d]=%g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err != ErrNotPositiveDefinite {
		t.Errorf("expected ErrNotPositiveDefinite, got %v", err)
	}
	if IsPositiveDefinite(a) {
		t.Errorf("indefinite matrix reported PD")
	}
}

func TestMinEigenEstimate(t *testing.T) {
	// diag(1, 5, 9): lambda_min = 1.
	a := NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 9)
	if got := MinEigenEstimate(a, 1e-6); !almostEq(got, 1, 1e-4) {
		t.Errorf("MinEigenEstimate = %g, want 1", got)
	}
	// Indefinite example from above: eigenvalues {3, -1}.
	b := NewDenseFrom([][]float64{{1, 2}, {2, 1}})
	if got := MinEigenEstimate(b, 1e-6); !almostEq(got, -1, 1e-4) {
		t.Errorf("MinEigenEstimate = %g, want -1", got)
	}
}

func TestCholeskyPropertySPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randSPD(r, n)
		if !IsPositiveDefinite(a) {
			return false
		}
		// A random symmetric matrix with a strongly negative diagonal
		// entry must be rejected.
		a.Set(0, 0, -1)
		return !IsPositiveDefinite(a)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLeastSquares(t *testing.T) {
	// Fit y = 2 + 3x exactly.
	a := NewDenseFrom([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{2, 5, 8, 11}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Errorf("LeastSquares = %v, want [2 3]", x)
	}
}

func TestOrthonormalizeColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 10, 4)
	q := OrthonormalizeColumns(a, nil, 1e-12)
	if q.Cols() != 4 {
		t.Fatalf("expected 4 columns, got %d", q.Cols())
	}
	qtq := q.T().Mul(q)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(qtq.At(i, j), want, 1e-10) {
				t.Fatalf("Q^T Q at (%d,%d) = %g", i, j, qtq.At(i, j))
			}
		}
	}
	// Deflation: a duplicated column must be dropped.
	dup := AppendColumns(a, a.Submatrix(0, 10, 0, 1))
	q2 := OrthonormalizeColumns(dup, nil, 1e-8)
	if q2.Cols() != 4 {
		t.Errorf("duplicate column not deflated: got %d columns", q2.Cols())
	}
	// Orthogonalization against an existing basis.
	q3 := OrthonormalizeColumns(randDense(rng, 10, 2), q, 1e-12)
	cross := q.T().Mul(q3)
	if cross.MaxAbs() > 1e-10 {
		t.Errorf("columns not orthogonal to basis: %g", cross.MaxAbs())
	}
}

func TestConditionEstimate(t *testing.T) {
	if c := ConditionEstimate(Identity(5)); c < 1 || c > 10 {
		t.Errorf("cond(I) estimate = %g", c)
	}
	ill := NewDenseFrom([][]float64{{1, 0}, {0, 1e-12}})
	if c := ConditionEstimate(ill); c < 1e10 {
		t.Errorf("ill-conditioned estimate too small: %g", c)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %g", Dot(a, b))
	}
	if !almostEq(Norm2(a), math.Sqrt(14), 1e-14) {
		t.Errorf("Norm2 = %g", Norm2(a))
	}
	if NormInf([]float64{-5, 2}) != 5 {
		t.Errorf("NormInf")
	}
	y := CloneVec(b)
	Axpy(2, a, y)
	if y[2] != 12 {
		t.Errorf("Axpy: %v", y)
	}
	s := Sub(b, a)
	if s[0] != 3 || s[1] != 3 || s[2] != 3 {
		t.Errorf("Sub: %v", s)
	}
	ad := AddVec(a, a)
	if ad[2] != 6 {
		t.Errorf("AddVec: %v", ad)
	}
	ScaleVec(0.5, ad)
	if ad[2] != 3 {
		t.Errorf("ScaleVec: %v", ad)
	}
}
