package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Sparse matrices for the large power-grid flows. Assembly happens in a
// coordinate (triplet) builder; solves run on an immutable CSR form.

// Triplet accumulates (i, j, v) entries with duplicate summation, the
// natural target for MNA stamping of large grids.
type Triplet struct {
	rows, cols int
	entries    map[[2]int]float64
}

// NewTriplet returns an empty r x c builder.
func NewTriplet(r, c int) *Triplet {
	return &Triplet{rows: r, cols: c, entries: make(map[[2]int]float64)}
}

// Rows returns the number of rows.
func (t *Triplet) Rows() int { return t.rows }

// Cols returns the number of columns.
func (t *Triplet) Cols() int { return t.cols }

// Add accumulates v at (i, j).
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("matrix: triplet index (%d,%d) out of range %dx%d", i, j, t.rows, t.cols))
	}
	if v == 0 {
		return
	}
	t.entries[[2]int{i, j}] += v
}

// NNZ returns the number of stored entries.
func (t *Triplet) NNZ() int { return len(t.entries) }

// ToCSR freezes the builder into compressed sparse row form.
func (t *Triplet) ToCSR() *CSR {
	type ent struct {
		i, j int
		v    float64
	}
	es := make([]ent, 0, len(t.entries))
	for k, v := range t.entries {
		if v != 0 {
			es = append(es, ent{k[0], k[1], v})
		}
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].i != es[b].i {
			return es[a].i < es[b].i
		}
		return es[a].j < es[b].j
	})
	m := &CSR{
		rows:   t.rows,
		cols:   t.cols,
		rowPtr: make([]int, t.rows+1),
		colIdx: make([]int, len(es)),
		val:    make([]float64, len(es)),
	}
	for n, e := range es {
		m.rowPtr[e.i+1]++
		m.colIdx[n] = e.j
		m.val[n] = e.v
	}
	for i := 0; i < t.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// ToDense materializes the builder as a dense matrix (tests, small cases).
func (t *Triplet) ToDense() *Dense {
	d := NewDense(t.rows, t.cols)
	for k, v := range t.entries {
		d.Add(k[0], k[1], v)
	}
	return d
}

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.val) }

// MulVec returns m*x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("matrix: CSR MulVec dimension mismatch")
	}
	y := make([]float64, m.rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo writes m*x into y (must have length m.Rows()).
func (m *CSR) MulVecTo(y, x []float64) {
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.val[p] * x[m.colIdx[p]]
		}
		y[i] = s
	}
}

// Diag returns the diagonal as a slice (zeros where absent).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if m.colIdx[p] == i {
				d[i] = m.val[p]
			}
		}
	}
	return d
}

// ToDense materializes the CSR matrix densely.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d.Set(i, m.colIdx[p], m.val[p])
		}
	}
	return d
}

// CGOptions configures the conjugate-gradient solver.
type CGOptions struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10*n
}

// CGStats reports what a conjugate-gradient solve actually did — the
// iteration count and the tolerance in force — so benchmark snapshots
// can expose preconditioning regressions instead of timing alone.
type CGStats struct {
	// Iterations is the CG iteration count at convergence.
	Iterations int
	// Tol is the relative residual target the solve ran with (after
	// defaulting); Residual the final relative residual achieved.
	Tol, Residual float64
}

// SolveCG solves a*x = b for symmetric positive definite a using
// Jacobi-preconditioned conjugate gradients. Power/ground grid
// conductance systems are SPD, which is why the paper's combined
// technique can use Cholesky; CG is the iterative analogue used here for
// the large sparse path.
func (m *CSR) SolveCG(b []float64, opt CGOptions) ([]float64, error) {
	x, _, err := m.SolveCGStats(b, opt)
	return x, err
}

// SolveCGStats is SolveCG with the iteration/tolerance statistics
// returned alongside the solution.
func (m *CSR) SolveCGStats(b []float64, opt CGOptions) ([]float64, CGStats, error) {
	if m.rows != m.cols {
		return nil, CGStats{}, fmt.Errorf("matrix: CG needs a square matrix, got %dx%d", m.rows, m.cols)
	}
	n := m.rows
	if len(b) != n {
		return nil, CGStats{}, fmt.Errorf("matrix: CG rhs length %d, want %d", len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10*n + 50
	}
	st := CGStats{Tol: opt.Tol}
	diag := m.Diag()
	invD := make([]float64, n)
	for i, d := range diag {
		if d <= 0 {
			return nil, st, fmt.Errorf("matrix: CG diagonal %d = %g not positive", i, d)
		}
		invD[i] = 1 / d
	}
	x := make([]float64, n)
	r := CloneVec(b)
	bn := Norm2(b)
	if bn == 0 {
		return x, st, nil
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = invD[i] * r[i]
	}
	p := CloneVec(z)
	rz := Dot(r, z)
	ap := make([]float64, n)
	for it := 0; it < opt.MaxIter; it++ {
		m.MulVecTo(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return nil, st, fmt.Errorf("matrix: CG breakdown, p'Ap = %g (matrix not SPD?)", pap)
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rn := Norm2(r)
		st.Iterations, st.Residual = it+1, rn/bn
		if rn <= opt.Tol*bn {
			return x, st, nil
		}
		for i := range z {
			z[i] = invD[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, st, fmt.Errorf("matrix: CG did not converge in %d iterations (residual %g)",
		opt.MaxIter, Norm2(r)/bn)
}

// SolveBiCGStab solves a*x = b for general (nonsymmetric) a using
// Jacobi-preconditioned BiCGStab. Used for sparse MNA systems that
// include inductor branch rows and are therefore not SPD.
func (m *CSR) SolveBiCGStab(b []float64, opt CGOptions) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: BiCGStab needs a square matrix, got %dx%d", m.rows, m.cols)
	}
	n := m.rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: BiCGStab rhs length %d, want %d", len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 20*n + 100
	}
	diag := m.Diag()
	invD := make([]float64, n)
	for i, d := range diag {
		if d == 0 {
			invD[i] = 1
		} else {
			invD[i] = 1 / d
		}
	}
	prec := func(v []float64) []float64 {
		out := make([]float64, n)
		for i := range v {
			out[i] = invD[i] * v[i]
		}
		return out
	}
	x := make([]float64, n)
	r := CloneVec(b)
	bn := Norm2(b)
	if bn == 0 {
		return x, nil
	}
	rHat := CloneVec(r)
	var rho, alpha, omega float64 = 1, 1, 1
	v := make([]float64, n)
	p := make([]float64, n)
	t := make([]float64, n)
	for it := 0; it < opt.MaxIter; it++ {
		rhoNew := Dot(rHat, r)
		if math.Abs(rhoNew) < 1e-300 {
			return nil, fmt.Errorf("matrix: BiCGStab breakdown (rho=0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		ph := prec(p)
		m.MulVecTo(v, ph)
		denom := Dot(rHat, v)
		if math.Abs(denom) < 1e-300 {
			return nil, fmt.Errorf("matrix: BiCGStab breakdown (rHat'v=0)")
		}
		alpha = rho / denom
		s := CloneVec(r)
		Axpy(-alpha, v, s)
		if Norm2(s) <= opt.Tol*bn {
			Axpy(alpha, ph, x)
			return x, nil
		}
		sh := prec(s)
		m.MulVecTo(t, sh)
		tt := Dot(t, t)
		if tt == 0 {
			return nil, fmt.Errorf("matrix: BiCGStab breakdown (t=0)")
		}
		omega = Dot(t, s) / tt
		Axpy(alpha, ph, x)
		Axpy(omega, sh, x)
		r = s
		Axpy(-omega, t, r)
		if Norm2(r) <= opt.Tol*bn {
			return x, nil
		}
		if omega == 0 {
			return nil, fmt.Errorf("matrix: BiCGStab breakdown (omega=0)")
		}
	}
	return nil, fmt.Errorf("matrix: BiCGStab did not converge in %d iterations (residual %g)",
		opt.MaxIter, Norm2(r)/bn)
}
