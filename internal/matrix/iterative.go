package matrix

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix-free iterative solvers: restarted GMRES(m) for general complex
// systems and preconditioned CG for the SPD real case. Both operate on
// pluggable operator interfaces so callers can plug in compressed or
// implicitly defined matrices (the FastHenry-style extraction solves
// R + jωL systems through a hierarchically compressed partial-inductance
// operator without ever forming the dense matrix).

// LinearOperator is a matrix-free real linear operator y = A x.
type LinearOperator interface {
	// Dim returns the (square) operator dimension.
	Dim() int
	// ApplyTo computes dst = A*x. dst and x have length Dim and must
	// not alias.
	ApplyTo(dst, x []float64)
}

// CLinearOperator is a matrix-free complex linear operator y = A x.
type CLinearOperator interface {
	Dim() int
	// ApplyTo computes dst = A*x. dst and x have length Dim and must
	// not alias.
	ApplyTo(dst, x []complex128)
}

// DenseOp adapts a square Dense matrix to LinearOperator.
type DenseOp struct{ M *Dense }

// Dim returns the matrix dimension.
func (o DenseOp) Dim() int { return o.M.Rows() }

// ApplyTo computes dst = M*x.
func (o DenseOp) ApplyTo(dst, x []float64) { o.M.MulVecTo(dst, x) }

// CSCOp adapts a square sparse CSC matrix to LinearOperator.
type CSCOp struct{ M *CSC }

// Dim returns the matrix dimension.
func (o CSCOp) Dim() int { return o.M.Rows() }

// ApplyTo computes dst = M*x.
func (o CSCOp) ApplyTo(dst, x []float64) { o.M.MulVecTo(dst, x) }

// CDenseOp adapts a square CDense matrix to CLinearOperator.
type CDenseOp struct{ M *CDense }

// Dim returns the matrix dimension.
func (o CDenseOp) Dim() int { return o.M.Rows() }

// ApplyTo computes dst = M*x.
func (o CDenseOp) ApplyTo(dst, x []complex128) {
	if o.M.Cols() != len(x) {
		panic("matrix: CDenseOp ApplyTo dimension mismatch")
	}
	n := o.M.Rows()
	for i := 0; i < n; i++ {
		var s complex128
		row := o.M.data[i*o.M.cols : (i+1)*o.M.cols]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// IterResult reports how an iterative solve went.
type IterResult struct {
	// Iters is the number of operator applications (Krylov steps).
	Iters int
	// Restarts counts completed GMRES restart cycles beyond the first.
	Restarts int
	// Residual is the final relative residual ||b - A x|| / ||b||.
	Residual float64
	// Converged reports whether Residual reached the tolerance.
	Converged bool
	// RecycledDim is the deflation-space dimension a GMRESRecycled solve
	// ran with (zero for plain solves or an empty recycle space).
	RecycledDim int
	// RecycleApplies counts the extra operator applications spent
	// re-projecting the recycled basis through this solve's operator;
	// the net iteration saving of recycling is the drop in Iters minus
	// this overhead.
	RecycleApplies int
}

// GMRESOptions tunes the restarted GMRES solve.
type GMRESOptions struct {
	// Restart is the Krylov subspace dimension per cycle (default 30,
	// capped at the operator dimension).
	Restart int
	// Tol is the relative residual target ||b - A x|| / ||b||
	// (default 1e-10).
	Tol float64
	// MaxIters caps the total operator applications (default
	// max(100, 10n)).
	MaxIters int
	// X0 is the initial guess (nil = zero). Frequency sweeps warm-start
	// each point with the previous point's solution.
	X0 []complex128
	// Precond applies a right preconditioner: dst = M^{-1} src. The
	// iteration solves A M^{-1} u = b and returns x = M^{-1} u, so the
	// reported residual is the true (unpreconditioned) one. dst and src
	// must not alias. nil means no preconditioning.
	Precond func(dst, src []complex128)
}

func cnorm(v []complex128) float64 {
	s := 0.0
	for _, z := range v {
		s += real(z)*real(z) + imag(z)*imag(z)
	}
	return math.Sqrt(s)
}

// cdotc returns the conjugated inner product a^H b.
func cdotc(a, b []complex128) complex128 {
	var s complex128
	for i, z := range a {
		s += cmplx.Conj(z) * b[i]
	}
	return s
}

// GMRES solves A x = b with restarted GMRES(m), modified Gram-Schmidt
// Arnoldi and Givens rotations. Each restart recomputes the true
// residual, so the reported IterResult.Residual is never an estimate
// drifted by rounding. Returns the best iterate found together with the
// iteration statistics; check IterResult.Converged — a non-converged
// solve is not an error (the caller may fall back to a direct solve).
func GMRES(op CLinearOperator, b []complex128, opt GMRESOptions) ([]complex128, IterResult, error) {
	n := op.Dim()
	if len(b) != n {
		return nil, IterResult{}, fmt.Errorf("matrix: GMRES rhs length %d, want %d", len(b), n)
	}
	m := opt.Restart
	if m <= 0 {
		m = 30
	}
	if m > n {
		m = n
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIt := opt.MaxIters
	if maxIt <= 0 {
		maxIt = 10 * n
		if maxIt < 100 {
			maxIt = 100
		}
	}
	x := make([]complex128, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, IterResult{}, fmt.Errorf("matrix: GMRES x0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	res := IterResult{}
	bnorm := cnorm(b)
	if bnorm == 0 {
		// A x = 0 has the exact solution x = 0 for any nonsingular A.
		for i := range x {
			x[i] = 0
		}
		res.Converged = true
		return x, res, nil
	}

	// Workspace: Krylov basis, Hessenberg columns (upper-triangular
	// after rotations), Givens sines/cosines, rotated rhs.
	v := make([][]complex128, m+1)
	hc := make([][]complex128, m)
	cs := make([]complex128, m)
	sn := make([]complex128, m)
	g := make([]complex128, m+1)
	w := make([]complex128, n)
	z := make([]complex128, n)

	for {
		// True residual r = b - A x.
		op.ApplyTo(w, x)
		if v[0] == nil {
			v[0] = make([]complex128, n)
		}
		for i := range w {
			v[0][i] = b[i] - w[i]
		}
		beta := cnorm(v[0])
		res.Residual = beta / bnorm
		if res.Residual <= tol {
			res.Converged = true
			return x, res, nil
		}
		if res.Iters >= maxIt {
			return x, res, nil
		}
		inv := complex(1/beta, 0)
		for i := range v[0] {
			v[0][i] *= inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = complex(beta, 0)

		j := 0
		for ; j < m && res.Iters < maxIt; j++ {
			res.Iters++
			// w = A M^{-1} v_j.
			av := v[j]
			if opt.Precond != nil {
				opt.Precond(z, v[j])
				av = z
			}
			op.ApplyTo(w, av)
			// Modified Gram-Schmidt.
			if hc[j] == nil {
				hc[j] = make([]complex128, m+1)
			}
			col := hc[j]
			for i := 0; i <= j; i++ {
				h := cdotc(v[i], w)
				col[i] = h
				for k := range w {
					w[k] -= h * v[i][k]
				}
			}
			hj1 := cnorm(w)
			col[j+1] = complex(hj1, 0)
			// Apply the accumulated rotations to the new column.
			for i := 0; i < j; i++ {
				t := cmplx.Conj(cs[i])*col[i] + cmplx.Conj(sn[i])*col[i+1]
				col[i+1] = -sn[i]*col[i] + cs[i]*col[i+1]
				col[i] = t
			}
			// New rotation annihilating col[j+1].
			r2 := math.Hypot(cmplx.Abs(col[j]), cmplx.Abs(col[j+1]))
			if r2 == 0 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = col[j] / complex(r2, 0)
				sn[j] = col[j+1] / complex(r2, 0)
			}
			col[j] = complex(r2, 0)
			col[j+1] = 0
			t := cmplx.Conj(cs[j])*g[j] + cmplx.Conj(sn[j])*g[j+1]
			g[j+1] = -sn[j]*g[j] + cs[j]*g[j+1]
			g[j] = t
			res.Residual = cmplx.Abs(g[j+1]) / bnorm
			if hj1 == 0 {
				// Happy breakdown: the Krylov space is invariant.
				j++
				break
			}
			if res.Residual <= tol {
				j++
				break
			}
			if v[j+1] == nil {
				v[j+1] = make([]complex128, n)
			}
			inv := complex(1/hj1, 0)
			for k := range w {
				v[j+1][k] = w[k] * inv
			}
		}
		// Back-substitute R y = g and accumulate x += M^{-1} (V y).
		y := make([]complex128, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= hc[k][i] * y[k]
			}
			if hc[i][i] == 0 {
				return x, res, ErrSingular
			}
			y[i] = s / hc[i][i]
		}
		for k := range w {
			w[k] = 0
		}
		for i := 0; i < j; i++ {
			yi := y[i]
			for k := range w {
				w[k] += yi * v[i][k]
			}
		}
		if opt.Precond != nil {
			opt.Precond(z, w)
			for k := range x {
				x[k] += z[k]
			}
		} else {
			for k := range x {
				x[k] += w[k]
			}
		}
		res.Restarts++
	}
}

// PCGOptions tunes the operator-level conjugate-gradient solve (the
// matrix-free analogue of CGOptions, which configures the CSR solvers).
type PCGOptions struct {
	// Tol is the relative residual target (default 1e-10).
	Tol float64
	// MaxIters caps iterations (default max(100, 10n)).
	MaxIters int
	// X0 is the initial guess (nil = zero).
	X0 []float64
	// Precond applies an SPD preconditioner: dst = M^{-1} src.
	// dst and src must not alias. nil means no preconditioning.
	Precond func(dst, src []float64)
}

// CG solves A x = b for a symmetric positive-definite operator with
// preconditioned conjugate gradients. Check IterResult.Converged; a
// stalled solve is reported, not an error.
func CG(op LinearOperator, b []float64, opt PCGOptions) ([]float64, IterResult, error) {
	n := op.Dim()
	if len(b) != n {
		return nil, IterResult{}, fmt.Errorf("matrix: CG rhs length %d, want %d", len(b), n)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIt := opt.MaxIters
	if maxIt <= 0 {
		maxIt = 10 * n
		if maxIt < 100 {
			maxIt = 100
		}
	}
	x := make([]float64, n)
	r := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, IterResult{}, fmt.Errorf("matrix: CG x0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
		op.ApplyTo(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
	} else {
		copy(r, b)
	}
	res := IterResult{}
	bnorm := Norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		res.Converged = true
		return x, res, nil
	}
	zv := make([]float64, n)
	applyPre := func(dst, src []float64) {
		if opt.Precond != nil {
			opt.Precond(dst, src)
		} else {
			copy(dst, src)
		}
	}
	applyPre(zv, r)
	p := CloneVec(zv)
	ap := make([]float64, n)
	rz := Dot(r, zv)
	for {
		res.Residual = Norm2(r) / bnorm
		if res.Residual <= tol {
			res.Converged = true
			return x, res, nil
		}
		if res.Iters >= maxIt {
			return x, res, nil
		}
		res.Iters++
		op.ApplyTo(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			// Not SPD (or breakdown): report what we have.
			return x, res, fmt.Errorf("matrix: CG breakdown, operator not SPD (p·Ap = %g)", pap)
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		applyPre(zv, r)
		rzNew := Dot(r, zv)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = zv[i] + beta*p[i]
		}
	}
}
