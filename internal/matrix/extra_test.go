package matrix

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
)

func TestDenseInPlaceOps(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{10, 20}, {30, 40}})
	a.AddMat(b)
	if a.At(1, 1) != 44 {
		t.Errorf("AddMat: %g", a.At(1, 1))
	}
	a.AddScaled(-1, b)
	if a.At(1, 1) != 4 {
		t.Errorf("AddScaled: %g", a.At(1, 1))
	}
	a.Scale(2)
	if a.At(0, 0) != 2 {
		t.Errorf("Scale: %g", a.At(0, 0))
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Errorf("Zero left %g", a.MaxAbs())
	}
	c := NewDenseFrom([][]float64{{3, 4}})
	if got := c.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %g", got)
	}
	if c.NonZeros(0.5) != 2 || c.NonZeros(3.5) != 1 {
		t.Errorf("NonZeros wrong")
	}
	s := NewDenseFrom([][]float64{{1, 2}, {3, 4}}).String()
	if !strings.Contains(s, "4") || !strings.Contains(s, "\n") {
		t.Errorf("String output: %q", s)
	}
	if NewDenseFrom(nil).Rows() != 0 {
		t.Errorf("empty NewDenseFrom")
	}
}

func TestDenseRaggedAndNegative(t *testing.T) {
	for _, f := range []func(){
		func() { NewDenseFrom([][]float64{{1, 2}, {3}}) },
		func() { NewDense(-1, 2) },
		func() { NewDense(2, 2).Row(5) },
		func() { NewDense(2, 2).Submatrix(0, 3, 0, 1) },
		func() { NewDense(2, 2).SetSubmatrix(1, 1, NewDense(2, 2)) },
		func() { NewDense(2, 2).AddMat(NewDense(3, 3)) },
		func() { NewDense(2, 2).AddScaled(1, NewDense(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIsSymmetricEdge(t *testing.T) {
	if !NewDense(3, 3).IsSymmetric(0) {
		t.Errorf("zero matrix should be symmetric")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Errorf("non-square reported symmetric")
	}
	m := NewDenseFrom([][]float64{{1, 2}, {2.5, 1}})
	if m.IsSymmetric(1e-12) {
		t.Errorf("asymmetric matrix reported symmetric")
	}
	if !m.IsSymmetric(1) {
		t.Errorf("loose tolerance should accept")
	}
}

func TestCholeskySolveMatAndLogDet(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randSPD(rng, 6)
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := ch.SolveMat(Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	p := a.Mul(inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(p.At(i, j)-want) > 1e-9 {
				t.Fatalf("SolveMat inverse wrong at (%d,%d)", i, j)
			}
		}
	}
	lu, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.LogDet()-math.Log(lu.Det())) > 1e-9 {
		t.Errorf("LogDet %g vs log(det) %g", ch.LogDet(), math.Log(lu.Det()))
	}
	if _, err := ch.SolveMat(NewDense(3, 1)); err == nil {
		t.Errorf("dimension mismatch accepted")
	}
	if _, err := ch.Solve(make([]float64, 3)); err == nil {
		t.Errorf("bad rhs length accepted")
	}
}

func TestLUSolveMatErrors(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 0}, {0, 2}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveMat(NewDense(3, 2)); err == nil {
		t.Errorf("row mismatch accepted")
	}
	if _, err := f.Solve(make([]float64, 3)); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Errorf("non-square LU accepted")
	}
	if _, err := FactorCholesky(NewDense(2, 3)); err == nil {
		t.Errorf("non-square Cholesky accepted")
	}
}

func TestCDenseOps(t *testing.T) {
	m := NewCDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Errorf("dims")
	}
	m.Add(1, 2, complex(1, 1))
	m.Add(1, 2, complex(1, -2))
	if m.At(1, 2) != complex(2, -1) {
		t.Errorf("Add: %v", m.At(1, 2))
	}
	c := m.Clone()
	c.Zero()
	if c.At(1, 2) != 0 || m.At(1, 2) == 0 {
		t.Errorf("Zero/Clone aliasing")
	}
	for _, f := range []func(){
		func() { m.At(5, 0) },
		func() { NewCDense(-1, 1) },
		func() { m.MulVec(make([]complex128, 2)) },
		func() { CFromReal(NewDense(2, 2), NewDense(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestComplexLUReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 8
	a := NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		a.Add(i, i, 10)
	}
	lu, err := FactorComplexLU(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(x)
		got, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
	// Reused factorization must agree with one-shot SolveComplex.
	b := make([]complex128, n)
	b[0] = 1
	x1, _ := lu.Solve(b)
	x2, err := SolveComplex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if cmplx.Abs(x1[i]-x2[i]) > 1e-10 {
			t.Fatalf("CLU and SolveComplex disagree at %d", i)
		}
	}
	// Errors.
	if _, err := lu.Solve(make([]complex128, 3)); err == nil {
		t.Errorf("bad rhs length accepted")
	}
	if _, err := FactorComplexLU(NewCDense(2, 3)); err == nil {
		t.Errorf("non-square accepted")
	}
	sing := NewCDense(2, 2)
	sing.Set(0, 0, 1)
	sing.Set(0, 1, 2)
	sing.Set(1, 0, 2)
	sing.Set(1, 1, 4)
	if _, err := FactorComplexLU(sing); err == nil {
		t.Errorf("singular accepted")
	}
}

func TestTripletBounds(t *testing.T) {
	tr := NewTriplet(2, 2)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	tr.Add(5, 0, 1)
}

func TestCSRDiagAndDims(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 2)
	tr.Add(2, 2, 5)
	tr.Add(1, 0, -1)
	m := tr.ToCSR()
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Errorf("dims")
	}
	d := m.Diag()
	if d[0] != 2 || d[1] != 0 || d[2] != 5 {
		t.Errorf("Diag = %v", d)
	}
	if tr.Rows() != 3 || tr.Cols() != 3 || tr.NNZ() != 3 {
		t.Errorf("triplet meta wrong")
	}
}

func TestSolversRejectBadShapes(t *testing.T) {
	tr := NewTriplet(2, 3)
	m := tr.ToCSR()
	if _, err := m.SolveCG(make([]float64, 2), CGOptions{}); err == nil {
		t.Errorf("CG on non-square accepted")
	}
	if _, err := m.SolveBiCGStab(make([]float64, 2), CGOptions{}); err == nil {
		t.Errorf("BiCGStab on non-square accepted")
	}
	sq := NewTriplet(2, 2)
	sq.Add(0, 0, 1)
	sq.Add(1, 1, 1)
	if _, err := sq.ToCSR().SolveCG(make([]float64, 3), CGOptions{}); err == nil {
		t.Errorf("CG rhs mismatch accepted")
	}
	// BiCGStab zero rhs short-circuits.
	x, err := sq.ToCSR().SolveBiCGStab(make([]float64, 2), CGOptions{})
	if err != nil || NormInf(x) != 0 {
		t.Errorf("BiCGStab zero rhs: %v %v", x, err)
	}
}

func TestConditionSingular(t *testing.T) {
	if !math.IsInf(ConditionEstimate(NewDense(2, 2)), 1) {
		t.Errorf("singular condition estimate should be +Inf")
	}
}
