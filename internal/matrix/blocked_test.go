package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked/parallel kernels promise bit-identical results to the
// unblocked references at every worker count (they preserve per-entry
// operation order). These tests assert exactly that, over sizes that
// straddle the block boundary, hit panel remainders, and exercise the
// parallel splits.

var equivSizes = []int{1, 2, 5, blockSize - 1, blockSize, blockSize + 1,
	2*blockSize + 3, 3 * blockSize, 67, 100}

var workerCounts = []int{1, 2, 3, 7}

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	SetWorkers(w)
	defer SetWorkers(0)
	fn()
}

func TestFactorLUBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range equivSizes {
		a := randDense(rng, n, n)
		ref, err := FactorLUUnblocked(a)
		if err != nil {
			t.Fatalf("n=%d: reference LU failed: %v", n, err)
		}
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				got, err := FactorLU(a)
				if err != nil {
					t.Fatalf("n=%d workers=%d: blocked LU failed: %v", n, w, err)
				}
				if i, ok := bitsEqual(ref.lu.data, got.lu.data); !ok {
					t.Errorf("n=%d workers=%d: factor differs at flat index %d: %x vs %x",
						n, w, i, math.Float64bits(ref.lu.data[i]), math.Float64bits(got.lu.data[i]))
				}
				if got.sign != ref.sign {
					t.Errorf("n=%d workers=%d: sign %d, want %d", n, w, got.sign, ref.sign)
				}
				for i := range ref.piv {
					if got.piv[i] != ref.piv[i] {
						t.Fatalf("n=%d workers=%d: piv[%d]=%d, want %d", n, w, i, got.piv[i], ref.piv[i])
					}
				}
			})
		}
	}
}

func TestFactorLUBlockedSingular(t *testing.T) {
	// A structurally singular matrix must fail identically in both paths.
	n := 3 * blockSize
	a := randDense(rand.New(rand.NewSource(8)), n, n)
	copy(a.Row(n-1), a.Row(n-2)) // two equal rows
	if _, err := FactorLUUnblocked(a); err != ErrSingular {
		t.Fatalf("reference: err=%v, want ErrSingular", err)
	}
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("blocked: err=%v, want ErrSingular", err)
	}
}

func TestFactorCholeskyBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range equivSizes {
		a := randSPD(rng, n)
		ref, err := FactorCholeskyUnblocked(a)
		if err != nil {
			t.Fatalf("n=%d: reference Cholesky failed: %v", n, err)
		}
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				got, err := FactorCholesky(a)
				if err != nil {
					t.Fatalf("n=%d workers=%d: blocked Cholesky failed: %v", n, w, err)
				}
				if i, ok := bitsEqual(ref.l.data, got.l.data); !ok {
					t.Errorf("n=%d workers=%d: factor differs at flat index %d", n, w, i)
				}
			})
		}
		// The strictly upper triangle must stay exactly zero: L() exposes
		// the full matrix and solvers read it.
		got, _ := FactorCholesky(a)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if got.l.data[i*n+j] != 0 {
					t.Fatalf("n=%d: upper triangle (%d,%d) = %g, want 0", n, i, j, got.l.data[i*n+j])
				}
			}
		}
	}
}

func TestFactorCholeskyBlockedIndefinite(t *testing.T) {
	n := 3 * blockSize
	a := randSPD(rand.New(rand.NewSource(10)), n)
	a.data[(n/2)*n+(n/2)] = -1 // break positive definiteness
	if _, err := FactorCholeskyUnblocked(a); err != ErrNotPositiveDefinite {
		t.Fatalf("reference: err=%v, want ErrNotPositiveDefinite", err)
	}
	if _, err := FactorCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("blocked: err=%v, want ErrNotPositiveDefinite", err)
	}
}

func TestMulBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ r, k, c int }{
		{1, 1, 1},
		{blockSize - 1, blockSize + 1, 2*blockSize + 3},
		{2*blockSize + 3, blockSize - 1, blockSize + 1},
		{blockSize, blockSize, blockSize},
		{67, 35, 50}, // non-square, remainders in every dimension
		{64, 64, 64},
		{5, 70, 3}, // column count below one SIMD tile
	}
	for _, tc := range cases {
		a := randDense(rng, tc.r, tc.k)
		b := randDense(rng, tc.k, tc.c)
		ref := a.MulUnblocked(b)
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				// Call the blocked kernel directly so small cases exercise
				// it too (the public Mul dispatches by size).
				got := NewDense(tc.r, tc.c)
				mulBlocked(a, b, got)
				if i, ok := bitsEqual(ref.data, got.data); !ok {
					t.Errorf("%dx%dx%d workers=%d: blocked product differs at %d", tc.r, tc.k, tc.c, w, i)
				}
				if pub := a.Mul(b); pub.rows != tc.r || pub.cols != tc.c {
					t.Fatalf("Mul returned %dx%d", pub.rows, pub.cols)
				} else if i, ok := bitsEqual(ref.data, pub.data); !ok {
					t.Errorf("%dx%dx%d workers=%d: Mul differs at %d", tc.r, tc.k, tc.c, w, i)
				}
			})
		}
	}
}

func TestMulTransBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct{ r, k, c int }{
		{blockSize + 1, 7, 5},
		{67, 35, 50},
		{64, 12, 12}, // PRIMA-like: tall skinny V, V^T * (n x q)
		{200, 8, 8},
		{3, 2, 1},
	}
	for _, tc := range cases {
		a := randDense(rng, tc.r, tc.k) // result is k x c
		b := randDense(rng, tc.r, tc.c)
		ref := a.T().MulUnblocked(b)
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				got := a.MulTrans(b)
				if got.rows != tc.k || got.cols != tc.c {
					t.Fatalf("MulTrans returned %dx%d", got.rows, got.cols)
				}
				// MulTrans accumulates dot products in the same k order as
				// the transpose-then-multiply reference, but the reference
				// skips exact zeros; with continuous random data both see
				// the same operations, so demand bit equality.
				if i, ok := bitsEqual(ref.data, got.data); !ok {
					t.Errorf("%dx%dx%d workers=%d: MulTrans differs at %d", tc.r, tc.k, tc.c, w, i)
				}
				direct := NewDense(tc.k, tc.c)
				mulTransRows(a, b, direct, 0, tc.k)
				if i, ok := bitsEqual(ref.data, direct.data); !ok {
					t.Errorf("%dx%dx%d: mulTransRows differs at %d", tc.r, tc.k, tc.c, i)
				}
			})
		}
	}
}

func TestMulVecToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range equivSizes {
		m := randDense(rng, n, n+3)
		x := make([]float64, n+3)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n+3; j++ {
				s += m.data[i*(n+3)+j] * x[j]
			}
			ref[i] = s
		}
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				got := m.MulVecTo(make([]float64, n), x)
				if i, ok := bitsEqual(ref, got); !ok {
					t.Errorf("n=%d workers=%d: MulVecTo differs at %d", n, w, i)
				}
				got2 := m.MulVec(x)
				if i, ok := bitsEqual(ref, got2); !ok {
					t.Errorf("n=%d workers=%d: MulVec differs at %d", n, w, i)
				}
			})
		}
	}
}

func TestSolveMatParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n, nrhs := 2*blockSize+3, 9
	a := randDense(rng, n, n)
	spd := randSPD(rng, n)
	b := randDense(rng, n, nrhs)

	lu, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := FactorCholesky(spd)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: solve column by column by hand.
	luRef := NewDense(n, nrhs)
	chRef := NewDense(n, nrhs)
	col := make([]float64, n)
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*nrhs+j]
		}
		xl, err := lu.Solve(col)
		if err != nil {
			t.Fatal(err)
		}
		xc, err := ch.Solve(col)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			luRef.data[i*nrhs+j] = xl[i]
			chRef.data[i*nrhs+j] = xc[i]
		}
	}
	for _, w := range workerCounts {
		withWorkers(t, w, func() {
			got, err := lu.SolveMat(b)
			if err != nil {
				t.Fatal(err)
			}
			if i, ok := bitsEqual(luRef.data, got.data); !ok {
				t.Errorf("workers=%d: LU SolveMat differs at %d", w, i)
			}
			gotc, err := ch.SolveMat(b)
			if err != nil {
				t.Fatal(err)
			}
			if i, ok := bitsEqual(chRef.data, gotc.data); !ok {
				t.Errorf("workers=%d: Cholesky SolveMat differs at %d", w, i)
			}
		})
	}
}

// TestBlockedWithinTolerance is the belt to the bit-identity suspenders:
// even if a future kernel change legitimately reorders arithmetic, the
// blocked results must stay within 1e-12 relative of the references.
func TestBlockedWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 2*blockSize + 3
	a := randSPD(rng, n)
	ref, _ := FactorCholeskyUnblocked(a)
	got, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	scale := ref.l.MaxAbs()
	for i := range ref.l.data {
		if d := math.Abs(ref.l.data[i] - got.l.data[i]); d > 1e-12*scale {
			t.Fatalf("entry %d differs by %g (scale %g)", i, d, scale)
		}
	}
}

func TestParallelRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100} {
		for _, w := range []int{1, 2, 4, 33} {
			withWorkers(t, w, func() {
				seen := make([]int, n)
				ParallelRange(n, 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d workers=%d: index %d covered %d times", n, w, i, c)
					}
				}
			})
		}
	}
}
