package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// sweepOperator builds the R + jωL-shaped test matrix at one frequency:
// a fixed well-conditioned Hermitian-dominant L with a real diagonal R,
// mimicking the extraction branch systems recycling exists for.
func sweepOperator(rng *rand.Rand, n int, omega float64, l [][]float64, r []float64) *CDense {
	a := NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			re := 0.0
			if i == j {
				re = r[i]
			}
			a.Set(i, j, complex(re, omega*l[i][j]))
		}
	}
	return a
}

func randomSPDLike(rng *rand.Rand, n int) ([][]float64, []float64) {
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() / float64(1+absInt(i-j))
			l[i][j], l[j][i] = v, v
		}
		l[i][i] += float64(n) // diagonally dominant: nonsingular at any omega
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 + rng.Float64()
	}
	return l, r
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// outlierL is the hard variant: a tight eigenvalue cluster plus a
// dozen small outlying modes. Restarted GMRES crawls on the outliers
// at every frequency — they are the few slow, persistent loop modes
// recycling is designed to deflate once and carry across the sweep.
func outlierL(rng *rand.Rand, n int) ([][]float64, []float64) {
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 1 + absInt(i-j)
			v := 0.01 * rng.NormFloat64() / float64(d*d)
			l[i][j], l[j][i] = v, v
		}
		if i < 12 {
			l[i][i] = 0.002 * float64(1+i)
		} else {
			l[i][i] = 1 + 0.1*rng.Float64()
		}
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = 0.001
	}
	return l, r
}

// TestGMRESRecycledMatchesPlain: with a nil recycle space the recycled
// entry point must be the plain solver, and with a live space the
// solution must still satisfy the system to tolerance.
func TestGMRESRecycledMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 60
	l, r := randomSPDLike(rng, n)
	a := sweepOperator(rng, n, 2.0, l, r)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	opt := GMRESOptions{Tol: 1e-10, Restart: 20}

	xp, rp, err := GMRESRecycled(CDenseOp{a}, b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	xg, rg, err := GMRES(CDenseOp{a}, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Iters != rg.Iters || rp.Residual != rg.Residual {
		t.Fatalf("nil recycle space diverged from plain GMRES: %+v vs %+v", rp, rg)
	}
	for i := range xp {
		if xp[i] != xg[i] {
			t.Fatalf("nil recycle space: solution differs at %d", i)
		}
	}

	rs := &RecycleSpace{}
	xr, rr, err := GMRESRecycled(CDenseOp{a}, b, opt, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Converged {
		t.Fatalf("recycled solve did not converge: %+v", rr)
	}
	checkResidual(t, a, xr, b, 1e-9)
	if rs.Dim() == 0 {
		t.Fatal("first solve harvested nothing")
	}
}

func checkResidual(t *testing.T, a *CDense, x, b []complex128, tol float64) {
	t.Helper()
	n := a.Rows()
	w := make([]complex128, n)
	CDenseOp{a}.ApplyTo(w, x)
	num, den := 0.0, cnorm(b)
	for i := range w {
		d := w[i] - b[i]
		num += real(d)*real(d) + imag(d)*imag(d)
	}
	if res := math.Sqrt(num) / den; res > tol {
		t.Fatalf("residual %.3g above %.3g", res, tol)
	}
}

// TestGMRESRecycledSavesIterations runs a mock frequency sweep twice —
// warm-start-free in both cases so the comparison isolates recycling —
// and requires the recycled run to spend fewer total Krylov iterations
// (net of the re-projection applies) than the plain run.
func TestGMRESRecycledSavesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 120
	l, r := outlierL(rng, n)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Anchor-solve spacing of a dense sweep: a few percent per step.
	omegas := make([]float64, 10)
	for i := range omegas {
		omegas[i] = 2.0 * math.Pow(1.04, float64(i))
	}
	opt := GMRESOptions{Tol: 1e-10, Restart: 25}

	plain := 0
	for _, om := range omegas {
		a := sweepOperator(rng, n, om, l, r)
		_, res, err := GMRES(CDenseOp{a}, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("plain GMRES stalled at omega=%g", om)
		}
		plain += res.Iters
	}

	rs := &RecycleSpace{MaxDim: 12}
	recycled := 0
	for _, om := range omegas {
		a := sweepOperator(rng, n, om, l, r)
		rs.Invalidate()
		x, res, err := GMRESRecycled(CDenseOp{a}, b, opt, rs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("recycled GMRES stalled at omega=%g", om)
		}
		checkResidual(t, a, x, b, 1e-9)
		recycled += res.Iters + res.RecycleApplies
	}
	if recycled >= plain {
		t.Fatalf("recycling saved nothing: %d iters+applies vs %d plain", recycled, plain)
	}
	t.Logf("plain %d iters, recycled %d iters+applies (%.0f%% saved)",
		plain, recycled, 100*float64(plain-recycled)/float64(plain))
}

// TestGMRESRecycledSharedOperator: multiple right-hand sides at one
// frequency share a single re-projection; only the first solve after
// Invalidate pays RecycleApplies.
func TestGMRESRecycledSharedOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 80
	l, r := randomSPDLike(rng, n)
	a := sweepOperator(rng, n, 1.5, l, r)
	opt := GMRESOptions{Tol: 1e-10, Restart: 20}

	rs := &RecycleSpace{}
	// Seed the space with one solve, then switch "frequency".
	b := make([]complex128, n)
	b[0] = 1
	if _, _, err := GMRESRecycled(CDenseOp{a}, b, opt, rs); err != nil {
		t.Fatal(err)
	}
	a2 := sweepOperator(rng, n, 1.9, l, r)
	rs.Invalidate()
	var applies []int
	for k := 0; k < 3; k++ {
		rhs := make([]complex128, n)
		rhs[k] = 1
		x, res, err := GMRESRecycled(CDenseOp{a2}, rhs, opt, rs)
		if err != nil {
			t.Fatal(err)
		}
		checkResidual(t, a2, x, rhs, 1e-9)
		applies = append(applies, res.RecycleApplies)
		if res.RecycledDim == 0 {
			t.Fatalf("solve %d ran without deflation", k)
		}
	}
	if applies[0] == 0 {
		t.Fatal("first solve after Invalidate did not re-project")
	}
	if applies[1] != 0 || applies[2] != 0 {
		t.Fatalf("later same-operator solves re-projected: %v", applies)
	}
}

// TestGMRESRecycledPreconditioned exercises the right-preconditioned
// path: the recycled basis must compose with a preconditioner that
// changes between solves.
func TestGMRESRecycledPreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n = 90
	l, r := randomSPDLike(rng, n)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), 0)
	}
	rs := &RecycleSpace{}
	for _, om := range []float64{1, 1.3, 1.7} {
		a := sweepOperator(rng, n, om, l, r)
		// Jacobi right preconditioner, frequency-dependent.
		dinv := make([]complex128, n)
		for i := range dinv {
			dinv[i] = 1 / a.At(i, i)
		}
		pre := func(dst, src []complex128) {
			for i := range dst {
				dst[i] = dinv[i] * src[i]
			}
		}
		rs.Invalidate()
		x, res, err := GMRESRecycled(CDenseOp{a}, b, GMRESOptions{Tol: 1e-10, Restart: 20, Precond: pre}, rs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("preconditioned recycled solve stalled at omega=%g: %+v", om, res)
		}
		checkResidual(t, a, x, b, 1e-9)
	}
}

// TestRecycleSpaceDimensionChange: feeding a space built at one
// dimension into a different-size operator must reset it, not corrupt
// the solve.
func TestRecycleSpaceDimensionChange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l1, r1 := randomSPDLike(rng, 40)
	a1 := sweepOperator(rng, 40, 1, l1, r1)
	b1 := make([]complex128, 40)
	b1[0] = 1
	rs := &RecycleSpace{}
	if _, _, err := GMRESRecycled(CDenseOp{a1}, b1, GMRESOptions{Tol: 1e-10}, rs); err != nil {
		t.Fatal(err)
	}
	if rs.Dim() == 0 {
		t.Fatal("no harvest")
	}
	l2, r2 := randomSPDLike(rng, 25)
	a2 := sweepOperator(rng, 25, 1, l2, r2)
	b2 := make([]complex128, 25)
	b2[3] = 1
	rs.Invalidate()
	x, res, err := GMRESRecycled(CDenseOp{a2}, b2, GMRESOptions{Tol: 1e-10}, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RecycledDim != 0 {
		t.Fatalf("dimension change not handled: %+v", res)
	}
	checkResidual(t, a2, x, b2, 1e-9)
}
