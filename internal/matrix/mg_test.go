package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// lap2D builds the 5-point Laplacian of an nx x ny grid with Dirichlet
// anchoring via diagonal shifts at the border — an SPD stand-in for a
// power-grid conductance system.
func lap2D(nx, ny int) *CSR {
	n := nx * ny
	rowPtr := make([]int, 0, n+1)
	rowPtr = append(rowPtr, 0)
	var colIdx []int
	var val []float64
	id := func(i, j int) int { return i*nx + j }
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			type ent struct {
				c int
				v float64
			}
			var row []ent
			diag := 0.0
			add := func(ii, jj int) {
				if ii < 0 || ii >= ny || jj < 0 || jj >= nx {
					diag += 1 // Dirichlet boundary keeps the system definite
					return
				}
				row = append(row, ent{id(ii, jj), -1})
				diag += 1
			}
			add(i, j-1)
			add(i, j+1)
			add(i-1, j)
			add(i+1, j)
			row = append(row, ent{id(i, j), diag})
			for a := 1; a < len(row); a++ {
				e := row[a]
				b := a - 1
				for b >= 0 && row[b].c > e.c {
					row[b+1] = row[b]
					b--
				}
				row[b+1] = e
			}
			for _, e := range row {
				colIdx = append(colIdx, e.c)
				val = append(val, e.v)
			}
			rowPtr = append(rowPtr, len(colIdx))
		}
	}
	return CSRFromParts(n, n, rowPtr, colIdx, val)
}

func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// oracleSolve factors the system with the sparse Cholesky — exact to
// machine precision — as the reference MG answers are compared against.
func oracleSolve(t *testing.T, a *CSR, b []float64) []float64 {
	t.Helper()
	ch, err := FactorSparseCholesky(a.AsSymmetricCSC())
	if err != nil {
		t.Fatalf("oracle Cholesky: %v", err)
	}
	x, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestMGSolveMatchesCholesky(t *testing.T) {
	a := lap2D(60, 55)
	b := randRHS(a.Rows(), 1)
	want := oracleSolve(t, a, b)
	for _, sm := range []MGSmoother{SmootherJacobi, SmootherGaussSeidel} {
		x, st, err := NewMGMust(t, a, MGOptions{Smoother: sm}).Solve(b, MGSolveOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("%v: %v", sm, err)
		}
		if d := maxAbsDiff(x, want); d > 1e-8 {
			t.Errorf("%v: V-cycle solution off by %g from Cholesky", sm, d)
		}
		if st.Levels < 3 {
			t.Errorf("%v: expected a real hierarchy, got %d levels", sm, st.Levels)
		}
		if st.Iterations == 0 || st.Iterations > 120 {
			t.Errorf("%v: suspicious V-cycle count %d", sm, st.Iterations)
		}
	}
}

func NewMGMust(t *testing.T, a *CSR, opt MGOptions) *MG {
	t.Helper()
	m, err := NewMG(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMGPCGMatchesCholesky(t *testing.T) {
	a := lap2D(48, 48)
	b := randRHS(a.Rows(), 2)
	want := oracleSolve(t, a, b)
	x, st, err := NewMGMust(t, a, MGOptions{}).SolvePCG(b, MGSolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, want); d > 1e-8 {
		t.Errorf("PCG-MG solution off by %g from Cholesky", d)
	}
	if st.Iterations == 0 || st.Iterations > 60 {
		t.Errorf("suspicious PCG iteration count %d", st.Iterations)
	}
	if st.OperatorComplexity < 1 || st.OperatorComplexity > 3 {
		t.Errorf("operator complexity %g outside sane range", st.OperatorComplexity)
	}
}

// TestMGPlainProlong pins the plain-aggregation fallback: slower but
// still convergent under PCG.
func TestMGPlainProlong(t *testing.T) {
	a := lap2D(40, 40)
	b := randRHS(a.Rows(), 3)
	want := oracleSolve(t, a, b)
	x, _, err := NewMGMust(t, a, MGOptions{PlainProlong: true}).SolvePCG(b, MGSolveOptions{Tol: 1e-12, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, want); d > 1e-8 {
		t.Errorf("plain-prolongation PCG off by %g", d)
	}
}

// TestMGWarmStart pins that a warm start from the exact solution
// converges immediately (the transient stepper's fast path).
func TestMGWarmStart(t *testing.T) {
	a := lap2D(32, 32)
	b := randRHS(a.Rows(), 4)
	want := oracleSolve(t, a, b)
	x, st, err := NewMGMust(t, a, MGOptions{}).SolvePCG(b, MGSolveOptions{Tol: 1e-10, X0: want})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 1 {
		t.Errorf("warm start from the solution took %d iterations", st.Iterations)
	}
	if d := maxAbsDiff(x, want); d > 1e-9 {
		t.Errorf("warm-started solution drifted by %g", d)
	}
}

// TestMGWorkerDeterminism pins bit-identical results at every worker
// count — the contract every parallel kernel in this package carries.
func TestMGWorkerDeterminism(t *testing.T) {
	a := lap2D(50, 41)
	b := randRHS(a.Rows(), 5)
	x1, st1, err := NewMGMust(t, a, MGOptions{Workers: 1}).SolvePCG(b, MGSolveOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 7} {
		xw, stw, err := NewMGMust(t, a, MGOptions{Workers: w}).SolvePCG(b, MGSolveOptions{Tol: 1e-11})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if stw.Iterations != st1.Iterations {
			t.Errorf("workers=%d: iteration count %d != serial %d", w, stw.Iterations, st1.Iterations)
		}
		for i := range xw {
			if xw[i] != x1[i] {
				t.Fatalf("workers=%d: x[%d] = %g != serial %g (not bit-identical)", w, i, xw[i], x1[i])
			}
		}
	}
}

// TestMGRejectsSingular pins the clear-error contract for singular
// systems: a pure Neumann Laplacian (no anchoring anywhere) must be
// rejected at build time, naming the positive-definiteness failure.
func TestMGRejectsSingular(t *testing.T) {
	// 1D path graph Laplacian with no Dirichlet anchor: singular.
	n := 600
	rowPtr := make([]int, 0, n+1)
	rowPtr = append(rowPtr, 0)
	var colIdx []int
	var val []float64
	for i := 0; i < n; i++ {
		d := 0.0
		if i > 0 {
			colIdx = append(colIdx, i-1)
			val = append(val, -1)
			d++
		}
		at := len(colIdx)
		colIdx = append(colIdx, i)
		val = append(val, 0)
		if i < n-1 {
			colIdx = append(colIdx, i+1)
			val = append(val, -1)
			d++
		}
		val[at] = d
		rowPtr = append(rowPtr, len(colIdx))
	}
	a := CSRFromParts(n, n, rowPtr, colIdx, val)
	_, err := NewMG(a, MGOptions{})
	if err == nil {
		t.Fatal("NewMG accepted a singular (pure-Neumann) system")
	}
	if !strings.Contains(err.Error(), "positive definite") {
		t.Errorf("error does not name the definiteness failure: %v", err)
	}
}

// TestMGOptionValidation pins the fail-fast contract on bad options.
func TestMGOptionValidation(t *testing.T) {
	a := lap2D(8, 8)
	bad := []MGOptions{
		{Omega: 1.5},
		{Omega: -0.1},
		{Theta: 1.2},
		{MaxLevels: 1},
		{CoarseSize: -3},
		{Smoother: MGSmoother(9)},
		{PreSweeps: -1},
	}
	for i, opt := range bad {
		if _, err := NewMG(a, opt); err == nil {
			t.Errorf("case %d: NewMG accepted invalid options %+v", i, opt)
		}
	}
	rect := &CSR{rows: 3, cols: 4, rowPtr: make([]int, 4)}
	if _, err := NewMG(rect, MGOptions{}); err == nil {
		t.Error("NewMG accepted a rectangular matrix")
	}
}

// TestCSRMulAgainstDense pins the parallel sparse product the setup
// phase is built on.
func TestCSRMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randCSR := func(r, c int, density float64) *CSR {
		tr := NewTriplet(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < density {
					tr.Add(i, j, rng.NormFloat64())
				}
			}
		}
		return tr.ToCSR()
	}
	a := randCSR(37, 29, 0.15)
	b := randCSR(29, 23, 0.2)
	for _, w := range []int{1, 4} {
		got := csrMul(a, b, w)
		want := a.ToDense().Mul(b.ToDense())
		gd := got.ToDense()
		for i := 0; i < 37; i++ {
			for j := 0; j < 23; j++ {
				if d := math.Abs(gd.At(i, j) - want.At(i, j)); d > 1e-12 {
					t.Fatalf("workers=%d: product (%d,%d) off by %g", w, i, j, d)
				}
			}
		}
	}
}

// TestCSRTranspose pins the transpose used for restriction operators.
func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := NewTriplet(13, 21)
	for k := 0; k < 60; k++ {
		tr.Add(rng.Intn(13), rng.Intn(21), rng.NormFloat64())
	}
	m := tr.ToCSR()
	mt := csrTranspose(m)
	d, dt := m.ToDense(), mt.ToDense()
	for i := 0; i < 13; i++ {
		for j := 0; j < 21; j++ {
			if d.At(i, j) != dt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestGreedyAggregates pins basic sanity: every node aggregated, ids
// dense, neighbors clustered.
func TestGreedyAggregates(t *testing.T) {
	a := lap2D(16, 16)
	agg := greedyAggregates(a, 0.08)
	nc, aggD := normalizeAggregates(agg)
	if nc <= 0 || nc >= a.Rows() {
		t.Fatalf("aggregation made no progress: %d aggregates for %d nodes", nc, a.Rows())
	}
	seen := make([]bool, nc)
	for _, v := range aggD {
		if v < 0 || v >= nc {
			t.Fatalf("aggregate id %d outside [0,%d)", v, nc)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("aggregate %d empty after normalization", i)
		}
	}
	if nc > a.Rows()/2 {
		t.Errorf("weak coarsening: %d aggregates for %d nodes", nc, a.Rows())
	}
}

// TestSolveCGStats pins the new iteration/tolerance metadata.
func TestSolveCGStats(t *testing.T) {
	a := lap2D(20, 20)
	b := randRHS(a.Rows(), 9)
	x, st, err := a.SolveCGStats(b, CGOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations <= 0 {
		t.Errorf("CG stats report %d iterations", st.Iterations)
	}
	if st.Tol != 1e-9 {
		t.Errorf("CG stats tolerance %g, want 1e-9", st.Tol)
	}
	if st.Residual <= 0 || st.Residual > st.Tol {
		t.Errorf("CG stats residual %g inconsistent with tol %g", st.Residual, st.Tol)
	}
	want := oracleSolve(t, a, b)
	if d := maxAbsDiff(x, want); d > 1e-6 {
		t.Errorf("CG solution off by %g", d)
	}
}

// TestMGConcurrentSolves exercises many simultaneous solves — with
// conflicting per-solve worker counts — against one shared hierarchy.
// Run under -race this pins the pooled-scratch concurrency contract;
// results must also stay bit-identical to a serial solve.
func TestMGConcurrentSolves(t *testing.T) {
	a := lap2D(40, 37)
	m := NewMGMust(t, a, MGOptions{Workers: 2})
	const sessions = 8
	rhs := make([][]float64, sessions)
	want := make([][]float64, sessions)
	for s := range rhs {
		rhs[s] = randRHS(a.Rows(), int64(100+s))
		x, _, err := m.SolvePCG(rhs[s], MGSolveOptions{Tol: 1e-11, Workers: 1 + s%4})
		if err != nil {
			t.Fatal(err)
		}
		want[s] = x
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Conflicting worker counts across concurrent sessions, plus a
			// standalone V-cycle session mixed among the PCG ones.
			opt := MGSolveOptions{Tol: 1e-11, Workers: 1 + s%4}
			var x []float64
			var err error
			if s%3 == 0 {
				x, _, err = m.Solve(rhs[s], opt)
			} else {
				x, _, err = m.SolvePCG(rhs[s], opt)
			}
			if err != nil {
				errs[s] = err
				return
			}
			if s%3 != 0 { // V-cycle path converges to a different iterate count; compare PCG only
				for i := range x {
					if x[i] != want[s][i] {
						errs[s] = fmt.Errorf("session %d: x[%d] = %g differs from isolated solve %g", s, i, x[i], want[s][i])
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
