package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian1D builds the SPD tridiagonal [2 -1; -1 2 ...] system, the
// discrete analogue of a resistor chain.
func laplacian1D(n int) *Triplet {
	t := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 2)
		if i > 0 {
			t.Add(i, i-1, -1)
		}
		if i < n-1 {
			t.Add(i, i+1, -1)
		}
	}
	return t
}

func TestTripletToCSR(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2) // duplicate accumulation
	tr.Add(2, 1, -4)
	tr.Add(1, 2, 0) // ignored
	m := tr.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 0) != 3 || d.At(2, 1) != -4 {
		t.Errorf("CSR contents wrong:\n%v", d)
	}
}

func TestCSRMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTriplet(8, 8)
	for k := 0; k < 20; k++ {
		tr.Add(rng.Intn(8), rng.Intn(8), rng.NormFloat64())
	}
	m := tr.ToCSR()
	d := tr.ToDense()
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ys, yd := m.MulVec(x), d.MulVec(x)
	for i := range ys {
		if !almostEq(ys[i], yd[i], 1e-12) {
			t.Fatalf("sparse/dense mismatch at %d: %g vs %g", i, ys[i], yd[i])
		}
	}
}

func TestSolveCG(t *testing.T) {
	n := 50
	m := laplacian1D(n).ToCSR()
	rng := rand.New(rand.NewSource(8))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := m.MulVec(xTrue)
	x, err := m.SolveCG(b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-7) {
			t.Fatalf("CG x[%d]=%g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	m := laplacian1D(5).ToCSR()
	x, err := m.SolveCG(make([]float64, 5), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if NormInf(x) != 0 {
		t.Errorf("CG of zero rhs should be zero")
	}
}

func TestSolveBiCGStab(t *testing.T) {
	// Nonsymmetric but diagonally dominant.
	n := 30
	tr := NewTriplet(n, n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		tr.Add(i, i, 5)
		if i > 0 {
			tr.Add(i, i-1, rng.Float64())
		}
		if i < n-1 {
			tr.Add(i, i+1, -2*rng.Float64())
		}
	}
	m := tr.ToCSR()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := m.MulVec(xTrue)
	x, err := m.SolveBiCGStab(b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-6) {
			t.Fatalf("BiCGStab x[%d]=%g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCGRejectsNonSPDDiag(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, -1)
	tr.Add(1, 1, 1)
	if _, err := tr.ToCSR().SolveCG([]float64{1, 1}, CGOptions{}); err == nil {
		t.Errorf("CG should reject negative diagonal")
	}
}

func TestCGMatchesDenseSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		// Random SPD: Laplacian + random positive diagonal loading.
		tr := laplacian1D(n)
		for i := 0; i < n; i++ {
			tr.Add(i, i, rng.Float64()+0.1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xs, err := tr.ToCSR().SolveCG(b, CGOptions{Tol: 1e-13})
		if err != nil {
			return false
		}
		xd, err := SolveDense(tr.ToDense(), b)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almostEq(xs[i], xd[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestComplexSolve(t *testing.T) {
	// (1+1i)x + 2y = 5+3i ; 3x + (4-2i)y = 6
	a := NewCDense(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, complex(4, -2))
	b := []complex128{complex(5, 3), 6}
	x, err := SolveComplex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range r {
		d := r[i] - b[i]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatalf("residual %v at %d", d, i)
		}
	}
}

func TestComplexSolveSingular(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveComplex(a, []complex128{1, 1}); err == nil {
		t.Errorf("expected singular error")
	}
}

func TestCFromReal(t *testing.T) {
	re := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	im := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	c := CFromReal(re, im)
	if c.At(1, 0) != complex(3, 7) {
		t.Errorf("CFromReal wrong: %v", c.At(1, 0))
	}
	c2 := CFromReal(re, nil)
	if c2.At(1, 1) != 4 {
		t.Errorf("CFromReal nil-imag wrong")
	}
}
