package matrix

import (
	"fmt"
	"math/cmplx"
)

// CDense is a dense, row-major complex matrix, used by AC analysis
// (internal/sim) and frequency-domain extraction (internal/fasthenry).
type CDense struct {
	rows, cols int
	data       []complex128
}

// NewCDense returns an r x c zero complex matrix.
func NewCDense(r, c int) *CDense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &CDense{rows: r, cols: c, data: make([]complex128, r*c)}
}

// Rows returns the number of rows.
func (m *CDense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CDense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *CDense) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *CDense) Set(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to element (i, j).
func (m *CDense) Add(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *CDense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *CDense) Clone() *CDense {
	c := NewCDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Zero clears the matrix.
func (m *CDense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// MulVec returns m*x.
func (m *CDense) MulVec(x []complex128) []complex128 {
	if m.cols != len(x) {
		panic("matrix: CDense MulVec dimension mismatch")
	}
	y := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		var s complex128
		for j, v := range mi {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// SolveComplex solves a*x = b with complex LU and partial pivoting.
// a is not modified.
func SolveComplex(a *CDense, b []complex128) ([]complex128, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: complex solve of non-square %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: complex solve rhs length %d, want %d", len(b), n)
	}
	lu := a.Clone()
	d := lu.data
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		p, mx := k, cmplx.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(d[i*n+k]); a > mx {
				p, mx = i, a
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := k; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			x[k], x[p] = x[p], x[k]
		}
		piv := d[k*n+k]
		for i := k + 1; i < n; i++ {
			f := d[i*n+k] / piv
			if f == 0 {
				continue
			}
			d[i*n+k] = f
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= f * d[k*n+j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s / d[i*n+i]
	}
	return x, nil
}

// CFromReal builds a complex matrix re + 1i*im. im may be nil (treated
// as zero). This is how AC analysis assembles G + jωC system matrices.
func CFromReal(re, im *Dense) *CDense {
	if im != nil && (re.rows != im.rows || re.cols != im.cols) {
		panic("matrix: CFromReal dimension mismatch")
	}
	m := NewCDense(re.rows, re.cols)
	for i := range re.data {
		if im != nil {
			m.data[i] = complex(re.data[i], im.data[i])
		} else {
			m.data[i] = complex(re.data[i], 0)
		}
	}
	return m
}
