package matrix

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Krylov subspace recycling (GCRO-DR style) for sequences of related
// complex solves — the anchor solves of a frequency sweep, where the
// operator A(ω) = R + jωL drifts smoothly from point to point. Each
// solve harvests approximate harmonic-Ritz vectors (the slow,
// smallest-magnitude modes GMRES spends most of its iterations on) from
// its final Arnoldi cycle; the next solve deflates them, so its Krylov
// space only has to resolve what the recycled space does not already
// span. The deflation survives operator changes: the recycled basis U
// is re-projected through the *new* operator at the start of every
// solve (C = A U, re-orthonormalized), which costs dim(U) operator
// applications and is what makes the scheme correct — not merely
// heuristic — for ω-varying systems.

// DefaultRecycleDim is the recycled-subspace cap when RecycleSpace.
// MaxDim is zero: large enough to hold the handful of slow modes of a
// preconditioned extraction solve, small enough that re-projection
// (MaxDim operator applications per solve) stays well below the
// iterations it saves.
const DefaultRecycleDim = 12

// recycleHarvest is the number of fresh harmonic-Ritz vectors harvested
// per solve. New vectors displace the oldest recycled ones once the
// space is full, so the basis tracks the operator as it drifts.
const recycleHarvest = 6

// RecycleSpace carries the deflation basis between related GMRES
// solves. The zero value is ready to use; pass the same instance to a
// sequence of GMRESRecycled calls whose operators are related (e.g.
// adjacent frequency points). It is NOT safe for concurrent use — give
// each sweep worker its own space.
type RecycleSpace struct {
	// MaxDim caps the recycled basis dimension (0 = DefaultRecycleDim).
	MaxDim int

	u [][]complex128 // deflation basis, solution space
	// c holds C = A U for the first len(c) basis vectors, orthonormal
	// and paired with u (A u[i] = c[i] exactly). len(c) < len(u) after a
	// harvest: the new columns are projected lazily by the next solve,
	// so consecutive same-operator solves only pay for what changed.
	c [][]complex128
	// cValid reports whether the c prefix matches the current operator;
	// callers invalidate when the operator changes.
	cValid bool
	n      int // operator dimension the basis belongs to
}

// Dim reports the current recycled-basis dimension.
func (rs *RecycleSpace) Dim() int {
	if rs == nil {
		return 0
	}
	return len(rs.u)
}

// Invalidate marks the projected basis C stale. Call it whenever the
// operator or preconditioner of the next solve differs from the last
// one (a sweep calls it once per new frequency); consecutive solves
// against the same operator (multiple right-hand sides) then share one
// re-projection.
func (rs *RecycleSpace) Invalidate() {
	if rs != nil {
		rs.cValid = false
	}
}

// Reset drops the recycled basis entirely.
func (rs *RecycleSpace) Reset() {
	if rs != nil {
		rs.u, rs.c, rs.cValid, rs.n = nil, nil, false, 0
	}
}

func (rs *RecycleSpace) maxDim() int {
	if rs.MaxDim > 0 {
		return rs.MaxDim
	}
	return DefaultRecycleDim
}

// project brings C = A U up to date for the current operator: a full
// rebuild when the operator changed (cValid false), or an incremental
// extension over freshly harvested basis vectors when only the tail is
// missing. Each processed column is MGS-orthonormalized against the
// kept C columns with every update mirrored on U, so A u[i] = c[i]
// holds exactly; numerically dependent columns are dropped. Returns
// the number of operator applications spent.
func (rs *RecycleSpace) project(apply func(dst, x []complex128), n int) int {
	if rs.n != n {
		// Operator dimension changed: the basis is meaningless.
		rs.Reset()
		rs.n = n
		rs.cValid = true
		return 0
	}
	var ud, cd [][]complex128
	pending := rs.u
	if rs.cValid && len(rs.c) <= len(rs.u) {
		ud, cd = rs.u[:len(rs.c)], rs.c
		pending = rs.u[len(rs.c):]
	}
	applies := 0
	w := make([]complex128, n)
	for _, uj := range pending {
		apply(w, uj)
		applies++
		cj := make([]complex128, n)
		copy(cj, w)
		unew := make([]complex128, n)
		copy(unew, uj)
		for i := range cd {
			h := cdotc(cd[i], cj)
			for k := range cj {
				cj[k] -= h * cd[i][k]
			}
			for k := range unew {
				unew[k] -= h * ud[i][k]
			}
		}
		nrm := cnorm(cj)
		if nrm <= 1e-14 {
			continue // dependent direction: drop it
		}
		inv := complex(1/nrm, 0)
		for k := range cj {
			cj[k] *= inv
			unew[k] *= inv
		}
		cd = append(cd, cj)
		ud = append(ud, unew)
	}
	rs.u, rs.c = ud, cd
	rs.cValid = true
	return applies
}

// harvest refreshes the unprojected tail of the recycled basis with
// fresh approximate harmonic-Ritz vectors: the previous pending tail
// (estimates from the same operator, now superseded) is replaced, the
// oldest entries are truncated over MaxDim with the u/c pairing kept
// aligned, and the projected prefix — still valid for the current
// operator — is left untouched, so follow-up solves against the same
// operator deflate for free. The eigenvector estimates are coefficient
// vectors over the Arnoldi basis of the preconditioned operator;
// preApply (the right preconditioner) maps them into solution space so
// the stored U composes with any later preconditioner. h is the
// pristine (pre-Givens) Hessenberg of the final cycle.
func (rs *RecycleSpace) harvest(v [][]complex128, h *CDense, j int, hj1 float64, preApply func(dst, src []complex128)) {
	if rs == nil || j < 2 {
		return
	}
	k := recycleHarvest
	if k > j {
		k = j
	}
	g := harmonicRitzSmallest(h, j, hj1, k)
	if g == nil {
		return
	}
	if rs.cValid && len(rs.c) <= len(rs.u) {
		rs.u = rs.u[:len(rs.c)]
	} else {
		rs.c = nil
	}
	n := len(v[0])
	scratch := make([]complex128, n)
	for _, gc := range g {
		un := make([]complex128, n)
		for i := 0; i < j; i++ {
			gi := gc[i]
			if gi == 0 {
				continue
			}
			for t := range un {
				un[t] += gi * v[i][t]
			}
		}
		if preApply != nil {
			preApply(scratch, un)
			copy(un, scratch)
		}
		nrm := cnorm(un)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			continue
		}
		inv := complex(1/nrm, 0)
		for t := range un {
			un[t] *= inv
		}
		rs.u = append(rs.u, un)
	}
	if max := rs.maxDim(); len(rs.u) > max {
		drop := len(rs.u) - max
		rs.u = rs.u[drop:]
		if drop < len(rs.c) {
			rs.c = rs.c[drop:]
		} else {
			rs.c = nil
		}
	}
	rs.n = n
}

// harmonicRitzSmallest returns k approximate eigenvectors (length-j
// coefficient vectors over the Arnoldi basis) of the j x j harmonic-Ritz
// matrix H + h²_{j+1,j} H^{-H} e_j e_j^H, for its smallest-magnitude
// eigenvalues — the slow modes worth deflating. The subspace is
// computed by deterministic inverse subspace iteration (coordinate-
// vector start, fixed sweep count), which is exactly the "approximate"
// the recycling literature allows: the deflation only needs a subspace
// that overlaps the slow eigenspace, not eigenpairs to working
// precision. Returns nil when the small systems are singular.
func harmonicRitzSmallest(h *CDense, j int, hj1 float64, k int) [][]complex128 {
	// f = H^{-H} e_j via solving H^H f = e_j; then A_harm = H + h² f e_j^H.
	hm := NewCDense(j, j)
	hh := NewCDense(j, j)
	for r := 0; r < j; r++ {
		for c := 0; c < j; c++ {
			v := h.At(r, c)
			hm.Set(r, c, v)
			hh.Set(c, r, cmplx.Conj(v))
		}
	}
	luH, err := FactorComplexLU(hh)
	if err != nil {
		return nil
	}
	ej := make([]complex128, j)
	ej[j-1] = 1
	f, err := luH.Solve(ej)
	if err != nil {
		return nil
	}
	h2 := complex(hj1*hj1, 0)
	for r := 0; r < j; r++ {
		hm.Add(r, j-1, h2*f[r])
	}
	lu, err := FactorComplexLU(hm)
	if err != nil {
		// Singular harmonic matrix: a zero harmonic Ritz value means the
		// Krylov space already contains a near-null direction; skip the
		// harvest rather than divide by it.
		return nil
	}
	// Inverse subspace iteration: Z <- orth(A_harm^{-1} Z), three sweeps
	// from coordinate vectors.
	z := make([][]complex128, k)
	for i := range z {
		z[i] = make([]complex128, j)
		z[i][i%j] = 1
	}
	for sweep := 0; sweep < 3; sweep++ {
		for i := range z {
			zi, err := lu.Solve(z[i])
			if err != nil {
				return nil
			}
			z[i] = zi
		}
		// MGS orthonormalization.
		for i := range z {
			for p := 0; p < i; p++ {
				d := cdotc(z[p], z[i])
				for t := range z[i] {
					z[i][t] -= d * z[p][t]
				}
			}
			nrm := cnorm(z[i])
			if nrm <= 1e-300 {
				return z[:i]
			}
			inv := complex(1/nrm, 0)
			for t := range z[i] {
				z[i][t] *= inv
			}
		}
	}
	return z
}

// GMRESRecycled is GMRES with GCRO-DR-style subspace recycling: the
// recycle space rs (may be nil, reducing to plain GMRES) is deflated
// out of every Krylov cycle, and refreshed from the final cycle's
// harmonic-Ritz estimates before returning. For a sequence of related
// solves (a frequency sweep's anchors), pass one RecycleSpace per
// sequence and call rs.Invalidate() whenever the operator changes; the
// solver re-projects the basis through the new operator (the
// IterResult.RecycleApplies operator applications) and each subsequent
// solve starts with the slow modes already deflated.
func GMRESRecycled(op CLinearOperator, b []complex128, opt GMRESOptions, rs *RecycleSpace) ([]complex128, IterResult, error) {
	if rs == nil {
		return GMRES(op, b, opt)
	}
	n := op.Dim()
	if len(b) != n {
		return nil, IterResult{}, fmt.Errorf("matrix: GMRES rhs length %d, want %d", len(b), n)
	}
	m := opt.Restart
	if m <= 0 {
		m = 30
	}
	if m > n {
		m = n
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIt := opt.MaxIters
	if maxIt <= 0 {
		maxIt = 10 * n
		if maxIt < 100 {
			maxIt = 100
		}
	}
	x := make([]complex128, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, IterResult{}, fmt.Errorf("matrix: GMRES x0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	res := IterResult{}
	bnorm := cnorm(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		res.Converged = true
		return x, res, nil
	}

	z := make([]complex128, n)
	// applyP computes dst = A M^{-1} x, the operator the Krylov cycles
	// iterate on. The recycled basis U lives in solution space (the
	// preconditioner is folded in at harvest time), so its projection
	// C = A U goes through the raw operator — C depends on A only, and
	// stays valid across preconditioner rebuilds at a fixed frequency.
	applyP := func(dst, src []complex128) {
		av := src
		if opt.Precond != nil {
			opt.Precond(z, src)
			av = z
		}
		op.ApplyTo(dst, av)
	}
	if !rs.cValid || rs.n != n {
		res.RecycleApplies = rs.project(op.ApplyTo, n)
	}
	// Deflate with the projected pairs only; a freshly harvested tail
	// (len(u) > len(c)) waits for the next Invalidate-triggered
	// projection, so same-operator follow-up solves pay zero applies.
	kd := len(rs.c)
	res.RecycledDim = kd

	v := make([][]complex128, m+1)
	hc := make([][]complex128, m) // rotated Hessenberg columns (R factor)
	// Pristine (pre-Givens) Hessenberg for the harvest, including the
	// subdiagonal — (m+1) x m like the Arnoldi relation.
	hraw := NewCDense(m+1, m)
	bmat := make([][]complex128, m) // B = C^H Â V coupling columns
	cs := make([]complex128, m)
	sn := make([]complex128, m)
	g := make([]complex128, m+1)
	w := make([]complex128, n)
	d := make([]complex128, kd)

	var pre func(dst, src []complex128)
	if opt.Precond != nil {
		pre = opt.Precond
	}
	var lastJ int
	var lastHj1 float64
	harvested := false
	for {
		// True residual r0 = b - A x, split into the C component (zeroed
		// exactly through U) and the deflated remainder the Krylov cycle
		// works on.
		op.ApplyTo(w, x)
		if v[0] == nil {
			v[0] = make([]complex128, n)
		}
		for i := range w {
			v[0][i] = b[i] - w[i]
		}
		trueRes := cnorm(v[0]) / bnorm
		res.Residual = trueRes
		if trueRes <= tol {
			res.Converged = true
			break
		}
		if res.Iters >= maxIt {
			break
		}
		for i := 0; i < kd; i++ {
			d[i] = cdotc(rs.c[i], v[0])
			for t := range v[0] {
				v[0][t] -= d[i] * rs.c[i][t]
			}
		}
		beta := cnorm(v[0])
		if beta/bnorm <= tol {
			// The residual lives entirely in the recycled space: close it
			// with the U correction alone and re-verify the true residual.
			for i := 0; i < kd; i++ {
				if d[i] == 0 {
					continue
				}
				for t := range x {
					x[t] += d[i] * rs.u[i][t]
				}
			}
			res.Restarts++
			continue
		}
		inv := complex(1/beta, 0)
		for i := range v[0] {
			v[0][i] *= inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = complex(beta, 0)

		j := 0
		hj1 := 0.0
		for ; j < m && res.Iters < maxIt; j++ {
			res.Iters++
			applyP(w, v[j])
			// Deflate: record the C coupling, then orthogonalize against
			// the Krylov basis.
			if len(bmat[j]) < kd {
				bmat[j] = make([]complex128, kd)
			}
			for i := 0; i < kd; i++ {
				bij := cdotc(rs.c[i], w)
				bmat[j][i] = bij
				for t := range w {
					w[t] -= bij * rs.c[i][t]
				}
			}
			if hc[j] == nil {
				hc[j] = make([]complex128, m+1)
			}
			col := hc[j]
			for i := 0; i <= j; i++ {
				hcoef := cdotc(v[i], w)
				col[i] = hcoef
				hraw.Set(i, j, hcoef)
				for t := range w {
					w[t] -= hcoef * v[i][t]
				}
			}
			hj1 = cnorm(w)
			col[j+1] = complex(hj1, 0)
			hraw.Set(j+1, j, complex(hj1, 0))
			for i := 0; i < j; i++ {
				t := cmplx.Conj(cs[i])*col[i] + cmplx.Conj(sn[i])*col[i+1]
				col[i+1] = -sn[i]*col[i] + cs[i]*col[i+1]
				col[i] = t
			}
			r2 := math.Hypot(cmplx.Abs(col[j]), cmplx.Abs(col[j+1]))
			if r2 == 0 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = col[j] / complex(r2, 0)
				sn[j] = col[j+1] / complex(r2, 0)
			}
			col[j] = complex(r2, 0)
			col[j+1] = 0
			t := cmplx.Conj(cs[j])*g[j] + cmplx.Conj(sn[j])*g[j+1]
			g[j+1] = -sn[j]*g[j] + cs[j]*g[j+1]
			g[j] = t
			res.Residual = cmplx.Abs(g[j+1]) / bnorm
			if hj1 == 0 {
				j++
				break
			}
			if res.Residual <= tol {
				j++
				break
			}
			if v[j+1] == nil {
				v[j+1] = make([]complex128, n)
			}
			inv := complex(1/hj1, 0)
			for t := range w {
				v[j+1][t] = w[t] * inv
			}
		}
		// Back-substitute R yv = g.
		yv := make([]complex128, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= hc[k][i] * yv[k]
			}
			if hc[i][i] == 0 {
				return x, res, ErrSingular
			}
			yv[i] = s / hc[i][i]
		}
		// x += M^{-1}(V yv) + U (d - B yv): the Krylov update plus the
		// recycled-space correction that zeroes the C residual component.
		for t := range w {
			w[t] = 0
		}
		for i := 0; i < j; i++ {
			yi := yv[i]
			for t := range w {
				w[t] += yi * v[i][t]
			}
		}
		if opt.Precond != nil {
			opt.Precond(z, w)
			for t := range x {
				x[t] += z[t]
			}
		} else {
			for t := range x {
				x[t] += w[t]
			}
		}
		yu := make([]complex128, kd)
		for i := 0; i < kd; i++ {
			s := d[i]
			for c := 0; c < j; c++ {
				s -= bmat[c][i] * yv[c]
			}
			yu[i] = s
		}
		for i := 0; i < kd; i++ {
			if yu[i] == 0 {
				continue
			}
			for t := range x {
				x[t] += yu[i] * rs.u[i][t]
			}
		}
		lastJ, lastHj1 = j, hj1
		res.Restarts++
		// Harvest from every full-length cycle, not just the final one:
		// after a restart the last cycle is often 2-3 iterations, far too
		// short to resolve the slow modes worth carrying. harvest replaces
		// the pending tail, so the most recent full cycle wins.
		if j >= recycleHarvest {
			rs.harvest(v, hraw, j, hj1, pre)
			harvested = true
		}
	}
	if !harvested && lastJ >= 2 {
		rs.harvest(v, hraw, lastJ, lastHj1, pre)
	}
	return x, res, nil
}
