package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// LU holds an LU factorization with partial pivoting: P*A = L*U where L
// is unit lower triangular and U upper triangular, packed into a single
// matrix.
type LU struct {
	lu      *Dense
	piv     []int // row i of the factor came from row piv[i] of A
	sign    int   // determinant sign from row swaps
	workers int   // worker count for SolveMat; 0 = process default
}

// FactorLU computes the LU factorization with partial pivoting of the
// square matrix a. a is not modified. Matrices of dimension blockedMin
// and up go through the cache-blocked, parallel kernel; the result is
// bit-identical to FactorLUUnblocked at every worker count (the blocked
// kernel preserves the reference per-entry operation order). The worker
// count is the process default; FactorLUWorkers pins it per run.
func FactorLU(a *Dense) (*LU, error) {
	return factorLU(a, a.rows >= blockedMin, 0)
}

// FactorLUWorkers is FactorLU with an explicit worker count used by the
// factorization and remembered for SolveMat on the returned factor.
// workers <= 0 resolves to the process default (Workers) at each use.
func FactorLUWorkers(a *Dense, workers int) (*LU, error) {
	return factorLU(a, a.rows >= blockedMin, workers)
}

// FactorLUUnblocked runs the serial, unblocked reference factorization
// regardless of size. It exists as the ground truth for the equivalence
// tests and speedup benchmarks; solvers should call FactorLU.
func FactorLUUnblocked(a *Dense) (*LU, error) {
	return factorLU(a, false, 0)
}

func factorLU(a *Dense, blocked bool, workers int) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: LU of non-square %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	var sign int
	var err error
	if blocked {
		sign, err = factorLUBlocked(lu.data, n, piv, workers)
	} else {
		sign, err = factorLUUnblocked(lu.data, n, piv)
	}
	if err != nil {
		return nil, err
	}
	return &LU{lu: lu, piv: piv, sign: sign, workers: workers}, nil
}

// factorLUUnblocked is the reference kernel: right-looking LU with
// partial pivoting, immediate rank-1 trailing updates.
func factorLUUnblocked(d []float64, n int, piv []int) (int, error) {
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot: largest |d[i][k]| for i >= k.
		p, mx := k, math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(d[i*n+k]); a > mx {
				p, mx = i, a
			}
		}
		if mx == 0 {
			return sign, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := d[k*n+k]
		for i := k + 1; i < n; i++ {
			f := d[i*n+k] / pivVal
			d[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= f * d[k*n+j]
			}
		}
	}
	return sign, nil
}

// Solve solves A*x = b for one right-hand side. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: LU solve rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	d := f.lu.data
	// Apply permutation, then forward substitution with unit L.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d[i*n+j] * x[j]
		}
		u := d[i*n+i]
		if u == 0 {
			return nil, ErrSingular
		}
		x[i] = s / u
	}
	return x, nil
}

// SolveMat solves A*X = B column by column. Columns are independent
// triangular solves, so they run in parallel (each with its own
// scratch); per-column results are identical to the serial loop.
func (f *LU) SolveMat(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("matrix: LU SolveMat rhs rows %d, want %d", b.rows, n)
	}
	x := NewDense(n, b.cols)
	errs := make([]error, b.cols)
	minChunk := 8
	if n >= 128 {
		minChunk = 1
	}
	ParallelRangeWorkers(f.workers, b.cols, minChunk, func(lo, hi int) {
		col := make([]float64, n)
		for j := lo; j < hi; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.data[i*b.cols+j]
			}
			sol, err := f.Solve(col)
			if err != nil {
				errs[j] = err
				return
			}
			for i := 0; i < n; i++ {
				x.data[i*b.cols+j] = sol[i]
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns A^-1 computed from the factorization.
func (f *LU) Inverse() (*Dense, error) {
	return f.SolveMat(Identity(f.lu.rows))
}

// SolveDense is a convenience wrapper: factor a and solve a*x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse is a convenience wrapper returning a^-1.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// ConditionEstimate returns a cheap lower-bound estimate of the 1-norm
// condition number of a, via ||A||_1 * ||A^-1 e||_inf probing with a few
// right-hand sides. It is used by tests and diagnostics, not by solvers.
func ConditionEstimate(a *Dense) float64 {
	f, err := FactorLU(a)
	if err != nil {
		return math.Inf(1)
	}
	n := a.rows
	norm1 := 0.0
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += math.Abs(a.data[i*n+j])
		}
		if s > norm1 {
			norm1 = s
		}
	}
	// Probe with ones and alternating-sign vectors.
	worst := 0.0
	for _, mk := range []func(i int) float64{
		func(int) float64 { return 1 },
		func(i int) float64 {
			if i%2 == 0 {
				return 1
			}
			return -1
		},
	} {
		b := make([]float64, n)
		bn := 0.0
		for i := range b {
			b[i] = mk(i)
			bn = math.Max(bn, math.Abs(b[i]))
		}
		x, err := f.Solve(b)
		if err != nil {
			return math.Inf(1)
		}
		xn := 0.0
		for _, v := range x {
			xn = math.Max(xn, math.Abs(v))
		}
		if bn > 0 {
			worst = math.Max(worst, xn/bn)
		}
	}
	return norm1 * worst
}
