//go:build amd64

#include "textflag.h"

// func gemmSubAVX2(c, l, u *float64, cn, ln, kb int)
//
// C (4x4 tile, row stride cn) -= L (4 x kb, row stride ln) * U (kb x 4,
// packed contiguously). Uses VMULPD + VSUBPD, never FMA: every multiply
// and subtract rounds separately, exactly like the scalar reference
// kernel, and m increases monotonically, so the result is bit-identical
// to applying the kb rank-1 updates one at a time.
TEXT ·gemmSubAVX2(SB), NOSPLIT, $0-48
	MOVQ c+0(FP), DI
	MOVQ l+8(FP), SI
	MOVQ u+16(FP), DX
	MOVQ cn+24(FP), CX
	MOVQ ln+32(FP), R14
	MOVQ kb+40(FP), BX
	SHLQ $3, CX          // C row stride in bytes
	SHLQ $3, R14         // L row stride in bytes
	LEAQ (DI)(CX*1), R8
	LEAQ (DI)(CX*2), R9
	LEAQ (R8)(CX*2), R10
	VMOVUPD (DI), Y0     // C row accumulators
	VMOVUPD (R8), Y1
	VMOVUPD (R9), Y2
	VMOVUPD (R10), Y3
	LEAQ (SI)(R14*1), R11
	LEAQ (SI)(R14*2), R12
	LEAQ (R11)(R14*2), R13
	XORQ AX, AX
	CMPQ BX, $0
	JLE  subdone

subloop:
	VMOVUPD (DX), Y4              // U[m][0..3]
	VBROADCASTSD (SI)(AX*8), Y5   // L[0][m]
	VBROADCASTSD (R11)(AX*8), Y6  // L[1][m]
	VBROADCASTSD (R12)(AX*8), Y7  // L[2][m]
	VBROADCASTSD (R13)(AX*8), Y8  // L[3][m]
	VMULPD Y4, Y5, Y5
	VMULPD Y4, Y6, Y6
	VMULPD Y4, Y7, Y7
	VMULPD Y4, Y8, Y8
	VSUBPD Y5, Y0, Y0
	VSUBPD Y6, Y1, Y1
	VSUBPD Y7, Y2, Y2
	VSUBPD Y8, Y3, Y3
	ADDQ $32, DX
	INCQ AX
	CMPQ AX, BX
	JLT  subloop

subdone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (R8)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, (R10)
	VZEROUPPER
	RET

// func gemmAddAVX2(c, l, u *float64, cn, ln, kb int)
//
// Same tile shape as gemmSubAVX2 with C += L * U (the Mul kernel).
TEXT ·gemmAddAVX2(SB), NOSPLIT, $0-48
	MOVQ c+0(FP), DI
	MOVQ l+8(FP), SI
	MOVQ u+16(FP), DX
	MOVQ cn+24(FP), CX
	MOVQ ln+32(FP), R14
	MOVQ kb+40(FP), BX
	SHLQ $3, CX
	SHLQ $3, R14
	LEAQ (DI)(CX*1), R8
	LEAQ (DI)(CX*2), R9
	LEAQ (R8)(CX*2), R10
	VMOVUPD (DI), Y0
	VMOVUPD (R8), Y1
	VMOVUPD (R9), Y2
	VMOVUPD (R10), Y3
	LEAQ (SI)(R14*1), R11
	LEAQ (SI)(R14*2), R12
	LEAQ (R11)(R14*2), R13
	XORQ AX, AX
	CMPQ BX, $0
	JLE  adddone

addloop:
	VMOVUPD (DX), Y4
	VBROADCASTSD (SI)(AX*8), Y5
	VBROADCASTSD (R11)(AX*8), Y6
	VBROADCASTSD (R12)(AX*8), Y7
	VBROADCASTSD (R13)(AX*8), Y8
	VMULPD Y4, Y5, Y5
	VMULPD Y4, Y6, Y6
	VMULPD Y4, Y7, Y7
	VMULPD Y4, Y8, Y8
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3
	ADDQ $32, DX
	INCQ AX
	CMPQ AX, BX
	JLT  addloop

adddone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (R8)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, (R10)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
