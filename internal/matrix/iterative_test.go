package matrix

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomDiagDominantC builds a random complex diagonally dominant
// matrix (guaranteed nonsingular, GMRES-friendly but dense and
// nonsymmetric).
func randomDiagDominantC(n int, rng *rand.Rand) *CDense {
	m := NewCDense(n, n)
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			m.Set(i, j, v)
			row += cmplx.Abs(v)
		}
		m.Set(i, i, complex(row+1+rng.Float64(), rng.NormFloat64()))
	}
	return m
}

func randVecC(n int, rng *rand.Rand) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func residualC(m *CDense, x, b []complex128) float64 {
	n := m.Rows()
	r := make([]complex128, n)
	CDenseOp{m}.ApplyTo(r, x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += real((r[i] - b[i]) * cmplx.Conj(r[i]-b[i]))
		den += real(b[i] * cmplx.Conj(b[i]))
	}
	return math.Sqrt(num / den)
}

func TestGMRESMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 40} {
		m := randomDiagDominantC(n, rng)
		b := randVecC(n, rng)
		x, res, err := GMRES(CDenseOp{m}, b, GMRESOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: not converged (residual %g)", n, res.Residual)
		}
		if r := residualC(m, x, b); r > 1e-10 {
			t.Errorf("n=%d: residual %g", n, r)
		}
		want, err := SolveComplex(m, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-want[i]) > 1e-8*(1+cmplx.Abs(want[i])) {
				t.Errorf("n=%d: x[%d] = %v, direct %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestGMRESRestartedConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	m := randomDiagDominantC(n, rng)
	b := randVecC(n, rng)
	// Restart far below n forces multiple cycles.
	x, res, err := GMRES(CDenseOp{m}, b, GMRESOptions{Restart: 5, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Restarts == 0 {
		t.Fatalf("expected converged multi-restart solve, got %+v", res)
	}
	if r := residualC(m, x, b); r > 1e-9 {
		t.Errorf("residual %g after restarts", r)
	}
}

func TestGMRESPreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 50
	m := randomDiagDominantC(n, rng)
	b := randVecC(n, rng)
	_, plain, err := GMRES(CDenseOp{m}, b, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Jacobi preconditioner: with strong diagonal dominance it should
	// not increase the iteration count.
	diag := make([]complex128, n)
	for i := 0; i < n; i++ {
		diag[i] = m.At(i, i)
	}
	x, pre, err := GMRES(CDenseOp{m}, b, GMRESOptions{
		Tol: 1e-10,
		Precond: func(dst, src []complex128) {
			for i := range dst {
				dst[i] = src[i] / diag[i]
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatalf("preconditioned solve did not converge: %+v", pre)
	}
	if pre.Iters > plain.Iters {
		t.Errorf("Jacobi preconditioning increased iterations: %d > %d", pre.Iters, plain.Iters)
	}
	if r := residualC(m, x, b); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
}

func TestGMRESWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	m := randomDiagDominantC(n, rng)
	b := randVecC(n, rng)
	x, cold, err := GMRES(CDenseOp{m}, b, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact answer: converges immediately.
	_, warm, err := GMRES(CDenseOp{m}, b, GMRESOptions{Tol: 1e-8, X0: x})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged || warm.Iters > 1 {
		t.Errorf("warm start from solution took %d iterations", warm.Iters)
	}
	// Warm start from a perturbed answer: strictly easier than cold.
	x2 := append([]complex128(nil), x...)
	for i := range x2 {
		x2[i] += complex(1e-4*rng.NormFloat64(), 1e-4*rng.NormFloat64())
	}
	_, warm2, err := GMRES(CDenseOp{m}, b, GMRESOptions{Tol: 1e-10, X0: x2})
	if err != nil {
		t.Fatal(err)
	}
	if !warm2.Converged || warm2.Iters >= cold.Iters {
		t.Errorf("perturbed warm start took %d iterations, cold %d", warm2.Iters, cold.Iters)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomDiagDominantC(6, rng)
	x, res, err := GMRES(CDenseOp{m}, make([]complex128, 6), GMRESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestGMRESBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := randomDiagDominantC(4, rng)
	if _, _, err := GMRES(CDenseOp{m}, make([]complex128, 3), GMRESOptions{}); err == nil {
		t.Error("rhs length mismatch not rejected")
	}
	if _, _, err := GMRES(CDenseOp{m}, make([]complex128, 4), GMRESOptions{X0: make([]complex128, 2)}); err == nil {
		t.Error("x0 length mismatch not rejected")
	}
}

func TestGMRESReportsStall(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 30
	m := randomDiagDominantC(n, rng)
	b := randVecC(n, rng)
	_, res, err := GMRES(CDenseOp{m}, b, GMRESOptions{Restart: 2, Tol: 1e-14, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("3 iterations cannot hit 1e-14 on a random 30x30 system")
	}
	if res.Residual <= 0 || res.Iters != 3 {
		t.Errorf("stall result %+v", res)
	}
}

// spdSystem builds A = B^T B + I (SPD) as a dense operator.
func spdSystem(n int, rng *rand.Rand) *Dense {
	bm := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bm.Set(i, j, rng.NormFloat64())
		}
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += bm.At(k, i) * bm.At(k, j)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func TestCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 35
	a := spdSystem(n, rng)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	DenseOp{a}.ApplyTo(b, want)
	x, res, err := CG(DenseOp{a}, b, PCGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	// Warm start from the answer converges immediately.
	_, warm, err := CG(DenseOp{a}, b, PCGOptions{Tol: 1e-10, X0: x})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iters > 1 {
		t.Errorf("warm CG took %d iterations", warm.Iters)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	b := []float64{0.3, 1}
	if _, _, err := CG(DenseOp{a}, b, PCGOptions{}); err == nil {
		t.Error("indefinite matrix not reported")
	}
}

func TestOperatorAdapters(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 9
	d := NewDense(n, n)
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.NormFloat64()
			d.Set(i, j, v)
			tr.Add(i, j, v)
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	d.MulVecTo(want, x)
	got := make([]float64, n)
	DenseOp{d}.ApplyTo(got, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("DenseOp[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	csc := tr.ToCSC()
	CSCOp{csc}.ApplyTo(got, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CSCOp[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if (DenseOp{d}).Dim() != n || (CSCOp{csc}).Dim() != n {
		t.Fatal("Dim mismatch")
	}
}
